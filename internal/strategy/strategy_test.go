package strategy

import (
	"math/rand"
	"strings"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/sched"
)

func testChain(t testing.TB) *core.Chain {
	t.Helper()
	return core.MustChain([]core.Task{
		{Name: "a", Weight: core.Weights(40, 90), Replicable: false},
		{Name: "b", Weight: core.Weights(120, 300), Replicable: true},
		{Name: "c", Weight: core.Weights(200, 520), Replicable: true},
		{Name: "d", Weight: core.Weights(310, 700), Replicable: true},
		{Name: "e", Weight: core.Weights(25, 60), Replicable: false},
	})
}

func TestAllOrder(t *testing.T) {
	want := []string{"HeRAD", "2CATAC", "FERTAC", "OTAC (B)", "OTAC (L)"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Hidden strategies appear in AllRegistered but not in All.
	reg := AllRegistered()
	if len(reg) != len(want)+2 {
		t.Errorf("AllRegistered() has %d entries, want %d", len(reg), len(want)+2)
	}
	for _, s := range All() {
		if s.Name() == "Brute" || s.Name() == "2CATAC (memo)" {
			t.Errorf("hidden strategy %q leaked into All()", s.Name())
		}
	}
}

func TestParseAliases(t *testing.T) {
	for in, want := range map[string]string{
		"herad":         "HeRAD",
		"HeRAD":         "HeRAD",
		"  HERAD  ":     "HeRAD",
		"2catac":        "2CATAC",
		"twocatac":      "2CATAC",
		"2CATAC":        "2CATAC",
		"fertac":        "FERTAC",
		"otac (b)":      "OTAC (B)",
		"otac-b":        "OTAC (B)",
		"OTACB":         "OTAC (B)",
		"otac-l":        "OTAC (L)",
		"otacl":         "OTAC (L)",
		"2catac-memo":   "2CATAC (memo)",
		"twocatac-memo": "2CATAC (memo)",
		"brute":         "Brute",
		"brute-force":   "Brute",
		"exhaustive":    "Brute",
	} {
		s, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", in, s.Name(), want)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	_, err := Parse("banana")
	if err == nil {
		t.Fatal("Parse accepted unknown name")
	}
	msg := err.Error()
	for _, frag := range []string{"banana", "HeRAD", "2CATAC", "otac-b", "brute"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q does not mention %q", msg, frag)
		}
	}
	if _, ok := Get("banana"); ok {
		t.Error("Get resolved unknown name")
	}
	// "all" is reserved for sweeps, not a strategy name.
	if _, ok := Get("all"); ok {
		t.Error(`Get resolved reserved name "all"`)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on unknown name")
		}
	}()
	MustParse("banana")
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	for _, name := range []string{"HeRAD", "otacb", ""} {
		name := name
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", name)
				}
			}()
			Register(fakeScheduler{name: name})
		}()
	}
}

func TestScheduleDegenerateInputs(t *testing.T) {
	c := testChain(t)
	for _, s := range AllRegistered() {
		if got := s.Schedule(c, core.Resources{}, Options{}); !got.IsEmpty() {
			t.Errorf("%s scheduled on zero resources: %v", s.Name(), got)
		}
		if got := s.Schedule(nil, core.Res(2, 0), Options{}); !got.IsEmpty() {
			t.Errorf("%s scheduled a nil chain: %v", s.Name(), got)
		}
	}
}

func TestOptionsColocate(t *testing.T) {
	c := testChain(t)
	r := core.Res(2, 4)
	for _, s := range All() {
		plain := s.Schedule(c, r, Options{})
		fused := s.Schedule(c, r, Options{Colocate: true})
		if plain.IsEmpty() || fused.IsEmpty() {
			t.Fatalf("%s returned empty solution", s.Name())
		}
		if got, want := fused.Period(c), plain.Period(c); got > want*(1+1e-12) {
			t.Errorf("%s: colocation changed period %v -> %v", s.Name(), want, got)
		}
		if len(fused.Stages) > len(plain.Stages) {
			t.Errorf("%s: colocation grew pipeline %d -> %d stages",
				s.Name(), len(plain.Stages), len(fused.Stages))
		}
		if err := fused.Validate(c, r); err != nil {
			t.Errorf("%s colocated schedule invalid: %v", s.Name(), err)
		}
	}
}

func TestOptionsMemoizeIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := core.Res(3, 3)
	plain := MustParse("2catac")
	memoHidden := MustParse("2catac-memo")
	for i := 0; i < 20; i++ {
		c := chaingen.Generate(chaingen.Default(10, 0.5), rng)
		a := plain.Schedule(c, r, Options{})
		b := plain.Schedule(c, r, Options{Memoize: true})
		d := memoHidden.Schedule(c, r, Options{})
		if a.String() != b.String() || a.String() != d.String() {
			t.Fatalf("chain %d: memoized 2CATAC diverged:\n plain %v\n opt   %v\n memo  %v",
				i, a, b, d)
		}
	}
}

func TestOptionsBounds(t *testing.T) {
	c := testChain(t)
	r := core.Res(2, 4)
	s := MustParse("2catac")
	ref := s.Schedule(c, r, Options{})
	b := sched.DefaultBounds(c, r)
	got := s.Schedule(c, r, Options{Bounds: &b})
	if got.String() != ref.String() {
		t.Errorf("default bounds diverged: %v vs %v", got, ref)
	}
	// An infeasible interval (everything below the true period) finds nothing.
	p := ref.Period(c)
	bad := sched.Bounds{Min: p / 100, Max: p / 2, Eps: b.Eps}
	if got := s.Schedule(c, r, Options{Bounds: &bad}); !got.IsEmpty() {
		t.Errorf("infeasible bounds produced %v", got)
	}
	// Bounds-overridden runs keep the degenerate-input guard.
	if got := s.Schedule(c, core.Resources{}, Options{Bounds: &b}); !got.IsEmpty() {
		t.Errorf("bounds run scheduled on zero resources: %v", got)
	}
}

func TestOptionsRaw(t *testing.T) {
	// Raw skips HeRAD's replicable-stage merge: the raw pipeline is never
	// shorter and has the same period.
	rng := rand.New(rand.NewSource(11))
	h := MustParse("herad")
	r := core.Res(4, 4)
	for i := 0; i < 10; i++ {
		c := chaingen.Generate(chaingen.Default(12, 0.7), rng)
		merged := h.Schedule(c, r, Options{})
		raw := h.Schedule(c, r, Options{Raw: true})
		if raw.Period(c) != merged.Period(c) {
			t.Errorf("chain %d: raw period %v != merged %v", i, raw.Period(c), merged.Period(c))
		}
		if len(raw.Stages) < len(merged.Stages) {
			t.Errorf("chain %d: raw pipeline shorter than merged (%d < %d)",
				i, len(raw.Stages), len(merged.Stages))
		}
	}
}

// TestCrossStrategyProperties is the registry-driven property test: on
// random small chains, every registered strategy must produce a valid
// schedule, HeRAD must match the brute-force optimum, and no heuristic may
// beat it.
func TestCrossStrategyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	herad := MustParse("herad")
	resources := []core.Resources{
		core.Res(1, 1), core.Res(2, 1), core.Res(1, 3), core.Res(3, 3),
	}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6) // 2..7 tasks: brute-force stays tractable
		sr := float64(rng.Intn(11)) / 10
		c := chaingen.Generate(chaingen.Default(n, sr), rng)
		r := resources[rng.Intn(len(resources))]
		checkChainProperties(t, c, r, herad)
		if t.Failed() {
			t.Fatalf("trial %d: n=%d sr=%.1f R=%v", trial, n, sr, r)
		}
	}
}

func checkChainProperties(t *testing.T, c *core.Chain, r core.Resources, herad Scheduler) {
	t.Helper()
	opt := MustParse("brute").Schedule(c, r, Options{}).Period(c)
	hp := herad.Schedule(c, r, Options{}).Period(c)
	if diff := hp - opt; diff > 1e-9*opt {
		t.Errorf("HeRAD period %v > brute optimum %v", hp, opt)
	}
	for _, s := range AllRegistered() {
		sol := s.Schedule(c, r, Options{})
		if sol.IsEmpty() {
			t.Errorf("%s found no schedule", s.Name())
			continue
		}
		if err := sol.Validate(c, r); err != nil {
			t.Errorf("%s produced invalid schedule %v: %v", s.Name(), sol, err)
		}
		if p := sol.Period(c); p < opt*(1-1e-9) {
			t.Errorf("%s period %v beats the optimum %v", s.Name(), p, opt)
		}
	}
}

// FuzzParse checks the parser never panics and resolves only known names.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"herad", "2CATAC", " otac-b ", "all", "", "brute", "banana"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		s, err := Parse(name)
		if (s == nil) == (err == nil) {
			t.Fatalf("Parse(%q) = %v, %v", name, s, err)
		}
		if err == nil {
			if _, ok := Get(name); !ok {
				t.Fatalf("Parse resolved %q but Get did not", name)
			}
		}
	})
}

func TestMetricsScope(t *testing.T) {
	reg := obs.NewRegistry()
	sc := MustParse("herad")
	scoped := MetricsScope(sc, reg)
	if scoped == nil {
		t.Fatal("MetricsScope returned nil for a live registry")
	}
	scoped.Counter("drift.detected").Add(1)
	if got := reg.Counter("herad.drift.detected").Value(); got != 1 {
		t.Errorf("scoped counter did not land under the strategy slug: %d", got)
	}
	if MetricsScope(sc, nil) != nil {
		t.Error("nil registry not propagated")
	}
	if MetricsScope(nil, reg) != nil {
		t.Error("nil scheduler not propagated")
	}
}
