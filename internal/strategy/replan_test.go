package strategy

import (
	"bytes"
	"math/rand"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// editStream builds the workload ReplanBatch exists for: one base chain
// followed by chains that each differ from their predecessor by a single
// random reweigh — every fingerprint distinct, so the solution cache is
// structurally useless and only row reuse can help.
func editStream(seed int64, n, edits int) []Request {
	rng := rand.New(rand.NewSource(seed))
	c := chaingen.Generate(chaingen.Default(n, 0.5), rng)
	r := core.Res(3, 3)
	sc := MustParse("herad")
	reqs := []Request{{Chain: c, Resources: r, Scheduler: sc, Label: "base"}}
	for i := 0; i < edits; i++ {
		tasks := c.Tasks()
		j := rng.Intn(len(tasks))
		tasks[j].Weight = core.Weights(1+99*rng.Float64(), 1+99*rng.Float64())
		c = core.MustChain(tasks)
		reqs = append(reqs, Request{Chain: c, Resources: r, Scheduler: sc, Label: "edit"})
	}
	return reqs
}

// TestReplanBatchMatchesPlanBatch is the re-plan entry point's headline
// contract: over an edit stream, the warm-started results are identical to
// PlanBatch's from-scratch results — solutions, periods and errors — while
// actually reusing rows (every request past the first is a warm start that
// refills fewer rows than the chain has).
func TestReplanBatchMatchesPlanBatch(t *testing.T) {
	reqs := editStream(7, 14, 10)
	want := PlanBatch(reqs, 1)
	got, p, st := ReplanBatch(nil, reqs)
	assertSameResults(t, "replan", got, want)
	if p == nil {
		t.Fatal("no incumbent planner returned")
	}
	if st.WarmStarts != len(reqs) || st.Cold != 0 {
		t.Fatalf("stats = %+v, want %d warm starts, 0 cold", st, len(reqs))
	}
	if st.RowsTotal <= 0 || st.RowsRefilled >= st.RowsTotal {
		t.Fatalf("stats = %+v: warm starts saved no row work", st)
	}
}

// TestReplanBatchIncumbentCarryOver feeds two consecutive batches through
// the same incumbent: the second batch's first request warm-starts off the
// first batch's final chain instead of paying a full fill.
func TestReplanBatchIncumbentCarryOver(t *testing.T) {
	first := editStream(11, 12, 4)
	_, p, _ := ReplanBatch(nil, first)
	// Continue editing from where the first batch ended.
	last := first[len(first)-1]
	tasks := last.Chain.Tasks()
	tasks[len(tasks)-1].Weight = core.Weights(5, 9)
	next := Request{Chain: core.MustChain(tasks), Resources: last.Resources, Scheduler: last.Scheduler}
	got, p2, st := ReplanBatch(p, []Request{next})
	if p2 != p {
		t.Fatal("compatible batch replaced the incumbent planner")
	}
	if st.WarmStarts != 1 || st.Cold != 0 {
		t.Fatalf("stats = %+v, want pure warm start", st)
	}
	if st.RowsRefilled != 1 {
		t.Fatalf("tail reweigh refilled %d rows, want 1", st.RowsRefilled)
	}
	want := PlanBatch([]Request{next}, 1)
	assertSameResults(t, "carry-over", got, want)
}

// TestReplanBatchColdFallbacks pins every path that must bypass the
// planner: non-HeRAD schedulers, nil chains, mismatched resources and a
// different ε all fall back to the regular plan path — with results
// identical to PlanBatch — and are counted as cold.
func TestReplanBatchColdFallbacks(t *testing.T) {
	c := testChain(t)
	r := core.Res(2, 3)
	herad := MustParse("herad")
	reqs := []Request{
		{Chain: c, Resources: r, Scheduler: herad, Label: "warm"},
		{Chain: c, Resources: r, Scheduler: MustParse("fertac"), Label: "other-strategy"},
		{Chain: nil, Resources: r, Scheduler: herad, Label: "nil-chain"},
		{Chain: c, Resources: core.Res(4, 1), Scheduler: herad, Label: "other-resources"},
		{Chain: c, Resources: r, Scheduler: herad, Options: Options{Epsilon: 0.1}, Label: "other-epsilon"},
		{Chain: c, Resources: r, Scheduler: herad, Options: Options{Raw: true}, Label: "raw"},
		{Chain: c, Resources: r, Scheduler: herad, Label: "warm-again"},
	}
	got, _, st := ReplanBatch(nil, reqs)
	want := PlanBatch(reqs, 1)
	assertSameResults(t, "fallbacks", got, want)
	if st.WarmStarts != 2 || st.Cold != 5 {
		t.Fatalf("stats = %+v, want 2 warm starts and 5 cold", st)
	}
}

// TestReplanBatchEpsilonStream runs an ε-beam edit stream: results equal
// PlanBatch under the same ε (the planner must bake ε into its matrix, not
// fall back to exact).
func TestReplanBatchEpsilonStream(t *testing.T) {
	reqs := editStream(13, 16, 6)
	for i := range reqs {
		reqs[i].Options.Epsilon = 0.05
	}
	got, _, st := ReplanBatch(nil, reqs)
	want := PlanBatch(reqs, 1)
	assertSameResults(t, "epsilon stream", got, want)
	if st.Cold != 0 {
		t.Fatalf("stats = %+v: ε stream should be all warm", st)
	}
}

// TestReplanBatchObservability checks the journal and metrics of a warm
// start: the per-request span carries a replan event with the row counts,
// and the replan counters accumulate.
func TestReplanBatchObservability(t *testing.T) {
	reqs := editStream(17, 10, 3)
	j := trace.New()
	reg := obs.NewRegistry()
	for i := range reqs {
		reqs[i].Options.Trace = j.Root()
		reqs[i].Options.Metrics = reg
	}
	_, _, st := ReplanBatch(nil, reqs)
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if replans := bytes.Count(buf.Bytes(), []byte(`"replan"`)); replans != st.WarmStarts {
		t.Errorf("journal has %d replan events, stats say %d warm starts:\n%s",
			replans, st.WarmStarts, buf.Bytes())
	}
	var warm, refilled int64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "replan.warm_starts":
			warm = s.Count
		case "replan.rows_refilled":
			refilled = s.Count
		}
	}
	if warm != int64(st.WarmStarts) || refilled != int64(st.RowsRefilled) {
		t.Errorf("metrics warm=%d refilled=%d, stats %+v", warm, refilled, st)
	}
}
