package strategy

import (
	"ampsched/internal/brute"
	"ampsched/internal/core"
	"ampsched/internal/fertac"
	"ampsched/internal/herad"
	"ampsched/internal/obs"
	"ampsched/internal/otac"
	"ampsched/internal/trace"
	"ampsched/internal/twocatac"
)

// The built-in strategies, registered in the paper's presentation order so
// All() drives "-strategy all" sweeps and the experiment tables unchanged.
// The memoized 2CATAC ablation and the brute-force reference are hidden:
// resolvable by name, excluded from sweeps.
func init() {
	Register(heradScheduler{})
	Register(twocatacScheduler{}, "twocatac")
	Register(fertacScheduler{})
	Register(otacScheduler{v: core.Big}, "otac-b", "otacb")
	Register(otacScheduler{v: core.Little}, "otac-l", "otacl")
	RegisterHidden(twocatacScheduler{memo: true}, "2catac-memo", "twocatac-memo")
	RegisterHidden(bruteScheduler{}, "brute-force", "exhaustive")
}

// twoTypes reports whether chain and resources both declare exactly two
// core types — the defensive guard of the TypeConstrained strategies for
// direct Scheduler.Schedule calls (PlanBatch rejects mismatches with a
// descriptive error before the strategy ever runs; see CheckTypes).
func twoTypes(c *core.Chain, r core.Resources) bool {
	return r.NumTypes() == 2 && (c == nil || c.NumTypes() == 2)
}

// observe wraps a strategy's instrumented scheduling path with the
// common per-strategy series: schedule.ns (wall clock), schedule.calls
// and schedule.empty. It is nil-safe on m (journal-only runs pass a nil
// registry) — the fully disabled path never leaves the plain branch of
// each Schedule method.
func observe(m *obs.Registry, run func() core.Solution) core.Solution {
	stop := m.Timer("schedule.ns").Start()
	s := run()
	stop()
	m.Counter("schedule.calls").Inc()
	empty := m.Counter("schedule.empty") // registered even while zero
	if s.IsEmpty() {
		empty.Inc()
	}
	return s
}

// heradScheduler adapts the optimal dynamic program (Algos 7–11).
type heradScheduler struct{}

func (heradScheduler) Name() string { return "HeRAD" }

func (h heradScheduler) Schedule(c *core.Chain, r core.Resources, o Options) core.Solution {
	m := o.scope(h.Name())
	sp := o.span(h.Name())
	ho := heradOptions(o)
	if m == nil && sp == nil {
		return o.finish(c, herad.ScheduleOpts(c, r, ho))
	}
	s := observe(m, func() core.Solution {
		hm := herad.MetricsFrom(m)
		hm.Trace = trace.NewScope(sp)
		ho.Metrics = hm
		return o.finish(c, herad.ScheduleOpts(c, r, ho))
	})
	traceSolution(sp, c, s)
	return s
}

// twocatacScheduler adapts 2CATAC (Algos 5–6); memo selects the memoized
// ablation variant (also reachable on the plain entry via Options.Memoize).
type twocatacScheduler struct{ memo bool }

func (t twocatacScheduler) Name() string {
	if t.memo {
		return "2CATAC (memo)"
	}
	return "2CATAC"
}

// SupportedTypes declares the two-choice recursion's fixed platform shape.
func (twocatacScheduler) SupportedTypes() int { return 2 }

func (t twocatacScheduler) Schedule(c *core.Chain, r core.Resources, o Options) core.Solution {
	if !twoTypes(c, r) {
		return core.Solution{}
	}
	memo := t.memo || o.Memoize
	m := o.scope(t.Name())
	sp := o.span(t.Name())
	if m == nil && sp == nil {
		return o.finish(c, binarySearch(c, r, o, twocatac.Compute(memo)))
	}
	s := observe(m, func() core.Solution {
		tm := twocatac.MetricsFrom(m)
		tm.Sched.Trace = trace.NewScope(sp)
		return o.finish(c, binarySearchM(c, r, o, twocatac.ComputeObs(memo, tm), tm.Sched))
	})
	traceSolution(sp, c, s)
	return s
}

// fertacScheduler adapts FERTAC (Algo 4).
type fertacScheduler struct{}

func (fertacScheduler) Name() string { return "FERTAC" }

// SupportedTypes declares the little-first greedy's fixed platform shape.
func (fertacScheduler) SupportedTypes() int { return 2 }

func (f fertacScheduler) Schedule(c *core.Chain, r core.Resources, o Options) core.Solution {
	if !twoTypes(c, r) {
		return core.Solution{}
	}
	m := o.scope(f.Name())
	sp := o.span(f.Name())
	if m == nil && sp == nil {
		return o.finish(c, binarySearch(c, r, o, fertac.ComputeSolution))
	}
	s := observe(m, func() core.Solution {
		fm := fertac.MetricsFrom(m)
		fm.Sched.Trace = trace.NewScope(sp)
		return o.finish(c, binarySearchM(c, r, o, fertac.ComputeObs(fm), fm.Sched))
	})
	traceSolution(sp, c, s)
	return s
}

// otacScheduler adapts the homogeneous OTAC baseline: it schedules on the
// v component of the resources only, ignoring the other type.
type otacScheduler struct{ v core.CoreType }

func (s otacScheduler) Name() string { return "OTAC (" + s.v.String() + ")" }

// SupportedTypes declares the single-type baseline's fixed platform shape
// (it reads one component of a two-type platform).
func (otacScheduler) SupportedTypes() int { return 2 }

func (s otacScheduler) Schedule(c *core.Chain, r core.Resources, o Options) core.Solution {
	if !twoTypes(c, r) {
		return core.Solution{}
	}
	rr := r.Only(s.v)
	m := o.scope(s.Name())
	sp := o.span(s.Name())
	if m == nil && sp == nil {
		return o.finish(c, binarySearch(c, rr, o, otac.Compute(s.v)))
	}
	sol := observe(m, func() core.Solution {
		om := otac.MetricsFrom(m)
		om.Sched.Trace = trace.NewScope(sp)
		return o.finish(c, binarySearchM(c, rr, o, otac.ComputeObs(s.v, om), om.Sched))
	})
	traceSolution(sp, c, sol)
	return sol
}

// bruteScheduler adapts the exhaustive reference solver. Exponential — the
// registry exposes it for tests and tiny chains, not for sweeps.
type bruteScheduler struct{}

func (bruteScheduler) Name() string { return "Brute" }

func (b bruteScheduler) Schedule(c *core.Chain, r core.Resources, o Options) core.Solution {
	m := o.scope(b.Name())
	sp := o.span(b.Name())
	if m == nil && sp == nil {
		return o.finish(c, brute.Schedule(c, r))
	}
	s := observe(m, func() core.Solution {
		bm := brute.MetricsFrom(m)
		bm.Trace = trace.NewScope(sp)
		return o.finish(c, brute.ScheduleObs(c, r, bm))
	})
	traceSolution(sp, c, s)
	return s
}
