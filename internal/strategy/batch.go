package strategy

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Request is one unit of batch planning work: schedule Chain on Resources
// with Scheduler under Options. Label is an optional caller tag carried
// through to the Result untouched.
type Request struct {
	Chain     *core.Chain
	Resources core.Resources
	Scheduler Scheduler
	Options   Options
	Label     string
}

// Result is the outcome of one Request. Err is set when the request was
// malformed (nil chain or scheduler) or the strategy found no schedule; in
// both cases Solution is empty and Period is +Inf.
type Result struct {
	Request  Request
	Solution core.Solution
	Period   float64
	Elapsed  time.Duration
	Err      error
}

// PlanBatch schedules every request concurrently on a bounded worker pool
// and returns one Result per request, in request order. Each strategy is
// deterministic, so a batch result is byte-for-byte the result of running
// the requests serially — only the wall-clock changes.
//
// Requests whose Options carry a metrics registry report their strategy
// series into it as usual, and PlanBatch aggregates batch-level series
// under "planbatch." (batches, requests, errors, workers, per-request
// latency). Counter updates are atomic and order-independent, so the
// aggregation never perturbs the deterministic result ordering — nor,
// for deterministic workloads, the exported counter values.
//
// workers bounds the pool; workers ≤ 0 uses GOMAXPROCS. The pool never
// exceeds the number of requests.
func PlanBatch(reqs []Request, workers int) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	// Batch-level summary, recorded once per batch on the first request
	// that carries a registry (requests usually share one).
	for i := range reqs {
		if m := reqs[i].Options.Metrics.Sub("planbatch"); m != nil {
			m.Counter("batches").Inc()
			m.Gauge("workers").Set(float64(workers))
			break
		}
	}
	// Journal spans are opened here, serially and in request order, before
	// any worker runs. Each worker then appends only under its own request
	// span, so the exported journal is byte-for-byte identical no matter
	// how the pool interleaves the requests.
	spans := make([]*trace.Span, len(reqs))
	for i := range reqs {
		if t := reqs[i].Options.Trace; t != nil {
			sp := t.Begin("request").Int("index", i)
			if reqs[i].Label != "" {
				sp.Str("label", reqs[i].Label)
			}
			if reqs[i].Scheduler != nil {
				sp.Str("scheduler", reqs[i].Scheduler.Name())
			}
			spans[i] = sp
		}
	}
	if workers == 1 {
		for i := range reqs {
			out[i] = plan(reqs[i], spans[i])
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = plan(reqs[i], spans[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// PlanAll runs every non-hidden registered strategy over one (chain,
// resources) pair — the batched form of a "-strategy all" sweep.
func PlanAll(c *core.Chain, r core.Resources, opts Options, workers int) []Result {
	all := All()
	reqs := make([]Request, len(all))
	for i, s := range all {
		reqs[i] = Request{Chain: c, Resources: r, Scheduler: s, Options: opts, Label: s.Name()}
	}
	return PlanBatch(reqs, workers)
}

// plan runs one request. sp, when non-nil, is the request's pre-opened
// journal span: the strategy journals under it (via the Options value copy)
// and plan appends one deterministic "result" event — period on success,
// the error string on failure, never the wall-clock Elapsed.
func plan(req Request, sp *trace.Span) Result {
	req.Options.Trace = sp
	res := Result{Request: req}
	switch {
	case req.Scheduler == nil:
		res.Err = errors.New("strategy: request has no scheduler")
		res.Period = res.Solution.Period(nil)
	case req.Chain == nil:
		res.Err = fmt.Errorf("strategy: %s request has no chain", req.Scheduler.Name())
		res.Period = res.Solution.Period(nil)
	default:
		start := time.Now()
		res.Solution = req.Scheduler.Schedule(req.Chain, req.Resources, req.Options)
		res.Elapsed = time.Since(start)
		res.Period = res.Solution.Period(req.Chain)
		if res.Solution.IsEmpty() {
			res.Err = fmt.Errorf("strategy: %s found no schedule for R=%v",
				req.Scheduler.Name(), req.Resources)
		}
	}
	if sp != nil {
		if res.Err != nil {
			sp.Event("result").Str("error", res.Err.Error())
		} else {
			sp.Event("result").F64("period", res.Period).Int("stages", len(res.Solution.Stages))
		}
	}
	if m := req.Options.Metrics.Sub("planbatch"); m != nil {
		m.Counter("requests").Inc()
		errs := m.Counter("errors") // registered even while zero
		if res.Err != nil {
			errs.Inc()
		}
		m.Histogram("request_us", obs.DurationBucketsUs).
			Observe(float64(res.Elapsed.Nanoseconds()) / 1e3)
	}
	return res
}
