package strategy

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
	"ampsched/internal/trace"
)

// Request is one unit of batch planning work: schedule Chain on Resources
// with Scheduler under Options. Label is an optional caller tag carried
// through to the Result untouched.
type Request struct {
	Chain     *core.Chain
	Resources core.Resources
	Scheduler Scheduler
	Options   Options
	Label     string
}

// Result is the outcome of one Request. Err is set when the request was
// malformed (nil chain or scheduler) or the strategy found no schedule; in
// both cases Solution is empty and Period is +Inf.
type Result struct {
	Request  Request
	Solution core.Solution
	Period   float64
	Elapsed  time.Duration
	Err      error
}

// planMode classifies how PlanBatch resolves one request: by running the
// strategy (solve), by reading a solution cached by a previous batch
// (hit), by solving once on behalf of later in-batch duplicates (leader),
// or by copying an in-batch leader's result (follower).
type planMode uint8

const (
	modeSolve planMode = iota
	modeHit
	modeLeader
	modeFollower
)

// PlanBatch schedules every request concurrently on a bounded worker pool
// and returns one Result per request, in request order. Each strategy is
// deterministic, so a batch result is byte-for-byte the result of running
// the requests serially — only the wall-clock changes.
//
// Requests whose Options carry a metrics registry report their strategy
// series into it as usual, and PlanBatch aggregates batch-level series
// under "planbatch." (batches, requests, errors, workers, per-request
// latency, cache hits/misses). Counter updates are atomic and
// order-independent, so the aggregation never perturbs the deterministic
// result ordering — nor, for deterministic workloads, the exported
// counter values.
//
// Requests whose Options carry a Cache are first classified serially, in
// request order: a key already in the cache is a hit, the first in-batch
// occurrence of a new key is its leader, and later occurrences are
// followers. Only leaders (and uncached requests) reach the worker pool;
// hits and followers are resolved from the stored solution afterwards,
// again in request order, so cache resolution — like the journal — is
// independent of pool interleaving.
//
// workers bounds the pool; workers ≤ 0 uses GOMAXPROCS. The pool never
// exceeds the number of requests it has to solve.
func PlanBatch(reqs []Request, workers int) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	// Batch-level summary, recorded once per batch on the first request
	// that carries a registry (requests usually share one).
	for i := range reqs {
		if m := reqs[i].Options.Metrics.Sub("planbatch"); m != nil {
			m.Counter("batches").Inc()
			m.Gauge("workers").Set(float64(workers))
			break
		}
	}
	// Journal spans are opened here, serially and in request order, before
	// any worker runs. Each worker then appends only under its own request
	// span, so the exported journal is byte-for-byte identical no matter
	// how the pool interleaves the requests.
	spans := make([]*trace.Span, len(reqs))
	for i := range reqs {
		if t := reqs[i].Options.Trace; t != nil {
			sp := t.Begin("request").Int("index", i)
			if reqs[i].Label != "" {
				sp.Str("label", reqs[i].Label)
			}
			if reqs[i].Scheduler != nil {
				sp.Str("scheduler", reqs[i].Scheduler.Name())
			}
			spans[i] = sp
		}
	}
	// Cache pre-pass: serial and in request order, so hit/miss counters
	// and leader election are deterministic for a given request sequence.
	mode := make([]planMode, len(reqs))
	keys := make([]cacheKey, len(reqs))
	leaderOf := make([]int, len(reqs))
	cached := make([]core.Solution, len(reqs))
	leaders := map[cacheKey]int{}
	for i := range reqs {
		k, ok := requestKey(reqs[i])
		if !ok {
			continue
		}
		keys[i] = k
		cache := reqs[i].Options.Cache
		m := reqs[i].Options.Metrics.Sub("planbatch")
		var hits, misses *obs.Counter
		if m != nil {
			hits = m.Counter("cache.hits") // registered even while zero
			misses = m.Counter("cache.misses")
		}
		if s, hit := cache.get(k); hit {
			mode[i] = modeHit
			cached[i] = s
			cache.hits.Add(1)
			hits.Inc()
		} else if j, dup := leaders[k]; dup {
			mode[i] = modeFollower
			leaderOf[i] = j
			cache.hits.Add(1) // in-batch duplicate: solved once, reused
			hits.Inc()
		} else {
			mode[i] = modeLeader
			leaders[k] = i
			cache.misses.Add(1)
			misses.Inc()
		}
	}
	solve := make([]int, 0, len(reqs))
	for i := range reqs {
		if mode[i] == modeSolve || mode[i] == modeLeader {
			solve = append(solve, i)
		}
	}
	if workers > len(solve) && len(solve) > 0 {
		workers = len(solve)
	}
	if workers == 1 || len(solve) == 0 {
		for i := range reqs {
			switch mode[i] {
			case modeHit:
				out[i] = resolveCached(reqs[i], spans[i], cached[i], -1)
			case modeFollower:
				out[i] = resolveCached(reqs[i], spans[i], out[leaderOf[i]].Solution, leaderOf[i])
			default:
				out[i] = plan(reqs[i], spans[i], false)
				if mode[i] == modeLeader {
					reqs[i].Options.Cache.put(keys[i], out[i].Solution)
				}
			}
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = plan(reqs[i], spans[i], true)
			}
		}()
	}
	for _, i := range solve {
		idx <- i
	}
	close(idx)
	wg.Wait()
	// Publish leader solutions, then resolve hits and followers — serial
	// and in request order, like the pre-pass.
	for _, i := range solve {
		if mode[i] == modeLeader {
			reqs[i].Options.Cache.put(keys[i], out[i].Solution)
		}
	}
	for i := range reqs {
		switch mode[i] {
		case modeHit:
			out[i] = resolveCached(reqs[i], spans[i], cached[i], -1)
		case modeFollower:
			out[i] = resolveCached(reqs[i], spans[i], out[leaderOf[i]].Solution, leaderOf[i])
		}
	}
	return out
}

// PlanAll runs every non-hidden registered strategy over one (chain,
// resources) pair — the batched form of a "-strategy all" sweep.
func PlanAll(c *core.Chain, r core.Resources, opts Options, workers int) []Result {
	all := All()
	reqs := make([]Request, len(all))
	for i, s := range all {
		reqs[i] = Request{Chain: c, Resources: r, Scheduler: s, Options: opts, Label: s.Name()}
	}
	return PlanBatch(reqs, workers)
}

// plan runs one request. sp, when non-nil, is the request's pre-opened
// journal span: the strategy journals under it (via the Options value copy)
// and plan appends one deterministic "result" event — period on success,
// the error string on failure, never the wall-clock Elapsed.
//
// batchParallel reports whether plan was called from a parallel pool; in
// that case an unset Options.Workers defaults to the serial solver fill —
// request-level parallelism already saturates the machine, and nesting a
// per-request GOMAXPROCS-wide wavefront pool underneath would oversubscribe
// it. An explicit Workers value is always honored. plan operates on its own
// Request copy, so the caller's slice is never mutated.
func plan(req Request, sp *trace.Span, batchParallel bool) Result {
	if batchParallel && req.Options.Workers == 0 {
		req.Options.Workers = 1
	}
	req.Options.Trace = sp
	res := Result{Request: req}
	switch {
	case req.Scheduler == nil:
		res.Err = errors.New("strategy: request has no scheduler")
		res.Period = res.Solution.Period(nil)
	case req.Chain == nil:
		res.Err = fmt.Errorf("strategy: %s request has no chain", req.Scheduler.Name())
		res.Period = res.Solution.Period(nil)
	default:
		if err := CheckTypes(req.Scheduler, req.Chain, req.Resources); err != nil {
			// A type-table mismatch (k≠2 resources on a two-type strategy, or
			// chain/platform disagreement) fails loudly instead of letting the
			// strategy silently misplan.
			res.Err = err
			res.Period = res.Solution.Period(nil)
			break
		}
		start := time.Now()
		res.Solution = req.Scheduler.Schedule(req.Chain, req.Resources, req.Options)
		res.Elapsed = time.Since(start)
		res.Period = res.Solution.Period(req.Chain)
		if res.Solution.IsEmpty() {
			res.Err = fmt.Errorf("strategy: %s found no schedule for R=%v",
				req.Scheduler.Name(), req.Resources)
		}
	}
	if sp != nil {
		if res.Err != nil {
			sp.Event("result").Str("error", res.Err.Error())
		} else {
			sp.Event("result").F64("period", res.Period).Int("stages", len(res.Solution.Stages))
		}
	}
	if m := req.Options.Metrics.Sub("planbatch"); m != nil {
		m.Counter("requests").Inc()
		errs := m.Counter("errors") // registered even while zero
		if res.Err != nil {
			errs.Inc()
		}
		m.Histogram("request_us", obs.DurationBucketsUs).
			Observe(float64(res.Elapsed.Nanoseconds()) / 1e3)
	}
	recordPlanFlight(req, res)
	return res
}

// recordPlanFlight appends one CodePlan flight event for a resolved
// request: A is the emitted period (+Inf on failure), B the stage count,
// Aux the strategy name. No-op without a recorder.
func recordPlanFlight(req Request, res Result) {
	fr := req.Options.Flight
	if fr == nil {
		return
	}
	var aux uint32
	if req.Scheduler != nil {
		aux = fr.Intern(req.Scheduler.Name())
	}
	fr.Record(flight.Event{
		Code:  flight.CodePlan,
		Stage: -1,
		Aux:   aux,
		A:     res.Period,
		B:     float64(len(res.Solution.Stages)),
	})
}

// resolveCached builds the Result of a cache-served request from the
// stored solution without invoking the strategy. leader is the in-batch
// index that solved this key, or -1 when the solution came from a
// previous batch. The journal gains a "cache_hit" event in place of the
// solver's decision trail, followed by the same deterministic "result"
// event plan would have appended; the batch-level request counters are
// maintained identically, so requests == hits + misses-side solves holds
// for every registry.
func resolveCached(req Request, sp *trace.Span, sol core.Solution, leader int) Result {
	start := time.Now()
	res := Result{Request: req, Solution: cloneSolution(sol)}
	res.Period = res.Solution.Period(req.Chain)
	if res.Solution.IsEmpty() {
		res.Err = fmt.Errorf("strategy: %s found no schedule for R=%v",
			req.Scheduler.Name(), req.Resources)
	}
	res.Elapsed = time.Since(start)
	if sp != nil {
		ev := sp.Event("cache_hit")
		if leader >= 0 {
			ev.Int("leader_index", leader)
		}
		if res.Err != nil {
			sp.Event("result").Str("error", res.Err.Error())
		} else {
			sp.Event("result").F64("period", res.Period).Int("stages", len(res.Solution.Stages))
		}
	}
	if m := req.Options.Metrics.Sub("planbatch"); m != nil {
		m.Counter("requests").Inc()
		m.Counter("errors") // registered even while zero
		if res.Err != nil {
			m.Counter("errors").Inc()
		}
		m.Histogram("request_us", obs.DurationBucketsUs).
			Observe(float64(res.Elapsed.Nanoseconds()) / 1e3)
	}
	recordPlanFlight(req, res)
	return res
}
