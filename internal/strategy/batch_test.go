package strategy

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
)

// fakeScheduler lets tests observe concurrency without real scheduling
// work. Schedule blocks until release is closed (when set), so a test can
// count how many invocations run simultaneously.
type fakeScheduler struct {
	name    string
	active  *int32
	peak    *int32
	release chan struct{}
}

func (f fakeScheduler) Name() string { return f.name }

func (f fakeScheduler) Schedule(c *core.Chain, r core.Resources, o Options) core.Solution {
	if f.active != nil {
		n := atomic.AddInt32(f.active, 1)
		for {
			p := atomic.LoadInt32(f.peak)
			if n <= p || atomic.CompareAndSwapInt32(f.peak, p, n) {
				break
			}
		}
		if f.release != nil {
			<-f.release
		}
		atomic.AddInt32(f.active, -1)
	}
	return core.Solution{Stages: []core.Stage{{Start: 0, End: c.Len() - 1, Cores: 1, Type: core.Big}}}
}

func batchRequests(t testing.TB, n int) []Request {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	r := core.Res(3, 3)
	var reqs []Request
	for i := 0; i < n; i++ {
		c := chaingen.Generate(chaingen.Default(8+rng.Intn(8), 0.5), rng)
		for _, s := range All() {
			reqs = append(reqs, Request{Chain: c, Resources: r, Scheduler: s, Label: s.Name()})
		}
	}
	return reqs
}

func TestPlanBatchMatchesSerial(t *testing.T) {
	reqs := batchRequests(t, 12)
	serial := PlanBatch(reqs, 1)
	for _, workers := range []int{0, 2, 7, len(reqs) + 50} {
		par := PlanBatch(reqs, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].Request.Label != reqs[i].Label {
				t.Fatalf("workers=%d: result %d out of order: %q", workers, i, par[i].Request.Label)
			}
			if par[i].Solution.String() != serial[i].Solution.String() ||
				par[i].Period != serial[i].Period {
				t.Errorf("workers=%d result %d (%s): %v p=%v, serial %v p=%v",
					workers, i, reqs[i].Label, par[i].Solution, par[i].Period,
					serial[i].Solution, serial[i].Period)
			}
			if par[i].Err != nil {
				t.Errorf("workers=%d result %d: %v", workers, i, par[i].Err)
			}
		}
	}
}

func TestPlanBatchWorkerBound(t *testing.T) {
	const workers, n = 3, 24
	var active, peak int32
	release := make(chan struct{})
	fs := fakeScheduler{name: "fake", active: &active, peak: &peak, release: release}
	c := testChain(t)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Chain: c, Resources: core.Res(1, 0), Scheduler: fs}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		PlanBatch(reqs, workers)
	}()
	// Let the pool saturate, then release everyone.
	for atomic.LoadInt32(&active) < workers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := atomic.LoadInt32(&peak); got != workers {
		t.Errorf("peak concurrency %d, want exactly %d", got, workers)
	}
}

func TestPlanBatchErrors(t *testing.T) {
	c := testChain(t)
	reqs := []Request{
		{Chain: c, Resources: core.Res(2, 0), Scheduler: MustParse("herad")},
		{Chain: nil, Resources: core.Res(2, 0), Scheduler: MustParse("herad")},
		{Chain: c, Resources: core.Res(2, 0)}, // no scheduler
		{Chain: c, Resources: core.Resources{}, Scheduler: MustParse("fertac")},
	}
	res := PlanBatch(reqs, 2)
	if res[0].Err != nil || res[0].Solution.IsEmpty() {
		t.Errorf("healthy request failed: %+v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Err == nil {
			t.Errorf("request %d: want error, got %+v", i, res[i])
		}
		if !res[i].Solution.IsEmpty() || !math.IsInf(res[i].Period, 1) {
			t.Errorf("request %d: want empty solution and +Inf period, got %v p=%v",
				i, res[i].Solution, res[i].Period)
		}
	}
}

func TestPlanBatchEmpty(t *testing.T) {
	if res := PlanBatch(nil, 4); len(res) != 0 {
		t.Errorf("PlanBatch(nil) = %v", res)
	}
}

func TestPlanAll(t *testing.T) {
	c := testChain(t)
	r := core.Res(2, 4)
	res := PlanAll(c, r, Options{}, 0)
	names := Names()
	if len(res) != len(names) {
		t.Fatalf("%d results, want %d", len(res), len(names))
	}
	for i, re := range res {
		if re.Request.Label != names[i] {
			t.Errorf("result %d labeled %q, want %q", i, re.Request.Label, names[i])
		}
		if re.Err != nil {
			t.Errorf("%s: %v", names[i], re.Err)
		}
		if want := re.Request.Scheduler.Schedule(c, r, Options{}); re.Solution.String() != want.String() {
			t.Errorf("%s: batch %v, direct %v", names[i], re.Solution, want)
		}
		if re.Elapsed <= 0 {
			t.Errorf("%s: non-positive Elapsed %v", names[i], re.Elapsed)
		}
	}
}
