package strategy

import (
	"strings"
	"testing"

	"ampsched/internal/core"
)

func testChain3(t testing.TB) *core.Chain {
	t.Helper()
	return core.MustChain([]core.Task{
		{Name: "a", Weight: core.Weights(40, 90, 60), Replicable: false},
		{Name: "b", Weight: core.Weights(120, 300, 180), Replicable: true},
		{Name: "c", Weight: core.Weights(200, 520, 330), Replicable: true},
	})
}

// TestCheckTypes covers the registry's type-table gate directly: the
// two-type strategies reject k≠2 platforms with a descriptive error, the
// k-generic ones accept them, and chain/platform disagreement is always
// an error.
func TestCheckTypes(t *testing.T) {
	c2, c3 := testChain(t), testChain3(t)
	r3 := core.Res(2, 2, 2)
	for _, name := range []string{"2CATAC", "FERTAC", "OTAC (B)", "OTAC (L)"} {
		err := CheckTypes(MustParse(name), c3, r3)
		if err == nil || !strings.Contains(err.Error(), "supports exactly 2 core types") {
			t.Errorf("%s on %v: err = %v, want a supports-exactly-2 error", name, r3, err)
		}
	}
	for _, name := range []string{"HeRAD", "Brute"} {
		if err := CheckTypes(MustParse(name), c3, r3); err != nil {
			t.Errorf("%s on %v: unexpected %v", name, r3, err)
		}
	}
	if err := CheckTypes(MustParse("HeRAD"), c2, r3); err == nil {
		t.Error("2-type chain on 3-type platform accepted")
	}
	if err := CheckTypes(MustParse("2CATAC"), c2, core.Res(4, 4)); err != nil {
		t.Errorf("2-type happy path: %v", err)
	}
}

// TestPlanBatchRejectsTypeMismatch: a k=3 request on a two-type strategy
// fails loudly through PlanBatch — a clear error, an empty solution, and
// no caching of the rejected request.
func TestPlanBatchRejectsTypeMismatch(t *testing.T) {
	c3 := testChain3(t)
	r3 := core.Res(2, 2, 2)
	cache := NewCache()
	reqs := []Request{
		{Chain: c3, Resources: r3, Scheduler: MustParse("fertac"), Options: Options{Cache: cache}},
		{Chain: c3, Resources: r3, Scheduler: MustParse("herad"), Options: Options{Cache: cache}},
	}
	res := PlanBatch(reqs, 1)
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "supports exactly 2 core types") {
		t.Errorf("FERTAC on k=3: err = %v", res[0].Err)
	}
	if !res[0].Solution.IsEmpty() {
		t.Errorf("FERTAC on k=3 returned a solution: %v", res[0].Solution)
	}
	if res[1].Err != nil {
		t.Errorf("HeRAD on k=3: %v", res[1].Err)
	}
	if err := res[1].Solution.Validate(c3, r3); err != nil {
		t.Errorf("HeRAD k=3 schedule invalid: %v", err)
	}
	// Only the HeRAD solve entered the cache; the rejected request must
	// not have been stored (a second batch re-fails with the same error).
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	res2 := PlanBatch(reqs[:1], 1)
	if res2[0].Err == nil || res2[0].Err.Error() != res[0].Err.Error() {
		t.Errorf("re-batched mismatch: err = %v, want %v", res2[0].Err, res[0].Err)
	}
}

// TestSchedulerDirectCallK3 covers the defensive guard on direct Schedule
// calls, which bypass CheckTypes: two-type strategies return an empty
// solution instead of misreading a k=3 platform.
func TestSchedulerDirectCallK3(t *testing.T) {
	c3 := testChain3(t)
	r3 := core.Res(2, 2, 2)
	for _, name := range []string{"2CATAC", "FERTAC", "OTAC (B)", "OTAC (L)"} {
		if s := MustParse(name).Schedule(c3, r3, Options{}); !s.IsEmpty() {
			t.Errorf("%s scheduled a k=3 platform: %v", name, s)
		}
	}
	if s := MustParse("HeRAD").Schedule(c3, r3, Options{}); s.IsEmpty() {
		t.Error("HeRAD found no k=3 schedule")
	}
}
