// Package strategy unifies every scheduling strategy of the repository —
// the paper's five evaluated strategies (HeRAD, 2CATAC, FERTAC, OTAC (B),
// OTAC (L)), the memoized 2CATAC ablation, and the brute-force reference —
// behind a single Scheduler interface and a name registry.
//
// The registry is the one place that maps strategy names (and their
// documented aliases) to implementations: cmd/ampsched, cmd/experiments,
// internal/experiments and the examples all dispatch through Parse/Get
// instead of maintaining their own string switches. Options carries the
// cross-cutting knobs (stage co-location, raw extraction, 2CATAC
// memoization, custom period bounds) that used to be threaded by hand.
//
// PlanBatch (batch.go) adds a concurrent planning layer on top: a bounded
// worker pool that fans (chain, resources, scheduler) requests out across
// CPUs and returns per-request solutions with timing.
package strategy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
	"ampsched/internal/sched"
	"ampsched/internal/trace"
)

// Scheduler is a scheduling strategy: it computes a pipelined-and-
// replicated schedule of a task chain on the platform's typed resources.
// Implementations must be safe for concurrent use (PlanBatch invokes them
// from multiple goroutines) and must return the empty solution — never
// panic — when no valid schedule exists. Strategies defined for a fixed
// number of core types additionally implement TypeConstrained.
type Scheduler interface {
	// Name returns the canonical display name (e.g. "HeRAD", "OTAC (B)"),
	// unique within the registry.
	Name() string
	// Schedule computes a schedule of c on r under the given options.
	Schedule(c *core.Chain, r core.Resources, opts Options) core.Solution
}

// TypeConstrained is implemented by Schedulers that only handle platforms
// with a specific number of core types (the paper's greedy strategies —
// 2CATAC, FERTAC, OTAC — are defined for exactly two). PlanBatch rejects
// requests whose resources declare a different type count with a clear
// error instead of letting the strategy silently misplan; CheckTypes
// exposes the same test to drivers. Schedulers without the method (HeRAD,
// Brute) accept any type count.
type TypeConstrained interface {
	// SupportedTypes returns the exact number of core types the scheduler
	// handles.
	SupportedTypes() int
}

// CheckTypes verifies that chain, resources and scheduler agree on the
// number of core types: the chain must declare one weight per resource
// type, and a TypeConstrained scheduler must support that count. It
// returns nil for unconstrained schedulers on matching inputs.
func CheckTypes(s Scheduler, c *core.Chain, r core.Resources) error {
	if c != nil && c.NumTypes() != r.NumTypes() {
		return fmt.Errorf("strategy: chain declares %d core types, resources %v declare %d",
			c.NumTypes(), r, r.NumTypes())
	}
	if tc, ok := s.(TypeConstrained); ok && r.NumTypes() != tc.SupportedTypes() {
		return fmt.Errorf("strategy: %s supports exactly %d core types, resources %v declare %d",
			s.Name(), tc.SupportedTypes(), r, r.NumTypes())
	}
	return nil
}

// Options carries the cross-cutting scheduling knobs shared by every
// strategy. The zero value reproduces each strategy's published behavior.
type Options struct {
	// Colocate applies the §VII stage co-location post-pass: adjacent
	// light stages are fused (Solution.Fuse) at the schedule's own period
	// when that shortens the pipeline. The period never changes.
	Colocate bool
	// Raw skips a strategy's embellishing post-pass — currently HeRAD's
	// replicable-stage merge — exposing schedules exactly as computed.
	Raw bool
	// Memoize collapses 2CATAC's exponential recursion tree per
	// binary-search probe (twocatac.ScheduleMemo); the schedules are
	// identical. Strategies without a memoized variant ignore it.
	Memoize bool
	// Bounds overrides the period interval searched by the binary-search
	// strategies (2CATAC, FERTAC, OTAC). Nil uses the paper's
	// sched.DefaultBounds plus the robustness fallback; a non-nil value
	// disables the fallback. HeRAD and Brute ignore it.
	Bounds *sched.Bounds
	// Epsilon > 0 selects a strategy's bounded-suboptimality mode when it
	// has one — currently HeRAD's ε-optimal beam-pruned DP fill, whose
	// emitted period P satisfies P ≤ (1+ε)·P* (herad.Options.Epsilon;
	// DESIGN.md §4g). Zero, negative and NaN all mean the exact solver,
	// bit-identical to the pre-ε behavior. Unlike Workers, ε changes the
	// emitted schedule, so it is part of the solution cache key; strategies
	// without an approximate mode ignore it.
	Epsilon float64
	// Workers bounds the intra-schedule worker pool of strategies with a
	// parallel solver — currently HeRAD's wavefront DP fill. ≤ 0 uses
	// GOMAXPROCS, 1 forces the serial fill; strategies without internal
	// parallelism ignore it. Every strategy is bit-identical across worker
	// counts — only the wall clock changes — so Workers never enters the
	// solution cache key. PlanBatch defaults unset Workers to 1 when its
	// own pool is parallel (request-level parallelism already saturates
	// the machine) and leaves the full-machine default for serial batches.
	Workers int
	// Cache, when non-nil, lets PlanBatch reuse solutions across identical
	// requests — duplicates within a batch and repeats across batches
	// sharing the cache — instead of re-solving them. The key is (chain
	// fingerprint, resources, strategy name, Colocate, Raw, Memoize,
	// Epsilon, Bounds); Workers and the observability sinks are excluded because
	// they never change the emitted schedule. Every strategy is
	// deterministic, so cached batches return byte-identical Results; only
	// the strategy-internal metric and journal volume shrinks (a hit emits
	// a "cache_hit" journal event instead of the solver's decision trail).
	// Direct Scheduler.Schedule calls ignore it. Nil disables caching with
	// zero behavior change.
	Cache *Cache
	// Metrics is the observability sink. When non-nil, every strategy
	// reports its named series into it, scoped by the strategy's slug
	// ("herad.dp.cells", "fertac.sched.search.iterations", …); PlanBatch
	// additionally aggregates batch-level series under "planbatch.".
	// When nil (the default) instrumentation is disabled and adds zero
	// allocations per schedule.
	Metrics *obs.Registry
	// Trace is the decision-journal parent span. When non-nil, every
	// strategy opens a "strategy" child span and journals its decisions
	// under it (binary-search probes, DP cells, greedy placements, the
	// final per-stage commitments); PlanBatch additionally opens one
	// "request" span per batch item. When nil (the default) journaling is
	// disabled and adds zero allocations per schedule.
	Trace *trace.Span
	// Flight is the black-box flight recorder. When non-nil, PlanBatch
	// records one CodePlan event per resolved request and ReplanBatch one
	// CodeReplan event per warm start. Like Metrics and Trace it is a pure
	// observability sink — it never changes the emitted schedule — and is
	// therefore excluded from the solution cache key. Nil (the default)
	// records nothing at zero cost.
	Flight *flight.Recorder
}

// MetricsScope returns the per-scheduler view of reg — the same slugged
// scoping every strategy applies to its own planning series ("herad.",
// "otac-b.", …) — so runtime telemetry recorded next to a strategy
// (drift counters, live samplers) lands under the strategy's prefix.
// Returns nil when reg or s is nil.
func MetricsScope(s Scheduler, reg *obs.Registry) *obs.Registry {
	if s == nil || reg == nil {
		return nil
	}
	return reg.Sub(obs.Slug(s.Name()))
}

// scope returns the per-strategy registry view for the named strategy,
// or nil when metrics are disabled.
func (o Options) scope(name string) *obs.Registry {
	if o.Metrics == nil {
		return nil // before Slug: the disabled path must not allocate
	}
	return o.Metrics.Sub(obs.Slug(name))
}

// span opens the per-strategy journal span for the named strategy, or
// returns nil when tracing is disabled (allocating nothing).
func (o Options) span(name string) *trace.Span {
	if o.Trace == nil {
		return nil
	}
	return o.Trace.Begin("strategy").Str("name", name)
}

// traceSolution journals the final commitments of a computed schedule:
// one "solution" summary plus one "stage" event per pipeline stage with
// the interval, core type, replication count and resulting weight — the
// "why did this stage get these cores" record -explain renders. No-op on
// a nil span.
func traceSolution(sp *trace.Span, c *core.Chain, s core.Solution) {
	if sp == nil {
		return
	}
	if s.IsEmpty() {
		sp.Event("no_schedule")
		return
	}
	b, l := s.CoresUsed()
	ev := sp.Event("solution").F64("period", s.Period(c)).Int("stages", len(s.Stages)).
		Int("big_used", b).Int("little_used", l)
	if k := c.NumTypes(); k > 2 {
		// Two-type journals keep the historical big/little fields only; the
		// extra types of k>2 platforms ride in one usage vector field.
		ev.Str("usage", fmt.Sprint(s.Usage(k)))
	}
	for i, st := range s.Stages {
		sp.Event("stage").Int("index", i).Int("first_task", st.Start).Int("last_task", st.End).
			Int("cores", st.Cores).Str("type", st.Type.String()).
			Bool("replicable", c.IsRep(st.Start, st.End)).
			F64("weight", c.Weight(st.Start, st.End, st.Cores, st.Type))
	}
}

// finish applies the post-passes requested by o to a computed solution.
func (o Options) finish(c *core.Chain, s core.Solution) core.Solution {
	if o.Colocate && !s.IsEmpty() {
		if fused := s.Fuse(c, s.Period(c)); len(fused.Stages) < len(s.Stages) {
			s = fused
		}
	}
	return s
}

// schedulable rejects the degenerate inputs that sched.Schedule guards
// against, so Bounds-overridden runs share the same contract.
func schedulable(c *core.Chain, r core.Resources) bool {
	return c != nil && c.Len() > 0 && r.Total() > 0 && r.NonNegative()
}

// binarySearch runs compute through the shared binary search, honoring a
// caller-supplied bounds override.
func binarySearch(c *core.Chain, r core.Resources, o Options, compute sched.ComputeSolutionFunc) core.Solution {
	return binarySearchM(c, r, o, compute, sched.Metrics{})
}

// binarySearchM is binarySearch reporting the search's series into m.
func binarySearchM(c *core.Chain, r core.Resources, o Options, compute sched.ComputeSolutionFunc, m sched.Metrics) core.Solution {
	if o.Bounds != nil {
		if !schedulable(c, r) {
			return core.Solution{}
		}
		return sched.ScheduleBoundsM(c, r, *o.Bounds, compute, m)
	}
	return sched.ScheduleM(c, r, compute, m)
}

// entry is one registered strategy.
type entry struct {
	s       Scheduler
	aliases []string
	hidden  bool
}

var registry = struct {
	sync.RWMutex
	byName map[string]*entry // normalized canonical name or alias → entry
	order  []*entry          // registration order
}{byName: map[string]*entry{}}

func normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds s to the registry under its canonical name plus the given
// aliases (all matched case-insensitively by Get/Parse) and includes it in
// All. It panics on an empty or already-taken name — registering is a
// package-initialization affair and a clash is a programming error.
func Register(s Scheduler, aliases ...string) {
	register(s, false, aliases...)
}

// RegisterHidden is Register for strategies that Parse/Get should resolve
// but All should not list: ablation variants and test references that
// "-strategy all" style sweeps must not pick up.
func RegisterHidden(s Scheduler, aliases ...string) {
	register(s, true, aliases...)
}

func register(s Scheduler, hidden bool, aliases ...string) {
	if s == nil || normalize(s.Name()) == "" {
		panic("strategy: Register with no name")
	}
	e := &entry{s: s, aliases: aliases, hidden: hidden}
	registry.Lock()
	defer registry.Unlock()
	for _, key := range append([]string{s.Name()}, aliases...) {
		k := normalize(key)
		if k == "" || k == "all" {
			panic(fmt.Sprintf("strategy: reserved or empty name %q", key))
		}
		if _, dup := registry.byName[k]; dup {
			panic(fmt.Sprintf("strategy: duplicate registration of %q", key))
		}
		registry.byName[k] = e
	}
	registry.order = append(registry.order, e)
}

// Get returns the strategy registered under name (canonical or alias,
// case-insensitive) and whether it exists.
func Get(name string) (Scheduler, bool) {
	registry.RLock()
	defer registry.RUnlock()
	e, ok := registry.byName[normalize(name)]
	if !ok {
		return nil, false
	}
	return e.s, true
}

// Parse resolves name like Get but returns a descriptive error listing
// every valid name and alias when the lookup fails.
func Parse(name string) (Scheduler, error) {
	if s, ok := Get(name); ok {
		return s, nil
	}
	registry.RLock()
	valid := make([]string, 0, len(registry.byName))
	for _, e := range registry.order {
		names := append([]string{e.s.Name()}, e.aliases...)
		valid = append(valid, strings.Join(names, "|"))
	}
	registry.RUnlock()
	sort.Strings(valid)
	return nil, fmt.Errorf("strategy: unknown strategy %q (valid: %s)",
		name, strings.Join(valid, ", "))
}

// MustParse is Parse for known-good names; it panics on failure.
func MustParse(name string) Scheduler {
	s, err := Parse(name)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns the non-hidden strategies in registration order — the
// paper's presentation order for the built-ins (HeRAD, 2CATAC, FERTAC,
// OTAC (B), OTAC (L)). This is what "-strategy all" sweeps run.
func All() []Scheduler {
	registry.RLock()
	defer registry.RUnlock()
	var out []Scheduler
	for _, e := range registry.order {
		if !e.hidden {
			out = append(out, e.s)
		}
	}
	return out
}

// AllRegistered returns every registered strategy, hidden ones included,
// in registration order.
func AllRegistered() []Scheduler {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Scheduler, len(registry.order))
	for i, e := range registry.order {
		out[i] = e.s
	}
	return out
}

// Names returns the canonical names of All().
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name()
	}
	return out
}
