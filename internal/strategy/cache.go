package strategy

import (
	"sync"
	"sync/atomic"

	"ampsched/internal/core"
	"ampsched/internal/sched"
)

// cacheKey identifies one solved scheduling problem: the chain's content
// fingerprint, the resource pair, the strategy, and every Options knob
// that can change the emitted schedule. Options.Workers is deliberately
// absent — schedules are bit-identical across worker counts — as are the
// Metrics/Trace sinks, which observe a solve without influencing it.
type cacheKey struct {
	fp       uint64
	r        core.Resources
	strategy string
	colocate bool
	raw      bool
	memoize  bool
	// epsilon is the normalized Options.Epsilon (normEpsilon): an ε-beam
	// solution is only (1+ε)-optimal, so it must never be served to an
	// exact request (or to a request with a different ε). The fuzz test
	// FuzzCacheKey pins the no-aliasing property.
	epsilon   float64
	hasBounds bool
	bounds    sched.Bounds
}

// normEpsilon normalizes an Options.Epsilon for keying and comparison:
// zero, negative and NaN all select the exact solver, so they collapse to
// 0 — crucially, a NaN (never equal to itself, even as a map key) must
// not produce an unhittable cache entry.
func normEpsilon(e float64) float64 {
	if e > 0 {
		return e
	}
	return 0
}

// requestKey derives req's cache key. ok is false when the request does
// not participate in caching: no cache attached, or malformed (nil chain
// or scheduler, or a core-type mismatch — those fail in plan with a
// descriptive error instead, which caching an empty solution would mask).
func requestKey(req Request) (cacheKey, bool) {
	if req.Options.Cache == nil || req.Chain == nil || req.Scheduler == nil ||
		CheckTypes(req.Scheduler, req.Chain, req.Resources) != nil {
		return cacheKey{}, false
	}
	k := cacheKey{
		fp:       req.Chain.Fingerprint(),
		r:        req.Resources,
		strategy: req.Scheduler.Name(),
		colocate: req.Options.Colocate,
		raw:      req.Options.Raw,
		memoize:  req.Options.Memoize,
		epsilon:  normEpsilon(req.Options.Epsilon),
	}
	if req.Options.Bounds != nil {
		k.hasBounds = true
		k.bounds = *req.Options.Bounds
	}
	return k, true
}

// Cache is a concurrency-safe solution cache consulted by PlanBatch:
// requests whose (chain fingerprint, resources, strategy, options) key was
// already solved — earlier in the same batch or by a previous batch
// sharing the cache — reuse the stored schedule instead of re-solving it.
// Experiment sweeps that revisit identical (SR, platform) points are the
// intended workload.
//
// Every strategy is deterministic, so serving a solution from the cache is
// behavior-preserving: the Results of a cached batch are byte-identical to
// an uncached one (hits are resolved in request order, never by pool
// interleaving). Failures (empty solutions) are cached too. Keys collide
// only if two chains with different content share a 64-bit fingerprint
// (probability ~n²·2⁻⁶⁴ for n distinct chains; see core.Fingerprint).
//
// The zero value is not usable; call NewCache. A Cache may be shared by
// concurrent PlanBatch calls.
type Cache struct {
	mu sync.RWMutex
	m  map[cacheKey]core.Solution

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty solution cache.
func NewCache() *Cache {
	return &Cache{m: map[cacheKey]core.Solution{}}
}

// get returns a copy of the cached solution for k.
func (c *Cache) get(k cacheKey) (core.Solution, bool) {
	c.mu.RLock()
	s, ok := c.m[k]
	c.mu.RUnlock()
	if !ok {
		return core.Solution{}, false
	}
	return cloneSolution(s), true
}

// put stores a copy of s under k.
func (c *Cache) put(k cacheKey, s core.Solution) {
	s = cloneSolution(s)
	c.mu.Lock()
	c.m[k] = s
	c.mu.Unlock()
}

// Len returns the number of cached solutions.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats returns the cumulative hit and miss counts across every batch
// that consulted the cache (in-batch duplicate requests count as hits).
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// cloneSolution deep-copies s so cached schedules and the Results built
// from them never share a Stages slice with the caller.
func cloneSolution(s core.Solution) core.Solution {
	if s.IsEmpty() {
		return core.Solution{}
	}
	return core.Solution{Stages: append([]core.Stage(nil), s.Stages...)}
}
