package strategy

import (
	"bytes"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/trace"
)

func traceChain(t *testing.T) *core.Chain {
	t.Helper()
	c, err := core.NewChain([]core.Task{
		{Name: "source", Weight: core.Weights(40, 90)},
		{Name: "filter", Weight: core.Weights(120, 300), Replicable: true},
		{Name: "decode", Weight: core.Weights(310, 700), Replicable: true},
		{Name: "sink", Weight: core.Weights(25, 60)},
	})
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	return c
}

// planAllJournal runs a full "-strategy all" batch under a fresh journal and
// returns its canonical JSONL export.
func planAllJournal(t *testing.T, c *core.Chain, r core.Resources, workers int) []byte {
	t.Helper()
	j := trace.New()
	opts := Options{Trace: j.Root().Begin("run")}
	results := PlanAll(c, r, opts, workers)
	if len(results) != len(All()) {
		t.Fatalf("PlanAll returned %d results, want %d", len(results), len(All()))
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestPlanBatchJournalDeterministic pins the tentpole's concurrency
// contract: the journal exported from a concurrent batch is byte-for-byte
// the journal of the same batch run serially, because request spans are
// opened in request order before dispatch and every worker appends only
// under its own span. Run with -race this also exercises concurrent
// appends into one journal from the pool workers.
func TestPlanBatchJournalDeterministic(t *testing.T) {
	c := traceChain(t)
	r := core.Res(2, 2)
	serial := planAllJournal(t, c, r, 1)
	if len(bytes.TrimSpace(serial)) == 0 {
		t.Fatal("serial journal is empty")
	}
	for i := 0; i < 5; i++ {
		concurrent := planAllJournal(t, c, r, 4)
		if !bytes.Equal(serial, concurrent) {
			t.Fatalf("journal differs between workers=1 and workers=4 (attempt %d):\nserial:\n%s\nconcurrent:\n%s",
				i, serial, concurrent)
		}
	}
}

// TestPlanBatchJournalRecordsErrors verifies failed requests journal a
// deterministic "result" error event rather than a period.
func TestPlanBatchJournalRecordsErrors(t *testing.T) {
	c := traceChain(t)
	j := trace.New()
	opts := Options{Trace: j.Root().Begin("run")}
	// OTAC (L) cannot schedule with zero little cores.
	results := PlanBatch([]Request{{
		Chain:     c,
		Resources: core.Res(2, 0),
		Scheduler: MustParse("otac-l"),
		Options:   opts,
		Label:     "doomed",
	}}, 1)
	if results[0].Err == nil {
		t.Fatal("expected OTAC (L) to fail with little=0")
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"name":"request"`, `"label":"doomed"`, `"error":`, `"no_schedule"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("journal missing %s:\n%s", want, out)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte(`"period"`)) {
		t.Errorf("failed request journaled a period:\n%s", out)
	}
}

// TestStrategySpansJournalDecisions spot-checks that each built-in strategy
// journals its characteristic decision events under its strategy span, with
// no metrics registry attached (journal-only mode).
func TestStrategySpansJournalDecisions(t *testing.T) {
	c := traceChain(t)
	r := core.Res(2, 2)
	wantEvents := map[string][]string{
		"herad":       {`"name":"dp_pass"`, `"name":"dp_cell"`, `"name":"solution"`, `"name":"stage"`},
		"2catac":      {`"name":"probe"`, `"name":"node"`, `"name":"solution"`},
		"fertac":      {`"name":"probe"`, `"name":"stage_placed"`, `"name":"solution"`},
		"otac-b":      {`"name":"probe"`, `"name":"stage_placed"`, `"name":"solution"`},
		"brute-force": {`"name":"improved"`, `"name":"enumeration"`, `"name":"solution"`},
	}
	for name, events := range wantEvents {
		j := trace.New()
		s := MustParse(name).Schedule(c, r, Options{Trace: j.Root().Begin("run")})
		if s.IsEmpty() {
			t.Fatalf("%s: no schedule", name)
		}
		var buf bytes.Buffer
		if err := j.WriteJSONL(&buf); err != nil {
			t.Fatalf("%s: WriteJSONL: %v", name, err)
		}
		for _, want := range events {
			if !bytes.Contains(buf.Bytes(), []byte(want)) {
				t.Errorf("%s journal missing %s:\n%s", name, want, buf.String())
			}
		}
	}
}

// TestTraceDisabledIsAllocationFree pins the other half of the contract:
// a nil Options.Trace (and nil Metrics) adds zero allocations.
func TestTraceDisabledIsAllocationFree(t *testing.T) {
	c := traceChain(t)
	r := core.Res(2, 2)
	s := MustParse("otac-b")
	// Warm up once so lazily-initialized state does not count.
	s.Schedule(c, r, Options{})
	allocs := testing.AllocsPerRun(20, func() {
		s.Schedule(c, r, Options{})
	})
	// The strategy itself allocates its stages slice; the point is that
	// enabling the nil trace path adds nothing on top. Compare against an
	// explicit disabled-scope run.
	j := trace.New()
	_ = j
	withNil := testing.AllocsPerRun(20, func() {
		s.Schedule(c, r, Options{Trace: nil})
	})
	if withNil != allocs {
		t.Fatalf("nil Trace changed allocations: %v vs %v", withNil, allocs)
	}
}
