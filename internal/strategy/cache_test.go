package strategy

import (
	"bytes"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// cacheBatch builds a batch that revisits the same few (chain, resources,
// strategy) points repeatedly — the experiment-sweep shape the cache is
// for. With 3 repeats of a 2-chain × all-strategies cross, two thirds of
// the batch are in-batch duplicates.
func cacheBatch(t *testing.T, opts Options) []Request {
	t.Helper()
	chains := []*core.Chain{testChain(t), traceChain(t)}
	r := core.Res(2, 3)
	var reqs []Request
	for rep := 0; rep < 3; rep++ {
		for _, c := range chains {
			for _, s := range All() {
				reqs = append(reqs, Request{Chain: c, Resources: r, Scheduler: s, Options: opts, Label: s.Name()})
			}
		}
	}
	return reqs
}

func assertSameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Solution.String() != want[i].Solution.String() || got[i].Period != want[i].Period {
			t.Errorf("%s result %d (%s): %v p=%v, want %v p=%v", label, i, got[i].Request.Label,
				got[i].Solution, got[i].Period, want[i].Solution, want[i].Period)
		}
		gotErr, wantErr := "", ""
		if got[i].Err != nil {
			gotErr = got[i].Err.Error()
		}
		if want[i].Err != nil {
			wantErr = want[i].Err.Error()
		}
		if gotErr != wantErr {
			t.Errorf("%s result %d: err %q, want %q", label, i, gotErr, wantErr)
		}
	}
}

// TestCacheRepeatedBatch pins the headline contract: on a batch full of
// repeated requests the cache serves the duplicates (nonzero hits, one
// miss per distinct key) and the Results are byte-identical to an uncached
// run — serial and pooled alike.
func TestCacheRepeatedBatch(t *testing.T) {
	plain := PlanBatch(cacheBatch(t, Options{}), 1)
	distinct := 2 * len(All()) // 2 chains × strategies, repeated 3×
	for _, workers := range []int{1, 4} {
		cache := NewCache()
		reqs := cacheBatch(t, Options{Cache: cache})
		res := PlanBatch(reqs, workers)
		assertSameResults(t, "cached", res, plain)
		hits, misses := cache.Stats()
		if misses != int64(distinct) {
			t.Errorf("workers=%d: %d misses, want %d", workers, misses, distinct)
		}
		if want := int64(len(reqs) - distinct); hits != want {
			t.Errorf("workers=%d: %d hits, want %d", workers, hits, want)
		}
		if cache.Len() != distinct {
			t.Errorf("workers=%d: cache holds %d entries, want %d", workers, cache.Len(), distinct)
		}
	}
}

// TestCacheAcrossBatches runs the same batch twice against one shared
// cache: the second batch must be all hits and still return identical
// Results — the repeated-campaign reuse path.
func TestCacheAcrossBatches(t *testing.T) {
	cache := NewCache()
	reqs := cacheBatch(t, Options{Cache: cache})
	first := PlanBatch(reqs, 4)
	h0, _ := cache.Stats()
	second := PlanBatch(cacheBatch(t, Options{Cache: cache}), 4)
	assertSameResults(t, "second batch", second, first)
	hits, misses := cache.Stats()
	if hits-h0 != int64(len(reqs)) {
		t.Errorf("second batch: %d hits, want %d (all requests)", hits-h0, len(reqs))
	}
	if misses != int64(cache.Len()) {
		t.Errorf("misses %d != distinct entries %d after identical re-run", misses, cache.Len())
	}
}

// TestCacheKeySeparatesVariants guards against false sharing: requests
// that differ in chain content, resources, strategy, or schedule-changing
// options must occupy distinct cache entries.
func TestCacheKeySeparatesVariants(t *testing.T) {
	c1, c2 := testChain(t), traceChain(t)
	h := MustParse("herad")
	cache := NewCache()
	base := Options{Cache: cache}
	raw := base
	raw.Raw = true
	reqs := []Request{
		{Chain: c1, Resources: core.Res(2, 2), Scheduler: h, Options: base},
		{Chain: c2, Resources: core.Res(2, 2), Scheduler: h, Options: base},
		{Chain: c1, Resources: core.Res(3, 2), Scheduler: h, Options: base},
		{Chain: c1, Resources: core.Res(2, 2), Scheduler: MustParse("fertac"), Options: base},
		{Chain: c1, Resources: core.Res(2, 2), Scheduler: h, Options: raw},
	}
	res := PlanBatch(reqs, 1)
	for i, re := range res {
		if re.Err != nil {
			t.Fatalf("request %d: %v", i, re.Err)
		}
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != int64(len(reqs)) {
		t.Errorf("hits=%d misses=%d, want 0 hits and %d misses", hits, misses, len(reqs))
	}
	for i, re := range res {
		if want := reqs[i].Scheduler.Schedule(reqs[i].Chain, reqs[i].Resources, Options{Raw: reqs[i].Options.Raw}); re.Solution.String() != want.String() {
			t.Errorf("request %d: cached path %v, direct %v", i, re.Solution, want)
		}
	}
}

// TestCacheIgnoresWorkers pins the key design decision: Workers never
// changes a schedule, so requests differing only in Workers share one
// entry.
func TestCacheIgnoresWorkers(t *testing.T) {
	c := testChain(t)
	r := core.Res(2, 2)
	cache := NewCache()
	var reqs []Request
	for _, w := range []int{1, 2, 8} {
		o := Options{Cache: cache, Workers: w}
		reqs = append(reqs, Request{Chain: c, Resources: r, Scheduler: MustParse("herad"), Options: o})
	}
	res := PlanBatch(reqs, 1)
	for i := 1; i < len(res); i++ {
		if res[i].Solution.String() != res[0].Solution.String() {
			t.Errorf("workers=%d solution differs: %v vs %v",
				reqs[i].Options.Workers, res[i].Solution, res[0].Solution)
		}
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2 hits / 1 miss across worker counts", hits, misses)
	}
}

// TestCacheFailures verifies that "no schedule exists" outcomes are cached
// too and reconstructed with the identical error, so a cached failing
// sweep point behaves exactly like a fresh one.
func TestCacheFailures(t *testing.T) {
	c := testChain(t) // has non-replicable tasks; zero resources cannot host them
	cache := NewCache()
	o := Options{Cache: cache}
	req := Request{Chain: c, Resources: core.Res(0, 0), Scheduler: MustParse("fertac"), Options: o}
	res := PlanBatch([]Request{req, req, req}, 1)
	if res[0].Err == nil {
		t.Fatal("expected a scheduling failure on zero resources")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Err == nil || res[i].Err.Error() != res[0].Err.Error() {
			t.Errorf("request %d: err %v, want %v", i, res[i].Err, res[0].Err)
		}
		if !res[i].Solution.IsEmpty() {
			t.Errorf("request %d: non-empty solution %v from cached failure", i, res[i].Solution)
		}
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1 — failures must be cached", hits, misses)
	}
}

// TestCacheMetricsAndJournal checks the observability contract: the
// batch-level registry carries planbatch.cache.hits/misses matching
// Cache.Stats, planbatch.requests still counts every request, and the
// journal records one cache_hit event per served request (with a
// leader_index for in-batch followers) while staying deterministic across
// pool widths.
func TestCacheMetricsAndJournal(t *testing.T) {
	run := func(workers int) ([]byte, *obs.Registry, *Cache) {
		reg := obs.NewRegistry()
		j := trace.New()
		cache := NewCache()
		o := Options{Cache: cache, Metrics: reg, Trace: j.Root().Begin("run")}
		reqs := cacheBatch(t, o)
		res := PlanBatch(reqs, workers)
		for i, re := range res {
			if re.Err != nil {
				t.Fatalf("workers=%d request %d: %v", workers, i, re.Err)
			}
		}
		var buf bytes.Buffer
		if err := j.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes(), reg, cache
	}
	serialJ, reg, cache := run(1)
	hits, misses := cache.Stats()
	series := map[string]int64{}
	for _, s := range reg.Snapshot() {
		series[s.Name] = s.Count
	}
	if got := series["planbatch.cache.hits"]; got != hits {
		t.Errorf("planbatch.cache.hits = %d, want %d", got, hits)
	}
	if got := series["planbatch.cache.misses"]; got != misses {
		t.Errorf("planbatch.cache.misses = %d, want %d", got, misses)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate batch: hits=%d misses=%d", hits, misses)
	}
	want := int64(len(cacheBatch(t, Options{})))
	if got := series["planbatch.requests"]; got != want {
		t.Errorf("planbatch.requests = %d, want %d (cache hits still count)", got, want)
	}
	if n := int64(bytes.Count(serialJ, []byte(`"cache_hit"`))); n != hits {
		t.Errorf("journal has %d cache_hit events, want %d", n, hits)
	}
	if !bytes.Contains(serialJ, []byte(`"leader_index"`)) {
		t.Error("journal has no leader_index attribute despite in-batch followers")
	}
	pooledJ, _, _ := run(4)
	if !bytes.Equal(serialJ, pooledJ) {
		t.Errorf("cached journal differs between workers=1 and workers=4:\nserial:\n%s\npooled:\n%s",
			serialJ, pooledJ)
	}
}
