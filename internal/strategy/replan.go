package strategy

import (
	"fmt"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/herad"
	"ampsched/internal/obs/flight"
	"ampsched/internal/trace"
)

// ReplanStats summarizes how ReplanBatch resolved one batch: how many
// requests rode the incremental planner versus falling back to the
// from-scratch plan path, and how much DP row work the warm starts saved
// (RowsRefilled out of the RowsTotal a from-scratch fill would have
// recomputed).
type ReplanStats struct {
	// WarmStarts counts the requests served by refilling the incumbent
	// planner (including the request that created it, which refills every
	// row — its RowsRefilled equals its chain length).
	WarmStarts int
	// Cold counts the requests routed through the regular plan path:
	// non-HeRAD schedulers, malformed requests, or a resources/options
	// mismatch with the incumbent planner.
	Cold int
	// RowsRefilled and RowsTotal accumulate, over the warm starts, the DP
	// rows actually recomputed versus the rows a from-scratch fill would
	// recompute. Their ratio is the incremental win of the batch.
	RowsRefilled int
	RowsTotal    int
}

// heradOptions projects the strategy-level knobs onto herad.Options — the
// one place the mapping lives (heradScheduler.Schedule and the replan path
// both use it).
func heradOptions(o Options) herad.Options {
	return herad.Options{Workers: o.Workers, Raw: o.Raw, Epsilon: o.Epsilon}
}

// NewHeradPlanner builds an incumbent herad.Planner from strategy-level
// options, for callers that want to seed ReplanBatch before the first
// batch arrives. ReplanBatch also creates one on demand.
func NewHeradPlanner(c *core.Chain, r core.Resources, o Options) (*herad.Planner, error) {
	return herad.NewPlanner(c, r, heradOptions(o))
}

// replanCompatible reports whether req may be served by rebasing p: a
// HeRAD request on the planner's platform whose schedule-shaping options
// (Raw, ε) match the ones baked into the planner's matrix. Workers and
// the observability sinks never change the schedule, so they don't gate
// the warm start; Colocate is a post-pass applied per request.
func replanCompatible(p *herad.Planner, req Request) bool {
	po := p.Opts()
	return req.Resources == p.Resources() &&
		req.Options.Raw == po.Raw &&
		normEpsilon(req.Options.Epsilon) == normEpsilon(po.Epsilon)
}

// heradRequest reports whether req is a well-formed request for the
// built-in HeRAD scheduler — the only strategy with an incremental mode.
func heradRequest(req Request) bool {
	if req.Chain == nil || req.Chain.Len() == 0 || req.Scheduler == nil {
		return false
	}
	if _, ok := req.Scheduler.(heradScheduler); !ok {
		return false
	}
	return CheckTypes(req.Scheduler, req.Chain, req.Resources) == nil
}

// ReplanBatch is the re-planning entry point of the batch layer: it
// resolves reqs in order, serving each eligible HeRAD request by rebasing
// the incumbent planner onto the request's chain — refilling only the DP
// rows past the longest common task prefix with the previously planned
// chain (herad.Planner.Rebase) — and falling back to the regular
// from-scratch plan path for everything else. It returns the results in
// request order, the planner to pass to the next batch (created on the
// first eligible request when incumbent is nil), and the batch's stats.
//
// The schedules are bit-identical to PlanBatch's: a warm start replays
// the exact fill the from-scratch DP would run on the unchanged prefix
// rows (property-tested in replan_test.go). Only the wall clock differs —
// that, and the journal: a warm-started request journals a "replan" event
// with its row counts in place of the solver's full decision trail, and
// the planner's own fill events (built with the planner, not the request)
// are not re-scoped per request. Requests are resolved serially — the
// planner is a mutable incumbent, and edit streams are order-dependent by
// nature — and the solution cache is not consulted: an edit stream
// changes the chain fingerprint every step, which is exactly the workload
// the cache cannot help.
func ReplanBatch(incumbent *herad.Planner, reqs []Request) ([]Result, *herad.Planner, ReplanStats) {
	out := make([]Result, len(reqs))
	p := incumbent
	var st ReplanStats
	for i := range reqs {
		req := reqs[i]
		var sp *trace.Span
		if t := req.Options.Trace; t != nil {
			sp = t.Begin("request").Int("index", i)
			if req.Label != "" {
				sp.Str("label", req.Label)
			}
			if req.Scheduler != nil {
				sp.Str("scheduler", req.Scheduler.Name())
			}
		}
		if !heradRequest(req) {
			out[i] = plan(req, sp, false)
			st.Cold++
			continue
		}
		if p == nil {
			np, err := NewHeradPlanner(req.Chain, req.Resources, req.Options)
			if err != nil {
				out[i] = plan(req, sp, false)
				st.Cold++
				continue
			}
			p = np
		} else if !replanCompatible(p, req) {
			out[i] = plan(req, sp, false)
			st.Cold++
			continue
		} else if err := p.Rebase(req.Chain); err != nil {
			out[i] = plan(req, sp, false)
			st.Cold++
			continue
		}
		out[i] = replanResult(p, req, sp)
		st.WarmStarts++
		st.RowsRefilled += p.RowsRefilled()
		st.RowsTotal += req.Chain.Len()
	}
	return out, p, st
}

// replanResult builds the Result of a warm-started request from the
// planner's retained matrix, applying the request's own post-passes
// (merge via the planner's Raw, Colocate via Options.finish) and keeping
// plan's error contract and journal/metrics shape.
func replanResult(p *herad.Planner, req Request, sp *trace.Span) Result {
	res := Result{Request: req}
	start := time.Now()
	s := req.Options.finish(req.Chain, p.Solution())
	res.Elapsed = time.Since(start)
	res.Solution = s
	res.Period = s.Period(req.Chain)
	if s.IsEmpty() {
		res.Err = fmt.Errorf("strategy: %s found no schedule for R=%v",
			req.Scheduler.Name(), req.Resources)
	}
	if sp != nil {
		sp.Event("replan").Int("rows_refilled", p.RowsRefilled()).
			Int("rows_total", req.Chain.Len())
		if res.Err != nil {
			sp.Event("result").Str("error", res.Err.Error())
		} else {
			sp.Event("result").F64("period", res.Period).Int("stages", len(res.Solution.Stages))
		}
	}
	if m := req.Options.Metrics.Sub("replan"); m != nil {
		m.Counter("warm_starts").Inc()
		m.Counter("rows_refilled").Add(int64(p.RowsRefilled()))
		m.Counter("rows_total").Add(int64(req.Chain.Len()))
	}
	if fr := req.Options.Flight; fr != nil {
		fr.Record(flight.Event{
			Code:  flight.CodeReplan,
			Stage: -1,
			Aux:   fr.Intern(req.Scheduler.Name()),
			A:     res.Period,
			B:     float64(p.RowsRefilled()),
		})
	}
	return res
}
