package strategy

import (
	"math"
	"testing"

	"ampsched/internal/core"
)

// FuzzCacheKey pins the ε-awareness of the solution-cache key: an ε-beam
// solution is only (1+ε)-optimal, so two requests that agree on everything
// but ε must never share a cache entry — while the degenerate ε values
// (zero, negative, NaN) must all collapse onto the exact solver's key, NaN
// in particular because a NaN inside a map key can never be looked up
// again.
func FuzzCacheKey(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(0.0, 0.05)
	f.Add(0.01, 0.05)
	f.Add(0.05, 0.05)
	f.Add(-1.0, 0.0)
	f.Add(math.NaN(), 0.0)
	f.Add(math.NaN(), math.NaN())
	f.Add(math.Inf(1), 0.0)
	f.Add(5e-324, 0.0)
	f.Fuzz(func(t *testing.T, e1, e2 float64) {
		cache := NewCache()
		req := func(eps float64) Request {
			return Request{
				Chain:     testChain(t),
				Resources: core.Res(2, 3),
				Scheduler: MustParse("herad"),
				Options:   Options{Cache: cache, Epsilon: eps},
			}
		}
		k1, ok1 := requestKey(req(e1))
		k2, ok2 := requestKey(req(e2))
		if !ok1 || !ok2 {
			t.Fatalf("well-formed requests did not key: %v %v", ok1, ok2)
		}
		n1, n2 := normEpsilon(e1), normEpsilon(e2)
		if (k1 == k2) != (n1 == n2) {
			t.Fatalf("eps %v vs %v: keys equal=%v, normalized %v vs %v", e1, e2, k1 == k2, n1, n2)
		}
		// The key must be self-equal even for hostile inputs — a key that
		// cannot match itself makes its cache entry unreachable garbage.
		if k1 != k1 {
			t.Fatalf("eps %v: key not self-equal (NaN leaked into the key)", e1)
		}
		// And the map round-trip must agree with key equality.
		cache.put(k1, core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1}}})
		if _, hit := cache.get(k2); hit != (k1 == k2) {
			t.Fatalf("eps %v vs %v: cache hit=%v, keys equal=%v", e1, e2, hit, k1 == k2)
		}
	})
}
