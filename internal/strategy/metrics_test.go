package strategy

import (
	"strings"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/obs"
)

// TestEveryStrategyEmitsSeries pins the observability contract: every
// registered strategy (hidden ones included) reports at least the three
// common series — schedule.calls, schedule.empty, schedule.ns — plus at
// least one algorithm-specific series, all under its slug prefix.
func TestEveryStrategyEmitsSeries(t *testing.T) {
	c := testChain(t)
	r := core.Res(2, 2)
	for _, s := range AllRegistered() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			reg := obs.NewRegistry()
			sol := s.Schedule(c, r, Options{Metrics: reg})
			if sol.IsEmpty() {
				t.Fatalf("%s found no schedule", s.Name())
			}
			prefix := obs.Slug(s.Name()) + "."
			byName := map[string]obs.Sample{}
			for _, sample := range reg.Snapshot() {
				if !strings.HasPrefix(sample.Name, prefix) {
					t.Errorf("series %q outside the strategy scope %q", sample.Name, prefix)
					continue
				}
				byName[sample.Name] = sample
			}
			if len(byName) < 4 {
				t.Errorf("%d series, want >= 4 (3 common + algorithm-specific): %v",
					len(byName), byName)
			}
			if got := byName[prefix+"schedule.calls"].Count; got != 1 {
				t.Errorf("schedule.calls = %d, want 1", got)
			}
			if _, ok := byName[prefix+"schedule.empty"]; !ok {
				t.Error("schedule.empty not registered")
			}
			if ns := byName[prefix+"schedule.ns"]; ns.Count != 1 || ns.TotalNs <= 0 {
				t.Errorf("schedule.ns = %+v, want one positive observation", ns)
			}
		})
	}
}

// TestMetricsDoNotChangeSolutions pins that the instrumented paths are
// behavior-preserving: with and without a registry, every strategy
// returns the identical schedule.
func TestMetricsDoNotChangeSolutions(t *testing.T) {
	c := testChain(t)
	for _, r := range []core.Resources{core.Res(1, 0), core.Res(2, 2), core.Res(4, 4)} {
		for _, s := range AllRegistered() {
			plain := s.Schedule(c, r, Options{})
			obsd := s.Schedule(c, r, Options{Metrics: obs.NewRegistry()})
			if plain.String() != obsd.String() {
				t.Errorf("%s on R=%v: plain %v, instrumented %v", s.Name(), r, plain, obsd)
			}
		}
	}
}

// TestPlanBatchMetricsConcurrent shares one registry across a pooled
// PlanBatch run — the -race companion for concurrent metric updates —
// and pins that order-independent counter sums make the pooled counters
// equal the serial ones.
func TestPlanBatchMetricsConcurrent(t *testing.T) {
	counters := func(workers int) map[string]int64 {
		reg := obs.NewRegistry()
		reqs := batchRequests(t, 8)
		for i := range reqs {
			reqs[i].Options.Metrics = reg
		}
		res := PlanBatch(reqs, workers)
		for i := range res {
			if res[i].Err != nil {
				t.Fatalf("workers=%d request %d: %v", workers, i, res[i].Err)
			}
		}
		out := map[string]int64{}
		for _, s := range reg.Snapshot() {
			if s.Kind == obs.KindCounter {
				out[s.Name] = s.Count
			}
		}
		return out
	}
	serial := counters(1)
	pooled := counters(8)
	if len(serial) == 0 {
		t.Fatal("no counter series collected")
	}
	if len(pooled) != len(serial) {
		t.Fatalf("pooled run registered %d counters, serial %d", len(pooled), len(serial))
	}
	for name, want := range serial {
		if got := pooled[name]; got != want {
			t.Errorf("%s: pooled %d, serial %d", name, got, want)
		}
	}
	if serial["planbatch.requests"] == 0 {
		t.Error("planbatch.requests not collected")
	}
	if serial["planbatch.batches"] != 1 {
		t.Errorf("planbatch.batches = %d, want 1", serial["planbatch.batches"])
	}
}

// TestDisabledMetricsAllocateNothing pins that resolving a strategy's
// metric scope from empty Options performs no allocation — the branch
// every Schedule call takes when no registry is supplied.
func TestDisabledMetricsAllocateNothing(t *testing.T) {
	o := Options{}
	if n := testing.AllocsPerRun(100, func() {
		if o.scope("HeRAD") != nil {
			t.Fatal("nil registry produced a scope")
		}
	}); n != 0 {
		t.Errorf("disabled metric scoping allocates %v per schedule", n)
	}
}
