package strategy

import (
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs/flight"

	"math/rand"
)

func TestPlanBatchRecordsFlightEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := chaingen.Generate(chaingen.Default(6, 0.5), rng)
	rec := flight.New(64)
	opts := Options{Flight: rec, Cache: NewCache()}
	reqs := []Request{
		{Chain: c, Resources: core.Res(3, 3), Scheduler: MustParse("herad"), Options: opts},
		{Chain: c, Resources: core.Res(3, 3), Scheduler: MustParse("herad"), Options: opts}, // in-batch duplicate
		{Chain: nil, Resources: core.Res(3, 3), Scheduler: MustParse("herad"), Options: opts},
	}
	out := PlanBatch(reqs, 1)
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}

	evs := rec.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("flight holds %d events, want one CodePlan per resolved request: %+v", len(evs), evs)
	}
	for i, e := range evs {
		if e.Code != flight.CodePlan {
			t.Fatalf("event %d code = %v", i, e.Code)
		}
		if rec.Lookup(e.Aux) != "HeRAD" {
			t.Fatalf("event %d strategy = %q", i, rec.Lookup(e.Aux))
		}
	}
	// Solved and cache-followed requests carry identical payloads.
	if evs[0].A != out[0].Period || evs[1].A != out[1].Period || evs[0].A != evs[1].A {
		t.Fatalf("plan periods: %v, %v vs results %v, %v", evs[0].A, evs[1].A, out[0].Period, out[1].Period)
	}
	if int(evs[0].B) != len(out[0].Solution.Stages) {
		t.Fatalf("stage count payload = %v, want %d", evs[0].B, len(out[0].Solution.Stages))
	}
	// The failed request still records (period +Inf, 0 stages).
	if evs[2].B != 0 || out[2].Err == nil {
		t.Fatalf("failed request event = %+v, err = %v", evs[2], out[2].Err)
	}
}

func TestReplanBatchRecordsFlightEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := chaingen.Generate(chaingen.Default(8, 0.6), rng)
	edited := chaingen.Generate(chaingen.Default(8, 0.6), rng)
	rec := flight.New(64)
	opts := Options{Flight: rec}
	reqs := []Request{
		{Chain: base, Resources: core.Res(3, 3), Scheduler: MustParse("herad"), Options: opts},
		{Chain: edited, Resources: core.Res(3, 3), Scheduler: MustParse("herad"), Options: opts},
	}
	out, p, st := ReplanBatch(nil, reqs)
	if p == nil || st.WarmStarts != 2 {
		t.Fatalf("replan stats = %+v", st)
	}
	evs := rec.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("flight holds %d events, want 2: %+v", len(evs), evs)
	}
	for i, e := range evs {
		if e.Code != flight.CodeReplan {
			t.Fatalf("event %d code = %v, want replan", i, e.Code)
		}
		if e.A != out[i].Period {
			t.Fatalf("event %d period = %v, result %v", i, e.A, out[i].Period)
		}
	}
	// The rebased request reports the rows it actually refilled.
	if evs[1].B <= 0 || evs[1].B > float64(edited.Len()) {
		t.Fatalf("rows refilled payload = %v", evs[1].B)
	}
}
