// Package chaingen generates the synthetic task chains of the paper's
// simulation campaign (§VI-A1): big-core weights drawn uniformly from the
// integer interval [1, 100], little-core weights obtained by applying a
// per-task slowdown drawn uniformly from [1, 5] and rounding up, and a
// stateless ratio SR selecting the fraction of replicable tasks. Config
// optionally extends the model beyond the paper's two core types: each
// Extra slowdown range appends one more per-task weight derived from the
// big-core weight, without perturbing the two-type random streams.
package chaingen

import (
	"fmt"
	"math"
	"math/rand"

	"ampsched/internal/core"
)

// Config parameterizes chain generation. The zero value is not useful;
// start from Default.
type Config struct {
	// N is the number of tasks in the chain.
	N int
	// WMin and WMax bound the uniform integer big-core weights.
	WMin, WMax int
	// SlowMin and SlowMax bound the uniform real little-core slowdown.
	SlowMin, SlowMax float64
	// StatelessRatio is the fraction of tasks that are replicable. The
	// generator makes exactly round(SR·N) tasks replicable, at uniformly
	// random positions.
	StatelessRatio float64
	// Extra appends one additional core type per entry (types 2, 3, …):
	// each task's extra weight is its big-core weight times a slowdown
	// drawn uniformly from the entry's range, rounded up like the
	// little-core weights. The extra draws happen after the two canonical
	// ones, so a configuration with Extra == nil reproduces the paper's
	// two-type random streams bit for bit for any shared seed.
	Extra []SlowdownRange
}

// SlowdownRange bounds the uniform slowdown of one extra core type
// relative to the big-core weight. Min may be below 1 (a faster type).
type SlowdownRange struct {
	Min, Max float64
}

// Default returns the paper's simulation configuration for n tasks and
// stateless ratio sr.
func Default(n int, sr float64) Config {
	return Config{N: n, WMin: 1, WMax: 100, SlowMin: 1, SlowMax: 5, StatelessRatio: sr}
}

// Default3 returns a three-type synthetic profile: the paper's big/little
// configuration plus a "medium" type whose slowdown interval [1, 3] sits
// between the big cores (1) and the little cores ([1, 5]).
func Default3(n int, sr float64) Config {
	cfg := Default(n, sr)
	cfg.Extra = []SlowdownRange{{Min: 1, Max: 3}}
	return cfg
}

// Validate reports whether the configuration is internally consistent.
func (cfg Config) Validate() error {
	switch {
	case cfg.N <= 0:
		return fmt.Errorf("chaingen: N=%d, want > 0", cfg.N)
	case cfg.WMin < 0 || cfg.WMax < cfg.WMin:
		return fmt.Errorf("chaingen: weight interval [%d,%d] invalid", cfg.WMin, cfg.WMax)
	case cfg.SlowMin < 1 || cfg.SlowMax < cfg.SlowMin:
		return fmt.Errorf("chaingen: slowdown interval [%g,%g] invalid", cfg.SlowMin, cfg.SlowMax)
	case cfg.StatelessRatio < 0 || cfg.StatelessRatio > 1:
		return fmt.Errorf("chaingen: stateless ratio %g outside [0,1]", cfg.StatelessRatio)
	case len(cfg.Extra) > core.MaxCoreTypes-2:
		return fmt.Errorf("chaingen: %d extra core types exceed the %d-type model",
			len(cfg.Extra), core.MaxCoreTypes)
	}
	for i, ex := range cfg.Extra {
		if ex.Min <= 0 || ex.Max < ex.Min {
			return fmt.Errorf("chaingen: extra type %d slowdown interval [%g,%g] invalid",
				i+2, ex.Min, ex.Max)
		}
	}
	return nil
}

// Generate produces one random chain according to cfg using rng. It panics
// if cfg is invalid (use Validate first for untrusted inputs).
func Generate(cfg Config, rng *rand.Rand) *core.Chain {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nRep := int(math.Round(cfg.StatelessRatio * float64(cfg.N)))
	rep := make([]bool, cfg.N)
	for _, i := range rng.Perm(cfg.N)[:nRep] {
		rep[i] = true
	}
	tasks := make([]core.Task, cfg.N)
	for i := range tasks {
		wb := float64(cfg.WMin + rng.Intn(cfg.WMax-cfg.WMin+1))
		slow := cfg.SlowMin + rng.Float64()*(cfg.SlowMax-cfg.SlowMin)
		wl := math.Ceil(wb * slow)
		w := make([]float64, 0, 2+len(cfg.Extra))
		w = append(w, wb, wl)
		// Extra-type draws come after the canonical two so the paper's
		// two-type streams are untouched when Extra is empty.
		for _, ex := range cfg.Extra {
			w = append(w, math.Ceil(wb*(ex.Min+rng.Float64()*(ex.Max-ex.Min))))
		}
		tasks[i] = core.Task{
			Name:       fmt.Sprintf("t%02d", i),
			Weight:     w,
			Replicable: rep[i],
		}
	}
	return core.MustChain(tasks)
}

// GenerateMany produces count independent chains from cfg, deterministic
// for a given seed.
func GenerateMany(cfg Config, seed int64, count int) []*core.Chain {
	rng := rand.New(rand.NewSource(seed))
	chains := make([]*core.Chain, count)
	for i := range chains {
		chains[i] = Generate(cfg, rng)
	}
	return chains
}
