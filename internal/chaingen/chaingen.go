// Package chaingen generates the synthetic task chains of the paper's
// simulation campaign (§VI-A1): big-core weights drawn uniformly from the
// integer interval [1, 100], little-core weights obtained by applying a
// per-task slowdown drawn uniformly from [1, 5] and rounding up, and a
// stateless ratio SR selecting the fraction of replicable tasks.
package chaingen

import (
	"fmt"
	"math"
	"math/rand"

	"ampsched/internal/core"
)

// Config parameterizes chain generation. The zero value is not useful;
// start from Default.
type Config struct {
	// N is the number of tasks in the chain.
	N int
	// WMin and WMax bound the uniform integer big-core weights.
	WMin, WMax int
	// SlowMin and SlowMax bound the uniform real little-core slowdown.
	SlowMin, SlowMax float64
	// StatelessRatio is the fraction of tasks that are replicable. The
	// generator makes exactly round(SR·N) tasks replicable, at uniformly
	// random positions.
	StatelessRatio float64
}

// Default returns the paper's simulation configuration for n tasks and
// stateless ratio sr.
func Default(n int, sr float64) Config {
	return Config{N: n, WMin: 1, WMax: 100, SlowMin: 1, SlowMax: 5, StatelessRatio: sr}
}

// Validate reports whether the configuration is internally consistent.
func (cfg Config) Validate() error {
	switch {
	case cfg.N <= 0:
		return fmt.Errorf("chaingen: N=%d, want > 0", cfg.N)
	case cfg.WMin < 0 || cfg.WMax < cfg.WMin:
		return fmt.Errorf("chaingen: weight interval [%d,%d] invalid", cfg.WMin, cfg.WMax)
	case cfg.SlowMin < 1 || cfg.SlowMax < cfg.SlowMin:
		return fmt.Errorf("chaingen: slowdown interval [%g,%g] invalid", cfg.SlowMin, cfg.SlowMax)
	case cfg.StatelessRatio < 0 || cfg.StatelessRatio > 1:
		return fmt.Errorf("chaingen: stateless ratio %g outside [0,1]", cfg.StatelessRatio)
	}
	return nil
}

// Generate produces one random chain according to cfg using rng. It panics
// if cfg is invalid (use Validate first for untrusted inputs).
func Generate(cfg Config, rng *rand.Rand) *core.Chain {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nRep := int(math.Round(cfg.StatelessRatio * float64(cfg.N)))
	rep := make([]bool, cfg.N)
	for _, i := range rng.Perm(cfg.N)[:nRep] {
		rep[i] = true
	}
	tasks := make([]core.Task, cfg.N)
	for i := range tasks {
		wb := float64(cfg.WMin + rng.Intn(cfg.WMax-cfg.WMin+1))
		slow := cfg.SlowMin + rng.Float64()*(cfg.SlowMax-cfg.SlowMin)
		wl := math.Ceil(wb * slow)
		tasks[i] = core.Task{
			Name:       fmt.Sprintf("t%02d", i),
			Weight:     [core.NumCoreTypes]float64{core.Big: wb, core.Little: wl},
			Replicable: rep[i],
		}
	}
	return core.MustChain(tasks)
}

// GenerateMany produces count independent chains from cfg, deterministic
// for a given seed.
func GenerateMany(cfg Config, seed int64, count int) []*core.Chain {
	rng := rand.New(rand.NewSource(seed))
	chains := make([]*core.Chain, count)
	for i := range chains {
		chains[i] = Generate(cfg, rng)
	}
	return chains
}
