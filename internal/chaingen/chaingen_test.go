package chaingen

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"ampsched/internal/core"
)

func TestConfigValidate(t *testing.T) {
	good := Default(20, 0.5)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{N: 0, WMin: 1, WMax: 10, SlowMin: 1, SlowMax: 2, StatelessRatio: 0.5},
		{N: 5, WMin: -1, WMax: 10, SlowMin: 1, SlowMax: 2, StatelessRatio: 0.5},
		{N: 5, WMin: 10, WMax: 1, SlowMin: 1, SlowMax: 2, StatelessRatio: 0.5},
		{N: 5, WMin: 1, WMax: 10, SlowMin: 0.5, SlowMax: 2, StatelessRatio: 0.5},
		{N: 5, WMin: 1, WMax: 10, SlowMin: 3, SlowMax: 2, StatelessRatio: 0.5},
		{N: 5, WMin: 1, WMax: 10, SlowMin: 1, SlowMax: 2, StatelessRatio: 1.5},
		{N: 5, WMin: 1, WMax: 10, SlowMin: 1, SlowMax: 2, StatelessRatio: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with invalid config should panic")
		}
	}()
	Generate(Config{}, rand.New(rand.NewSource(1)))
}

func TestGenerateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(40)
		sr := rng.Float64()
		cfg := Default(n, sr)
		c := Generate(cfg, rng)
		if c.Len() != n {
			return false
		}
		repCount := 0
		for i := 0; i < n; i++ {
			tk := c.Task(i)
			wb, wl := tk.W(core.Big), tk.W(core.Little)
			if wb < 1 || wb > 100 || wb != math.Trunc(wb) {
				t.Logf("big weight %v outside integer [1,100]", wb)
				return false
			}
			if wl < wb || wl > 5*wb || wl != math.Trunc(wl) {
				t.Logf("little weight %v outside [wb, 5wb] for wb=%v", wl, wb)
				return false
			}
			if tk.Replicable {
				repCount++
			}
		}
		want := int(math.Round(sr * float64(n)))
		return repCount == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateManyDeterministic(t *testing.T) {
	a := GenerateMany(Default(20, 0.5), 42, 5)
	b := GenerateMany(Default(20, 0.5), 42, 5)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		for j := 0; j < a[i].Len(); j++ {
			if !sameTask(a[i].Task(j), b[i].Task(j)) {
				t.Fatalf("chain %d task %d differs across identical seeds", i, j)
			}
		}
	}
	c := GenerateMany(Default(20, 0.5), 43, 5)
	same := true
	for j := 0; j < a[0].Len(); j++ {
		if !sameTask(a[0].Task(j), c[0].Task(j)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical first chains")
	}
}

func TestStatelessRatioExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c0 := Generate(Default(15, 0), rng)
	if c0.SeqCount() != 15 {
		t.Errorf("SR=0: %d sequential tasks, want 15", c0.SeqCount())
	}
	c1 := Generate(Default(15, 1), rng)
	if c1.SeqCount() != 0 {
		t.Errorf("SR=1: %d sequential tasks, want 0", c1.SeqCount())
	}
}

// sameTask compares tasks by value now that Weight is a slice.
func sameTask(a, b core.Task) bool {
	return a.Name == b.Name && a.Replicable == b.Replicable && slices.Equal(a.Weight, b.Weight)
}

func TestDefault3(t *testing.T) {
	cfg := Default3(20, 0.5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	c := Generate(cfg, rng)
	if c.NumTypes() != 3 {
		t.Fatalf("NumTypes = %d, want 3", c.NumTypes())
	}
	for j := 0; j < c.Len(); j++ {
		tk := c.Task(j)
		wb, wl, wm := tk.W(core.Big), tk.W(core.Little), tk.W(2)
		if wb < 1 || wb > 100 {
			t.Errorf("task %d big weight %v outside [1,100]", j, wb)
		}
		// The medium type's slowdown interval [1,3] sits inside little's [1,5].
		if wm < wb || wm > 3*wb+1 {
			t.Errorf("task %d medium weight %v outside [%v,%v]", j, wm, wb, 3*wb+1)
		}
		if wl < wb {
			t.Errorf("task %d little weight %v below big %v", j, wl, wb)
		}
	}
	// Same seed, same chain — the extra type does not break determinism.
	c2 := Generate(cfg, rand.New(rand.NewSource(7)))
	for j := 0; j < c.Len(); j++ {
		if !sameTask(c.Task(j), c2.Task(j)) {
			t.Fatalf("task %d differs across identical seeds", j)
		}
	}
	// The replicable positions and the first task's two canonical weights
	// match the two-type profile for the same seed: the extra draws are
	// appended after the canonical ones.
	c2t := Generate(Default(20, 0.5), rand.New(rand.NewSource(7)))
	t0, t0b := c.Task(0), c2t.Task(0)
	if t0.W(core.Big) != t0b.W(core.Big) || t0.W(core.Little) != t0b.W(core.Little) ||
		t0.Replicable != t0b.Replicable {
		t.Errorf("task 0 canonical draws diverged: 3-type %v/%v, 2-type %v/%v",
			t0.W(core.Big), t0.W(core.Little), t0b.W(core.Big), t0b.W(core.Little))
	}
}

func TestValidateExtra(t *testing.T) {
	cfg := Default(5, 0.5)
	cfg.Extra = []SlowdownRange{{Min: 0, Max: 2}}
	if err := cfg.Validate(); err == nil {
		t.Error("non-positive extra slowdown accepted")
	}
	cfg.Extra = []SlowdownRange{{Min: 3, Max: 2}}
	if err := cfg.Validate(); err == nil {
		t.Error("inverted extra slowdown interval accepted")
	}
	cfg.Extra = make([]SlowdownRange, core.MaxCoreTypes-1)
	for i := range cfg.Extra {
		cfg.Extra[i] = SlowdownRange{Min: 1, Max: 2}
	}
	if err := cfg.Validate(); err == nil {
		t.Error("too many extra types accepted")
	}
}
