// Package brute provides an exhaustive-search reference solver for small
// problem instances. It enumerates every interval partition of the chain
// and every per-stage core-type/core-count assignment that respects the
// resources, and reports the minimum period. Tests use it to certify
// HeRAD's optimality (period and secondary objective) on random small
// chains; it is exponential and must not be used beyond ~12 tasks.
package brute

import (
	"math"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Metrics holds the exhaustive solver's instrumentation handles. The
// zero value is the disabled sink.
type Metrics struct {
	// Solutions counts the complete solutions enumerated.
	Solutions *obs.Counter
	// Improvements counts how often the incumbent best solution was
	// replaced (by a better period or a better tie-break).
	Improvements *obs.Counter
	// Trace is the decision-journal scope. The enumeration emits one
	// "improved" event per incumbent replacement plus a final
	// "enumeration" summary — not one event per enumerated solution,
	// which would be exponential.
	Trace *trace.Scope
}

// MetricsFrom resolves the solver's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		Solutions:    r.Counter("brute.enumerate.solutions"),
		Improvements: r.Counter("brute.search.improvements"),
	}
}

// Enumerate calls fn for every structurally valid complete solution of c
// under resources r, whatever the number of core types. Sequential stages
// are only generated with one core (extra cores never reduce a sequential
// stage's weight and only waste resources, so this loses no optimal
// solution under either objective).
func Enumerate(c *core.Chain, r core.Resources, fn func(core.Solution)) {
	k := r.NumTypes()
	var stages []core.Stage
	var rec func(s int, rem core.Resources)
	rec = func(s int, rem core.Resources) {
		if s == c.Len() {
			sol := core.Solution{Stages: append([]core.Stage(nil), stages...)}
			fn(sol)
			return
		}
		for e := s; e < c.Len(); e++ {
			rep := c.IsRep(s, e)
			for v := core.CoreType(0); int(v) < k; v++ {
				maxU := rem.Count(v)
				if !rep {
					maxU = min(1, maxU)
				}
				for u := 1; u <= maxU; u++ {
					stages = append(stages, core.Stage{Start: s, End: e, Cores: u, Type: v})
					rec(e+1, rem.Consume(v, u))
					stages = stages[:len(stages)-1]
				}
			}
		}
	}
	rec(0, r)
}

// Schedule returns an optimal-period solution of c on r, breaking period
// ties with the paper's secondary objective (Beats). It returns the empty
// solution when no valid schedule exists. Like the rest of the package it
// is exponential: do not use beyond ~12 tasks.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleObs(c, r, Metrics{})
}

// ScheduleObs is Schedule reporting into m.
func ScheduleObs(c *core.Chain, r core.Resources, m Metrics) core.Solution {
	if c == nil || c.Len() == 0 || r.Total() <= 0 || !r.NonNegative() {
		return core.Solution{}
	}
	if c.NumTypes() != r.NumTypes() {
		return core.Solution{} // chain and platform disagree on the type table
	}
	var best core.Solution
	bestP := math.Inf(1)
	enumerated := 0
	Enumerate(c, r, func(s core.Solution) {
		m.Solutions.Inc()
		enumerated++
		p := s.Period(c)
		switch {
		case p < bestP:
			m.Improvements.Inc()
			best, bestP = s, p
			if m.Trace.Enabled() {
				m.Trace.Event("improved").F64("period", p).Int("stages", len(s.Stages))
			}
		case p == bestP && !best.IsEmpty():
			if BeatsVec(s.Usage(r.NumTypes()), best.Usage(r.NumTypes())) {
				m.Improvements.Inc()
				best = s
				if m.Trace.Enabled() {
					m.Trace.Event("improved").F64("period", p).Bool("tie_break", true)
				}
			}
		}
	})
	if m.Trace.Enabled() {
		m.Trace.Event("enumeration").Int("solutions", enumerated)
	}
	return best
}

// MinPeriod returns the optimal (minimum) period of c on r, or +Inf when
// no valid solution exists.
func MinPeriod(c *core.Chain, r core.Resources) float64 {
	best := math.Inf(1)
	Enumerate(c, r, func(s core.Solution) {
		if p := s.Period(c); p < best {
			best = p
		}
	})
	return best
}

// Beats reports whether core usage (bN, lN) is strictly preferable to
// (bC, lC) under the paper's secondary objective (CompareCells, Algo 10):
// it either exchanges big cores for little ones, or uses no more cores of
// either type with at least one strict improvement. Case analysis shows
// both clauses together are exactly the strict lexicographic order on the
// (big, little) usage pair — the two-type instance of BeatsVec.
func Beats(bN, lN, bC, lC int) bool {
	return BeatsVec([]int{bN, lN}, []int{bC, lC})
}

// BeatsVec reports whether the per-type core usage n is strictly
// preferable to c under the k-type secondary objective: strictly
// lexicographically smaller, so a schedule first saves cores of type 0
// (the paper's big cores), then of type 1, and so on. At k=2 this is
// provably the paper's Algo 10 preference.
func BeatsVec(n, c []int) bool {
	for v := range n {
		if n[v] != c[v] {
			return n[v] < c[v]
		}
	}
	return false
}

// OptimalUsages returns the core usages of every optimal-period solution.
func OptimalUsages(c *core.Chain, r core.Resources) (period float64, usages [][2]int) {
	period = MinPeriod(c, r)
	if math.IsInf(period, 1) {
		return period, nil
	}
	seen := map[[2]int]bool{}
	Enumerate(c, r, func(s core.Solution) {
		if s.Period(c) <= period {
			b, l := s.CoresUsed()
			if !seen[[2]int{b, l}] {
				seen[[2]int{b, l}] = true
				usages = append(usages, [2]int{b, l})
			}
		}
	})
	return period, usages
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
