package brute

import (
	"math"
	"testing"

	"ampsched/internal/core"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func TestEnumerateCountsPartitions(t *testing.T) {
	// 3 replicable tasks, 1 big core, 0 little: each of the 4 interval
	// partitions needs as many big cores as stages, so only the 1-stage
	// partition survives; with 2 big cores, partitions with ≤ 2 stages
	// and all core splits are visited.
	c := core.MustChain([]core.Task{task(1, 1, true), task(1, 1, true), task(1, 1, true)})
	count := 0
	Enumerate(c, core.Res(1, 0), func(core.Solution) { count++ })
	if count != 1 {
		t.Errorf("1 big core: %d solutions, want 1", count)
	}
	count = 0
	Enumerate(c, core.Res(2, 0), func(core.Solution) { count++ })
	// 1 stage with 1 or 2 cores (2) + 2-stage partitions ({1|23},{12|3})
	// with 1 core each (2) = 4.
	if count != 4 {
		t.Errorf("2 big cores: %d solutions, want 4", count)
	}
}

func TestEnumerateOnlyValidSolutions(t *testing.T) {
	c := core.MustChain([]core.Task{task(3, 6, false), task(2, 4, true)})
	r := core.Res(1, 2)
	Enumerate(c, r, func(s core.Solution) {
		if err := s.Validate(c, r); err != nil {
			t.Errorf("enumerated invalid solution %v: %v", s, err)
		}
	})
}

func TestMinPeriodKnown(t *testing.T) {
	// seq 10 | rep 8 8: big fast, little 2× slow. R=(1,2):
	// [seq]B (10) | [rep rep] on 2L (32/2=16) → 16 optimal.
	c := core.MustChain([]core.Task{
		task(10, 20, false), task(8, 16, true), task(8, 16, true),
	})
	if got := MinPeriod(c, core.Res(1, 2)); got != 16 {
		t.Errorf("MinPeriod = %v, want 16", got)
	}
	if got := MinPeriod(c, core.Resources{}); !math.IsInf(got, 1) {
		t.Errorf("MinPeriod no cores = %v, want +Inf", got)
	}
}

func TestBeatsRelation(t *testing.T) {
	cases := []struct {
		bN, lN, bC, lC int
		want           bool
	}{
		{0, 2, 1, 1, true},  // exchanges big for little
		{1, 1, 0, 2, false}, // reverse exchange is not better
		{1, 1, 1, 1, false}, // identical usage: not strictly better
		{1, 0, 1, 1, true},  // fewer little cores
		{0, 1, 1, 1, true},  // fewer big cores
		{2, 0, 1, 1, false}, // more big, fewer little: not an exchange
		{0, 5, 3, 1, true},  // strong exchange
		{2, 2, 1, 1, false}, // strictly more of both
	}
	for _, tc := range cases {
		if got := Beats(tc.bN, tc.lN, tc.bC, tc.lC); got != tc.want {
			t.Errorf("Beats(%d,%d vs %d,%d) = %v, want %v",
				tc.bN, tc.lN, tc.bC, tc.lC, got, tc.want)
		}
	}
}

func TestOptimalUsages(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 10, false)})
	p, usages := OptimalUsages(c, core.Res(1, 1))
	if p != 10 {
		t.Fatalf("period %v", p)
	}
	// Both a big and a little single core reach period 10.
	if len(usages) != 2 {
		t.Errorf("usages = %v, want both (1,0) and (0,1)", usages)
	}
	p, usages = OptimalUsages(c, core.Resources{})
	if !math.IsInf(p, 1) || usages != nil {
		t.Errorf("no-core case: %v %v", p, usages)
	}
}
