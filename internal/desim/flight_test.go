package desim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
)

// flightRun replays the canonical drift scenario with a flight recorder
// attached to both the sample pass and the drift detector, returning the
// recorder's dump. Everything is driven by the simulated clock, so the
// dump must be bit-identical across runs — the golden contract.
func flightRun(t *testing.T) (string, *flight.Recorder) {
	t.Helper()
	c, sol, planned := driftScenario(t)
	rec := flight.New(4096)
	d := obs.NewDriftDetector(planned, obs.DriftConfig{Threshold: 0.25, Alpha: 0.5, MinSamples: 2}, nil, nil)
	d.Flight = rec
	_, err := Simulate(c, sol, Config{
		Frames: 1000,
		Steps:  []WeightStep{{AfterFrame: 500, Stage: 1, Factor: 2}},
		Sample: &SampleConfig{Every: 6000, Drift: d, Flight: rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rec
}

func TestFlightDumpMatchesGolden(t *testing.T) {
	dump, rec := flightRun(t)

	// The dump tells the fault story in causal order: the injected step,
	// then the windows, with the drift firing right after the window that
	// tripped it.
	counts := rec.CountByCode()
	if counts[flight.CodeFault] != 1 || counts[flight.CodeDrift] != 1 {
		t.Fatalf("counts = %v, want one fault and one drift", counts)
	}
	if counts[flight.CodeWindow] == 0 {
		t.Fatal("no window events recorded")
	}
	if !strings.Contains(dump, "fault stage=1 a=2") {
		t.Fatalf("dump lost the injected fault:\n%s", dump)
	}

	if again, _ := flightRun(t); again != dump {
		t.Fatalf("flight dumps differ between identical runs:\n%s\n---\n%s", dump, again)
	}

	golden := filepath.Join("testdata", "flight_dump.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(dump), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if dump != string(want) {
		t.Fatalf("flight dump drifted from golden (re-run with -update to accept):\ngot:\n%s\nwant:\n%s", dump, want)
	}
}
