// Package desim is a deterministic discrete-event simulator for
// pipelined-and-replicated task-chain schedules. It executes a schedule
// frame by frame with per-stage worker pools, round-robin frame dispatch
// (frame k runs on replica k mod r, preserving frame order like StreamPU's
// adaptors), and optional finite inter-stage buffers with
// blocking-after-service semantics. It reports the steady-state period,
// end-to-end latency and per-stage utilization, independently of wall
// time, and is used to predict the "Sim" throughput columns of Table II.
package desim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ampsched/internal/core"
)

// Config parameterizes a simulation run.
type Config struct {
	// Frames is the number of frames pushed through the pipeline.
	Frames int
	// Warmup is the number of initial frame departures excluded from the
	// steady-state period measurement. Defaults to Frames/4 when 0.
	Warmup int
	// QueueCap is the capacity (in frames) of each stage's input buffer;
	// 0 means unbounded. Finite buffers exert backpressure on upstream
	// stages (blocking after service).
	QueueCap int
	// Jitter adds per-frame service-time noise: each execution draws its
	// service time uniformly from [1−Jitter, 1+Jitter]·w. Real platforms
	// show exactly this kind of variance (the paper measures 0–19% gaps
	// between expected and achieved throughput); with jitter the
	// simulated period exceeds the analytic bound because a pipeline
	// cannot average away its slowest-stage excursions. 0 disables.
	Jitter float64
	// Seed seeds the jitter generator (0 uses a fixed default).
	Seed int64
	// Steps optionally perturb stage service times mid-stream (see
	// WeightStep) — the simulator's way to model drift the planner did not
	// anticipate.
	Steps []WeightStep
	// Sample, when set, enables deterministic sim-clock sampling: windowed
	// occupancy/weight series, an end-to-end latency histogram and drift
	// detection driven purely by the simulated clock (see SampleConfig).
	Sample *SampleConfig
}

// DefaultConfig simulates 2000 frames with a 500-frame warmup and
// StreamPU-like buffers of 2 frames per replica.
func DefaultConfig() Config {
	return Config{Frames: 2000, Warmup: 500, QueueCap: 0}
}

// Result summarizes one simulation.
type Result struct {
	// Period is the steady-state mean inter-departure time of frames at
	// the pipeline sink (same unit as the task weights).
	Period float64
	// Latency is the mean end-to-end frame latency after warmup.
	Latency float64
	// Makespan is the departure time of the last frame.
	Makespan float64
	// StageService holds each stage's per-frame service time.
	StageService []float64
	// StageUtilization is the busy fraction of each stage's worker pool
	// over the steady-state window.
	StageUtilization []float64
	// Frames is the number of simulated frames.
	Frames int
	// SamplesTaken is the number of sampling windows emitted (0 unless
	// Config.Sample was set).
	SamplesTaken int
}

// Throughput converts the simulated period into frames per second given
// task weights expressed in microseconds and the platform's interframe
// level (frames per pipeline slot).
func (r Result) Throughput(interframe int) float64 {
	return core.Throughput(r.Period, interframe)
}

// Simulate runs the schedule sol of chain c through the simulator. The
// solution must be structurally valid for some resource budget; resource
// limits themselves do not matter to the timing model (each stage owns its
// cores exclusively).
func Simulate(c *core.Chain, sol core.Solution, cfg Config) (Result, error) {
	if c == nil || c.Len() == 0 {
		return Result{}, errors.New("desim: empty chain")
	}
	if err := sol.Validate(c, core.Unlimited(c.NumTypes())); err != nil {
		return Result{}, fmt.Errorf("desim: invalid solution: %w", err)
	}
	if cfg.Frames <= 0 {
		cfg.Frames = DefaultConfig().Frames
	}
	if cfg.Warmup <= 0 || cfg.Warmup >= cfg.Frames {
		cfg.Warmup = cfg.Frames / 4
	}
	if cfg.QueueCap < 0 {
		return Result{}, fmt.Errorf("desim: negative queue capacity %d", cfg.QueueCap)
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		if cfg.Jitter != 0 {
			return Result{}, fmt.Errorf("desim: jitter %v outside [0,1)", cfg.Jitter)
		}
	}
	for _, stp := range cfg.Steps {
		if stp.Stage < 0 || stp.Stage >= len(sol.Stages) {
			return Result{}, fmt.Errorf("desim: weight step targets stage %d of %d", stp.Stage, len(sol.Stages))
		}
		if stp.Factor <= 0 {
			return Result{}, fmt.Errorf("desim: weight step factor %v, want > 0", stp.Factor)
		}
	}
	var jitterRng *rand.Rand
	if cfg.Jitter > 0 {
		seed := cfg.Seed
		if seed == 0 {
			seed = 0x5EED
		}
		jitterRng = rand.New(rand.NewSource(seed))
	}

	m := len(sol.Stages)
	service := make([]float64, m)
	replicas := make([]int, m)
	for i, st := range sol.Stages {
		service[i] = c.SumW(st.Start, st.End, st.Type)
		replicas[i] = st.Cores
	}

	// depart[i][k]: time frame k leaves stage i (service completed AND a
	// slot is free downstream). start[i][k]: time service begins.
	// Worker k mod r of stage i becomes free when frame k-r departs
	// (blocking after service: a worker holds its frame until handoff).
	start := make([][]float64, m)
	depart := make([][]float64, m)
	svcArr := make([][]float64, m) // actual per-frame service times
	for i := range start {
		start[i] = make([]float64, cfg.Frames)
		depart[i] = make([]float64, cfg.Frames)
		svcArr[i] = make([]float64, cfg.Frames)
	}

	for k := 0; k < cfg.Frames; k++ {
		for i := 0; i < m; i++ {
			// Arrival of frame k at stage i.
			arr := 0.0
			if i > 0 {
				arr = depart[i-1][k]
			}
			// The assigned worker must have handed off its previous frame.
			if prev := k - replicas[i]; prev >= 0 {
				if w := depart[i][prev]; w > arr {
					arr = w
				}
			}
			// Finite input buffer of stage i: frame k may only *enter*
			// stage i's queue when frame k-cap-r has started service.
			// This is enforced upstream at handoff time (see below), so
			// nothing extra is needed here.
			start[i][k] = arr
			svc := service[i]
			for _, stp := range cfg.Steps {
				if stp.Stage == i && k >= stp.AfterFrame {
					svc *= stp.Factor
				}
			}
			if jitterRng != nil {
				svc *= 1 + cfg.Jitter*(2*jitterRng.Float64()-1)
			}
			svcArr[i][k] = svc
			fin := arr + svc
			depart[i][k] = fin
		}
		// Backpressure pass: with finite buffers, frame k cannot leave
		// stage i until stage i+1 has a free input slot, which happens
		// when frame k-QueueCap-replicas[i+1] has departed stage i+1.
		if cfg.QueueCap > 0 {
			for i := m - 2; i >= 0; i-- {
				blockAt := k - cfg.QueueCap - replicas[i+1]
				if blockAt >= 0 && depart[i+1][blockAt] > depart[i][k] {
					depart[i][k] = depart[i+1][blockAt]
				}
			}
			// Re-propagate delayed handoffs downstream once; with
			// deterministic service times a single forward fix-up after
			// the backward pass restores consistency for frame k.
			for i := 1; i < m; i++ {
				arr := depart[i-1][k]
				if prev := k - replicas[i]; prev >= 0 && depart[i][prev] > arr {
					arr = depart[i][prev]
				}
				if arr > start[i][k] {
					start[i][k] = arr
					if f := arr + svcArr[i][k]; f > depart[i][k] {
						depart[i][k] = f
					}
				}
			}
		}
	}

	last := depart[m-1]
	res := Result{
		Makespan:     last[cfg.Frames-1],
		StageService: service,
		Frames:       cfg.Frames,
	}
	span := last[cfg.Frames-1] - last[cfg.Warmup-1]
	res.Period = span / float64(cfg.Frames-cfg.Warmup)

	lat := 0.0
	for k := cfg.Warmup; k < cfg.Frames; k++ {
		release := start[0][k] // frame k is created when stage 0 takes it
		lat += last[k] - release
	}
	res.Latency = lat / float64(cfg.Frames-cfg.Warmup)

	// Utilization is busy time over the pipeline's steady-state window
	// (measured at the sink), so upstream stages that race ahead into
	// unbounded buffers still report their steady-state share.
	res.StageUtilization = make([]float64, m)
	for i := 0; i < m; i++ {
		busy := float64(cfg.Frames-cfg.Warmup) * service[i]
		if span <= 0 {
			res.StageUtilization[i] = 1
			continue
		}
		res.StageUtilization[i] = math.Min(1, busy/(span*float64(replicas[i])))
	}
	if cfg.Sample != nil {
		res.SamplesTaken = samplePass(cfg, replicas, svcArr, start, depart, res.Makespan)
	}
	return res, nil
}

// PredictPeriod returns the analytic steady-state period of a schedule:
// the maximum stage weight (Eq. 2). Simulate should converge to this value
// for any queue capacity ≥ 1; tests assert the equivalence.
func PredictPeriod(c *core.Chain, sol core.Solution) float64 {
	return sol.Period(c)
}
