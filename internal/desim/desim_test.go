package desim

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/fertac"
	"ampsched/internal/herad"
	"ampsched/internal/platform"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func TestErrors(t *testing.T) {
	c := core.MustChain([]core.Task{task(1, 1, true)})
	if _, err := Simulate(nil, core.Solution{}, Config{}); err == nil {
		t.Error("nil chain accepted")
	}
	if _, err := Simulate(c, core.Solution{}, Config{}); err == nil {
		t.Error("empty solution accepted")
	}
	bad := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 0, Type: core.Big}}}
	if _, err := Simulate(c, bad, Config{}); err == nil {
		t.Error("structurally invalid solution accepted")
	}
	ok := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Big}}}
	if _, err := Simulate(c, ok, Config{QueueCap: -1}); err == nil {
		t.Error("negative queue capacity accepted")
	}
}

func TestSingleStagePeriod(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 20, false), task(5, 10, false)})
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 1, Cores: 1, Type: core.Big}}}
	res, err := Simulate(c, sol, Config{Frames: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-15) > 1e-9 {
		t.Errorf("period = %v, want 15", res.Period)
	}
	if math.Abs(res.Latency-15) > 1e-9 {
		t.Errorf("latency = %v, want 15", res.Latency)
	}
}

func TestReplicatedStageSpeedup(t *testing.T) {
	// One replicable stage of weight 30 on 3 cores: period 10, but each
	// frame still takes 30 to process (latency ≥ 30).
	c := core.MustChain([]core.Task{task(30, 60, true)})
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 3, Type: core.Big}}}
	res, err := Simulate(c, sol, Config{Frames: 900})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-10) > 1e-9 {
		t.Errorf("period = %v, want 10", res.Period)
	}
	if res.Latency < 30-1e-9 {
		t.Errorf("latency = %v, must be at least the service time 30", res.Latency)
	}
}

func TestBottleneckDominates(t *testing.T) {
	// Three stages with weights 5, 20, 10: period == 20 and the slow
	// stage is fully utilized while others idle.
	c := core.MustChain([]core.Task{
		task(5, 5, false), task(20, 20, false), task(10, 10, false),
	})
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
		{Start: 2, End: 2, Cores: 1, Type: core.Big},
	}}
	res, err := Simulate(c, sol, Config{Frames: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-20) > 1e-9 {
		t.Errorf("period = %v, want 20", res.Period)
	}
	if res.StageUtilization[1] < 0.99 {
		t.Errorf("bottleneck utilization = %v, want ≈1", res.StageUtilization[1])
	}
	if res.StageUtilization[0] > 0.3 {
		t.Errorf("stage 0 utilization = %v, want ≈5/20", res.StageUtilization[0])
	}
}

func TestLittleCoreWeightsUsed(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 40, false)})
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Little}}}
	res, err := Simulate(c, sol, Config{Frames: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-40) > 1e-9 {
		t.Errorf("little-core period = %v, want 40", res.Period)
	}
}

func TestFiniteBuffersKeepBottleneckThroughput(t *testing.T) {
	// Deterministic flow lines reach the bottleneck rate for any buffer
	// capacity ≥ 1; finite buffers must not change the steady period.
	c := core.MustChain([]core.Task{
		task(8, 8, false), task(12, 12, false), task(4, 4, false),
	})
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
		{Start: 2, End: 2, Cores: 1, Type: core.Big},
	}}
	for _, cap := range []int{0, 1, 2, 8} {
		res, err := Simulate(c, sol, Config{Frames: 1200, QueueCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Period-12) > 1e-9 {
			t.Errorf("cap %d: period = %v, want 12", cap, res.Period)
		}
	}
}

func TestMatchesAnalyticPeriodOnRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for iter := 0; iter < 60; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(15), 0.5), rng)
		r := core.Res(1+rng.Intn(5), 1+rng.Intn(5))
		sol := fertac.Schedule(c, r)
		if sol.IsEmpty() {
			t.Fatal("no schedule")
		}
		res, err := Simulate(c, sol, Config{Frames: 1500, QueueCap: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := PredictPeriod(c, sol)
		if math.Abs(res.Period-want) > want*0.01+1e-9 {
			t.Fatalf("iter %d: simulated period %v, analytic %v (sol %v)",
				iter, res.Period, want, sol)
		}
	}
}

func TestTableIIPredictions(t *testing.T) {
	// The simulator must reproduce Table II's expected FPS from HeRAD's
	// schedules: Mac Studio (8,2) → 1128.7 µs → ≈3544 FPS at interframe 4.
	mac := platform.MacStudio()
	c := mac.Chain()
	sol := herad.Schedule(c, core.Res(8, 2))
	res, err := Simulate(c, sol, Config{Frames: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-1128.8) > 1.0 {
		t.Errorf("Mac (8,2) HeRAD period = %v µs, want ≈1128.7", res.Period)
	}
	fps := res.Throughput(mac.Interframe)
	if math.Abs(fps-3544) > 10 {
		t.Errorf("FPS = %v, want ≈3544", fps)
	}
	if mb := platform.MbPerSecond(fps); math.Abs(mb-50.4) > 0.3 {
		t.Errorf("Mb/s = %v, want ≈50.4", mb)
	}
}

func TestWarmupDefaults(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 10, false)})
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Big}}}
	res, err := Simulate(c, sol, Config{Frames: 100, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 100 || res.Period <= 0 {
		t.Errorf("defaults broken: %+v", res)
	}
	// Warmup ≥ Frames is coerced, not an infinite loop / panic.
	if _, err := Simulate(c, sol, Config{Frames: 100, Warmup: 100}); err != nil {
		t.Errorf("warmup coercion failed: %v", err)
	}
}

func TestJitterValidationAndEffect(t *testing.T) {
	c := core.MustChain([]core.Task{
		task(10, 10, false), task(10, 10, false),
	})
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	if _, err := Simulate(c, sol, Config{Jitter: -0.1}); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := Simulate(c, sol, Config{Jitter: 1.5}); err == nil {
		t.Error("jitter ≥ 1 accepted")
	}
	clean, err := Simulate(c, sol, Config{Frames: 3000})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Simulate(c, sol, Config{Frames: 3000, Jitter: 0.2, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Jitter can only hurt: a pipeline cannot average away slow-stage
	// excursions, so the measured period rises above the analytic bound —
	// the mechanism behind the paper's expected-vs-real throughput gap.
	if noisy.Period <= clean.Period {
		t.Errorf("jittered period %v not above clean %v", noisy.Period, clean.Period)
	}
	if noisy.Period > clean.Period*1.25 {
		t.Errorf("20%% jitter inflated the period by %.0f%%",
			100*(noisy.Period/clean.Period-1))
	}
	// Deterministic for a fixed seed.
	again, err := Simulate(c, sol, Config{Frames: 3000, Jitter: 0.2, QueueCap: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if again.Period != noisy.Period {
		t.Error("jitter not deterministic for a fixed seed")
	}
}
