package desim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// driftScenario is the canonical mid-stream weight-step run: two stages,
// stage 1 slows down 2× halfway through. Planned weights come from the
// schedule, so the detector watches exactly what the planner assumed.
func driftScenario(t *testing.T) (*core.Chain, core.Solution, []float64) {
	t.Helper()
	c := core.MustChain([]core.Task{task(100, 200, true), task(120, 240, true)})
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	planned := make([]float64, len(sol.Stages))
	for i, st := range sol.Stages {
		planned[i] = c.SumW(st.Start, st.End, st.Type)
	}
	return c, sol, planned
}

func driftRun(t *testing.T) (Result, *obs.Registry, *obs.DriftDetector, *trace.Journal) {
	t.Helper()
	c, sol, planned := driftScenario(t)
	reg := obs.NewRegistry()
	j := trace.New()
	sp := j.Begin("desim")
	d := obs.NewDriftDetector(planned, obs.DriftConfig{Threshold: 0.25, Alpha: 0.5, MinSamples: 2}, reg, sp)
	cfg := Config{
		Frames: 1000,
		Steps:  []WeightStep{{AfterFrame: 500, Stage: 1, Factor: 2}},
		Sample: &SampleConfig{Every: 6000, Metrics: reg, Drift: d},
	}
	res, err := Simulate(c, sol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, reg, d, j
}

func TestWeightStepFiresExactlyOneDriftEvent(t *testing.T) {
	res, reg, d, _ := driftRun(t)
	if res.SamplesTaken < 10 {
		t.Fatalf("samples taken = %d, want a healthy window count", res.SamplesTaken)
	}
	// The step doubles stage 1's weight for the rest of the run: one
	// excursion, so exactly one edge-triggered event.
	if d.Detected() != 1 {
		t.Fatalf("drift events = %d, want exactly 1", d.Detected())
	}
	if got := reg.Counter("drift.detected").Value(); got != 1 {
		t.Fatalf("drift.detected counter = %d", got)
	}
	// The estimate converged to the post-step weight of stage 1 (120·2).
	if est := d.Estimate(1); est < 200 || est > 280 {
		t.Fatalf("stage 1 estimate = %v, want ≈240", est)
	}
	if est := d.Estimate(0); est < 80 || est > 120 {
		t.Fatalf("stage 0 estimate = %v, want ≈100 (on plan)", est)
	}
	// Weight series reflect the step: early windows ≈120, late ≈240.
	pts := reg.Series("desim.weight.stage1", 0).Tail(0)
	if len(pts) < 4 {
		t.Fatalf("weight series has %d points", len(pts))
	}
	if first := pts[0].Value; first < 100 || first > 140 {
		t.Errorf("first window weight = %v, want ≈120", first)
	}
	if lastPt := pts[len(pts)-1].Value; lastPt < 200 || lastPt > 280 {
		t.Errorf("last window weight = %v, want ≈240", lastPt)
	}
}

func TestDriftJournalMatchesGolden(t *testing.T) {
	_, _, _, j := driftRun(t)
	var buf bytes.Buffer
	if err := j.WriteExplain(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "drift_journal.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("journal drifted from golden (re-run with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestSamplingIsBitDeterministic(t *testing.T) {
	// Two identical runs must produce byte-identical registry snapshots —
	// including the latency histogram's p50/p95/p99.
	snap := func() []byte {
		_, reg, _, _ := driftRun(t)
		b, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ between identical runs:\n%s\n---\n%s", a, b)
	}
	_, reg, _, _ := driftRun(t)
	q := reg.LogHistogram("desim.latency_us").Quantiles()
	if q.Count != 1000 || q.P95 <= 0 || q.P50 > q.P99 {
		t.Fatalf("latency quantiles = %+v", q)
	}
}

func TestSampleWithoutStepStaysQuiet(t *testing.T) {
	c, sol, planned := driftScenario(t)
	d := obs.NewDriftDetector(planned, obs.DriftConfig{Threshold: 0.25, Alpha: 0.5, MinSamples: 2}, nil, nil)
	res, err := Simulate(c, sol, Config{Frames: 1000, Sample: &SampleConfig{Every: 6000, Drift: d}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Detected() != 0 {
		t.Fatalf("on-plan run fired %d drift events", d.Detected())
	}
	if res.SamplesTaken == 0 {
		t.Fatal("no samples taken")
	}
}

func TestSampleDefaultsAndOccupancy(t *testing.T) {
	c, sol, _ := driftScenario(t)
	reg := obs.NewRegistry()
	res, err := Simulate(c, sol, Config{Frames: 400, Sample: &SampleConfig{Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	// Every=0 defaults to makespan/16 → 17 windows.
	if res.SamplesTaken != 17 {
		t.Fatalf("samples taken = %d, want 17", res.SamplesTaken)
	}
	occ := reg.Series("desim.occupancy.stage1", 0).Tail(0)
	if len(occ) != 17 {
		t.Fatalf("occupancy series has %d points", len(occ))
	}
	// Stage 1 is the bottleneck (weight 120 vs 100): mid-run occupancy ≈ 1.
	mid := occ[8].Value
	if mid < 0.9 || mid > 1 {
		t.Errorf("bottleneck mid-run occupancy = %v", mid)
	}
}

func TestWeightStepValidation(t *testing.T) {
	c, sol, _ := driftScenario(t)
	if _, err := Simulate(c, sol, Config{Frames: 10, Steps: []WeightStep{{Stage: 5, Factor: 2}}}); err == nil {
		t.Error("out-of-range step stage accepted")
	}
	if _, err := Simulate(c, sol, Config{Frames: 10, Steps: []WeightStep{{Stage: 0, Factor: 0}}}); err == nil {
		t.Error("non-positive step factor accepted")
	}
}

func TestWeightStepSlowsPeriod(t *testing.T) {
	c, sol, _ := driftScenario(t)
	base, err := Simulate(c, sol, Config{Frames: 1000})
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := Simulate(c, sol, Config{Frames: 1000, Steps: []WeightStep{{AfterFrame: 0, Stage: 1, Factor: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if stepped.Period <= base.Period {
		t.Fatalf("doubling the bottleneck did not slow the period: %v vs %v", stepped.Period, base.Period)
	}
}
