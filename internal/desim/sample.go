package desim

import (
	"math"

	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
)

// Sim-clock sampling: the simulator's analogue of streampu's live
// Sampler. Because the simulation is a deterministic frame-indexed DP,
// sampling is a pure post-pass over the recorded start/depart/service
// arrays — windows are cut on the *simulated* clock, never the wall
// clock, so every run of the same config produces bit-identical series,
// histograms and drift events. This is the testbed for the drift
// detector: a WeightStep injects the mid-stream weight change, the
// sample pass replays it into obs, and the golden journal pins the
// resulting drift_detected emission byte for byte.

// WeightStep perturbs one stage's service time mid-stream: from frame
// AfterFrame on, stage Stage's per-frame service time is multiplied by
// Factor. Use it to model a platform slowdown (Factor > 1) or speedup
// (Factor < 1) that the planner did not anticipate.
type WeightStep struct {
	AfterFrame int
	Stage      int
	Factor     float64
}

// SampleConfig enables deterministic sim-clock sampling of a run.
type SampleConfig struct {
	// Every is the sampling window width in the weight unit (µs). 0 picks
	// makespan/16.
	Every float64
	// Metrics receives "desim.occupancy.stageN" / "desim.weight.stageN"
	// series (one point per window, tick = window index) and the
	// "desim.latency_us" end-to-end latency histogram. May be nil.
	Metrics *obs.Registry
	// Drift receives one windowed weight estimate per (window, stage) with
	// frames in that window, in deterministic window-major order. May be
	// nil.
	Drift *obs.DriftDetector
	// SeriesCap is the ring capacity of the emitted series (0 = default).
	SeriesCap int
	// Flight, when non-nil, receives the run's flight events on the sim
	// clock: one CodeFault per configured WeightStep (tick = AfterFrame,
	// stage = the perturbed stage, A = factor), then one CodeWindow per
	// (window, stage) with frames in the window (tick = window index,
	// A = occupancy, B = windowed weight estimate) in window-major order.
	// Set Drift.Flight to the same recorder to interleave each CodeDrift
	// firing directly after the window that tripped it. Everything is
	// driven by the simulated clock, so dumps of identical configs are
	// bit-identical — the golden-test contract.
	Flight *flight.Recorder
}

// desimWeightNames / desimOccNames intern the per-stage series names so
// repeated simulations don't rebuild them.
var (
	desimWeightNames = obs.NewNameTable("desim.weight.stage")
	desimOccNames    = obs.NewNameTable("desim.occupancy.stage")
)

// samplePass cuts the simulated timeline into fixed windows and emits
// per-window per-stage occupancy and weight estimates plus the
// end-to-end latency histogram. A frame's service time is attributed to
// the window its stage departure falls in. Returns the number of windows
// emitted.
func samplePass(cfg Config, replicas []int, svc, start, depart [][]float64, makespan float64) int {
	s := cfg.Sample
	every := s.Every
	if every <= 0 {
		every = makespan / 16
	}
	if every <= 0 || makespan <= 0 {
		return 0
	}
	m := len(svc)
	nWin := int(makespan/every) + 1

	busy := make([][]float64, m)
	count := make([][]int64, m)
	for i := 0; i < m; i++ {
		busy[i] = make([]float64, nWin)
		count[i] = make([]int64, nWin)
		for k := 0; k < cfg.Frames; k++ {
			w := int(depart[i][k] / every)
			if w >= nWin {
				w = nWin - 1
			}
			busy[i][w] += svc[i][k]
			count[i][w]++
		}
	}

	if s.Metrics != nil {
		lh := s.Metrics.LogHistogram("desim.latency_us")
		for k := 0; k < cfg.Frames; k++ {
			lh.Observe(depart[m-1][k] - start[0][k])
		}
	}

	// Faults first: the injected weight steps are the run's ground truth,
	// so a flight dump reads cause (fault) before effect (window, drift).
	for _, stp := range cfg.Steps {
		s.Flight.Record(flight.Event{
			Code:  flight.CodeFault,
			Tick:  int64(stp.AfterFrame),
			Stage: int32(stp.Stage),
			A:     stp.Factor,
		})
	}

	for w := 0; w < nWin; w++ {
		width := every
		if end := float64(w+1) * every; end > makespan {
			width = makespan - float64(w)*every
		}
		for i := 0; i < m; i++ {
			est := 0.0
			if count[i][w] > 0 {
				est = busy[i][w] / float64(count[i][w])
			}
			occ := 0.0
			if width > 0 {
				occ = math.Min(1, busy[i][w]/(width*float64(replicas[i])))
			}
			if s.Metrics != nil {
				s.Metrics.Series(desimOccNames.Name(i), s.SeriesCap).Append(int64(w), occ)
				if count[i][w] > 0 {
					s.Metrics.Series(desimWeightNames.Name(i), s.SeriesCap).Append(int64(w), est)
				}
			}
			if count[i][w] > 0 {
				s.Flight.Record(flight.Event{
					Code:  flight.CodeWindow,
					Tick:  int64(w),
					Stage: int32(i),
					A:     occ,
					B:     est,
				})
				s.Drift.Observe(i, int64(w), est)
			}
		}
	}
	return nWin
}
