package streampu

import (
	"sync"
	"testing"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs"
)

func samplerPipeline(t *testing.T, s *Sampler) *Pipeline {
	t.Helper()
	tasks := []Task{
		timedTask("a", 200, 200, true),
		timedTask("b", 400, 400, true),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 2, Type: core.Little},
	}}
	p, err := New(tasks, sol, Options{Sampler: s})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSamplerAggregatesRun(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(reg)
	p := samplerPipeline(t, s)
	if _, err := p.Run(40, nil); err != nil {
		t.Fatal(err)
	}
	snap := s.Sample(time.Now())
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d stages, want 2", len(snap))
	}
	for i, ss := range snap {
		if ss.Stage != i {
			t.Errorf("stage %d reported index %d", i, ss.Stage)
		}
		if ss.Frames != 40 || ss.FrameDelta != 40 {
			t.Errorf("stage %d frames = %d/%d, want 40/40", i, ss.Frames, ss.FrameDelta)
		}
		if ss.Occupancy <= 0 || ss.Occupancy > 1.5 {
			t.Errorf("stage %d occupancy = %v", i, ss.Occupancy)
		}
		if ss.WeightEstimate <= 0 {
			t.Errorf("stage %d weight estimate = %v", i, ss.WeightEstimate)
		}
		if ss.P95 <= 0 || ss.P50 > ss.P99 {
			t.Errorf("stage %d percentiles = %v/%v/%v", i, ss.P50, ss.P95, ss.P99)
		}
	}
	if snap[0].Workers != 1 || snap[1].Workers != 2 {
		t.Errorf("workers = %d/%d", snap[0].Workers, snap[1].Workers)
	}
	// The modeled per-frame weight should be in the right ballpark: stage 0
	// runs a 200 µs task, stage 1 a 400 µs task (sleep overshoot only adds).
	if snap[0].WeightEstimate < 150 {
		t.Errorf("stage 0 weight estimate %v, want ≳200", snap[0].WeightEstimate)
	}
	// Registry got the series, EWMA, latency histograms and fps rate.
	if reg.Series("streampu.occupancy_window.stage0", 0).Total() != 1 {
		t.Error("occupancy series missing sample")
	}
	if reg.EWMA("streampu.occupancy_ewma.stage1", 0).Count() != 1 {
		t.Error("occupancy EWMA missing sample")
	}
	if reg.LogHistogram("streampu.latency_us.stage1").Count() != 40 {
		t.Error("latency histogram missing observations")
	}
	if reg.Rate("streampu.fps", 0).Total() != 40 {
		t.Error("fps rate missing frames")
	}
}

func TestSamplerWindowsAreDeltas(t *testing.T) {
	s := NewSampler(nil) // nil registry: snapshots only
	p := samplerPipeline(t, s)
	if _, err := p.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	first := s.Sample(time.Now())
	if first[1].FrameDelta != 20 {
		t.Fatalf("first window delta = %d", first[1].FrameDelta)
	}
	// No frames between the two samples: second window is empty.
	second := s.Sample(time.Now().Add(time.Millisecond))
	if second == nil {
		t.Fatal("second sample nil")
	}
	if second[1].FrameDelta != 0 || second[1].Frames != 20 {
		t.Errorf("second window = %d delta (%d total), want 0 (20)", second[1].FrameDelta, second[1].Frames)
	}
	if second[1].WeightEstimate != 0 {
		t.Errorf("empty window weight estimate = %v, want 0", second[1].WeightEstimate)
	}
	if second[1].Occupancy != 0 {
		t.Errorf("empty window occupancy = %v, want 0", second[1].Occupancy)
	}
}

func TestSamplerFeedsDrift(t *testing.T) {
	// Planned weights far below actual: the first sampled window must trip
	// the detector for both stages.
	d := obs.NewDriftDetector([]float64{1, 1}, obs.DriftConfig{Threshold: 0.25, Alpha: 1, MinSamples: 1}, nil, nil)
	s := NewSampler(nil)
	s.Drift = d
	p := samplerPipeline(t, s)
	if _, err := p.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	s.Sample(time.Now())
	if d.Detected() != 2 {
		t.Fatalf("drift detected = %d, want 2", d.Detected())
	}
}

func TestSamplerConcurrentSampleDuringRun(t *testing.T) {
	// Race check: Sample concurrently with worker Record calls.
	s := NewSampler(obs.NewRegistry())
	p := samplerPipeline(t, s)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				s.Sample(time.Now())
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	if _, err := p.Run(60, nil); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	final := s.Sample(time.Now().Add(time.Millisecond))
	if final[1].Frames != 60 {
		t.Fatalf("final cumulative frames = %d, want 60", final[1].Frames)
	}
}

func TestSamplerNilAndUnboundInert(t *testing.T) {
	var s *Sampler
	s.Record(0, time.Millisecond)
	if s.Sample(time.Now()) != nil {
		t.Error("nil sampler produced a snapshot")
	}
	u := NewSampler(nil)
	u.Record(0, time.Millisecond) // before bind: dropped
	if u.Sample(time.Now()) != nil {
		t.Error("unbound sampler produced a snapshot")
	}
}

func TestSamplerRecordAllocs(t *testing.T) {
	var nilS *Sampler
	if n := testing.AllocsPerRun(100, func() { nilS.Record(0, time.Millisecond) }); n != 0 {
		t.Errorf("nil Record allocates %v/op", n)
	}
	s := NewSampler(nil)
	s.bind([]pipeStage{{Stage: core.Stage{Cores: 1}}}, 1, time.Now())
	if n := testing.AllocsPerRun(100, func() { s.Record(0, time.Millisecond) }); n != 0 {
		t.Errorf("bound Record allocates %v/op", n)
	}
	s.Record(-1, time.Millisecond) // out of range: dropped, no panic
	s.Record(5, time.Millisecond)
}

func TestSamplerStallCounters(t *testing.T) {
	var nilS *Sampler
	nilS.RecordStall(0) // inert
	s := NewSampler(nil)
	s.RecordStall(0) // before bind: dropped
	s.bind([]pipeStage{{Stage: core.Stage{Cores: 1}}, {Stage: core.Stage{Cores: 1}}}, 1, time.Now())
	if n := testing.AllocsPerRun(100, func() { s.RecordStall(0) }); n != 0 {
		t.Errorf("RecordStall allocates %v/op", n)
	}
	s.RecordStall(-1) // out of range: dropped, no panic
	s.RecordStall(5)
	s.RecordStall(0)
	s.Record(0, time.Millisecond)
	snap := s.Sample(time.Now().Add(time.Millisecond))
	// 100 from AllocsPerRun (plus its warm-up call) and 1 explicit.
	if snap[0].Stalls != 102 || snap[0].StallDelta != 102 {
		t.Errorf("stage 0 stalls = %d/%d, want 102/102", snap[0].Stalls, snap[0].StallDelta)
	}
	if snap[1].Stalls != 0 {
		t.Errorf("stage 1 stalls = %d, want 0", snap[1].Stalls)
	}
	// Windows are deltas: a second sample with no new stalls keeps the
	// cumulative count and zeroes the delta.
	s.Record(0, time.Millisecond)
	snap = s.Sample(time.Now().Add(2 * time.Millisecond))
	if snap[0].Stalls != 102 || snap[0].StallDelta != 0 {
		t.Errorf("second window stalls = %d/%d, want 102/0", snap[0].Stalls, snap[0].StallDelta)
	}
}

// TestSamplerCountsPipelineStalls drives a pipeline shaped to stall —
// a fast source against a single-slot queue into a slow sink — and
// checks the stall counters surface through a live Sample snapshot.
func TestSamplerCountsPipelineStalls(t *testing.T) {
	s := NewSampler(nil)
	tasks := []Task{
		timedTask("fast", 0, 0, true),
		timedTask("slow", 400, 400, true),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{Sampler: s, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(50, nil); err != nil {
		t.Fatal(err)
	}
	snap := s.Sample(time.Now())
	if snap[0].Stalls == 0 {
		t.Error("fast source never stalled against the slow sink")
	}
	if snap[1].Stalls != 0 {
		t.Errorf("sink stage reports %d stalls, want 0 (it has no downstream)", snap[1].Stalls)
	}
}
