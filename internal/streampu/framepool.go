package streampu

import (
	"sync"

	"ampsched/internal/streampu/ring"
)

// FramePool recycles Frame objects through a lock-free MPMC free list
// with a sync.Pool behind it, so the pipeline's steady-state frame loop
// performs zero heap allocations.
//
// The free list is MPMC because recycling is the pipeline's one true
// fan-in/fan-out point: every last-stage replica releases frames and
// every source replica acquires them, concurrently. Sized to the
// pipeline's in-flight bound (workers plus aggregate boundary
// capacity), the ring can never overflow in steady state, and after the
// first lap it never underflows either — Get pops a recycled frame and
// Put pushes it back, no allocator in sight. The sync.Pool is the
// graceful fallback for both edges (a cold ring during warmup, an
// oversized release burst), not the steady-state path: unlike the ring
// it may allocate on Get and is drained by GC cycles.
//
// Ownership contract: a frame obtained from Get is owned exclusively by
// the caller until handed downstream; the last owner returns it with
// Put, after which any retained pointer to the frame (not to its
// payload) is invalid. Put resets Err; Seq is overwritten by the next
// Get site. Data is deliberately preserved across recycling so payload
// buffers are reused too — tasks that lazily allocate with
// "if f.Data == nil { f.Data = &Payload{} }" (the dvbs2 chains do)
// become allocation-free after the pool's first lap. Sources that need
// a pristine frame must reset Data themselves.
type FramePool struct {
	free *ring.MPMC[*Frame]
	pool sync.Pool
}

// NewFramePool returns a pool whose lock-free free list holds up to
// capacity frames (rounded up to a power of two; sized by callers to
// the maximum number of frames simultaneously in flight).
func NewFramePool(capacity int) *FramePool {
	p := &FramePool{free: ring.NewMPMC[*Frame](capacity)}
	p.pool.New = func() any { return new(Frame) }
	return p
}

// Get returns a frame with Err == nil and undefined Seq/Data (see the
// recycling contract on FramePool). Allocation-free whenever the free
// list is non-empty. A nil pool allocates a fresh frame.
func (p *FramePool) Get() *Frame {
	if p == nil {
		return new(Frame)
	}
	if f, ok := p.free.TryPop(); ok {
		return f
	}
	return p.pool.Get().(*Frame)
}

// Put recycles f. Safe from any goroutine; a nil pool or nil frame is a
// no-op.
func (p *FramePool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	f.Err = nil
	if !p.free.TryPush(f) {
		p.pool.Put(f)
	}
}
