package streampu

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ampsched/internal/core"
)

// Dynamic executor: the baseline the paper's related-work section argues
// against ("dynamic schedulers from current runtime systems are usually
// inefficient at our task granularity of tens to thousands of µs",
// §II). Instead of a static interval mapping, a pool of workers pulls
// (frame, task) work items from a central ready queue, GNU-Radio /
// generic-runtime style. Stateful tasks are serialized and executed in
// frame order through per-task sequence gates; stateless tasks run
// wherever a worker is free. Comparing Dynamic against a static Pipeline
// on the same workload exposes the central-queue dispatch overhead and
// loss of stage locality that motivate the paper's static schedules.

// DynamicOptions configures a dynamic execution.
type DynamicOptions struct {
	// Workers lists the virtual core type of each pool worker.
	Workers []core.CoreType
	// QueueCap bounds the central ready queue (defaults to 4× workers).
	QueueCap int
	// TimeScale and Spin mirror Options.
	TimeScale float64
	Spin      bool
	// WarmupFraction mirrors Options.WarmupFraction.
	WarmupFraction float64
}

// workItem is one schedulable unit: one task applied to one frame.
type workItem struct {
	frame *Frame
	task  int
}

// taskGate serializes a stateful task and releases its work in frame
// order.
type taskGate struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]*Frame
}

// Dynamic runs the chain over frames frames with a dynamically scheduled
// worker pool and returns runtime statistics comparable to
// Pipeline.Run's.
func Dynamic(tasks []Task, frames int, opt DynamicOptions, src func(*Frame)) (Stats, error) {
	if len(tasks) == 0 {
		return Stats{}, errors.New("streampu: no tasks")
	}
	if frames <= 0 {
		return Stats{}, fmt.Errorf("streampu: frames = %d, want > 0", frames)
	}
	if len(opt.Workers) == 0 {
		return Stats{}, errors.New("streampu: no workers")
	}
	if opt.QueueCap < 0 {
		return Stats{}, fmt.Errorf("streampu: QueueCap = %d, want >= 0 (0 selects 4x workers)", opt.QueueCap)
	}
	if opt.TimeScale < 0 || math.IsNaN(opt.TimeScale) || math.IsInf(opt.TimeScale, 0) {
		return Stats{}, fmt.Errorf("streampu: TimeScale = %v, want a finite value >= 0 (0 selects 1)", opt.TimeScale)
	}
	if opt.WarmupFraction != 0 && (opt.WarmupFraction < 0 || opt.WarmupFraction >= 1 || math.IsNaN(opt.WarmupFraction)) {
		return Stats{}, fmt.Errorf("streampu: WarmupFraction = %v, want 0 <= f < 1 (0 selects 0.25)", opt.WarmupFraction)
	}
	if opt.TimeScale == 0 {
		opt.TimeScale = 1
	}
	if opt.QueueCap == 0 {
		opt.QueueCap = 4 * len(opt.Workers)
	}
	if opt.WarmupFraction == 0 {
		opt.WarmupFraction = 0.25
	}

	gates := make([]*taskGate, len(tasks))
	for i, t := range tasks {
		if !t.Replicable() {
			gates[i] = &taskGate{pending: map[uint64]*Frame{}}
		}
	}

	ready := make(chan workItem, opt.QueueCap)
	var wg sync.WaitGroup

	// Completion bookkeeping is per-frame on the hot path, so it must not
	// funnel every worker through one mutex: each finishing frame claims a
	// unique slot in a preallocated doneTimes with one atomic increment
	// and writes it contention-free. doneTimes is read only after wg.Wait,
	// which orders it after every slot write.
	doneTimes := make([]time.Time, frames)
	var done, errored atomic.Int64
	finish := make(chan struct{})
	finishFrame := func(f *Frame) {
		if f.Err != nil {
			errored.Add(1)
		}
		idx := done.Add(1) - 1
		doneTimes[idx] = time.Now()
		if idx+1 == int64(frames) {
			close(finish)
		}
	}

	// offer hands a frame to task ti, honoring stateful ordering: out-of-
	// order frames park in the gate until their turn. ti is always a real
	// task index — workers complete final-stage frames inline.
	offer := func(f *Frame, ti int) {
		g := gates[ti]
		if g == nil {
			ready <- workItem{frame: f, task: ti}
			return
		}
		g.mu.Lock()
		if f.Seq != g.next {
			g.pending[f.Seq] = f
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		ready <- workItem{frame: f, task: ti}
	}

	// release advances a stateful task's gate after it processed a frame,
	// freeing the next in-order frame if it is already waiting.
	release := func(ti int) {
		g := gates[ti]
		if g == nil {
			return
		}
		g.mu.Lock()
		g.next++
		nf, ok := g.pending[g.next]
		if ok {
			delete(g.pending, g.next)
		}
		g.mu.Unlock()
		if ok {
			ready <- workItem{frame: nf, task: ti}
		}
	}

	for w, ct := range opt.Workers {
		wg.Add(1)
		go func(id int, ct core.CoreType) {
			defer wg.Done()
			wctx := &Worker{Core: ct, Scale: opt.TimeScale, Spin: opt.Spin, ID: id}
			for item := range ready {
				t0 := time.Now()
				if err := tasks[item.task].Process(wctx, item.frame); err != nil && item.frame.Err == nil {
					item.frame.Err = fmt.Errorf("%s: %w", tasks[item.task].Name(), err)
				}
				wctx.Settle(t0)
				release(item.task)
				if next := item.task + 1; next == len(tasks) {
					// Completing a frame never blocks, so do it inline
					// instead of paying a goroutine spawn per item.
					finishFrame(item.frame)
				} else {
					// Handing to the next task may block on the bounded
					// ready queue; a fresh goroutine keeps this worker
					// free to drain it (the classic re-enqueue deadlock).
					go offer(item.frame, next)
				}
			}
		}(w, ct)
	}

	start := time.Now()
	go func() {
		for seq := uint64(0); seq < uint64(frames); seq++ {
			f := &Frame{Seq: seq}
			if src != nil {
				src(f)
			}
			offer(f, 0)
		}
	}()
	<-finish
	elapsed := time.Since(start)
	close(ready)
	wg.Wait()

	stats := Stats{Frames: int(done.Load()), Errored: int(errored.Load()), Elapsed: elapsed}
	sort.Slice(doneTimes, func(i, j int) bool { return doneTimes[i].Before(doneTimes[j]) })
	warm := int(float64(frames) * opt.WarmupFraction)
	if warm >= len(doneTimes)-1 {
		warm = 0
	}
	if n := len(doneTimes) - warm - 1; n > 0 {
		span := doneTimes[len(doneTimes)-1].Sub(doneTimes[warm])
		stats.PeriodMicros = span.Seconds() * 1e6 / float64(n) / opt.TimeScale
		if stats.PeriodMicros > 0 {
			stats.FPS = 1e6 / stats.PeriodMicros
		}
	}
	return stats, nil
}

// HomogeneousWorkers builds a worker pool of n cores of type v.
func HomogeneousWorkers(n int, v core.CoreType) []core.CoreType {
	out := make([]core.CoreType, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// PlatformWorkers builds a worker pool with b big and l little cores.
func PlatformWorkers(b, l int) []core.CoreType {
	out := make([]core.CoreType, 0, b+l)
	for i := 0; i < b; i++ {
		out = append(out, core.Big)
	}
	for i := 0; i < l; i++ {
		out = append(out, core.Little)
	}
	return out
}
