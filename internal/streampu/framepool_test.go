package streampu

import (
	"errors"
	"testing"
)

func TestFramePoolRecyclesAndResets(t *testing.T) {
	p := NewFramePool(4)
	f := p.Get()
	payload := &struct{ n int }{n: 42}
	f.Seq = 7
	f.Data = payload
	f.Err = errors.New("boom")
	p.Put(f)

	g := p.Get()
	if g != f {
		t.Fatal("pool did not recycle the returned frame")
	}
	if g.Err != nil {
		t.Fatalf("recycled frame carries Err %v, want nil", g.Err)
	}
	if g.Data != any(payload) {
		t.Fatal("recycled frame lost its Data payload (contract: Data is preserved)")
	}
}

func TestFramePoolNilSafe(t *testing.T) {
	var p *FramePool
	f := p.Get()
	if f == nil {
		t.Fatal("nil pool Get returned nil frame")
	}
	p.Put(f) // no-op, must not panic
	p = NewFramePool(2)
	p.Put(nil) // nil frame is a no-op
	if p.Get() == nil {
		t.Fatal("Get returned nil after Put(nil)")
	}
}

func TestFramePoolOverflowFallsBackToSyncPool(t *testing.T) {
	p := NewFramePool(2)
	frames := make([]*Frame, 16)
	for i := range frames {
		frames[i] = p.Get()
	}
	for _, f := range frames {
		p.Put(f) // more than the free list holds: overflow goes to sync.Pool
	}
	for i := 0; i < 16; i++ {
		if p.Get() == nil {
			t.Fatalf("Get %d returned nil after overflow", i)
		}
	}
}

func TestFramePoolSteadyStateAllocs(t *testing.T) {
	p := NewFramePool(8)
	f := p.Get()
	p.Put(f) // warm the free list
	if n := testing.AllocsPerRun(1000, func() {
		p.Put(p.Get())
	}); n != 0 {
		t.Fatalf("steady-state Get/Put allocates %.2f per op, want 0", n)
	}
}
