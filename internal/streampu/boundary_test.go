package streampu

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/obs/flight"
)

// TestOptionsValidation covers the up-front rejection of option values
// that previously slipped into the run (negative capacities used to make
// unbuffered channels; a NaN warmup fraction corrupted the period math).
func TestOptionsValidation(t *testing.T) {
	tasks := []Task{timedTask("a", 1, 1, true)}
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Big}}}
	bad := []Options{
		{QueueCap: -1},
		{TimeScale: -2},
		{TimeScale: math.NaN()},
		{TimeScale: math.Inf(1)},
		{WarmupFraction: -0.1},
		{WarmupFraction: 1},
		{WarmupFraction: 1.5},
		{WarmupFraction: math.NaN()},
		{Boundary: BoundaryKind(99)},
	}
	for i, opt := range bad {
		if _, err := New(tasks, sol, opt); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, opt)
		}
	}
	// Zero values select the documented defaults; explicit valid values pass.
	good := []Options{
		{},
		{QueueCap: 1, TimeScale: 2, WarmupFraction: 0.5},
		{Boundary: BoundaryChannel},
	}
	for i, opt := range good {
		if _, err := New(tasks, sol, opt); err != nil {
			t.Errorf("good options %d rejected: %v", i, err)
		}
	}
}

// runShape executes a 3-stage pipeline (r1 → r2 → 1 sink) over frames
// frames with the given boundary kind, a deterministic failure pattern,
// and returns the stats plus the sink's observed delivery order.
func runShape(t *testing.T, kind BoundaryKind, r1, r2, queueCap, frames int) (Stats, []uint64) {
	t.Helper()
	oc := &orderCheck{}
	failing := &FuncTask{TaskName: "maybe", Rep: true, Fn: func(w *Worker, f *Frame) error {
		if f.Seq%11 == 5 {
			return errors.New("boom")
		}
		return nil
	}}
	tasks := []Task{
		failing,
		timedTask("mid", 3, 3, true),
		oc.task(),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: r1, Type: core.Big},
		{Start: 1, End: 1, Cores: r2, Type: core.Big},
		{Start: 2, End: 2, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{Boundary: kind, QueueCap: queueCap})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	oc.verify(t, frames)
	return st, append([]uint64(nil), oc.seen...)
}

// TestBoundaryDifferential drives the ring boundary and the reference
// channel boundary through the same deterministic workloads — every
// replica shape (1→N, N→1, N→M) across several queue capacities — and
// requires identical frame counts, error counts, and sink delivery order.
func TestBoundaryDifferential(t *testing.T) {
	shapes := []struct{ r1, r2 int }{{1, 1}, {1, 4}, {4, 1}, {3, 2}, {2, 3}}
	for _, sh := range shapes {
		for _, cap := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%dto%d_cap%d", sh.r1, sh.r2, cap), func(t *testing.T) {
				const frames = 200
				ringSt, ringOrder := runShape(t, BoundaryRing, sh.r1, sh.r2, cap, frames)
				chanSt, chanOrder := runShape(t, BoundaryChannel, sh.r1, sh.r2, cap, frames)
				if ringSt.Frames != chanSt.Frames || ringSt.Errored != chanSt.Errored {
					t.Fatalf("stats diverge: ring (%d frames, %d errored) vs channel (%d, %d)",
						ringSt.Frames, ringSt.Errored, chanSt.Frames, chanSt.Errored)
				}
				for i := range ringOrder {
					if ringOrder[i] != chanOrder[i] {
						t.Fatalf("delivery order diverges at %d: ring %d vs channel %d",
							i, ringOrder[i], chanOrder[i])
					}
				}
			})
		}
	}
}

// TestRingBoundaryStressSoak is the -race workhorse for the ring hot
// path: a fan-out/fan-in pipeline (3→2→4→1) with single-slot queues (so
// stalls and the blocking slow path fire constantly), a slow sink (so
// backpressure propagates the whole chain), and thousands of frames. No
// frame may be lost or reordered, and the error accounting must be exact.
func TestRingBoundaryStressSoak(t *testing.T) {
	const frames = 3000
	oc := &orderCheck{}
	rec := flight.New(1 << 14)
	jitter := &FuncTask{TaskName: "jitter", Rep: true, Fn: func(w *Worker, f *Frame) error {
		if f.Seq%13 == 0 {
			runtime.Gosched() // perturb replica interleaving
		}
		if f.Seq%97 == 17 {
			return errors.New("boom")
		}
		return nil
	}}
	slowSink := &FuncTask{TaskName: "sink", Rep: false, Fn: func(w *Worker, f *Frame) error {
		if f.Seq%29 == 0 {
			runtime.Gosched() // intermittent sink hiccups induce stalls upstream
		}
		return nil
	}}
	tasks := []Task{
		jitter,
		timedTask("a", 0, 0, true),
		timedTask("b", 0, 0, true),
		&chainedTask{Task: oc.task(), also: slowSink},
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 3, Type: core.Big},
		{Start: 1, End: 1, Cores: 2, Type: core.Big},
		{Start: 2, End: 2, Cores: 4, Type: core.Big},
		{Start: 3, End: 3, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{QueueCap: 1, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != frames {
		t.Fatalf("lost frames: got %d, want %d", st.Frames, frames)
	}
	wantErr := 0
	for s := 0; s < frames; s++ {
		if s%97 == 17 {
			wantErr++
		}
	}
	if st.Errored != wantErr {
		t.Fatalf("errored = %d, want %d", st.Errored, wantErr)
	}
	oc.verify(t, frames)
	// Stall events must carry well-formed payloads when they fire (they
	// are timing-dependent, so only the shape is asserted, not the count).
	for _, e := range rec.Snapshot() {
		if e.Code == flight.CodeStall && (e.Stage < 0 || e.Stage >= 3 || e.A != float64(e.Tick)) {
			t.Fatalf("malformed stall event: %+v", e)
		}
	}
}

// chainedTask runs two tasks as one (the order checker plus the slow
// sink) so a single sequential stage can both verify order and throttle.
type chainedTask struct {
	Task
	also Task
}

func (c *chainedTask) Process(w *Worker, f *Frame) error {
	if err := c.Task.Process(w, f); err != nil {
		return err
	}
	return c.also.Process(w, f)
}

// TestSteadyStateFrameLoopAllocs pins the tentpole: once the pool's
// first lap is over, pushing a frame through the pipeline must not touch
// the allocator. Setup (rings, workers, results) is a per-run constant,
// so amortized over enough frames the budget is a small fraction of an
// allocation per frame; the old channel+&Frame{} path sat at ≥ 1.
func TestSteadyStateFrameLoopAllocs(t *testing.T) {
	tasks := []Task{
		timedTask("a", 0, 0, true),
		timedTask("b", 0, 0, true),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 2, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5000
	if _, err := p.Run(64, nil); err != nil { // warm sleep/timer internals
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	st, err := p.Run(frames, nil)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != frames {
		t.Fatalf("frames = %d, want %d", st.Frames, frames)
	}
	perFrame := float64(after.Mallocs-before.Mallocs) / frames
	if perFrame > 0.5 {
		t.Fatalf("frame loop allocates %.3f objects/frame, want < 0.5 (steady state must be allocation-free)", perFrame)
	}
}

// TestRingPeriodMatchesDesim cross-checks the ring pipeline's measured
// steady-state period against the discrete-event simulator on the same
// chain and schedule. Wall-clock execution on a loaded CI box is noisy,
// so the tolerance is generous — this guards against structural errors
// (a serialized boundary, a lost pipeline overlap), not timer precision.
func TestRingPeriodMatchesDesim(t *testing.T) {
	ctasks := []core.Task{
		{Name: "t0", Weight: core.Weights(300, 300), Replicable: true},
		{Name: "t1", Weight: core.Weights(200, 200), Replicable: false},
	}
	chain, err := core.NewChain(ctasks)
	if err != nil {
		t.Fatal(err)
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 2, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	sim, err := desim.Simulate(chain, sol, desim.Config{Frames: 1000, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		timedTask("t0", 300, 300, true),
		timedTask("t1", 200, 200, false),
	}
	// TimeScale stretches the realized sleeps well past the box's timer
	// granularity; Stats de-scales the measured period back to modeled µs.
	p, err := New(tasks, sol, Options{QueueCap: 2, TimeScale: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(400, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeriodMicros <= 0 {
		t.Fatalf("no period measured: %+v", st)
	}
	if ratio := st.PeriodMicros / sim.Period; ratio < 0.5 || ratio > 2 {
		t.Fatalf("measured period %.1fµs vs simulated %.1fµs (ratio %.2f), want within 2x",
			st.PeriodMicros, sim.Period, ratio)
	}
}
