package streampu

import (
	"sync"
	"sync/atomic"
	"time"

	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
)

// Live windowed sampling: where Tracer records the full timeline for
// offline analysis, a Sampler keeps only streaming aggregates — per-stage
// busy time, frame counts and log-bucketed latency histograms — cheap
// enough to update on every frame and to snapshot while the pipeline
// runs. Periodic Sample calls turn the aggregates into *windowed*
// occupancy and per-frame weight estimates (the live analogue of the
// planner's task weights), publish them as obs series/EWMA gauges under
// interned names, and feed an attached obs.DriftDetector — the trigger
// signal for online re-planning. The record path is lock-free and
// allocation-free; Sample is serialized and must be driven by a single
// goroutine (ampsched's -watch loop) for deterministic drift folds.

// occupancyWindowNames / occupancyEwmaNames intern the sampler's series
// and EWMA names. They deliberately differ from the occupancy *gauge*
// names RecordMetrics registers, so a run using both never collides on a
// metric kind.
var (
	occupancyWindowNames = obs.NewNameTable("streampu.occupancy_window.stage")
	occupancyEwmaNames   = obs.NewNameTable("streampu.occupancy_ewma.stage")
)

// StageSample is one stage's view in a Sample snapshot. Latency fields
// are in modeled µs (wall time de-scaled by Options.TimeScale), matching
// the task-weight unit the schedule was computed in.
type StageSample struct {
	// Stage is the pipeline stage index; Workers its replica count.
	Stage   int
	Workers int
	// Occupancy is the fraction of the sampling window the stage's
	// replicas spent busy (aggregate busy ÷ (window × workers)).
	Occupancy float64
	// WeightEstimate is the mean per-frame service time over the window in
	// modeled µs — directly comparable to core.Chain.SumW for the stage.
	// 0 when the window saw no frames.
	WeightEstimate float64
	// Frames is the cumulative frame count; FrameDelta the window's share.
	Frames     int64
	FrameDelta int64
	// Stalls is the cumulative count of hand-offs this stage's replicas
	// made that found the downstream buffer full (backpressure events);
	// StallDelta the window's share. A consistently stalling stage means
	// the *next* stage is the bottleneck.
	Stalls     int64
	StallDelta int64
	// P50/P95/P99 are the stage's per-frame latency percentiles in modeled
	// µs, over the whole run so far (streaming log-bucketed histogram).
	P50, P95, P99 float64
}

// samplerState is the per-Run binding: fixed-size aggregate arrays the
// worker goroutines write through atomics.
type samplerState struct {
	workers []int
	scale   float64
	t0      time.Time
	busyNs  []atomic.Int64
	frames  []atomic.Int64
	stalls  []atomic.Int64
	lat     []*obs.LogHistogram
}

// Sampler aggregates per-frame telemetry during a pipeline run. Create
// with NewSampler, optionally set Drift, pass via Options.Sampler; a nil
// *Sampler is the disabled sink. A Sampler serves one Run at a time —
// binding a new run resets the windows.
type Sampler struct {
	reg *obs.Registry

	// Drift, when set before the run starts, receives one windowed
	// per-stage weight estimate per Sample call (only for stages that
	// processed frames in the window).
	Drift *obs.DriftDetector

	// Flight, when set before the run starts, receives one CodeWindow
	// flight event per (Sample call, stage with frames): tick = window
	// index, A = windowed occupancy, B = weight estimate in modeled µs.
	// Wall-clock driven, so not golden-testable — the desim sampler is
	// the deterministic counterpart.
	Flight *flight.Recorder

	state atomic.Pointer[samplerState]

	mu         sync.Mutex // serializes Sample and rebinding bookkeeping
	tick       int64
	lastNs     int64
	prevBusy   []int64
	prevFrames []int64
	prevStalls []int64
	occSeries  []*obs.Series
	occEwma    []*obs.EWMA
	fps        *obs.Rate
}

// NewSampler returns a sampler publishing into reg (which may be nil:
// snapshots still work, only the registry export is skipped). Callers
// scope reg per strategy slug — strategy.MetricsScope — so concurrent
// pipelines keep separate series.
func NewSampler(reg *obs.Registry) *Sampler {
	return &Sampler{reg: reg}
}

// bind attaches the sampler to a starting run. Called by Pipeline.Run
// before any worker starts.
func (s *Sampler) bind(stages []pipeStage, scale float64, t0 time.Time) {
	if s == nil {
		return
	}
	st := &samplerState{
		workers: make([]int, len(stages)),
		scale:   scale,
		t0:      t0,
		busyNs:  make([]atomic.Int64, len(stages)),
		frames:  make([]atomic.Int64, len(stages)),
		stalls:  make([]atomic.Int64, len(stages)),
		lat:     make([]*obs.LogHistogram, len(stages)),
	}
	s.mu.Lock()
	for i, ps := range stages {
		st.workers[i] = ps.Cores
		if s.reg != nil {
			st.lat[i] = s.reg.LogHistogram(latencyNames.Name(i))
		} else {
			st.lat[i] = obs.NewLogHistogram()
		}
	}
	s.occSeries = make([]*obs.Series, len(stages))
	s.occEwma = make([]*obs.EWMA, len(stages))
	if s.reg != nil {
		for i := range stages {
			s.occSeries[i] = s.reg.Series(occupancyWindowNames.Name(i), 0)
			s.occEwma[i] = s.reg.EWMA(occupancyEwmaNames.Name(i), 0)
		}
		s.fps = s.reg.Rate("streampu.fps", 0)
	}
	s.tick = 0
	s.lastNs = 0
	s.prevBusy = make([]int64, len(stages))
	s.prevFrames = make([]int64, len(stages))
	s.prevStalls = make([]int64, len(stages))
	s.state.Store(st)
	s.mu.Unlock()
}

// BindStages attaches the sampler to a run described only by per-stage
// worker counts — the hook benchmarks and external runtimes use when no
// Pipeline.Run drives the binding.
func (s *Sampler) BindStages(workers []int, scale float64, t0 time.Time) {
	if s == nil {
		return
	}
	if scale <= 0 {
		scale = 1
	}
	stages := make([]pipeStage, len(workers))
	for i, w := range workers {
		stages[i].Cores = w
	}
	s.bind(stages, scale, t0)
}

// Record folds one frame execution of one stage into the aggregates:
// busy time, frame count and the latency histogram (in modeled µs).
// Lock-free, allocation-free, safe for concurrent workers; no-op on a
// nil receiver or before binding.
func (s *Sampler) Record(stage int, d time.Duration) {
	if s == nil {
		return
	}
	st := s.state.Load()
	if st == nil || stage < 0 || stage >= len(st.busyNs) {
		return
	}
	st.busyNs[stage].Add(int64(d))
	st.frames[stage].Add(1)
	st.lat[stage].Observe(float64(d) / float64(time.Microsecond) / st.scale)
}

// RecordStall counts one backpressure event for stage: a hand-off that
// found the downstream buffer full and had to block. Lock-free,
// allocation-free; no-op on a nil receiver or before binding.
func (s *Sampler) RecordStall(stage int) {
	if s == nil {
		return
	}
	st := s.state.Load()
	if st == nil || stage < 0 || stage >= len(st.stalls) {
		return
	}
	st.stalls[stage].Add(1)
}

// Sample closes the current window at now: it computes each stage's
// windowed occupancy and weight estimate, publishes occupancy series /
// EWMA gauges and the sink frame rate into the registry, feeds the Drift
// detector, and returns the per-stage snapshot (nil before binding or
// when no wall time elapsed). Call it from one goroutine.
func (s *Sampler) Sample(now time.Time) []StageSample {
	if s == nil {
		return nil
	}
	st := s.state.Load()
	if st == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nowNs := now.Sub(st.t0).Nanoseconds()
	windowNs := nowNs - s.lastNs
	if windowNs <= 0 {
		return nil
	}
	tick := s.tick
	s.tick++
	out := make([]StageSample, len(st.workers))
	for i := range st.workers {
		busy := st.busyNs[i].Load()
		frames := st.frames[i].Load()
		stalls := st.stalls[i].Load()
		dBusy := busy - s.prevBusy[i]
		dFrames := frames - s.prevFrames[i]
		occ := float64(dBusy) / (float64(windowNs) * float64(st.workers[i]))
		q := st.lat[i].Quantiles()
		ss := StageSample{
			Stage: i, Workers: st.workers[i],
			Occupancy: occ,
			Frames:    frames, FrameDelta: dFrames,
			Stalls: stalls, StallDelta: stalls - s.prevStalls[i],
			P50: q.P50, P95: q.P95, P99: q.P99,
		}
		if dFrames > 0 {
			// ns → modeled µs: de-scale wall time back to the weight unit.
			ss.WeightEstimate = float64(dBusy) / float64(dFrames) / 1e3 / st.scale
		}
		out[i] = ss
		s.occSeries[i].Append(tick, occ)
		s.occEwma[i].Update(occ)
		if dFrames > 0 {
			s.Flight.Record(flight.Event{
				Code:  flight.CodeWindow,
				Tick:  tick,
				Stage: int32(i),
				A:     occ,
				B:     ss.WeightEstimate,
			})
			s.Drift.Observe(i, tick, ss.WeightEstimate)
		}
		s.prevBusy[i] = busy
		s.prevFrames[i] = frames
		s.prevStalls[i] = stalls
	}
	if last := len(st.workers) - 1; last >= 0 && s.fps != nil {
		s.fps.Mark(out[last].FrameDelta)
		s.fps.Tick(float64(windowNs) / 1e9) // frames per wall second
	}
	s.lastNs = nowNs
	return out
}
