// Package streampu is a Go re-implementation of the scheduling-relevant
// core of StreamPU, the DSEL/runtime system the paper targets: a streaming
// task-chain runtime with interval-mapped pipeline stages, stage
// replication for stateless intervals, order-preserving round-robin
// adaptors, and adaptor chaining between two consecutive replicated stages
// (the extension released in StreamPU v1.6.0 for the paper's schedules).
//
// Heterogeneous big/little cores are virtualized: every pipeline worker is
// bound to a virtual core of a given type, and latency-modeled tasks
// realize their type-dependent latency by sleeping (oversubscription-safe
// on machines with fewer physical cores than the modeled platform) or
// spinning. Real computational tasks (e.g. internal/dvbs2) simply run
// their code.
package streampu

import (
	"fmt"
	"time"

	"ampsched/internal/core"
)

// Frame is one unit of streaming data flowing through the pipeline.
//
// Frames are recycled: when a frame leaves the last stage the runtime
// returns it to a FramePool, and the source reuses it for a later
// sequence number. Tasks therefore must not retain a *Frame past their
// Process call. Recycling resets Err and reassigns Seq but deliberately
// keeps Data, so chains that lazily allocate their payload
// ("if f.Data == nil { ... }") touch the allocator only on the pool's
// first lap — see FramePool for the full ownership contract.
type Frame struct {
	// Seq is the frame's sequence number, assigned by the pipeline source
	// starting at 0. Replication adaptors preserve sequence order.
	Seq uint64
	// Data carries the task-chain-specific payload. Preserved across
	// recycling: on a reused frame it holds the payload of the previous
	// frame this allocation carried.
	Data any
	// Err records a processing failure; subsequent tasks may inspect it
	// and the runtime counts frames that finish with a non-nil Err.
	Err error
}

// Worker describes the execution context a task runs in: the virtual core
// the worker is bound to and the runtime's time scale.
type Worker struct {
	// Core is the virtual core type (big or little) of this worker.
	Core core.CoreType
	// Scale multiplies modeled latencies before they are realized in wall
	// time (a scale of 10 turns a 100 µs modeled latency into 1 ms).
	Scale float64
	// Spin selects pure busy-waiting instead of sleeping for modeled
	// latency; it needs as many physical cores as workers but has
	// sub-microsecond precision.
	Spin bool
	// ID is the worker's replica index within its stage.
	ID int

	// debt is the modeled latency (µs) accumulated by Wait and not yet
	// realized in wall time; the runtime settles it per frame.
	debt float64
}

// spinGuard is the wall-clock window realized by busy-waiting at the end
// of each settle: time.Sleep on stock Linux overshoots by up to ~1 ms
// (timer slack), so the final stretch is trimmed by spinning instead.
const spinGuard = 1500 * time.Microsecond

// Wait schedules a modeled latency (in the task-weight unit, µs) on this
// worker. The latency is not realized immediately: it accumulates as debt
// that the runtime settles once per frame (or per task when profiling)
// with a single absolute-deadline sleep, so coarse OS sleep granularity
// does not accumulate per task.
func (w *Worker) Wait(micros float64) {
	if micros > 0 {
		w.debt += micros
	}
}

// Settle realizes the accumulated latency debt relative to the given
// start time: it blocks until start + scaled debt. Sleeping targets an
// absolute deadline and hands the final spinGuard stretch to a busy-wait,
// keeping per-frame overshoot far below the OS sleep quantum.
func (w *Worker) Settle(start time.Time) {
	if w.debt <= 0 {
		return
	}
	d := time.Duration(w.debt * w.Scale * float64(time.Microsecond))
	w.debt = 0
	deadline := start.Add(d)
	if !w.Spin {
		if rest := time.Until(deadline) - spinGuard; rest > 0 {
			time.Sleep(rest)
		}
	}
	for time.Now().Before(deadline) {
	}
}

// Task is one processing step of a streaming chain.
type Task interface {
	// Name identifies the task in profiles and traces.
	Name() string
	// Replicable reports whether the task is stateless and may be
	// replicated (cloned) across the workers of a stage.
	Replicable() bool
	// Process handles one frame on the given worker.
	Process(w *Worker, f *Frame) error
}

// Cloner is implemented by replicable tasks that carry per-instance
// scratch state (buffers, decoders): the runtime clones one instance per
// replica worker. Replicable tasks without Clone are shared across
// replicas and must be safe for concurrent use.
type Cloner interface {
	Clone() Task
}

// cloneFor returns the task instance to use on one replica worker.
func cloneFor(t Task) Task {
	if c, ok := t.(Cloner); ok {
		return c.Clone()
	}
	return t
}

// TimedTask is a latency-modeled task: Process waits for the task's
// type-dependent weight on the worker's virtual core. It is the vehicle
// for replaying the paper's Table III profiles on machines that do not
// have heterogeneous cores.
type TimedTask struct {
	TaskName string
	Weights  []float64 // modeled latency per core type, µs
	Rep      bool
}

// Timed builds a TimedTask from a model task.
func Timed(t core.Task) *TimedTask {
	return &TimedTask{TaskName: t.Name, Weights: t.Weight, Rep: t.Replicable}
}

// TimedChain converts a whole model chain into latency-modeled tasks.
func TimedChain(c *core.Chain) []Task {
	out := make([]Task, c.Len())
	for i := 0; i < c.Len(); i++ {
		out[i] = Timed(c.Task(i))
	}
	return out
}

// Name implements Task.
func (t *TimedTask) Name() string { return t.TaskName }

// Replicable implements Task.
func (t *TimedTask) Replicable() bool { return t.Rep }

// Process implements Task by waiting for the modeled latency on the
// worker's core type.
func (t *TimedTask) Process(w *Worker, f *Frame) error {
	t.validateCore(w.Core)
	w.Wait(t.Weights[w.Core])
	return nil
}

func (t *TimedTask) validateCore(v core.CoreType) {
	if int(v) >= len(t.Weights) {
		panic(fmt.Sprintf("streampu: invalid core type %d for task %s", v, t.TaskName))
	}
}

// FuncTask wraps an ordinary function as a Task; handy for sources, sinks
// and small glue steps in examples and tests.
type FuncTask struct {
	TaskName string
	Rep      bool
	Fn       func(w *Worker, f *Frame) error
}

// Name implements Task.
func (t *FuncTask) Name() string { return t.TaskName }

// Replicable implements Task.
func (t *FuncTask) Replicable() bool { return t.Rep }

// Process implements Task.
func (t *FuncTask) Process(w *Worker, f *Frame) error { return t.Fn(w, f) }

// ModelChain derives the scheduling model (a core.Chain) from a task list
// and a latency profile: profile(i, task) must return the task's weights.
// Real computational chains use measured profiles (see Profile in this
// package); latency-modeled chains use their embedded weights.
func ModelChain(tasks []Task, profile func(i int, t Task) []float64) (*core.Chain, error) {
	model := make([]core.Task, len(tasks))
	for i, t := range tasks {
		model[i] = core.Task{Name: t.Name(), Weight: profile(i, t), Replicable: t.Replicable()}
	}
	return core.NewChain(model)
}

// ModelFromTimed derives the scheduling model from latency-modeled tasks.
// It fails if any task is not a *TimedTask.
func ModelFromTimed(tasks []Task) (*core.Chain, error) {
	model := make([]core.Task, len(tasks))
	for i, t := range tasks {
		tt, ok := t.(*TimedTask)
		if !ok {
			return nil, fmt.Errorf("streampu: task %d (%s) is not latency-modeled", i, t.Name())
		}
		model[i] = core.Task{Name: tt.TaskName, Weight: tt.Weights, Replicable: tt.Rep}
	}
	return core.NewChain(model)
}
