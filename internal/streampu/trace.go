package streampu

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Execution tracing: a Tracer records one event per (frame, stage)
// execution with worker attribution and can export the timeline in the
// Chrome trace-event format (load it at chrome://tracing or in Perfetto)
// — the kind of observability a production streaming runtime needs when
// a schedule underperforms its predicted period.

// TraceEvent is one stage execution of one frame.
type TraceEvent struct {
	Frame    uint64
	Stage    int
	Worker   int
	Core     string
	Start    time.Duration // since trace start
	Duration time.Duration
}

// Tracer collects trace events from a pipeline run. It is safe for
// concurrent use; create one, set Options.Tracer, run, then inspect or
// export. The zero value is ready to use.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
	t0     time.Time
	once   sync.Once
}

// record appends one event (called by pipeline workers).
func (tr *Tracer) record(frame uint64, stage, worker int, core string, start time.Time, d time.Duration) {
	tr.once.Do(func() { tr.t0 = start })
	tr.mu.Lock()
	tr.events = append(tr.events, TraceEvent{
		Frame: frame, Stage: stage, Worker: worker, Core: core,
		Start: start.Sub(tr.t0), Duration: d,
	})
	tr.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (tr *Tracer) Events() []TraceEvent {
	tr.mu.Lock()
	out := append([]TraceEvent(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.events)
}

// WriteChromeTrace exports the timeline as a Chrome trace-event JSON
// array: one track per (stage, worker), one complete event per frame. It
// serializes through internal/trace's shared trace-event writer, the same
// one behind the scheduler's decision-journal Chrome view.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	events := tr.Events()
	out := make([]trace.ChromeEvent, len(events))
	for i, e := range events {
		out[i] = trace.ChromeEvent{
			Name: fmt.Sprintf("frame %d", e.Frame),
			Ph:   "X",
			Ts:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64(e.Duration.Nanoseconds()) / 1e3,
			Pid:  e.Stage,
			Tid:  fmt.Sprintf("stage%d/%s%d", e.Stage, e.Core, e.Worker),
			Args: []trace.Attr{trace.Int("frame", int64(e.Frame))},
		}
	}
	return trace.WriteChromeEvents(w, out)
}

// occupancyNames interns the per-stage occupancy gauge names shared by
// RecordMetrics and the windowed Sampler: repeated sampling must not
// rebuild "streampu.occupancy.stageN" strings on every call.
var occupancyNames = obs.NewNameTable("streampu.occupancy.stage")

// latencyNames interns the per-stage latency histogram names used by the
// Sampler ("streampu.latency_us.stageN").
var latencyNames = obs.NewNameTable("streampu.latency_us.stage")

// RecordMetrics feeds the trace's aggregates into m so run-time
// observability shares the scheduling stack's export format: one
// "streampu.occupancy.stage<N>" gauge per stage (StageOccupancy) plus
// the "streampu.trace.events" counter. Gauge names are interned in a
// package-level obs.NameTable, so repeated windowed sampling does not
// allocate name strings per call. No-op when m or tr is nil.
func (tr *Tracer) RecordMetrics(m *obs.Registry) {
	if tr == nil || m == nil {
		return
	}
	occ := tr.StageOccupancy()
	stages := make([]int, 0, len(occ))
	for stage := range occ {
		stages = append(stages, stage)
	}
	sort.Ints(stages)
	for _, stage := range stages {
		m.Gauge(occupancyNames.Name(stage)).Set(occ[stage])
	}
	m.Counter("streampu.trace.events").Add(int64(tr.Len()))
}

// StageOccupancy returns, per stage, the fraction of the traced wall
// time its workers spent busy (aggregate busy time ÷ (span × workers)).
func (tr *Tracer) StageOccupancy() map[int]float64 {
	events := tr.Events()
	if len(events) == 0 {
		return nil
	}
	var span time.Duration
	busy := map[int]time.Duration{}
	workers := map[int]map[int]bool{}
	for _, e := range events {
		if end := e.Start + e.Duration; end > span {
			span = end
		}
		busy[e.Stage] += e.Duration
		if workers[e.Stage] == nil {
			workers[e.Stage] = map[int]bool{}
		}
		workers[e.Stage][e.Worker] = true
	}
	out := map[int]float64{}
	for stage, b := range busy {
		if span <= 0 {
			out[stage] = 0
			continue
		}
		out[stage] = b.Seconds() / (span.Seconds() * float64(len(workers[stage])))
	}
	return out
}
