package streampu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs/flight"
)

// Options configures a pipeline run.
type Options struct {
	// QueueCap is the buffered capacity of each adaptor channel (frames).
	// Defaults to 2.
	QueueCap int
	// TimeScale multiplies modeled latencies before realization; use > 1
	// on machines with coarse sleep granularity or fewer physical cores
	// than modeled. Reported periods and FPS are de-scaled back to the
	// modeled time base. Defaults to 1.
	TimeScale float64
	// Spin makes latency-modeled tasks busy-wait instead of sleeping.
	// Requires at least as many physical cores as pipeline workers.
	Spin bool
	// WarmupFraction is the fraction of frames excluded from throughput
	// measurement at the start of the run. Defaults to 0.25.
	WarmupFraction float64
	// Profile enables per-task latency measurement (see Stats.TaskMicros).
	Profile bool
	// Tracer, when set, records one timeline event per (frame, stage)
	// execution for offline analysis (see Tracer.WriteChromeTrace).
	Tracer *Tracer
	// Sampler, when set, receives per-frame (stage, latency) records for
	// live windowed telemetry; snapshot it with Sampler.Sample while the
	// run is in flight.
	Sampler *Sampler
	// Flight, when set, receives black-box events from the run: one
	// CodeFrameDrop per frame that finishes a stage with a non-nil Err
	// (tick and A = frame sequence), and one CodeStall per handoff that
	// found the downstream buffer full (tick and A = frame sequence,
	// B = blocked replica index) — the backpressure signal. Stall probing
	// only happens when a recorder is attached, so the nil default keeps
	// the handoff a plain channel send.
	Flight *flight.Recorder
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 2
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.WarmupFraction <= 0 || o.WarmupFraction >= 1 {
		o.WarmupFraction = 0.25
	}
	return o
}

// Stats reports the outcome of a pipeline run. Period and FPS are
// expressed in the modeled time base (µs task weights), i.e. wall-clock
// measurements divided by the time scale.
type Stats struct {
	// Frames is the number of frames that left the pipeline.
	Frames int
	// Errored counts frames that finished with a non-nil Err.
	Errored int
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
	// PeriodMicros is the measured steady-state inter-departure time in
	// modeled microseconds (wall time ÷ TimeScale).
	PeriodMicros float64
	// FPS is the measured steady-state frame rate in the modeled time
	// base (1e6/PeriodMicros), before applying any interframe factor.
	FPS float64
	// TaskMicros holds each task's mean measured latency in modeled µs
	// (only when Options.Profile is set).
	TaskMicros []float64
}

// Throughput returns the measured frame rate scaled by the platform's
// interframe level.
func (s Stats) Throughput(interframe int) float64 {
	return s.FPS * float64(interframe)
}

// Pipeline is a runnable interval-mapped, replicated streaming pipeline.
type Pipeline struct {
	tasks  []Task
	sol    core.Solution
	opt    Options
	stages []pipeStage
}

type pipeStage struct {
	core.Stage
	tasks []Task // task templates for this stage
}

// New builds a pipeline executing tasks according to the schedule sol.
// The solution's stage intervals index into tasks; replicated stages must
// contain only replicable tasks.
func New(tasks []Task, sol core.Solution, opt Options) (*Pipeline, error) {
	if len(tasks) == 0 {
		return nil, errors.New("streampu: no tasks")
	}
	if sol.IsEmpty() {
		return nil, errors.New("streampu: empty solution")
	}
	opt = opt.withDefaults()
	p := &Pipeline{tasks: tasks, sol: sol, opt: opt}
	next := 0
	for i, st := range sol.Stages {
		if st.Start != next || st.End < st.Start || st.End >= len(tasks) {
			return nil, fmt.Errorf("streampu: stage %d interval [%d,%d] does not tile the %d-task chain",
				i, st.Start, st.End, len(tasks))
		}
		if st.Cores < 1 {
			return nil, fmt.Errorf("streampu: stage %d has %d cores", i, st.Cores)
		}
		sub := tasks[st.Start : st.End+1]
		if st.Cores > 1 {
			for _, t := range sub {
				if !t.Replicable() {
					return nil, fmt.Errorf("streampu: stage %d replicates stateful task %s",
						i, t.Name())
				}
			}
		}
		p.stages = append(p.stages, pipeStage{Stage: st, tasks: sub})
		next = st.End + 1
	}
	if next != len(tasks) {
		return nil, fmt.Errorf("streampu: solution covers %d of %d tasks", next, len(tasks))
	}
	return p, nil
}

// boundary is the adaptor network between two consecutive stages: a
// channel matrix ch[u][w] from upstream replica u to downstream replica w.
// Frame seq flows from upstream replica seq%r1 to downstream replica
// seq%r2; each downstream replica drains its input channels in the
// deterministic round-robin order of the sequence numbers it owns, which
// preserves global frame order without a dedicated adaptor goroutine.
// This matrix is exactly the "connect two consecutive replicated stages"
// adaptor introduced for this paper in StreamPU v1.6.0 (r1 > 1 and
// r2 > 1); with r1 = 1 or r2 = 1 it degenerates to StreamPU's classic
// fork/join adaptors.
type boundary struct {
	ch [][]chan *Frame // [upstream replica][downstream replica]
}

func newBoundary(r1, r2, cap int) *boundary {
	b := &boundary{ch: make([][]chan *Frame, r1)}
	for u := range b.ch {
		b.ch[u] = make([]chan *Frame, r2)
		for w := range b.ch[u] {
			b.ch[u][w] = make(chan *Frame, cap)
		}
	}
	return b
}

// Run pushes frames frames through the pipeline and blocks until they all
// left the last stage. src may be nil; when set, it is called to populate
// each new frame's Data before the first task runs.
func (p *Pipeline) Run(frames int, src func(f *Frame)) (Stats, error) {
	if frames <= 0 {
		return Stats{}, fmt.Errorf("streampu: frames = %d, want > 0", frames)
	}
	m := len(p.stages)
	bounds := make([]*boundary, m-1)
	for i := 0; i < m-1; i++ {
		bounds[i] = newBoundary(p.stages[i].Cores, p.stages[i+1].Cores, p.opt.QueueCap)
	}

	p.opt.Sampler.bind(p.stages, p.opt.TimeScale, time.Now())

	warmup := int(float64(frames) * p.opt.WarmupFraction)
	if warmup >= frames {
		warmup = frames - 1
	}

	var wg sync.WaitGroup
	type workerResult struct {
		processed  int
		errored    int
		taskTotals []time.Duration
		taskCounts []int
		warmAt     time.Time // departure time of frame #warmup (last stage only)
		lastAt     time.Time
		warmSeen   bool
	}
	results := make([][]*workerResult, m)

	for si := range p.stages {
		st := p.stages[si]
		results[si] = make([]*workerResult, st.Cores)
		for w := 0; w < st.Cores; w++ {
			res := &workerResult{}
			if p.opt.Profile {
				res.taskTotals = make([]time.Duration, len(st.tasks))
				res.taskCounts = make([]int, len(st.tasks))
			}
			results[si][w] = res

			// Per-replica task instances: clone replicable tasks that
			// carry scratch state.
			insts := st.tasks
			if st.Cores > 1 {
				insts = make([]Task, len(st.tasks))
				for i, t := range st.tasks {
					insts[i] = cloneFor(t)
				}
			}

			wg.Add(1)
			go func(si, w int, st pipeStage, insts []Task, res *workerResult) {
				defer wg.Done()
				wctx := &Worker{Core: st.Type, Scale: p.opt.TimeScale, Spin: p.opt.Spin, ID: w}
				r := st.Cores
				var out *boundary
				if si < m-1 {
					out = bounds[si]
				}
				var in *boundary
				if si > 0 {
					in = bounds[si-1]
				}
				upR := 1
				if si > 0 {
					upR = p.stages[si-1].Cores
				}
				for seq := uint64(w); ; seq += uint64(r) {
					var f *Frame
					if si == 0 {
						if seq >= uint64(frames) {
							break
						}
						f = &Frame{Seq: seq}
						if src != nil {
							src(f)
						}
					} else {
						ff, ok := <-in.ch[int(seq)%upR][w]
						if !ok {
							break
						}
						f = ff
					}
					pickup := time.Now()
					erredBefore := f.Err != nil
					for ti, t := range insts {
						var t0 time.Time
						if p.opt.Profile {
							t0 = time.Now()
						}
						if err := t.Process(wctx, f); err != nil && f.Err == nil {
							f.Err = fmt.Errorf("%s: %w", t.Name(), err)
						}
						if p.opt.Profile {
							// Settle per task so the measurement includes
							// the task's modeled latency.
							wctx.Settle(t0)
							res.taskTotals[ti] += time.Since(t0)
							res.taskCounts[ti]++
						}
					}
					// Realize the frame's accumulated modeled latency in
					// one absolute-deadline wait (no-op when profiling or
					// for purely computational tasks).
					wctx.Settle(pickup)
					if p.opt.Tracer != nil || p.opt.Sampler != nil {
						d := time.Since(pickup)
						if p.opt.Tracer != nil {
							p.opt.Tracer.record(f.Seq, si, w, st.Type.String(), pickup, d)
						}
						p.opt.Sampler.Record(si, d)
					}
					res.processed++
					if f.Err != nil {
						res.errored++
						if !erredBefore {
							// Record the drop once, at the stage that broke the
							// frame — downstream stages just carry the error.
							p.opt.Flight.Record(flight.Event{
								Code: flight.CodeFrameDrop, Tick: int64(f.Seq),
								Stage: int32(si), A: float64(f.Seq),
							})
						}
					}
					if si == m-1 {
						now := time.Now()
						if f.Seq == uint64(warmup) {
							res.warmAt = now
							res.warmSeen = true
						}
						if now.After(res.lastAt) {
							res.lastAt = now
						}
					} else {
						dst := out.ch[w][int(f.Seq)%p.stages[si+1].Cores]
						if p.opt.Flight == nil {
							dst <- f
						} else {
							// Probe first: a full buffer means this replica is
							// about to block on backpressure — the replica-
							// stall signal the flight recorder captures.
							select {
							case dst <- f:
							default:
								p.opt.Flight.Record(flight.Event{
									Code: flight.CodeStall, Tick: int64(f.Seq),
									Stage: int32(si), A: float64(f.Seq), B: float64(w),
								})
								dst <- f
							}
						}
					}
				}
				// Signal downstream that this replica is done.
				if out != nil {
					for _, ch := range out.ch[w] {
						close(ch)
					}
				}
			}(si, w, st, insts, res)
		}
	}

	startAll := time.Now()
	wg.Wait()
	elapsed := time.Since(startAll)

	stats := Stats{Elapsed: elapsed}
	var warmAt, lastAt time.Time
	warmSeen := false
	for _, res := range results[m-1] {
		stats.Frames += res.processed
		stats.Errored += res.errored
		if res.warmSeen {
			warmAt = res.warmAt
			warmSeen = true
		}
		if res.lastAt.After(lastAt) {
			lastAt = res.lastAt
		}
	}
	if warmSeen && stats.Frames > warmup+1 {
		span := lastAt.Sub(warmAt)
		n := stats.Frames - warmup - 1
		stats.PeriodMicros = span.Seconds() * 1e6 / float64(n) / p.opt.TimeScale
		if stats.PeriodMicros > 0 {
			stats.FPS = 1e6 / stats.PeriodMicros
		}
	}
	if p.opt.Profile {
		stats.TaskMicros = make([]float64, len(p.tasks))
		for si, st := range p.stages {
			for ti := range st.tasks {
				var total time.Duration
				var count int
				for _, res := range results[si] {
					total += res.taskTotals[ti]
					count += res.taskCounts[ti]
				}
				if count > 0 {
					stats.TaskMicros[st.Start+ti] = total.Seconds() * 1e6 / float64(count) / p.opt.TimeScale
				}
			}
		}
	}
	return stats, nil
}

// RunChain executes tasks sequentially (single worker, big core, no
// pipeline) over frames frames — the reference execution mode used by
// functional tests and by profiling.
func RunChain(tasks []Task, frames int, src func(f *Frame)) (Stats, error) {
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: len(tasks) - 1, Cores: 1, Type: core.Big}}}
	// A single all-tasks stage is valid even with stateful tasks.
	p, err := New(tasks, sol, Options{})
	if err != nil {
		return Stats{}, err
	}
	return p.Run(frames, src)
}

// Profile measures each task's mean latency (in µs) by running the chain
// sequentially on a single virtual core of each of the two canonical core
// types. For latency-modeled tasks this recovers their weights; for
// computational tasks it measures real execution time. The scale stretches
// modeled time for measurement stability. ProfileTypes generalizes to
// platforms with a different type count.
func Profile(tasks []Task, frames int, scale float64) ([][]float64, error) {
	return ProfileTypes(tasks, 2, frames, scale)
}

// ProfileTypes is Profile over numTypes virtual core types.
func ProfileTypes(tasks []Task, numTypes, frames int, scale float64) ([][]float64, error) {
	out := make([][]float64, numTypes)
	for v := 0; v < numTypes; v++ {
		sol := core.Solution{Stages: []core.Stage{
			{Start: 0, End: len(tasks) - 1, Cores: 1, Type: core.CoreType(v)},
		}}
		p, err := New(tasks, sol, Options{Profile: true, TimeScale: scale})
		if err != nil {
			return out, err
		}
		st, err := p.Run(frames, nil)
		if err != nil {
			return out, err
		}
		out[v] = st.TaskMicros
	}
	return out, nil
}
