package streampu

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs/flight"
	"ampsched/internal/streampu/ring"
)

// BoundaryKind selects the inter-stage adaptor implementation.
type BoundaryKind int

const (
	// BoundaryRing (the default) hands frames between stages through
	// lock-free bounded SPSC rings — the allocation-free hot path.
	BoundaryRing BoundaryKind = iota
	// BoundaryChannel is the original buffered-Go-channel matrix, kept as
	// the reference implementation the differential tests compare the
	// ring boundary against (and as an escape hatch for debugging).
	BoundaryChannel
)

// Options configures a pipeline run.
type Options struct {
	// QueueCap is the buffered capacity of each adaptor queue (frames).
	// Defaults to 2; negative values are rejected by New.
	QueueCap int
	// Boundary selects the inter-stage adaptor implementation; the
	// zero value is the lock-free ring boundary.
	Boundary BoundaryKind
	// TimeScale multiplies modeled latencies before realization; use > 1
	// on machines with coarse sleep granularity or fewer physical cores
	// than modeled. Reported periods and FPS are de-scaled back to the
	// modeled time base. Defaults to 1.
	TimeScale float64
	// Spin makes latency-modeled tasks busy-wait instead of sleeping.
	// Requires at least as many physical cores as pipeline workers.
	Spin bool
	// WarmupFraction is the fraction of frames excluded from throughput
	// measurement at the start of the run. Defaults to 0.25.
	WarmupFraction float64
	// Profile enables per-task latency measurement (see Stats.TaskMicros).
	Profile bool
	// Tracer, when set, records one timeline event per (frame, stage)
	// execution for offline analysis (see Tracer.WriteChromeTrace).
	Tracer *Tracer
	// Sampler, when set, receives per-frame (stage, latency) records for
	// live windowed telemetry; snapshot it with Sampler.Sample while the
	// run is in flight.
	Sampler *Sampler
	// Flight, when set, receives black-box events from the run: one
	// CodeFrameDrop per frame that finishes a stage with a non-nil Err
	// (tick and A = frame sequence), and one CodeStall per handoff that
	// found the downstream buffer full (tick and A = frame sequence,
	// B = blocked replica index) — the backpressure signal. The full-
	// buffer probe is the ring boundary's natural fast path, so stall
	// detection is always on; recording it is a no-op without a recorder.
	Flight *flight.Recorder
}

// validate rejects option values that would previously have been
// silently coerced (or worse, panicked deep inside the run): negative
// queue capacities, negative or NaN scales and warmup fractions. Zero
// values still select the documented defaults.
func (o Options) validate() error {
	if o.QueueCap < 0 {
		return fmt.Errorf("streampu: QueueCap = %d, want >= 0 (0 selects the default of 2)", o.QueueCap)
	}
	if o.TimeScale < 0 || math.IsNaN(o.TimeScale) || math.IsInf(o.TimeScale, 0) {
		return fmt.Errorf("streampu: TimeScale = %v, want a finite value >= 0 (0 selects 1)", o.TimeScale)
	}
	if o.WarmupFraction < 0 || o.WarmupFraction >= 1 || math.IsNaN(o.WarmupFraction) {
		if o.WarmupFraction != 0 {
			return fmt.Errorf("streampu: WarmupFraction = %v, want 0 <= f < 1 (0 selects 0.25)", o.WarmupFraction)
		}
	}
	if o.Boundary != BoundaryRing && o.Boundary != BoundaryChannel {
		return fmt.Errorf("streampu: unknown boundary kind %d", o.Boundary)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 2
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.WarmupFraction <= 0 || o.WarmupFraction >= 1 {
		o.WarmupFraction = 0.25
	}
	return o
}

// Stats reports the outcome of a pipeline run. Period and FPS are
// expressed in the modeled time base (µs task weights), i.e. wall-clock
// measurements divided by the time scale.
type Stats struct {
	// Frames is the number of frames that left the pipeline.
	Frames int
	// Errored counts frames that finished with a non-nil Err.
	Errored int
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
	// PeriodMicros is the measured steady-state inter-departure time in
	// modeled microseconds (wall time ÷ TimeScale).
	PeriodMicros float64
	// FPS is the measured steady-state frame rate in the modeled time
	// base (1e6/PeriodMicros), before applying any interframe factor.
	FPS float64
	// TaskMicros holds each task's mean measured latency in modeled µs
	// (only when Options.Profile is set).
	TaskMicros []float64
}

// Throughput returns the measured frame rate scaled by the platform's
// interframe level.
func (s Stats) Throughput(interframe int) float64 {
	return s.FPS * float64(interframe)
}

// Pipeline is a runnable interval-mapped, replicated streaming pipeline.
type Pipeline struct {
	tasks  []Task
	sol    core.Solution
	opt    Options
	stages []pipeStage
}

type pipeStage struct {
	core.Stage
	tasks []Task // task templates for this stage
}

// New builds a pipeline executing tasks according to the schedule sol.
// The solution's stage intervals index into tasks; replicated stages must
// contain only replicable tasks.
func New(tasks []Task, sol core.Solution, opt Options) (*Pipeline, error) {
	if len(tasks) == 0 {
		return nil, errors.New("streampu: no tasks")
	}
	if sol.IsEmpty() {
		return nil, errors.New("streampu: empty solution")
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	p := &Pipeline{tasks: tasks, sol: sol, opt: opt}
	next := 0
	for i, st := range sol.Stages {
		if st.Start != next || st.End < st.Start || st.End >= len(tasks) {
			return nil, fmt.Errorf("streampu: stage %d interval [%d,%d] does not tile the %d-task chain",
				i, st.Start, st.End, len(tasks))
		}
		if st.Cores < 1 {
			return nil, fmt.Errorf("streampu: stage %d has %d cores", i, st.Cores)
		}
		sub := tasks[st.Start : st.End+1]
		if st.Cores > 1 {
			for _, t := range sub {
				if !t.Replicable() {
					return nil, fmt.Errorf("streampu: stage %d replicates stateful task %s",
						i, t.Name())
				}
			}
		}
		p.stages = append(p.stages, pipeStage{Stage: st, tasks: sub})
		next = st.End + 1
	}
	if next != len(tasks) {
		return nil, fmt.Errorf("streampu: solution covers %d of %d tasks", next, len(tasks))
	}
	return p, nil
}

// boundary is the adaptor network between two consecutive stages: a
// queue matrix [u][w] from upstream replica u to downstream replica w.
// Frame seq flows from upstream replica seq%r1 to downstream replica
// seq%r2; each downstream replica drains its input queues in the
// deterministic round-robin order of the sequence numbers it owns, which
// preserves global frame order without a dedicated adaptor goroutine.
// This matrix is exactly the "connect two consecutive replicated stages"
// adaptor introduced for this paper in StreamPU v1.6.0 (r1 > 1 and
// r2 > 1); with r1 = 1 or r2 = 1 it degenerates to StreamPU's classic
// fork/join adaptors.
//
// Because the matrix routes every (u, w) pair through its own queue,
// each queue has exactly one producer and one consumer no matter how the
// stages fan in or out — which is what lets the default implementation
// use SPSC rings with no locking anywhere on the frame path.
type boundary interface {
	// trySend hands f from upstream replica u to downstream replica w
	// without blocking; false means the queue was full (a stall).
	trySend(u, w int, f *Frame) bool
	// sendBlocking completes a hand-off that trySend refused.
	sendBlocking(u, w int, f *Frame)
	// recv blocks until a frame from upstream replica u arrives for
	// downstream replica w; ok == false means u closed its side and every
	// queued frame has been drained.
	recv(u, w int) (f *Frame, ok bool)
	// closeUp marks upstream replica u as finished.
	closeUp(u int)
}

func newBoundary(kind BoundaryKind, r1, r2, cap int) boundary {
	if kind == BoundaryChannel {
		return newChanBoundary(r1, r2, cap)
	}
	return newRingBoundary(r1, r2, cap)
}

// ringBoundary is the lock-free default: one bounded SPSC ring per
// (upstream, downstream) replica pair, flattened row-major. Blocking is
// the caller's spin→yield→sleep backoff over the non-blocking ring ops.
type ringBoundary struct {
	r2 int
	q  []*ring.SPSC[*Frame] // [u*r2 + w]
}

func newRingBoundary(r1, r2, cap int) *ringBoundary {
	b := &ringBoundary{r2: r2, q: make([]*ring.SPSC[*Frame], r1*r2)}
	for i := range b.q {
		b.q[i] = ring.NewSPSC[*Frame](cap)
	}
	return b
}

func (b *ringBoundary) trySend(u, w int, f *Frame) bool {
	return b.q[u*b.r2+w].TryPush(f)
}

func (b *ringBoundary) sendBlocking(u, w int, f *Frame) {
	q := b.q[u*b.r2+w]
	for i := 0; !q.TryPush(f); i++ {
		backoff(i)
	}
}

func (b *ringBoundary) recv(u, w int) (*Frame, bool) {
	q := b.q[u*b.r2+w]
	for i := 0; ; i++ {
		if f, ok := q.TryPop(); ok {
			return f, true
		}
		if q.Closed() {
			// The closing store is ordered after the producer's final
			// push: one more pop observes any element the pre-close probe
			// raced with.
			return q.TryPop()
		}
		backoff(i)
	}
}

func (b *ringBoundary) closeUp(u int) {
	for w := 0; w < b.r2; w++ {
		b.q[u*b.r2+w].Close()
	}
}

// backoff is the boundary waiting policy: spin briefly (the peer is
// usually mid-frame on another core), then yield the processor (the
// pipeline is documented oversubscription-safe, so the peer may need
// this core), then sleep with escalating, capped pauses (a stalled peer
// may legitimately be tens of milliseconds away — modeled latencies —
// and a sleeping waiter must not burn the core it vacated). None of the
// three branches allocates, so waiting preserves the 0 allocs/op pin.
func backoff(i int) {
	switch {
	case i < 64:
		// hot spin
	case i < 192:
		runtime.Gosched()
	default:
		step := (i - 192) / 32
		if step > 6 {
			step = 6
		}
		time.Sleep(time.Duration(20<<uint(step)) * time.Microsecond) // 20µs … 1.28ms
	}
}

// chanBoundary is the reference implementation: the buffered-channel
// matrix the ring boundary replaced, preserved for differential testing.
type chanBoundary struct {
	ch [][]chan *Frame // [upstream replica][downstream replica]
}

func newChanBoundary(r1, r2, cap int) *chanBoundary {
	b := &chanBoundary{ch: make([][]chan *Frame, r1)}
	for u := range b.ch {
		b.ch[u] = make([]chan *Frame, r2)
		for w := range b.ch[u] {
			b.ch[u][w] = make(chan *Frame, cap)
		}
	}
	return b
}

func (b *chanBoundary) trySend(u, w int, f *Frame) bool {
	select {
	case b.ch[u][w] <- f:
		return true
	default:
		return false
	}
}

func (b *chanBoundary) sendBlocking(u, w int, f *Frame) {
	b.ch[u][w] <- f
}

func (b *chanBoundary) recv(u, w int) (*Frame, bool) {
	f, ok := <-b.ch[u][w]
	return f, ok
}

func (b *chanBoundary) closeUp(u int) {
	for _, ch := range b.ch[u] {
		close(ch)
	}
}

// Run pushes frames frames through the pipeline and blocks until they all
// left the last stage. src may be nil; when set, it is called to populate
// each new frame's Data before the first task runs.
func (p *Pipeline) Run(frames int, src func(f *Frame)) (Stats, error) {
	if frames <= 0 {
		return Stats{}, fmt.Errorf("streampu: frames = %d, want > 0", frames)
	}
	m := len(p.stages)
	bounds := make([]boundary, m-1)
	inflight := 0 // frames that can exist simultaneously: one per worker...
	for _, st := range p.stages {
		inflight += st.Cores
	}
	for i := 0; i < m-1; i++ {
		r1, r2 := p.stages[i].Cores, p.stages[i+1].Cores
		bounds[i] = newBoundary(p.opt.Boundary, r1, r2, p.opt.QueueCap)
		inflight += r1 * r2 * p.opt.QueueCap // ...plus every boundary slot
	}
	// Recycle frames through a free list sized to the in-flight bound: the
	// source's pool.Get can only miss during the first lap, so the steady-
	// state frame loop never touches the allocator.
	pool := NewFramePool(inflight)

	p.opt.Sampler.bind(p.stages, p.opt.TimeScale, time.Now())

	warmup := int(float64(frames) * p.opt.WarmupFraction)
	if warmup >= frames {
		warmup = frames - 1
	}

	var wg sync.WaitGroup
	type workerResult struct {
		processed  int
		errored    int
		taskTotals []time.Duration
		taskCounts []int
		warmAt     time.Time // departure time of frame #warmup (last stage only)
		lastAt     time.Time
		warmSeen   bool
	}
	results := make([][]*workerResult, m)

	for si := range p.stages {
		st := p.stages[si]
		results[si] = make([]*workerResult, st.Cores)
		for w := 0; w < st.Cores; w++ {
			res := &workerResult{}
			if p.opt.Profile {
				res.taskTotals = make([]time.Duration, len(st.tasks))
				res.taskCounts = make([]int, len(st.tasks))
			}
			results[si][w] = res

			// Per-replica task instances: clone replicable tasks that
			// carry scratch state.
			insts := st.tasks
			if st.Cores > 1 {
				insts = make([]Task, len(st.tasks))
				for i, t := range st.tasks {
					insts[i] = cloneFor(t)
				}
			}

			wg.Add(1)
			go func(si, w int, st pipeStage, insts []Task, res *workerResult) {
				defer wg.Done()
				wctx := &Worker{Core: st.Type, Scale: p.opt.TimeScale, Spin: p.opt.Spin, ID: w}
				r := st.Cores
				var out boundary
				if si < m-1 {
					out = bounds[si]
				}
				var in boundary
				if si > 0 {
					in = bounds[si-1]
				}
				upR := 1
				if si > 0 {
					upR = p.stages[si-1].Cores
				}
				for seq := uint64(w); ; seq += uint64(r) {
					var f *Frame
					if si == 0 {
						if seq >= uint64(frames) {
							break
						}
						// Recycled frame: Err is clean, Data is whatever the
						// frame carried last lap (see FramePool's contract).
						f = pool.Get()
						f.Seq = seq
						if src != nil {
							src(f)
						}
					} else {
						ff, ok := in.recv(int(seq)%upR, w)
						if !ok {
							break
						}
						f = ff
					}
					pickup := time.Now()
					erredBefore := f.Err != nil
					for ti, t := range insts {
						var t0 time.Time
						if p.opt.Profile {
							t0 = time.Now()
						}
						if err := t.Process(wctx, f); err != nil && f.Err == nil {
							f.Err = fmt.Errorf("%s: %w", t.Name(), err)
						}
						if p.opt.Profile {
							// Settle per task so the measurement includes
							// the task's modeled latency.
							wctx.Settle(t0)
							res.taskTotals[ti] += time.Since(t0)
							res.taskCounts[ti]++
						}
					}
					// Realize the frame's accumulated modeled latency in
					// one absolute-deadline wait (no-op when profiling or
					// for purely computational tasks).
					wctx.Settle(pickup)
					if p.opt.Tracer != nil || p.opt.Sampler != nil {
						d := time.Since(pickup)
						if p.opt.Tracer != nil {
							p.opt.Tracer.record(f.Seq, si, w, st.Type.String(), pickup, d)
						}
						p.opt.Sampler.Record(si, d)
					}
					res.processed++
					if f.Err != nil {
						res.errored++
						if !erredBefore {
							// Record the drop once, at the stage that broke the
							// frame — downstream stages just carry the error.
							p.opt.Flight.Record(flight.Event{
								Code: flight.CodeFrameDrop, Tick: int64(f.Seq),
								Stage: int32(si), A: float64(f.Seq),
							})
						}
					}
					if si == m-1 {
						now := time.Now()
						if f.Seq == uint64(warmup) {
							res.warmAt = now
							res.warmSeen = true
						}
						if now.After(res.lastAt) {
							res.lastAt = now
						}
						// The frame is done: hand it back for the source to
						// reuse. Every field the next lap cares about is reset
						// by Put (Err) or overwritten at Get (Seq).
						pool.Put(f)
					} else {
						// Probe first: a full buffer means this replica is
						// about to block on backpressure — the replica-stall
						// signal the flight recorder and sampler capture. The
						// probe is the ring's natural fast path, so detection
						// costs nothing when the recorder is off.
						dw := int(f.Seq) % p.stages[si+1].Cores
						if !out.trySend(w, dw, f) {
							p.opt.Flight.Record(flight.Event{
								Code: flight.CodeStall, Tick: int64(f.Seq),
								Stage: int32(si), A: float64(f.Seq), B: float64(w),
							})
							p.opt.Sampler.RecordStall(si)
							out.sendBlocking(w, dw, f)
						}
					}
				}
				// Signal downstream that this replica is done.
				if out != nil {
					out.closeUp(w)
				}
			}(si, w, st, insts, res)
		}
	}

	startAll := time.Now()
	wg.Wait()
	elapsed := time.Since(startAll)

	stats := Stats{Elapsed: elapsed}
	var warmAt, lastAt time.Time
	warmSeen := false
	for _, res := range results[m-1] {
		stats.Frames += res.processed
		stats.Errored += res.errored
		if res.warmSeen {
			warmAt = res.warmAt
			warmSeen = true
		}
		if res.lastAt.After(lastAt) {
			lastAt = res.lastAt
		}
	}
	if warmSeen && stats.Frames > warmup+1 {
		span := lastAt.Sub(warmAt)
		n := stats.Frames - warmup - 1
		stats.PeriodMicros = span.Seconds() * 1e6 / float64(n) / p.opt.TimeScale
		if stats.PeriodMicros > 0 {
			stats.FPS = 1e6 / stats.PeriodMicros
		}
	}
	if p.opt.Profile {
		stats.TaskMicros = make([]float64, len(p.tasks))
		for si, st := range p.stages {
			for ti := range st.tasks {
				var total time.Duration
				var count int
				for _, res := range results[si] {
					total += res.taskTotals[ti]
					count += res.taskCounts[ti]
				}
				if count > 0 {
					stats.TaskMicros[st.Start+ti] = total.Seconds() * 1e6 / float64(count) / p.opt.TimeScale
				}
			}
		}
	}
	return stats, nil
}

// RunChain executes tasks sequentially (single worker, big core, no
// pipeline) over frames frames — the reference execution mode used by
// functional tests and by profiling.
func RunChain(tasks []Task, frames int, src func(f *Frame)) (Stats, error) {
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: len(tasks) - 1, Cores: 1, Type: core.Big}}}
	// A single all-tasks stage is valid even with stateful tasks.
	p, err := New(tasks, sol, Options{})
	if err != nil {
		return Stats{}, err
	}
	return p.Run(frames, src)
}

// Profile measures each task's mean latency (in µs) by running the chain
// sequentially on a single virtual core of each of the two canonical core
// types. For latency-modeled tasks this recovers their weights; for
// computational tasks it measures real execution time. The scale stretches
// modeled time for measurement stability. ProfileTypes generalizes to
// platforms with a different type count.
func Profile(tasks []Task, frames int, scale float64) ([][]float64, error) {
	return ProfileTypes(tasks, 2, frames, scale)
}

// ProfileTypes is Profile over numTypes virtual core types.
func ProfileTypes(tasks []Task, numTypes, frames int, scale float64) ([][]float64, error) {
	out := make([][]float64, numTypes)
	for v := 0; v < numTypes; v++ {
		sol := core.Solution{Stages: []core.Stage{
			{Start: 0, End: len(tasks) - 1, Cores: 1, Type: core.CoreType(v)},
		}}
		p, err := New(tasks, sol, Options{Profile: true, TimeScale: scale})
		if err != nil {
			return out, err
		}
		st, err := p.Run(frames, nil)
		if err != nil {
			return out, err
		}
		out[v] = st.TaskMicros
	}
	return out, nil
}
