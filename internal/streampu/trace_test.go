package streampu

import (
	"encoding/json"
	"strings"
	"testing"

	"ampsched/internal/core"
)

func tracedRun(t *testing.T) *Tracer {
	t.Helper()
	tr := &Tracer{}
	tasks := []Task{
		timedTask("a", 10, 10, true),
		timedTask("b", 20, 20, true),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 2, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Little},
	}}
	p, err := New(tasks, sol, Options{TimeScale: 2, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(40, nil); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTracerRecordsEveryStageExecution(t *testing.T) {
	tr := tracedRun(t)
	// 40 frames × 2 stages.
	if tr.Len() != 80 {
		t.Fatalf("%d events, want 80", tr.Len())
	}
	events := tr.Events()
	perStage := map[int]int{}
	workers := map[[2]int]bool{}
	for i, e := range events {
		perStage[e.Stage]++
		workers[[2]int{e.Stage, e.Worker}] = true
		if e.Duration <= 0 {
			t.Fatalf("event %d has non-positive duration", i)
		}
		if i > 0 && e.Start < events[i-1].Start {
			t.Fatal("events not sorted by start")
		}
	}
	if perStage[0] != 40 || perStage[1] != 40 {
		t.Errorf("per-stage counts %v", perStage)
	}
	// Stage 0 has two replicas, stage 1 one worker.
	if !workers[[2]int{0, 0}] || !workers[[2]int{0, 1}] || !workers[[2]int{1, 0}] {
		t.Errorf("worker attribution wrong: %v", workers)
	}
	// Core labels carried through.
	if events[0].Core != "B" && events[0].Core != "L" {
		t.Errorf("core label %q", events[0].Core)
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := tracedRun(t)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out) != 80 {
		t.Fatalf("%d chrome events", len(out))
	}
	first := out[0]
	for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := first[key]; !ok {
			t.Errorf("chrome event missing %q: %v", key, first)
		}
	}
	if first["ph"] != "X" {
		t.Errorf("phase %v, want X", first["ph"])
	}
}

func TestTracerStageOccupancy(t *testing.T) {
	tr := tracedRun(t)
	occ := tr.StageOccupancy()
	if len(occ) != 2 {
		t.Fatalf("occupancy for %d stages", len(occ))
	}
	for stage, v := range occ {
		if v <= 0 || v > 1.01 {
			t.Errorf("stage %d occupancy %v", stage, v)
		}
	}
	// Stage 1 (weight 20 on 1 worker) is the bottleneck: its occupancy
	// must exceed stage 0's (weight 10 across 2 workers ⇒ ~25%).
	if occ[1] <= occ[0] {
		t.Errorf("bottleneck occupancy %v not above %v", occ[1], occ[0])
	}
	empty := &Tracer{}
	if empty.StageOccupancy() != nil {
		t.Error("empty tracer occupancy should be nil")
	}
}
