package streampu

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs"
)

func tracedRun(t *testing.T) *Tracer {
	t.Helper()
	tr := &Tracer{}
	tasks := []Task{
		timedTask("a", 10, 10, true),
		timedTask("b", 20, 20, true),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 2, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Little},
	}}
	p, err := New(tasks, sol, Options{TimeScale: 2, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(40, nil); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTracerRecordsEveryStageExecution(t *testing.T) {
	tr := tracedRun(t)
	// 40 frames × 2 stages.
	if tr.Len() != 80 {
		t.Fatalf("%d events, want 80", tr.Len())
	}
	events := tr.Events()
	perStage := map[int]int{}
	workers := map[[2]int]bool{}
	for i, e := range events {
		perStage[e.Stage]++
		workers[[2]int{e.Stage, e.Worker}] = true
		if e.Duration <= 0 {
			t.Fatalf("event %d has non-positive duration", i)
		}
		if i > 0 && e.Start < events[i-1].Start {
			t.Fatal("events not sorted by start")
		}
	}
	if perStage[0] != 40 || perStage[1] != 40 {
		t.Errorf("per-stage counts %v", perStage)
	}
	// Stage 0 has two replicas, stage 1 one worker.
	if !workers[[2]int{0, 0}] || !workers[[2]int{0, 1}] || !workers[[2]int{1, 0}] {
		t.Errorf("worker attribution wrong: %v", workers)
	}
	// Core labels carried through.
	if events[0].Core != "B" && events[0].Core != "L" {
		t.Errorf("core label %q", events[0].Core)
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := tracedRun(t)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out) != 80 {
		t.Fatalf("%d chrome events", len(out))
	}
	first := out[0]
	for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := first[key]; !ok {
			t.Errorf("chrome event missing %q: %v", key, first)
		}
	}
	if first["ph"] != "X" {
		t.Errorf("phase %v, want X", first["ph"])
	}
}

func TestTracerStageOccupancy(t *testing.T) {
	tr := tracedRun(t)
	occ := tr.StageOccupancy()
	if len(occ) != 2 {
		t.Fatalf("occupancy for %d stages", len(occ))
	}
	for stage, v := range occ {
		if v <= 0 || v > 1.01 {
			t.Errorf("stage %d occupancy %v", stage, v)
		}
	}
	// Stage 1 (weight 20 on 1 worker) is the bottleneck: its occupancy
	// must exceed stage 0's (weight 10 across 2 workers ⇒ ~25%).
	if occ[1] <= occ[0] {
		t.Errorf("bottleneck occupancy %v not above %v", occ[1], occ[0])
	}
	empty := &Tracer{}
	if empty.StageOccupancy() != nil {
		t.Error("empty tracer occupancy should be nil")
	}
}

// TestTracerConcurrentRecord hammers record from many goroutines — the
// -race companion for the pipeline workers' concurrent appends — while
// readers snapshot the tracer and export its metrics.
func TestTracerConcurrentRecord(t *testing.T) {
	const writers, perWriter = 8, 500
	tr := &Tracer{}
	reg := obs.NewRegistry()
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.record(uint64(i), w%3, w, "B",
					t0.Add(time.Duration(i)*time.Microsecond), time.Microsecond)
			}
		}()
	}
	// Concurrent readers exercise Events/Len/RecordMetrics against the
	// in-flight appends.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Events()
			tr.Len()
			tr.RecordMetrics(obs.NewRegistry())
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Len(); got != writers*perWriter {
		t.Fatalf("%d events recorded, want %d", got, writers*perWriter)
	}
	tr.RecordMetrics(reg)
	byName := map[string]obs.Sample{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s
	}
	if got := byName["streampu.trace.events"].Count; got != writers*perWriter {
		t.Errorf("streampu.trace.events = %d, want %d", got, writers*perWriter)
	}
	for stage := 0; stage < 3; stage++ {
		name := fmt.Sprintf("streampu.occupancy.stage%d", stage)
		s, ok := byName[name]
		if !ok {
			t.Errorf("%s not recorded", name)
			continue
		}
		if s.Value <= 0 || s.Value > 1.01 {
			t.Errorf("%s = %v, want a fraction in (0, 1]", name, s.Value)
		}
	}
}

// TestTracerRecordMetricsNil pins the nil-safety contract on both sides.
func TestTracerRecordMetricsNil(t *testing.T) {
	var nilTracer *Tracer
	nilTracer.RecordMetrics(obs.NewRegistry()) // must not panic
	tr := tracedRun(t)
	tr.RecordMetrics(nil) // must not panic
	reg := obs.NewRegistry()
	tr.RecordMetrics(reg)
	if len(reg.Snapshot()) < 3 {
		t.Errorf("traced run exported %d series, want >= 3", len(reg.Snapshot()))
	}
}
