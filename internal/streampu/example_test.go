package streampu_test

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/streampu"
)

// ExamplePipeline builds a two-stage pipeline with a replicated stateless
// stage and counts the frames that come out — in order.
func ExamplePipeline() {
	double := &streampu.FuncTask{TaskName: "double", Rep: true,
		Fn: func(w *streampu.Worker, f *streampu.Frame) error {
			f.Data = f.Data.(int) * 2
			return nil
		}}
	var got []int
	collect := &streampu.FuncTask{TaskName: "collect", Rep: false,
		Fn: func(w *streampu.Worker, f *streampu.Frame) error {
			got = append(got, f.Data.(int))
			return nil
		}}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 3, Type: core.Big}, // replicated ×3
		{Start: 1, End: 1, Cores: 1, Type: core.Little},
	}}
	p, err := streampu.New([]streampu.Task{double, collect}, sol, streampu.Options{})
	if err != nil {
		panic(err)
	}
	if _, err := p.Run(5, func(f *streampu.Frame) { f.Data = int(f.Seq) }); err != nil {
		panic(err)
	}
	fmt.Println(got)
	// Output: [0 2 4 6 8]
}
