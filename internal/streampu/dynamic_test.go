package streampu

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"ampsched/internal/core"
)

func TestDynamicValidation(t *testing.T) {
	tasks := []Task{timedTask("a", 1, 2, true)}
	if _, err := Dynamic(nil, 10, DynamicOptions{Workers: PlatformWorkers(1, 0)}, nil); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := Dynamic(tasks, 0, DynamicOptions{Workers: PlatformWorkers(1, 0)}, nil); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := Dynamic(tasks, 10, DynamicOptions{}, nil); err == nil {
		t.Error("no workers accepted")
	}
	w := PlatformWorkers(1, 0)
	bad := []DynamicOptions{
		{Workers: w, QueueCap: -1},
		{Workers: w, TimeScale: -1},
		{Workers: w, TimeScale: math.NaN()},
		{Workers: w, TimeScale: math.Inf(1)},
		{Workers: w, WarmupFraction: -0.1},
		{Workers: w, WarmupFraction: 1},
		{Workers: w, WarmupFraction: math.NaN()},
	}
	for i, opt := range bad {
		if _, err := Dynamic(tasks, 10, opt, nil); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, opt)
		}
	}
}

// TestDynamicConcurrentBookkeeping hammers the completion accounting —
// now a preallocated slot array claimed by one atomic per frame instead
// of a shared mutex — with many workers, mixed stateful/stateless tasks,
// and deterministic failures. Exact frame and error counts prove no
// completion is lost or double-counted; the -race run checks the rest.
func TestDynamicConcurrentBookkeeping(t *testing.T) {
	const frames = 2000
	var processed atomic.Int64
	tasks := []Task{
		&FuncTask{TaskName: "gen", Rep: true, Fn: func(w *Worker, f *Frame) error {
			if f.Seq%31 == 7 {
				return errors.New("boom")
			}
			return nil
		}},
		timedTask("stateful", 0, 0, false),
		&FuncTask{TaskName: "count", Rep: true, Fn: func(w *Worker, f *Frame) error {
			processed.Add(1)
			return nil
		}},
	}
	st, err := Dynamic(tasks, frames, DynamicOptions{Workers: PlatformWorkers(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != frames {
		t.Fatalf("frames = %d, want %d", st.Frames, frames)
	}
	if got := processed.Load(); got != frames {
		t.Fatalf("final task ran %d times, want %d", got, frames)
	}
	wantErr := 0
	for s := 0; s < frames; s++ {
		if s%31 == 7 {
			wantErr++
		}
	}
	if st.Errored != wantErr {
		t.Fatalf("errored = %d, want %d", st.Errored, wantErr)
	}
}

func TestDynamicProcessesAllFrames(t *testing.T) {
	var count atomic.Int64
	tasks := []Task{
		timedTask("w1", 5, 10, true),
		&FuncTask{TaskName: "count", Rep: true, Fn: func(w *Worker, f *Frame) error {
			count.Add(1)
			return nil
		}},
	}
	st, err := Dynamic(tasks, 120, DynamicOptions{Workers: PlatformWorkers(2, 2), TimeScale: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 120 || count.Load() != 120 || st.Errored != 0 {
		t.Fatalf("stats %+v count %d", st, count.Load())
	}
	if st.FPS <= 0 {
		t.Errorf("FPS %v", st.FPS)
	}
}

func TestDynamicStatefulTasksRunInOrder(t *testing.T) {
	// A stateful task records the order it sees frames in; under dynamic
	// scheduling with many workers it must still be strictly sequential.
	var mu sync.Mutex
	var seen []uint64
	tasks := []Task{
		timedTask("jitter", 3, 3, true), // replicable: creates reordering pressure
		&FuncTask{TaskName: "stateful", Rep: false, Fn: func(w *Worker, f *Frame) error {
			mu.Lock()
			seen = append(seen, f.Seq)
			mu.Unlock()
			return nil
		}},
		timedTask("tail", 1, 1, true),
	}
	st, err := Dynamic(tasks, 200, DynamicOptions{Workers: PlatformWorkers(4, 0), TimeScale: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 200 {
		t.Fatalf("frames %d", st.Frames)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 200 {
		t.Fatalf("stateful task saw %d frames", len(seen))
	}
	for i, s := range seen {
		if s != uint64(i) {
			t.Fatalf("stateful order broken at %d: seq %d", i, s)
		}
	}
}

func TestDynamicErrorsCounted(t *testing.T) {
	tasks := []Task{
		&FuncTask{TaskName: "fail-3", Rep: true, Fn: func(w *Worker, f *Frame) error {
			if f.Seq%3 == 0 {
				return errTest
			}
			return nil
		}},
	}
	st, err := Dynamic(tasks, 30, DynamicOptions{Workers: PlatformWorkers(2, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errored != 10 {
		t.Errorf("errored %d, want 10", st.Errored)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestDynamicSourcePopulates(t *testing.T) {
	var sum atomic.Int64
	tasks := []Task{
		&FuncTask{TaskName: "add", Rep: true, Fn: func(w *Worker, f *Frame) error {
			sum.Add(int64(f.Data.(int)))
			return nil
		}},
	}
	if _, err := Dynamic(tasks, 10, DynamicOptions{Workers: PlatformWorkers(1, 0)},
		func(f *Frame) { f.Data = int(f.Seq) * 2 }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 90 {
		t.Errorf("sum %d", sum.Load())
	}
}

func TestDynamicVsStaticThroughputShape(t *testing.T) {
	// A fully replicable latency-modeled chain: both executors should
	// approach the ideal period Σw/r; the dynamic one pays dispatch
	// overhead. This asserts the *shape* (dynamic ≤ ~static, both within
	// a factor of the ideal), not a precise ratio.
	var tasks []Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, timedTask("t", 50, 50, true))
	}
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 3, Cores: 4, Type: core.Big}}}
	p, err := New(tasks, sol, Options{TimeScale: 10})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := p.Run(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Dynamic(tasks, 100, DynamicOptions{Workers: PlatformWorkers(4, 0), TimeScale: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ideal := 200.0 / 4 // Σw / workers
	if stat.PeriodMicros < ideal*0.9 || dyn.PeriodMicros < ideal*0.9 {
		t.Errorf("impossible periods: static %.1f dynamic %.1f ideal %.1f",
			stat.PeriodMicros, dyn.PeriodMicros, ideal)
	}
	if dyn.PeriodMicros > ideal*4 {
		t.Errorf("dynamic period %.1f way above ideal %.1f", dyn.PeriodMicros, ideal)
	}
	t.Logf("ideal %.1f µs, static %.1f µs, dynamic %.1f µs", ideal, stat.PeriodMicros, dyn.PeriodMicros)
}

func TestWorkerPools(t *testing.T) {
	w := PlatformWorkers(2, 3)
	if len(w) != 5 || w[0] != core.Big || w[4] != core.Little {
		t.Errorf("PlatformWorkers = %v", w)
	}
	h := HomogeneousWorkers(3, core.Little)
	if len(h) != 3 || h[1] != core.Little {
		t.Errorf("HomogeneousWorkers = %v", h)
	}
}
