package streampu

import (
	"errors"
	"testing"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/obs/flight"
)

func TestPipelineRecordsFrameDropsOnce(t *testing.T) {
	rec := flight.New(256)
	failing := &FuncTask{TaskName: "maybe", Rep: true, Fn: func(w *Worker, f *Frame) error {
		if f.Seq%7 == 3 {
			return errors.New("boom")
		}
		return nil
	}}
	tasks := []Task{failing, timedTask("carry", 0, 0, false)}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 2, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(50, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDrops := 50 / 7 // seqs 3, 10, 17, ...
	if st.Errored != wantDrops {
		t.Fatalf("errored = %d, want %d", st.Errored, wantDrops)
	}
	// One drop per broken frame, attributed to the breaking stage only —
	// the downstream carry stage must not re-record it.
	drops := 0
	for _, e := range rec.Snapshot() {
		if e.Code != flight.CodeFrameDrop {
			continue // incidental stalls are timing-dependent, ignore them
		}
		if e.Stage != 0 {
			t.Fatalf("drop attributed to stage %d, want 0: %+v", e.Stage, e)
		}
		if seq := uint64(e.Tick); seq%7 != 3 || e.A != float64(e.Tick) {
			t.Fatalf("drop payload does not match the failing seqs: %+v", e)
		}
		drops++
	}
	if drops != wantDrops {
		t.Fatalf("recorded %d drops, want %d", drops, wantDrops)
	}
}

func TestPipelineRecordsStallsOnBackpressure(t *testing.T) {
	rec := flight.New(256)
	const frames = 6
	gate := make(chan struct{}, frames)
	blocked := &FuncTask{TaskName: "gate", Rep: false, Fn: func(w *Worker, f *Frame) error {
		<-gate
		return nil
	}}
	tasks := []Task{timedTask("fast", 0, 0, true), blocked}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{QueueCap: 1, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the downstream stage shut long enough for the producer to fill
	// the one-slot buffer and block: every handoff past the first two must
	// probe a full channel and record a stall before waiting it out.
	go func() {
		time.Sleep(20 * time.Millisecond)
		for i := 0; i < frames; i++ {
			gate <- struct{}{}
		}
	}()
	st, err := p.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != frames || st.Errored != 0 {
		t.Fatalf("stats: %+v", st)
	}
	stalls := rec.CountByCode()[flight.CodeStall]
	if stalls == 0 {
		t.Fatal("no stall events despite a gated downstream stage")
	}
	for _, e := range rec.Snapshot() {
		if e.Code != flight.CodeStall {
			continue
		}
		if e.Stage != 0 || e.B != 0 || e.A != float64(e.Tick) {
			t.Fatalf("stall payload: %+v (want stage 0, replica 0, A == seq)", e)
		}
	}
}

func TestSamplerRecordsWindowEvents(t *testing.T) {
	rec := flight.New(64)
	s := NewSampler(nil)
	s.Flight = rec
	t0 := time.Now()
	s.BindStages([]int{1, 2}, 1, t0)
	s.Record(0, 5*time.Millisecond)
	s.Record(1, 2*time.Millisecond)
	s.Record(1, 2*time.Millisecond)
	out := s.Sample(t0.Add(10 * time.Millisecond))
	if len(out) != 2 {
		t.Fatalf("sample returned %d stages, want 2", len(out))
	}
	evs := rec.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("flight holds %d events, want one window per active stage: %+v", len(evs), evs)
	}
	for i, e := range evs {
		if e.Code != flight.CodeWindow || e.Tick != 0 {
			t.Fatalf("event %d = %+v, want a window event for tick 0", i, e)
		}
		ss := out[e.Stage]
		if e.A != ss.Occupancy || e.B != ss.WeightEstimate {
			t.Fatalf("event %d payload %+v does not match sample %+v", i, e, ss)
		}
	}
	// An empty window records nothing (no frames → no estimates).
	if s.Sample(t0.Add(20*time.Millisecond)) == nil {
		t.Fatal("second sample returned nil")
	}
	if n := len(rec.Snapshot()); n != 2 {
		t.Fatalf("empty window added events: now %d", n)
	}
}
