// Package ring provides the lock-free bounded FIFO queues behind
// streampu's inter-stage adaptors and frame free list.
//
// Two variants cover the two hand-off shapes a replicated pipeline has:
//
//   - SPSC is the fast path. Every upstream-replica → downstream-replica
//     pair in a stage boundary has exactly one producer goroutine and one
//     consumer goroutine, so the boundary matrix is built purely from
//     SPSC rings: a push is one slot write plus one atomic store, a pop
//     one atomic load plus one slot read. Each side keeps a cached copy
//     of the opposite index so the uncontended path touches only its own
//     cache line.
//
//   - MPMC is the fan-in/fan-out-safe fallback (Vyukov's bounded queue:
//     per-cell sequence numbers, CAS on the shared cursors). The frame
//     free list needs it — every last-stage replica releases frames and
//     every source replica acquires them concurrently.
//
// Both queues are fixed-memory (power-of-two slot array allocated at
// construction), allocation-free on push and pop, and index with free-
// running uint64 counters masked into the slot array — full/empty are
// distinguished by counter difference, not by wasting a slot, and the
// arithmetic is wraparound-safe (property- and fuzz-tested against a
// model queue, including counters started near the uint64 overflow
// point).
//
// The queues are non-blocking by design: TryPush/TryPop never wait, and
// the caller owns the waiting policy (streampu's boundaries spin, then
// yield, then sleep with escalating backoff — see the package there).
// Close is a producer-side end-of-stream marker: consumers that observe
// Closed must attempt one final TryPop before treating the queue as
// drained, because the closing store may land after their last probe.
package ring

import "sync/atomic"

// pad keeps the hot cursors of a queue on separate cache lines so the
// producer's writes do not invalidate the consumer's line and vice versa
// (false sharing is the classic SPSC throughput killer).
type pad [64]byte

// SPSC is a single-producer single-consumer bounded FIFO. All methods
// are allocation-free; TryPush/Close must be called from one goroutine
// at a time and TryPop from one goroutine at a time (the producer and
// consumer may of course be different goroutines — that is the point).
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    pad
	// Consumer-owned line: the pop cursor plus the consumer's cached view
	// of tail (refreshed only when the queue looks empty).
	head   atomic.Uint64
	tcache uint64
	_      pad
	// Producer-owned line: the push cursor plus the producer's cached
	// view of head (refreshed only when the queue looks full).
	tail   atomic.Uint64
	hcache uint64
	_      pad
	closed atomic.Bool
}

// NewSPSC returns an SPSC queue holding at least capacity elements
// (rounded up to a power of two; capacity < 1 is treated as 1).
func NewSPSC[T any](capacity int) *SPSC[T] {
	return &SPSC[T]{buf: make([]T, pow2(capacity)), mask: uint64(pow2(capacity) - 1)}
}

// pow2 rounds capacity up to the next power of two, minimum 1.
func pow2(capacity int) int {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return n
}

// Cap returns the queue's slot count.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len approximates the number of queued elements. Exact only when
// neither side is mid-operation.
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// TryPush appends v and reports whether there was room. Producer-side
// only; never blocks, never allocates.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.hcache >= uint64(len(q.buf)) {
		q.hcache = q.head.Load()
		if t-q.hcache >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1) // publishes the slot write to the consumer
	return true
}

// TryPop removes and returns the oldest element. Consumer-side only;
// never blocks, never allocates.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tcache {
		q.tcache = q.tail.Load()
		if h == q.tcache {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // drop the reference so the element can be collected
	q.head.Store(h + 1)    // returns the slot to the producer
	return v, true
}

// Close marks the producer side as finished. Elements already queued
// remain poppable; see the package comment for the consumer's drain
// protocol.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether the producer closed the queue. Because the
// closing store is ordered after the producer's final TryPush, a
// consumer that observes Closed and then finds the queue empty has seen
// every element.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }

// mcell is one MPMC slot: Vyukov's sequence-stamped cell. seq == pos
// means "free for the pusher of ticket pos"; seq == pos+1 means "holds
// the element of ticket pos"; after a pop the cell is re-stamped one
// full lap ahead.
type mcell[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a multi-producer multi-consumer bounded FIFO (Vyukov bounded
// queue). All methods are safe from any number of goroutines and
// allocation-free.
type MPMC[T any] struct {
	buf  []mcell[T]
	mask uint64
	_    pad
	enq  atomic.Uint64
	_    pad
	deq  atomic.Uint64
	_    pad
}

// NewMPMC returns an MPMC queue holding at least capacity elements
// (rounded up to a power of two). The minimum capacity is 2: with a
// single cell, the "filled by ticket t" stamp t+1 is indistinguishable
// from the "free for ticket t+1" stamp, so Vyukov's full-detection
// breaks — the fuzz harness caught exactly this.
func NewMPMC[T any](capacity int) *MPMC[T] {
	if capacity < 2 {
		capacity = 2
	}
	q := &MPMC[T]{buf: make([]mcell[T], pow2(capacity))}
	q.mask = uint64(len(q.buf) - 1)
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the queue's slot count.
func (q *MPMC[T]) Cap() int { return len(q.buf) }

// Len approximates the number of queued elements.
func (q *MPMC[T]) Len() int {
	n := int64(q.enq.Load() - q.deq.Load())
	if n < 0 {
		n = 0
	}
	return int(n)
}

// TryPush appends v and reports whether there was room; never blocks,
// never allocates.
func (q *MPMC[T]) TryPush(v T) bool {
	pos := q.enq.Load()
	for {
		c := &q.buf[pos&q.mask]
		switch d := int64(c.seq.Load() - pos); {
		case d == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1) // publishes the value to poppers
				return true
			}
			pos = q.enq.Load()
		case d < 0:
			return false // a full lap behind: the queue is full
		default:
			pos = q.enq.Load() // lost a race; re-read the cursor
		}
	}
}

// TryPop removes and returns the oldest element; never blocks, never
// allocates.
func (q *MPMC[T]) TryPop() (T, bool) {
	var zero T
	pos := q.deq.Load()
	for {
		c := &q.buf[pos&q.mask]
		switch d := int64(c.seq.Load() - (pos + 1)); {
		case d == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				v := c.val
				c.val = zero
				c.seq.Store(pos + q.mask + 1) // re-arm the cell one lap ahead
				return v, true
			}
			pos = q.deq.Load()
		case d < 0:
			return zero, false // the cell is not filled yet: the queue is empty
		default:
			pos = q.deq.Load()
		}
	}
}
