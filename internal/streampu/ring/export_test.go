package ring

// resetAt restarts an empty SPSC queue with both cursors at base — the
// test hook behind the uint64-wraparound property tests. Call only while
// no goroutine is using the queue.
func (q *SPSC[T]) resetAt(base uint64) {
	for i := range q.buf {
		var zero T
		q.buf[i] = zero
	}
	q.head.Store(base)
	q.tail.Store(base)
	q.hcache = base
	q.tcache = base
}

// resetAt restarts an empty MPMC queue with both cursors at base and
// every cell re-stamped accordingly.
func (q *MPMC[T]) resetAt(base uint64) {
	for i := range q.buf {
		var zero T
		q.buf[i].val = zero
	}
	// A free cell must satisfy buf[t&mask].seq == t for its next push
	// ticket t — stamp by ticket, not by array index, so bases that are
	// not a multiple of the capacity keep the invariant.
	for t := base; t != base+uint64(len(q.buf)); t++ {
		q.buf[t&q.mask].seq.Store(t)
	}
	q.enq.Store(base)
	q.deq.Store(base)
}
