package ring

import (
	"math"
	"testing"
)

// fuzzOps drives q through a byte-encoded op sequence and cross-checks
// every result against a plain-slice model queue. Each byte is one op:
// even = push (the running counter is the value), odd = pop. The base
// cursor start lets the corpus cover counters near the uint64 overflow.
func fuzzOps(t *testing.T, cap2 int, base uint64, ops []byte,
	push func(int) bool, pop func() (int, bool)) {
	t.Helper()
	var model []int
	next := 0
	for i, op := range ops {
		if op%2 == 0 {
			ok := push(next)
			wantOK := len(model) < cap2
			if ok != wantOK {
				t.Fatalf("op %d: push(%d) = %v with %d/%d queued (base %#x)",
					i, next, ok, len(model), cap2, base)
			}
			if ok {
				model = append(model, next)
			}
			next++
		} else {
			v, ok := pop()
			wantOK := len(model) > 0
			if ok != wantOK {
				t.Fatalf("op %d: pop = (%d, %v) with %d queued (base %#x)",
					i, v, ok, len(model), base)
			}
			if ok {
				if v != model[0] {
					t.Fatalf("op %d: pop = %d, model head %d (base %#x)", i, v, model[0], base)
				}
				model = model[1:]
			}
		}
	}
}

// fuzzBases spreads the 16-bit seed over interesting cursor starts: the
// origin, a mid-range value, and just below the uint64 wraparound.
func fuzzBases(seed uint16) uint64 {
	switch seed % 3 {
	case 0:
		return 0
	case 1:
		return uint64(seed) << 32
	default:
		return uint64(math.MaxUint64) - uint64(seed%7)
	}
}

func FuzzSPSCIndexArithmetic(f *testing.F) {
	f.Add(uint8(3), uint16(0), []byte{0, 0, 1, 0, 1, 1, 1})
	f.Add(uint8(1), uint16(2), []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(4), uint16(5), []byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, capacity uint8, seed uint16, ops []byte) {
		q := NewSPSC[int](int(capacity%16) + 1)
		base := fuzzBases(seed)
		q.resetAt(base)
		fuzzOps(t, q.Cap(), base, ops, q.TryPush, q.TryPop)
	})
}

func FuzzMPMCIndexArithmetic(f *testing.F) {
	f.Add(uint8(3), uint16(0), []byte{0, 0, 1, 0, 1, 1, 1})
	f.Add(uint8(1), uint16(2), []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(4), uint16(5), []byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, capacity uint8, seed uint16, ops []byte) {
		q := NewMPMC[int](int(capacity%16) + 1)
		base := fuzzBases(seed)
		q.resetAt(base)
		fuzzOps(t, q.Cap(), base, ops, q.TryPush, q.TryPop)
	})
}
