package ring

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewSPSC[int](c.in).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
	// MPMC has a hard minimum of 2 (see NewMPMC).
	for _, c := range []struct{ in, want int }{
		{-3, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewMPMC[int](c.in).Cap(); got != c.want {
			t.Errorf("NewMPMC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSPSCFIFOAndBounds(t *testing.T) {
	q := NewSPSC[int](4)
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d rejected with room available", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into a full queue succeeded")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from a drained queue succeeded")
	}
}

func TestSPSCCloseDrain(t *testing.T) {
	q := NewSPSC[int](8)
	q.TryPush(1)
	q.TryPush(2)
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	// Queued elements survive the close.
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("pop after close = (%d, %v)", v, ok)
	}
	if v, ok := q.TryPop(); !ok || v != 2 {
		t.Fatalf("pop after close = (%d, %v)", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("drained closed queue still pops")
	}
}

// TestSPSCConcurrentTransfer is the -race workhorse: one producer
// streams a long ascending sequence to one consumer through a tiny ring,
// so the indices wrap thousands of times and every slot hand-off is
// exercised under contention.
func TestSPSCConcurrentTransfer(t *testing.T) {
	const n = 1 << 17
	q := NewSPSC[int](8)
	done := make(chan error, 1)
	go func() {
		last := -1
		for got := 0; got < n; {
			v, ok := q.TryPop()
			if !ok {
				runtime.Gosched() // single-core CI: let the producer run
				continue
			}
			if v != last+1 {
				done <- fmt.Errorf("out of order: got %d after %d", v, last)
				return
			}
			last = v
			got++
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if q.TryPush(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMPMCFIFOAndBounds(t *testing.T) {
	q := NewMPMC[int](4)
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d rejected with room available", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into a full queue succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from a drained queue succeeded")
	}
}

// TestMPMCConcurrentTransfer hammers the queue with several producers
// and consumers and checks that every pushed value arrives exactly once.
func TestMPMCConcurrentTransfer(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 1 << 14
	)
	q := NewMPMC[int](16)
	seen := make([]atomic.Int32, producers*perProd)
	var popped atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for popped.Load() < producers*perProd {
				v, ok := q.TryPop()
				if !ok {
					runtime.Gosched()
					continue
				}
				seen[v].Add(1)
				popped.Add(1)
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; {
				if q.TryPush(p*perProd + i) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(p)
	}
	pwg.Wait()
	wg.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("value %d delivered %d times, want exactly once", i, c)
		}
	}
}

// TestWraparoundNearUint64Max restarts both queues with cursors a few
// steps below the uint64 overflow point and pushes enough elements to
// carry the indices across it: the masked slot arithmetic and the
// full/empty difference tests must hold straight through the wrap.
func TestWraparoundNearUint64Max(t *testing.T) {
	base := uint64(math.MaxUint64) - 5
	s := NewSPSC[int](4)
	s.resetAt(base)
	for i := 0; i < 64; i++ {
		if !s.TryPush(i) {
			t.Fatalf("SPSC push %d rejected near wraparound", i)
		}
		if s.TryPush(-1) && s.Len() > s.Cap() {
			t.Fatalf("SPSC overfilled at step %d", i)
		}
		v, ok := s.TryPop()
		if !ok || v != i {
			t.Fatalf("SPSC pop %d = (%d, %v) near wraparound", i, v, ok)
		}
		// Drain the probe element if the second push got in.
		for s.Len() > 0 {
			s.TryPop()
		}
	}

	m := NewMPMC[int](4)
	m.resetAt(base)
	for i := 0; i < 64; i++ {
		if !m.TryPush(i) {
			t.Fatalf("MPMC push %d rejected near wraparound", i)
		}
		v, ok := m.TryPop()
		if !ok || v != i {
			t.Fatalf("MPMC pop %d = (%d, %v) near wraparound", i, v, ok)
		}
	}
}
