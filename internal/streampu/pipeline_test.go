package streampu

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ampsched/internal/core"
)

func timedTask(name string, wb, wl float64, rep bool) Task {
	return &TimedTask{TaskName: name, Weights: core.Weights(wb, wl), Rep: rep}
}

// orderCheck records the sequence numbers it sees and verifies order.
type orderCheck struct {
	mu   sync.Mutex
	seen []uint64
}

func (o *orderCheck) task() Task {
	return &FuncTask{TaskName: "order", Rep: false, Fn: func(w *Worker, f *Frame) error {
		o.mu.Lock()
		o.seen = append(o.seen, f.Seq)
		o.mu.Unlock()
		return nil
	}}
}

func (o *orderCheck) verify(t *testing.T, n int) {
	t.Helper()
	if len(o.seen) != n {
		t.Fatalf("saw %d frames, want %d", len(o.seen), n)
	}
	for i, s := range o.seen {
		if s != uint64(i) {
			t.Fatalf("frame order broken at position %d: seq %d", i, s)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tasks := []Task{timedTask("a", 1, 2, true), timedTask("b", 1, 2, false)}
	if _, err := New(nil, core.Solution{}, Options{}); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := New(tasks, core.Solution{}, Options{}); err == nil {
		t.Error("empty solution accepted")
	}
	bad := []core.Solution{
		{Stages: []core.Stage{{Start: 1, End: 1, Cores: 1, Type: core.Big}}},                                               // gap
		{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Big}}},                                               // incomplete
		{Stages: []core.Stage{{Start: 0, End: 1, Cores: 0, Type: core.Big}}},                                               // zero cores
		{Stages: []core.Stage{{Start: 0, End: 1, Cores: 2, Type: core.Big}}},                                               // replicated stateful
		{Stages: []core.Stage{{Start: 0, End: 3, Cores: 1, Type: core.Big}}},                                               // out of range
		{Stages: []core.Stage{{Start: 0, End: 1, Cores: 1, Type: core.Big}, {Start: 1, End: 1, Cores: 1, Type: core.Big}}}, // overlap
	}
	for i, sol := range bad {
		if _, err := New(tasks, sol, Options{}); err == nil {
			t.Errorf("bad solution %d accepted: %v", i, sol)
		}
	}
	good := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 3, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Little},
	}}
	if _, err := New(tasks, good, Options{}); err != nil {
		t.Errorf("good solution rejected: %v", err)
	}
}

func TestRunRejectsNonPositiveFrames(t *testing.T) {
	tasks := []Task{timedTask("a", 1, 1, true)}
	p, err := New(tasks, core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Big}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(0, nil); err == nil {
		t.Error("0 frames accepted")
	}
}

func TestSequentialPipelineProcessesAllFramesInOrder(t *testing.T) {
	oc := &orderCheck{}
	tasks := []Task{
		timedTask("work", 0, 0, true),
		oc.task(),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 100 || st.Errored != 0 {
		t.Fatalf("stats: %+v", st)
	}
	oc.verify(t, 100)
}

func TestReplicatedStagePreservesOrder(t *testing.T) {
	// A 4-replica stage feeding a sequential checker: order must hold.
	oc := &orderCheck{}
	tasks := []Task{
		timedTask("rep", 20, 20, true), // 20 µs modeled
		oc.task(),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 4, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 200 {
		t.Fatalf("frames = %d", st.Frames)
	}
	oc.verify(t, 200)
}

func TestChainedReplicatedStagesPreserveOrder(t *testing.T) {
	// Two consecutive replicated stages with co-prime replica counts —
	// the StreamPU v1.6.0 adaptor-chaining feature the paper required.
	oc := &orderCheck{}
	tasks := []Task{
		timedTask("rep1", 10, 10, true),
		timedTask("rep2", 10, 10, true),
		oc.task(),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 3, Type: core.Big},
		{Start: 1, End: 1, Cores: 2, Type: core.Little},
		{Start: 2, End: 2, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 300 || st.Errored != 0 {
		t.Fatalf("stats: %+v", st)
	}
	oc.verify(t, 300)
}

func TestErrorsPropagateAndAreCounted(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	tasks := []Task{
		&FuncTask{TaskName: "fail-odd", Rep: true, Fn: func(w *Worker, f *Frame) error {
			if f.Seq%2 == 1 {
				return boom
			}
			return nil
		}},
		&FuncTask{TaskName: "count-bad", Rep: true, Fn: func(w *Worker, f *Frame) error {
			if f.Err != nil {
				after.Add(1)
			}
			return nil
		}},
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Big},
	}}
	p, err := New(tasks, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errored != 25 {
		t.Errorf("errored = %d, want 25", st.Errored)
	}
	if after.Load() != 25 {
		t.Errorf("downstream saw %d errored frames, want 25", after.Load())
	}
}

func TestSourcePopulatesFrames(t *testing.T) {
	var sum atomic.Int64
	tasks := []Task{
		&FuncTask{TaskName: "add", Rep: true, Fn: func(w *Worker, f *Frame) error {
			sum.Add(int64(f.Data.(int)))
			return nil
		}},
	}
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 1, Type: core.Big}}}
	p, err := New(tasks, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(10, func(f *Frame) { f.Data = int(f.Seq) }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d, want 45", sum.Load())
	}
}

func TestCloningPerReplica(t *testing.T) {
	// A clonable task with per-instance state: each replica must get its
	// own instance (no data races, distinct counters).
	type statefulRep struct {
		FuncTask
		count int
	}
	var mu sync.Mutex
	instances := map[*statefulRep]int{}
	newInst := func() *statefulRep {
		s := &statefulRep{}
		s.TaskName = "clonable"
		s.Rep = true
		s.Fn = func(w *Worker, f *Frame) error {
			s.count++
			mu.Lock()
			instances[s] = s.count
			mu.Unlock()
			return nil
		}
		return s
	}
	proto := newInst()
	cloneCount := 0
	protoTask := &cloneable{inner: proto, factory: func() Task { cloneCount++; return newInst() }}
	sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: 3, Type: core.Big}}}
	p, err := New([]Task{protoTask}, sol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(90, nil); err != nil {
		t.Fatal(err)
	}
	if cloneCount != 3 {
		t.Errorf("cloned %d times, want 3 (one per replica)", cloneCount)
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, c := range instances {
		total += c
	}
	if total != 90 {
		t.Errorf("total processed %d, want 90", total)
	}
}

// cloneable wraps a task with an explicit clone factory for the test.
type cloneable struct {
	inner   Task
	factory func() Task
}

func (c *cloneable) Name() string                      { return c.inner.Name() }
func (c *cloneable) Replicable() bool                  { return true }
func (c *cloneable) Process(w *Worker, f *Frame) error { return c.inner.Process(w, f) }
func (c *cloneable) Clone() Task                       { return c.factory() }

func TestWorkerCoreTypesRespectLatencies(t *testing.T) {
	// One big stage (10 µs) and one little stage (40 µs): the little
	// stage bottlenecks; measured period must be near 40 µs (modeled)
	// with a 50× time scale (2 ms wall per frame, sleep-friendly).
	tasks := []Task{
		timedTask("fast-on-big", 10, 100, false),
		timedTask("slow-on-little", 1, 40, false),
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 1, Cores: 1, Type: core.Little},
	}}
	p, err := New(tasks, sol, Options{TimeScale: 50})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(120, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeriodMicros < 40 {
		t.Errorf("period %v µs below the 40 µs bottleneck", st.PeriodMicros)
	}
	if st.PeriodMicros > 40*1.6 {
		t.Errorf("period %v µs way above the 40 µs bottleneck", st.PeriodMicros)
	}
}

func TestReplicationIncreasesThroughput(t *testing.T) {
	// TimeScale 50 keeps the modeled latency (5 ms wall per frame) well
	// above scheduler/race-detector overheads on small CI machines; the
	// ideal gain is 4×, and anything below 2× would indicate replication
	// is broken rather than merely noisy.
	mk := func(cores int) float64 {
		tasks := []Task{timedTask("rep", 100, 100, true)}
		sol := core.Solution{Stages: []core.Stage{{Start: 0, End: 0, Cores: cores, Type: core.Big}}}
		p, err := New(tasks, sol, Options{TimeScale: 50})
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run(100, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st.FPS
	}
	f1 := mk(1)
	f4 := mk(4)
	if f4 < f1*2 {
		t.Errorf("4-way replication only improved FPS from %.0f to %.0f (< 2×)", f1, f4)
	}
}

func TestProfileRecoversModeledWeights(t *testing.T) {
	tasks := []Task{
		timedTask("a", 30, 120, false),
		timedTask("b", 60, 90, true),
	}
	prof, err := Profile(tasks, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		v    core.CoreType
		i    int
		want float64
	}{
		{core.Big, 0, 30}, {core.Big, 1, 60},
		{core.Little, 0, 120}, {core.Little, 1, 90},
	}
	for _, c := range checks {
		got := prof[c.v][c.i]
		if got < c.want || got > c.want*1.8 {
			t.Errorf("profile[%v][%d] = %.1f µs, want ≈%v (sleep overshoot allowed)",
				c.v, c.i, got, c.want)
		}
	}
}

func TestRunChain(t *testing.T) {
	var n atomic.Int64
	tasks := []Task{
		&FuncTask{TaskName: "count", Rep: false, Fn: func(w *Worker, f *Frame) error {
			n.Add(1)
			return nil
		}},
	}
	st, err := RunChain(tasks, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 25 || n.Load() != 25 {
		t.Errorf("RunChain processed %d/%d", st.Frames, n.Load())
	}
}

func TestModelFromTimed(t *testing.T) {
	tasks := []Task{timedTask("a", 3, 6, true), timedTask("b", 4, 8, false)}
	c, err := ModelFromTimed(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.TotalW(core.Big) != 7 || c.TotalW(core.Little) != 14 {
		t.Errorf("model chain wrong: %+v", c.Tasks())
	}
	mixed := []Task{timedTask("a", 3, 6, true), &FuncTask{TaskName: "f"}}
	if _, err := ModelFromTimed(mixed); err == nil {
		t.Error("non-timed task accepted")
	}
}

func TestModelChain(t *testing.T) {
	tasks := []Task{&FuncTask{TaskName: "x", Rep: true}, &FuncTask{TaskName: "y", Rep: false}}
	c, err := ModelChain(tasks, func(i int, t Task) []float64 {
		w := float64(i + 1)
		return core.Weights(w, 2*w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || !c.Task(0).Replicable || c.Task(1).Replicable {
		t.Errorf("model chain: %+v", c.Tasks())
	}
	if c.Task(1).W(core.Little) != 4 {
		t.Errorf("profile not applied: %+v", c.Task(1))
	}
}

func TestWaitAccumulatesDebtAndSettles(t *testing.T) {
	w := &Worker{Core: core.Big, Scale: 1}
	w.Wait(0)
	w.Settle(time.Now()) // zero debt: must return immediately
	w.Wait(100)
	w.Wait(-5) // negative waits are ignored
	w.Wait(200)
	start := time.Now()
	w.Settle(start)
	if got := time.Since(start); got < 300*time.Microsecond {
		t.Errorf("settled after %v, want ≥ 300µs", got)
	}
	// Debt is cleared by Settle.
	s2 := time.Now()
	w.Settle(s2)
	if got := time.Since(s2); got > 200*time.Microsecond {
		t.Errorf("second settle took %v, debt not cleared", got)
	}
	// Spin mode realizes the full latency by busy-waiting.
	ws := &Worker{Core: core.Big, Scale: 1, Spin: true}
	ws.Wait(50)
	s3 := time.Now()
	ws.Settle(s3)
	if got := time.Since(s3); got < 50*time.Microsecond {
		t.Errorf("spin settle took %v, want ≥ 50µs", got)
	}
}

func TestStatsThroughput(t *testing.T) {
	s := Stats{FPS: 1000}
	if got := s.Throughput(4); got != 4000 {
		t.Errorf("Throughput = %v", got)
	}
}

func TestManyStagePipelineSmoke(t *testing.T) {
	// A longer mixed pipeline shaped like the DVB-S2 schedules.
	var tasks []Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, timedTask(fmt.Sprintf("t%d", i), 5, 15, i%2 == 0))
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 2, Cores: 1, Type: core.Big},
		{Start: 3, End: 5, Cores: 1, Type: core.Little},
		{Start: 6, End: 6, Cores: 3, Type: core.Big},
		{Start: 7, End: 9, Cores: 1, Type: core.Big},
	}}
	// Stage [6,6] replicates task 6 (replicable, i%2==0). Stage limits ok.
	p, err := New(tasks, sol, Options{TimeScale: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 80 || st.Errored != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if math.IsNaN(st.PeriodMicros) || st.PeriodMicros <= 0 {
		t.Errorf("period = %v", st.PeriodMicros)
	}
}
