package herad

import (
	"fmt"

	"ampsched/internal/core"
)

// Planner is the incremental HeRAD engine: it retains the filled DP
// matrix of its current chain and, on a chain edit, refills only the rows
// an edit can affect. Row j of the matrix covers the first j tasks, so it
// depends exclusively on tasks 0..j-1 and on rows < j — an edit at task
// index i (0-based) therefore invalidates rows ≥ i+1 and provably leaves
// every prefix row untouched (DESIGN.md §4g). Refilled rows are first
// reset to their pre-fill +Inf state and then recomputed by the same
// fillRows/kFillRows the from-scratch fill uses, so an edited Planner's
// schedule is bit-identical to scheduling the edited chain from scratch
// (planner_test.go drives random edit sequences against that oracle).
//
// A Planner carries one chain, one resource vector and one Options value
// for its whole life; edits change only the chain. It composes with every
// fill mode — wavefront workers, ForceGeneral, ε-beam pruning — because
// it reuses the underlying row fillers verbatim. Like those fillers, a
// Planner is not safe for concurrent use.
type Planner struct {
	c *core.Chain
	r core.Resources
	o Options

	m2 *matrix  // two-type fast path (nil when the general fill is in use)
	mk *kmatrix // general k-type fill (nil when the 2D fast path is in use)

	lastRefilled int // rows recomputed by the most recent fill or edit
}

// NewPlanner fills the full DP matrix for c on r under o and returns the
// incumbent Planner. Unlike Schedule — which answers unschedulable inputs
// with the empty solution — an unusable chain/resource pairing is an
// error here, because a Planner is a handle edits will be applied to.
func NewPlanner(c *core.Chain, r core.Resources, o Options) (*Planner, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("herad: planner needs a non-empty chain")
	}
	if r.Total() <= 0 || !r.NonNegative() {
		return nil, fmt.Errorf("herad: planner needs positive resources, got R=%s", r)
	}
	if c.NumTypes() != r.NumTypes() {
		return nil, fmt.Errorf("herad: chain declares %d core types, resources %d",
			c.NumTypes(), r.NumTypes())
	}
	p := &Planner{c: c, r: r, o: o}
	n := c.Len()
	if r.NumTypes() != 2 || o.ForceGeneral {
		p.mk = newKMatrix(n, r, o.epsilon())
	} else {
		p.m2 = newMatrix(n, r.Count(core.Big), r.Count(core.Little), o.epsilon())
	}
	om := o.Metrics
	dp, exit := om.Trace.Enter("dp_pass")
	if p.m2 != nil {
		dp.Int("tasks", n).Int("big", p.m2.b).Int("little", p.m2.l)
		fillRows(p.m2, c, 1, n, o)
	} else {
		dp.Int("tasks", n).Str("resources", r.String())
		kFillRows(p.mk, c, 1, n, om)
	}
	exit()
	p.lastRefilled = n
	return p, nil
}

// Chain returns the planner's current chain.
func (p *Planner) Chain() *core.Chain { return p.c }

// Resources returns the platform the planner was built for.
func (p *Planner) Resources() core.Resources { return p.r }

// Opts returns the Options the planner fills with. Edits cannot change
// them — in particular Epsilon is baked into the matrix, which is why the
// strategy cache keys solutions by ε as well.
func (p *Planner) Opts() Options { return p.o }

// RowsRefilled reports how many matrix rows the most recent operation
// recomputed: the chain length after NewPlanner or Append, less for the
// other edits. It is the planner's work meter — the incremental win over
// a from-scratch fill is (1 - RowsRefilled/Len) of the row work.
func (p *Planner) RowsRefilled() int { return p.lastRefilled }

// Solution returns the schedule of the planner's current chain, applying
// the replicable-stage merge post-pass unless Options.Raw — exactly
// ScheduleOpts(Chain(), Resources(), Opts()), without the fill.
func (p *Planner) Solution() core.Solution {
	return finishSolution(p.c, p.raw(), p.o)
}

// Period returns the current optimal period without running the merge
// post-pass (merging never changes the period).
func (p *Planner) Period() float64 {
	return p.raw().Period(p.c)
}

func (p *Planner) raw() core.Solution {
	if p.m2 != nil {
		return extractSolution(p.m2, p.c, p.c.Len(), p.m2.b, p.m2.l)
	}
	return kExtractSolution(p.mk, p.c, p.c.Len())
}

// Append adds t to the end of the chain. Only the single new row is
// filled: every existing row covers an unchanged prefix.
func (p *Planner) Append(t core.Task) error {
	tasks := append(p.c.Tasks(), t)
	return p.apply(tasks, len(tasks))
}

// Remove deletes the task at index i (0-based), refilling rows i+1 and
// up. Removing the last remaining task is an error — a Planner always
// holds a schedulable chain.
func (p *Planner) Remove(i int) error {
	if i < 0 || i >= p.c.Len() {
		return fmt.Errorf("herad: remove index %d out of range [0, %d)", i, p.c.Len())
	}
	if p.c.Len() == 1 {
		return fmt.Errorf("herad: cannot remove the only task of the chain")
	}
	tasks := p.c.Tasks()
	tasks = append(tasks[:i], tasks[i+1:]...)
	return p.apply(tasks, i+1)
}

// Reweigh replaces the task at index i (0-based) with t, refilling rows
// i+1 and up.
func (p *Planner) Reweigh(i int, t core.Task) error {
	if i < 0 || i >= p.c.Len() {
		return fmt.Errorf("herad: reweigh index %d out of range [0, %d)", i, p.c.Len())
	}
	tasks := p.c.Tasks()
	tasks[i] = t
	return p.apply(tasks, i+1)
}

// Rebase adopts c2 as the planner's chain, warm-starting from the longest
// common prefix with the current chain: only rows past the first
// scheduling-relevant difference (weight vector or replicability — names
// are cosmetic) are refilled. An identical chain refills nothing. This is
// the entry point strategy.ReplanBatch uses to re-plan an edited batch
// against an incumbent planner.
func (p *Planner) Rebase(c2 *core.Chain) error {
	if c2 == nil || c2.Len() == 0 {
		return fmt.Errorf("herad: planner needs a non-empty chain")
	}
	if c2.NumTypes() != p.r.NumTypes() {
		return fmt.Errorf("herad: chain declares %d core types, resources %d",
			c2.NumTypes(), p.r.NumTypes())
	}
	cp := commonPrefix(p.c, c2)
	if cp == c2.Len() && cp == p.c.Len() {
		p.c = c2
		p.lastRefilled = 0
		return nil
	}
	p.c = c2
	p.refill(cp + 1)
	return nil
}

// apply validates the edited task list as a chain, commits it and refills
// the invalidated row suffix. A rejected edit (core.NewChain error, type
// table mismatch) leaves the planner untouched.
func (p *Planner) apply(tasks []core.Task, from int) error {
	c, err := core.NewChain(tasks)
	if err != nil {
		return err
	}
	if c.NumTypes() != p.r.NumTypes() {
		return fmt.Errorf("herad: chain declares %d core types, resources %d",
			c.NumTypes(), p.r.NumTypes())
	}
	p.c = c
	p.refill(from)
	return nil
}

// refill resizes the matrix to the current chain length, resets rows
// from..n to their pre-fill +Inf state and recomputes them with the same
// row fillers the from-scratch fill uses. Rows < from are read, never
// written.
func (p *Planner) refill(from int) {
	n := p.c.Len()
	if from < 1 {
		from = 1
	}
	refilled := n - from + 1
	if refilled < 0 {
		refilled = 0 // pure truncation (e.g. Remove of the last task)
	}
	p.lastRefilled = refilled
	om := p.o.Metrics
	rf, exit := om.Trace.Enter("dp_refill")
	rf.Int("tasks", n).Int("from_row", from).Int("rows", refilled)
	if p.m2 != nil {
		p.m2.resize(n)
		for j := from; j <= n; j++ {
			p.m2.resetRow(j)
		}
		fillRows(p.m2, p.c, from, n, p.o)
	} else {
		p.mk.resize(n)
		for j := from; j <= n; j++ {
			p.mk.resetRow(j)
		}
		kFillRows(p.mk, p.c, from, n, om)
	}
	exit()
}

// commonPrefix returns the number of leading tasks a and b agree on in
// every scheduling-relevant field (weights and replicability; names never
// enter the DP). Rows up to that count are valid for both chains.
func commonPrefix(a, b *core.Chain) int {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if !sameTask(a.Task(i), b.Task(i)) {
			return i
		}
	}
	return n
}

func sameTask(x, y core.Task) bool {
	if x.Replicable != y.Replicable || len(x.Weight) != len(y.Weight) {
		return false
	}
	for v := range x.Weight {
		if x.Weight[v] != y.Weight[v] {
			return false
		}
	}
	return true
}
