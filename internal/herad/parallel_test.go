package herad

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/brute"
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
)

// dpCounts snapshots the deterministic DP counters of one fill. Candidate
// and prune counts are sensitive to the exact traversal: any divergence
// between worker counts — a cell pruned at a different split point, an
// extra candidate compared — shows up here even when the final schedule
// happens to agree.
type dpCounts struct {
	cells, candidates, pruned, merged int64
}

func scheduleCounted(c *core.Chain, r core.Resources, workers int) (core.Solution, dpCounts) {
	reg := obs.NewRegistry()
	s := ScheduleOpts(c, r, Options{Workers: workers, Metrics: MetricsFrom(reg)})
	m := MetricsFrom(reg)
	return s, dpCounts{
		cells:      m.DPCells.Value(),
		candidates: m.DPCandidates.Value(),
		pruned:     m.DPPruned.Value(),
		merged:     m.MergedStages.Value(),
	}
}

// TestWavefrontWorkersBitIdentical pins the tentpole's correctness
// contract: the wavefront fill emits byte-identical schedules and
// identical deterministic counters for every worker count. The problem
// sizes are chosen so the widest diagonals clear parGrain and the pool
// genuinely runs (verified by the estimate below, not assumed); run with
// -race this doubles as the data-race check on the wave barriers.
func TestWavefrontWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	shapes := []struct {
		n, b, l int
	}{
		{30, 12, 12}, // widest diagonal 13 wide, 13·30·24 ≈ 9k ≫ parGrain
		{32, 16, 8},  // asymmetric resources
		{48, 8, 8},   // long chain, narrow matrix
	}
	for _, sh := range shapes {
		if est := maxDiagonal(sh.b, sh.l) * sh.n * (sh.b + sh.l); est < parGrain {
			t.Fatalf("shape %+v never parallelizes (estimate %d < %d)", sh, est, parGrain)
		}
	}
	for iter := 0; iter < 6; iter++ {
		sh := shapes[iter%len(shapes)]
		c := chaingen.Generate(chaingen.Default(sh.n, []float64{0.2, 0.5, 0.8}[iter%3]), rng)
		r := core.Res(sh.b, sh.l)
		ref, refCounts := scheduleCounted(c, r, 1)
		for _, workers := range []int{2, 8} {
			got, gotCounts := scheduleCounted(c, r, workers)
			if got.String() != ref.String() {
				t.Errorf("iter %d workers=%d: schedule %v, serial %v (n=%d R=%v)",
					iter, workers, got, ref, sh.n, r)
			}
			if gotCounts != refCounts {
				t.Errorf("iter %d workers=%d: counters %+v, serial %+v — traversal diverged",
					iter, workers, gotCounts, refCounts)
			}
		}
	}
}

// TestWavefrontMatchesBruteForce cross-checks the parallel fill against
// the exhaustive reference on small chains: optimality must hold for
// every worker count, not just match between them.
func TestWavefrontMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(7)
		c := chaingen.Generate(chaingen.Default(n, []float64{0, 0.5, 1}[rng.Intn(3)]), rng)
		r := core.Res(rng.Intn(4), rng.Intn(4))
		if r.Total() == 0 {
			r = r.With(core.Little, 2)
		}
		want := brute.MinPeriod(c, r)
		for _, workers := range []int{1, 2, 8} {
			s := ScheduleOpts(c, r, Options{Workers: workers})
			if err := s.Validate(c, r); err != nil {
				t.Fatalf("iter %d workers=%d: invalid solution: %v", iter, workers, err)
			}
			if got := s.Period(c); math.Abs(got-want) > 1e-9 {
				t.Fatalf("iter %d workers=%d: period %v, brute force %v\nchain=%+v R=%v",
					iter, workers, got, want, c.Tasks(), r)
			}
		}
	}
}

// TestWorkersZeroDefaultsToParallel exercises the GOMAXPROCS default
// (Workers ≤ 0) on a pool-sized problem — same schedule again.
func TestWorkersZeroDefaultsToParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := chaingen.Generate(chaingen.Default(30, 0.6), rng)
	r := core.Res(12, 12)
	ref := ScheduleOpts(c, r, Options{Workers: 1})
	for _, workers := range []int{0, -3} {
		if got := ScheduleOpts(c, r, Options{Workers: workers}); got.String() != ref.String() {
			t.Errorf("Workers=%d: schedule %v, serial %v", workers, got, ref)
		}
	}
}
