package herad

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/brute"
	"ampsched/internal/core"
)

// The paper's footnote 1 assumes tasks run fastest on big cores and notes
// the period bounds "can easily be changed" otherwise. These tests cover
// the inverted and mixed cases: chains where some or all tasks are faster
// on little cores must still be scheduled optimally (HeRAD's DP does not
// depend on the assumption; sched.DefaultBounds was generalized).

func invertedChain(rng *rand.Rand, n int) *core.Chain {
	tasks := make([]core.Task, n)
	for i := range tasks {
		wb := 1 + float64(rng.Intn(50))
		var wl float64
		switch rng.Intn(3) {
		case 0: // classic: little slower
			wl = math.Ceil(wb * (1 + 3*rng.Float64()))
		case 1: // inverted: little faster
			wl = math.Ceil(wb / (1 + 3*rng.Float64()))
		default: // equal
			wl = wb
		}
		tasks[i] = core.Task{
			Weight:     core.Weights(wb, wl),
			Replicable: rng.Intn(2) == 0,
		}
	}
	return core.MustChain(tasks)
}

func TestOptimalOnMixedSpeedPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for iter := 0; iter < 60; iter++ {
		c := invertedChain(rng, 1+rng.Intn(7))
		r := core.Res(rng.Intn(4), rng.Intn(4))
		if r.Total() == 0 {
			r = r.With(core.Little, 2)
		}
		want := brute.MinPeriod(c, r)
		s := Schedule(c, r)
		if err := s.Validate(c, r); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got := s.Period(c); math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: HeRAD %v vs brute %v on mixed-speed chain\n%+v R=%v",
				iter, got, want, c.Tasks(), r)
		}
	}
}

func TestLittleFasterTaskGoesLittle(t *testing.T) {
	// A single task that is faster on little cores: the optimum uses the
	// little core, and the period is the little-core weight.
	c := core.MustChain([]core.Task{{
		Weight:     core.Weights(100, 40),
		Replicable: false,
	}})
	s := Schedule(c, core.Res(2, 2))
	if p := s.Period(c); p != 40 {
		t.Errorf("period %v, want 40", p)
	}
	b, l := s.CoresUsed()
	if b != 0 || l != 1 {
		t.Errorf("usage (%d,%d), want (0,1)", b, l)
	}
}
