// Package herad implements HeRAD (Heterogeneous Resource Allocation using
// Dynamic programming, Algos 7–11 of the paper): the optimal solution to
// the period-minimization problem for partially-replicable task chains on
// two types of resources, with the secondary objective of using as many
// little cores as necessary (and otherwise as few cores as possible).
//
// The DP computes P*(j, b, l) — the best period for the first j tasks with
// up to b big and l little cores — via the recurrence of Eq. 4, resolving
// period ties with CompareCells (Algo 10). Complexity is O(n²·b·l·(b+l))
// time and O(n·b·l) space; two published optimizations are implemented
// (single-core inner loop for sequential intervals, plus the stage-merge
// post-pass), along with a period-dominance pruning of the reverse stage
// loop that cannot alter either objective.
//
// The fill is wavefront-parallel: within row j, cell (j, b, l) depends
// only on rows < j and on the already-recomputed same-row neighbors
// (j, b−1, l) and (j, b, l−1), so the cells of each anti-diagonal
// b+l = const are mutually independent. Options.Workers spreads every
// sufficiently large diagonal over a worker pool; each cell's value is a
// pure function of its dependencies, so the result is bit-identical for
// every worker count (asserted by parallel_test.go under -race).
//
// Platforms with k≠2 core types are solved by the general k-type fill in
// general.go, whose DP state is indexed by the k-vector of remaining core
// counts. Two-type problems keep this file's specialized 2D fill — the
// wavefront parallelism and the bit-exact outputs above are its contract —
// unless Options.ForceGeneral routes them through the general fill (which
// provably emits the same schedules; see general.go).
package herad

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Metrics holds HeRAD's instrumentation handles. The zero value is the
// disabled sink.
type Metrics struct {
	// DPCells counts recomputeCell invocations — the (j, b, l) cells the
	// Eq. 4 recursion actually evaluates (Algo 9).
	DPCells *obs.Counter
	// DPCandidates counts candidate (split point, core count, type)
	// solutions compared inside those cells.
	DPCandidates *obs.Counter
	// DPPruned counts the reverse stage loops cut short by the
	// period-dominance pruning.
	DPPruned *obs.Counter
	// MergedStages counts the stages removed by the replicable-stage
	// merge post-pass.
	MergedStages *obs.Counter
	// Trace is the decision-journal scope: the DP fill runs under a
	// "dp_pass" span with one "dp_cell" event per recomputed cell (the
	// committed split point, core type and period), "dp_prune" events for
	// the dominance cut-offs, and a "merge_pass" event for the post-pass.
	Trace *trace.Scope
}

// MetricsFrom resolves HeRAD's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		DPCells:      r.Counter("herad.dp.cells"),
		DPCandidates: r.Counter("herad.dp.candidates"),
		DPPruned:     r.Counter("herad.dp.pruned"),
		MergedStages: r.Counter("herad.merge.removed_stages"),
	}
}

// cell is one entry of the DP solution matrix S (Algo 7 lines 1–7).
type cell struct {
	pbest        float64 // minimal maximum period for this subproblem
	accB, accL   int32   // accumulated cores of each type used by the solution
	prevB, prevL int32   // resources available to the predecessor subproblem
	start        int32   // 0-based index of the first task of the last stage
	v            core.CoreType
}

// matrix is the flattened (n+1)×(b+1)×(l+1) DP matrix. Row j holds the
// subproblems covering the first j tasks.
type matrix struct {
	cells []cell
	b, l  int
}

func newMatrix(n, b, l int) *matrix {
	m := &matrix{cells: make([]cell, (n+1)*(b+1)*(l+1)), b: b, l: l}
	inf := math.Inf(1)
	for i := range m.cells {
		m.cells[i].pbest = inf
	}
	// Row 0 is the empty-prefix base case: P*(0, ·, ·) = 0.
	for i := 0; i < (b+1)*(l+1); i++ {
		m.cells[i].pbest = 0
	}
	return m
}

func (m *matrix) at(j, rb, rl int) *cell {
	return &m.cells[(j*(m.b+1)+rb)*(m.l+1)+rl]
}

// Options carries the scheduling knobs of the DP. The zero value is the
// default configuration: merged post-pass, GOMAXPROCS wavefront workers,
// disabled instrumentation.
type Options struct {
	// Workers bounds the wavefront worker pool of the DP fill: ≤ 0 uses
	// GOMAXPROCS, 1 forces the serial fill. The emitted schedule is
	// bit-identical for every value — only the wall clock changes — and
	// small problems fall back to the serial fill regardless (see
	// parGrain). Journaled runs (Metrics.Trace enabled) always fill
	// serially so the decision journal keeps its deterministic order.
	Workers int
	// Raw skips the replicable-stage merge post-pass, exposing schedules
	// exactly as extracted from the DP matrix.
	Raw bool
	// ForceGeneral routes two-type problems through the general k-type DP
	// fill instead of the specialized 2D wavefront fill. The schedules are
	// identical (asserted by general_test.go); only the wall clock and the
	// pruning counters differ. Platforms with k≠2 always use the general
	// fill. Intended for tests and benchmarks of the specialization.
	ForceGeneral bool
	// Metrics holds the instrumentation sinks (zero value disables).
	Metrics Metrics
}

// Schedule computes the optimal schedule of c on the resources r,
// including the replicable-stage merge post-pass. It returns the empty
// solution when no resources are available.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleOpts(c, r, Options{})
}

// ScheduleObs is Schedule reporting into om.
func ScheduleObs(c *core.Chain, r core.Resources, om Metrics) core.Solution {
	return ScheduleOpts(c, r, Options{Metrics: om})
}

// ScheduleRaw is Schedule without the stage-merge post-pass, exposing the
// schedules exactly as extracted from the DP matrix.
func ScheduleRaw(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleOpts(c, r, Options{Raw: true})
}

// ScheduleRawObs is ScheduleRaw reporting into om.
func ScheduleRawObs(c *core.Chain, r core.Resources, om Metrics) core.Solution {
	return ScheduleOpts(c, r, Options{Raw: true, Metrics: om})
}

// ScheduleOpts computes the optimal schedule of c on r under o.
func ScheduleOpts(c *core.Chain, r core.Resources, o Options) core.Solution {
	s := scheduleRaw(c, r, o)
	if o.Raw {
		return s
	}
	om := o.Metrics
	merged := s.MergeReplicable(c)
	removed := len(s.Stages) - len(merged.Stages)
	if removed > 0 {
		om.MergedStages.Add(int64(removed))
	}
	if om.Trace.Enabled() && !s.IsEmpty() {
		om.Trace.Event("merge_pass").Int("removed_stages", removed).
			Int("stages", len(merged.Stages))
	}
	return merged
}

func scheduleRaw(c *core.Chain, r core.Resources, o Options) core.Solution {
	if c == nil || c.Len() == 0 || r.Total() <= 0 || !r.NonNegative() {
		return core.Solution{}
	}
	if c.NumTypes() != r.NumTypes() {
		return core.Solution{} // chain and platform disagree on the type table
	}
	if r.NumTypes() != 2 || o.ForceGeneral {
		return scheduleRawGeneral(c, r, o)
	}
	om := o.Metrics
	n, b, l := c.Len(), r.Count(core.Big), r.Count(core.Little)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if om.Trace.Enabled() {
		// Journal events must appear in the serial fill order for the
		// exported journal (and the -explain goldens) to stay byte-exact.
		workers = 1
	}
	if w := maxDiagonal(b, l); workers > w {
		workers = w // a diagonal never has more cells than min(b,l)+1
	}
	dp, exit := om.Trace.Enter("dp_pass")
	dp.Int("tasks", n).Int("big", b).Int("little", l)
	m := newMatrix(n, b, l)
	singleStageSolution(m, c, 1)
	var pool *wavePool
	if workers > 1 {
		pool = newWavePool(m, c, om, workers)
		defer pool.close()
	}
	for e := 2; e <= n; e++ {
		singleStageSolution(m, c, e)
		fillRow(m, c, e, om, pool)
	}
	exit()
	return extractSolution(m, c, n, b, l)
}

// parGrain is the minimum estimated work — candidate comparisons, i.e.
// width · row · (b+l) — below which a diagonal is filled serially even
// when a pool is available: distributing a handful of cheap cells costs
// more in synchronization than it saves. Results are identical either
// way; only the wall clock depends on the cut-off.
const parGrain = 4096

// maxDiagonal returns the widest anti-diagonal of a (b+1)×(l+1) row.
func maxDiagonal(b, l int) int {
	if b < l {
		return b + 1
	}
	return l + 1
}

// fillRow recomputes row j of the matrix by anti-diagonal waves: the
// cells with ub+ul = d only read cells of earlier rows and of diagonal
// d−1, so each wave's cells are independent and fill concurrently.
//
// Every cell is a pure function of earlier-row cells and same-row smaller
// neighbors — all filled before it under both traversals — so the wave
// order computes exactly the row-scan matrix. Journaled fills keep the
// classic (ub, ul) scan anyway: the journal records events in fill order,
// and exported artifacts (JSONL, -explain goldens) must stay byte-exact
// with the serial implementation.
func fillRow(m *matrix, c *core.Chain, j int, om Metrics, pool *wavePool) {
	if om.Trace.Enabled() {
		for ub := 0; ub <= m.b; ub++ {
			for ul := 0; ul <= m.l; ul++ {
				if ub != 0 || ul != 0 {
					recomputeCell(m, c, j, ub, ul, om)
				}
			}
		}
		return
	}
	for d := 1; d <= m.b+m.l; d++ {
		bLo := d - m.l
		if bLo < 0 {
			bLo = 0
		}
		bHi := d
		if bHi > m.b {
			bHi = m.b
		}
		width := bHi - bLo + 1
		if pool == nil || width < 2 || width*j*(m.b+m.l) < parGrain {
			for ub := bLo; ub <= bHi; ub++ {
				recomputeCell(m, c, j, ub, d-ub, om)
			}
			continue
		}
		pool.runDiagonal(j, d, bLo, bHi)
	}
}

// wavePool is the persistent worker pool of one DP fill. The coordinator
// publishes one diagonal at a time (the channel send/receive pairs give
// the happens-before edges for the fields and for all previously filled
// cells), the workers and the coordinator claim cells via an atomic
// cursor, and the WaitGroup closes the wave before the next diagonal —
// or any dependent serial cell — starts.
type wavePool struct {
	m  *matrix
	c  *core.Chain
	om Metrics

	work chan struct{} // one token per worker per diagonal
	wg   sync.WaitGroup
	next atomic.Int64 // next ub to claim in the current diagonal

	spawned        int // workers beyond the coordinator
	j, d, bLo, bHi int
}

func newWavePool(m *matrix, c *core.Chain, om Metrics, workers int) *wavePool {
	p := &wavePool{m: m, c: c, om: om, spawned: workers - 1}
	p.work = make(chan struct{})
	for k := 0; k < p.spawned; k++ {
		go func() {
			for range p.work {
				p.drain()
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *wavePool) runDiagonal(j, d, bLo, bHi int) {
	p.j, p.d, p.bLo, p.bHi = j, d, bLo, bHi
	p.next.Store(int64(bLo))
	p.wg.Add(p.spawned)
	for k := 0; k < p.spawned; k++ {
		p.work <- struct{}{}
	}
	p.drain() // the coordinator computes too
	p.wg.Wait()
}

// drain claims and recomputes cells of the current diagonal until none
// remain. Claims are per-cell: diagonals are at most min(b,l)+1 wide, so
// cursor contention is negligible next to a cell's O(n·(b+l)) work.
func (p *wavePool) drain() {
	for {
		ub := int(p.next.Add(1)) - 1
		if ub > p.bHi {
			return
		}
		recomputeCell(p.m, p.c, p.j, ub, p.d-ub, p.om)
	}
}

func (p *wavePool) close() { close(p.work) }

// Period returns the optimal period of c on r without materializing the
// schedule (it still fills the DP matrix).
func Period(c *core.Chain, r core.Resources) float64 {
	s := ScheduleRaw(c, r)
	return s.Period(c)
}

// singleStageSolution implements Algo 8: it fills row t with the best
// solutions that place the first t tasks in a single stage, comparing
// increasing numbers of big cores against increasing numbers of little
// cores and solving ties in favor of the little ones.
func singleStageSolution(m *matrix, c *core.Chain, t int) {
	rep := c.IsRep(0, t-1)
	// Stages using little cores only (rb = 0 column).
	for rl := 1; rl <= m.l; rl++ {
		cl := m.at(t, 0, rl)
		cl.pbest = c.Weight(0, t-1, rl, core.Little)
		if rep {
			cl.accB, cl.accL = 0, int32(rl)
		} else {
			cl.accB, cl.accL = 0, 1
		}
		cl.v = core.Little
		cl.start = 0
		cl.prevB, cl.prevL = 0, 0
	}
	// m.at(t, 0, 0) keeps its +Inf initialization: no cores, no schedule.
	for rb := 1; rb <= m.b; rb++ {
		wb := c.Weight(0, t-1, rb, core.Big)
		ub := int32(1)
		if rep {
			ub = int32(rb)
		}
		for rl := 0; rl <= m.l; rl++ {
			dst := m.at(t, rb, rl)
			little := m.at(t, 0, rl)
			if wb < little.pbest {
				dst.pbest = wb
				dst.accB, dst.accL = ub, 0
				dst.v = core.Big
				dst.start = 0
				dst.prevB, dst.prevL = 0, 0
			} else {
				*dst = *little
			}
		}
	}
}

// stageWeight is core.Chain.Weight (Eq. 1) with the interval sum already
// in hand: w is SumW(s, e, v), rep is IsRep(s, e). Bit-identical to
// Weight — same operations in the same order — so hoisting the prefix-sum
// lookup out of the candidate loops cannot change a single cell.
func stageWeight(w float64, rep bool, r int) float64 {
	if r < 1 {
		return math.Inf(1)
	}
	if rep {
		return w / float64(r)
	}
	return w
}

// dominated reports whether every stage-[i-1, j-1] candidate is period-
// dominated at pbest: even with all b big or all l little cores the stage
// weight exceeds pbest. It is non-increasing in i — a longer interval only
// gains prefix-sum weight and can only lose replicability (dropping the
// divisor) — which makes the dominance cutoff binary-searchable.
func dominated(c *core.Chain, j, b, l, i int, pbest float64) bool {
	rep := c.IsRep(i-1, j-1)
	return stageWeight(c.SumW(i-1, j-1, core.Big), rep, b) > pbest &&
		stageWeight(c.SumW(i-1, j-1, core.Little), rep, l) > pbest
}

// recomputeCell implements Algo 9: it computes P*(j, b, l) by comparing
// the single-stage seed, the neighbor cells with one less core of either
// type, and every split point i / core count u for both core types
// (Eq. 4). The reverse i loop is pruned once even the widest replicated
// stage exceeds the current best period, and sequential intervals only try
// a single core.
//
// The dominance cutoff is located up front by an O(log n) binary search on
// the chain's monotone prefix sums (dominated is non-increasing in i), so
// the loop never visits split points the seed period already rules out.
// The in-loop check survives because cur.pbest can improve mid-loop and
// cut even earlier; together the two reproduce the former walk's candidate
// set, prune count and trace events exactly.
func recomputeCell(m *matrix, c *core.Chain, j, b, l int, om Metrics) {
	om.DPCells.Inc()
	candidates := 0       // accumulated locally to keep the hot loops cheap
	cur := *m.at(j, b, l) // seed from singleStageSolution
	if l > 0 {
		compareCells(&cur, m.at(j, b, l-1))
	}
	if b > 0 {
		compareCells(&cur, m.at(j, b-1, l))
	}
	// iCut is the largest split point whose stage the seed period already
	// dominates (0 when none): the reverse loop stops above it. Any
	// in-loop cut at a larger i would also have stopped the former linear
	// walk there, so the candidate set is unchanged.
	iCut := 0
	if dominated(c, j, b, l, 1, cur.pbest) {
		lo, hi := 1, j // invariant: dominated(lo); the cutoff is in [lo, hi]
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if dominated(c, j, b, l, mid, cur.pbest) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		iCut = lo
	}
	pruned := iCut >= 1
	for i := j; i > iCut; i-- {
		// The candidate stage holds tasks [i-1, j-1] (0-based); its
		// predecessor subproblem is row i-1. i == 1 reproduces the
		// single-stage candidates with intermediate core counts.
		rep := c.IsRep(i-1, j-1)
		wB := c.SumW(i-1, j-1, core.Big)
		wL := c.SumW(i-1, j-1, core.Little)
		// Period-dominance pruning against the improving cur.pbest: stage
		// weight grows as i decreases, so once the lightest possible stage
		// (all cores of the cheaper type) exceeds cur.pbest, no candidate
		// at this or any smaller i can win.
		if stageWeight(wB, rep, b) > cur.pbest && stageWeight(wL, rep, l) > cur.pbest {
			iCut = i
			pruned = true
			break
		}
		maxUB := b
		maxUL := l
		if !rep {
			// Sequential stages cannot benefit from extra cores.
			if maxUB > 1 {
				maxUB = 1
			}
			if maxUL > 1 {
				maxUL = 1
			}
		}
		candidates += maxUB + maxUL
		for u := 1; u <= maxUB; u++ {
			prev := m.at(i-1, b-u, l)
			p := wB
			if rep {
				p = wB / float64(u)
			}
			if prev.pbest > p {
				p = prev.pbest
			}
			cand := cell{
				pbest: p,
				accB:  prev.accB + 1, accL: prev.accL,
				prevB: int32(b - u), prevL: int32(l),
				start: int32(i - 1), v: core.Big,
			}
			if rep {
				cand.accB = prev.accB + int32(u)
			}
			compareCells(&cur, &cand)
		}
		for u := 1; u <= maxUL; u++ {
			prev := m.at(i-1, b, l-u)
			p := wL
			if rep {
				p = wL / float64(u)
			}
			if prev.pbest > p {
				p = prev.pbest
			}
			cand := cell{
				pbest: p,
				accB:  prev.accB, accL: prev.accL + 1,
				prevB: int32(b), prevL: int32(l - u),
				start: int32(i - 1), v: core.Little,
			}
			if rep {
				cand.accL = prev.accL + int32(u)
			}
			compareCells(&cur, &cand)
		}
	}
	if pruned {
		om.DPPruned.Inc()
		if om.Trace.Enabled() {
			om.Trace.Event("dp_prune").Int("tasks", j).Int("big", b).Int("little", l).
				Int("cut_at_start", iCut-1)
		}
	}
	om.DPCandidates.Add(int64(candidates))
	if om.Trace.Enabled() && !math.IsInf(cur.pbest, 1) {
		om.Trace.Event("dp_cell").Int("tasks", j).Int("big", b).Int("little", l).
			F64("period", cur.pbest).Int("stage_start", int(cur.start)).
			Str("type", cur.v.String()).Int("candidates", candidates)
	}
	*m.at(j, b, l) = cur
}

// compareCells implements Algo 10: cur is replaced by cand when cand has a
// strictly smaller period or, at equal periods, when cand better exchanges
// big cores for little ones or uses fewer (or equal) cores of both types.
func compareCells(cur *cell, cand *cell) {
	switch {
	case cur.pbest > cand.pbest:
		*cur = *cand
	case cur.pbest == cand.pbest &&
		((cur.accL < cand.accL && cur.accB > cand.accB) ||
			(cur.accL >= cand.accL && cur.accB >= cand.accB)):
		*cur = *cand
	}
}

// extractSolution implements Algo 11: it walks the DP matrix backwards
// from the full problem, recovering each stage's interval, core type and
// per-stage core count (by subtracting the predecessor's accumulated
// usage).
func extractSolution(m *matrix, c *core.Chain, n, b, l int) core.Solution {
	e, rb, rl := n, b, l
	var sol core.Solution
	for e >= 1 {
		cl := m.at(e, rb, rl)
		if math.IsInf(cl.pbest, 1) {
			return core.Solution{} // unschedulable (no cores)
		}
		s := int(cl.start)
		ub, ul := cl.accB, cl.accL
		pb, pl := int(cl.prevB), int(cl.prevL)
		if s >= 1 {
			prev := m.at(s, pb, pl)
			ub -= prev.accB
			ul -= prev.accL
		}
		r := int(ub)
		if cl.v == core.Little {
			r = int(ul)
		}
		sol = sol.Prepend(core.Stage{Start: s, End: e - 1, Cores: r, Type: cl.v})
		e, rb, rl = s, pb, pl
	}
	return sol
}
