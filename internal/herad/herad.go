// Package herad implements HeRAD (Heterogeneous Resource Allocation using
// Dynamic programming, Algos 7–11 of the paper): the optimal solution to
// the period-minimization problem for partially-replicable task chains on
// two types of resources, with the secondary objective of using as many
// little cores as necessary (and otherwise as few cores as possible).
//
// The DP computes P*(j, b, l) — the best period for the first j tasks with
// up to b big and l little cores — via the recurrence of Eq. 4, resolving
// period ties with CompareCells (Algo 10). Complexity is O(n²·b·l·(b+l))
// time and O(n·b·l) space; two published optimizations are implemented
// (single-core inner loop for sequential intervals, plus the stage-merge
// post-pass), along with a period-dominance pruning of the reverse stage
// loop that cannot alter either objective.
//
// The fill is wavefront-parallel: within row j, cell (j, b, l) depends
// only on rows < j and on the already-recomputed same-row neighbors
// (j, b−1, l) and (j, b, l−1), so the cells of each anti-diagonal
// b+l = const are mutually independent. Options.Workers spreads every
// sufficiently large diagonal over a worker pool; each cell's value is a
// pure function of its dependencies, so the result is bit-identical for
// every worker count (asserted by parallel_test.go under -race).
//
// Platforms with k≠2 core types are solved by the general k-type fill in
// general.go, whose DP state is indexed by the k-vector of remaining core
// counts. Two-type problems keep this file's specialized 2D fill — the
// wavefront parallelism and the bit-exact outputs above are its contract —
// unless Options.ForceGeneral routes them through the general fill (which
// provably emits the same schedules; see general.go).
package herad

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Metrics holds HeRAD's instrumentation handles. The zero value is the
// disabled sink.
type Metrics struct {
	// DPCells counts recomputeCell invocations — the (j, b, l) cells the
	// Eq. 4 recursion actually evaluates (Algo 9).
	DPCells *obs.Counter
	// DPCandidates counts candidate (split point, core count, type)
	// solutions compared inside those cells.
	DPCandidates *obs.Counter
	// DPPruned counts the reverse stage loops cut short by the
	// period-dominance pruning.
	DPPruned *obs.Counter
	// MergedStages counts the stages removed by the replicable-stage
	// merge post-pass.
	MergedStages *obs.Counter
	// Trace is the decision-journal scope: the DP fill runs under a
	// "dp_pass" span with one "dp_cell" event per recomputed cell (the
	// committed split point, core type and period), "dp_prune" events for
	// the dominance cut-offs, and a "merge_pass" event for the post-pass.
	Trace *trace.Scope
}

// MetricsFrom resolves HeRAD's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		DPCells:      r.Counter("herad.dp.cells"),
		DPCandidates: r.Counter("herad.dp.candidates"),
		DPPruned:     r.Counter("herad.dp.pruned"),
		MergedStages: r.Counter("herad.merge.removed_stages"),
	}
}

// cell is one entry of the DP solution matrix S (Algo 7 lines 1–7).
type cell struct {
	pbest        float64 // minimal maximum period for this subproblem
	accB, accL   int32   // accumulated cores of each type used by the solution
	prevB, prevL int32   // resources available to the predecessor subproblem
	start        int32   // 0-based index of the first task of the last stage
	v            core.CoreType
}

// matrix is the flattened (n+1)×(b+1)×(l+1) DP matrix. Row j holds the
// subproblems covering the first j tasks.
type matrix struct {
	cells []cell
	b, l  int
	// ε-fill constants (all exact identities at ε=0, so the exact fill's
	// comparisons are bit-identical to the pre-ε code): eps is the ε of
	// the beam-pruned fill (0 = exact); inv = 1/(1+ε) scales the split
	// dominance threshold; sqInv = 1/√(1+ε) scales the per-candidate
	// replica floor; gamma = √(1+ε)−1 is the step of both geometric
	// candidate grids (split points and replica counts). The two grids
	// each round by at most √(1+ε), so their composition stays within the
	// (1+ε) budget — see DESIGN.md §4g.
	eps, inv, sqInv, gamma float64
}

func newMatrix(n, b, l int, eps float64) *matrix {
	m := &matrix{cells: make([]cell, (n+1)*(b+1)*(l+1)), b: b, l: l}
	m.setEpsilon(eps)
	inf := math.Inf(1)
	for i := range m.cells {
		m.cells[i].pbest = inf
	}
	// Row 0 is the empty-prefix base case: P*(0, ·, ·) = 0.
	for i := 0; i < (b+1)*(l+1); i++ {
		m.cells[i].pbest = 0
	}
	return m
}

func (m *matrix) setEpsilon(eps float64) {
	m.eps, m.inv, m.sqInv, m.gamma = eps, 1.0, 1.0, 0
	if eps > 0 {
		m.inv = 1 / (1 + eps)
		root := math.Sqrt(1 + eps)
		m.sqInv = 1 / root
		m.gamma = root - 1
	}
}

func (m *matrix) at(j, rb, rl int) *cell {
	return &m.cells[(j*(m.b+1)+rb)*(m.l+1)+rl]
}

// rowLen is the number of cells of one matrix row.
func (m *matrix) rowLen() int { return (m.b + 1) * (m.l + 1) }

// resetRow restores row j to its pre-fill state: every cell back to the
// +Inf initialization of newMatrix, so an incremental refill recomputes
// the row exactly as a from-scratch fill would (singleStageSolution never
// touches the no-core cell (j, 0, 0), which must read as unschedulable).
func (m *matrix) resetRow(j int) {
	row := m.cells[j*m.rowLen() : (j+1)*m.rowLen()]
	inf := math.Inf(1)
	for i := range row {
		row[i] = cell{pbest: inf}
	}
}

// resize adjusts the matrix to hold rows 0..n. Shrinking truncates,
// leaving every surviving row intact; growing keeps the existing rows and
// appends rows of arbitrary content, which the caller must resetRow
// before filling. Extra capacity is reserved so a run of Appends does not
// reallocate per edit.
func (m *matrix) resize(n int) {
	want := (n + 1) * m.rowLen()
	if want <= cap(m.cells) {
		m.cells = m.cells[:want]
		return
	}
	grown := make([]cell, want, want+want/2)
	copy(grown, m.cells)
	m.cells = grown
}

// Options carries the scheduling knobs of the DP. The zero value is the
// default configuration: merged post-pass, GOMAXPROCS wavefront workers,
// disabled instrumentation.
type Options struct {
	// Workers bounds the wavefront worker pool of the DP fill: ≤ 0 uses
	// GOMAXPROCS, 1 forces the serial fill. The emitted schedule is
	// bit-identical for every value — only the wall clock changes — and
	// small problems fall back to the serial fill regardless (see
	// parGrain). Journaled runs (Metrics.Trace enabled) always fill
	// serially so the decision journal keeps its deterministic order.
	Workers int
	// Raw skips the replicable-stage merge post-pass, exposing schedules
	// exactly as extracted from the DP matrix.
	Raw bool
	// ForceGeneral routes two-type problems through the general k-type DP
	// fill instead of the specialized 2D wavefront fill. The schedules are
	// identical (asserted by general_test.go); only the wall clock and the
	// pruning counters differ. Platforms with k≠2 always use the general
	// fill. Intended for tests and benchmarks of the specialization.
	ForceGeneral bool
	// Epsilon > 0 selects the ε-optimal beam-pruned fill: the reverse
	// split-point loop is cut once a candidate stage cannot beat the
	// incumbent period by more than the (1+ε) factor, and replica counts
	// are probed on a geometric grid instead of exhaustively. The emitted
	// schedule's period P satisfies P ≤ (1+ε)·P* (see DESIGN.md §4g; the
	// bound does not compound across stages because the DP objective is a
	// max, not a sum), at a fraction of the exact fill's candidate count.
	// Epsilon = 0 (and any negative or NaN value) is the exact fill,
	// bit-identical to the pre-ε implementation; the property tests in
	// epsilon_test.go pin both contracts.
	Epsilon float64
	// Metrics holds the instrumentation sinks (zero value disables).
	Metrics Metrics
}

// Schedule computes the optimal schedule of c on the resources r,
// including the replicable-stage merge post-pass. It returns the empty
// solution when no resources are available.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleOpts(c, r, Options{})
}

// ScheduleObs is Schedule reporting into om.
func ScheduleObs(c *core.Chain, r core.Resources, om Metrics) core.Solution {
	return ScheduleOpts(c, r, Options{Metrics: om})
}

// ScheduleRaw is Schedule without the stage-merge post-pass, exposing the
// schedules exactly as extracted from the DP matrix.
func ScheduleRaw(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleOpts(c, r, Options{Raw: true})
}

// ScheduleRawObs is ScheduleRaw reporting into om.
func ScheduleRawObs(c *core.Chain, r core.Resources, om Metrics) core.Solution {
	return ScheduleOpts(c, r, Options{Raw: true, Metrics: om})
}

// ScheduleOpts computes the optimal schedule of c on r under o.
func ScheduleOpts(c *core.Chain, r core.Resources, o Options) core.Solution {
	return finishSolution(c, scheduleRaw(c, r, o), o)
}

// finishSolution applies the replicable-stage merge post-pass requested by
// o to an extracted solution (shared by ScheduleOpts and Planner).
func finishSolution(c *core.Chain, s core.Solution, o Options) core.Solution {
	if o.Raw {
		return s
	}
	om := o.Metrics
	merged := s.MergeReplicable(c)
	removed := len(s.Stages) - len(merged.Stages)
	if removed > 0 {
		om.MergedStages.Add(int64(removed))
	}
	if om.Trace.Enabled() && !s.IsEmpty() {
		om.Trace.Event("merge_pass").Int("removed_stages", removed).
			Int("stages", len(merged.Stages))
	}
	return merged
}

// epsilon normalizes Options.Epsilon: negative and NaN values mean the
// exact fill, exactly like the zero default.
func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return 0
}

func scheduleRaw(c *core.Chain, r core.Resources, o Options) core.Solution {
	if c == nil || c.Len() == 0 || r.Total() <= 0 || !r.NonNegative() {
		return core.Solution{}
	}
	if c.NumTypes() != r.NumTypes() {
		return core.Solution{} // chain and platform disagree on the type table
	}
	if r.NumTypes() != 2 || o.ForceGeneral {
		return scheduleRawGeneral(c, r, o)
	}
	om := o.Metrics
	n, b, l := c.Len(), r.Count(core.Big), r.Count(core.Little)
	dp, exit := om.Trace.Enter("dp_pass")
	dp.Int("tasks", n).Int("big", b).Int("little", l)
	m := newMatrix(n, b, l, o.epsilon())
	fillRows(m, c, 1, n, o)
	exit()
	return extractSolution(m, c, n, b, l)
}

// fillWorkers resolves the wavefront worker count for one fill of m:
// Options.Workers (GOMAXPROCS when unset), forced serial under tracing so
// the journal keeps its deterministic order, and capped by the widest
// anti-diagonal a row can offer.
func fillWorkers(m *matrix, o Options) int {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if o.Metrics.Trace.Enabled() {
		// Journal events must appear in the serial fill order for the
		// exported journal (and the -explain goldens) to stay byte-exact.
		workers = 1
	}
	if w := maxDiagonal(m.b, m.l); workers > w {
		workers = w // a diagonal never has more cells than min(b,l)+1
	}
	return workers
}

// fillRows computes rows from..to of the matrix in ascending row order:
// each row is seeded by singleStageSolution and, from row 2 on, completed
// by the Eq. 4 recurrence over its cells. Rows < from are read, never
// written, which is what lets the incremental Planner refill only the
// suffix a chain edit invalidates. The rows must be in their pre-fill
// (+Inf) state — fresh from newMatrix, or resetRow.
func fillRows(m *matrix, c *core.Chain, from, to int, o Options) {
	om := o.Metrics
	var pool *wavePool
	if fillWorkers(m, o) > 1 {
		pool = newWavePool(m, c, om, fillWorkers(m, o))
		defer pool.close()
	}
	for e := from; e <= to; e++ {
		singleStageSolution(m, c, e)
		if e >= 2 {
			fillRow(m, c, e, om, pool)
		}
	}
}

// parGrain is the minimum estimated work — candidate comparisons, i.e.
// width · row · (b+l) — below which a diagonal is filled serially even
// when a pool is available: distributing a handful of cheap cells costs
// more in synchronization than it saves. Results are identical either
// way; only the wall clock depends on the cut-off.
const parGrain = 4096

// maxDiagonal returns the widest anti-diagonal of a (b+1)×(l+1) row.
func maxDiagonal(b, l int) int {
	if b < l {
		return b + 1
	}
	return l + 1
}

// fillRow recomputes row j of the matrix by anti-diagonal waves: the
// cells with ub+ul = d only read cells of earlier rows and of diagonal
// d−1, so each wave's cells are independent and fill concurrently.
//
// Every cell is a pure function of earlier-row cells and same-row smaller
// neighbors — all filled before it under both traversals — so the wave
// order computes exactly the row-scan matrix. Journaled fills keep the
// classic (ub, ul) scan anyway: the journal records events in fill order,
// and exported artifacts (JSONL, -explain goldens) must stay byte-exact
// with the serial implementation.
func fillRow(m *matrix, c *core.Chain, j int, om Metrics, pool *wavePool) {
	if om.Trace.Enabled() {
		for ub := 0; ub <= m.b; ub++ {
			for ul := 0; ul <= m.l; ul++ {
				if ub != 0 || ul != 0 {
					recomputeCell(m, c, j, ub, ul, om)
				}
			}
		}
		return
	}
	for d := 1; d <= m.b+m.l; d++ {
		bLo := d - m.l
		if bLo < 0 {
			bLo = 0
		}
		bHi := d
		if bHi > m.b {
			bHi = m.b
		}
		width := bHi - bLo + 1
		if pool == nil || width < 2 || width*j*(m.b+m.l) < parGrain {
			for ub := bLo; ub <= bHi; ub++ {
				recomputeCell(m, c, j, ub, d-ub, om)
			}
			continue
		}
		pool.runDiagonal(j, d, bLo, bHi)
	}
}

// wavePool is the persistent worker pool of one DP fill. The coordinator
// publishes one diagonal at a time (the channel send/receive pairs give
// the happens-before edges for the fields and for all previously filled
// cells), the workers and the coordinator claim cells via an atomic
// cursor, and the WaitGroup closes the wave before the next diagonal —
// or any dependent serial cell — starts.
type wavePool struct {
	m  *matrix
	c  *core.Chain
	om Metrics

	work chan struct{} // one token per worker per diagonal
	wg   sync.WaitGroup
	next atomic.Int64 // next ub to claim in the current diagonal

	spawned        int // workers beyond the coordinator
	j, d, bLo, bHi int
}

func newWavePool(m *matrix, c *core.Chain, om Metrics, workers int) *wavePool {
	p := &wavePool{m: m, c: c, om: om, spawned: workers - 1}
	p.work = make(chan struct{})
	for k := 0; k < p.spawned; k++ {
		go func() {
			for range p.work {
				p.drain()
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *wavePool) runDiagonal(j, d, bLo, bHi int) {
	p.j, p.d, p.bLo, p.bHi = j, d, bLo, bHi
	p.next.Store(int64(bLo))
	p.wg.Add(p.spawned)
	for k := 0; k < p.spawned; k++ {
		p.work <- struct{}{}
	}
	p.drain() // the coordinator computes too
	p.wg.Wait()
}

// drain claims and recomputes cells of the current diagonal until none
// remain. Claims are per-cell: diagonals are at most min(b,l)+1 wide, so
// cursor contention is negligible next to a cell's O(n·(b+l)) work.
func (p *wavePool) drain() {
	for {
		ub := int(p.next.Add(1)) - 1
		if ub > p.bHi {
			return
		}
		recomputeCell(p.m, p.c, p.j, ub, p.d-ub, p.om)
	}
}

func (p *wavePool) close() { close(p.work) }

// Period returns the optimal period of c on r without materializing the
// schedule (it still fills the DP matrix).
func Period(c *core.Chain, r core.Resources) float64 {
	s := ScheduleRaw(c, r)
	return s.Period(c)
}

// singleStageSolution implements Algo 8: it fills row t with the best
// solutions that place the first t tasks in a single stage, comparing
// increasing numbers of big cores against increasing numbers of little
// cores and solving ties in favor of the little ones.
func singleStageSolution(m *matrix, c *core.Chain, t int) {
	rep := c.IsRep(0, t-1)
	// Stages using little cores only (rb = 0 column).
	for rl := 1; rl <= m.l; rl++ {
		cl := m.at(t, 0, rl)
		cl.pbest = c.Weight(0, t-1, rl, core.Little)
		if rep {
			cl.accB, cl.accL = 0, int32(rl)
		} else {
			cl.accB, cl.accL = 0, 1
		}
		cl.v = core.Little
		cl.start = 0
		cl.prevB, cl.prevL = 0, 0
	}
	// m.at(t, 0, 0) keeps its +Inf initialization: no cores, no schedule.
	for rb := 1; rb <= m.b; rb++ {
		wb := c.Weight(0, t-1, rb, core.Big)
		ub := int32(1)
		if rep {
			ub = int32(rb)
		}
		for rl := 0; rl <= m.l; rl++ {
			dst := m.at(t, rb, rl)
			little := m.at(t, 0, rl)
			if wb < little.pbest {
				dst.pbest = wb
				dst.accB, dst.accL = ub, 0
				dst.v = core.Big
				dst.start = 0
				dst.prevB, dst.prevL = 0, 0
			} else {
				*dst = *little
			}
		}
	}
}

// stageWeight is core.Chain.Weight (Eq. 1) with the interval sum already
// in hand: w is SumW(s, e, v), rep is IsRep(s, e). Bit-identical to
// Weight — same operations in the same order — so hoisting the prefix-sum
// lookup out of the candidate loops cannot change a single cell.
func stageWeight(w float64, rep bool, r int) float64 {
	if r < 1 {
		return math.Inf(1)
	}
	if rep {
		return w / float64(r)
	}
	return w
}

// dominated reports whether every stage-[i-1, j-1] candidate is period-
// dominated at the threshold thr: even with all b big or all l little
// cores the stage weight exceeds thr. It is non-increasing in i — a longer
// interval only gains prefix-sum weight and can only lose replicability
// (dropping the divisor) — which makes the dominance cutoff binary-
// searchable. The exact fill passes thr = cur.pbest; the ε fill passes
// thr = cur.pbest/(1+ε), pruning splits that could not improve on the
// incumbent by more than the factor the ε bound already concedes.
func dominated(c *core.Chain, j, b, l, i int, thr float64) bool {
	rep := c.IsRep(i-1, j-1)
	return stageWeight(c.SumW(i-1, j-1, core.Big), rep, b) > thr &&
		stageWeight(c.SumW(i-1, j-1, core.Little), rep, l) > thr
}

// gridNext returns the replica count following u on the ε fill's geometric
// candidate grid: ⌊u·(1+ε)⌋ + 1. Consecutive grid points differ by a
// factor ≤ (1+ε), so for every exact count u* there is a probed count
// u ≤ u* with stage weight w/u ≤ (1+ε)·w/u* — the inequality the ε bound
// rests on. At ε=0 the grid degenerates to u+1, i.e. the exhaustive walk.
// shortWalk bounds the linear probe the ε fill's split-skip helpers try
// before resorting to a binary search: skips shorter than this are cheaper
// to walk than to bisect.
const shortWalk = 8

func gridNext(u int, eps float64) int {
	next := int(float64(u)*(1+eps)) + 1
	if next <= u {
		return u + 1
	}
	return next
}

// uFloor returns the smallest replica count whose stage period w/u does
// not exceed thr (⌈w/thr⌉, clamped below at 1) — the ε fill's
// per-candidate beam cut. The fill passes thr = cur.pbest/√(1+ε): a
// count under the floor, evaluated at the probed split OR at any split
// the probe covers (whose weight is at most a √(1+ε) grid step smaller),
// has true candidate period above cur.pbest/(1+ε) — it cannot beat the
// incumbent by more than the factor the ε bound already concedes. The u
// loop therefore starts at the floor and the geometric grid runs upward
// from it; every count skipped below the floor is ruled out against its
// true period, never against another rounded candidate, so the floor
// consumes no grid budget. For a sequential stage (weight w regardless
// of u) a floor > 1 exceeds maxU = 1 and skips the stage outright — the
// per-type form of the dominance cut.
func uFloor(w, thr float64) int {
	if !(w > thr) {
		return 1
	}
	u := int(w / thr)
	if float64(u)*thr < w {
		u++
	}
	if u < 1 {
		u = 1
	}
	return u
}

// skipSplit returns the split point the ε fill probes after i (the
// enclosing loop's i-- lands on it): the smallest i' in (iCut, i) whose
// stage [i'-1, j-1] keeps both type weights within the √(1+ε) grid
// factor of probe i's — every split skipped in between is then covered
// by the returned probe within one grid step, because interval weights
// only grow as the split moves left. When probe i's stage is replicable
// the result is clamped up to the last still-replicable split: a
// sequential covering stage cannot stand in for a replicated one (it
// lost the divisor), and clamping — probing earlier than the weight grid
// requires — only tightens the coverage. Both searches are O(log n) on
// the chain's monotone prefix structure, which is what makes a probe
// cheaper than the splits it skips.
func skipSplit(c *core.Chain, j, i, iCut int, limB, limL float64) int {
	within := func(x int) bool {
		return c.SumW(x-1, j-1, core.Big) <= limB &&
			c.SumW(x-1, j-1, core.Little) <= limL
	}
	if i-1 <= iCut || !within(i-1) {
		return i - 1
	}
	// Short skips are the common case at small ε (the grid factor shrinks
	// toward per-task weight granularity), and there a full binary search
	// costs more than the handful of cheap prefix-sum probes it replaces —
	// so walk linearly first and only fall back to the O(log n) search when
	// the skip turns out to be long.
	lo, hi := iCut+1, i-1 // within(hi) holds; the smallest within is in [lo, hi]
	for s := 0; s < shortWalk && hi > lo && within(hi-1); s++ {
		hi--
	}
	if hi > lo && within(hi-1) { // long skip: binary-search the rest
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if within(mid) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
	}
	lo = hi
	if c.IsRep(i-1, j-1) && !c.IsRep(lo-1, j-1) {
		rlo, rhi := lo+1, i // IsRep(i-1, j-1) holds; the flip is in [rlo, rhi]
		for rlo < rhi {
			mid := int(uint(rlo+rhi) >> 1)
			if c.IsRep(mid-1, j-1) {
				rhi = mid
			} else {
				rlo = mid + 1
			}
		}
		if rlo >= i {
			return i - 1 // every split below i is sequential: no safe skip
		}
		lo = rlo
	}
	return lo
}

// recomputeCell implements Algo 9: it computes P*(j, b, l) by comparing
// the single-stage seed, the neighbor cells with one less core of either
// type, and every split point i / core count u for both core types
// (Eq. 4). The reverse i loop is pruned once even the widest replicated
// stage exceeds the current best period, and sequential intervals only try
// a single core.
//
// The dominance cutoff is located up front by an O(log n) binary search on
// the chain's monotone prefix sums (dominated is non-increasing in i), so
// the loop never visits split points the seed period already rules out.
// The in-loop check survives because cur.pbest can improve mid-loop and
// cut even earlier; together the two reproduce the former walk's candidate
// set, prune count and trace events exactly.
func recomputeCell(m *matrix, c *core.Chain, j, b, l int, om Metrics) {
	om.DPCells.Inc()
	candidates := 0       // accumulated locally to keep the hot loops cheap
	cur := *m.at(j, b, l) // seed from singleStageSolution
	if l > 0 {
		compareCells(&cur, m.at(j, b, l-1))
	}
	if b > 0 {
		compareCells(&cur, m.at(j, b-1, l))
	}
	// iCut is the largest split point whose stage the seed period already
	// dominates (0 when none): the reverse loop stops above it. Any
	// in-loop cut at a larger i would also have stopped the former linear
	// walk there, so the candidate set is unchanged. The ε fill multiplies
	// the threshold by 1/(1+ε) — m.inv is exactly 1.0 at ε=0, so the exact
	// fill compares against cur.pbest bit-for-bit as before.
	iCut := 0
	if dominated(c, j, b, l, 1, cur.pbest*m.inv) {
		lo, hi := 1, j // invariant: dominated(lo); the cutoff is in [lo, hi]
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if dominated(c, j, b, l, mid, cur.pbest*m.inv) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		iCut = lo
	}
	pruned := iCut >= 1
	for i := j; i > iCut; i-- {
		// The candidate stage holds tasks [i-1, j-1] (0-based); its
		// predecessor subproblem is row i-1. i == 1 reproduces the
		// single-stage candidates with intermediate core counts.
		rep := c.IsRep(i-1, j-1)
		wB := c.SumW(i-1, j-1, core.Big)
		wL := c.SumW(i-1, j-1, core.Little)
		// Period-dominance pruning against the improving cur.pbest: stage
		// weight grows as i decreases, so once the lightest possible stage
		// (all cores of the cheaper type) exceeds the threshold, no
		// candidate at this or any smaller i can win (outright at ε=0, by
		// more than the conceded (1+ε) factor otherwise).
		thr := cur.pbest * m.inv
		if stageWeight(wB, rep, b) > thr && stageWeight(wL, rep, l) > thr {
			iCut = i
			pruned = true
			break
		}
		maxUB := b
		maxUL := l
		if !rep {
			// Sequential stages cannot benefit from extra cores.
			if maxUB > 1 {
				maxUB = 1
			}
			if maxUL > 1 {
				maxUL = 1
			}
		}
		uStartB, uStartL := 1, 1
		if m.eps > 0 {
			thrU := cur.pbest * m.sqInv
			uStartB, uStartL = uFloor(wB, thrU), uFloor(wL, thrU)
		}
		for u := uStartB; u <= maxUB; u++ {
			candidates++
			prev := m.at(i-1, b-u, l)
			p := wB
			if rep {
				p = wB / float64(u)
			}
			if prev.pbest > p {
				p = prev.pbest
			}
			cand := cell{
				pbest: p,
				accB:  prev.accB + 1, accL: prev.accL,
				prevB: int32(b - u), prevL: int32(l),
				start: int32(i - 1), v: core.Big,
			}
			if rep {
				cand.accB = prev.accB + int32(u)
			}
			compareCells(&cur, &cand)
			if m.eps > 0 {
				u = gridNext(u, m.gamma) - 1 // loop's u++ lands on the grid point
			}
		}
		for u := uStartL; u <= maxUL; u++ {
			candidates++
			prev := m.at(i-1, b, l-u)
			p := wL
			if rep {
				p = wL / float64(u)
			}
			if prev.pbest > p {
				p = prev.pbest
			}
			cand := cell{
				pbest: p,
				accB:  prev.accB, accL: prev.accL + 1,
				prevB: int32(b), prevL: int32(l - u),
				start: int32(i - 1), v: core.Little,
			}
			if rep {
				cand.accL = prev.accL + int32(u)
			}
			compareCells(&cur, &cand)
			if m.eps > 0 {
				u = gridNext(u, m.gamma) - 1
			}
		}
		if m.eps > 0 && i-1 > iCut {
			// Geometric split grid: jump straight to the next probe; the
			// loop's i-- lands on skipSplit's result.
			i = skipSplit(c, j, i, iCut, wB*(1+m.gamma), wL*(1+m.gamma)) + 1
		}
	}
	if pruned {
		om.DPPruned.Inc()
		if om.Trace.Enabled() {
			om.Trace.Event("dp_prune").Int("tasks", j).Int("big", b).Int("little", l).
				Int("cut_at_start", iCut-1)
		}
	}
	om.DPCandidates.Add(int64(candidates))
	if om.Trace.Enabled() && !math.IsInf(cur.pbest, 1) {
		om.Trace.Event("dp_cell").Int("tasks", j).Int("big", b).Int("little", l).
			F64("period", cur.pbest).Int("stage_start", int(cur.start)).
			Str("type", cur.v.String()).Int("candidates", candidates)
	}
	*m.at(j, b, l) = cur
}

// compareCells implements Algo 10: cur is replaced by cand when cand has a
// strictly smaller period or, at equal periods, when cand better exchanges
// big cores for little ones or uses fewer (or equal) cores of both types.
func compareCells(cur *cell, cand *cell) {
	switch {
	case cur.pbest > cand.pbest:
		*cur = *cand
	case cur.pbest == cand.pbest &&
		((cur.accL < cand.accL && cur.accB > cand.accB) ||
			(cur.accL >= cand.accL && cur.accB >= cand.accB)):
		*cur = *cand
	}
}

// extractSolution implements Algo 11: it walks the DP matrix backwards
// from the full problem, recovering each stage's interval, core type and
// per-stage core count (by subtracting the predecessor's accumulated
// usage).
func extractSolution(m *matrix, c *core.Chain, n, b, l int) core.Solution {
	e, rb, rl := n, b, l
	var sol core.Solution
	for e >= 1 {
		cl := m.at(e, rb, rl)
		if math.IsInf(cl.pbest, 1) {
			return core.Solution{} // unschedulable (no cores)
		}
		s := int(cl.start)
		ub, ul := cl.accB, cl.accL
		pb, pl := int(cl.prevB), int(cl.prevL)
		if s >= 1 {
			prev := m.at(s, pb, pl)
			ub -= prev.accB
			ul -= prev.accL
		}
		r := int(ub)
		if cl.v == core.Little {
			r = int(ul)
		}
		sol = sol.Prepend(core.Stage{Start: s, End: e - 1, Cores: r, Type: cl.v})
		e, rb, rl = s, pb, pl
	}
	return sol
}
