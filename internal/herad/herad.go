// Package herad implements HeRAD (Heterogeneous Resource Allocation using
// Dynamic programming, Algos 7–11 of the paper): the optimal solution to
// the period-minimization problem for partially-replicable task chains on
// two types of resources, with the secondary objective of using as many
// little cores as necessary (and otherwise as few cores as possible).
//
// The DP computes P*(j, b, l) — the best period for the first j tasks with
// up to b big and l little cores — via the recurrence of Eq. 4, resolving
// period ties with CompareCells (Algo 10). Complexity is O(n²·b·l·(b+l))
// time and O(n·b·l) space; two published optimizations are implemented
// (single-core inner loop for sequential intervals, plus the stage-merge
// post-pass), along with a period-dominance pruning of the reverse stage
// loop that cannot alter either objective.
package herad

import (
	"math"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Metrics holds HeRAD's instrumentation handles. The zero value is the
// disabled sink.
type Metrics struct {
	// DPCells counts recomputeCell invocations — the (j, b, l) cells the
	// Eq. 4 recursion actually evaluates (Algo 9).
	DPCells *obs.Counter
	// DPCandidates counts candidate (split point, core count, type)
	// solutions compared inside those cells.
	DPCandidates *obs.Counter
	// DPPruned counts the reverse stage loops cut short by the
	// period-dominance pruning.
	DPPruned *obs.Counter
	// MergedStages counts the stages removed by the replicable-stage
	// merge post-pass.
	MergedStages *obs.Counter
	// Trace is the decision-journal scope: the DP fill runs under a
	// "dp_pass" span with one "dp_cell" event per recomputed cell (the
	// committed split point, core type and period), "dp_prune" events for
	// the dominance cut-offs, and a "merge_pass" event for the post-pass.
	Trace *trace.Scope
}

// MetricsFrom resolves HeRAD's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		DPCells:      r.Counter("herad.dp.cells"),
		DPCandidates: r.Counter("herad.dp.candidates"),
		DPPruned:     r.Counter("herad.dp.pruned"),
		MergedStages: r.Counter("herad.merge.removed_stages"),
	}
}

// cell is one entry of the DP solution matrix S (Algo 7 lines 1–7).
type cell struct {
	pbest        float64 // minimal maximum period for this subproblem
	accB, accL   int32   // accumulated cores of each type used by the solution
	prevB, prevL int32   // resources available to the predecessor subproblem
	start        int32   // 0-based index of the first task of the last stage
	v            core.CoreType
}

// matrix is the flattened (n+1)×(b+1)×(l+1) DP matrix. Row j holds the
// subproblems covering the first j tasks.
type matrix struct {
	cells []cell
	b, l  int
}

func newMatrix(n, b, l int) *matrix {
	m := &matrix{cells: make([]cell, (n+1)*(b+1)*(l+1)), b: b, l: l}
	inf := math.Inf(1)
	for i := range m.cells {
		m.cells[i].pbest = inf
	}
	// Row 0 is the empty-prefix base case: P*(0, ·, ·) = 0.
	for i := 0; i < (b+1)*(l+1); i++ {
		m.cells[i].pbest = 0
	}
	return m
}

func (m *matrix) at(j, rb, rl int) *cell {
	return &m.cells[(j*(m.b+1)+rb)*(m.l+1)+rl]
}

// Schedule computes the optimal schedule of c on the resources r,
// including the replicable-stage merge post-pass. It returns the empty
// solution when no resources are available.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleObs(c, r, Metrics{})
}

// ScheduleObs is Schedule reporting into om.
func ScheduleObs(c *core.Chain, r core.Resources, om Metrics) core.Solution {
	s := ScheduleRawObs(c, r, om)
	merged := s.MergeReplicable(c)
	removed := len(s.Stages) - len(merged.Stages)
	if removed > 0 {
		om.MergedStages.Add(int64(removed))
	}
	if om.Trace.Enabled() && !s.IsEmpty() {
		om.Trace.Event("merge_pass").Int("removed_stages", removed).
			Int("stages", len(merged.Stages))
	}
	return merged
}

// ScheduleRaw is Schedule without the stage-merge post-pass, exposing the
// schedules exactly as extracted from the DP matrix.
func ScheduleRaw(c *core.Chain, r core.Resources) core.Solution {
	return ScheduleRawObs(c, r, Metrics{})
}

// ScheduleRawObs is ScheduleRaw reporting into om.
func ScheduleRawObs(c *core.Chain, r core.Resources, om Metrics) core.Solution {
	if c == nil || c.Len() == 0 || r.Total() <= 0 || r.Big < 0 || r.Little < 0 {
		return core.Solution{}
	}
	n, b, l := c.Len(), r.Big, r.Little
	dp, exit := om.Trace.Enter("dp_pass")
	dp.Int("tasks", n).Int("big", b).Int("little", l)
	m := newMatrix(n, b, l)
	singleStageSolution(m, c, 1)
	for e := 2; e <= n; e++ {
		singleStageSolution(m, c, e)
		for ub := 0; ub <= b; ub++ {
			for ul := 0; ul <= l; ul++ {
				if ub != 0 || ul != 0 {
					recomputeCell(m, c, e, ub, ul, om)
				}
			}
		}
	}
	exit()
	return extractSolution(m, c, n, b, l)
}

// Period returns the optimal period of c on r without materializing the
// schedule (it still fills the DP matrix).
func Period(c *core.Chain, r core.Resources) float64 {
	s := ScheduleRaw(c, r)
	return s.Period(c)
}

// singleStageSolution implements Algo 8: it fills row t with the best
// solutions that place the first t tasks in a single stage, comparing
// increasing numbers of big cores against increasing numbers of little
// cores and solving ties in favor of the little ones.
func singleStageSolution(m *matrix, c *core.Chain, t int) {
	rep := c.IsRep(0, t-1)
	// Stages using little cores only (rb = 0 column).
	for rl := 1; rl <= m.l; rl++ {
		cl := m.at(t, 0, rl)
		cl.pbest = c.Weight(0, t-1, rl, core.Little)
		if rep {
			cl.accB, cl.accL = 0, int32(rl)
		} else {
			cl.accB, cl.accL = 0, 1
		}
		cl.v = core.Little
		cl.start = 0
		cl.prevB, cl.prevL = 0, 0
	}
	// m.at(t, 0, 0) keeps its +Inf initialization: no cores, no schedule.
	for rb := 1; rb <= m.b; rb++ {
		wb := c.Weight(0, t-1, rb, core.Big)
		ub := int32(1)
		if rep {
			ub = int32(rb)
		}
		for rl := 0; rl <= m.l; rl++ {
			dst := m.at(t, rb, rl)
			little := m.at(t, 0, rl)
			if wb < little.pbest {
				dst.pbest = wb
				dst.accB, dst.accL = ub, 0
				dst.v = core.Big
				dst.start = 0
				dst.prevB, dst.prevL = 0, 0
			} else {
				*dst = *little
			}
		}
	}
}

// recomputeCell implements Algo 9: it computes P*(j, b, l) by comparing
// the single-stage seed, the neighbor cells with one less core of either
// type, and every split point i / core count u for both core types
// (Eq. 4). The reverse i loop is pruned once even the widest replicated
// stage exceeds the current best period, and sequential intervals only try
// a single core.
func recomputeCell(m *matrix, c *core.Chain, j, b, l int, om Metrics) {
	om.DPCells.Inc()
	candidates := 0       // accumulated locally to keep the hot loops cheap
	cur := *m.at(j, b, l) // seed from singleStageSolution
	if l > 0 {
		compareCells(&cur, m.at(j, b, l-1))
	}
	if b > 0 {
		compareCells(&cur, m.at(j, b-1, l))
	}
	for i := j; i >= 1; i-- {
		// The candidate stage holds tasks [i-1, j-1] (0-based); its
		// predecessor subproblem is row i-1. i == 1 reproduces the
		// single-stage candidates with intermediate core counts.
		rep := c.IsRep(i-1, j-1)
		// Period-dominance pruning: stage weight grows as i decreases, so
		// once the lightest possible stage (all cores of the cheaper type)
		// exceeds cur.pbest, no candidate at this or any smaller i can win.
		if c.Weight(i-1, j-1, b, core.Big) > cur.pbest &&
			c.Weight(i-1, j-1, l, core.Little) > cur.pbest {
			om.DPPruned.Inc()
			if om.Trace.Enabled() {
				om.Trace.Event("dp_prune").Int("tasks", j).Int("big", b).Int("little", l).
					Int("cut_at_start", i-1)
			}
			break
		}
		maxUB := b
		maxUL := l
		if !rep {
			// Sequential stages cannot benefit from extra cores.
			if maxUB > 1 {
				maxUB = 1
			}
			if maxUL > 1 {
				maxUL = 1
			}
		}
		candidates += maxUB + maxUL
		for u := 1; u <= maxUB; u++ {
			prev := m.at(i-1, b-u, l)
			p := c.Weight(i-1, j-1, u, core.Big)
			if prev.pbest > p {
				p = prev.pbest
			}
			cand := cell{
				pbest: p,
				accB:  prev.accB + 1, accL: prev.accL,
				prevB: int32(b - u), prevL: int32(l),
				start: int32(i - 1), v: core.Big,
			}
			if rep {
				cand.accB = prev.accB + int32(u)
			}
			compareCells(&cur, &cand)
		}
		for u := 1; u <= maxUL; u++ {
			prev := m.at(i-1, b, l-u)
			p := c.Weight(i-1, j-1, u, core.Little)
			if prev.pbest > p {
				p = prev.pbest
			}
			cand := cell{
				pbest: p,
				accB:  prev.accB, accL: prev.accL + 1,
				prevB: int32(b), prevL: int32(l - u),
				start: int32(i - 1), v: core.Little,
			}
			if rep {
				cand.accL = prev.accL + int32(u)
			}
			compareCells(&cur, &cand)
		}
	}
	om.DPCandidates.Add(int64(candidates))
	if om.Trace.Enabled() && !math.IsInf(cur.pbest, 1) {
		om.Trace.Event("dp_cell").Int("tasks", j).Int("big", b).Int("little", l).
			F64("period", cur.pbest).Int("stage_start", int(cur.start)).
			Str("type", cur.v.String()).Int("candidates", candidates)
	}
	*m.at(j, b, l) = cur
}

// compareCells implements Algo 10: cur is replaced by cand when cand has a
// strictly smaller period or, at equal periods, when cand better exchanges
// big cores for little ones or uses fewer (or equal) cores of both types.
func compareCells(cur *cell, cand *cell) {
	switch {
	case cur.pbest > cand.pbest:
		*cur = *cand
	case cur.pbest == cand.pbest &&
		((cur.accL < cand.accL && cur.accB > cand.accB) ||
			(cur.accL >= cand.accL && cur.accB >= cand.accB)):
		*cur = *cand
	}
}

// extractSolution implements Algo 11: it walks the DP matrix backwards
// from the full problem, recovering each stage's interval, core type and
// per-stage core count (by subtracting the predecessor's accumulated
// usage).
func extractSolution(m *matrix, c *core.Chain, n, b, l int) core.Solution {
	e, rb, rl := n, b, l
	var sol core.Solution
	for e >= 1 {
		cl := m.at(e, rb, rl)
		if math.IsInf(cl.pbest, 1) {
			return core.Solution{} // unschedulable (no cores)
		}
		s := int(cl.start)
		ub, ul := cl.accB, cl.accL
		pb, pl := int(cl.prevB), int(cl.prevL)
		if s >= 1 {
			prev := m.at(s, pb, pl)
			ub -= prev.accB
			ul -= prev.accL
		}
		r := int(ub)
		if cl.v == core.Little {
			r = int(ul)
		}
		sol = sol.Prepend(core.Stage{Start: s, End: e - 1, Cores: r, Type: cl.v})
		e, rb, rl = s, pb, pl
	}
	return sol
}
