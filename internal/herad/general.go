package herad

import (
	"math"

	"ampsched/internal/core"
)

// General k-type HeRAD fill. The DP state generalizes from (j, b, l) to
// (j, r⃗) where r⃗ is the k-vector of remaining per-type core counts; the
// matrix row for the first j tasks holds one cell per point of the box
// Π_v [0, C_v], flattened by mixed-radix strides. The recurrence, the
// single-stage seeding (Algo 8), the tie-break (Algo 10) and the
// extraction (Algo 11) are the literal k-type generalizations of the
// specialized 2D fill in herad.go:
//
//   - The Algo 10 tie-break "swap big cores for little ones, or use fewer
//     of both" is exactly lexicographic ≤ on the usage vector
//     (acc_0, …, acc_{k-1}) — types earlier in the table are the more
//     precious ones — so the general rule is a lexicographic compare.
//   - The Algo 8 single-stage tie ("solve ties in favor of the little
//     cores") becomes "the highest type index wins ties".
//
// At k=2 both rules coincide case-by-case with the specialized code, and
// the candidate enumeration visits the same (split, type, count) triples
// in the same order, so the general fill emits byte-identical schedules —
// general_test.go asserts this, and it is what licenses keeping the fast
// path. The general fill is serial (Options.Workers is ignored) and prunes
// the reverse split loop with the same period-dominance test, applied
// in-loop only — the pruning counters may therefore differ from the fast
// path's, the schedules cannot.
//
// Memory is O(n · Π_v(C_v+1)) cells; the state box grows geometrically
// with k, which is acceptable for the small-k platforms this models.

// kcell is one entry of the general DP matrix.
type kcell struct {
	pbest float64                  // minimal maximum period for this subproblem
	acc   [core.MaxCoreTypes]int32 // accumulated cores of each type used
	prev  int32                    // flattened state of the predecessor subproblem
	start int32                    // 0-based index of the first task of the last stage
	v     core.CoreType
}

// kmatrix is the flattened (n+1)×states general DP matrix.
type kmatrix struct {
	cells  []kcell
	k      int                      // number of core types
	counts [core.MaxCoreTypes]int   // per-type capacity C_v
	stride [core.MaxCoreTypes]int32 // mixed-radix strides; stride[k-1] == 1
	states int32                    // Π_v (C_v+1)
	// eps/inv/sqInv/gamma mirror the 2D matrix's ε-fill constants
	// (herad.go): all exact identities at ε=0, so the exact fill's
	// comparisons are unchanged.
	eps, inv, sqInv, gamma float64
}

func newKMatrix(n int, r core.Resources, eps float64) *kmatrix {
	m := &kmatrix{k: r.NumTypes()}
	m.eps, m.inv, m.sqInv, m.gamma = eps, 1.0, 1.0, 0
	if eps > 0 {
		m.inv = 1 / (1 + eps)
		root := math.Sqrt(1 + eps)
		m.sqInv = 1 / root
		m.gamma = root - 1
	}
	states := int32(1)
	for v := m.k - 1; v >= 0; v-- {
		m.counts[v] = r.Count(core.CoreType(v))
		m.stride[v] = states
		states *= int32(m.counts[v] + 1)
	}
	m.states = states
	m.cells = make([]kcell, (n+1)*int(states))
	inf := math.Inf(1)
	for i := range m.cells {
		m.cells[i].pbest = inf
	}
	// Row 0 is the empty-prefix base case: P*(0, ·) = 0.
	for i := int32(0); i < states; i++ {
		m.cells[i].pbest = 0
	}
	return m
}

// resetRow restores row j to its pre-fill (+Inf) state, the k-type twin of
// the 2D matrix's resetRow (kSingleStageSolution never writes the no-core
// state 0 of a row, which must read as unschedulable after a refill).
func (m *kmatrix) resetRow(j int) {
	row := m.cells[int32(j)*m.states : int32(j+1)*m.states]
	inf := math.Inf(1)
	for i := range row {
		row[i] = kcell{pbest: inf}
	}
}

// resize adjusts the matrix to hold rows 0..n — the k-type twin of the 2D
// matrix's resize (grown rows must be resetRow-initialized before use).
func (m *kmatrix) resize(n int) {
	want := (n + 1) * int(m.states)
	if want <= cap(m.cells) {
		m.cells = m.cells[:want]
		return
	}
	grown := make([]kcell, want, want+want/2)
	copy(grown, m.cells)
	m.cells = grown
}

// at returns the cell of row j at flattened state s.
func (m *kmatrix) at(j int, s int32) *kcell {
	return &m.cells[int32(j)*m.states+s]
}

// vec decodes the flattened state s into the remaining-count vector rv.
func (m *kmatrix) vec(s int32, rv *[core.MaxCoreTypes]int32) {
	for v := 0; v < m.k; v++ {
		q := s / m.stride[v]
		rv[v] = q % int32(m.counts[v]+1)
	}
}

// scheduleRawGeneral is scheduleRaw for an arbitrary number of core types.
// The guards (non-empty chain, positive non-negative resources, matching
// type tables) already ran in scheduleRaw.
func scheduleRawGeneral(c *core.Chain, r core.Resources, o Options) core.Solution {
	om := o.Metrics
	n := c.Len()
	dp, exit := om.Trace.Enter("dp_pass")
	dp.Int("tasks", n).Str("resources", r.String())
	m := newKMatrix(n, r, o.epsilon())
	kFillRows(m, c, 1, n, om)
	exit()
	return kExtractSolution(m, c, n)
}

// kFillRows computes rows from..to in ascending row order — the k-type
// twin of fillRows (always serial). Rows < from are read, never written.
func kFillRows(m *kmatrix, c *core.Chain, from, to int, om Metrics) {
	for e := from; e <= to; e++ {
		kSingleStageSolution(m, c, e)
		if e >= 2 {
			kFillRow(m, c, e, om)
		}
	}
}

// kSingleStageSolution implements Algo 8 for k types: every state r⃗ of row
// t is seeded with the best single stage that spends all r⃗_v cores of one
// type v, ties going to the highest type index (the k-type reading of
// "solve ties in favor of the little cores"). States with no cores keep
// their +Inf initialization.
func kSingleStageSolution(m *kmatrix, c *core.Chain, t int) {
	rep := c.IsRep(0, t-1)
	var rv [core.MaxCoreTypes]int32
	for s := int32(0); s < m.states; s++ {
		m.vec(s, &rv)
		dst := m.at(t, s)
		seeded := false
		for v := 0; v < m.k; v++ {
			rc := int(rv[v])
			if rc < 1 {
				continue
			}
			w := c.Weight(0, t-1, rc, core.CoreType(v))
			if seeded && w > dst.pbest {
				continue
			}
			var cand kcell
			cand.pbest = w
			if rep {
				cand.acc[v] = int32(rc)
			} else {
				cand.acc[v] = 1
			}
			cand.v = core.CoreType(v)
			cand.start = 0
			cand.prev = 0
			*dst = cand
			seeded = true
		}
	}
}

// kFillRow recomputes every state of row j in ascending flattened-state
// order, which is the lexicographic scan of the remaining-count vectors —
// the k-type generalization of the (ub, ul) row scan. Each cell only reads
// earlier rows and same-row states with one core less, all of which
// precede it in the scan.
func kFillRow(m *kmatrix, c *core.Chain, j int, om Metrics) {
	for s := int32(1); s < m.states; s++ {
		kRecomputeCell(m, c, j, s, om)
	}
}

// kRecomputeCell implements Algo 9 for k types: it computes P*(j, r⃗) by
// comparing the single-stage seed, the k neighbor cells with one less core
// of each type, and every split point i / core count u for every core type
// (Eq. 4 generalized). The reverse i loop is cut by the same
// period-dominance test as the 2D fill — once even the widest stage of
// every type exceeds the current best period, no smaller i can win.
func kRecomputeCell(m *kmatrix, c *core.Chain, j int, s int32, om Metrics) {
	om.DPCells.Inc()
	candidates := 0
	var rv [core.MaxCoreTypes]int32
	m.vec(s, &rv)
	cur := *m.at(j, s) // seed from kSingleStageSolution
	// Neighbor cells, highest type first — the order the 2D fill uses
	// ((b, l-1) before (b-1, l)).
	for v := m.k - 1; v >= 0; v-- {
		if rv[v] > 0 {
			kCompareCells(&cur, m.at(j, s-m.stride[v]), m.k)
		}
	}
	var w [core.MaxCoreTypes]float64
	pruned := false
	for i := j; i > 0; i-- {
		// The candidate stage holds tasks [i-1, j-1] (0-based); its
		// predecessor subproblem is row i-1. The ε fill relaxes the
		// dominance threshold to cur.pbest/(1+ε), exactly like the 2D
		// fill (m.inv is 1.0 at ε=0).
		rep := c.IsRep(i-1, j-1)
		thr := cur.pbest * m.inv
		dominatedAll := true
		for v := 0; v < m.k; v++ {
			w[v] = c.SumW(i-1, j-1, core.CoreType(v))
			if stageWeight(w[v], rep, int(rv[v])) <= thr {
				dominatedAll = false
			}
		}
		if dominatedAll {
			pruned = true
			break
		}
		for v := 0; v < m.k; v++ {
			maxU := int(rv[v])
			if !rep && maxU > 1 {
				maxU = 1 // sequential stages cannot benefit from extra cores
			}
			uStart := 1
			if m.eps > 0 {
				uStart = uFloor(w[v], cur.pbest*m.sqInv) // see the 2D fill's uFloor
			}
			for u := uStart; u <= maxU; u++ {
				candidates++
				prevState := s - int32(u)*m.stride[v]
				prev := m.at(i-1, prevState)
				p := w[v]
				if rep {
					p = w[v] / float64(u)
				}
				if prev.pbest > p {
					p = prev.pbest
				}
				cand := kcell{
					pbest: p,
					acc:   prev.acc,
					prev:  prevState,
					start: int32(i - 1),
					v:     core.CoreType(v),
				}
				if rep {
					cand.acc[v] += int32(u)
				} else {
					cand.acc[v]++
				}
				kCompareCells(&cur, &cand, m.k)
				if m.eps > 0 {
					u = gridNext(u, m.gamma) - 1 // loop's u++ lands on the grid point
				}
			}
		}
		if m.eps > 0 && i > 1 {
			// Geometric split grid — the k-type twin of the 2D fill's
			// skipSplit (the loop's i-- lands on the returned probe).
			i = kSkipSplit(m, c, j, i, &w) + 1
		}
	}
	if pruned {
		om.DPPruned.Inc()
		if om.Trace.Enabled() {
			om.Trace.Event("dp_prune").Int("tasks", j).Int("state", int(s))
		}
	}
	om.DPCandidates.Add(int64(candidates))
	if om.Trace.Enabled() && !math.IsInf(cur.pbest, 1) {
		om.Trace.Event("dp_cell").Int("tasks", j).Int("state", int(s)).
			F64("period", cur.pbest).Int("stage_start", int(cur.start)).
			Str("type", cur.v.String()).Int("candidates", candidates)
	}
	*m.at(j, s) = cur
}

// kSkipSplit is skipSplit for k types: the smallest split i' < i whose
// stage keeps every type's weight within the √(1+ε) grid factor of probe
// i's weights w, clamped up to the last still-replicable split when probe
// i's stage is replicable. Called with i ≥ 2 (split 1 is the last the
// loop visits).
func kSkipSplit(m *kmatrix, c *core.Chain, j, i int, w *[core.MaxCoreTypes]float64) int {
	grid := 1 + m.gamma
	within := func(x int) bool {
		for v := 0; v < m.k; v++ {
			if c.SumW(x-1, j-1, core.CoreType(v)) > w[v]*grid {
				return false
			}
		}
		return true
	}
	if !within(i - 1) {
		return i - 1
	}
	// Walk short skips linearly before bisecting, as in skipSplit: at
	// small ε the skip rarely outruns a few prefix-sum probes.
	lo, hi := 1, i-1 // within(hi) holds; the smallest within is in [lo, hi]
	for s := 0; s < shortWalk && hi > lo && within(hi-1); s++ {
		hi--
	}
	if hi > lo && within(hi-1) { // long skip: binary-search the rest
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if within(mid) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
	}
	lo = hi
	if c.IsRep(i-1, j-1) && !c.IsRep(lo-1, j-1) {
		rlo, rhi := lo+1, i // IsRep(i-1, j-1) holds; the flip is in [rlo, rhi]
		for rlo < rhi {
			mid := int(uint(rlo+rhi) >> 1)
			if c.IsRep(mid-1, j-1) {
				rhi = mid
			} else {
				rlo = mid + 1
			}
		}
		if rlo >= i {
			return i - 1 // every split below i is sequential: no safe skip
		}
		lo = rlo
	}
	return lo
}

// kCompareCells implements Algo 10 for k types: cand replaces cur when it
// has a strictly smaller period or, at equal periods, when its usage
// vector is lexicographically ≤ cur's. At k=2 the lexicographic rule is
// exactly the paper's "(accL↑ ∧ accB↓) ∨ (accL≤ ∧ accB≤)" case split.
func kCompareCells(cur, cand *kcell, k int) {
	if cur.pbest > cand.pbest {
		*cur = *cand
		return
	}
	if cur.pbest != cand.pbest {
		return
	}
	for v := 0; v < k; v++ {
		if cand.acc[v] != cur.acc[v] {
			if cand.acc[v] < cur.acc[v] {
				*cur = *cand
			}
			return
		}
	}
	*cur = *cand // identical usage: the later candidate wins, as in 2D
}

// kExtractSolution implements Algo 11 for k types, walking the matrix
// backwards from the full problem at the full-capacity state.
func kExtractSolution(m *kmatrix, c *core.Chain, n int) core.Solution {
	e, s := n, m.states-1 // full capacity flattens to the last state
	var sol core.Solution
	for e >= 1 {
		cl := m.at(e, s)
		if math.IsInf(cl.pbest, 1) {
			return core.Solution{} // unschedulable (no cores)
		}
		st := int(cl.start)
		used := cl.acc
		if st >= 1 {
			prev := m.at(st, cl.prev)
			for v := 0; v < m.k; v++ {
				used[v] -= prev.acc[v]
			}
		}
		sol = sol.Prepend(core.Stage{
			Start: st, End: e - 1, Cores: int(used[cl.v]), Type: cl.v,
		})
		e, s = st, cl.prev
	}
	return sol
}
