package herad_test

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/herad"
)

// ExampleSchedule computes the optimal schedule of a small
// partially-replicable chain on a 1-big + 2-little platform.
func ExampleSchedule() {
	chain := core.MustChain([]core.Task{
		{Name: "ingest", Weight: core.Weights(10, 20), Replicable: false},
		{Name: "decode", Weight: core.Weights(8, 16), Replicable: true},
		{Name: "check", Weight: core.Weights(8, 16), Replicable: true},
	})
	sol := herad.Schedule(chain, core.Res(1, 2))
	fmt.Println(sol)
	fmt.Println("period:", sol.Period(chain))
	// Output:
	// (1,1B),(2,2L)
	// period: 16
}
