package herad

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/brute"
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func TestDegenerate(t *testing.T) {
	c := core.MustChain([]core.Task{task(5, 10, true)})
	if s := Schedule(nil, core.Res(1, 0)); !s.IsEmpty() {
		t.Error("nil chain")
	}
	if s := Schedule(c, core.Resources{}); !s.IsEmpty() {
		t.Error("no cores")
	}
	if s := Schedule(c, core.Res(-2, 1)); !s.IsEmpty() {
		t.Error("negative cores")
	}
}

func TestSingleTask(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 30, true)})
	s := Schedule(c, core.Res(2, 2))
	if err := s.Validate(c, core.Res(2, 2)); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if p := s.Period(c); p != 5 {
		t.Errorf("period = %v, want 5 (replicated on both big cores)", p)
	}
	// Sequential single task: period is its big-core weight, one core.
	cs := core.MustChain([]core.Task{task(10, 30, false)})
	ss := Schedule(cs, core.Res(2, 2))
	if p := ss.Period(cs); p != 10 {
		t.Errorf("seq period = %v, want 10", p)
	}
	b, l := ss.CoresUsed()
	if b != 1 || l != 0 {
		t.Errorf("seq usage = (%d,%d), want (1,0)", b, l)
	}
}

func TestLittlePreferredOnTies(t *testing.T) {
	// Equal weights on both types: the optimum must prefer little cores
	// (Lemma 1: ties solved in favor of little).
	c := core.MustChain([]core.Task{task(10, 10, false)})
	s := Schedule(c, core.Res(3, 3))
	if p := s.Period(c); p != 10 {
		t.Fatalf("period = %v", p)
	}
	b, l := s.CoresUsed()
	if b != 0 || l != 1 {
		t.Errorf("usage = (%d,%d), want (0,1): little preferred on tie", b, l)
	}
}

func TestKnownTwoStage(t *testing.T) {
	// seq 10 | rep 8 8 (16): with 1 big + 2 little (little = 2× slower):
	// optimal splits [seq] on big (10) and [rep,rep] on 2 little (32/2=16)
	// → period 16.
	c := core.MustChain([]core.Task{
		task(10, 20, false), task(8, 16, true), task(8, 16, true),
	})
	r := core.Res(1, 2)
	s := Schedule(c, r)
	if err := s.Validate(c, r); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if p := s.Period(c); p != 16 {
		t.Errorf("period = %v, want 16 (%v)", p, s)
	}
}

func TestPeriodHelper(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 20, false), task(8, 16, true)})
	r := core.Res(1, 1)
	if got, want := Period(c, r), Schedule(c, r).Period(c); got != want {
		t.Errorf("Period = %v, Schedule period = %v", got, want)
	}
	if p := Period(c, core.Resources{}); !math.IsInf(p, 1) {
		t.Errorf("Period with no cores = %v, want +Inf", p)
	}
}

func TestMatchesBruteForcePeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 120; iter++ {
		n := 1 + rng.Intn(7)
		cfg := chaingen.Default(n, []float64{0, 0.2, 0.5, 0.8, 1}[rng.Intn(5)])
		c := chaingen.Generate(cfg, rng)
		r := core.Res(rng.Intn(4), rng.Intn(4))
		if r.Total() == 0 {
			r = r.With(core.Big, 1)
		}
		want := brute.MinPeriod(c, r)
		s := Schedule(c, r)
		if err := s.Validate(c, r); err != nil {
			t.Fatalf("iter %d: invalid solution: %v (chain %v, R=%v)", iter, err, c.Tasks(), r)
		}
		got := s.Period(c)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: HeRAD period %v, brute force %v\nchain=%+v R=%v sol=%v",
				iter, got, want, c.Tasks(), r, s)
		}
	}
}

func TestSecondaryObjectiveNotDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(6)
		c := chaingen.Generate(chaingen.Default(n, 0.5), rng)
		r := core.Res(1+rng.Intn(3), 1+rng.Intn(3))
		s := ScheduleRaw(c, r)
		p := s.Period(c)
		bH, lH := s.CoresUsed()
		period, usages := brute.OptimalUsages(c, r)
		if math.Abs(p-period) > 1e-9 {
			t.Fatalf("iter %d: period %v vs brute %v", iter, p, period)
		}
		for _, u := range usages {
			if brute.Beats(u[0], u[1], bH, lH) {
				t.Fatalf("iter %d: HeRAD usage (%d,%d) dominated by (%d,%d)\nchain=%+v R=%v sol=%v",
					iter, bH, lH, u[0], u[1], c.Tasks(), r, s)
			}
		}
	}
}

func TestMergePostPass(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 40; iter++ {
		c := chaingen.Generate(chaingen.Default(2+rng.Intn(10), 0.8), rng)
		r := core.Res(1+rng.Intn(4), 1+rng.Intn(4))
		raw := ScheduleRaw(c, r)
		merged := Schedule(c, r)
		if math.Abs(raw.Period(c)-merged.Period(c)) > 1e-9 {
			t.Fatalf("merge changed period: %v -> %v", raw.Period(c), merged.Period(c))
		}
		if len(merged.Stages) > len(raw.Stages) {
			t.Fatalf("merge grew the pipeline: %d -> %d", len(raw.Stages), len(merged.Stages))
		}
		if err := merged.Validate(c, r); err != nil {
			t.Fatalf("merged invalid: %v", err)
		}
	}
}

func TestHomogeneousOnlyResources(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 30; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(8), 0.5), rng)
		for _, r := range []core.Resources{core.Res(3, 0), core.Res(0, 3)} {
			s := Schedule(c, r)
			if err := s.Validate(c, r); err != nil {
				t.Fatalf("invalid on %v: %v", r, err)
			}
			want := brute.MinPeriod(c, r)
			if got := s.Period(c); math.Abs(got-want) > 1e-9 {
				t.Fatalf("homogeneous %v: got %v want %v", r, got, want)
			}
		}
	}
}

func TestMonotoneInResources(t *testing.T) {
	// Adding cores never worsens the optimal period.
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 25; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(10), 0.5), rng)
		prev := math.Inf(1)
		for total := 1; total <= 6; total++ {
			p := Period(c, core.Res(total, total))
			if p > prev+1e-9 {
				t.Fatalf("period increased with more cores: %v -> %v", prev, p)
			}
			prev = p
		}
	}
}

func TestAllReplicableUsesEverything(t *testing.T) {
	// Fully replicable chain with identical per-type speeds: the optimum
	// is a single stage over all cores of the faster type plus stages on
	// the others — at minimum, period ≤ ΣwB/(b) and ≤ bound with both.
	c := core.MustChain([]core.Task{
		task(10, 20, true), task(10, 20, true), task(10, 20, true), task(10, 20, true),
	})
	r := core.Res(2, 2)
	s := Schedule(c, r)
	want := brute.MinPeriod(c, r)
	if got := s.Period(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("period %v, brute %v (%v)", got, want, s)
	}
}
