package herad

import (
	"math/rand"
	"slices"
	"testing"

	"ampsched/internal/brute"
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
)

// TestGeneralMatchesFastPathK2 is the license for keeping the specialized
// 2D fill: on two-type platforms the general k-type fill must emit
// byte-identical schedules — same stages, same tie-breaks — not merely
// equal periods.
func TestGeneralMatchesFastPathK2(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(8)
		sr := []float64{0, 0.2, 0.5, 0.8, 1}[rng.Intn(5)]
		c := chaingen.Generate(chaingen.Default(n, sr), rng)
		r := core.Res(rng.Intn(5), rng.Intn(5))
		fast := ScheduleOpts(c, r, Options{})
		gen := ScheduleOpts(c, r, Options{ForceGeneral: true})
		if !slices.Equal(fast.Stages, gen.Stages) {
			t.Fatalf("iter %d (n=%d sr=%g R=%v):\nfast    %v\ngeneral %v",
				iter, n, sr, r, fast, gen)
		}
	}
}

// TestGeneralK3VsBrute cross-validates the general fill against exhaustive
// enumeration on three-type platforms: the DP must reach the optimal
// period on every instance small enough to enumerate.
func TestGeneralK3VsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(5)
		sr := []float64{0, 0.5, 1}[rng.Intn(3)]
		c := chaingen.Generate(chaingen.Default3(n, sr), rng)
		r := core.Res(rng.Intn(3), rng.Intn(3), rng.Intn(3))
		want := brute.MinPeriod(c, r)
		s := Schedule(c, r)
		if got := s.Period(c); got != want {
			t.Fatalf("iter %d (n=%d sr=%g R=%v): period %v, want %v\n%v",
				iter, n, sr, r, got, want, s)
		}
		if !s.IsEmpty() {
			if err := s.Validate(c, r); err != nil {
				t.Fatalf("iter %d: invalid schedule: %v", iter, err)
			}
		}
	}
}

// TestGeneralK1VsBrute exercises the degenerate single-type table.
func TestGeneralK1VsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(6)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Weight:     core.Weights(float64(1 + rng.Intn(50))),
				Replicable: rng.Intn(2) == 0,
			}
		}
		c := core.MustChain(tasks)
		r := core.Res(1 + rng.Intn(4))
		want := brute.MinPeriod(c, r)
		s := Schedule(c, r)
		if got := s.Period(c); got != want {
			t.Fatalf("iter %d (n=%d R=%v): period %v, want %v", iter, n, r, got, want)
		}
	}
}

// TestGeneralRejectsTypeMismatch: a chain and a platform disagreeing on
// the number of core types cannot be scheduled.
func TestGeneralTypeMismatch(t *testing.T) {
	c := core.MustChain([]core.Task{task(5, 10, true)})
	if s := Schedule(c, core.Res(1, 1, 1)); !s.IsEmpty() {
		t.Errorf("2-type chain scheduled on 3-type platform: %v", s)
	}
}
