package herad

import (
	"math/rand"
	"reflect"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
)

// scratchOracle is the planner's correctness oracle: the from-scratch fill
// of the planner's current chain under its own options.
func scratchOracle(t *testing.T, p *Planner) core.Solution {
	t.Helper()
	return ScheduleOpts(p.Chain(), p.Resources(), p.Opts())
}

func checkAgainstScratch(t *testing.T, p *Planner, step string) {
	t.Helper()
	got := p.Solution()
	want := scratchOracle(t, p)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: planner diverged from from-scratch\n got %v\nwant %v\nchain=%+v",
			step, got, want, p.Chain().Tasks())
	}
	if err := got.Validate(p.Chain(), p.Resources()); err != nil {
		t.Fatalf("%s: invalid planner solution: %v", step, err)
	}
}

// randTask draws a task compatible with k core types.
func randTask(rng *rand.Rand, k int) core.Task {
	w := make([]float64, k)
	for v := range w {
		w[v] = 1 + 99*rng.Float64()
	}
	return core.Task{Weight: w, Replicable: rng.Intn(2) == 0}
}

// TestPlannerEditSequence drives random Append/Remove/Reweigh sequences
// and checks after every edit that the planner's solution is bit-identical
// to scheduling the edited chain from scratch — on the 2D fast path, the
// forced general fill, a three-type platform, and an ε-beam fill. This is
// the row-reuse invariant of DESIGN.md §4g under fire.
func TestPlannerEditSequence(t *testing.T) {
	cases := []struct {
		name string
		k    int
		r    core.Resources
		o    Options
	}{
		{"fast2d", 2, core.Res(3, 4), Options{Workers: 1}},
		{"general2d", 2, core.Res(3, 4), Options{Workers: 1, ForceGeneral: true}},
		{"ktype3", 3, core.Res(2, 2, 3), Options{}},
		{"epsilon", 2, core.Res(4, 4), Options{Workers: 1, Epsilon: 0.05}},
		{"raw", 2, core.Res(3, 3), Options{Workers: 1, Raw: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101 + int64(tc.k)))
			tasks := make([]core.Task, 6+rng.Intn(8))
			for i := range tasks {
				tasks[i] = randTask(rng, tc.k)
			}
			p, err := NewPlanner(core.MustChain(tasks), tc.r, tc.o)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := p.RowsRefilled(), p.Chain().Len(); got != want {
				t.Fatalf("initial fill refilled %d rows, want %d", got, want)
			}
			checkAgainstScratch(t, p, "initial")
			for step := 0; step < 40; step++ {
				n := p.Chain().Len()
				switch op := rng.Intn(3); {
				case op == 0 || n == 1:
					if err := p.Append(randTask(rng, tc.k)); err != nil {
						t.Fatalf("step %d append: %v", step, err)
					}
					if p.RowsRefilled() != 1 {
						t.Fatalf("step %d: append refilled %d rows, want 1", step, p.RowsRefilled())
					}
				case op == 1:
					i := rng.Intn(n)
					if err := p.Remove(i); err != nil {
						t.Fatalf("step %d remove %d: %v", step, i, err)
					}
					if want := n - 1 - i; p.RowsRefilled() != want {
						t.Fatalf("step %d: remove %d of %d refilled %d rows, want %d",
							step, i, n, p.RowsRefilled(), want)
					}
				default:
					i := rng.Intn(n)
					if err := p.Reweigh(i, randTask(rng, tc.k)); err != nil {
						t.Fatalf("step %d reweigh %d: %v", step, i, err)
					}
					if want := n - i; p.RowsRefilled() != want {
						t.Fatalf("step %d: reweigh %d of %d refilled %d rows, want %d",
							step, i, n, p.RowsRefilled(), want)
					}
				}
				checkAgainstScratch(t, p, "edit")
			}
		})
	}
}

// TestPlannerRebase pins the warm-start diff: rebasing onto a chain
// sharing a prefix refills only the suffix, an identical chain refills
// nothing, and the result always matches from scratch.
func TestPlannerRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 30; iter++ {
		c := chaingen.Generate(chaingen.Default(10+rng.Intn(10), 0.5), rng)
		r := core.Res(3, 3)
		p, err := NewPlanner(c, r, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Same tasks, fresh chain value: nothing to refill.
		clone := core.MustChain(c.Tasks())
		if err := p.Rebase(clone); err != nil {
			t.Fatal(err)
		}
		if p.RowsRefilled() != 0 {
			t.Fatalf("identical rebase refilled %d rows", p.RowsRefilled())
		}
		checkAgainstScratch(t, p, "identical rebase")
		// Divergence at a random index: refill exactly the suffix.
		tasks := c.Tasks()
		i := rng.Intn(len(tasks))
		tasks[i] = randTask(rng, 2)
		edited := core.MustChain(tasks)
		if err := p.Rebase(edited); err != nil {
			t.Fatal(err)
		}
		if want := edited.Len() - i; p.RowsRefilled() != want {
			t.Fatalf("rebase diverging at %d refilled %d rows, want %d", i, p.RowsRefilled(), want)
		}
		checkAgainstScratch(t, p, "diverging rebase")
		// A longer chain sharing the full prefix: refill the added rows.
		longer := core.MustChain(append(edited.Tasks(), randTask(rng, 2), randTask(rng, 2)))
		if err := p.Rebase(longer); err != nil {
			t.Fatal(err)
		}
		if p.RowsRefilled() != 2 {
			t.Fatalf("extending rebase refilled %d rows, want 2", p.RowsRefilled())
		}
		checkAgainstScratch(t, p, "extending rebase")
		// A shorter chain (pure truncation): valid and consistent.
		shorter := core.MustChain(longer.Tasks()[:3])
		if err := p.Rebase(shorter); err != nil {
			t.Fatal(err)
		}
		checkAgainstScratch(t, p, "truncating rebase")
	}
}

// TestPlannerRejectsBadInputs pins the error contract: constructor and
// edits reject inputs that would leave the planner unschedulable, and a
// rejected edit leaves the planner's state untouched.
func TestPlannerRejectsBadInputs(t *testing.T) {
	if _, err := NewPlanner(nil, core.Res(1, 1), Options{}); err == nil {
		t.Error("nil chain accepted")
	}
	c := core.MustChain([]core.Task{task(10, 20, false), task(8, 16, true)})
	if _, err := NewPlanner(c, core.Resources{}, Options{}); err == nil {
		t.Error("empty resources accepted")
	}
	if _, err := NewPlanner(c, core.Res(-1, 2), Options{}); err == nil {
		t.Error("negative resources accepted")
	}
	p, err := NewPlanner(c, core.Res(2, 2), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Solution()
	if err := p.Remove(5); err == nil {
		t.Error("out-of-range remove accepted")
	}
	if err := p.Reweigh(-1, task(1, 2, false)); err == nil {
		t.Error("out-of-range reweigh accepted")
	}
	if err := p.Reweigh(0, core.Task{Weight: []float64{1, 2, 3}}); err == nil {
		t.Error("type-table mismatch accepted")
	}
	if err := p.Rebase(nil); err == nil {
		t.Error("nil rebase accepted")
	}
	if got := p.Solution(); !reflect.DeepEqual(got, before) {
		t.Errorf("rejected edits mutated the planner: %v vs %v", got, before)
	}
	single, err := NewPlanner(core.MustChain([]core.Task{task(5, 9, true)}), core.Res(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Remove(0); err == nil {
		t.Error("removing the only task accepted")
	}
}

// TestPlannerPeriod pins the Period accessor against the solution.
func TestPlannerPeriod(t *testing.T) {
	c := chaingen.GenerateMany(chaingen.Default(12, 0.5), 5, 1)[0]
	p, err := NewPlanner(c, core.Res(3, 2), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Period(), p.Solution().Period(c); got != want {
		t.Errorf("Period() = %v, Solution().Period = %v", got, want)
	}
}
