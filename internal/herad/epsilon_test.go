package herad

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ampsched/internal/brute"
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
)

// epsTol absorbs the 1-ulp slack of the fill's multiply-by-inverse
// thresholds: the ε guarantee is proved for real arithmetic, so the
// assertions allow one part in 10⁹ on top of (1+ε).
const epsTol = 1 + 1e-9

// TestEpsilonZeroBitIdentical pins the ε=0 contract: Options.Epsilon = 0
// must leave the fill untouched — not merely period-equal but the same
// solution, stage for stage, on both the 2D fast path and the general
// k-type fill. The ε constants all collapse to exact values at ε=0, so
// any divergence here means the beam machinery leaks into the exact path.
func TestEpsilonZeroBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(24)
		c := chaingen.Generate(chaingen.Default(n, []float64{0, 0.3, 0.5, 0.8, 1}[rng.Intn(5)]), rng)
		r := core.Res(1+rng.Intn(5), rng.Intn(5))
		want := ScheduleOpts(c, r, Options{Workers: 1})
		for _, o := range []Options{
			{Workers: 1, Epsilon: 0},
			{Workers: 1, Epsilon: -0.5}, // negative normalizes to exact
			{Workers: 1, Epsilon: 0, ForceGeneral: true},
		} {
			got := ScheduleOpts(c, r, o)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: opts %+v diverged from exact\n got %v\nwant %v\nchain=%+v R=%v",
					iter, o, got, want, c.Tasks(), r)
			}
		}
	}
}

// TestEpsilonBoundVsExact is the (1+ε) guarantee, differentially against
// the exact HeRAD fill: for random chains and every tested ε, the ε fill's
// schedule must validate and its period must satisfy P ≤ (1+ε)·P*. The
// lower bound P ≥ P* holds for free — the ε fill only prunes candidates,
// it never invents one — and is asserted too, as a cheap corruption check.
func TestEpsilonBoundVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(40)
		c := chaingen.Generate(chaingen.Default(n, []float64{0, 0.3, 0.5, 0.8, 1}[rng.Intn(5)]), rng)
		r := core.Res(1+rng.Intn(6), rng.Intn(6))
		exact := ScheduleOpts(c, r, Options{Workers: 1}).Period(c)
		for _, eps := range []float64{0.01, 0.05, 0.2, 1.0} {
			s := ScheduleOpts(c, r, Options{Workers: 1, Epsilon: eps})
			if err := s.Validate(c, r); err != nil {
				t.Fatalf("iter %d eps %v: invalid: %v", iter, eps, err)
			}
			p := s.Period(c)
			if p > exact*(1+eps)*epsTol {
				t.Fatalf("iter %d eps %v: period %v exceeds (1+ε)·%v\nchain=%+v R=%v",
					iter, eps, p, exact, c.Tasks(), r)
			}
			if p < exact-1e-9 {
				t.Fatalf("iter %d eps %v: period %v below exact optimum %v", iter, eps, p, exact)
			}
		}
	}
}

// TestEpsilonBoundVsBrute re-anchors the bound against the independent
// brute-force oracle on small chains, so a bug shared by the exact and the
// ε fill cannot vouch for itself.
func TestEpsilonBoundVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for iter := 0; iter < 80; iter++ {
		n := 1 + rng.Intn(7)
		c := chaingen.Generate(chaingen.Default(n, []float64{0, 0.2, 0.5, 0.8, 1}[rng.Intn(5)]), rng)
		r := core.Res(rng.Intn(4), rng.Intn(4))
		if r.Total() == 0 {
			r = r.With(core.Big, 1)
		}
		want := brute.MinPeriod(c, r)
		for _, eps := range []float64{0.01, 0.05, 0.5} {
			p := ScheduleOpts(c, r, Options{Workers: 1, Epsilon: eps}).Period(c)
			if p > want*(1+eps)*epsTol {
				t.Fatalf("iter %d eps %v: period %v exceeds (1+ε)·brute %v\nchain=%+v R=%v",
					iter, eps, p, want, c.Tasks(), r)
			}
		}
	}
}

// TestEpsilonBoundGeneralFill runs the bound against the k-type general
// fill: the two-type instance through ForceGeneral (differential with the
// fast path's exact optimum) and a genuine three-type instance against its
// own exact general fill.
func TestEpsilonBoundGeneralFill(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(20)
		c2 := chaingen.Generate(chaingen.Default(n, 0.5), rng)
		r2 := core.Res(1+rng.Intn(4), 1+rng.Intn(4))
		exact2 := ScheduleOpts(c2, r2, Options{Workers: 1}).Period(c2)
		c3 := chaingen.Generate(chaingen.Default3(n, 0.5), rng)
		r3 := core.Res(1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		exact3 := ScheduleOpts(c3, r3, Options{}).Period(c3)
		for _, eps := range []float64{0.01, 0.05, 0.3} {
			p2 := ScheduleOpts(c2, r2, Options{Workers: 1, Epsilon: eps, ForceGeneral: true}).Period(c2)
			if p2 > exact2*(1+eps)*epsTol {
				t.Fatalf("iter %d eps %v: general 2-type period %v exceeds (1+ε)·%v", iter, eps, p2, exact2)
			}
			s3 := ScheduleOpts(c3, r3, Options{Epsilon: eps})
			if err := s3.Validate(c3, r3); err != nil {
				t.Fatalf("iter %d eps %v: invalid 3-type: %v", iter, eps, err)
			}
			if p3 := s3.Period(c3); p3 > exact3*(1+eps)*epsTol {
				t.Fatalf("iter %d eps %v: 3-type period %v exceeds (1+ε)·%v", iter, eps, p3, exact3)
			}
		}
	}
}

// TestEpsilonParallelMatchesSerial pins that the ε fill composes with the
// wavefront pool: workers only partition the anti-diagonal sweep, so the
// ε-pruned schedule must be bit-identical at any worker count.
func TestEpsilonParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for iter := 0; iter < 20; iter++ {
		n := 8 + rng.Intn(40)
		c := chaingen.Generate(chaingen.Default(n, 0.5), rng)
		r := core.Res(2+rng.Intn(6), 2+rng.Intn(6))
		for _, eps := range []float64{0.01, 0.1} {
			serial := ScheduleOpts(c, r, Options{Workers: 1, Epsilon: eps})
			par := ScheduleOpts(c, r, Options{Workers: 4, Epsilon: eps})
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("iter %d eps %v: parallel fill diverged\nserial %v\npar    %v", iter, eps, serial, par)
			}
		}
	}
}

// TestEpsilonPrunesWork asserts the beam actually beams: on a chain large
// enough for the grids to engage, the ε fill must visit strictly fewer DP
// candidates than the exact fill (the wall-clock claim of BENCH_PR7.json,
// in its deterministic form).
func TestEpsilonPrunesWork(t *testing.T) {
	c := chaingen.GenerateMany(chaingen.Default(192, 0.5), 11, 1)[0]
	r := core.Res(4, 4)
	count := func(eps float64) int64 {
		reg := obs.NewRegistry()
		ScheduleOpts(c, r, Options{Workers: 1, Epsilon: eps, Metrics: MetricsFrom(reg)})
		return MetricsFrom(reg).DPCandidates.Value()
	}
	exact := count(0)
	pruned := count(0.05)
	if exact == 0 {
		t.Fatal("exact fill reported no candidates — counter wiring broken")
	}
	if pruned >= exact {
		t.Fatalf("eps=0.05 visited %d candidates, exact %d — beam not pruning", pruned, exact)
	}
}

// TestEpsilonNaN pins that a NaN ε cannot poison the fill: it normalizes
// to the exact schedule.
func TestEpsilonNaN(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 20, false), task(8, 16, true), task(4, 9, true)})
	r := core.Res(2, 2)
	want := ScheduleOpts(c, r, Options{Workers: 1})
	got := ScheduleOpts(c, r, Options{Workers: 1, Epsilon: math.NaN()})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NaN epsilon diverged: %v vs %v", got, want)
	}
}
