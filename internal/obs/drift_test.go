package obs

import (
	"bytes"
	"testing"

	"ampsched/internal/trace"
)

func TestDriftFiresOncePerExcursion(t *testing.T) {
	reg := NewRegistry().Sub("herad")
	j := trace.New()
	d := NewDriftDetector([]float64{100}, DriftConfig{Threshold: 0.25, Alpha: 0.5, MinSamples: 2}, reg, j.Root())

	// On-plan samples: never fires.
	for i := 0; i < 5; i++ {
		if d.Observe(0, int64(i), 100) {
			t.Fatalf("fired on on-plan sample %d", i)
		}
	}
	// Step to 200: EWMA(0.5) reaches 150 after one sample (dev 0.5 > 0.25).
	fired := 0
	for i := 5; i < 10; i++ {
		if d.Observe(0, int64(i), 200) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("persistent step fired %d times, want exactly 1", fired)
	}
	if d.Detected() != 1 {
		t.Fatalf("Detected = %d", d.Detected())
	}
	if got := reg.Counter("drift.detected").Value(); got != 1 {
		t.Fatalf("drift.detected counter = %d", got)
	}
	if got := reg.Counter("drift.samples").Value(); got != 10 {
		t.Fatalf("drift.samples counter = %d", got)
	}
	if est := d.Estimate(0); est < 150 || est > 200 {
		t.Fatalf("estimate = %v", est)
	}

	// Recover to plan: re-arms silently, then a second excursion fires again.
	for i := 10; i < 25; i++ {
		if d.Observe(0, int64(i), 100) {
			t.Fatalf("fired while recovering at sample %d", i)
		}
	}
	fired = 0
	for i := 25; i < 30; i++ {
		if d.Observe(0, int64(i), 300) {
			fired++
		}
	}
	if fired != 1 || d.Detected() != 2 {
		t.Fatalf("second excursion fired %d times (total %d), want 1 (2)", fired, d.Detected())
	}

	var buf bytes.Buffer
	if err := j.WriteExplain(&buf); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte(DriftEvent)); n != 2 {
		t.Fatalf("journal holds %d %s events:\n%s", n, DriftEvent, buf.String())
	}
}

func TestDriftMinSamplesGuards(t *testing.T) {
	d := NewDriftDetector([]float64{10}, DriftConfig{MinSamples: 4}, nil, nil)
	for i := 0; i < 3; i++ {
		if d.Observe(0, int64(i), 100) {
			t.Fatalf("fired during warmup sample %d", i)
		}
	}
	if !d.Observe(0, 3, 100) {
		t.Fatal("did not fire once MinSamples reached")
	}
}

func TestDriftBelowEstimateFires(t *testing.T) {
	d := NewDriftDetector([]float64{100}, DriftConfig{Threshold: 0.25, Alpha: 1, MinSamples: 1}, nil, nil)
	if !d.Observe(0, 0, 50) {
		t.Fatal("50 vs planned 100 (dev 0.5) did not fire")
	}
}

func TestDriftZeroPlannedStage(t *testing.T) {
	d := NewDriftDetector([]float64{0}, DriftConfig{Alpha: 1, MinSamples: 1}, nil, nil)
	if d.Observe(0, 0, 0) {
		t.Fatal("zero estimate vs zero plan fired")
	}
	if !d.Observe(0, 1, 5) {
		t.Fatal("positive estimate vs zero plan did not fire")
	}
}

func TestDriftNilAndOutOfRange(t *testing.T) {
	var d *DriftDetector
	if d.Observe(0, 0, 1) || d.Detected() != 0 || d.Estimate(0) != 0 || d.Estimates() != nil {
		t.Error("nil detector not inert")
	}
	real := NewDriftDetector([]float64{1, 2}, DriftConfig{}, nil, nil)
	if real.Observe(-1, 0, 1) || real.Observe(2, 0, 1) {
		t.Error("out-of-range stage fired")
	}
	if got := real.Estimates(); len(got) != 2 {
		t.Errorf("Estimates = %v", got)
	}
}

func TestDriftEstimateGaugesExported(t *testing.T) {
	reg := NewRegistry()
	d := NewDriftDetector([]float64{10, 20}, DriftConfig{Alpha: 1, MinSamples: 1}, reg, nil)
	d.Observe(0, 0, 11)
	d.Observe(1, 0, 19)
	if v := reg.Gauge("drift.estimate.stage0").Value(); v != 11 {
		t.Errorf("stage0 gauge = %v", v)
	}
	if v := reg.Gauge("drift.estimate.stage1").Value(); v != 19 {
		t.Errorf("stage1 gauge = %v", v)
	}
}
