package flight

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestHandlerRoutesIntoRecorderAndSink(t *testing.T) {
	rec := New(16)
	var sink bytes.Buffer
	lg := slog.New(NewHandler(rec, HandlerOptions{Sink: &sink, DropTime: true}))
	lg.Info("plan resolved", "strategy", "herad", "period", 412.5)
	lg.Warn("drift detected", "stage", 1)
	lg.Debug("invisible at the default level")

	evs := rec.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("recorder holds %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Code != CodeLog || rec.Lookup(evs[0].Aux) != "plan resolved" {
		t.Fatalf("first event = %+v (aux %q)", evs[0], rec.Lookup(evs[0].Aux))
	}
	if lvl := slog.Level(evs[1].A); lvl != slog.LevelWarn {
		t.Fatalf("second event level = %v", lvl)
	}

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2:\n%s", len(lines), sink.String())
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil {
		t.Fatalf("sink line is not JSON: %v", err)
	}
	if doc["msg"] != "plan resolved" || doc["strategy"] != "herad" {
		t.Fatalf("sink line = %v", doc)
	}
	if _, hasTime := doc["time"]; hasTime {
		t.Fatal("DropTime left a time attribute in the sink line")
	}
}

func TestHandlerDropTimeIsByteDeterministic(t *testing.T) {
	run := func() string {
		var sink bytes.Buffer
		lg := slog.New(NewHandler(nil, HandlerOptions{Sink: &sink, DropTime: true}))
		lg.Info("frame drop", "seq", 42)
		lg.Error("replica stall", "stage", 3, "replica", 1)
		return sink.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("sink output differs between identical runs:\n%s\n---\n%s", a, b)
	}
}

func TestHandlerLevelFilterAndNilRecorder(t *testing.T) {
	var sink bytes.Buffer
	h := NewHandler(nil, HandlerOptions{Level: slog.LevelError, Sink: &sink, DropTime: true})
	lg := slog.New(h)
	lg.Info("filtered")
	lg.Error("kept")
	if got := sink.String(); strings.Contains(got, "filtered") || !strings.Contains(got, "kept") {
		t.Fatalf("level filter: %q", got)
	}
	// No recorder, no sink: Handle is still a safe no-op.
	lg2 := slog.New(NewHandler(nil, HandlerOptions{}))
	lg2.Info("nowhere")
}

func TestHandlerWithAttrsAndGroupThreadToSink(t *testing.T) {
	rec := New(16)
	var sink bytes.Buffer
	lg := slog.New(NewHandler(rec, HandlerOptions{Sink: &sink, DropTime: true}))
	lg.With("run", 7).WithGroup("pipeline").Info("started", "stages", 3)
	var doc map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(sink.Bytes()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["run"] != float64(7) {
		t.Fatalf("WithAttrs lost: %v", doc)
	}
	grp, ok := doc["pipeline"].(map[string]any)
	if !ok || grp["stages"] != float64(3) {
		t.Fatalf("WithGroup lost: %v", doc)
	}
	// The recorder leg still captured the message through the clones.
	if evs := rec.Snapshot(); len(evs) != 1 || rec.Lookup(evs[0].Aux) != "started" {
		t.Fatalf("recorder events = %+v", rec.Snapshot())
	}
}
