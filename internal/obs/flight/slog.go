package flight

import (
	"context"
	"io"
	"log/slog"
	"sync"
)

// Structured run logging: a log/slog-compatible handler that routes
// every subsystem log record into the flight recorder (as a CodeLog
// event with the message interned and the level in A) and, optionally,
// to a JSONL sink — one JSON object per line, the machine-readable run
// log cmd/ampsched writes behind -log-json. The recorder leg means the
// last N log lines are always part of a flight dump, even when no sink
// was configured; the sink leg is the durable file.

// HandlerOptions configures NewHandler.
type HandlerOptions struct {
	// Level is the minimum record level (defaults to slog.LevelInfo).
	Level slog.Leveler
	// Sink, when non-nil, additionally receives every record as one JSON
	// line (slog's JSON schema). The handler serializes writes, so one
	// file may back handlers shared across goroutines.
	Sink io.Writer
	// DropTime omits the "time" attribute from sink lines, making the
	// JSONL byte-deterministic for deterministic workloads — the mode
	// tests use. Post-mortem production logs keep timestamps.
	DropTime bool
}

// Handler is the slog.Handler. Create with NewHandler.
type Handler struct {
	rec   *Recorder
	level slog.Leveler
	sink  slog.Handler
	mu    *sync.Mutex // serializes sink writes across WithAttrs clones
}

// NewHandler returns a slog handler recording into rec (which may be
// nil: only the sink leg remains) under opts.
func NewHandler(rec *Recorder, opts HandlerOptions) *Handler {
	h := &Handler{rec: rec, level: opts.Level, mu: &sync.Mutex{}}
	if h.level == nil {
		h.level = slog.LevelInfo
	}
	if opts.Sink != nil {
		var replace func(groups []string, a slog.Attr) slog.Attr
		if opts.DropTime {
			replace = func(groups []string, a slog.Attr) slog.Attr {
				if len(groups) == 0 && a.Key == slog.TimeKey {
					return slog.Attr{}
				}
				return a
			}
		}
		h.sink = slog.NewJSONHandler(opts.Sink, &slog.HandlerOptions{
			Level:       h.level,
			ReplaceAttr: replace,
		})
	}
	return h
}

// Enabled implements slog.Handler.
func (h *Handler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// Handle implements slog.Handler: the record's message is interned into
// the recorder (first sight allocates, repeats don't) and the event's A
// carries the level; the full attribute set goes to the sink only — the
// ring keeps fixed-size events.
func (h *Handler) Handle(ctx context.Context, rec slog.Record) error {
	if h.rec != nil {
		h.rec.Record(Event{
			Code:  CodeLog,
			Tick:  rec.Time.UnixNano(),
			Stage: -1,
			Aux:   h.rec.Intern(rec.Message),
			A:     float64(rec.Level),
		})
	}
	if h.sink != nil {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.sink.Handle(ctx, rec)
	}
	return nil
}

// WithAttrs implements slog.Handler. The recorder leg ignores attrs
// (events are fixed-size); the sink leg threads them through.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := *h
	if h.sink != nil {
		out.sink = h.sink.WithAttrs(attrs)
	}
	return &out
}

// WithGroup implements slog.Handler.
func (h *Handler) WithGroup(name string) slog.Handler {
	out := *h
	if h.sink != nil {
		out.sink = h.sink.WithGroup(name)
	}
	return &out
}
