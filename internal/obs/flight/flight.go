// Package flight is the repository's black-box flight recorder: a
// lock-free, fixed-memory ring of the last N significant events — plan
// and replan requests, drift detections, frame drops, replica stalls,
// window samples, faults, routed log records — kept always on so a
// long-running scheduling process is diagnosable *after* something went
// wrong, without having had tracing enabled *before*.
//
// Where internal/trace records everything a run decided (unbounded, for
// offline analysis) and internal/obs records aggregates (counters,
// quantiles), flight keeps a bounded recent-history window of discrete
// events at near-zero cost:
//
//   - Record is lock-free from any goroutine: one atomic ticket
//     fetch-add plus a per-slot seqlock (two atomic stores bracketing
//     plain field writes). No locks, no channels, no allocations —
//     benchreport pins 0 allocs/op on both the enabled and the disabled
//     (nil receiver) path.
//
//   - Memory is fixed at creation: a power-of-two slot array that new
//     events overwrite oldest-first. A recorder never grows, so it can
//     stay attached to a daemon for weeks.
//
//   - Dumps are deterministic. Events carry caller-supplied ticks (sim
//     µs, window index, frame sequence — never a wall clock read by the
//     recorder itself), strings are interned up front and referenced by
//     index, and Dump orders by the global ticket so two dumps of the
//     same event history render byte-identically. Slots caught
//     mid-overwrite are discarded by the seqlock check, never emitted
//     torn.
//
// The repository's observability discipline applies: every method is a
// no-op on a nil *Recorder, so call sites are instrumented
// unconditionally and a nil recorder is the disabled sink.
package flight

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Code discriminates the event kinds a Recorder captures. The set is
// closed and ordered: dumps render the code name, and the golden tests
// pin the rendering, so new codes append — they never renumber.
type Code uint8

// The event codes.
const (
	// CodeNone marks an unused slot; Record normalizes it to CodeMark.
	CodeNone Code = iota
	// CodeMark is a generic caller annotation with no dedicated code.
	CodeMark
	// CodePlan is one resolved planning request (strategy.PlanBatch):
	// A = period, B = stage count; Aux names the strategy.
	CodePlan
	// CodeReplan is one warm-started incremental re-plan
	// (strategy.ReplanBatch): A = period, B = rows refilled.
	CodeReplan
	// CodeDrift is a drift_detected firing (obs.DriftDetector):
	// A = smoothed estimate, B = planned value.
	CodeDrift
	// CodeFrameDrop is a frame that finished in error and left the
	// pipeline without a usable payload: A = frame sequence.
	CodeFrameDrop
	// CodeStall is a replica blocked on a full downstream buffer
	// (backpressure): A = frame sequence, B = replica index.
	CodeStall
	// CodeWindow is one closed sampling window: A = occupancy or rate,
	// B = weight estimate (producer-defined; see the wiring sites).
	CodeWindow
	// CodeFault is an injected or observed fault (desim weight steps,
	// soak-harness chaos): A/B are fault-specific.
	CodeFault
	// CodeLog is a structured log record routed in by the slog Handler:
	// A = level, Aux holds the interned message.
	CodeLog

	numCodes
)

var codeNames = [numCodes]string{
	CodeNone:      "none",
	CodeMark:      "mark",
	CodePlan:      "plan",
	CodeReplan:    "replan",
	CodeDrift:     "drift",
	CodeFrameDrop: "frame_drop",
	CodeStall:     "stall",
	CodeWindow:    "window",
	CodeFault:     "fault",
	CodeLog:       "log",
}

// String returns the code's dump name.
func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "code" + strconv.Itoa(int(c))
}

// Event is one recorded flight event. Seq is the recorder-assigned
// global ticket (monotone across all goroutines); Tick is the caller's
// clock (sim µs, window index, frame sequence — the producer chooses and
// documents the unit); Stage is the pipeline stage the event concerns
// (-1 when not stage-scoped); Aux is an interned-string index (see
// Recorder.Intern; 0 means none); A and B are code-specific payloads.
type Event struct {
	Seq   uint64
	Tick  int64
	Code  Code
	Stage int32
	Aux   uint32
	A, B  float64
}

// slot is one ring cell: a seqlock (begin/commit ticket pair) around the
// event fields. A reader accepts a slot only when commit == begin and
// both equal a completed ticket — a writer racing the read leaves begin
// ahead of commit, so torn copies are detected and discarded. Every
// field is individually atomic: the seqlock alone guarantees cross-field
// consistency, but atomic accesses keep the pattern free of data races
// in the Go memory model (and under -race), not just correct on x86.
type slot struct {
	begin  atomic.Uint64 // ticket of the writer that claimed the slot
	commit atomic.Uint64 // ticket once the write completed
	tick   atomic.Int64
	code   atomic.Uint32
	stage  atomic.Int32
	aux    atomic.Uint32
	a, b   atomic.Uint64 // float64 bits
}

// DefaultCap is the ring capacity used when a non-positive one is
// requested: 4096 events is hours of significant-event history for a
// streaming pipeline while costing ~256 KiB of fixed memory.
const DefaultCap = 4096

// Recorder is the fixed-memory event ring. Create with New; a nil
// *Recorder is the disabled sink — every method is a no-op and Record
// stays allocation-free.
type Recorder struct {
	slots  []slot
	mask   uint64
	ticket atomic.Uint64

	// intern is the string table behind Event.Aux. Interning happens at
	// setup time (strategy names, log messages on first sight), never on
	// the hot Record path, which only carries the index.
	internMu sync.RWMutex
	interned []string
	internIx map[string]uint32
}

// New returns a recorder keeping the last capacity events (rounded up to
// a power of two; ≤ 0 selects DefaultCap).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{
		slots:    make([]slot, n),
		mask:     uint64(n - 1),
		interned: []string{""}, // index 0 = none
		internIx: map[string]uint32{},
	}
}

// Cap returns the ring capacity (0 on a nil receiver).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns the number of events ever recorded, including ones the
// ring has since overwritten (0 on a nil receiver).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.ticket.Load()
}

// Intern registers s in the recorder's string table and returns its
// index for Event.Aux. Interning the same string twice returns the same
// index. Call it at setup time — it takes a lock and may allocate; the
// Record path never does either. A nil receiver returns 0 (the "none"
// index).
func (r *Recorder) Intern(s string) uint32 {
	if r == nil || s == "" {
		return 0
	}
	r.internMu.RLock()
	ix, ok := r.internIx[s]
	r.internMu.RUnlock()
	if ok {
		return ix
	}
	r.internMu.Lock()
	defer r.internMu.Unlock()
	if ix, ok := r.internIx[s]; ok {
		return ix
	}
	ix = uint32(len(r.interned))
	r.interned = append(r.interned, s)
	r.internIx[s] = ix
	return ix
}

// Lookup resolves an interned index back to its string ("" for 0,
// out-of-range, or a nil receiver).
func (r *Recorder) Lookup(ix uint32) string {
	if r == nil || ix == 0 {
		return ""
	}
	r.internMu.RLock()
	defer r.internMu.RUnlock()
	if int(ix) >= len(r.interned) {
		return ""
	}
	return r.interned[ix]
}

// Record appends one event, overwriting the oldest when the ring is
// full. e.Seq is ignored (the recorder assigns the global ticket);
// e.Code zero normalizes to CodeMark. Lock-free and allocation-free;
// safe from any number of goroutines; no-op on a nil receiver.
//
// The slot protocol is a per-slot seqlock: begin is stamped before the
// field writes, commit after. Two writers only ever contend on the same
// slot when the ring wraps fully between their ticket grabs (the older
// event was lost either way); readers discard slots whose begin/commit
// pair doesn't match, so a torn mix of two events is never emitted.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.Code == CodeNone {
		e.Code = CodeMark
	}
	t := r.ticket.Add(1) // tickets are 1-based: 0 means "never written"
	s := &r.slots[(t-1)&r.mask]
	s.begin.Store(t)
	s.tick.Store(e.Tick)
	s.code.Store(uint32(e.Code))
	s.stage.Store(e.Stage)
	s.aux.Store(e.Aux)
	s.a.Store(math.Float64bits(e.A))
	s.b.Store(math.Float64bits(e.B))
	s.commit.Store(t)
}

// Snapshot copies the live window: every consistently-readable event,
// ordered by ascending Seq (oldest first). Writers keep running during
// the copy; slots mid-overwrite are skipped. Nil receiver → nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for {
			c := s.commit.Load()
			if c == 0 {
				break // never written
			}
			ev := Event{
				Seq:   c,
				Tick:  s.tick.Load(),
				Code:  Code(s.code.Load()),
				Stage: s.stage.Load(),
				Aux:   s.aux.Load(),
				A:     math.Float64frombits(s.a.Load()),
				B:     math.Float64frombits(s.b.Load()),
			}
			if s.begin.Load() == c && s.commit.Load() == c {
				out = append(out, ev)
				break
			}
			// A writer was mid-flight; once its commit lands the stamps
			// agree again. Retry then — the loop terminates because a slot
			// is rewritten at most once per full ring wrap.
			if s.commit.Load() == c {
				break // begin moved but commit didn't: discard, writer active
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteDump renders the current window as the deterministic flight-dump
// text: one line per event, ascending Seq, fixed field order, floats in
// Go's shortest-round-trip form. Two dumps of the same recorded history
// are byte-identical — the golden-test contract. A nil receiver writes
// only the empty header.
func (r *Recorder) WriteDump(w io.Writer) error {
	events := r.Snapshot()
	if _, err := fmt.Fprintf(w, "# flight dump: %d event(s), %d recorded, cap %d\n",
		len(events), r.Total(), r.Cap()); err != nil {
		return err
	}
	for _, e := range events {
		if err := writeEvent(w, r, e); err != nil {
			return err
		}
	}
	return nil
}

func writeEvent(w io.Writer, r *Recorder, e Event) error {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var err error
	if aux := r.Lookup(e.Aux); aux != "" {
		_, err = fmt.Fprintf(w, "#%d tick=%d %s stage=%d a=%s b=%s aux=%q\n",
			e.Seq, e.Tick, e.Code, e.Stage, f(e.A), f(e.B), aux)
	} else {
		_, err = fmt.Fprintf(w, "#%d tick=%d %s stage=%d a=%s b=%s\n",
			e.Seq, e.Tick, e.Code, e.Stage, f(e.A), f(e.B))
	}
	return err
}

// CountByCode tallies the live window per code — the summary /debug/flightz
// prints above the dump and tests assert on. Nil receiver → zero array.
func (r *Recorder) CountByCode() [numCodes]int {
	var out [numCodes]int
	for _, e := range r.Snapshot() {
		if int(e.Code) < len(out) {
			out[e.Code]++
		}
	}
	return out
}

// NumCodes is the number of defined event codes (the length of the
// CountByCode array).
const NumCodes = int(numCodes)
