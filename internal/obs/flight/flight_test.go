package flight

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsDisabledSink(t *testing.T) {
	var r *Recorder
	r.Record(Event{Code: CodeDrift, A: 1})
	if r.Total() != 0 || r.Cap() != 0 {
		t.Fatalf("nil recorder total=%d cap=%d", r.Total(), r.Cap())
	}
	if r.Snapshot() != nil {
		t.Fatal("nil recorder snapshot not nil")
	}
	if r.Intern("x") != 0 || r.Lookup(1) != "" {
		t.Fatal("nil recorder interned")
	}
	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 event(s)") {
		t.Fatalf("nil dump = %q", buf.String())
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Code: CodeWindow, Tick: int64(i), Stage: int32(i % 2), A: float64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("snapshot has %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) || e.Tick != int64(i) || e.A != float64(i) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(4) // capacity rounds to 4
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Record(Event{Tick: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("live window has %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("window = %v..%v, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultCap}, {-1, DefaultCap}, {1, 1}, {3, 4}, {5, 8}, {4096, 4096}} {
		if got := New(tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestCodeZeroNormalizesToMark(t *testing.T) {
	r := New(2)
	r.Record(Event{})
	if evs := r.Snapshot(); len(evs) != 1 || evs[0].Code != CodeMark {
		t.Fatalf("snapshot = %+v", r.Snapshot())
	}
}

func TestInternRoundTrip(t *testing.T) {
	r := New(4)
	a := r.Intern("herad")
	b := r.Intern("otac_b")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("intern indices: %d, %d", a, b)
	}
	if r.Intern("herad") != a {
		t.Fatal("re-interning changed the index")
	}
	if r.Lookup(a) != "herad" || r.Lookup(b) != "otac_b" {
		t.Fatalf("lookup: %q, %q", r.Lookup(a), r.Lookup(b))
	}
	if r.Lookup(0) != "" || r.Lookup(999) != "" {
		t.Fatal("bad index resolved")
	}
}

func TestWriteDumpIsDeterministic(t *testing.T) {
	r := New(16)
	aux := r.Intern("herad")
	r.Record(Event{Code: CodePlan, Tick: 1, Stage: -1, Aux: aux, A: 412.5, B: 3})
	r.Record(Event{Code: CodeDrift, Tick: 7, Stage: 1, A: 240.25, B: 120})
	r.Record(Event{Code: CodeStall, Tick: 9, Stage: 0, A: 42, B: 1})
	dump := func() string {
		var buf bytes.Buffer
		if err := r.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := dump(), dump()
	if a != b {
		t.Fatalf("dumps differ:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{
		"# flight dump: 3 event(s), 3 recorded, cap 16",
		`#1 tick=1 plan stage=-1 a=412.5 b=3 aux="herad"`,
		"#2 tick=7 drift stage=1 a=240.25 b=120",
		"#3 tick=9 stall stage=0 a=42 b=1",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("dump missing %q:\n%s", want, a)
		}
	}
}

func TestConcurrentRecordersNeverEmitTornEvents(t *testing.T) {
	// Hammer a tiny ring from many goroutines while snapshotting: every
	// surviving event must be internally consistent (A == Tick encodes the
	// writer's payload), and sequence numbers must be strictly increasing.
	r := New(8)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Snapshot()
			for i, e := range evs {
				if float64(e.Tick) != e.A {
					t.Errorf("torn event: %+v", e)
					return
				}
				if i > 0 && evs[i-1].Seq >= e.Seq {
					t.Errorf("non-increasing seq: %v then %v", evs[i-1].Seq, e.Seq)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				r.Record(Event{Code: CodeWindow, Tick: v, A: float64(v)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
}

func TestCountByCode(t *testing.T) {
	r := New(16)
	r.Record(Event{Code: CodeDrift})
	r.Record(Event{Code: CodeDrift})
	r.Record(Event{Code: CodeStall})
	counts := r.CountByCode()
	if counts[CodeDrift] != 2 || counts[CodeStall] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	var nilRec *Recorder
	if c := nilRec.CountByCode(); c != ([NumCodes]int{}) {
		t.Fatalf("nil counts = %v", c)
	}
}

func TestRecordIsAllocationFree(t *testing.T) {
	r := New(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Event{Code: CodeWindow, Tick: 1, A: 0.5})
	})
	if allocs != 0 {
		t.Fatalf("enabled Record allocates %v/op, want 0", allocs)
	}
	var nilRec *Recorder
	allocs = testing.AllocsPerRun(1000, func() {
		nilRec.Record(Event{Code: CodeWindow, Tick: 1, A: 0.5})
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v/op, want 0", allocs)
	}
}

func TestCodeString(t *testing.T) {
	if CodeDrift.String() != "drift" || CodeFrameDrop.String() != "frame_drop" {
		t.Fatalf("code names: %s, %s", CodeDrift, CodeFrameDrop)
	}
	if Code(200).String() != "code200" {
		t.Fatalf("out-of-range code = %s", Code(200))
	}
}
