package obs

import (
	"sync"
	"testing"
)

func TestSeriesRingSemantics(t *testing.T) {
	s := NewSeries(4)
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatalf("fresh series not empty: len=%d total=%d", s.Len(), s.Total())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported a point")
	}
	for i := 0; i < 6; i++ {
		s.Append(int64(i), float64(10*i))
	}
	if s.Len() != 4 || s.Total() != 6 {
		t.Fatalf("after 6 appends into cap 4: len=%d total=%d", s.Len(), s.Total())
	}
	got := s.Tail(0)
	want := []Point{{2, 20}, {3, 30}, {4, 40}, {5, 50}}
	if len(got) != len(want) {
		t.Fatalf("tail = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tail[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if last, ok := s.Last(); !ok || last != (Point{5, 50}) {
		t.Errorf("Last = %v/%v, want {5 50}/true", last, ok)
	}
	if tail2 := s.Tail(2); len(tail2) != 2 || tail2[0] != (Point{4, 40}) || tail2[1] != (Point{5, 50}) {
		t.Errorf("Tail(2) = %v", tail2)
	}
	if over := s.Tail(100); len(over) != 4 {
		t.Errorf("Tail(100) returned %d points, want 4", len(over))
	}
}

func TestSeriesDefaultCapAndRegistry(t *testing.T) {
	s := NewSeries(0)
	for i := 0; i < DefaultSeriesCap+5; i++ {
		s.Append(int64(i), 1)
	}
	if s.Len() != DefaultSeriesCap {
		t.Fatalf("len = %d, want %d", s.Len(), DefaultSeriesCap)
	}
	r := NewRegistry()
	if r.Series("x", 8) != r.Series("x", 99) {
		t.Error("same name returned different series")
	}
	r.Series("x", 8).Append(7, 1.5)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindSeries || snap[0].Count != 1 ||
		snap[0].Value != 1.5 || len(snap[0].Points) != 1 || snap[0].Points[0] != (Point{7, 1.5}) {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.Append(1, 2)
	if s.Len() != 0 || s.Total() != 0 || s.Tail(3) != nil {
		t.Error("nil series not inert")
	}
	if _, ok := s.Last(); ok {
		t.Error("nil series has a last point")
	}
	var r *Registry
	if r.Series("x", 4) != nil {
		t.Error("nil registry returned a series")
	}
}

func TestSeriesDisabledAndEnabledAllocs(t *testing.T) {
	var nilS *Series
	if n := testing.AllocsPerRun(100, func() { nilS.Append(1, 2) }); n != 0 {
		t.Errorf("nil Append allocates %v/op", n)
	}
	s := NewSeries(16)
	if n := testing.AllocsPerRun(100, func() { s.Append(1, 2) }); n != 0 {
		t.Errorf("enabled Append allocates %v/op", n)
	}
}

func TestSeriesConcurrentAppend(t *testing.T) {
	s := NewSeries(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Append(int64(g), float64(i))
				s.Tail(4)
				s.Last()
			}
		}(g)
	}
	wg.Wait()
	if s.Total() != 8000 || s.Len() != 32 {
		t.Fatalf("total=%d len=%d after concurrent appends", s.Total(), s.Len())
	}
}

func TestNameTableInternsAndNeverAllocatesOnHit(t *testing.T) {
	nt := NewNameTable("streampu.occupancy.stage")
	if nt.Name(3) != "streampu.occupancy.stage3" || nt.Name(0) != "streampu.occupancy.stage0" {
		t.Fatalf("names = %q %q", nt.Name(3), nt.Name(0))
	}
	if nt.Name(12) != nt.Name(12) {
		t.Fatal("interned name not stable")
	}
	if nt.Name(-1) != "streampu.occupancy.stage" {
		t.Fatalf("negative index = %q", nt.Name(-1))
	}
	nt.Name(31) // warm
	if n := testing.AllocsPerRun(100, func() { _ = nt.Name(31) }); n != 0 {
		t.Errorf("interned lookup allocates %v/op", n)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = nt.Name(i % 40)
			}
		}(g)
	}
	wg.Wait()
}
