package obs

import "sync"

// Windowed time series: a fixed-capacity ring buffer of (tick, value)
// points. Where a Gauge only remembers the last write, a Series keeps the
// recent history — the substrate for live occupancy and weight-estimate
// views (/statusz tails, ampsched -watch) and for the drift detector's
// windowed inputs. The ring never grows after creation, so the append
// path stays allocation-free, and snapshots replay points oldest-first
// in append order, keeping exports of deterministic workloads
// byte-identical.

// Point is one sample of a Series: a caller-defined tick (sample index,
// sim time, wall ns — the producer chooses the clock) and the value.
type Point struct {
	Tick  int64   `json:"tick"`
	Value float64 `json:"value"`
}

// Series is a fixed-capacity ring buffer of points. Create via
// Registry.Series (or NewSeries for a standalone buffer); a nil *Series
// is the disabled sink — every method is a no-op.
type Series struct {
	mu    sync.Mutex
	buf   []Point
	head  int   // index of the oldest point
	n     int   // live points, ≤ len(buf)
	total int64 // points ever appended
}

// DefaultSeriesCap is the ring capacity used when a non-positive one is
// requested: enough history for a few minutes of second-granularity
// sampling without unbounded growth.
const DefaultSeriesCap = 128

// NewSeries returns a standalone series with the given ring capacity
// (DefaultSeriesCap when cap ≤ 0).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{buf: make([]Point, capacity)}
}

// Append records one point, evicting the oldest when the ring is full.
// No-op on a nil receiver; never allocates.
func (s *Series) Append(tick int64, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	i := s.head + s.n
	if s.n == len(s.buf) {
		s.head++
		if s.head == len(s.buf) {
			s.head = 0
		}
	} else {
		s.n++
	}
	if i >= len(s.buf) {
		i -= len(s.buf)
	}
	s.buf[i] = Point{Tick: tick, Value: v}
	s.total++
	s.mu.Unlock()
}

// Len returns the number of live points (0 on a nil receiver).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Total returns the number of points ever appended, including evicted
// ones (0 on a nil receiver).
func (s *Series) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the most recent point and whether one exists.
func (s *Series) Last() (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	i := s.head + s.n - 1
	if i >= len(s.buf) {
		i -= len(s.buf)
	}
	return s.buf[i], true
}

// Tail returns the last min(n, Len) points oldest-first. n ≤ 0 returns
// the whole live window. Nil receiver → nil.
func (s *Series) Tail(n int) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > s.n {
		n = s.n
	}
	if n == 0 {
		return nil
	}
	out := make([]Point, n)
	start := s.head + s.n - n
	for i := range out {
		j := start + i
		if j >= len(s.buf) {
			j -= len(s.buf)
		}
		out[i] = s.buf[j]
	}
	return out
}
