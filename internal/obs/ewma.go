package obs

import (
	"math"
	"sync/atomic"
)

// Windowed EWMA gauges: exponentially weighted moving averages over a
// stream of samples (EWMA) and over per-window event rates (Rate). Both
// are lock-free — a CAS loop over the packed float — and allocation-free
// on the update path, and both are deterministic for a deterministic
// sample stream: the fold order is the caller's call order.

// EWMA smooths a sample stream: after n updates its value is
// α·vₙ + (1−α)·value_{n−1}, seeded by the first sample. Create via
// Registry.EWMA or NewEWMA; a nil *EWMA is the disabled sink.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
	n     atomic.Int64
}

// DefaultEWMAAlpha is the smoothing factor used when a non-positive or
// out-of-range one is requested: each new sample carries 20% weight, so
// the estimate reaches ~90% of a level shift within ten samples.
const DefaultEWMAAlpha = 0.2

// NewEWMA returns a standalone EWMA with the given smoothing factor
// (DefaultEWMAAlpha when alpha is outside (0, 1]).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		alpha = DefaultEWMAAlpha
	}
	return &EWMA{alpha: alpha}
}

// Update folds one sample into the average. The first sample seeds the
// value directly. No-op on a nil receiver; never allocates. Concurrent
// updates are safe but fold in scheduling order — producers that need a
// deterministic estimate must serialize their updates (the repository's
// samplers do).
func (e *EWMA) Update(v float64) {
	if e == nil {
		return
	}
	if e.n.Add(1) == 1 {
		e.bits.Store(math.Float64bits(v))
		return
	}
	for {
		old := e.bits.Load()
		next := e.alpha*v + (1-e.alpha)*math.Float64frombits(old)
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average (0 before any update or on a nil
// receiver).
func (e *EWMA) Value() float64 {
	if e == nil {
		return 0
	}
	return math.Float64frombits(e.bits.Load())
}

// Count returns the number of samples folded in (0 on a nil receiver).
func (e *EWMA) Count() int64 {
	if e == nil {
		return 0
	}
	return e.n.Load()
}

// Rate is a windowed EWMA rate gauge: producers Mark events as they
// happen, a sampler calls Tick at window boundaries with the window's
// tick width, and Value reports the EWMA-smoothed events-per-tick rate.
// The tick unit is the caller's clock (sim time, wall ns, sample index).
// Create via Registry.Rate or NewRate; a nil *Rate is the disabled sink.
type Rate struct {
	marks atomic.Int64 // events since the last Tick
	total atomic.Int64 // events ever marked
	ewma  *EWMA
}

// NewRate returns a standalone rate gauge with the given EWMA smoothing
// factor (DefaultEWMAAlpha when out of range).
func NewRate(alpha float64) *Rate { return &Rate{ewma: NewEWMA(alpha)} }

// Mark records n events. No-op on a nil receiver; never allocates.
func (r *Rate) Mark(n int64) {
	if r == nil {
		return
	}
	r.marks.Add(n)
	r.total.Add(n)
}

// Tick closes one window of the given width (in the caller's tick unit),
// folds the window's events-per-tick into the EWMA and resets the window
// counter. Degenerate widths — zero, negative, NaN, or infinite — return
// 0 and leave both the window counter and the EWMA untouched, so a
// zero-duration window (two samples on the same tick) can never poison
// the smoothed rate with NaN or Inf. Returns the instantaneous window
// rate (0 on a nil receiver).
func (r *Rate) Tick(width float64) float64 {
	// "!(width > 0)" rather than "width <= 0": NaN fails both orderings,
	// so the negated form rejects NaN widths too.
	if r == nil || !(width > 0) || math.IsInf(width, 1) {
		return 0
	}
	inst := float64(r.marks.Swap(0)) / width
	r.ewma.Update(inst)
	return inst
}

// Value returns the smoothed events-per-tick rate (0 on a nil receiver).
func (r *Rate) Value() float64 {
	if r == nil {
		return 0
	}
	return r.ewma.Value()
}

// Total returns the number of events ever marked (0 on a nil receiver).
func (r *Rate) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}
