package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"
)

// Run-report export: the machine-readable metrics.json that
// cmd/experiments writes next to its outputs and cmd/ampsched emits in
// -stats -json mode. The series section is deterministic for identical
// workloads (sorted names, order-independent counter sums); timestamps,
// timer totals and the runtime section are host-dependent by nature and
// are what determinism comparisons must normalize away.

// ReportSchema is the metrics.json schema version, bumped on every
// incompatible change to Report's shape.
const ReportSchema = 1

// RuntimeInfo describes the Go runtime the report was produced under.
// Every field is host-dependent.
type RuntimeInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Memory statistics of the producing process (runtime.MemStats).
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	SysBytes        uint64 `json:"sys_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

// Report is one run's metric export: every registered series plus the
// producing tool and runtime.
type Report struct {
	Schema          int         `json:"schema"`
	Tool            string      `json:"tool"`
	TimestampUnixNs int64       `json:"timestamp_unix_ns"`
	Runtime         RuntimeInfo `json:"runtime"`
	Series          []Sample    `json:"series"`
}

// NewReport snapshots r into a report stamped with the producing tool,
// the current time and the Go runtime state.
func NewReport(tool string, r *Registry) Report {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Report{
		Schema:          ReportSchema,
		Tool:            tool,
		TimestampUnixNs: time.Now().UnixNano(),
		Runtime: RuntimeInfo{
			GoVersion:       runtime.Version(),
			GOOS:            runtime.GOOS,
			GOARCH:          runtime.GOARCH,
			NumCPU:          runtime.NumCPU(),
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			HeapAllocBytes:  ms.HeapAlloc,
			TotalAllocBytes: ms.TotalAlloc,
			SysBytes:        ms.Sys,
			NumGC:           ms.NumGC,
		},
		Series: r.Snapshot(),
	}
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes NewReport(tool, r) to path.
func WriteFile(path, tool string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := NewReport(tool, r).WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
