package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(1.5)
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	tm := r.Timer("t")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 5*time.Millisecond {
		t.Errorf("timer = %d obs / %v", tm.Count(), tm.Total())
	}
	h := r.Histogram("h", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
}

func TestHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name returned different counters")
	}
	if r.Sub("a").Counter("x") != r.Sub("a").Counter("x") {
		t.Error("same scoped name returned different counters")
	}
	if r.Counter("x") == r.Sub("a").Counter("x") {
		t.Error("scoped and unscoped name share a counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("dup")
}

func TestNilRegistryAndHandlesAreNoops(t *testing.T) {
	var r *Registry
	m := r.Sub("scope")
	if m != nil {
		t.Fatal("Sub of nil registry is not nil")
	}
	m.Counter("c").Inc()
	m.Counter("c").Add(3)
	m.Gauge("g").Set(1)
	m.Timer("t").Observe(time.Second)
	m.Timer("t").Start()()
	m.Histogram("h", DurationBucketsUs).Observe(7)
	if got := m.Snapshot(); got != nil {
		t.Errorf("nil snapshot = %v", got)
	}
	if m.Counter("c").Value() != 0 || m.Gauge("g").Value() != 0 ||
		m.Timer("t").Count() != 0 || m.Histogram("h", nil).Count() != 0 {
		t.Error("nil handles returned non-zero values")
	}
}

// TestDisabledPathAllocatesNothing pins the core obs guarantee: with a
// nil registry, the full handle-lookup-and-update sequence used by the
// instrumented schedulers performs zero heap allocations.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(200, func() {
		m := r.Sub("fertac")
		m.Counter("schedule.calls").Inc()
		m.Counter("sched.search.iterations").Add(17)
		m.Gauge("planbatch.workers").Set(8)
		m.Timer("schedule.ns").Start()()
		m.Histogram("planbatch.request_us", DurationBucketsUs).Observe(12)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f per run, want 0", allocs)
	}
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(2)
	r.Gauge("a.gauge").Set(0.25)
	r.Timer("m.timer").Observe(time.Microsecond)
	r.Histogram("h.hist", []float64{1, 2}).Observe(5)
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	want := []string{"a.gauge", "h.hist", "m.timer", "z.count"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", names, want)
		}
	}
	if snap[0].Kind != KindGauge || snap[0].Value != 0.25 {
		t.Errorf("gauge sample %+v", snap[0])
	}
	if snap[1].Kind != KindHistogram || snap[1].Overflow != 1 || len(snap[1].Buckets) != 2 {
		t.Errorf("histogram sample %+v", snap[1])
	}
	if snap[2].Kind != KindTimer || snap[2].Count != 1 || snap[2].TotalNs != 1000 {
		t.Errorf("timer sample %+v", snap[2])
	}
	if snap[3].Kind != KindCounter || snap[3].Count != 2 {
		t.Errorf("counter sample %+v", snap[3])
	}
}

// TestConcurrentUpdates exercises shared handles from many goroutines —
// run with -race, it doubles as the data-race check for the atomic
// update paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("c").Inc()
				r.Sub("s").Counter("c").Add(2)
				r.Gauge("g").Set(float64(i))
				r.Timer("t").Observe(time.Nanosecond)
				r.Histogram("h", []float64{500}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Sub("s").Counter("c").Value(); got != 2*workers*each {
		t.Errorf("scoped counter = %d, want %d", got, 2*workers*each)
	}
	if got := r.Timer("t").Count(); got != workers*each {
		t.Errorf("timer count = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"HeRAD":          "herad",
		"2CATAC":         "2catac",
		"2CATAC (memo)":  "2catac_memo",
		"OTAC (B)":       "otac_b",
		"OTAC (L)":       "otac_l",
		"FERTAC":         "fertac",
		"Brute":          "brute",
		"  weird--Name ": "weird_name",
	} {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReportJSON(t *testing.T) {
	r := NewRegistry()
	r.Sub("herad").Counter("dp.cells").Add(42)
	r.Gauge("planbatch.workers").Set(4)
	var buf bytes.Buffer
	if err := NewReport("test", r).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != ReportSchema || rep.Tool != "test" {
		t.Errorf("header %+v", rep)
	}
	if rep.Runtime.GoVersion == "" || rep.Runtime.NumCPU <= 0 {
		t.Errorf("runtime section %+v", rep.Runtime)
	}
	if len(rep.Series) != 2 || rep.Series[0].Name != "herad.dp.cells" || rep.Series[0].Count != 42 {
		t.Errorf("series %+v", rep.Series)
	}
	// The series section of two snapshots of the same registry must be
	// byte-identical (the determinism contract).
	a, _ := json.Marshal(r.Snapshot())
	b, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(a, b) {
		t.Error("snapshots of an unchanged registry differ")
	}
}
