package obs

import (
	"math"
	"testing"
)

func TestLogHistogramCountAbove(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{1, 10, 100, 1000, 10000} {
		h.Observe(v)
	}
	h.Observe(0)  // zero bucket: never "above" any threshold
	h.Observe(-5) // ditto
	cases := []struct {
		threshold float64
		want      int64
	}{
		{0, 5},     // non-positive threshold counts every positive observation
		{-1, 5},    // ditto
		{1, 4},     // 10, 100, 1000, 10000
		{50, 3},    // bucket-granular: 100 and above
		{1000, 1},  // only 10000
		{20000, 0}, // nothing above
	}
	for _, tc := range cases {
		if got := h.CountAbove(tc.threshold); got != tc.want {
			t.Errorf("CountAbove(%v) = %d, want %d", tc.threshold, got, tc.want)
		}
	}
	var nilH *LogHistogram
	if nilH.CountAbove(1) != 0 {
		t.Error("nil CountAbove != 0")
	}
}

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("streampu.frame_latency_us:p95<=5000")
	if err != nil {
		t.Fatal(err)
	}
	want := SLO{Name: "streampu_frame_latency_us_p95", Metric: "streampu.frame_latency_us", Quantile: 0.95, Threshold: 5000}
	if s != want {
		t.Errorf("parsed = %+v, want %+v", s, want)
	}

	s, err = ParseSLO("frame lat=streampu.frame_latency_us:p99.9<=1e4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "frame_lat" || math.Abs(s.Quantile-0.999) > 1e-12 || s.Threshold != 1e4 {
		t.Errorf("named spec parsed = %+v", s)
	}

	for _, bad := range []string{
		"", "nometric", "m:p95", "m:95<=10", "m:p0<=10", "m:p100<=10",
		"m:p95<=-1", "m:p95<=zero", ":p95<=10", "m:pNaN<=10",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("a.lat:p95<=100, b.lat:p99<=200")
	if err != nil || len(slos) != 2 || slos[1].Metric != "b.lat" {
		t.Fatalf("slos = %+v, err = %v", slos, err)
	}
	if slos, err := ParseSLOs("  "); err != nil || slos != nil {
		t.Fatalf("empty spec: %+v, %v", slos, err)
	}
	if _, err := ParseSLOs("a.lat:p95<=100,broken"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestSLOEvaluateBurnRate(t *testing.T) {
	reg := NewRegistry()
	h := reg.LogHistogram("plan.latency_us")
	// 100 observations, 20 of them far above a p95<=100 objective:
	// burn = (20/100)/0.05 = 4.
	for i := 0; i < 80; i++ {
		h.Observe(10)
	}
	for i := 0; i < 20; i++ {
		h.Observe(10000)
	}
	slo := SLO{Name: "plan_p95", Metric: "plan.latency_us", Quantile: 0.95, Threshold: 100}
	st := slo.Evaluate(reg)
	if st.Total != 100 || st.Breaches != 20 {
		t.Fatalf("status = %+v", st)
	}
	if math.Abs(st.BurnRate-4) > 1e-9 || st.Met {
		t.Errorf("burn = %v met = %v, want 4 / false", st.BurnRate, st.Met)
	}
	if math.Abs(st.Budget-0.05) > 1e-12 {
		t.Errorf("budget = %v", st.Budget)
	}

	// A compliant histogram burns below 1.
	ok := reg.LogHistogram("ok.latency_us")
	for i := 0; i < 99; i++ {
		ok.Observe(10)
	}
	ok.Observe(10000)
	st = SLO{Name: "ok", Metric: "ok.latency_us", Quantile: 0.95, Threshold: 100}.Evaluate(reg)
	if !st.Met || math.Abs(st.BurnRate-0.2) > 1e-9 {
		t.Errorf("compliant status = %+v", st)
	}
}

func TestSLOEvaluateAbsentMetricIsVacuouslyMet(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("not.a.histogram").Inc()
	for _, metric := range []string{"missing", "not.a.histogram"} {
		st := SLO{Name: "x", Metric: metric, Quantile: 0.95, Threshold: 1}.Evaluate(reg)
		if !st.Met || st.Total != 0 || st.BurnRate != 0 {
			t.Errorf("metric %q status = %+v", metric, st)
		}
	}
	st := SLO{Name: "x", Metric: "any", Quantile: 0.95, Threshold: 1}.Evaluate(nil)
	if !st.Met || st.Budget == 0 {
		t.Errorf("nil-registry status = %+v", st)
	}
	if EvaluateSLOs(reg, nil) != nil {
		t.Error("EvaluateSLOs(nil slos) != nil")
	}
	if got := EvaluateSLOs(reg, []SLO{{Metric: "missing", Quantile: 0.9, Threshold: 1}}); len(got) != 1 {
		t.Errorf("EvaluateSLOs = %+v", got)
	}
}
