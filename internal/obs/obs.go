// Package obs is the repository's telemetry spine: a zero-dependency
// metrics layer (counters, gauges, wall-clock timers, fixed-bucket
// histograms) behind a Registry with deterministic snapshot and JSON
// export. The scheduling stack reports algorithm-level cost series
// through it (binary-search probes, DP cells, recursion nodes, memo
// hits), cmd/ampsched renders it behind -stats, and cmd/experiments
// writes it as a machine-readable metrics.json run report.
//
// Two properties shape the design:
//
//   - Nil-safe handles. Every method on every type is a no-op on a nil
//     receiver, and a nil *Registry hands out nil handles. Code is
//     instrumented unconditionally; whether anything is recorded is
//     decided solely by whether a registry was supplied.
//
//   - Allocation-free when disabled. The nil path allocates nothing:
//     Sub returns nil, handle lookups return nil, and updates are a
//     single nil check. BenchmarkObsOverhead (bench_test.go) pins this
//     at 0 allocs/op.
//
// Handle updates are atomic, so concurrent writers (strategy.PlanBatch
// workers, streampu pipeline stages) can share one registry; counter
// sums are order-independent, keeping snapshots of deterministic
// workloads deterministic regardless of scheduling interleavings.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types in snapshots and JSON exports.
type Kind string

// The metric kinds. Timer samples carry wall-clock totals and are
// therefore host-dependent; deterministic comparisons (the metrics.json
// determinism test) exclude them by this kind.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindTimer     Kind = "timer"
	KindHistogram Kind = "histogram"
	// KindLogHistogram marks streaming log-bucketed histograms with
	// mergeable quantile snapshots (loghist.go).
	KindLogHistogram Kind = "loghistogram"
	// KindSeries marks fixed-capacity ring-buffer time series (series.go).
	KindSeries Kind = "series"
	// KindEWMA and KindRate mark the windowed EWMA gauges (ewma.go).
	KindEWMA Kind = "ewma"
	KindRate Kind = "rate"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates wall-clock durations: an observation count and a
// total. Timer samples are host-dependent by nature.
type Timer struct{ count, ns atomic.Int64 }

// Observe records one duration. No-op on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.count.Add(1)
		t.ns.Add(int64(d))
	}
}

var noopStop = func() {}

// Start begins timing and returns the function that records the elapsed
// duration. On a nil receiver it returns a shared no-op (no clock read,
// no allocation).
func (t *Timer) Start() func() {
	if t == nil {
		return noopStop
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations (0 on a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration (0 on a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// DurationBucketsUs is the shared fixed bucket layout for microsecond
// latency histograms: decades from 1 µs to 10 s.
var DurationBucketsUs = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// Histogram counts observations in fixed buckets (upper bounds set at
// registration, plus an implicit overflow bucket). It never rebuckets.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Uint64  // float64 bits, for Prometheus _sum lines
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records v into the first bucket whose bound is ≥ v (or the
// overflow bucket). No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// metric is one registered named series.
type metric struct {
	kind Kind
	c    *Counter
	g    *Gauge
	t    *Timer
	h    *Histogram
	lh   *LogHistogram
	s    *Series
	e    *EWMA
	r    *Rate
}

// store is the shared state behind a Registry and all its Sub views.
type store struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// Registry hands out named metric handles and snapshots them. Create
// one with NewRegistry; derive prefixed views with Sub. A nil *Registry
// is the disabled sink: it returns nil handles and empty snapshots.
type Registry struct {
	store  *store
	prefix string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{store: &store{byName: map[string]*metric{}}}
}

// Sub returns a view of r that prefixes every metric name with
// "prefix." — the per-strategy scoping used by the strategy layer. Sub
// of a nil registry is nil (and allocates nothing).
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{store: r.store, prefix: r.prefix + prefix + "."}
}

func (r *Registry) lookup(name string, kind Kind, mk func() *metric) *metric {
	full := r.prefix + name
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	m, ok := r.store.byName[full]
	if !ok {
		m = mk()
		r.store.byName[full] = m
		return m
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", full, m.kind, kind))
	}
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry → nil counter. It panics when name is already
// registered with a different kind (a programming error).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, func() *metric {
		return &metric{kind: KindCounter, c: &Counter{}}
	}).c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registry → nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, func() *metric {
		return &metric{kind: KindGauge, g: &Gauge{}}
	}).g
}

// Timer returns the timer registered under name, creating it on first
// use. Nil registry → nil timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindTimer, func() *metric {
		return &metric{kind: KindTimer, t: &Timer{}}
	}).t
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls keep the
// original buckets). Nil registry → nil histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, func() *metric {
		return &metric{kind: KindHistogram, h: newHistogram(bounds)}
	}).h
}

// LogHistogram returns the streaming log-bucketed histogram registered
// under name, creating it on first use. Nil registry → nil histogram.
// All LogHistograms share one geometric bucket grid, so any two are
// mergeable.
func (r *Registry) LogHistogram(name string) *LogHistogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindLogHistogram, func() *metric {
		return &metric{kind: KindLogHistogram, lh: NewLogHistogram()}
	}).lh
}

// Series returns the ring-buffer time series registered under name,
// creating it with the given capacity on first use (later calls keep the
// original capacity; ≤ 0 means DefaultSeriesCap). Nil registry → nil
// series.
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindSeries, func() *metric {
		return &metric{kind: KindSeries, s: NewSeries(capacity)}
	}).s
}

// EWMA returns the exponentially weighted moving average registered
// under name, creating it with the given smoothing factor on first use
// (later calls keep the original factor; out-of-range means
// DefaultEWMAAlpha). Nil registry → nil EWMA.
func (r *Registry) EWMA(name string, alpha float64) *EWMA {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindEWMA, func() *metric {
		return &metric{kind: KindEWMA, e: NewEWMA(alpha)}
	}).e
}

// Rate returns the windowed EWMA rate gauge registered under name,
// creating it with the given smoothing factor on first use. Nil registry
// → nil rate.
func (r *Registry) Rate(name string, alpha float64) *Rate {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindRate, func() *metric {
		return &metric{kind: KindRate, r: NewRate(alpha)}
	}).r
}

// Bucket is one histogram bucket of a Sample: the count of observations
// at most LE (non-cumulative per bucket).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Sample is one named series in a snapshot. The populated fields depend
// on Kind: counters use Count; gauges/EWMAs/rates use Value; timers use
// Count and TotalNs; histograms use Count, Sum, Buckets and Overflow;
// log histograms use Count, Sum, Buckets and Quantiles; ring series use
// Count (points ever appended), Value (last point) and Points (the live
// window, oldest first).
type Sample struct {
	Name      string            `json:"name"`
	Kind      Kind              `json:"kind"`
	Count     int64             `json:"count,omitempty"`
	Value     float64           `json:"value,omitempty"`
	TotalNs   int64             `json:"total_ns,omitempty"`
	Sum       float64           `json:"sum,omitempty"`
	Buckets   []Bucket          `json:"buckets,omitempty"`
	Overflow  int64             `json:"overflow,omitempty"`
	Quantiles *QuantileSnapshot `json:"quantiles,omitempty"`
	Points    []Point           `json:"points,omitempty"`
}

// Snapshot returns every registered series sorted by name — a
// deterministic export order for identical workloads. A nil registry
// snapshots empty.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.store.mu.Lock()
	names := make([]string, 0, len(r.store.byName))
	for name := range r.store.byName {
		names = append(names, name)
	}
	metrics := make([]*metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		metrics[i] = r.store.byName[name]
	}
	r.store.mu.Unlock()

	out := make([]Sample, len(names))
	for i, m := range metrics {
		s := Sample{Name: names[i], Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Count = m.c.Value()
		case KindGauge:
			s.Value = m.g.Value()
		case KindTimer:
			s.Count = m.t.Count()
			s.TotalNs = int64(m.t.Total())
		case KindHistogram:
			s.Count = m.h.Count()
			s.Sum = m.h.Sum()
			for j, b := range m.h.bounds {
				s.Buckets = append(s.Buckets, Bucket{LE: b, Count: m.h.counts[j].Load()})
			}
			s.Overflow = m.h.counts[len(m.h.bounds)].Load()
		case KindLogHistogram:
			q := m.lh.Quantiles()
			s.Count = q.Count
			s.Sum = q.Sum
			s.Quantiles = &q
			s.Buckets = m.lh.buckets()
		case KindSeries:
			s.Count = m.s.Total()
			if p, ok := m.s.Last(); ok {
				s.Value = p.Value
			}
			s.Points = m.s.Tail(0)
		case KindEWMA:
			s.Count = m.e.Count()
			s.Value = m.e.Value()
		case KindRate:
			s.Count = m.r.Total()
			s.Value = m.r.Value()
		}
		out[i] = s
	}
	return out
}

// NameTable interns indexed metric names ("streampu.occupancy.stage3"):
// Name(i) builds "prefix<i>" once and returns the cached string on every
// later call, so hot sampling loops that address per-stage gauges or
// series never allocate a name. Safe for concurrent use.
type NameTable struct {
	prefix string
	mu     sync.RWMutex
	names  []string
}

// NewNameTable returns an interner for names of the form prefix+index.
func NewNameTable(prefix string) *NameTable {
	return &NameTable{prefix: prefix}
}

// Name returns the interned "prefix<i>" string. Negative indices return
// the bare prefix.
func (t *NameTable) Name(i int) string {
	if i < 0 {
		return t.prefix
	}
	t.mu.RLock()
	if i < len(t.names) {
		s := t.names[i]
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.names) <= i {
		t.names = append(t.names, t.prefix+strconv.Itoa(len(t.names)))
	}
	return t.names[i]
}

// Slug normalizes a display name ("OTAC (B)", "2CATAC (memo)") into a
// metric-name segment: lowercase, with every run of non-alphanumeric
// characters collapsed to a single underscore.
func Slug(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	pendingSep := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r)
		default:
			pendingSep = true
		}
	}
	return b.String()
}
