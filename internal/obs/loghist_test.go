package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestLogHistogramQuantileErrorBound(t *testing.T) {
	// The bucket grid guarantees ≤ 2^(1/logSubBuckets)−1 relative error at
	// the reported geometric midpoint; allow the full bucket width.
	maxErr := math.Exp2(1.0/logSubBuckets) - 1
	h := NewLogHistogram()
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.Float64()*12 - 2) // ~0.14 .. 22000, log-uniform
		vals = append(vals, v)
		h.Observe(v)
	}
	if h.Count() != 5000 {
		t.Fatalf("count = %d", h.Count())
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if got := h.Sum(); math.Abs(got-sum)/sum > 1e-9 {
		t.Errorf("sum = %v, want %v", got, sum)
	}
	sorted := append([]float64(nil), vals...)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := quantileExact(sorted, q)
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > maxErr {
			t.Errorf("q=%v: got %v, exact %v, rel err %v > %v", q, got, exact, rel, maxErr)
		}
	}
}

func quantileExact(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ { // insertion sort keeps the test dependency-free
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

func TestLogHistogramMergeEquivalence(t *testing.T) {
	a, b, both := NewLogHistogram(), NewLogHistogram(), NewLogHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := math.Exp(rng.Float64() * 10)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	a.Observe(0) // zero bucket merges too
	both.Observe(0)
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != direct %d", a.Count(), both.Count())
	}
	if math.Abs(a.Sum()-both.Sum()) > 1e-6*both.Sum() {
		t.Errorf("merged sum %v != direct %v", a.Sum(), both.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%v: merged %v != direct %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestLogHistogramZeroAndClamp(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(1e-30) // clamps to the first bucket
	h.Observe(1e30)  // clamps to the last bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	// Three non-positive observations → p50 (rank 3 of 5) is the zero bucket.
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %v, want 0", got)
	}
	if got := h.Quantile(1); got < 1e6 {
		t.Errorf("p100 = %v, want clamped top bucket", got)
	}
	bs := h.buckets()
	if len(bs) != 3 || bs[0].LE != 0 || bs[0].Count != 3 {
		t.Errorf("buckets = %+v", bs)
	}
}

func TestLogHistogramEmptyAndNil(t *testing.T) {
	var h *LogHistogram
	h.Observe(3)
	h.Merge(NewLogHistogram())
	NewLogHistogram().Merge(h)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not inert")
	}
	if q := h.Quantiles(); q != (QuantileSnapshot{}) {
		t.Errorf("nil quantiles = %+v", q)
	}
	if q := NewLogHistogram().Quantiles(); q != (QuantileSnapshot{}) {
		t.Errorf("empty quantiles = %+v", q)
	}
}

func TestLogHistogramRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.LogHistogram("lat")
	if h != r.LogHistogram("lat") {
		t.Fatal("same name returned different histograms")
	}
	for _, v := range []float64{100, 200, 400} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindLogHistogram {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := snap[0]
	if s.Count != 3 || s.Sum != 700 || s.Quantiles == nil || s.Quantiles.P50 == 0 {
		t.Errorf("sample = %+v quantiles = %+v", s, s.Quantiles)
	}
	if len(s.Buckets) != 3 {
		t.Errorf("buckets = %+v", s.Buckets)
	}
}

func TestLogHistogramDisabledAndEnabledAllocs(t *testing.T) {
	var nilH *LogHistogram
	if n := testing.AllocsPerRun(100, func() { nilH.Observe(12.5) }); n != 0 {
		t.Errorf("nil Observe allocates %v/op", n)
	}
	h := NewLogHistogram()
	if n := testing.AllocsPerRun(100, func() { h.Observe(12.5) }); n != 0 {
		t.Errorf("enabled Observe allocates %v/op", n)
	}
}

func TestLogHistogramConcurrentObserveAndMerge(t *testing.T) {
	shards := make([]*LogHistogram, 4)
	for i := range shards {
		shards[i] = NewLogHistogram()
	}
	total := NewLogHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 2000; i++ {
				shards[g].Observe(float64(i))
			}
		}(g)
		wg.Add(1)
		go func() { // merge concurrently with observation: must stay race-free
			defer wg.Done()
			total.Merge(shards[0])
			_ = total.Quantile(0.95)
		}()
	}
	wg.Wait()
	final := NewLogHistogram()
	for _, s := range shards {
		final.Merge(s)
	}
	if final.Count() != 8000 {
		t.Fatalf("merged count = %d, want 8000", final.Count())
	}
}
