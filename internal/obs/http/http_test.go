package obshttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ampsched/internal/obs"
)

func sampleRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("herad.dp.cells").Add(42)
	r.Gauge("planbatch.workers").Set(4)
	r.Timer("sched.search.ns").Observe(1500 * time.Nanosecond)
	h := r.Histogram("planbatch.request_us", []float64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // overflow bucket
	return r
}

func TestWriteTextDeterministic(t *testing.T) {
	r := sampleRegistry()
	var a, b bytes.Buffer
	WriteText(&a, r)
	WriteText(&b, r)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two renders of the same state differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"herad_dp_cells 42\n",
		"planbatch_workers 4\n",
		"sched_search_ns_count 1\n",
		"sched_search_ns_total_ns 1500\n",
		`planbatch_request_us_bucket{le="10"} 1` + "\n",
		`planbatch_request_us_bucket{le="100"} 2` + "\n",
		`planbatch_request_us_bucket{le="1000"} 2` + "\n",
		`planbatch_request_us_bucket{le="+Inf"} 3` + "\n",
		"planbatch_request_us_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTextNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	WriteText(&buf, nil)
	if buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q", buf.String())
	}
}

func TestServeEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", "obshttp_test", sampleRegistry())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "herad_dp_cells 42") || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics: code=%d ct=%q body=%q", code, ct, body)
	}

	code, body, ct := get("/metrics.json")
	if code != http.StatusOK || ct != "application/json" {
		t.Errorf("/metrics.json: code=%d ct=%q", code, ct)
	}
	var rep obs.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/metrics.json unmarshal: %v\n%s", err, body)
	}
	if rep.Schema != obs.ReportSchema || rep.Tool != "obshttp_test" || len(rep.Series) == 0 {
		t.Errorf("/metrics.json report: schema=%d tool=%q series=%d",
			rep.Schema, rep.Tool, len(rep.Series))
	}

	if code, body, _ := get("/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code=%d body=%.80q", code, body)
	}

	if code, body, _ := get("/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code=%d body=%.80q", code, body)
	}

	if code, body, _ := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: code=%d body=%q", code, body)
	}

	if code, _, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code=%d, want 404", code)
	}

	if code, body, _ := get("/"); code != http.StatusOK ||
		!strings.Contains(body, "/metrics.json") {
		t.Errorf("/: code=%d body=%q", code, body)
	}
}

func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", "obshttp_test", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("nil-registry /metrics: code=%d body=%q", resp.StatusCode, body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", "t", nil); err == nil {
		t.Fatal("expected error for a bad listen address")
	}
}
