package obshttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ampsched/internal/obs"
)

// fullRegistry exercises every metric kind the exposition knows.
func fullRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("herad.dp.cells").Add(42)
	r.Gauge("planbatch.workers").Set(4)
	r.Timer("sched.search.ns").Observe(1500 * time.Nanosecond)
	h := r.Histogram("planbatch.request_us", []float64{10, 100, 1000})
	h.Observe(5)
	h.Observe(5000)
	lh := r.LogHistogram("streampu.latency_us.stage0")
	for i := 1; i <= 100; i++ {
		lh.Observe(float64(i))
	}
	sr := r.Series("desim.weight.stage0", 8)
	sr.Append(0, 120)
	sr.Append(1, 240)
	r.EWMA("streampu.occupancy_ewma.stage0", 0.2).Update(0.9)
	rate := r.Rate("streampu.fps", 0.2)
	rate.Mark(30)
	rate.Tick(1)
	return r
}

func TestWriteTextIsValidPrometheusExposition(t *testing.T) {
	var buf bytes.Buffer
	WriteText(&buf, fullRegistry())
	out := buf.String()
	for _, want := range []string{
		"# TYPE herad_dp_cells counter\n",
		"# TYPE planbatch_workers gauge\n",
		"# TYPE planbatch_request_us histogram\n",
		"planbatch_request_us_sum 5005\n",
		"# TYPE streampu_latency_us_stage0 summary\n",
		`streampu_latency_us_stage0{quantile="0.5"} `,
		`streampu_latency_us_stage0{quantile="0.95"} `,
		`streampu_latency_us_stage0{quantile="0.99"} `,
		"streampu_latency_us_stage0_sum 5050\n",
		"streampu_latency_us_stage0_count 100\n",
		"# TYPE desim_weight_stage0 gauge\n",
		"desim_weight_stage0 240\n",
		"desim_weight_stage0_samples_total 2\n",
		"# TYPE streampu_occupancy_ewma_stage0 gauge\n",
		"streampu_occupancy_ewma_stage0 0.9\n",
		"# TYPE streampu_fps gauge\n",
		"streampu_fps 30\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if errs := Lint(out); len(errs) != 0 {
		t.Fatalf("lint errors on own exposition:\n%v\n%s", errs, out)
	}
	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	WriteText(&again, fullRegistry())
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of identical state differ")
	}
}

func TestLintRejectsViolations(t *testing.T) {
	cases := map[string]string{
		"bad name":        "# TYPE 9bad counter\n9bad 1\n",
		"uppercase name":  "# TYPE Bad counter\nBad 1\n",
		"bad type":        "# TYPE x histo\nx 1\n",
		"missing type":    "orphan 1\n",
		"bad value":       "# TYPE x counter\nx one\n",
		"bad label":       "# TYPE x gauge\nx{9lbl=\"v\"} 1\n",
		"unparsable":      "# TYPE x gauge\nx = 1\n",
		"duplicate type":  "# TYPE x gauge\n# TYPE x gauge\nx 1\n",
		"unknown comment": "# NOTE x\n",
	}
	for name, text := range cases {
		if errs := Lint(text); len(errs) == 0 {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
	if errs := Lint("# TYPE ok_total counter\nok_total 3\n\n"); len(errs) != 0 {
		t.Errorf("clean text rejected: %v", errs)
	}
	// _count/_sum/_bucket children resolve to their histogram family.
	hist := "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
	if errs := Lint(hist); len(errs) != 0 {
		t.Errorf("histogram family rejected: %v", errs)
	}
}

func TestStatuszEndpoint(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", "obshttp_test", fullRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func() (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/statusz status %d", resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	body, ct := get()
	if ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var doc Statusz
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if doc.Tool != "obshttp_test" || len(doc.Metrics) == 0 {
		t.Fatalf("statusz doc = %+v", doc)
	}
	var sawTail, sawQuantiles bool
	for _, m := range doc.Metrics {
		if m.Kind == obs.KindSeries && len(m.Points) == 2 {
			sawTail = true
		}
		if m.Kind == obs.KindLogHistogram && m.Quantiles != nil && m.Quantiles.P95 > 0 {
			sawQuantiles = true
		}
	}
	if !sawTail || !sawQuantiles {
		t.Errorf("statusz missing tails (%v) or quantiles (%v):\n%s", sawTail, sawQuantiles, body)
	}
	// Scraping unchanged state twice is byte-identical.
	if body2, _ := get(); body2 != body {
		t.Error("two /statusz scrapes of the same state differ")
	}
}

func TestWriteStatuszNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStatusz(&buf, "t", nil); err != nil {
		t.Fatal(err)
	}
	var doc Statusz
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) != 0 {
		t.Errorf("nil registry produced metrics: %+v", doc.Metrics)
	}
}
