// Package obshttp exposes a process's observability surface over HTTP:
// the obs metric registry as plain text (/metrics) and as the canonical
// metrics.json report (/metrics.json), the Go runtime's expvar variables
// (/debug/vars), and the standard pprof profiling endpoints
// (/debug/pprof/...). cmd/ampsched mounts it with -listen so long sweeps
// can be inspected live instead of only through the end-of-run -stats dump.
//
// The package follows the repository's observability discipline: a nil
// registry serves empty (never panics), handlers snapshot on every request
// (no caching, no background goroutines), and the text rendering is
// deterministic — sorted series names, fixed field order — so scraping the
// same state twice yields identical bytes.
package obshttp

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"ampsched/internal/obs"
)

// NewHandler returns the exposition mux for r. tool names the producing
// binary in /metrics.json reports. A nil r serves empty metric sets; the
// debug endpoints work regardless.
func NewHandler(tool string, r *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", index)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.NewReport(tool, r).WriteJSON(w); err != nil {
			// Headers are gone; all we can do is abort the body.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteStatusz(w, tool, r); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// index is the human-facing front page listing the mounted endpoints.
func index(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ampsched observability endpoints:
  /metrics       registry snapshot, Prometheus text exposition
  /metrics.json  registry snapshot, metrics.json report
  /statusz       registry snapshot with series tails and quantiles, JSON
  /debug/vars    expvar JSON
  /debug/pprof/  pprof profiles
`)
}

// WriteText renders r's snapshot in the Prometheus text exposition
// format: every family gets a "# TYPE" line; counters and gauges render
// as single samples, timers as a pair of counters, histograms as
// cumulative "_bucket"/"_sum"/"_count" families, log-bucketed histograms
// as summaries with p50/p95/p99 quantile samples, series as a gauge (last
// point) plus a "_samples_total" counter, and EWMA/rate estimators as
// gauges. Output is sorted by series name and deterministic for identical
// registry states. A nil registry writes nothing.
func WriteText(w interface{ Write([]byte) (int, error) }, r *obs.Registry) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Snapshot() {
		name := textName(s.Name)
		switch s.Kind {
		case obs.KindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n", name)
			fmt.Fprintf(w, "%s %d\n", name, s.Count)
		case obs.KindGauge, obs.KindEWMA, obs.KindRate:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s %s\n", name, f(s.Value))
		case obs.KindTimer:
			fmt.Fprintf(w, "# TYPE %s_count counter\n", name)
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
			fmt.Fprintf(w, "# TYPE %s_total_ns counter\n", name)
			fmt.Fprintf(w, "%s_total_ns %d\n", name, s.TotalNs)
		case obs.KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			cum := int64(0)
			for _, b := range s.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, f(b.LE), cum)
			}
			cum += s.Overflow
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", name, f(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		case obs.KindLogHistogram:
			fmt.Fprintf(w, "# TYPE %s summary\n", name)
			if q := s.Quantiles; q != nil {
				fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", name, f(q.P50))
				fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", name, f(q.P95))
				fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", name, f(q.P99))
			}
			fmt.Fprintf(w, "%s_sum %s\n", name, f(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		case obs.KindSeries:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s %s\n", name, f(s.Value))
			fmt.Fprintf(w, "# TYPE %s_samples_total counter\n", name)
			fmt.Fprintf(w, "%s_samples_total %d\n", name, s.Count)
		}
	}
}

// Statusz is the /statusz document: the full deterministic registry
// snapshot — including series tails and histogram quantiles — plus the
// producing tool's name. It deliberately carries no timestamp so two
// scrapes of the same state are byte-identical.
type Statusz struct {
	Tool    string       `json:"tool"`
	Metrics []obs.Sample `json:"metrics"`
}

// WriteStatusz writes the /statusz JSON document for r. A nil registry
// yields an empty metric list.
func WriteStatusz(w interface{ Write([]byte) (int, error) }, tool string, r *obs.Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Statusz{Tool: tool, Metrics: r.Snapshot()})
}

// textName maps a dotted series name to the exposition-format convention:
// dots become underscores. Registry names are already slug segments joined
// by dots, so no further escaping is needed.
func textName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// Server is a running exposition listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving NewHandler(tool, r) on addr (e.g. "127.0.0.1:0",
// ":8080") in a background goroutine and returns the running server. The
// caller owns the returned server and must Close it.
func Serve(addr, tool string, r *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(tool, r)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the listener's resolved address — the way to recover the
// port after binding ":0".
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	return s.srv.Close()
}
