// Package obshttp exposes a process's observability surface over HTTP:
// the obs metric registry as plain text (/metrics) and as the canonical
// metrics.json report (/metrics.json), SLO burn-rate families appended
// to /metrics, liveness and readiness probes (/healthz, /readyz), the
// black-box flight recorder dump (/debug/flightz), the Go runtime's
// expvar variables (/debug/vars), and the standard pprof profiling
// endpoints (/debug/pprof/...). cmd/ampsched mounts it with -listen so
// long sweeps can be inspected live instead of only through the
// end-of-run -stats dump.
//
// The package follows the repository's observability discipline: a nil
// registry serves empty (never panics), handlers snapshot on every request
// (no caching, no background goroutines), and the text rendering is
// deterministic — sorted series names, fixed field order — so scraping the
// same state twice yields identical bytes.
package obshttp

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
)

// HandlerOptions extends the exposition mux beyond the metric registry.
// The zero value serves the classic surface.
type HandlerOptions struct {
	// Flight, when non-nil, mounts /debug/flightz serving the recorder's
	// deterministic dump with a per-code summary header.
	Flight *flight.Recorder
	// SLOs are evaluated on every /metrics scrape and appended as
	// slo_<name>_* families; /readyz reports 503 while any objective
	// burns above 1.
	SLOs []obs.SLO
	// Ready, when non-nil, gates /readyz in addition to the SLO check —
	// the hook a daemon uses to signal "still warming up".
	Ready func() bool
}

// NewHandler returns the exposition mux for r. tool names the producing
// binary in /metrics.json reports. A nil r serves empty metric sets; the
// debug endpoints work regardless.
func NewHandler(tool string, r *obs.Registry) http.Handler {
	return NewHandlerOpts(tool, r, HandlerOptions{})
}

// NewHandlerOpts is NewHandler with the extended surface of opts.
func NewHandlerOpts(tool string, r *obs.Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", index)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, r)
		WriteSLOText(w, r, opts.SLOs)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.NewReport(tool, r).WriteJSON(w); err != nil {
			// Headers are gone; all we can do is abort the body.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteStatuszOpts(w, tool, r, StatuszOptions{SLOs: opts.SLOs}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		// Liveness: answering at all is the signal.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		for _, st := range obs.EvaluateSLOs(r, opts.SLOs) {
			if !st.Met {
				http.Error(w, fmt.Sprintf("slo %s burning at %.3g (>1)", st.Name, st.BurnRate),
					http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/flightz", func(w http.ResponseWriter, req *http.Request) {
		// A nil recorder serves the empty dump — the endpoint is always
		// mounted so probes need not know whether recording is on.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeFlightz(w, opts.Flight)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeFlightz renders the /debug/flightz body: a per-code summary
// followed by the recorder's deterministic dump.
func writeFlightz(w interface{ Write([]byte) (int, error) }, rec *flight.Recorder) {
	counts := rec.CountByCode()
	for c := 0; c < flight.NumCodes; c++ {
		if counts[c] > 0 {
			fmt.Fprintf(w, "# %s: %d\n", flight.Code(c), counts[c])
		}
	}
	rec.WriteDump(w) //nolint:errcheck // ResponseWriter errors mean a gone client
}

// index is the human-facing front page listing the mounted endpoints.
func index(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ampsched observability endpoints:
  /metrics        registry snapshot, Prometheus text exposition (+ SLO families)
  /metrics.json   registry snapshot, metrics.json report
  /statusz        registry snapshot with series tails, quantiles and SLOs, JSON
  /healthz        liveness probe
  /readyz         readiness probe (503 while an SLO burns above 1)
  /debug/flightz  flight-recorder dump
  /debug/vars     expvar JSON
  /debug/pprof/   pprof profiles
`)
}

// WriteText renders r's snapshot in the Prometheus text exposition
// format: every family gets a "# TYPE" line; counters and gauges render
// as single samples, timers as a pair of counters, histograms as
// cumulative "_bucket"/"_sum"/"_count" families, log-bucketed histograms
// as summaries with p50/p95/p99 quantile samples, series as a gauge (last
// point) plus a "_samples_total" counter, and EWMA/rate estimators as
// gauges. Output is sorted by series name and deterministic for identical
// registry states. A nil registry writes nothing.
func WriteText(w interface{ Write([]byte) (int, error) }, r *obs.Registry) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Snapshot() {
		name := textName(s.Name)
		switch s.Kind {
		case obs.KindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n", name)
			fmt.Fprintf(w, "%s %d\n", name, s.Count)
		case obs.KindGauge, obs.KindEWMA, obs.KindRate:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s %s\n", name, f(s.Value))
		case obs.KindTimer:
			fmt.Fprintf(w, "# TYPE %s_count counter\n", name)
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
			fmt.Fprintf(w, "# TYPE %s_total_ns counter\n", name)
			fmt.Fprintf(w, "%s_total_ns %d\n", name, s.TotalNs)
		case obs.KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			cum := int64(0)
			for _, b := range s.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, f(b.LE), cum)
			}
			cum += s.Overflow
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", name, f(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		case obs.KindLogHistogram:
			fmt.Fprintf(w, "# TYPE %s summary\n", name)
			if q := s.Quantiles; q != nil {
				fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", name, f(q.P50))
				fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", name, f(q.P95))
				fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", name, f(q.P99))
			}
			fmt.Fprintf(w, "%s_sum %s\n", name, f(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		case obs.KindSeries:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s %s\n", name, f(s.Value))
			fmt.Fprintf(w, "# TYPE %s_samples_total counter\n", name)
			fmt.Fprintf(w, "%s_samples_total %d\n", name, s.Count)
		}
	}
}

// WriteSLOText appends the SLO burn-rate families to a /metrics scrape,
// one five-family block per objective in configuration order:
//
//	slo_<name>_observations_total  counter  histogram observation count
//	slo_<name>_breaches_total      counter  observations over the threshold
//	slo_<name>_burn_rate           gauge    (breaches/total)/(1−quantile)
//	slo_<name>_threshold           gauge    the configured bound
//	slo_<name>_met                 gauge    1 when burn ≤ 1
//
// Output is deterministic for identical registry states and promlint-
// clean; no SLOs writes nothing.
func WriteSLOText(w interface{ Write([]byte) (int, error) }, r *obs.Registry, slos []obs.SLO) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, st := range obs.EvaluateSLOs(r, slos) {
		base := "slo_" + textName(st.Name)
		fmt.Fprintf(w, "# TYPE %s_observations_total counter\n", base)
		fmt.Fprintf(w, "%s_observations_total %d\n", base, st.Total)
		fmt.Fprintf(w, "# TYPE %s_breaches_total counter\n", base)
		fmt.Fprintf(w, "%s_breaches_total %d\n", base, st.Breaches)
		fmt.Fprintf(w, "# TYPE %s_burn_rate gauge\n", base)
		fmt.Fprintf(w, "%s_burn_rate %s\n", base, f(st.BurnRate))
		fmt.Fprintf(w, "# TYPE %s_threshold gauge\n", base)
		fmt.Fprintf(w, "%s_threshold %s\n", base, f(st.Threshold))
		met := 0
		if st.Met {
			met = 1
		}
		fmt.Fprintf(w, "# TYPE %s_met gauge\n", base)
		fmt.Fprintf(w, "%s_met %d\n", base, met)
	}
}

// Statusz is the /statusz document: the full deterministic registry
// snapshot — including series tails and histogram quantiles — plus the
// producing tool's name and any evaluated SLOs. It deliberately carries
// no timestamp so two scrapes of the same state are byte-identical.
type Statusz struct {
	Tool    string          `json:"tool"`
	Metrics []obs.Sample    `json:"metrics"`
	SLOs    []obs.SLOStatus `json:"slos,omitempty"`
}

// StatuszOptions shapes a /statusz document.
type StatuszOptions struct {
	// ZeroTimers blanks the wall-clock TotalNs field of timer samples —
	// the one nondeterministic family — making the document byte-
	// deterministic for deterministic workloads (benchreport's
	// -statusz-zero-timers snapshot mode).
	ZeroTimers bool
	// SLOs are evaluated against the registry and embedded.
	SLOs []obs.SLO
}

// WriteStatusz writes the /statusz JSON document for r. A nil registry
// yields an empty metric list.
func WriteStatusz(w interface{ Write([]byte) (int, error) }, tool string, r *obs.Registry) error {
	return WriteStatuszOpts(w, tool, r, StatuszOptions{})
}

// WriteStatuszOpts is WriteStatusz shaped by opts.
func WriteStatuszOpts(w interface{ Write([]byte) (int, error) }, tool string, r *obs.Registry, opts StatuszOptions) error {
	doc := Statusz{Tool: tool, Metrics: r.Snapshot(), SLOs: obs.EvaluateSLOs(r, opts.SLOs)}
	if opts.ZeroTimers {
		for i := range doc.Metrics {
			if doc.Metrics[i].Kind == obs.KindTimer {
				doc.Metrics[i].TotalNs = 0
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// textName maps a dotted series name to the exposition-format convention:
// dots become underscores. Registry names are already slug segments joined
// by dots, so no further escaping is needed.
func textName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

// Server is a running exposition listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving NewHandler(tool, r) on addr (e.g. "127.0.0.1:0",
// ":8080") in a background goroutine and returns the running server. The
// caller owns the returned server and must Close it.
func Serve(addr, tool string, r *obs.Registry) (*Server, error) {
	return ServeOpts(addr, tool, r, HandlerOptions{})
}

// ServeOpts is Serve with the extended surface of opts.
func ServeOpts(addr, tool string, r *obs.Registry, opts HandlerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandlerOpts(tool, r, opts)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the listener's resolved address — the way to recover the
// port after binding ":0".
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	return s.srv.Close()
}
