package obshttp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
)

func getBody(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthzAndReadyz(t *testing.T) {
	ready := false
	srv, err := ServeOpts("127.0.0.1:0", "t", nil, HandlerOptions{Ready: func() bool { return ready }})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := getBody(t, base, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}
	if code, body := getBody(t, base, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "not ready") {
		t.Errorf("not-ready /readyz: code=%d body=%q", code, body)
	}
	ready = true
	if code, body := getBody(t, base, "/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("ready /readyz: code=%d body=%q", code, body)
	}
}

func TestReadyzReportsBurningSLO(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.LogHistogram("plan.latency_us")
	for i := 0; i < 50; i++ {
		h.Observe(10)
	}
	for i := 0; i < 50; i++ {
		h.Observe(1e6) // half the observations breach: p75<=100 burns at 2
	}
	// Quantile 0.75 keeps the budget (0.25) exact in float64, so the
	// rendered burn rate is exactly 2 and string-comparable.
	slo := obs.SLO{Name: "plan_p75", Metric: "plan.latency_us", Quantile: 0.75, Threshold: 100}
	srv, err := ServeOpts("127.0.0.1:0", "t", reg, HandlerOptions{SLOs: []obs.SLO{slo}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "plan_p75") {
		t.Errorf("/readyz under burn: code=%d body=%q", code, body)
	}

	// The /metrics scrape carries the SLO families and stays lint-clean.
	code, body = getBody(t, base, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code=%d", code)
	}
	for _, want := range []string{
		"slo_plan_p75_observations_total 100\n",
		"slo_plan_p75_breaches_total 50\n",
		"slo_plan_p75_burn_rate 2\n",
		"slo_plan_p75_threshold 100\n",
		"slo_plan_p75_met 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if errs := Lint(body); len(errs) != 0 {
		t.Errorf("/metrics with SLO families fails lint: %v", errs)
	}

	// /statusz embeds the evaluated objectives.
	_, body = getBody(t, base, "/statusz")
	var doc Statusz
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.SLOs) != 1 || doc.SLOs[0].BurnRate != 2 || doc.SLOs[0].Met {
		t.Errorf("statusz slos = %+v", doc.SLOs)
	}
}

func TestDebugFlightz(t *testing.T) {
	rec := flight.New(16)
	rec.Record(flight.Event{Code: flight.CodeDrift, Tick: 3, Stage: 1, A: 240, B: 120})
	rec.Record(flight.Event{Code: flight.CodePlan, Tick: 5, Stage: -1, A: 412.5, B: 3})
	srv, err := ServeOpts("127.0.0.1:0", "t", nil, HandlerOptions{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base, "/debug/flightz")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightz code=%d", code)
	}
	for _, want := range []string{
		"# drift: 1\n", "# plan: 1\n",
		"# flight dump: 2 event(s), 2 recorded, cap 16\n",
		"#1 tick=3 drift stage=1 a=240 b=120\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/flightz missing %q:\n%s", want, body)
		}
	}
	// Two scrapes of the same recorded history are byte-identical.
	if _, again := getBody(t, base, "/debug/flightz"); again != body {
		t.Error("two /debug/flightz scrapes differ")
	}

	// Without a recorder the endpoint stays mounted and serves empty.
	srv2, err := Serve("127.0.0.1:0", "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if code, body := getBody(t, "http://"+srv2.Addr(), "/debug/flightz"); code != http.StatusOK ||
		!strings.Contains(body, "0 event(s)") {
		t.Errorf("recorder-less /debug/flightz: code=%d body=%q", code, body)
	}
}

func TestWriteSLOTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	WriteSLOText(&buf, obs.NewRegistry(), nil)
	if buf.Len() != 0 {
		t.Fatalf("no SLOs rendered %q", buf.String())
	}
}

func TestWriteStatuszZeroTimers(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Timer("sched.elapsed").Observe(1500 * time.Microsecond)
	reg.Counter("plans").Add(3)

	render := func(zero bool) Statusz {
		var buf bytes.Buffer
		if err := WriteStatuszOpts(&buf, "t", reg, StatuszOptions{ZeroTimers: zero}); err != nil {
			t.Fatal(err)
		}
		var doc Statusz
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	find := func(doc Statusz, name string) obs.Sample {
		for _, s := range doc.Metrics {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("metric %q missing", name)
		return obs.Sample{}
	}

	kept := find(render(false), "sched.elapsed")
	if kept.TotalNs == 0 {
		t.Fatal("unzeroed statusz lost the timer total")
	}
	zeroed := render(true)
	if s := find(zeroed, "sched.elapsed"); s.TotalNs != 0 || s.Count != 1 {
		t.Errorf("zeroed timer sample = %+v", s)
	}
	if s := find(zeroed, "plans"); s.Count != 3 {
		t.Errorf("ZeroTimers touched a counter: %+v", s)
	}
}

// TestConcurrentScrapesStayLintClean hammers /metrics and /statusz while
// a sampler goroutine keeps appending to series, histograms and SLO
// inputs. Run under -race this exercises the whole read path against
// live writers; every response must still parse (statusz as JSON,
// metrics through the promlint Lint).
func TestConcurrentScrapesStayLintClean(t *testing.T) {
	reg := obs.NewRegistry()
	slo := obs.SLO{Name: "lat_p95", Metric: "pipe.latency_us", Quantile: 0.95, Threshold: 500}
	rec := flight.New(64)
	srv, err := ServeOpts("127.0.0.1:0", "t", reg, HandlerOptions{SLOs: []obs.SLO{slo}, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		series := reg.Series("pipe.occupancy", 32)
		lat := reg.LogHistogram("pipe.latency_us")
		fps := reg.Rate("pipe.fps", 0.3)
		for tick := int64(0); ; tick++ {
			select {
			case <-stop:
				return
			default:
			}
			series.Append(tick, float64(tick%7))
			lat.Observe(float64(10 + tick%1000))
			fps.Mark(1)
			fps.Tick(1)
			rec.Record(flight.Event{Code: flight.CodeWindow, Tick: tick, A: float64(tick)})
		}
	}()

	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				if code, body := getBody(t, base, "/metrics"); code != http.StatusOK {
					t.Errorf("/metrics code=%d", code)
				} else if errs := Lint(body); len(errs) != 0 {
					t.Errorf("concurrent /metrics fails lint: %v\n%s", errs, body)
				}
				if code, body := getBody(t, base, "/statusz"); code != http.StatusOK {
					t.Errorf("/statusz code=%d", code)
				} else {
					var doc Statusz
					if err := json.Unmarshal([]byte(body), &doc); err != nil {
						t.Errorf("concurrent /statusz is not JSON: %v", err)
					}
				}
				if code, _ := getBody(t, base, "/debug/flightz"); code != http.StatusOK {
					t.Errorf("/debug/flightz code=%d", code)
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}
