package obshttp

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Promtool-style lint for the /metrics exposition: a pure-Go validator
// enforcing the subset of the Prometheus text format this package emits,
// so CI can gate exposition changes without the promtool binary. It
// checks that every line parses, metric and label names follow the
// Prometheus conventions, every sample value is a float, and every
// sample family is preceded by its "# TYPE" declaration with a valid
// type.

var (
	// metricNameRE is the Prometheus metric-name charset ([a-z0-9_:],
	// not starting with a digit). This repo emits lowercase only, so the
	// lint is stricter than Prometheus itself (which also allows A-Z).
	metricNameRE = regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	// sampleRE splits a sample line into name, optional label block and
	// value.
	sampleRE = regexp.MustCompile(`^([^{ ]+)(?:\{([^}]*)\})? (\S+)$`)
	labelRE  = regexp.MustCompile(`^([^=]+)="((?:[^"\\]|\\.)*)"$`)
)

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// Lint validates text as Prometheus exposition output and returns one
// error per violation (nil when clean).
func Lint(text string) []error {
	var errs []error
	typed := map[string]string{} // family -> declared type
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	for i, line := range strings.Split(text, "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				fail(n, "comment is neither # TYPE nor # HELP: %q", line)
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					fail(n, "malformed TYPE line: %q", line)
					continue
				}
				name, typ := fields[2], fields[3]
				if !metricNameRE.MatchString(name) {
					fail(n, "invalid metric name %q", name)
				}
				if !promTypes[typ] {
					fail(n, "invalid metric type %q", typ)
				}
				if _, dup := typed[name]; dup {
					fail(n, "duplicate TYPE declaration for %q", name)
				}
				typed[name] = typ
			}
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			fail(n, "unparsable sample line: %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if !metricNameRE.MatchString(name) {
			fail(n, "invalid metric name %q", name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			fail(n, "sample value %q is not a float", value)
		}
		if labels != "" {
			for _, lbl := range strings.Split(labels, ",") {
				lm := labelRE.FindStringSubmatch(lbl)
				if lm == nil {
					fail(n, "unparsable label %q", lbl)
					continue
				}
				if !labelNameRE.MatchString(lm[1]) {
					fail(n, "invalid label name %q", lm[1])
				}
			}
		}
		if _, ok := typed[lintFamily(name, typed)]; !ok {
			fail(n, "sample %q has no preceding # TYPE declaration", name)
		}
	}
	return errs
}

// lintFamily maps a sample name back to its declared family: histogram
// and summary samples use the base name for their _bucket/_sum/_count
// children.
func lintFamily(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if t := typed[base]; t == "histogram" || t == "summary" {
			return base
		}
	}
	return name
}
