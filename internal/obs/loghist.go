package obs

import (
	"math"
	"sync/atomic"
)

// Streaming latency histograms: log-bucketed counters with mergeable
// quantile snapshots. Unlike the fixed-bucket Histogram (whose layout is
// chosen at registration), a LogHistogram always uses the one shared
// geometric bucket grid — logSubBuckets buckets per power of two — so
// two instances are always structurally mergeable (Merge is a plain
// per-bucket add) and quantile estimates carry a bounded relative error
// of at most 2^(1/logSubBuckets)−1 ≈ 4.4%.
//
// The observe path is lock-free (one Log2, two atomic adds, a CAS loop
// for the sum) and allocation-free, so pipeline workers can record every
// frame. Quantile reads walk the bucket array without stopping writers;
// snapshots of a quiesced histogram are deterministic.

const (
	// logSubBuckets is the number of buckets per power of two. 8 gives a
	// per-bucket width of 2^(1/8) ≈ 1.09, i.e. ≤ 4.4% error at the
	// geometric bucket midpoint.
	logSubBuckets = 8
	// logMinExp/logMaxExp bound the tracked range as powers of two. In the
	// repository's µs time base that spans ~1 ns (2^-10 µs) to ~3 days
	// (2^38 µs); values outside clamp into the first/last bucket.
	logMinExp = -10
	logMaxExp = 38
	// logBuckets is the bucket count implied by the range and resolution.
	logBuckets = (logMaxExp - logMinExp) * logSubBuckets
)

// LogHistogram is a streaming log-bucketed histogram. Create via
// Registry.LogHistogram or NewLogHistogram; a nil *LogHistogram is the
// disabled sink — every method is a no-op.
type LogHistogram struct {
	counts [logBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// zero counts non-positive observations, which have no log bucket;
	// they rank below every bucket in quantile walks.
	zero atomic.Int64
}

// NewLogHistogram returns an empty standalone histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// logBucketIndex maps a positive value to its bucket.
func logBucketIndex(v float64) int {
	i := int(math.Floor(math.Log2(v)*logSubBuckets)) - logMinExp*logSubBuckets
	if i < 0 {
		return 0
	}
	if i >= logBuckets {
		return logBuckets - 1
	}
	return i
}

// logBucketUpper returns the exclusive upper bound of bucket i.
func logBucketUpper(i int) float64 {
	return math.Exp2(float64(i+1)/logSubBuckets + logMinExp)
}

// logBucketMid returns the geometric midpoint of bucket i — the value a
// quantile landing in the bucket reports.
func logBucketMid(i int) float64 {
	return math.Exp2((float64(i)+0.5)/logSubBuckets + logMinExp)
}

// Observe records one value. Non-positive values (and NaN) count toward
// Count and rank below every bucket but do not contribute to Sum's
// magnitude meaningfully. No-op on a nil receiver; never allocates.
func (h *LogHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v > 0 {
		h.counts[logBucketIndex(v)].Add(1)
		addFloat(&h.sum, v)
	} else {
		h.zero.Add(1)
	}
	h.count.Add(1)
}

// addFloat accumulates v into a float64 stored as atomic bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *LogHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of positive observations (0 on a nil receiver).
func (h *LogHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Merge adds o's observations into h. Both sides keep working during the
// merge (atomic adds); merging a nil histogram, or into one, is a no-op.
// Observing x into h and y into o then merging yields the same counts as
// observing both into one histogram — the mergeability contract behind
// per-worker sharding.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	if n := o.zero.Load(); n != 0 {
		h.zero.Add(n)
	}
	addFloat(&h.sum, o.Sum())
	h.count.Add(o.count.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) as the geometric
// midpoint of the bucket holding the rank. Returns 0 when empty or on a
// nil receiver. The estimate's relative error is bounded by the bucket
// width (≤ 4.4%).
func (h *LogHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := h.zero.Load()
	if cum >= rank {
		return 0
	}
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return logBucketMid(i)
		}
	}
	// Writers raced past the loaded total; report the top bucket.
	return logBucketMid(logBuckets - 1)
}

// CountAbove returns the number of observations recorded in buckets
// strictly above the bucket containing v — the SLO layer's "breach
// count" for a threshold of v. Like the quantiles, the answer is exact
// at bucket granularity: observations inside v's own bucket (within one
// bucket width, ≤ 4.4% of v) count as within threshold. Non-positive
// thresholds count every positive observation; 0 on a nil receiver.
func (h *LogHistogram) CountAbove(v float64) int64 {
	if h == nil {
		return 0
	}
	from := 0
	if v > 0 {
		from = logBucketIndex(v) + 1
	}
	var n int64
	for i := from; i < logBuckets; i++ {
		n += h.counts[i].Load()
	}
	return n
}

// QuantileSnapshot is a deterministic percentile summary of a
// LogHistogram at one instant.
type QuantileSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Quantiles returns the p50/p95/p99 summary (zero value when empty or on
// a nil receiver).
func (h *LogHistogram) Quantiles() QuantileSnapshot {
	if h == nil {
		return QuantileSnapshot{}
	}
	return QuantileSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// buckets exports the non-empty buckets as (upper bound, count) pairs in
// ascending bound order, prefixed by the zero bucket when populated.
func (h *LogHistogram) buckets() []Bucket {
	var out []Bucket
	if z := h.zero.Load(); z > 0 {
		out = append(out, Bucket{LE: 0, Count: z})
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			out = append(out, Bucket{LE: logBucketUpper(i), Count: n})
		}
	}
	return out
}
