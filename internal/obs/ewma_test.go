package obs

import (
	"math"
	"testing"
)

func TestEWMAFold(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("seed = %v, want 10", e.Value())
	}
	e.Update(20) // 0.5·20 + 0.5·10 = 15
	if e.Value() != 15 {
		t.Fatalf("after second update = %v, want 15", e.Value())
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestEWMADefaultAlpha(t *testing.T) {
	for _, bad := range []float64{0, -1, 2, math.NaN()} {
		e := NewEWMA(bad)
		if e.alpha != DefaultEWMAAlpha {
			t.Errorf("alpha(%v) = %v, want default", bad, e.alpha)
		}
	}
}

func TestEWMAConvergesToStep(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 100; i++ {
		e.Update(5)
	}
	if math.Abs(e.Value()-5) > 1e-9 {
		t.Fatalf("steady state = %v, want 5", e.Value())
	}
	for i := 0; i < 50; i++ {
		e.Update(8) // level shift
	}
	if math.Abs(e.Value()-8) > 1e-3 {
		t.Fatalf("after shift = %v, want ≈8", e.Value())
	}
}

func TestRateWindows(t *testing.T) {
	r := NewRate(1) // alpha 1: Value tracks the last window exactly
	r.Mark(10)
	if inst := r.Tick(2); inst != 5 {
		t.Fatalf("inst rate = %v, want 5", inst)
	}
	if r.Value() != 5 {
		t.Fatalf("value = %v, want 5", r.Value())
	}
	r.Mark(3)
	r.Tick(1)
	if r.Value() != 3 || r.Total() != 13 {
		t.Fatalf("value = %v total = %d", r.Value(), r.Total())
	}
	if r.Tick(0) != 0 || r.Tick(-1) != 0 {
		t.Error("non-positive window width not ignored")
	}
}

func TestEWMARateNilSafe(t *testing.T) {
	var e *EWMA
	e.Update(3)
	if e.Value() != 0 || e.Count() != 0 {
		t.Error("nil EWMA not inert")
	}
	var r *Rate
	r.Mark(3)
	if r.Tick(1) != 0 || r.Value() != 0 || r.Total() != 0 {
		t.Error("nil Rate not inert")
	}
	var reg *Registry
	if reg.EWMA("x", 0.5) != nil || reg.Rate("y", 0.5) != nil {
		t.Error("nil registry handed out EWMA/Rate")
	}
}

func TestEWMARateRegistryAndAllocs(t *testing.T) {
	reg := NewRegistry()
	e := reg.EWMA("occ", 0.5)
	e.Update(0.75)
	ra := reg.Rate("fps", 0.5)
	ra.Mark(4)
	ra.Tick(2)
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].Kind != KindEWMA || snap[1].Value != 0.75 || snap[1].Count != 1 {
		t.Errorf("ewma sample = %+v", snap[1])
	}
	if snap[0].Kind != KindRate || snap[0].Value != 2 || snap[0].Count != 4 {
		t.Errorf("rate sample = %+v", snap[0])
	}
	var nilE *EWMA
	if n := testing.AllocsPerRun(100, func() { nilE.Update(1) }); n != 0 {
		t.Errorf("nil Update allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { e.Update(1); ra.Mark(1) }); n != 0 {
		t.Errorf("enabled Update/Mark allocates %v/op", n)
	}
}

func TestRateTickDegenerateWidthsNeverPoisonTheEWMA(t *testing.T) {
	// Regression: a zero-duration window (two samples on the same tick)
	// used to be rejected by "width <= 0", but a NaN width slipped past
	// that ordering and folded NaN into the EWMA permanently. Every
	// degenerate width must return 0 and leave the estimate untouched.
	r := NewRate(0.5)
	r.Mark(10)
	if got := r.Tick(2); got != 5 {
		t.Fatalf("sane window rate = %v, want 5", got)
	}
	for _, width := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		r.Mark(3)
		if got := r.Tick(width); got != 0 {
			t.Errorf("Tick(%v) = %v, want 0", width, got)
		}
		if v := r.Value(); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Tick(%v) poisoned the EWMA: %v", width, v)
		}
	}
	if v := r.Value(); v != 5 {
		t.Errorf("EWMA moved on degenerate windows: %v, want 5", v)
	}
	// The marks from the rejected windows are still pending and fold into
	// the next valid window rather than being lost.
	r.Mark(0)
	if got := r.Tick(5); got != 3 {
		t.Errorf("pending marks after degenerate windows: rate = %v, want 3 (15 marks / 5 ticks)", got)
	}
}
