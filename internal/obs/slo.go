package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Service-level objectives over streaming latency histograms. An SLO
// binds a registered LogHistogram to a latency objective — "the
// Quantile-quantile of Metric stays at or below Threshold" — and
// evaluation derives SRE-style error-budget accounting from the
// histogram's bucket counts:
//
//	budget    = 1 − Quantile          (allowed breach fraction)
//	breaches  = CountAbove(Threshold) (observations over the bound)
//	burn rate = (breaches/total) / budget
//
// A burn rate of 1 consumes the budget exactly as fast as it accrues;
// above 1 the objective is being violated. Burn rate is preferable to a
// raw quantile check because it is proportional: a p95 objective
// breached by 20% of requests reports burn 4, not just "missed".
//
// SLOs are pure read-side objects — they never create metrics and never
// mutate the histogram — so /metrics handlers can evaluate them on every
// scrape against a live registry.

// SLO is one latency objective over a registered LogHistogram.
type SLO struct {
	// Name is the objective's metric-safe slug; exposition families are
	// named slo_<Name>_*.
	Name string `json:"name"`
	// Metric is the registry name of the LogHistogram the objective
	// tracks (e.g. "streampu.frame_latency_us").
	Metric string `json:"metric"`
	// Quantile is the objective quantile in (0, 1), e.g. 0.95 for p95.
	Quantile float64 `json:"quantile"`
	// Threshold is the latency bound in the metric's own unit.
	Threshold float64 `json:"threshold"`
}

// ParseSLO parses the cmd-line SLO syntax:
//
//	[name=]metric:pQQ<=threshold
//
// e.g. "streampu.frame_latency_us:p95<=5000" or, naming the objective
// explicitly, "frame_p95=streampu.frame_latency_us:p95<=5000". The
// quantile token is p50, p95, p99, p99.9, ... — "p" followed by a
// percentage. When no name is given one is derived from the metric slug
// and the quantile ("streampu_frame_latency_us_p95").
func ParseSLO(spec string) (SLO, error) {
	var s SLO
	rest := spec
	// A name prefix is an '=' before the metric:condition colon — the
	// '=' inside the condition's "<=" always follows the colon.
	if eq := strings.IndexByte(rest, '='); eq >= 0 && eq < strings.IndexByte(rest, ':') {
		s.Name = strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
	}
	colon := strings.LastIndexByte(rest, ':')
	if colon < 0 {
		return SLO{}, fmt.Errorf("obs: SLO %q: want [name=]metric:pQQ<=threshold", spec)
	}
	s.Metric = strings.TrimSpace(rest[:colon])
	cond := strings.TrimSpace(rest[colon+1:])
	le := strings.Index(cond, "<=")
	if s.Metric == "" || le < 0 || !strings.HasPrefix(cond, "p") {
		return SLO{}, fmt.Errorf("obs: SLO %q: want [name=]metric:pQQ<=threshold", spec)
	}
	pct, err := strconv.ParseFloat(cond[1:le], 64)
	if err != nil || !(pct > 0) || !(pct < 100) {
		return SLO{}, fmt.Errorf("obs: SLO %q: quantile %q outside (p0, p100)", spec, cond[:le])
	}
	s.Quantile = pct / 100
	s.Threshold, err = strconv.ParseFloat(strings.TrimSpace(cond[le+2:]), 64)
	if err != nil || s.Threshold <= 0 {
		return SLO{}, fmt.Errorf("obs: SLO %q: bad threshold %q", spec, cond[le+2:])
	}
	if s.Name == "" {
		s.Name = Slug(s.Metric) + "_p" + strings.ReplaceAll(cond[1:le], ".", "_")
	} else {
		s.Name = Slug(s.Name)
	}
	return s, nil
}

// ParseSLOs parses a comma-separated list of SLO specs (the -slo flag
// value). Empty input yields nil.
func ParseSLOs(specs string) ([]SLO, error) {
	if strings.TrimSpace(specs) == "" {
		return nil, nil
	}
	var out []SLO
	for _, spec := range strings.Split(specs, ",") {
		s, err := ParseSLO(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// SLOStatus is one evaluated objective: the SLO plus its error-budget
// accounting at the evaluation instant.
type SLOStatus struct {
	SLO
	// Total is the histogram's observation count (0 when the metric is
	// absent — an absent metric is vacuously met, not an error, so SLOs
	// can be configured before the workload registers its histograms).
	Total int64 `json:"total"`
	// Breaches counts observations above Threshold (bucket-granular; see
	// LogHistogram.CountAbove).
	Breaches int64 `json:"breaches"`
	// Budget is the allowed breach fraction, 1 − Quantile.
	Budget float64 `json:"budget"`
	// BurnRate is (Breaches/Total)/Budget; 0 when Total is 0.
	BurnRate float64 `json:"burn_rate"`
	// Met reports whether the objective holds: BurnRate ≤ 1.
	Met bool `json:"met"`
}

// findLogHistogram looks up an already-registered LogHistogram without
// creating it (and without the kind-mismatch panic of the creating
// lookup): nil when absent, differently-kinded, or on a nil registry.
func (r *Registry) findLogHistogram(name string) *LogHistogram {
	if r == nil {
		return nil
	}
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	m, ok := r.store.byName[r.prefix+name]
	if !ok || m.kind != KindLogHistogram {
		return nil
	}
	return m.lh
}

// Evaluate computes the objective's current status against r. A nil
// registry, an unregistered metric, or a metric registered under a
// different kind all evaluate as an empty, met objective.
func (s SLO) Evaluate(r *Registry) SLOStatus {
	st := SLOStatus{SLO: s, Budget: 1 - s.Quantile, Met: true}
	h := r.findLogHistogram(s.Metric)
	if h == nil {
		return st
	}
	st.Total = h.Count()
	st.Breaches = h.CountAbove(s.Threshold)
	if st.Total > 0 && st.Budget > 0 {
		st.BurnRate = (float64(st.Breaches) / float64(st.Total)) / st.Budget
		st.Met = st.BurnRate <= 1
	}
	return st
}

// EvaluateSLOs evaluates each objective in order against r — the order
// is the configuration order, so exposition output is deterministic.
func EvaluateSLOs(r *Registry, slos []SLO) []SLOStatus {
	if len(slos) == 0 {
		return nil
	}
	out := make([]SLOStatus, len(slos))
	for i, s := range slos {
		out[i] = s.Evaluate(r)
	}
	return out
}
