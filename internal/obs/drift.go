package obs

import (
	"strconv"
	"sync"

	"ampsched/internal/obs/flight"
	"ampsched/internal/trace"
)

// Drift detection: the bridge between live telemetry and the online
// re-planner. A DriftDetector watches a stream of windowed per-stage
// weight (or occupancy) estimates — produced by the streampu Sampler in
// wall time or by desim's sim-clock sampler — EWMA-smooths each stage's
// stream, and fires when the smoothed estimate departs from the planned
// value by more than a relative threshold. Firing is edge-triggered with
// hysteresis: one "drift_detected" trace event plus one counter
// increment per excursion, re-arming only after the estimate returns
// within the threshold, so a persistent weight step produces exactly one
// deterministic event per affected stage. All arithmetic is plain
// float64 folds in call order: a deterministic sample stream yields a
// byte-identical journal.

// DriftEvent is the trace event name a DriftDetector emits; the online
// re-planner (ROADMAP) subscribes to exactly this signal.
const DriftEvent = "drift_detected"

// DriftConfig parameterizes a DriftDetector. The zero value selects the
// documented defaults.
type DriftConfig struct {
	// Threshold is the relative deviation |est−planned|/planned that
	// trips the detector. Defaults to 0.25.
	Threshold float64
	// Alpha is the EWMA smoothing factor of the per-stage estimate.
	// Defaults to DefaultEWMAAlpha.
	Alpha float64
	// MinSamples is the number of samples a stage must accumulate before
	// it may fire — the warmup guard against cold-start transients.
	// Defaults to 3.
	MinSamples int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultEWMAAlpha
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	return c
}

// DriftDetector watches per-stage estimate streams against planned
// values. Create with NewDriftDetector; a nil *DriftDetector is the
// disabled sink — every method is a no-op. Observe calls are serialized
// internally, but determinism additionally requires the caller to feed
// samples in a deterministic order (one sampler goroutine, or the
// sim-clock post-pass).
type DriftDetector struct {
	// Flight, when set before the first Observe, additionally records one
	// CodeDrift flight event per firing (A = smoothed estimate, B =
	// planned value). Firings are deterministic for a deterministic
	// sample stream, so the events are part of desim's golden dumps.
	Flight *flight.Recorder

	mu      sync.Mutex
	cfg     DriftConfig
	planned []float64
	est     []float64
	n       []int
	drifted []bool
	fired   int64

	span     *trace.Span
	detected *Counter
	samples  *Counter
	gauges   []*Gauge // per-stage smoothed estimate, names interned at build
}

// NewDriftDetector builds a detector for len(planned) stages. planned
// holds each stage's expected per-frame weight (model µs) or occupancy —
// whatever unit the caller's estimates use. reg (may be nil) receives
// "drift.detected" / "drift.samples" counters and one interned
// "drift.estimate.stage<N>" gauge per stage; callers scope it per
// strategy slug (strategy.MetricsScope) so concurrent pipelines keep
// separate counters. sp (may be nil) receives the drift_detected events.
func NewDriftDetector(planned []float64, cfg DriftConfig, reg *Registry, sp *trace.Span) *DriftDetector {
	d := &DriftDetector{
		cfg:     cfg.withDefaults(),
		planned: append([]float64(nil), planned...),
		est:     make([]float64, len(planned)),
		n:       make([]int, len(planned)),
		drifted: make([]bool, len(planned)),
		span:    sp,
	}
	if reg != nil {
		d.detected = reg.Counter("drift.detected")
		d.samples = reg.Counter("drift.samples")
		d.gauges = make([]*Gauge, len(planned))
		for i := range d.gauges {
			d.gauges[i] = reg.Gauge("drift.estimate.stage" + strconv.Itoa(i))
		}
	}
	return d
}

// Observe folds one windowed estimate for stage at the given tick and
// reports whether a drift_detected event fired. Out-of-range stages and
// nil receivers are no-ops.
func (d *DriftDetector) Observe(stage int, tick int64, value float64) bool {
	if d == nil || stage < 0 || stage >= len(d.planned) {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.samples.Inc()
	if d.n[stage] == 0 {
		d.est[stage] = value
	} else {
		d.est[stage] = d.cfg.Alpha*value + (1-d.cfg.Alpha)*d.est[stage]
	}
	d.n[stage]++
	d.setGauge(stage)
	if d.n[stage] < d.cfg.MinSamples {
		return false
	}
	dev := relDeviation(d.est[stage], d.planned[stage])
	if dev > d.cfg.Threshold {
		if d.drifted[stage] {
			return false // still in the same excursion
		}
		d.drifted[stage] = true
		d.fired++
		d.detected.Inc()
		d.Flight.Record(flight.Event{
			Code:  flight.CodeDrift,
			Tick:  tick,
			Stage: int32(stage),
			A:     d.est[stage],
			B:     d.planned[stage],
		})
		d.span.Event(DriftEvent).
			Int("stage", stage).
			Int("tick", int(tick)).
			F64("planned", d.planned[stage]).
			F64("estimate", d.est[stage]).
			F64("deviation", dev)
		return true
	}
	d.drifted[stage] = false // re-arm once back within threshold
	return false
}

func (d *DriftDetector) setGauge(stage int) {
	if d.gauges != nil {
		d.gauges[stage].Set(d.est[stage])
	}
}

// relDeviation returns |est−planned|/planned, treating a non-positive
// planned value as drifted only when the estimate is positive.
func relDeviation(est, planned float64) float64 {
	if planned <= 0 {
		if est > 0 {
			return 1
		}
		return 0
	}
	dev := (est - planned) / planned
	if dev < 0 {
		dev = -dev
	}
	return dev
}

// Estimate returns stage's current smoothed estimate (0 when unknown or
// on a nil receiver).
func (d *DriftDetector) Estimate(stage int) float64 {
	if d == nil || stage < 0 || stage >= len(d.planned) {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.est[stage]
}

// Estimates returns a copy of all smoothed per-stage estimates (nil on a
// nil receiver) — the warm inputs a re-planner would feed back into
// strategy.ReplanBatch.
func (d *DriftDetector) Estimates() []float64 {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.est...)
}

// Detected returns the number of drift events fired so far (0 on a nil
// receiver).
func (d *DriftDetector) Detected() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}
