package dvbs2

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQPSKModulateMapping(t *testing.T) {
	syms := QPSKModulate([]byte{0, 0, 0, 1, 1, 0, 1, 1})
	want := []complex128{
		complex(invSqrt2, invSqrt2),
		complex(invSqrt2, -invSqrt2),
		complex(-invSqrt2, invSqrt2),
		complex(-invSqrt2, -invSqrt2),
	}
	for i := range want {
		if cmplx.Abs(syms[i]-want[i]) > 1e-15 {
			t.Errorf("symbol %d = %v, want %v", i, syms[i], want[i])
		}
	}
	// Unit energy.
	for i, s := range syms {
		if math.Abs(cmplx.Abs(s)-1) > 1e-12 {
			t.Errorf("symbol %d energy %v", i, cmplx.Abs(s))
		}
	}
}

func TestQPSKModulatePanicsOnOddBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd bit count accepted")
		}
	}()
	QPSKModulate(make([]byte, 3))
}

func TestQPSKHardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 2 * (1 + rng.Intn(100))
		bits := randomBits(rng, n)
		return CountBitErrors(QPSKHard(QPSKModulate(bits)), bits) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQPSKSoftLLRSignsMatchHardDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	bits := randomBits(rng, 400)
	syms := QPSKModulate(bits)
	// Mild noise: LLR signs must still encode the bits.
	for i := range syms {
		syms[i] += complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
	}
	llr := QPSKDemodulate(syms, 0.01, nil)
	if len(llr) != len(bits) {
		t.Fatalf("%d LLRs for %d bits", len(llr), len(bits))
	}
	for i, l := range llr {
		want := bits[i] == 1
		if (l < 0) != want {
			t.Fatalf("LLR %d sign wrong", i)
		}
	}
	// Smaller noise variance ⇒ larger LLR magnitude.
	hi := QPSKDemodulate(syms, 0.01, nil)
	lo := QPSKDemodulate(syms, 1.0, nil)
	if math.Abs(hi[0]) <= math.Abs(lo[0]) {
		t.Error("LLR magnitude does not scale with confidence")
	}
	// Non-positive noise variance is clamped, not a crash.
	if out := QPSKDemodulate(syms, 0, nil); len(out) != len(bits) {
		t.Error("zero noise variance mishandled")
	}
}

func TestEstimateNoiseTracksSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sigma := range []float64{0.05, 0.1, 0.2} {
		bits := randomBits(rng, 4000)
		syms := QPSKModulate(bits)
		for i := range syms {
			syms[i] += complex(rng.NormFloat64()*sigma/math.Sqrt2, rng.NormFloat64()*sigma/math.Sqrt2)
		}
		got := EstimateNoise(syms)
		want := sigma * sigma
		if got < want*0.6 || got > want*1.6 {
			t.Errorf("sigma %v: estimated %v, want ≈%v", sigma, got, want)
		}
	}
	if EstimateNoise(nil) <= 0 {
		t.Error("empty estimate must stay positive")
	}
	// Perfect symbols: clamped at the floor, not zero.
	if EstimateNoise(QPSKModulate([]byte{0, 0})) <= 0 {
		t.Error("clean estimate must stay positive")
	}
}

func TestInterleaverBijective(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func() bool {
		cols := []int{2, 3, 4, 5}[rng.Intn(4)]
		rows := 1 + rng.Intn(50)
		n := cols * rows
		il, err := NewInterleaver(n, cols)
		if err != nil {
			return false
		}
		bits := randomBits(rng, n)
		inter := il.Interleave(bits, nil)
		back := il.Deinterleave(inter, nil)
		if CountBitErrors(back, bits) != 0 {
			return false
		}
		// Soft path must apply the same inverse permutation.
		llr := make([]float64, n)
		for i := range llr {
			llr[i] = float64(i)
		}
		billr := il.DeinterleaveLLR(il.interleaveLLRForTest(llr), nil)
		for i := range billr {
			if billr[i] != llr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// interleaveLLRForTest applies the forward permutation to soft values
// (the transmitter only interleaves bits; tests need the soft forward).
func (il *Interleaver) interleaveLLRForTest(llr []float64) []float64 {
	out := make([]float64, len(llr))
	for i, src := range il.perm {
		out[i] = llr[src]
	}
	return out
}

func TestInterleaverActuallyPermutes(t *testing.T) {
	il, err := NewInterleaver(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	bits := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	inter := il.Interleave(bits, nil)
	same := 0
	for i := range inter {
		if inter[i] == bits[i] {
			same++
		}
	}
	if same == len(bits) {
		t.Error("interleaver is the identity")
	}
}

func TestInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(10, 3); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := NewInterleaver(0, 1); err == nil {
		t.Error("zero size accepted")
	}
	il, _ := NewInterleaver(4, 2)
	for _, fn := range []func(){
		func() { il.Interleave(make([]byte, 3), nil) },
		func() { il.Deinterleave(make([]byte, 3), nil) },
		func() { il.DeinterleaveLLR(make([]float64, 3), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("wrong-length input accepted")
				}
			}()
			fn()
		}()
	}
}
