package dvbs2

// Bit-level utilities: PRBS payload generation and the frame counter
// embedded at the head of every baseband frame so that the receiver-side
// monitor can regenerate the reference data from the decoded bits alone
// (which keeps the monitor task stateless/replicable, as in Table III).

// CounterBits is the width of the frame counter embedded in each BB frame.
const CounterBits = 32

// prbsStep advances the 23-bit PRBS x^23 + x^18 + 1 (the DVB PRBS
// polynomial) by one bit and returns it.
func prbsStep(state *uint32) byte {
	s := *state
	bit := ((s >> 22) ^ (s >> 17)) & 1
	*state = ((s << 1) | bit) & 0x7FFFFF
	return byte(bit)
}

// prbsSeed derives a non-zero PRBS state from a frame counter.
func prbsSeed(counter uint32) uint32 {
	s := (counter*2654435761 + 0x5A17) & 0x7FFFFF
	if s == 0 {
		s = 0x4A80
	}
	return s
}

// GenerateBBFrame produces the information bits (one bit per byte, values
// 0/1) of baseband frame number counter: a CounterBits-bit big-endian
// counter followed by PRBS payload seeded from the counter. The result
// has length kBch bits.
func GenerateBBFrame(counter uint32, kBch int) []byte {
	bits := make([]byte, kBch)
	for i := 0; i < CounterBits; i++ {
		bits[i] = byte((counter >> (CounterBits - 1 - i)) & 1)
	}
	state := prbsSeed(counter)
	for i := CounterBits; i < kBch; i++ {
		bits[i] = prbsStep(&state)
	}
	return bits
}

// DecodeCounter recovers the frame counter from the first CounterBits of
// a decoded BB frame.
func DecodeCounter(bits []byte) uint32 {
	var c uint32
	for i := 0; i < CounterBits && i < len(bits); i++ {
		c = c<<1 | uint32(bits[i]&1)
	}
	return c
}

// CountBitErrors compares two equal-length bit slices and returns the
// number of differing positions. Extra trailing bits in the longer slice
// are counted as errors.
func CountBitErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i]&1 != b[i]&1 {
			errs++
		}
	}
	if len(a) > n {
		errs += len(a) - n
	}
	if len(b) > n {
		errs += len(b) - n
	}
	return errs
}
