package dvbs2

import (
	"fmt"
	"math"
)

// QPSK modem: Gray-mapped π/4 QPSK with unit average energy, matching
// the paper's MODCOD 2. Demodulation produces per-bit LLRs from the
// estimated noise variance (soft output feeding the LDPC SIHO decoder).

const invSqrt2 = 0.7071067811865476

// QPSKModulate maps bit pairs (b0 = in-phase, b1 = quadrature) to unit
// symbols. The bit slice length must be even.
func QPSKModulate(bits []byte) []complex128 {
	if len(bits)%2 != 0 {
		panic(fmt.Sprintf("dvbs2: QPSK modulate: odd bit count %d", len(bits)))
	}
	out := make([]complex128, len(bits)/2)
	for i := range out {
		re := invSqrt2
		if bits[2*i]&1 == 1 {
			re = -invSqrt2
		}
		im := invSqrt2
		if bits[2*i+1]&1 == 1 {
			im = -invSqrt2
		}
		out[i] = complex(re, im)
	}
	return out
}

// QPSKDemodulate computes per-bit LLRs (positive ⇒ bit 0) for the given
// symbols and noise variance σ² per complex dimension pair. llr must have
// 2·len(syms) capacity; it is returned resliced.
func QPSKDemodulate(syms []complex128, noiseVar float64, llr []float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	llr = llr[:0]
	scale := 2 * math.Sqrt2 / noiseVar
	for _, s := range syms {
		llr = append(llr, scale*real(s), scale*imag(s))
	}
	return llr
}

// QPSKHard performs hard-decision demapping.
func QPSKHard(syms []complex128) []byte {
	out := make([]byte, 2*len(syms))
	for i, s := range syms {
		if real(s) < 0 {
			out[2*i] = 1
		}
		if imag(s) < 0 {
			out[2*i+1] = 1
		}
	}
	return out
}

// EstimateNoise estimates the noise variance of unit-energy QPSK symbols
// from the spread of their magnitudes around the decision points (an
// M2M4-style blind estimator, the "Noise Estimator – estimate" task). It
// returns a variance clamped to a small positive floor.
func EstimateNoise(syms []complex128) float64 {
	if len(syms) == 0 {
		return 1e-9
	}
	// E|y|² = Es + σ²; with decision-directed removal of the signal part:
	// average squared distance to the nearest constellation point.
	sum := 0.0
	for _, s := range syms {
		re, im := math.Abs(real(s)), math.Abs(imag(s))
		dre := re - invSqrt2
		dim := im - invSqrt2
		sum += dre*dre + dim*dim
	}
	v := sum / float64(len(syms))
	if v < 1e-9 {
		v = 1e-9
	}
	return v
}

// Interleaver is a rows×cols block interleaver (written row-wise, read
// column-wise), a bijection on bit positions. DVB-S2 applies its bit
// interleaver to 8PSK and above; the paper's QPSK chain still carries an
// interleaver task, so the codeword passes through this permutation.
type Interleaver struct {
	rows, cols int
	perm       []int32 // perm[i] = source index of output position i
	inv        []int32
}

// NewInterleaver builds an interleaver for n bits using c columns; n must
// be divisible by c.
func NewInterleaver(n, c int) (*Interleaver, error) {
	if c <= 0 || n <= 0 || n%c != 0 {
		return nil, fmt.Errorf("dvbs2: interleaver %d bits / %d columns", n, c)
	}
	il := &Interleaver{rows: n / c, cols: c, perm: make([]int32, n), inv: make([]int32, n)}
	i := 0
	for col := 0; col < c; col++ {
		for row := 0; row < il.rows; row++ {
			src := row*c + col
			il.perm[i] = int32(src)
			il.inv[src] = int32(i)
			i++
		}
	}
	return il, nil
}

// Interleave permutes bits into dst (allocated if nil) and returns dst.
func (il *Interleaver) Interleave(bits []byte, dst []byte) []byte {
	if len(bits) != len(il.perm) {
		panic(fmt.Sprintf("dvbs2: interleave %d bits, want %d", len(bits), len(il.perm)))
	}
	if dst == nil {
		dst = make([]byte, len(bits))
	}
	for i, src := range il.perm {
		dst[i] = bits[src]
	}
	return dst
}

// DeinterleaveLLR applies the inverse permutation to soft values.
func (il *Interleaver) DeinterleaveLLR(llr []float64, dst []float64) []float64 {
	if len(llr) != len(il.perm) {
		panic(fmt.Sprintf("dvbs2: deinterleave %d LLRs, want %d", len(llr), len(il.perm)))
	}
	if dst == nil {
		dst = make([]float64, len(llr))
	}
	for i, src := range il.perm {
		dst[src] = llr[i]
	}
	return dst
}

// Deinterleave applies the inverse permutation to hard bits.
func (il *Interleaver) Deinterleave(bits []byte, dst []byte) []byte {
	if len(bits) != len(il.perm) {
		panic(fmt.Sprintf("dvbs2: deinterleave %d bits, want %d", len(bits), len(il.perm)))
	}
	if dst == nil {
		dst = make([]byte, len(bits))
	}
	for i, src := range il.perm {
		dst[src] = bits[i]
	}
	return dst
}
