package dvbs2

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ampsched/internal/core"
	"ampsched/internal/streampu"
)

// FramePayload is the data a frame carries through the receiver chain.
type FramePayload struct {
	Samples   []complex128 // oversampled front-end chunk (FrameSamples)
	Filtered  []complex128 // matched-filter output (partial sums in part 1)
	partial   []complex128 // part-1 partial convolution
	Symbols   []complex128 // timing-recovered symbols (FrameSymbols)
	Aligned   []complex128 // frame-aligned PLFRAME symbols
	Payload   []complex128 // payload symbols after header removal
	LLRs      []float64
	LLRsDeint []float64
	LDPCBits  []byte
	Bits      []byte // decoded information bits (K_bch)
	RefBits   []byte

	NoiseVar      float64
	SyncMetric    float64
	SyncOffset    int
	Locked        bool
	Skipped       bool // frame emitted before frame lock; carries no data
	LDPCIters     int
	LDPCConverged bool
	BCHCorrected  int
	BCHOK         bool
	Counter       uint32
	BitErrors     int
}

// MonitorStats aggregates receiver-side quality counters. The monitor
// task is replicable, so the counters are atomics shared by its clones.
type MonitorStats struct {
	Frames       atomic.Int64 // frames checked (post-lock)
	Skipped      atomic.Int64 // frames before lock
	BitErrors    atomic.Int64
	FrameErrors  atomic.Int64 // frames with ≥1 residual bit error
	BCHFailures  atomic.Int64
	LDPCDiverged atomic.Int64
	BitsChecked  atomic.Int64
}

// BER returns the residual bit-error rate seen by the monitor.
func (m *MonitorStats) BER() float64 {
	b := m.BitsChecked.Load()
	if b == 0 {
		return 0
	}
	return float64(m.BitErrors.Load()) / float64(b)
}

// Receiver owns the DVB-S2 receive chain: 23 tasks mirroring Table III,
// ready to run on the streampu runtime.
type Receiver struct {
	p      Params
	stream *TxStream
	mu     sync.Mutex // guards stream (radio task is sequential, but belt and braces)

	bch    *BCH
	ldpc   *LDPC
	il     *Interleaver
	pls    *PLScrambler
	header []complex128

	agc1        *AGC
	coarse      *CoarseFreqSync
	mf1         *FIR
	mf2         *FIR
	tim         *GardnerSync
	extractFIFO []complex128
	fsearch     *FrameSearcher
	fextract    *FrameExtractor
	agc2        *AGC
	fine        *FineFreqSync

	Monitor    MonitorStats
	SinkFrames atomic.Int64
	SinkBits   atomic.Int64
}

// NewReceiver builds the receive chain fed by the given stream. The
// transmitter provides the shared codecs and known header.
func NewReceiver(tx *Transmitter, stream *TxStream) *Receiver {
	p := tx.p
	bch, ldpc, il, pls := tx.Codecs()
	taps := RRCTaps(p.RollOff, p.FilterSpan, p.SPS)
	half := len(taps) / 2
	// The matched filter is split across two pipeline tasks by splitting
	// the tap set: part 1 convolves the first half of the taps, part 2
	// the (delayed) second half, and their outputs sum. Each part owns an
	// independent delay line over the same input stream, so the split is
	// safe under pipelining.
	taps1 := taps[:half]
	taps2 := make([]float64, len(taps))
	copy(taps2[half:], taps[half:])
	r := &Receiver{
		p: p, stream: stream,
		bch: bch, ldpc: ldpc, il: il, pls: pls,
		header:   tx.Header(),
		agc1:     NewAGC(1),
		coarse:   NewCoarseFreqSync(p.SPS),
		mf1:      NewFIR(taps1),
		mf2:      NewFIR(taps2),
		tim:      NewGardnerSync(p.SPS),
		fsearch:  NewFrameSearcher(tx.Header()[:p.SOFLen], p.FrameSymbols()),
		fextract: NewFrameExtractor(p.FrameSymbols()),
		agc2:     NewAGC(1),
		fine:     NewFineFreqSync(tx.Header()),
	}
	return r
}

// Params returns the receiver's configuration.
func (r *Receiver) Params() Params { return r.p }

func payloadOf(f *streampu.Frame) *FramePayload {
	if f.Data == nil {
		f.Data = &FramePayload{}
	}
	return f.Data.(*FramePayload)
}

// seqTask builds a non-replicable task.
func seqTask(name string, fn func(pl *FramePayload) error) streampu.Task {
	return &streampu.FuncTask{TaskName: name, Rep: false, Fn: func(w *streampu.Worker, f *streampu.Frame) error {
		return fn(payloadOf(f))
	}}
}

// repTask builds a replicable task.
func repTask(name string, fn func(pl *FramePayload) error) streampu.Task {
	return &streampu.FuncTask{TaskName: name, Rep: true, Fn: func(w *streampu.Worker, f *streampu.Frame) error {
		return fn(payloadOf(f))
	}}
}

// Tasks returns the 23-task receive chain in Table III's order with the
// published replicability flags.
func (r *Receiver) Tasks() []streampu.Task {
	p := r.p
	H := p.HeaderSymbols()
	tasks := []streampu.Task{
		seqTask("Radio – receive", func(pl *FramePayload) error { // τ1
			// Recycled payloads keep their buffer; Read overwrites it all.
			if len(pl.Samples) != p.FrameSamples() {
				pl.Samples = make([]complex128, p.FrameSamples())
			}
			r.mu.Lock()
			r.stream.Read(pl.Samples)
			r.mu.Unlock()
			return nil
		}),
		seqTask("Multiplier AGC – imultiply", func(pl *FramePayload) error { // τ2
			r.agc1.Process(pl.Samples)
			return nil
		}),
		seqTask("Sync. Freq. Coarse – synchronize", func(pl *FramePayload) error { // τ3
			r.coarse.Process(pl.Samples)
			return nil
		}),
		seqTask("Filter Matched – filter (part 1)", func(pl *FramePayload) error { // τ4
			pl.partial = r.mf1.Process(pl.Samples, nil)
			return nil
		}),
		seqTask("Filter Matched – filter (part 2)", func(pl *FramePayload) error { // τ5
			pl.Filtered = r.mf2.Process(pl.Samples, nil)
			for i := range pl.Filtered {
				pl.Filtered[i] += pl.partial[i]
			}
			return nil
		}),
		seqTask("Sync. Timing – synchronize", func(pl *FramePayload) error { // τ6
			pl.Symbols = r.tim.Process(pl.Filtered, nil)
			return nil
		}),
		seqTask("Sync. Timing – extract", func(pl *FramePayload) error { // τ7
			// Regularize the variable-size timing output to exactly one
			// frame of symbols per chunk (zero-padded during startup).
			r.extractFIFO = append(r.extractFIFO, pl.Symbols...)
			n := p.FrameSymbols()
			out := make([]complex128, n)
			// Only consume whole frames: while the timing loop warms up
			// the chunk stays all-zero and the buffered symbols surface a
			// chunk later, keeping the symbol stream contiguous.
			if len(r.extractFIFO) >= n {
				copy(out, r.extractFIFO[:n])
				r.extractFIFO = append(r.extractFIFO[:0], r.extractFIFO[n:]...)
			}
			pl.Symbols = out
			return nil
		}),
		seqTask("Multiplier AGC – imultiply (2)", func(pl *FramePayload) error { // τ8
			r.agc2.Process(pl.Symbols)
			return nil
		}),
		seqTask("Sync. Frame – synchronize (part 1)", func(pl *FramePayload) error { // τ9
			pl.SyncMetric = r.fsearch.Search(pl.Symbols)
			pl.SyncOffset = r.fsearch.Offset()
			pl.Locked = r.fsearch.Locked()
			return nil
		}),
		seqTask("Sync. Frame – synchronize (part 2)", func(pl *FramePayload) error { // τ10
			pl.Aligned = r.fextract.Extract(pl.Symbols, pl.SyncOffset, pl.Locked)
			// Assigned, not accumulated: frames recycle their payloads
			// (see streampu.FramePool), so a sticky flag would mark every
			// frame that reuses this allocation as skipped.
			pl.Skipped = pl.Aligned == nil
			return nil
		}),
		repTask("Scrambler Symbol – descramble", func(pl *FramePayload) error { // τ11
			if pl.Skipped {
				return nil
			}
			r.pls.Descramble(pl.Aligned[H:])
			return nil
		}),
		seqTask("Sync. Freq. Fine L&R – synchronize", func(pl *FramePayload) error { // τ12
			if pl.Skipped {
				return nil
			}
			r.fine.Process(pl.Aligned)
			return nil
		}),
		repTask("Sync. Freq. Fine P/F – synchronize", func(pl *FramePayload) error { // τ13
			if pl.Skipped {
				return nil
			}
			// Blind per-frame frequency trim over the whole frame (the
			// header-based L&R leaves a small per-frame residual), then
			// data-aided constant-phase correction. Both are pure
			// functions of the frame: the task stays replicable.
			DerotateRamp(pl.Aligned, Pow4FreqEstimate(pl.Aligned, 16))
			phi := PhaseEstimate(pl.Aligned[:H], r.header)
			Derotate(pl.Aligned, phi)
			return nil
		}),
		repTask("Framer PLH – remove", func(pl *FramePayload) error { // τ14
			if pl.Skipped {
				return nil
			}
			pl.Payload = pl.Aligned[H:]
			return nil
		}),
		repTask("Noise Estimator – estimate", func(pl *FramePayload) error { // τ15
			if pl.Skipped {
				return nil
			}
			pl.NoiseVar = EstimateNoise(pl.Payload)
			return nil
		}),
		repTask("Modem QPSK – demodulate", func(pl *FramePayload) error { // τ16
			if pl.Skipped {
				return nil
			}
			pl.LLRs = QPSKDemodulate(pl.Payload, pl.NoiseVar, make([]float64, 0, 2*len(pl.Payload)))
			return nil
		}),
		repTask("Interleaver – deinterleave", func(pl *FramePayload) error { // τ17
			if pl.Skipped {
				return nil
			}
			pl.LLRsDeint = r.il.DeinterleaveLLR(pl.LLRs, nil)
			return nil
		}),
		r.newLDPCTask(), // τ18, clonable per replica
		repTask("Decoder BCH – decode HIHO", func(pl *FramePayload) error { // τ19
			if pl.Skipped {
				return nil
			}
			cw := append([]byte(nil), pl.LDPCBits[:r.bch.N()]...)
			info, corrected, ok := r.bch.Decode(cw)
			pl.Bits = append([]byte(nil), info...)
			pl.BCHCorrected = corrected
			pl.BCHOK = ok
			return nil
		}),
		repTask("Scrambler Binary – descramble", func(pl *FramePayload) error { // τ20
			if pl.Skipped {
				return nil
			}
			BBScramble(pl.Bits)
			return nil
		}),
		seqTask("Sink Binary File – send", func(pl *FramePayload) error { // τ21
			if pl.Skipped {
				return nil
			}
			r.SinkFrames.Add(1)
			r.SinkBits.Add(int64(len(pl.Bits)))
			return nil
		}),
		seqTask("Source – generate", func(pl *FramePayload) error { // τ22
			if pl.Skipped {
				return nil
			}
			pl.Counter = DecodeCounter(pl.Bits)
			pl.RefBits = GenerateBBFrame(pl.Counter, p.KBch())
			return nil
		}),
		repTask("Monitor – check errors", func(pl *FramePayload) error { // τ23
			if pl.Skipped {
				r.Monitor.Skipped.Add(1)
				return nil
			}
			pl.BitErrors = CountBitErrors(pl.Bits, pl.RefBits)
			r.Monitor.Frames.Add(1)
			r.Monitor.BitsChecked.Add(int64(len(pl.Bits)))
			r.Monitor.BitErrors.Add(int64(pl.BitErrors))
			if pl.BitErrors > 0 {
				r.Monitor.FrameErrors.Add(1)
			}
			if !pl.BCHOK {
				r.Monitor.BCHFailures.Add(1)
			}
			if !pl.LDPCConverged {
				r.Monitor.LDPCDiverged.Add(1)
			}
			return nil
		}),
	}
	if len(tasks) != 23 {
		panic(fmt.Sprintf("dvbs2: receiver has %d tasks, want 23", len(tasks)))
	}
	return tasks
}

// ldpcTask wraps a per-replica LDPC decoder (clonable scratch).
type ldpcTask struct {
	r   *Receiver
	dec *Decoder
}

func (r *Receiver) newLDPCTask() streampu.Task {
	return &ldpcTask{r: r, dec: r.ldpc.NewDecoder()}
}

func (t *ldpcTask) Name() string     { return "Decoder LDPC – decode SIHO" }
func (t *ldpcTask) Replicable() bool { return true }
func (t *ldpcTask) Clone() streampu.Task {
	return &ldpcTask{r: t.r, dec: t.r.ldpc.NewDecoder()}
}

func (t *ldpcTask) Process(w *streampu.Worker, f *streampu.Frame) error {
	pl := payloadOf(f)
	if pl.Skipped {
		return nil
	}
	hard, res := t.dec.Decode(pl.LLRsDeint)
	pl.LDPCBits = append([]byte(nil), hard[:t.r.ldpc.K()]...)
	pl.LDPCIters = res.Iterations
	pl.LDPCConverged = res.Converged
	return nil
}

// ModelChain returns a scheduling model of this receiver with the given
// per-task weights (e.g. from live profiling); replicability flags follow
// the implementation (which matches Table III).
func (r *Receiver) ModelChain(weights [][]float64) (*core.Chain, error) {
	tasks := r.Tasks()
	if len(weights) != len(tasks) {
		return nil, fmt.Errorf("dvbs2: %d weights for %d tasks", len(weights), len(tasks))
	}
	return streampu.ModelChain(tasks, func(i int, t streampu.Task) []float64 {
		return weights[i]
	})
}
