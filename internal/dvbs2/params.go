// Package dvbs2 implements a functional DVB-S2-like digital communication
// transceiver in pure Go: BB/PL scramblers, BCH and LDPC coding, QPSK
// modulation, root-raised-cosine filtering, timing/frame/frequency
// synchronization, and a baseband channel model. Its receiver decomposes
// into the 23-task chain profiled in the paper's Table III and plugs into
// the internal/streampu runtime, so the paper's schedules execute a real
// signal-processing workload.
//
// Substitutions versus the ETSI standard (see DESIGN.md): the LDPC
// parity-check matrix is a synthetic quasi-cyclic IRA construction with
// the standard's short-frame dimensions instead of the ETSI annex address
// tables, and the BCH code is a generic narrow-sense BCH over GF(2^14)
// built from a primitive polynomial rather than the standard's exact
// generator product. The decoder kernels (horizontal layered normalized
// min-sum with early stopping; syndrome/Berlekamp–Massey/Chien HIHO) are
// real implementations.
package dvbs2

import "fmt"

// Params collects every numerological parameter of the transceiver.
type Params struct {
	// Q is the quasi-cyclic group size of the LDPC code (360 in DVB-S2).
	Q int
	// NLdpc and KLdpc are the LDPC codeword and information lengths in
	// bits; both must be multiples of Q.
	NLdpc, KLdpc int
	// LdpcDv is the variable-node degree of information bits.
	LdpcDv int
	// LdpcIters bounds the decoder iterations (the paper uses 10).
	LdpcIters int
	// LdpcNorm is the normalization factor of the min-sum decoder.
	LdpcNorm float64
	// LdpcSeed seeds the synthetic parity-check construction.
	LdpcSeed int64

	// BCHM selects the BCH field GF(2^BCHM); BCHT is the correction
	// capability t. The BCH codeword length is KLdpc and the BCH
	// information length KBch = KLdpc − BCHM·BCHT.
	BCHM, BCHT int

	// SOFLen and PLSCLen are the physical-layer header lengths in
	// symbols (26 + 64 = 90 in DVB-S2).
	SOFLen, PLSCLen int

	// SPS is the number of samples per symbol of the sample-rate
	// sections (2 in the paper's receiver).
	SPS int
	// RollOff and FilterSpan parameterize the root-raised-cosine filter
	// (roll-off factor and half-length in symbols).
	RollOff    float64
	FilterSpan int
}

// Default returns the paper's configuration: DVB-S2 short FECFRAME,
// rate 8/9 (N=16200, K_ldpc=14400, K_bch=14232, t=12 over GF(2^14)),
// QPSK (MODCOD 2), 2 samples per symbol, roll-off 0.2.
func Default() Params {
	return Params{
		Q: 360, NLdpc: 16200, KLdpc: 14400,
		LdpcDv: 3, LdpcIters: 10, LdpcNorm: 0.75, LdpcSeed: 0xD5B2,
		BCHM: 14, BCHT: 12,
		SOFLen: 26, PLSCLen: 64,
		SPS: 2, RollOff: 0.2, FilterSpan: 10,
	}
}

// Test returns a proportionally reduced configuration for fast tests:
// N=1620, K_ldpc=1440, BCH over GF(2^11) with t=4.
func Test() Params {
	return Params{
		Q: 36, NLdpc: 1620, KLdpc: 1440,
		LdpcDv: 3, LdpcIters: 10, LdpcNorm: 0.75, LdpcSeed: 0xD5B2,
		BCHM: 11, BCHT: 4,
		SOFLen: 26, PLSCLen: 64,
		SPS: 2, RollOff: 0.2, FilterSpan: 10,
	}
}

// KBch returns the BCH (outer code) information length in bits.
func (p Params) KBch() int { return p.KLdpc - p.BCHM*p.BCHT }

// HeaderSymbols returns the physical-layer header length in symbols.
func (p Params) HeaderSymbols() int { return p.SOFLen + p.PLSCLen }

// PayloadSymbols returns the number of QPSK payload symbols per frame.
func (p Params) PayloadSymbols() int { return p.NLdpc / 2 }

// FrameSymbols returns the total PLFRAME length in symbols.
func (p Params) FrameSymbols() int { return p.HeaderSymbols() + p.PayloadSymbols() }

// FrameSamples returns the PLFRAME length in channel samples.
func (p Params) FrameSamples() int { return p.FrameSymbols() * p.SPS }

// Validate reports configuration inconsistencies.
func (p Params) Validate() error {
	switch {
	case p.Q <= 0 || p.NLdpc <= 0 || p.KLdpc <= 0:
		return fmt.Errorf("dvbs2: non-positive code sizes %+v", p)
	case p.NLdpc%p.Q != 0 || p.KLdpc%p.Q != 0:
		return fmt.Errorf("dvbs2: N=%d K=%d not multiples of Q=%d", p.NLdpc, p.KLdpc, p.Q)
	case p.KLdpc >= p.NLdpc:
		return fmt.Errorf("dvbs2: K=%d must be below N=%d", p.KLdpc, p.NLdpc)
	case p.NLdpc%2 != 0:
		return fmt.Errorf("dvbs2: N=%d must be even for QPSK", p.NLdpc)
	case p.LdpcDv < 2:
		return fmt.Errorf("dvbs2: variable degree %d too small", p.LdpcDv)
	case p.BCHM < 4 || p.BCHM > 16:
		return fmt.Errorf("dvbs2: BCH field GF(2^%d) unsupported", p.BCHM)
	case p.KLdpc > (1<<p.BCHM)-1:
		return fmt.Errorf("dvbs2: BCH codeword %d exceeds field bound %d", p.KLdpc, (1<<p.BCHM)-1)
	case p.BCHT < 1:
		return fmt.Errorf("dvbs2: BCH t=%d", p.BCHT)
	case p.KBch() <= 32:
		return fmt.Errorf("dvbs2: K_bch=%d leaves no payload", p.KBch())
	case p.SPS < 2:
		return fmt.Errorf("dvbs2: %d samples per symbol (< 2) breaks timing recovery", p.SPS)
	case p.RollOff <= 0 || p.RollOff >= 1:
		return fmt.Errorf("dvbs2: roll-off %v outside (0,1)", p.RollOff)
	case p.FilterSpan < 2:
		return fmt.Errorf("dvbs2: filter span %d too short", p.FilterSpan)
	case p.SOFLen < 8 || p.PLSCLen < 0:
		return fmt.Errorf("dvbs2: header lengths %d/%d invalid", p.SOFLen, p.PLSCLen)
	}
	return nil
}
