package dvbs2

import (
	"fmt"
	"sync"

	"ampsched/internal/streampu"
)

// The transmitter as a streaming task chain. The paper schedules the
// DVB-S2 *receiver*; its open-source workload also ships the transmitter
// as a StreamPU sequence. TxChain exposes the same decomposition here —
// a 10-task chain (source, BB scrambler, BCH, LDPC, interleaver, QPSK,
// PLH framer, PL scrambler, shaping filter, radio send) that can be
// profiled, scheduled and executed on the streampu runtime exactly like
// the receiver.

// TxPayload is the per-frame data of the transmit chain.
type TxPayload struct {
	Counter uint32
	Bits    []byte       // information bits (K_bch), then scrambled
	BCHCW   []byte       // BCH codeword (K_ldpc)
	LDPCCW  []byte       // LDPC codeword (N_ldpc)
	Inter   []byte       // interleaved codeword
	Payload []complex128 // payload symbols
	Frame   []complex128 // PLFRAME symbols (header + scrambled payload)
	Samples []complex128 // pulse-shaped output samples
}

// TxChain is the transmitter decomposed into pipeline tasks.
type TxChain struct {
	p      Params
	bch    *BCH
	ldpc   *LDPC
	il     *Interleaver
	pls    *PLScrambler
	header []complex128
	shaper *FIR
	mu     sync.Mutex // guards shaper (single sequential filter task)

	// Emit receives each frame's samples in order; nil discards them.
	Emit func(samples []complex128)

	SentFrames int64
	SentBits   int64
}

// NewTxChain builds the transmit chain for the given parameters.
func NewTxChain(p Params, emit func([]complex128)) (*TxChain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bch, err := NewBCH(p.BCHM, p.BCHT, p.KBch())
	if err != nil {
		return nil, err
	}
	if bch.N() != p.KLdpc {
		return nil, fmt.Errorf("dvbs2: BCH codeword %d != K_ldpc %d", bch.N(), p.KLdpc)
	}
	ldpc, err := NewLDPC(p)
	if err != nil {
		return nil, err
	}
	il, err := NewInterleaver(p.NLdpc, interleaverColumns(p))
	if err != nil {
		return nil, err
	}
	return &TxChain{
		p: p, bch: bch, ldpc: ldpc, il: il,
		pls:    NewPLScrambler(p.PayloadSymbols()),
		header: PLHeader(p.SOFLen, p.PLSCLen),
		shaper: NewFIR(RRCTaps(p.RollOff, p.FilterSpan, p.SPS)),
		Emit:   emit,
	}, nil
}

func txPayloadOf(f *streampu.Frame) *TxPayload {
	if f.Data == nil {
		f.Data = &TxPayload{}
	}
	return f.Data.(*TxPayload)
}

func txSeq(name string, fn func(pl *TxPayload) error) streampu.Task {
	return &streampu.FuncTask{TaskName: name, Rep: false, Fn: func(w *streampu.Worker, f *streampu.Frame) error {
		return fn(txPayloadOf(f))
	}}
}

func txRep(name string, fn func(pl *TxPayload) error) streampu.Task {
	return &streampu.FuncTask{TaskName: name, Rep: true, Fn: func(w *streampu.Worker, f *streampu.Frame) error {
		return fn(txPayloadOf(f))
	}}
}

// Tasks returns the 10-task transmit chain. The source derives each
// frame's content from the pipeline sequence number, so the chain's
// replicable tasks really are stateless; only the source counter
// assignment, the shaping filter (FIR state) and the radio sink are
// sequential.
func (t *TxChain) Tasks() []streampu.Task {
	p := t.p
	tasks := []streampu.Task{
		txSeq("Source – generate", func(pl *TxPayload) error { // stateful by contract
			pl.Bits = GenerateBBFrame(pl.Counter, p.KBch())
			return nil
		}),
		txRep("Scrambler Binary – scramble", func(pl *TxPayload) error {
			BBScramble(pl.Bits)
			return nil
		}),
		txRep("Encoder BCH – encode", func(pl *TxPayload) error {
			pl.BCHCW = t.bch.Encode(pl.Bits)
			return nil
		}),
		txRep("Encoder LDPC – encode", func(pl *TxPayload) error {
			pl.LDPCCW = t.ldpc.Encode(pl.BCHCW)
			return nil
		}),
		txRep("Interleaver – interleave", func(pl *TxPayload) error {
			pl.Inter = t.il.Interleave(pl.LDPCCW, nil)
			return nil
		}),
		txRep("Modem QPSK – modulate", func(pl *TxPayload) error {
			pl.Payload = QPSKModulate(pl.Inter)
			return nil
		}),
		txRep("Framer PLH – insert", func(pl *TxPayload) error {
			pl.Frame = make([]complex128, 0, p.FrameSymbols())
			pl.Frame = append(pl.Frame, t.header...)
			pl.Frame = append(pl.Frame, pl.Payload...)
			return nil
		}),
		txRep("Scrambler Symbol – scramble", func(pl *TxPayload) error {
			t.pls.Scramble(pl.Frame[p.HeaderSymbols():])
			return nil
		}),
		txSeq("Filter Shaping – filter", func(pl *TxPayload) error {
			up := Upsample(pl.Frame, p.SPS, nil)
			t.mu.Lock()
			pl.Samples = t.shaper.Process(up, nil)
			t.mu.Unlock()
			return nil
		}),
		txSeq("Radio – send", func(pl *TxPayload) error {
			t.SentFrames++
			t.SentBits += int64(p.KBch())
			if t.Emit != nil {
				t.Emit(pl.Samples)
			}
			return nil
		}),
	}
	// Wire the counter from the frame sequence at the source.
	src := tasks[0].(*streampu.FuncTask)
	inner := src.Fn
	src.Fn = func(w *streampu.Worker, f *streampu.Frame) error {
		pl := txPayloadOf(f)
		pl.Counter = uint32(f.Seq)
		return inner(w, f)
	}
	return tasks
}
