package dvbs2

import (
	"math/rand"
	"testing"

	"ampsched/internal/streampu"
)

// BenchmarkLDPCDecode measures the layered NMS decoder at the paper's
// full short-FECFRAME size (N=16200) on a mildly noisy frame.
func BenchmarkLDPCDecode(b *testing.B) {
	l, err := NewLDPC(Default())
	if err != nil {
		b.Fatal(err)
	}
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(1))
	info := make([]byte, l.K())
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	cw := l.Encode(info)
	llr := make([]float64, l.N())
	for i, bit := range cw {
		x := 1.0
		if bit == 1 {
			x = -1
		}
		llr[i] = 2 * (x + 0.3*rng.NormFloat64()) / 0.09
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, res := d.Decode(llr); !res.Converged {
			b.Fatal("decode diverged")
		}
	}
}

// BenchmarkLDPCEncode measures the linear-time IRA encoder.
func BenchmarkLDPCEncode(b *testing.B) {
	l, err := NewLDPC(Default())
	if err != nil {
		b.Fatal(err)
	}
	info := make([]byte, l.K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Encode(info)
	}
}

// BenchmarkBCHDecode measures the HIHO pipeline (syndromes, BM, Chien) at
// the paper's GF(2^14), t=12 configuration with t errors injected.
func BenchmarkBCHDecode(b *testing.B) {
	p := Default()
	codec, err := NewBCH(p.BCHM, p.BCHT, p.KBch())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	info := make([]byte, codec.K())
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	clean := codec.Encode(info)
	cw := make([]byte, len(clean))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(cw, clean)
		for e := 0; e < codec.T(); e++ {
			cw[(i*7919+e*131)%len(cw)] ^= 1
		}
		if _, _, ok := codec.Decode(cw); !ok {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkBCHEncode measures the LFSR-division encoder.
func BenchmarkBCHEncode(b *testing.B) {
	p := Default()
	codec, err := NewBCH(p.BCHM, p.BCHT, p.KBch())
	if err != nil {
		b.Fatal(err)
	}
	info := make([]byte, codec.K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Encode(info)
	}
}

// BenchmarkReceiverFrame measures one full receiver pass (all 23 tasks,
// sequentially) over one frame at the reduced test numerology.
func BenchmarkReceiverFrame(b *testing.B) {
	tx, err := NewTransmitter(Test())
	if err != nil {
		b.Fatal(err)
	}
	rx := NewReceiver(tx, NewTxStream(tx, DefaultChannel()))
	tasks := rx.Tasks()
	// Warm up past frame lock.
	if _, err := streampu.RunChain(tasks, 6, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := streampu.RunChain(tasks, b.N, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTransmitterFrame measures one full transmit pass.
func BenchmarkTransmitterFrame(b *testing.B) {
	tx, err := NewTransmitter(Test())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.EncodeFrame()
	}
}
