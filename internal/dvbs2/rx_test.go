package dvbs2

import (
	"fmt"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/streampu"
)

func buildRx(t *testing.T, imp Impairments) *Receiver {
	t.Helper()
	tx, err := NewTransmitter(Test())
	if err != nil {
		t.Fatal(err)
	}
	return NewReceiver(tx, NewTxStream(tx, imp))
}

func TestReceiverChainShapeMatchesTableIII(t *testing.T) {
	rx := buildRx(t, CleanChannel())
	tasks := rx.Tasks()
	if len(tasks) != 23 {
		t.Fatalf("%d tasks, want 23", len(tasks))
	}
	// Replicability flags of Table III: τ11, τ13..τ20, τ23 replicable.
	wantRep := map[int]bool{10: true, 12: true, 13: true, 14: true, 15: true,
		16: true, 17: true, 18: true, 19: true, 22: true}
	for i, task := range tasks {
		if got := task.Replicable(); got != wantRep[i] {
			t.Errorf("τ%d (%s): replicable=%v, want %v", i+1, task.Name(), got, wantRep[i])
		}
	}
}

func TestEndToEndCleanChannel(t *testing.T) {
	rx := buildRx(t, CleanChannel())
	st, err := streampu.RunChain(rx.Tasks(), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 10 {
		t.Fatalf("processed %d frames", st.Frames)
	}
	checked := rx.Monitor.Frames.Load()
	if checked < 7 {
		t.Fatalf("only %d frames checked after lock (skipped %d)",
			checked, rx.Monitor.Skipped.Load())
	}
	if errs := rx.Monitor.BitErrors.Load(); errs != 0 {
		t.Fatalf("clean channel produced %d bit errors over %d bits (BER %.2e)",
			errs, rx.Monitor.BitsChecked.Load(), rx.Monitor.BER())
	}
}

func TestEndToEndImpairedChannel(t *testing.T) {
	rx := buildRx(t, DefaultChannel())
	st, err := streampu.RunChain(rx.Tasks(), 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 24 {
		t.Fatalf("processed %d frames", st.Frames)
	}
	checked := rx.Monitor.Frames.Load()
	if checked < 16 {
		t.Fatalf("only %d frames checked (skipped %d)", checked, rx.Monitor.Skipped.Load())
	}
	// Allow the first few post-lock frames to be dirty while loops settle;
	// the tail must be error-free ("error-free SNR zone").
	if fe := rx.Monitor.FrameErrors.Load(); fe > 6 {
		t.Fatalf("%d/%d frames had residual errors (BER %.2e, BCH failures %d, LDPC diverged %d)",
			fe, checked, rx.Monitor.BER(),
			rx.Monitor.BCHFailures.Load(), rx.Monitor.LDPCDiverged.Load())
	}
}

func TestEndToEndPipelined(t *testing.T) {
	// Run the receiver on a real multi-stage replicated schedule and
	// verify identical functional behaviour (order preservation and
	// replica cloning included).
	rx := buildRx(t, DefaultChannel())
	tasks := rx.Tasks()
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 9, Cores: 1, Type: core.Big},   // front end (sequential)
		{Start: 10, End: 10, Cores: 1, Type: core.Big}, // descrambler
		{Start: 11, End: 11, Cores: 1, Type: core.Big}, // fine freq (seq)
		{Start: 12, End: 19, Cores: 3, Type: core.Big}, // replicated decode block
		{Start: 20, End: 21, Cores: 1, Type: core.Little},
		{Start: 22, End: 22, Cores: 2, Type: core.Little}, // replicated monitor
	}}
	p, err := streampu.New(tasks, sol, streampu.Options{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 24 || st.Errored != 0 {
		t.Fatalf("stats: %+v", st)
	}
	checked := rx.Monitor.Frames.Load()
	if checked < 16 {
		t.Fatalf("only %d frames checked (skipped %d)", checked, rx.Monitor.Skipped.Load())
	}
	if fe := rx.Monitor.FrameErrors.Load(); fe > 6 {
		t.Fatalf("pipelined run had %d/%d errored frames (BER %.2e)",
			fe, checked, rx.Monitor.BER())
	}
}

func TestMonitorBERAccounting(t *testing.T) {
	var m MonitorStats
	if m.BER() != 0 {
		t.Error("BER of empty monitor should be 0")
	}
	m.BitsChecked.Store(1000)
	m.BitErrors.Store(5)
	if m.BER() != 0.005 {
		t.Errorf("BER = %v", m.BER())
	}
}

func TestModelChainFromReceiver(t *testing.T) {
	rx := buildRx(t, CleanChannel())
	weights := make([][]float64, 23)
	for i := range weights {
		weights[i] = core.Weights(float64(i+1), float64(2*(i+1)))
	}
	c, err := rx.ModelChain(weights)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 23 {
		t.Fatalf("model has %d tasks", c.Len())
	}
	// Replicability must match the task implementations.
	if c.Task(0).Replicable || !c.Task(22).Replicable {
		t.Error("replicability flags wrong in model chain")
	}
	if _, err := rx.ModelChain(weights[:5]); err == nil {
		t.Error("short weight vector accepted")
	}
}

func TestReceiverDiagnosticsPropagate(t *testing.T) {
	rx := buildRx(t, CleanChannel())
	tasks := rx.Tasks()
	var lastPayload *FramePayload
	probe := &streampu.FuncTask{TaskName: "probe", Rep: false,
		Fn: func(w *streampu.Worker, f *streampu.Frame) error {
			lastPayload = f.Data.(*FramePayload)
			return nil
		}}
	all := append(append([]streampu.Task{}, tasks...), probe)
	if _, err := streampu.RunChain(all, 8, nil); err != nil {
		t.Fatal(err)
	}
	if lastPayload == nil {
		t.Fatal("probe never ran")
	}
	if lastPayload.Skipped {
		t.Fatal("last frame still skipped — no lock after 8 frames")
	}
	if !lastPayload.BCHOK || !lastPayload.LDPCConverged {
		t.Errorf("decode diagnostics: BCHOK=%v LDPCConverged=%v (iters %d)",
			lastPayload.BCHOK, lastPayload.LDPCConverged, lastPayload.LDPCIters)
	}
	if lastPayload.SyncMetric <= 0 {
		t.Errorf("sync metric %v", lastPayload.SyncMetric)
	}
	fmt.Println("diag: counter", lastPayload.Counter, "iters", lastPayload.LDPCIters,
		"bch corrected", lastPayload.BCHCorrected, "noiseVar", lastPayload.NoiseVar)
}
