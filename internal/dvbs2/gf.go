package dvbs2

import "fmt"

// gf implements arithmetic in GF(2^m) with log/antilog tables generated
// from a primitive polynomial, as used by the BCH codec.
type gf struct {
	m   int
	n   int // field order − 1 = 2^m − 1
	exp []uint32
	log []int
}

// primitivePolys maps m to a primitive polynomial of degree m over GF(2)
// (bitmask including the leading term). m=14 uses x^14+x^10+x^6+x+1, the
// polynomial of the DVB-S2 BCH field.
var primitivePolys = map[int]uint32{
	4:  0x13,
	5:  0x25,
	6:  0x43,
	7:  0x89,
	8:  0x11D,
	9:  0x211,
	10: 0x409,
	11: 0x805,
	12: 0x1053,
	13: 0x201B,
	14: 0x4443,
	15: 0x8003,
	16: 0x1100B,
}

func newGF(m int) (*gf, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("dvbs2: no primitive polynomial for GF(2^%d)", m)
	}
	n := (1 << m) - 1
	f := &gf{m: m, n: n, exp: make([]uint32, 2*n), log: make([]int, n+1)}
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.exp[i+n] = x // duplicated to skip a mod in mul
		f.log[x] = i
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("dvbs2: polynomial %#x is not primitive for m=%d", poly, m)
	}
	f.log[0] = -1
	return f, nil
}

// mul multiplies two field elements.
func (f *gf) mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// inv returns the multiplicative inverse of a ≠ 0.
func (f *gf) inv(a uint32) uint32 {
	return f.exp[f.n-f.log[a]]
}

// pow returns α^e for the field's primitive element α (e may be any
// integer; negative exponents wrap).
func (f *gf) pow(e int) uint32 {
	e %= f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// polyMulGF2 multiplies two polynomials over GF(2) given as bit slices
// (index = degree).
func polyMulGF2(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= bj
		}
	}
	return out
}

// minimalPoly returns the minimal polynomial over GF(2) of α^i as a bit
// slice (index = degree), computed from the cyclotomic coset of i.
func (f *gf) minimalPoly(i int) []byte {
	// Collect the coset {i, 2i, 4i, ...} mod n.
	coset := []int{}
	seen := map[int]bool{}
	for c := i % f.n; !seen[c]; c = (2 * c) % f.n {
		seen[c] = true
		coset = append(coset, c)
	}
	// Product of (x − α^c) over the coset, computed in GF(2^m); the
	// result has coefficients in GF(2).
	poly := []uint32{1} // constant polynomial 1, index = degree
	for _, c := range coset {
		root := f.pow(c)
		next := make([]uint32, len(poly)+1)
		for d, coef := range poly {
			next[d+1] ^= coef            // x · poly
			next[d] ^= f.mul(coef, root) // root · poly
		}
		poly = next
	}
	out := make([]byte, len(poly))
	for d, coef := range poly {
		if coef > 1 {
			panic(fmt.Sprintf("dvbs2: minimal polynomial has non-binary coefficient %d", coef))
		}
		out[d] = byte(coef)
	}
	return out
}
