package dvbs2

import (
	"math/rand"
	"testing"
)

func TestGFFieldProperties(t *testing.T) {
	for _, m := range []int{4, 8, 11, 14} {
		f, err := newGF(m)
		if err != nil {
			t.Fatalf("GF(2^%d): %v", m, err)
		}
		// α generates the full multiplicative group (checked in newGF),
		// exp/log are inverses, and basic identities hold.
		for _, a := range []uint32{1, 2, 3, uint32(f.n)} {
			if f.mul(a, 1) != a {
				t.Errorf("m=%d: a·1 != a for a=%d", m, a)
			}
			if f.mul(a, f.inv(a)) != 1 {
				t.Errorf("m=%d: a·a⁻¹ != 1 for a=%d", m, a)
			}
		}
		if f.mul(0, 5) != 0 || f.mul(7, 0) != 0 {
			t.Errorf("m=%d: multiplication by zero broken", m)
		}
		rng := rand.New(rand.NewSource(int64(m)))
		for i := 0; i < 200; i++ {
			a := uint32(rng.Intn(f.n)) + 1
			b := uint32(rng.Intn(f.n)) + 1
			c := uint32(rng.Intn(f.n)) + 1
			if f.mul(a, b) != f.mul(b, a) {
				t.Fatalf("m=%d: commutativity broken", m)
			}
			if f.mul(a, f.mul(b, c)) != f.mul(f.mul(a, b), c) {
				t.Fatalf("m=%d: associativity broken", m)
			}
		}
	}
}

func TestGFUnsupportedField(t *testing.T) {
	if _, err := newGF(3); err == nil {
		t.Error("GF(2^3) should be unsupported")
	}
}

func TestMinimalPolyDividesFieldPoly(t *testing.T) {
	// Each minimal polynomial must have α^i as a root: evaluate over the
	// field and check.
	f, err := newGF(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 3, 5, 7} {
		mp := f.minimalPoly(i)
		root := f.pow(i)
		var acc uint32
		xp := uint32(1)
		for _, c := range mp {
			if c != 0 {
				acc ^= xp
			}
			xp = f.mul(xp, root)
		}
		if acc != 0 {
			t.Errorf("minimalPoly(%d) does not vanish at α^%d", i, i)
		}
	}
}

func TestBCHEncodeDecodeNoErrors(t *testing.T) {
	b, err := NewBCH(11, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if b.ParityBits() != 44 {
		t.Errorf("parity bits = %d, want 44 (= m·t)", b.ParityBits())
	}
	rng := rand.New(rand.NewSource(1))
	info := randomBits(rng, b.K())
	cw := b.Encode(info)
	if len(cw) != b.N() {
		t.Fatalf("codeword length %d, want %d", len(cw), b.N())
	}
	dec, corrected, ok := b.Decode(append([]byte(nil), cw...))
	if !ok || corrected != 0 {
		t.Fatalf("clean decode failed: ok=%v corrected=%d", ok, corrected)
	}
	if CountBitErrors(dec, info) != 0 {
		t.Error("clean decode corrupted the info bits")
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	b, err := NewBCH(11, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		info := randomBits(rng, b.K())
		cw := b.Encode(info)
		nerr := 1 + rng.Intn(b.T())
		flip(rng, cw, nerr)
		dec, corrected, ok := b.Decode(cw)
		if !ok {
			t.Fatalf("trial %d: decode failed with %d ≤ t errors", trial, nerr)
		}
		if corrected != nerr {
			t.Fatalf("trial %d: corrected %d, want %d", trial, corrected, nerr)
		}
		if CountBitErrors(dec, info) != 0 {
			t.Fatalf("trial %d: residual errors after decode", trial)
		}
	}
}

func TestBCHDetectsBeyondT(t *testing.T) {
	b, err := NewBCH(11, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	failures := 0
	for trial := 0; trial < 20; trial++ {
		info := randomBits(rng, b.K())
		cw := b.Encode(info)
		flip(rng, cw, b.T()+2+rng.Intn(5))
		if _, _, ok := b.Decode(cw); !ok {
			failures++
		}
	}
	// Beyond-t patterns usually fail (they may occasionally alias to a
	// valid codeword); require that detection fires most of the time.
	if failures < 15 {
		t.Errorf("only %d/20 beyond-t patterns detected", failures)
	}
}

func TestBCHPaperDimensions(t *testing.T) {
	// The paper's configuration: GF(2^14), t=12, K_bch=14232 → N=14400.
	p := Default()
	b, err := NewBCH(p.BCHM, p.BCHT, p.KBch())
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != p.KLdpc {
		t.Fatalf("BCH codeword %d, want K_ldpc=%d", b.N(), p.KLdpc)
	}
	rng := rand.New(rand.NewSource(4))
	info := randomBits(rng, b.K())
	cw := b.Encode(info)
	flip(rng, cw, 12)
	dec, corrected, ok := b.Decode(cw)
	if !ok || corrected != 12 {
		t.Fatalf("full-size decode: ok=%v corrected=%d", ok, corrected)
	}
	if CountBitErrors(dec, info) != 0 {
		t.Error("full-size decode left residual errors")
	}
}

func TestBCHValidation(t *testing.T) {
	if _, err := NewBCH(4, 2, 2000); err == nil {
		t.Error("oversized codeword accepted")
	}
	if _, err := NewBCH(11, 4, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBCH(3, 1, 2); err == nil {
		t.Error("unsupported field accepted")
	}
}

func randomBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func flip(rng *rand.Rand, bits []byte, n int) {
	done := map[int]bool{}
	for len(done) < n {
		i := rng.Intn(len(bits))
		if !done[i] {
			done[i] = true
			bits[i] ^= 1
		}
	}
}
