package dvbs2

import (
	"math/cmplx"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/streampu"
)

func TestTxChainMatchesMonolithicTransmitter(t *testing.T) {
	p := Test()
	// Reference: the monolithic transmitter.
	ref, err := NewTransmitter(p)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]complex128{}
	for i := 0; i < 4; i++ {
		want = append(want, append([]complex128(nil), ref.EncodeFrame()...))
	}
	// Chain under test, sequential execution.
	var got [][]complex128
	tc, err := NewTxChain(p, func(s []complex128) {
		got = append(got, append([]complex128(nil), s...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streampu.RunChain(tc.Tasks(), 4, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("emitted %d frames", len(got))
	}
	for k := range want {
		if len(got[k]) != len(want[k]) {
			t.Fatalf("frame %d length %d vs %d", k, len(got[k]), len(want[k]))
		}
		for i := range want[k] {
			if cmplx.Abs(got[k][i]-want[k][i]) > 1e-12 {
				t.Fatalf("frame %d sample %d differs: %v vs %v", k, i, got[k][i], want[k][i])
			}
		}
	}
	if tc.SentFrames != 4 || tc.SentBits != int64(4*p.KBch()) {
		t.Errorf("sink counters %d/%d", tc.SentFrames, tc.SentBits)
	}
}

func TestTxChainShape(t *testing.T) {
	tc, err := NewTxChain(Test(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tasks := tc.Tasks()
	if len(tasks) != 10 {
		t.Fatalf("%d tasks", len(tasks))
	}
	// Source, shaping filter and radio sink are sequential; the coding
	// and modulation stack is replicable.
	wantRep := []bool{false, true, true, true, true, true, true, true, false, false}
	for i, task := range tasks {
		if task.Replicable() != wantRep[i] {
			t.Errorf("task %d (%s) replicable=%v, want %v",
				i, task.Name(), task.Replicable(), wantRep[i])
		}
	}
	if _, err := NewTxChain(Params{}, nil); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTxChainPipelinedWithReplication(t *testing.T) {
	// Replicate the coding block across 3 workers and verify the emitted
	// sample stream is identical to the sequential reference (order
	// preservation + statelessness of the replicated tasks).
	p := Test()
	var seqOut [][]complex128
	tcSeq, err := NewTxChain(p, func(s []complex128) {
		seqOut = append(seqOut, append([]complex128(nil), s...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streampu.RunChain(tcSeq.Tasks(), 12, nil); err != nil {
		t.Fatal(err)
	}

	var pipeOut [][]complex128
	tcPipe, err := NewTxChain(p, func(s []complex128) {
		pipeOut = append(pipeOut, append([]complex128(nil), s...))
	})
	if err != nil {
		t.Fatal(err)
	}
	sol := core.Solution{Stages: []core.Stage{
		{Start: 0, End: 0, Cores: 1, Type: core.Big},
		{Start: 1, End: 7, Cores: 3, Type: core.Big}, // replicated coding block
		{Start: 8, End: 9, Cores: 1, Type: core.Little},
	}}
	pipe, err := streampu.New(tcPipe.Tasks(), sol, streampu.Options{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipe.Run(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 12 || st.Errored != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(pipeOut) != len(seqOut) {
		t.Fatalf("pipelined emitted %d frames, sequential %d", len(pipeOut), len(seqOut))
	}
	for k := range seqOut {
		for i := range seqOut[k] {
			if cmplx.Abs(pipeOut[k][i]-seqOut[k][i]) > 1e-12 {
				t.Fatalf("frame %d sample %d differs under replication", k, i)
			}
		}
	}
}

func TestTxChainFeedsReceiver(t *testing.T) {
	// Full loopback: the Tx *chain* produces the sample stream, an
	// impairment-free channel hands it to the receiver chain, and every
	// decoded frame must be error-free. This exercises both pipelines'
	// code paths end to end.
	p := Test()
	var stream []complex128
	tc, err := NewTxChain(p, func(s []complex128) {
		stream = append(stream, s...)
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := 12
	if _, err := streampu.RunChain(tc.Tasks(), frames, nil); err != nil {
		t.Fatal(err)
	}
	// Receiver fed from the recorded stream rather than a TxStream.
	tx, err := NewTransmitter(p)
	if err != nil {
		t.Fatal(err)
	}
	rx := NewReceiver(tx, nil)
	pos := 0
	rxTasks := rx.Tasks()
	rxTasks[0] = &streampu.FuncTask{TaskName: "Radio – receive (loopback)", Rep: false,
		Fn: func(w *streampu.Worker, f *streampu.Frame) error {
			pl := payloadOf(f)
			pl.Samples = make([]complex128, p.FrameSamples())
			n := copy(pl.Samples, stream[pos:])
			pos += n
			return nil
		}}
	if _, err := streampu.RunChain(rxTasks, frames, nil); err != nil {
		t.Fatal(err)
	}
	if rx.Monitor.Frames.Load() < int64(frames)-4 {
		t.Fatalf("only %d frames decoded", rx.Monitor.Frames.Load())
	}
	if rx.Monitor.BitErrors.Load() != 0 {
		t.Fatalf("loopback BER %.2e", rx.Monitor.BER())
	}
}
