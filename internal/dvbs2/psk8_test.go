package dvbs2

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPSK8ConstellationProperties(t *testing.T) {
	seen := map[int]bool{}
	for i, s := range psk8Map {
		if math.Abs(cmplx.Abs(s)-1) > 1e-12 {
			t.Errorf("point %d energy %v", i, cmplx.Abs(s))
		}
		// All constellation points are distinct multiples of π/4.
		k := int(math.Round(cmplx.Phase(s) / (math.Pi / 4)))
		k = ((k % 8) + 8) % 8
		if seen[k] {
			t.Errorf("duplicate constellation angle %d", k)
		}
		seen[k] = true
	}
	if len(seen) != 8 {
		t.Errorf("%d distinct points", len(seen))
	}
}

func TestPSK8HardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func() bool {
		n := 3 * (1 + rng.Intn(100))
		bits := randomBits(rng, n)
		return CountBitErrors(PSK8Hard(PSK8Modulate(bits)), bits) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPSK8ModulatePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-multiple-of-3 accepted")
		}
	}()
	PSK8Modulate(make([]byte, 4))
}

func TestPSK8SoftLLRSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	bits := randomBits(rng, 300)
	syms := PSK8Modulate(bits)
	for i := range syms {
		syms[i] += complex(rng.NormFloat64()*0.02, rng.NormFloat64()*0.02)
	}
	llr := PSK8Demodulate(syms, 0.01, nil)
	if len(llr) != len(bits) {
		t.Fatalf("%d LLRs for %d bits", len(llr), len(bits))
	}
	for i, l := range llr {
		if (l < 0) != (bits[i] == 1) {
			t.Fatalf("LLR %d sign wrong (llr %v bit %d)", i, l, bits[i])
		}
	}
	// Zero noise variance is clamped.
	if out := PSK8Demodulate(syms, 0, nil); len(out) != len(bits) {
		t.Error("zero noise variance mishandled")
	}
}

func TestPSK8GrayishMapping(t *testing.T) {
	// Adjacent constellation points should mostly differ in few bits; at
	// minimum, the average Hamming distance between angular neighbors
	// must stay below 2 (a random mapping averages 1.5 per bit × 3).
	angleToIdx := map[int]int{}
	for idx, s := range psk8Map {
		k := int(math.Round(cmplx.Phase(s) / (math.Pi / 4)))
		angleToIdx[((k%8)+8)%8] = idx
	}
	total := 0
	for k := 0; k < 8; k++ {
		a, b := angleToIdx[k], angleToIdx[(k+1)%8]
		total += hamming3(a, b)
	}
	if avg := float64(total) / 8; avg > 1.8 {
		t.Errorf("average neighbor Hamming distance %.2f", avg)
	}
}

func hamming3(a, b int) int {
	d := a ^ b
	return d&1 + d>>1&1 + d>>2&1
}

func TestPSK8WithLDPCChain(t *testing.T) {
	// End-to-end at the coding level: LDPC-encode, 8PSK-modulate, add
	// noise, demap to LLRs, decode — error-free at moderate SNR.
	p := Test()
	l, err := NewLDPC(p)
	if err != nil {
		t.Fatal(err)
	}
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(83))
	info := randomBits(rng, l.K())
	cw := l.Encode(info)
	syms := PSK8Modulate(cw)
	sigma := 0.08 // high SNR: rate 8/9 with 8PSK needs a clean channel
	for i := range syms {
		syms[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	llr := PSK8Demodulate(syms, 2*sigma*sigma, nil)
	hard, res := d.Decode(llr)
	if !res.Converged {
		t.Fatalf("LDPC diverged over 8PSK: %+v", res)
	}
	if CountBitErrors(hard, cw) != 0 {
		t.Fatal("residual errors after 8PSK + LDPC")
	}
}
