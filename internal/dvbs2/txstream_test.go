package dvbs2

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if err := Test().Validate(); err != nil {
		t.Errorf("test params invalid: %v", err)
	}
	mutate := []func(*Params){
		func(p *Params) { p.Q = 0 },
		func(p *Params) { p.NLdpc = p.Q*3 + 1 },
		func(p *Params) { p.KLdpc = p.NLdpc },
		func(p *Params) { p.LdpcDv = 1 },
		func(p *Params) { p.BCHM = 3 },
		func(p *Params) { p.BCHM = 5 }, // codeword exceeds 2^5-1
		func(p *Params) { p.BCHT = 0 },
		func(p *Params) { p.SPS = 1 },
		func(p *Params) { p.RollOff = 0 },
		func(p *Params) { p.RollOff = 1 },
		func(p *Params) { p.FilterSpan = 1 },
		func(p *Params) { p.SOFLen = 4 },
	}
	for i, m := range mutate {
		p := Test()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	p := Default()
	if p.KBch() != 14232 {
		t.Errorf("K_bch = %d, want 14232", p.KBch())
	}
	if p.HeaderSymbols() != 90 {
		t.Errorf("header = %d", p.HeaderSymbols())
	}
	if p.PayloadSymbols() != 8100 {
		t.Errorf("payload = %d", p.PayloadSymbols())
	}
	if p.FrameSymbols() != 8190 || p.FrameSamples() != 16380 {
		t.Errorf("frame %d/%d", p.FrameSymbols(), p.FrameSamples())
	}
}

func TestPLHeaderStableAndUnitEnergy(t *testing.T) {
	h1 := PLHeader(26, 64)
	h2 := PLHeader(26, 64)
	if len(h1) != 90 {
		t.Fatalf("header length %d", len(h1))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("header not deterministic")
		}
		if math.Abs(cmplx.Abs(h1[i])-1) > 1e-12 {
			t.Fatalf("header symbol %d energy %v", i, cmplx.Abs(h1[i]))
		}
	}
	// The SOF must have decent autocorrelation properties: the aligned
	// differential metric dominates misaligned ones.
	sof := h1[:26]
	diff := make([]complex128, 25)
	for i := range diff {
		diff[i] = sof[i+1] * cmplx.Conj(sof[i])
	}
	var aligned complex128
	for _, d := range diff {
		aligned += d * cmplx.Conj(d)
	}
	for off := 3; off < 20; off++ {
		var mis complex128
		for i := 0; i+off+1 < 26; i++ {
			mis += sof[i+off+1] * cmplx.Conj(sof[i+off]) * cmplx.Conj(diff[i])
		}
		if cmplx.Abs(mis) > 0.8*cmplx.Abs(aligned) {
			t.Errorf("SOF differential sidelobe at %d: %.2f vs %.2f",
				off, cmplx.Abs(mis), cmplx.Abs(aligned))
		}
	}
}

func TestTransmitterFrameShape(t *testing.T) {
	p := Test()
	tx, err := NewTransmitter(p)
	if err != nil {
		t.Fatal(err)
	}
	f1 := tx.EncodeFrame()
	f2 := tx.EncodeFrame()
	if len(f1) != p.FrameSamples() || len(f2) != p.FrameSamples() {
		t.Fatalf("frame sample counts %d/%d", len(f1), len(f2))
	}
	// Consecutive frames differ (counter advances).
	same := true
	for i := range f1 {
		if f1[i] != f2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive frames identical")
	}
	// Average per-sample power ≈ 1/SPS (unit-energy symbols, zero-stuffed).
	pow := 0.0
	for _, s := range f2 {
		pow += real(s)*real(s) + imag(s)*imag(s)
	}
	pow /= float64(len(f2))
	if pow < 0.3 || pow > 0.7 {
		t.Errorf("per-sample power %v, want ≈0.5", pow)
	}
}

func TestTransmitterRejectsBadParams(t *testing.T) {
	p := Test()
	p.Q = 0
	if _, err := NewTransmitter(p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTxStreamImpairments(t *testing.T) {
	p := Test()
	tx, err := NewTransmitter(p)
	if err != nil {
		t.Fatal(err)
	}
	imp := CleanChannel()
	imp.Gain = 0.5
	s := NewTxStream(tx, imp)
	buf := make([]complex128, p.FrameSamples())
	s.Read(buf)
	s.Read(buf) // second block: fully inside the signal
	pow := 0.0
	for _, v := range buf {
		pow += real(v)*real(v) + imag(v)*imag(v)
	}
	pow /= float64(len(buf))
	// Gain 0.5 → power 0.25× the clean ≈0.5 → ≈0.125.
	if pow < 0.06 || pow > 0.25 {
		t.Errorf("gained power %v, want ≈0.125", pow)
	}

	// Noise raises the power floor.
	impN := CleanChannel()
	impN.SNRdB = 0 // very noisy
	txN, _ := NewTransmitter(p)
	sn := NewTxStream(txN, impN)
	bufN := make([]complex128, p.FrameSamples())
	sn.Read(bufN)
	powN := 0.0
	for _, v := range bufN {
		powN += real(v)*real(v) + imag(v)*imag(v)
	}
	powN /= float64(len(bufN))
	if powN < 0.8 {
		t.Errorf("0 dB SNR power %v, want ≈1 (signal+noise)", powN)
	}

	// Zero gain is coerced to 1, not silence.
	impZ := Impairments{SNRdB: math.Inf(1)}
	sz := NewTxStream(tx, impZ)
	bz := make([]complex128, 64)
	sz.Read(bz)
}

func TestTxStreamIntegerDelayShiftsSignal(t *testing.T) {
	p := Test()
	mk := func(d int) []complex128 {
		tx, err := NewTransmitter(p)
		if err != nil {
			t.Fatal(err)
		}
		imp := CleanChannel()
		imp.DelaySamples = d
		s := NewTxStream(tx, imp)
		buf := make([]complex128, 400)
		s.Read(buf)
		return buf
	}
	ref := mk(0)
	del := mk(5)
	for i := 5; i < 400; i++ {
		if cmplx.Abs(del[i]-ref[i-5]) > 1e-12 {
			t.Fatalf("delayed stream mismatch at %d", i)
		}
	}
	for i := 0; i < 5; i++ {
		if del[i] != 0 {
			t.Fatalf("delay prefix not zero at %d", i)
		}
	}
}

func TestCleanAndDefaultChannels(t *testing.T) {
	c := CleanChannel()
	if c.Gain != 1 || !math.IsInf(c.SNRdB, 1) || c.CFO != 0 {
		t.Errorf("clean channel not clean: %+v", c)
	}
	d := DefaultChannel()
	if d.SNRdB < 6 || d.CFO == 0 || d.DelayFrac == 0 {
		t.Errorf("default channel too tame: %+v", d)
	}
}
