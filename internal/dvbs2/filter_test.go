package dvbs2

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestRRCTapsProperties(t *testing.T) {
	taps := RRCTaps(0.2, 10, 2)
	if len(taps) != 41 {
		t.Fatalf("%d taps, want 2·10·2+1", len(taps))
	}
	// Unit energy.
	e := 0.0
	for _, h := range taps {
		e += h * h
	}
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("energy %v", e)
	}
	// Symmetric around the center.
	for i := 0; i < len(taps)/2; i++ {
		if math.Abs(taps[i]-taps[len(taps)-1-i]) > 1e-12 {
			t.Fatalf("asymmetry at tap %d", i)
		}
	}
	// Peak at the center.
	mid := taps[len(taps)/2]
	for i, h := range taps {
		if math.Abs(h) > mid+1e-12 {
			t.Errorf("tap %d (%v) above center (%v)", i, h, mid)
		}
	}
	// The singular point |t| = 1/(4β) (β=0.25 makes it land on a tap) is
	// handled by the closed form, not a NaN.
	for _, h := range RRCTaps(0.25, 4, 1) {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatal("RRC taps contain NaN/Inf at the singular point")
		}
	}
}

func TestRRCTapsPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { RRCTaps(0, 4, 2) },
		func() { RRCTaps(1.2, 4, 2) },
		func() { RRCTaps(0.2, 0, 2) },
		func() { RRCTaps(0.2, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid RRC parameters accepted")
				}
			}()
			fn()
		}()
	}
}

func TestRRCCascadeIsNyquist(t *testing.T) {
	// RRC ⊗ RRC = raised cosine: sampling the cascade at symbol strobes
	// must give (nearly) zero ISI. Send an impulse train and check.
	sps := 2
	span := 10
	tx := NewFIR(RRCTaps(0.2, span, sps))
	rx := NewFIR(RRCTaps(0.2, span, sps))
	n := 64
	syms := make([]complex128, n)
	syms[n/2] = 1 // single impulse
	up := Upsample(syms, sps, nil)
	shaped := tx.Process(up, nil)
	matched := rx.Process(shaped, nil)
	// The peak appears at the impulse position + the cascade group delay
	// (two filters, each delaying by (len-1)/2 = span·sps samples).
	peak := n/2*sps + 2*span*sps
	if cmplx.Abs(matched[peak]) < 0.95 {
		t.Fatalf("cascade peak %v at %d", matched[peak], peak)
	}
	// Other symbol strobes see ≈0 (Nyquist criterion).
	for k := 1; k < 8; k++ {
		v := cmplx.Abs(matched[peak+k*sps])
		if v > 0.02 {
			t.Errorf("ISI at strobe +%d: %v", k, v)
		}
	}
}

func TestFIRStreamingMatchesBatch(t *testing.T) {
	// Filtering in chunks with carried state must equal one-shot
	// filtering.
	rng := rand.New(rand.NewSource(31))
	taps := RRCTaps(0.3, 4, 2)
	in := make([]complex128, 300)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	batch := NewFIR(taps).Process(in, nil)
	stream := NewFIR(taps)
	var out []complex128
	for i := 0; i < len(in); {
		end := i + 1 + rng.Intn(40)
		if end > len(in) {
			end = len(in)
		}
		out = append(out, stream.Process(in[i:end], nil)...)
		i = end
	}
	for i := range batch {
		if cmplx.Abs(batch[i]-out[i]) > 1e-12 {
			t.Fatalf("streaming mismatch at %d: %v vs %v", i, out[i], batch[i])
		}
	}
}

func TestFIRCloneIndependence(t *testing.T) {
	taps := []float64{0.5, 0.5}
	a := NewFIR(taps)
	a.Process([]complex128{1, 2, 3}, nil)
	b := a.Clone()
	// Same state right after cloning…
	outA := a.Process([]complex128{4}, nil)
	outB := b.Process([]complex128{4}, nil)
	if outA[0] != outB[0] {
		t.Fatalf("clone state differs: %v vs %v", outA[0], outB[0])
	}
	// …but divergent afterwards.
	a.Process([]complex128{100}, nil)
	outB2 := b.Process([]complex128{5}, nil)
	outA2 := a.Process([]complex128{5}, nil)
	if outA2[0] == outB2[0] {
		t.Error("clone shares the delay line")
	}
	a.Reset()
	if got := a.Process([]complex128{0}, nil); got[0] != 0 {
		t.Errorf("reset filter output %v", got[0])
	}
}

func TestUpsample(t *testing.T) {
	out := Upsample([]complex128{1, 2i}, 3, nil)
	want := []complex128{1, 0, 0, 2i, 0, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("upsample[%d] = %v", i, out[i])
		}
	}
	// Reuses dst and clears it.
	dst := []complex128{9, 9, 9, 9, 9, 9}
	out2 := Upsample([]complex128{1, 2i}, 3, dst)
	if &out2[0] != &dst[0] || out2[1] != 0 {
		t.Error("dst not reused/cleared")
	}
}

func TestFIRSmallChunksShorterThanDelayLine(t *testing.T) {
	// Chunks shorter than the delay line exercise the partial history
	// shift path.
	taps := make([]float64, 9)
	taps[8] = 1 // pure 8-sample delay
	f := NewFIR(taps)
	var out []complex128
	for i := 0; i < 20; i++ {
		out = append(out, f.Process([]complex128{complex(float64(i), 0)}, nil)...)
	}
	for i := 8; i < 20; i++ {
		if real(out[i]) != float64(i-8) {
			t.Fatalf("delayed output wrong at %d: %v", i, out[i])
		}
	}
}
