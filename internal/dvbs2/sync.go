package dvbs2

import (
	"math"
	"math/cmplx"
)

// Synchronization blocks of the receiver front end: automatic gain
// control, coarse carrier-frequency recovery (4th-power delay-and-
// multiply with an NCO), Gardner timing recovery with cubic Lagrange
// interpolation, differential-correlation frame synchronization, and the
// fine carrier estimators (Luise&Reggiannini-style over the known header,
// plus per-frame phase estimation). All of these carry loop state across
// frames — which is exactly why Table III marks them sequential.

// AGC is a streaming automatic gain controller: it tracks the RMS of its
// input with an exponential average and scales toward the target.
type AGC struct {
	Target float64
	Alpha  float64
	est    float64
}

// NewAGC creates an AGC with target RMS target (e.g. 1.0).
func NewAGC(target float64) *AGC {
	return &AGC{Target: target, Alpha: 0.5, est: 0}
}

// Process scales the block in place and returns the gain it applied.
func (a *AGC) Process(x []complex128) float64 {
	if len(x) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(sum / float64(len(x)))
	if a.est == 0 {
		a.est = rms
	} else {
		a.est = (1-a.Alpha)*a.est + a.Alpha*rms
	}
	g := 1.0
	if a.est > 1e-12 {
		g = a.Target / a.est
	}
	for i := range x {
		x[i] *= complex(g, 0)
	}
	return g
}

// CoarseFreqSync estimates and removes carrier-frequency offset on the
// oversampled stream using a 4th-power delay-and-multiply estimator
// (QPSK's modulation is removed by the 4th power) driving an NCO whose
// phase is continuous across frames. The delay is one symbol period
// (sps samples) rather than one sample: the 4th power of a pulse-shaped
// signal carries a strong symbol-rate timing tone, which a symbol-spaced
// lag rejects (its phase contribution is a multiple of 2π).
type CoarseFreqSync struct {
	Alpha float64 // estimator smoothing factor
	// Slew bounds the NCO frequency change per processed block (cycles
	// per sample). The raw 4th-power estimate is noisy at moderate SNR;
	// without a slew limit the NCO takes frequency steps mid-frame that
	// the (per-frame, header-based) fine synchronizer cannot model, and
	// the end of those frames smears. The limit still lets the loop
	// acquire a static CFO in tens of blocks.
	Slew  float64
	lag   int     // correlation lag in samples (= sps)
	fHat  float64 // estimated CFO, cycles per sample
	phase float64 // NCO phase, radians
}

// NewCoarseFreqSync returns a coarse CFO synchronizer for a stream at
// sps samples per symbol.
func NewCoarseFreqSync(sps int) *CoarseFreqSync {
	if sps < 1 {
		sps = 1
	}
	return &CoarseFreqSync{Alpha: 0.05, Slew: 1e-5, lag: sps}
}

// Estimate returns the current CFO estimate in cycles/sample.
func (c *CoarseFreqSync) Estimate() float64 { return c.fHat }

// Process updates the CFO estimate from the block and derotates it in
// place.
func (c *CoarseFreqSync) Process(x []complex128) {
	if len(x) > c.lag {
		var acc complex128
		for i := c.lag; i < len(x); i++ {
			acc += pow4(x[i]) * cmplx.Conj(pow4(x[i-c.lag]))
		}
		if cmplx.Abs(acc) > 1e-12 {
			est := cmplx.Phase(acc) / (4 * 2 * math.Pi * float64(c.lag))
			step := c.Alpha * (est - c.fHat)
			if c.Slew > 0 {
				if step > c.Slew {
					step = c.Slew
				} else if step < -c.Slew {
					step = -c.Slew
				}
			}
			c.fHat += step
		}
	}
	for i := range x {
		x[i] *= cmplx.Exp(complex(0, -c.phase))
		c.phase += 2 * math.Pi * c.fHat
	}
	// Keep the phase bounded.
	c.phase = math.Mod(c.phase, 2*math.Pi)
}

func pow4(v complex128) complex128 {
	v2 := v * v
	return v2 * v2
}

// GardnerSync performs symbol-timing recovery on a 2-samples-per-symbol
// stream: a Gardner timing-error detector drives a proportional-integral
// loop that adjusts the fractional interpolation point of a cubic
// Lagrange interpolator. Each Process call consumes one frame's worth of
// samples and produces exactly one symbol per two input samples, carrying
// the residual stream across calls.
type GardnerSync struct {
	sps        int
	kp, ki     float64
	mu         float64 // fractional interpolation offset in samples
	intg       float64 // loop integrator
	buf        []complex128
	base       int // integer read position in buf
	prevSym    complex128
	havePrev   bool
	lastMid    complex128
	initalized bool
}

// NewGardnerSync creates a timing synchronizer for sps samples/symbol
// (only sps = 2 is supported, as in the paper's receiver).
func NewGardnerSync(sps int) *GardnerSync {
	return &GardnerSync{sps: sps, kp: 0.05, ki: 2e-5}
}

// Mu returns the current fractional timing offset (diagnostics).
func (g *GardnerSync) Mu() float64 { return g.mu }

// interp evaluates a 4-tap cubic Lagrange interpolator at buf[i+mu].
func interp(buf []complex128, i int, mu float64) complex128 {
	// Taps at i-1, i, i+1, i+2.
	xm1, x0, x1, x2 := buf[i-1], buf[i], buf[i+1], buf[i+2]
	m := complex(mu, 0)
	// Farrow form of cubic Lagrange.
	c0 := x0
	c1 := x1 - xm1/3 - x0/2 - x2/6
	c2 := (xm1+x1)/2 - x0
	c3 := (x2-xm1)/6 + (x0-x1)/2
	return ((c3*m+c2)*m+c1)*m + c0
}

// Process consumes samples (2 sps) and appends recovered symbols to dst,
// returning dst. In steady state it emits len(samples)/2 symbols.
func (g *GardnerSync) Process(samples []complex128, dst []complex128) []complex128 {
	g.buf = append(g.buf, samples...)
	// Need taps from base-1 to base+sps+2 for a full symbol step.
	for g.base+g.sps+2 < len(g.buf) && g.base >= 1 {
		sym := interp(g.buf, g.base, g.mu)
		mid := interp(g.buf, g.base+g.sps/2, g.mu)
		if g.havePrev {
			// Gardner TED: e = Re{ mid* · (sym − prev) } using the
			// midpoint between the previous and current strobes.
			e := real(cmplx.Conj(g.lastMid) * (sym - g.prevSym))
			g.intg += g.ki * e
			adj := g.kp*e + g.intg
			if adj > 0.45 {
				adj = 0.45
			} else if adj < -0.45 {
				adj = -0.45
			}
			g.mu -= adj
			// Normalize mu with hysteresis: wrapping exactly at [0,1)
			// limit-cycles when the equilibrium sits on the boundary
			// (integer channel delay), slipping samples mid-frame. The
			// cubic interpolator stays accurate on [-0.5, 1.5), so wrap
			// only beyond that.
			for g.mu < -0.5 {
				g.mu++
				g.base--
			}
			for g.mu >= 1.5 {
				g.mu--
				g.base++
			}
		}
		g.prevSym = sym
		g.lastMid = mid
		g.havePrev = true
		dst = append(dst, sym)
		g.base += g.sps
	}
	if !g.initalized {
		// Ensure base ≥ 1 for the interpolator's left tap.
		if g.base == 0 {
			g.base = 1
		}
		g.initalized = true
	}
	// Compact the buffer, keeping one tap of left context.
	if g.base > 8*g.sps {
		drop := g.base - 1
		g.buf = append(g.buf[:0], g.buf[drop:]...)
		g.base = 1
	}
	return dst
}

// Frame synchronization locates PLFRAME boundaries in the recovered
// symbol stream by differential correlation against the known SOF
// sequence (robust to residual carrier offset and phase). It is split in
// two pipeline-safe halves matching Table III: FrameSearcher (part 1)
// estimates and tracks the frame offset, FrameExtractor (part 2)
// re-aligns the stream using the offset the searcher put on the frame.
// The halves hold independent copies of the stream so they can live in
// different pipeline stages without sharing state.

// FrameSearcher estimates the PLFRAME offset: a full search until the
// detection metric crosses the lock threshold, then a ±2-symbol tracking
// window.
type FrameSearcher struct {
	frameLen  int
	sofDiff   []complex128
	buf       []complex128
	startMod  int // absolute stream position of buf[0], modulo frameLen
	locked    bool
	offset    int // SOF position relative to buf
	threshold float64
}

// NewFrameSearcher creates the offset estimator for the given SOF symbol
// sequence and total frame length in symbols.
func NewFrameSearcher(sof []complex128, frameLen int) *FrameSearcher {
	fs := &FrameSearcher{frameLen: frameLen}
	fs.sofDiff = make([]complex128, len(sof)-1)
	for i := range fs.sofDiff {
		fs.sofDiff[i] = sof[i+1] * cmplx.Conj(sof[i])
	}
	// With unit-power symbols the aligned metric approaches len(sofDiff);
	// require a comfortable fraction of it before declaring lock so the
	// zero-padded startup chunks cannot produce a false lock.
	fs.threshold = 0.4 * float64(len(fs.sofDiff))
	return fs
}

// Locked reports whether frame alignment has been acquired.
func (fs *FrameSearcher) Locked() bool { return fs.locked }

// Offset returns the current frame offset estimate as an absolute stream
// position modulo the frame length (the representation the extractor
// needs, independent of the searcher's internal buffer trimming).
func (fs *FrameSearcher) Offset() int {
	return (fs.startMod + fs.offset) % fs.frameLen
}

// correlate computes the differential correlation magnitude at offset o.
func (fs *FrameSearcher) correlate(o int) float64 {
	var acc complex128
	for i, d := range fs.sofDiff {
		acc += fs.buf[o+i+1] * cmplx.Conj(fs.buf[o+i]) * cmplx.Conj(d)
	}
	return cmplx.Abs(acc)
}

// Search ingests one frame's worth of symbols and updates the offset
// estimate, returning the detection metric of the chosen offset.
func (fs *FrameSearcher) Search(syms []complex128) float64 {
	fs.buf = append(fs.buf, syms...)
	need := fs.frameLen + len(fs.sofDiff) + 3
	if len(fs.buf) < need {
		return 0
	}
	best, bestOff := -1.0, fs.offset
	if !fs.locked {
		for o := 0; o+len(fs.sofDiff)+1 < len(fs.buf) && o < fs.frameLen; o++ {
			if m := fs.correlate(o); m > best {
				best, bestOff = m, o
			}
		}
		if best >= fs.threshold {
			fs.offset = bestOff
			fs.locked = true
		}
	} else {
		for d := -2; d <= 2; d++ {
			o := fs.offset + d
			if o < 0 || o+len(fs.sofDiff)+1 >= len(fs.buf) {
				continue
			}
			if m := fs.correlate(o); m > best {
				best, bestOff = m, o
			}
		}
		fs.offset = bestOff
	}
	// Keep only the most recent window needed for the next search. The
	// stream is frame-periodic, so reducing the offset modulo the frame
	// length keeps it pointing at an SOF.
	if len(fs.buf) > 2*need {
		drop := len(fs.buf) - need
		fs.buf = append(fs.buf[:0], fs.buf[drop:]...)
		fs.startMod = (fs.startMod + drop) % fs.frameLen
		fs.offset = ((fs.offset-drop)%fs.frameLen + fs.frameLen) % fs.frameLen
	}
	return best
}

// FrameExtractor realigns the symbol stream to the offset estimated by a
// FrameSearcher and pops whole PLFRAMEs.
type FrameExtractor struct {
	frameLen int
	buf      []complex128
	applied  bool
}

// NewFrameExtractor creates an extractor for frameLen-symbol frames.
func NewFrameExtractor(frameLen int) *FrameExtractor {
	return &FrameExtractor{frameLen: frameLen}
}

// Extract appends the chunk, applies the searcher's offset on first lock,
// and returns one aligned frame of frameLen symbols — or nil while the
// stream is not yet locked or not enough symbols are buffered.
func (fe *FrameExtractor) Extract(syms []complex128, offset int, locked bool) []complex128 {
	fe.buf = append(fe.buf, syms...)
	if !locked {
		// Bound the pre-lock buffer: only the most recent frame of
		// symbols can matter once lock is declared.
		if keep := 2 * fe.frameLen; len(fe.buf) > keep {
			fe.buf = append(fe.buf[:0], fe.buf[len(fe.buf)-keep:]...)
		}
		return nil
	}
	if !fe.applied {
		// Align once: the searcher's offset is relative to its (bounded)
		// buffer, which tails ours; drop modulo a frame.
		drop := offset % fe.frameLen
		if len(fe.buf) < drop {
			return nil
		}
		fe.buf = append(fe.buf[:0], fe.buf[drop:]...)
		fe.applied = true
	}
	if len(fe.buf) < fe.frameLen {
		return nil
	}
	out := append([]complex128(nil), fe.buf[:fe.frameLen]...)
	fe.buf = append(fe.buf[:0], fe.buf[fe.frameLen:]...)
	return out
}

// FineFreqSync is a Luise&Reggiannini-style fine carrier-frequency
// estimator over the known header symbols, smoothing its estimate across
// frames and derotating each frame with a per-frame phase ramp.
type FineFreqSync struct {
	header []complex128
	Alpha  float64
	fHat   float64 // cycles per symbol
}

// NewFineFreqSync creates the estimator for the known header sequence.
// The estimate is smoothed across frames (the true residual — the
// uncompensated part of the CFO — drifts only as fast as the coarse loop
// converges, while the per-frame header measurement carries ISI-induced
// self-noise of ~1e-4 cycles/symbol that averaging suppresses); the
// remaining per-frame error is trimmed by the blind estimator in the
// P/F task (Pow4FreqEstimate).
func NewFineFreqSync(header []complex128) *FineFreqSync {
	return &FineFreqSync{header: append([]complex128(nil), header...), Alpha: 0.25}
}

// Estimate returns the smoothed residual CFO estimate (cycles/symbol).
func (f *FineFreqSync) Estimate() float64 { return f.fHat }

// Process estimates the residual CFO from the frame's known header
// symbols with the Luise & Reggiannini estimator — the data-aided
// multi-lag autocorrelation average
//
//	f̂ = arg( Σ_{m=1..L} R(m) ) / (π (L+1)),  L = N/2,
//
// whose variance shrinks cubically with the header length (a lag-1
// differential estimate over the same symbols is orders of magnitude
// noisier and would smear the 1000-symbol payload) — and derotates the
// whole frame in place.
func (f *FineFreqSync) Process(frame []complex128) {
	h := len(f.header)
	if len(frame) < h || h < 4 {
		return
	}
	// Remove the known data: z_i = r_i · conj(h_i).
	z := make([]complex128, h)
	for i := 0; i < h; i++ {
		z[i] = frame[i] * cmplx.Conj(f.header[i])
	}
	L := h / 2
	var sum complex128
	for m := 1; m <= L; m++ {
		var r complex128
		for i := 0; i+m < h; i++ {
			r += z[i+m] * cmplx.Conj(z[i])
		}
		sum += r * complex(1/float64(h-m), 0)
	}
	if cmplx.Abs(sum) > 1e-12 {
		est := cmplx.Phase(sum) / (math.Pi * float64(L+1))
		f.fHat = (1-f.Alpha)*f.fHat + f.Alpha*est
	}
	for i := range frame {
		frame[i] *= cmplx.Exp(complex(0, -2*math.Pi*f.fHat*float64(i)))
	}
}

// Pow4FreqEstimate blindly estimates a small residual carrier frequency
// (cycles/symbol) over a QPSK frame from the phase slope of its 4th
// power, aggregated over windows wins windows with adjacent-difference
// unwrapping. The unambiguous range is ±1/(8·len/wins) cycles/symbol.
// It is a pure function of the frame, so tasks using it stay replicable.
func Pow4FreqEstimate(frame []complex128, wins int) float64 {
	if wins < 2 || len(frame) < 4*wins {
		return 0
	}
	w := len(frame) / wins
	agg := make([]complex128, wins)
	for k := 0; k < wins; k++ {
		var acc complex128
		for _, v := range frame[k*w : (k+1)*w] {
			acc += pow4(v)
		}
		agg[k] = acc
	}
	var sum complex128
	for k := 0; k+1 < wins; k++ {
		sum += agg[k+1] * cmplx.Conj(agg[k])
	}
	if cmplx.Abs(sum) < 1e-12 {
		return 0
	}
	return cmplx.Phase(sum) / (4 * 2 * math.Pi * float64(w))
}

// DerotateRamp removes a frequency ramp e^{-j2πf·i} from the frame in
// place.
func DerotateRamp(frame []complex128, f float64) {
	if f == 0 {
		return
	}
	for i := range frame {
		frame[i] *= cmplx.Exp(complex(0, -2*math.Pi*f*float64(i)))
	}
}

// PhaseEstimate returns the constant phase offset of a frame estimated
// from its known header symbols (the per-frame P/F fine phase task). It
// is a pure function of the frame, so the task using it is replicable.
func PhaseEstimate(frame, header []complex128) float64 {
	n := len(header)
	if len(frame) < n {
		n = len(frame)
	}
	var acc complex128
	for i := 0; i < n; i++ {
		acc += frame[i] * cmplx.Conj(header[i])
	}
	return cmplx.Phase(acc)
}

// Derotate multiplies the frame by e^{−jφ} in place.
func Derotate(frame []complex128, phi float64) {
	r := cmplx.Exp(complex(0, -phi))
	for i := range frame {
		frame[i] *= r
	}
}
