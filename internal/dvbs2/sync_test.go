package dvbs2

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ampsched/internal/streampu"
)

func TestAGCNormalizesRMS(t *testing.T) {
	a := NewAGC(1)
	rng := rand.New(rand.NewSource(1))
	var rms float64
	for block := 0; block < 6; block++ {
		x := make([]complex128, 512)
		for i := range x {
			x[i] = complex(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2)
		}
		a.Process(x)
		sum := 0.0
		for _, v := range x {
			sum += real(v)*real(v) + imag(v)*imag(v)
		}
		rms = math.Sqrt(sum / float64(len(x)))
	}
	if math.Abs(rms-1) > 0.1 {
		t.Errorf("RMS after AGC = %v, want ≈1", rms)
	}
	if g := a.Process(nil); g != 1 {
		t.Errorf("empty block gain = %v", g)
	}
}

func TestCoarseFreqSyncTracksCFO(t *testing.T) {
	// Pure QPSK symbol stream (1 sps view with lag 1) rotated by a known
	// CFO: the 4th-power estimator must converge near it.
	rng := rand.New(rand.NewSource(2))
	c := NewCoarseFreqSync(1)
	cfo := 3e-4
	phase := 0.0
	for block := 0; block < 40; block++ {
		x := make([]complex128, 512)
		for i := range x {
			s := QPSKModulate([]byte{byte(rng.Intn(2)), byte(rng.Intn(2))})[0]
			x[i] = s * cmplx.Exp(complex(0, phase))
			phase += 2 * math.Pi * cfo
		}
		c.Process(x)
	}
	if got := c.Estimate(); math.Abs(got-cfo) > cfo/2 {
		t.Errorf("coarse CFO estimate %v, want ≈%v", got, cfo)
	}
}

func TestGardnerRecoversFractionalDelay(t *testing.T) {
	// Shape a known QPSK stream at 2 sps, delay it fractionally, and
	// check Gardner's recovered symbols against the sent ones.
	p := Test()
	rng := rand.New(rand.NewSource(3))
	n := 4000
	syms := make([]complex128, n)
	for i := range syms {
		syms[i] = QPSKModulate([]byte{byte(rng.Intn(2)), byte(rng.Intn(2))})[0]
	}
	shaper := NewFIR(RRCTaps(p.RollOff, p.FilterSpan, p.SPS))
	up := Upsample(syms, p.SPS, nil)
	shaped := shaper.Process(up, nil)
	frac := NewFIR(fracDelayTaps(0.4))
	delayed := frac.Process(shaped, nil)
	mf := NewFIR(RRCTaps(p.RollOff, p.FilterSpan, p.SPS))
	filtered := mf.Process(delayed, nil)

	g := NewGardnerSync(p.SPS)
	var out []complex128
	chunk := 512
	for i := 0; i+chunk <= len(filtered); i += chunk {
		out = g.Process(filtered[i:i+chunk], out)
	}
	if len(out) < n/2 {
		t.Fatalf("gardner produced %d symbols", len(out))
	}
	// After convergence the recovered symbols must match the sent stream
	// at some constant lag, up to a constant phase (none here). Search
	// the lag with the best match over the tail.
	tail := out[len(out)-500:]
	bestErr := math.Inf(1)
	// out[o] corresponds to syms[o - D] where D is the cascaded group
	// delay in symbols; search plausible lags.
	for lag := 0; lag < 60; lag++ {
		startSym := len(out) - 500 - lag
		if startSym < 0 {
			break
		}
		e := 0.0
		for i := 0; i < 500; i++ {
			e += cmplx.Abs(tail[i] - syms[startSym+i])
		}
		if e/500 < bestErr {
			bestErr = e / 500
		}
	}
	if bestErr > 0.15 {
		t.Errorf("gardner tail mismatch %.3f (no lag matches the sent symbols)", bestErr)
	}
}

func TestFrameSearcherLocksAtKnownOffset(t *testing.T) {
	p := Test()
	header := PLHeader(p.SOFLen, p.PLSCLen)
	F := p.FrameSymbols()
	rng := rand.New(rand.NewSource(4))
	mkFrame := func() []complex128 {
		f := append([]complex128(nil), header...)
		for len(f) < F {
			f = append(f, QPSKModulate([]byte{byte(rng.Intn(2)), byte(rng.Intn(2))})[0])
		}
		return f
	}
	shift := 137
	stream := make([]complex128, shift)
	for i := range stream {
		stream[i] = QPSKModulate([]byte{byte(rng.Intn(2)), byte(rng.Intn(2))})[0]
	}
	for k := 0; k < 5; k++ {
		stream = append(stream, mkFrame()...)
	}
	fs := NewFrameSearcher(header[:p.SOFLen], F)
	fe := NewFrameExtractor(F)
	var aligned [][]complex128
	for i := 0; i+F <= len(stream); i += F {
		chunk := stream[i : i+F]
		fs.Search(chunk)
		if fr := fe.Extract(chunk, fs.Offset(), fs.Locked()); fr != nil {
			aligned = append(aligned, fr)
		}
	}
	if !fs.Locked() {
		t.Fatal("searcher never locked")
	}
	if got := fs.Offset(); got != shift%F {
		t.Fatalf("offset = %d, want %d", got, shift%F)
	}
	if len(aligned) < 3 {
		t.Fatalf("extracted %d frames", len(aligned))
	}
	for k, fr := range aligned {
		for i := 0; i < p.SOFLen; i++ {
			if cmplx.Abs(fr[i]-header[i]) > 1e-9 {
				t.Fatalf("aligned frame %d misaligned at symbol %d", k, i)
			}
		}
	}
}

func TestFrameSearcherIgnoresWeakCorrelation(t *testing.T) {
	p := Test()
	header := PLHeader(p.SOFLen, p.PLSCLen)
	fs := NewFrameSearcher(header[:p.SOFLen], p.FrameSymbols())
	// Feed zeros: no lock may be declared.
	for i := 0; i < 4; i++ {
		fs.Search(make([]complex128, p.FrameSymbols()))
	}
	if fs.Locked() {
		t.Error("locked onto an all-zero stream")
	}
}

func TestFineFreqSyncLuiseReggiannini(t *testing.T) {
	p := Test()
	header := PLHeader(p.SOFLen, p.PLSCLen)
	rng := rand.New(rand.NewSource(5))
	for _, cfo := range []float64{0, 1e-4, -2.5e-4, 5e-4} {
		f := NewFineFreqSync(header)
		f.Alpha = 1 // test the raw estimator without cross-frame smoothing
		frame := make([]complex128, p.FrameSymbols())
		copy(frame, header)
		for i := len(header); i < len(frame); i++ {
			frame[i] = QPSKModulate([]byte{byte(rng.Intn(2)), byte(rng.Intn(2))})[0]
		}
		for i := range frame {
			frame[i] *= cmplx.Exp(complex(0, 2*math.Pi*cfo*float64(i)+0.3))
		}
		f.Process(frame)
		if got := f.Estimate(); math.Abs(got-cfo) > 2e-5 {
			t.Errorf("CFO %v: estimate %v (err %.2e)", cfo, got, math.Abs(got-cfo))
		}
		// After derotation only a constant phase remains on the header.
		phi := PhaseEstimate(frame[:len(header)], header)
		Derotate(frame, phi)
		for i := 0; i < len(header); i++ {
			if cmplx.Abs(frame[i]-header[i]) > 0.02 {
				t.Fatalf("CFO %v: header symbol %d off by %v", cfo, i,
					cmplx.Abs(frame[i]-header[i]))
			}
		}
	}
}

func TestPhaseEstimateAndDerotate(t *testing.T) {
	header := PLHeader(26, 64)
	frame := append([]complex128(nil), header...)
	Derotate(frame, -0.8) // rotate by +0.8
	if got := PhaseEstimate(frame, header); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("phase estimate %v, want 0.8", got)
	}
	Derotate(frame, 0.8)
	for i := range frame {
		if cmplx.Abs(frame[i]-header[i]) > 1e-12 {
			t.Fatal("derotate did not undo the rotation")
		}
	}
}

func TestImpairmentMatrix(t *testing.T) {
	// Each impairment alone (and the full default channel) must leave the
	// receiver in the error-free zone, allowing a short settle transient.
	cases := []struct {
		name      string
		imp       Impairments
		allowFrEr int64
	}{
		{"clean", CleanChannel(), 0},
		{"gain", func() Impairments { i := CleanChannel(); i.Gain = 0.7; return i }(), 0},
		{"cfo", func() Impairments { i := CleanChannel(); i.CFO = 1e-4; return i }(), 0},
		{"phase", func() Impairments { i := CleanChannel(); i.Phase = 0.6; return i }(), 0},
		{"intdelay", func() Impairments { i := CleanChannel(); i.DelaySamples = 3; return i }(), 0},
		{"fracdelay", func() Impairments { i := CleanChannel(); i.DelayFrac = 0.35; return i }(), 0},
		{"noise14", func() Impairments { i := CleanChannel(); i.SNRdB = 14; i.Seed = 99; return i }(), 2},
		{"full", DefaultChannel(), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tx, err := NewTransmitter(Test())
			if err != nil {
				t.Fatal(err)
			}
			rx := NewReceiver(tx, NewTxStream(tx, tc.imp))
			if _, err := streampu.RunChain(rx.Tasks(), 16, nil); err != nil {
				t.Fatal(err)
			}
			if got := rx.Monitor.Frames.Load(); got < 10 {
				t.Fatalf("only %d frames checked", got)
			}
			if fe := rx.Monitor.FrameErrors.Load(); fe > tc.allowFrEr {
				t.Errorf("%d frame errors (allowed %d), BER %.2e",
					fe, tc.allowFrEr, rx.Monitor.BER())
			}
		})
	}
}

func TestFracDelayTapsUnitDC(t *testing.T) {
	for _, mu := range []float64{0, 0.25, 0.5, 0.9} {
		taps := fracDelayTaps(mu)
		sum := 0.0
		for _, h := range taps {
			sum += h
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("mu=%v: DC gain %v", mu, sum)
		}
	}
}

func TestScramblerInvolutionAndPLSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bits := randomBits(rng, 500)
	orig := append([]byte(nil), bits...)
	BBScramble(bits)
	same := 0
	for i := range bits {
		if bits[i] == orig[i] {
			same++
		}
	}
	if same > 350 {
		t.Errorf("BB scrambler barely changed the bits (%d/500 same)", same)
	}
	BBScramble(bits)
	if CountBitErrors(bits, orig) != 0 {
		t.Error("BB scrambling is not an involution")
	}

	s := NewPLScrambler(256)
	syms := make([]complex128, 256)
	for i := range syms {
		syms[i] = QPSKModulate([]byte{byte(rng.Intn(2)), byte(rng.Intn(2))})[0]
	}
	orig2 := append([]complex128(nil), syms...)
	s.Scramble(syms)
	s.Descramble(syms)
	for i := range syms {
		if cmplx.Abs(syms[i]-orig2[i]) > 1e-12 {
			t.Fatal("PL scramble/descramble is not an identity")
		}
	}
	// The sequence must be non-trivial (not all ones).
	nontrivial := 0
	for _, v := range plScrambleSeq(64) {
		if cmplx.Abs(v-1) > 1e-12 {
			nontrivial++
		}
	}
	if nontrivial < 16 {
		t.Errorf("PL sequence nearly trivial: %d/64 non-unit phases", nontrivial)
	}
}
