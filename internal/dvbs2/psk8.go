package dvbs2

import (
	"fmt"
	"math"
	"math/cmplx"
)

// 8PSK modem — DVB-S2's next modulation order (MODCODs 13–17). The paper
// evaluates the QPSK transceiver (MODCOD 2); this extension adds the
// 8PSK mapper and max-log soft demapper so higher-rate chains can be
// modeled with the same scheduling machinery. DVB-S2's 8PSK also engages
// the bit interleaver (3 columns), which this package's Interleaver
// already provides.

// psk8Map is the DVB-S2 8PSK constellation: index = 3-bit symbol
// (b0 b1 b2), points on the unit circle following the standard's Gray-ish
// layout (EN 302 307 figure 10).
var psk8Map = [8]complex128{}

func init() {
	angles := [8]float64{
		// bits 000..111 → angle in units of π/4, per the DVB-S2 mapping:
		// 000→π/4, 001→0, 010→4π/4... laid out for Gray transitions.
		1, 0, 4, 5, 2, 7, 3, 6,
	}
	for i, a := range angles {
		psk8Map[i] = cmplx.Exp(complex(0, a*math.Pi/4))
	}
}

// PSK8Modulate maps bit triplets to unit-energy 8PSK symbols. The bit
// slice length must be divisible by 3.
func PSK8Modulate(bits []byte) []complex128 {
	if len(bits)%3 != 0 {
		panic(fmt.Sprintf("dvbs2: 8PSK modulate: %d bits not divisible by 3", len(bits)))
	}
	out := make([]complex128, len(bits)/3)
	for i := range out {
		idx := bits[3*i]&1<<2 | bits[3*i+1]&1<<1 | bits[3*i+2]&1
		out[i] = psk8Map[idx]
	}
	return out
}

// PSK8Demodulate computes per-bit max-log LLRs (positive ⇒ bit 0) for
// 8PSK symbols under the given complex noise variance.
func PSK8Demodulate(syms []complex128, noiseVar float64, llr []float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	llr = llr[:0]
	for _, y := range syms {
		// Max-log: LLR_b = (min_{s: b=1} |y−s|² − min_{s: b=0} |y−s|²)/σ².
		var min0, min1 [3]float64
		for b := 0; b < 3; b++ {
			min0[b], min1[b] = math.MaxFloat64, math.MaxFloat64
		}
		for idx, s := range psk8Map {
			d := y - s
			dist := real(d)*real(d) + imag(d)*imag(d)
			for b := 0; b < 3; b++ {
				if idx>>(2-b)&1 == 0 {
					if dist < min0[b] {
						min0[b] = dist
					}
				} else if dist < min1[b] {
					min1[b] = dist
				}
			}
		}
		for b := 0; b < 3; b++ {
			llr = append(llr, (min1[b]-min0[b])/noiseVar)
		}
	}
	return llr
}

// PSK8Hard performs hard-decision demapping (nearest constellation
// point).
func PSK8Hard(syms []complex128) []byte {
	out := make([]byte, 0, 3*len(syms))
	for _, y := range syms {
		best, bestDist := 0, math.MaxFloat64
		for idx, s := range psk8Map {
			d := y - s
			dist := real(d)*real(d) + imag(d)*imag(d)
			if dist < bestDist {
				best, bestDist = idx, dist
			}
		}
		out = append(out, byte(best>>2&1), byte(best>>1&1), byte(best&1))
	}
	return out
}
