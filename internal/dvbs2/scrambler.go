package dvbs2

import "math/cmplx"

// Scramblers: the baseband (binary) scrambler applied to BB frames and
// the physical-layer (symbol) scrambler applied to payload symbols. Both
// restart at each frame (as DVB-S2's do at each BBFRAME/PLFRAME), which
// is what makes the descrambling tasks stateless and hence replicable in
// Table III.

// bbScramblerPoly is the DVB-S2 BB scrambler LFSR x^15 + x^14 + 1 with
// initialization sequence 100101010000000.
const bbScramblerInit = 0x4A80 // 100101010000000 in bits 14..0

// BBScramble XORs bits in place with the DVB-S2 baseband scrambling
// sequence, restarting the LFSR at the frame start. Scrambling is an
// involution: applying it twice restores the input.
func BBScramble(bits []byte) {
	state := uint16(bbScramblerInit)
	for i := range bits {
		bit := byte((state>>14 ^ state>>13) & 1)
		state = state<<1 | uint16(bit)
		bits[i] ^= bit
	}
}

// plScrambleSeq generates n physical-layer scrambling phases as unit
// complex factors. DVB-S2 uses a Gold-code-derived quaternary sequence;
// this implementation derives the quaternary symbols from two LFSRs of
// degree 18 (x^18+x^7+1 and x^18+x^10+x^7+x^5+1), matching the standard's
// structure.
func plScrambleSeq(n int) []complex128 {
	x := uint32(1)       // x sequence init: 000...01
	y := uint32(0x3FFFF) // y sequence init: all ones
	out := make([]complex128, n)
	// Unit roots i^k for k = 0..3.
	roots := [4]complex128{1, 1i, -1, -1i}
	for i := 0; i < n; i++ {
		xb := x & 1
		yb := y & 1
		// z_n per the PL scrambler: c2*2 + c1.
		c1 := xb ^ yb
		c2 := (x >> 4 & 1) ^ (x >> 6 & 1) ^ (x >> 15 & 1) ^
			(y >> 5 & 1) ^ (y >> 6 & 1) ^ (y >> 8 & 1) ^ (y >> 9 & 1) ^
			(y >> 10 & 1) ^ (y >> 11 & 1) ^ (y >> 12 & 1) ^ (y >> 13 & 1) ^
			(y >> 14 & 1) ^ (y >> 15 & 1)
		k := c2*2 + c1
		out[i] = roots[k]
		// Advance LFSRs (Fibonacci form).
		xn := (x >> 0 & 1) ^ (x >> 7 & 1)
		yn := (y >> 0 & 1) ^ (y >> 5 & 1) ^ (y >> 7 & 1) ^ (y >> 10 & 1)
		x = x>>1 | xn<<17
		y = y>>1 | yn<<17
	}
	return out
}

// PLScrambler multiplies payload symbols by the PL scrambling sequence;
// descrambling multiplies by the conjugate. The sequence restarts at each
// frame, so per-frame (de)scrambling carries no state.
type PLScrambler struct {
	seq []complex128
}

// NewPLScrambler precomputes the scrambling sequence for n payload
// symbols per frame.
func NewPLScrambler(n int) *PLScrambler {
	return &PLScrambler{seq: plScrambleSeq(n)}
}

// Scramble multiplies syms (one frame's payload) by the sequence in
// place.
func (s *PLScrambler) Scramble(syms []complex128) {
	n := len(syms)
	if n > len(s.seq) {
		n = len(s.seq)
	}
	for i := 0; i < n; i++ {
		syms[i] *= s.seq[i]
	}
}

// Descramble multiplies syms by the conjugate sequence in place.
func (s *PLScrambler) Descramble(syms []complex128) {
	n := len(syms)
	if n > len(s.seq) {
		n = len(s.seq)
	}
	for i := 0; i < n; i++ {
		syms[i] *= cmplx.Conj(s.seq[i])
	}
}
