package dvbs2

import (
	"testing"
)

// Fuzz targets double as robustness regression tests: `go test` runs the
// seed corpus, and `go test -fuzz=FuzzX` explores further. Decoders and
// synchronizers must never panic on adversarial inputs — they sit behind
// a radio.

func FuzzBCHDecode(f *testing.F) {
	codec, err := NewBCH(8, 2, 100)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{0x00, 0xFF, 0xAA})
	f.Add([]byte{0x13, 0x37})
	f.Fuzz(func(t *testing.T, data []byte) {
		cw := make([]byte, codec.N())
		for i := range cw {
			if len(data) > 0 {
				cw[i] = (data[i%len(data)] >> (i % 8)) & 1
			}
		}
		info, corrected, _ := codec.Decode(cw)
		if len(info) != codec.K() {
			t.Fatalf("info length %d", len(info))
		}
		if corrected < 0 || corrected > codec.T() {
			t.Fatalf("corrected %d outside [0,t]", corrected)
		}
	})
}

func FuzzLDPCDecode(f *testing.F) {
	p := Test()
	p.NLdpc, p.KLdpc, p.Q = 180, 144, 36
	l, err := NewLDPC(p)
	if err != nil {
		f.Fatal(err)
	}
	d := l.NewDecoder()
	f.Add([]byte{0x55, 0x01, 0x80})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		llr := make([]float64, l.N())
		for i := range llr {
			b := byte(0x5A)
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			llr[i] = (float64(b) - 127.5) / 16
		}
		hard, res := d.Decode(llr)
		if len(hard) != l.N() {
			t.Fatalf("hard length %d", len(hard))
		}
		if res.Iterations < 1 || res.Iterations > p.LdpcIters {
			t.Fatalf("iterations %d", res.Iterations)
		}
		// Early-stop contract: converged ⟺ syndrome satisfied.
		if res.Converged != l.CheckSyndrome(hard) {
			t.Fatal("convergence flag disagrees with the syndrome")
		}
	})
}

func FuzzGardnerSync(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{0xFF, 0x00}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunks uint8) {
		g := NewGardnerSync(2)
		if len(data) == 0 {
			return
		}
		for c := 0; c < int(chunks%8)+1; c++ {
			in := make([]complex128, len(data))
			for i, b := range data {
				in[i] = complex(float64(b)/128-1, float64(b^0x5A)/128-1)
			}
			out := g.Process(in, nil)
			if len(out) > len(in) {
				t.Fatalf("more symbols (%d) than samples (%d)", len(out), len(in))
			}
		}
		if mu := g.Mu(); mu < -0.5 || mu >= 1.5 {
			t.Fatalf("mu %v escaped its hysteresis band", mu)
		}
	})
}

func FuzzFrameSearcher(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, chunks uint8) {
		header := PLHeader(26, 64)
		fs := NewFrameSearcher(header[:26], 200)
		fe := NewFrameExtractor(200)
		for c := 0; c < int(chunks%6)+1; c++ {
			chunk := make([]complex128, 200)
			for i := range chunk {
				b := byte(i)
				if len(data) > 0 {
					b = data[(c*200+i)%len(data)]
				}
				chunk[i] = complex(float64(b)/64-2, float64(b>>3)/16-1)
			}
			fs.Search(chunk)
			fr := fe.Extract(chunk, fs.Offset(), fs.Locked())
			if fr != nil && len(fr) != 200 {
				t.Fatalf("frame length %d", len(fr))
			}
			if off := fs.Offset(); off < 0 || off >= 200 {
				t.Fatalf("offset %d out of range", off)
			}
		}
	})
}

func FuzzBBFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint16(100))
	f.Add(uint32(0xFFFFFFFF), uint16(40))
	f.Fuzz(func(t *testing.T, counter uint32, kRaw uint16) {
		k := int(kRaw)%1000 + CounterBits + 1
		bits := GenerateBBFrame(counter, k)
		BBScramble(bits)
		BBScramble(bits)
		if DecodeCounter(bits) != counter {
			t.Fatal("counter lost through scramble round trip")
		}
	})
}
