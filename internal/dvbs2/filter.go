package dvbs2

import (
	"fmt"
	"math"
)

// Root-raised-cosine pulse shaping and matched filtering at SPS samples
// per symbol. The receiver splits its matched filter into two pipeline
// tasks (Table III's "Filter Matched – filter (part 1/2)"), each
// convolving half of the frame while carrying the FIR tail across calls.

// RRCTaps returns root-raised-cosine taps with the given roll-off, span
// (half-length in symbols) and samples per symbol, normalized to unit
// energy. The filter has 2·span·sps + 1 taps.
func RRCTaps(rolloff float64, span, sps int) []float64 {
	if rolloff <= 0 || rolloff >= 1 || span < 1 || sps < 1 {
		panic(fmt.Sprintf("dvbs2: invalid RRC parameters β=%v span=%d sps=%d", rolloff, span, sps))
	}
	n := 2*span*sps + 1
	taps := make([]float64, n)
	b := rolloff
	for i := 0; i < n; i++ {
		t := float64(i-span*sps) / float64(sps) // in symbol periods
		var h float64
		switch {
		case t == 0:
			h = 1 - b + 4*b/math.Pi
		case math.Abs(math.Abs(t)-1/(4*b)) < 1e-9:
			h = b / math.Sqrt2 * ((1+2/math.Pi)*math.Sin(math.Pi/(4*b)) +
				(1-2/math.Pi)*math.Cos(math.Pi/(4*b)))
		default:
			num := math.Sin(math.Pi*t*(1-b)) + 4*b*t*math.Cos(math.Pi*t*(1+b))
			den := math.Pi * t * (1 - 16*b*b*t*t)
			h = num / den
		}
		taps[i] = h
	}
	// Unit energy normalization.
	e := 0.0
	for _, h := range taps {
		e += h * h
	}
	e = math.Sqrt(e)
	for i := range taps {
		taps[i] /= e
	}
	return taps
}

// FIR is a streaming complex FIR filter that preserves its delay-line
// state across calls, so a frame-partitioned pipeline can filter a
// continuous sample stream.
type FIR struct {
	taps []float64
	hist []complex128 // delay line, hist[0] = most recent past sample
}

// NewFIR creates a streaming filter with the given taps.
func NewFIR(taps []float64) *FIR {
	return &FIR{taps: append([]float64(nil), taps...), hist: make([]complex128, len(taps)-1)}
}

// Clone returns an independent copy of the filter including its state.
func (f *FIR) Clone() *FIR {
	return &FIR{taps: append([]float64(nil), f.taps...), hist: append([]complex128(nil), f.hist...)}
}

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
}

// Process filters in into dst (allocated if nil) and returns dst. Output
// sample i corresponds to input sample i (the filter's group delay is
// not compensated here; the caller accounts for it).
func (f *FIR) Process(in []complex128, dst []complex128) []complex128 {
	if dst == nil {
		dst = make([]complex128, len(in))
	}
	nh := len(f.hist)
	for i := range in {
		var acc complex128
		for j, tap := range f.taps {
			var x complex128
			if idx := i - j; idx >= 0 {
				x = in[idx]
			} else {
				x = f.hist[-idx-1]
			}
			acc += complex(tap, 0) * x
		}
		dst[i] = acc
	}
	// Update the delay line with the most recent nh input samples.
	if len(in) >= nh {
		for j := 0; j < nh; j++ {
			f.hist[j] = in[len(in)-1-j]
		}
	} else {
		copy(f.hist[len(in):], f.hist[:nh-len(in)])
		for j := 0; j < len(in); j++ {
			f.hist[j] = in[len(in)-1-j]
		}
	}
	return dst
}

// Upsample inserts sps−1 zeros after every symbol (zero-stuffing) for
// pulse shaping.
func Upsample(syms []complex128, sps int, dst []complex128) []complex128 {
	if dst == nil {
		dst = make([]complex128, len(syms)*sps)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, s := range syms {
		dst[i*sps] = s
	}
	return dst
}
