package dvbs2

import "fmt"

// BCH is a systematic narrow-sense binary BCH codec over GF(2^m),
// shortened to the requested information length. Encoding is LFSR
// division by the generator polynomial; decoding is the classic
// hard-input hard-output (HIHO) pipeline: syndrome computation,
// Berlekamp–Massey, and Chien search — the same kernel as the paper's
// "Decoder BCH – decode HIHO" task.
type BCH struct {
	field *gf
	m, t  int
	k     int    // information bits
	nCW   int    // codeword bits = k + parity
	gen   []byte // generator polynomial bits, index = degree
	deg   int    // parity bits = degree of gen
}

// NewBCH builds a BCH codec over GF(2^m) correcting t errors with k
// information bits. The shortened codeword is k + deg(g) bits and must
// fit the field bound 2^m − 1.
func NewBCH(m, t, k int) (*BCH, error) {
	field, err := newGF(m)
	if err != nil {
		return nil, err
	}
	// Generator = lcm of the minimal polynomials of α, α^3, …, α^(2t−1).
	gen := []byte{1}
	seen := map[string]bool{}
	for i := 1; i <= 2*t-1; i += 2 {
		mp := f2key(field.minimalPoly(i))
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen = polyMulGF2(gen, field.minimalPoly(i))
	}
	b := &BCH{field: field, m: m, t: t, k: k, gen: gen, deg: len(gen) - 1}
	b.nCW = k + b.deg
	if b.nCW > field.n {
		return nil, fmt.Errorf("dvbs2: BCH codeword %d exceeds 2^%d−1=%d", b.nCW, m, field.n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("dvbs2: BCH k=%d", k)
	}
	return b, nil
}

func f2key(p []byte) string { return string(p) }

// K returns the information length in bits.
func (b *BCH) K() int { return b.k }

// N returns the (shortened) codeword length in bits.
func (b *BCH) N() int { return b.nCW }

// ParityBits returns the number of parity bits (m·t for a full-strength
// narrow-sense code).
func (b *BCH) ParityBits() int { return b.deg }

// T returns the correction capability.
func (b *BCH) T() int { return b.t }

// Encode appends the BCH parity to info (length K) and returns the
// systematic codeword of length N: info followed by parity.
func (b *BCH) Encode(info []byte) []byte {
	if len(info) != b.k {
		panic(fmt.Sprintf("dvbs2: BCH encode: %d info bits, want %d", len(info), b.k))
	}
	cw := make([]byte, b.nCW)
	copy(cw, info)
	// LFSR division: remainder of info(x)·x^deg by gen(x).
	reg := make([]byte, b.deg)
	for _, bit := range info {
		fb := (bit & 1) ^ reg[b.deg-1]
		copy(reg[1:], reg[:b.deg-1])
		reg[0] = 0
		if fb != 0 {
			for d := 0; d < b.deg; d++ {
				reg[d] ^= b.gen[d]
			}
		}
	}
	// Parity bits, highest-degree first to mirror the systematic layout.
	for d := 0; d < b.deg; d++ {
		cw[b.k+d] = reg[b.deg-1-d]
	}
	return cw
}

// Decode corrects up to t bit errors in the codeword cw (length N) in
// place and returns the corrected information bits, the number of
// corrected errors, and whether decoding succeeded. On failure the
// information bits are returned uncorrected.
func (b *BCH) Decode(cw []byte) (info []byte, corrected int, ok bool) {
	if len(cw) != b.nCW {
		panic(fmt.Sprintf("dvbs2: BCH decode: %d bits, want %d", len(cw), b.nCW))
	}
	f := b.field
	// Syndromes S_j = r(α^j), j = 1..2t, with bit i ↦ coefficient of
	// x^(nCW−1−i) (Horner evaluation high-degree first).
	synd := make([]uint32, 2*b.t+1)
	anyErr := false
	for j := 1; j <= 2*b.t; j++ {
		aj := f.pow(j)
		var acc uint32
		for _, bit := range cw {
			acc = f.mul(acc, aj) ^ uint32(bit&1)
		}
		synd[j] = acc
		if acc != 0 {
			anyErr = true
		}
	}
	if !anyErr {
		return cw[:b.k], 0, true
	}

	// Berlekamp–Massey: find the error-locator polynomial Λ.
	lambda := make([]uint32, 2*b.t+2)
	prev := make([]uint32, 2*b.t+2)
	lambda[0], prev[0] = 1, 1
	L := 0
	mShift := 1
	bDisc := uint32(1)
	for n := 1; n <= 2*b.t; n++ {
		// Discrepancy d = S_n + Σ λ_i S_{n−i}.
		d := synd[n]
		for i := 1; i <= L; i++ {
			d ^= f.mul(lambda[i], synd[n-i])
		}
		if d == 0 {
			mShift++
			continue
		}
		if 2*L <= n-1 {
			tmp := append([]uint32(nil), lambda...)
			coef := f.mul(d, f.inv(bDisc))
			for i := 0; i+mShift < len(lambda); i++ {
				lambda[i+mShift] ^= f.mul(coef, prev[i])
			}
			L = n - L
			prev = tmp
			bDisc = d
			mShift = 1
		} else {
			coef := f.mul(d, f.inv(bDisc))
			for i := 0; i+mShift < len(lambda); i++ {
				lambda[i+mShift] ^= f.mul(coef, prev[i])
			}
			mShift++
		}
	}
	if L > b.t {
		return cw[:b.k], 0, false // too many errors
	}

	// Chien search over the shortened positions: bit i corresponds to
	// x^(nCW−1−i); an error at i means Λ(α^(−(nCW−1−i))) = 0.
	roots := 0
	for i := 0; i < b.nCW && roots < L; i++ {
		e := b.nCW - 1 - i
		x := f.pow(-e)
		var acc uint32
		xp := uint32(1)
		for d := 0; d <= L; d++ {
			acc ^= f.mul(lambda[d], xp)
			xp = f.mul(xp, x)
		}
		if acc == 0 {
			cw[i] ^= 1
			roots++
		}
	}
	if roots != L {
		return cw[:b.k], roots, false // roots outside the shortened range
	}
	return cw[:b.k], roots, true
}
