package dvbs2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBBFrameCounterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		counter := rng.Uint32()
		k := CounterBits + 1 + rng.Intn(500)
		bits := GenerateBBFrame(counter, k)
		if len(bits) != k {
			return false
		}
		return DecodeCounter(bits) == counter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBBFrameDeterministicPerCounter(t *testing.T) {
	a := GenerateBBFrame(7, 200)
	b := GenerateBBFrame(7, 200)
	if CountBitErrors(a, b) != 0 {
		t.Error("same counter produced different frames")
	}
	c := GenerateBBFrame(8, 200)
	if CountBitErrors(a, c) == 0 {
		t.Error("different counters produced identical frames")
	}
}

func TestBBFramePayloadIsBalanced(t *testing.T) {
	bits := GenerateBBFrame(3, 10000)
	ones := 0
	for _, b := range bits[CounterBits:] {
		ones += int(b)
	}
	frac := float64(ones) / float64(len(bits)-CounterBits)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("PRBS ones fraction %v", frac)
	}
}

func TestCountBitErrors(t *testing.T) {
	if got := CountBitErrors([]byte{0, 1, 1}, []byte{0, 1, 0}); got != 1 {
		t.Errorf("errors = %d", got)
	}
	if got := CountBitErrors([]byte{0, 1}, []byte{0, 1, 1, 1}); got != 2 {
		t.Errorf("length mismatch errors = %d", got)
	}
	if got := CountBitErrors([]byte{1, 1, 1}, []byte{1}); got != 2 {
		t.Errorf("reverse length mismatch = %d", got)
	}
	if got := CountBitErrors(nil, nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestDecodeCounterShortSlice(t *testing.T) {
	// Shorter than CounterBits: decode what is there, no panic.
	if got := DecodeCounter([]byte{1, 0, 1}); got != 5 {
		t.Errorf("short decode = %d", got)
	}
}

func TestPrbsSeedNeverZero(t *testing.T) {
	for c := uint32(0); c < 5000; c++ {
		if prbsSeed(c) == 0 {
			t.Fatalf("zero PRBS state for counter %d", c)
		}
	}
}
