package dvbs2

import (
	"fmt"
	"math"
	"math/rand"
)

// LDPC is a systematic irregular repeat-accumulate (IRA) LDPC codec with
// a quasi-cyclic structure mirroring DVB-S2's: information bits connect
// to parity checks through Q-column circulant groups, and parity bits
// form a dual-diagonal accumulator chain. Encoding is linear-time parity
// accumulation; decoding is horizontal layered normalized min-sum with an
// early-stop syndrome check — the paper's "Decoder LDPC – decode SIHO"
// kernel (soft input, hard output).
//
// The circulant offsets are drawn from a seeded generator instead of the
// ETSI annex tables (see DESIGN.md's substitution list); dimensions and
// structure match the standard's short FECFRAME rate-8/9 code.
type LDPC struct {
	n, k, m int // codeword, info, parity lengths
	q       int
	iters   int
	norm    float64

	// checkVars[c] lists the information-bit indices participating in
	// parity check c (the accumulator terms p[c-1], p[c] are implicit).
	checkVars [][]int32
	// varChecks[v] lists the checks each information bit participates in
	// (used by the encoder; the decoder walks checkVars).
	varChecks [][]int32
}

// NewLDPC constructs the codec for the given parameters.
func NewLDPC(p Params) (*LDPC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	l := &LDPC{
		n: p.NLdpc, k: p.KLdpc, m: p.NLdpc - p.KLdpc,
		q: p.Q, iters: p.LdpcIters, norm: p.LdpcNorm,
	}
	rng := rand.New(rand.NewSource(p.LdpcSeed))
	l.checkVars = make([][]int32, l.m)
	l.varChecks = make([][]int32, l.k)
	groups := l.k / p.Q
	// DVB-S2-style expansion: for each group of Q information columns,
	// draw dv base check addresses x_j; column t of the group connects to
	// checks (x_j + t·qFactor) mod m, where qFactor = m / Q.
	qFactor := l.m / p.Q
	if qFactor == 0 {
		return nil, fmt.Errorf("dvbs2: parity length %d below group size %d", l.m, p.Q)
	}
	for g := 0; g < groups; g++ {
		base := make([]int, p.LdpcDv)
		for j := range base {
			for {
				cand := rng.Intn(l.m)
				dup := false
				for _, b := range base[:j] {
					// Avoid duplicate rows within a column (4-cycles
					// through the same pair are still possible, as in
					// random QC codes).
					if (cand-b)%l.m == 0 {
						dup = true
						break
					}
				}
				if !dup {
					base[j] = cand
					break
				}
			}
		}
		for t := 0; t < p.Q; t++ {
			v := g*p.Q + t
			l.varChecks[v] = make([]int32, p.LdpcDv)
			for j, b := range base {
				c := (b + t*qFactor) % l.m
				l.varChecks[v][j] = int32(c)
				l.checkVars[c] = append(l.checkVars[c], int32(v))
			}
		}
	}
	return l, nil
}

// N returns the codeword length in bits.
func (l *LDPC) N() int { return l.n }

// K returns the information length in bits.
func (l *LDPC) K() int { return l.k }

// Encode appends parity to info (length K) and returns the systematic
// codeword (length N): information bits followed by accumulated parity.
func (l *LDPC) Encode(info []byte) []byte {
	if len(info) != l.k {
		panic(fmt.Sprintf("dvbs2: LDPC encode: %d info bits, want %d", len(info), l.k))
	}
	cw := make([]byte, l.n)
	copy(cw, info)
	parity := cw[l.k:]
	// p[c] = p[c-1] ⊕ (⊕ info bits of check c): dual-diagonal accumulator.
	for v, checks := range l.varChecks {
		if info[v]&1 == 0 {
			continue
		}
		for _, c := range checks {
			parity[c] ^= 1
		}
	}
	for c := 1; c < l.m; c++ {
		parity[c] ^= parity[c-1]
	}
	return cw
}

// CheckSyndrome reports whether the hard decisions in cw satisfy every
// parity check.
func (l *LDPC) CheckSyndrome(cw []byte) bool {
	prev := byte(0)
	for c := 0; c < l.m; c++ {
		s := cw[l.k+c] ^ prev
		for _, v := range l.checkVars[c] {
			s ^= cw[v] & 1
		}
		if s&1 != 0 {
			return false
		}
		prev = cw[l.k+c]
	}
	return true
}

// DecodeResult reports the outcome of an LDPC decode.
type DecodeResult struct {
	// Iterations actually executed (≤ the configured maximum).
	Iterations int
	// Converged is true when the syndrome check passed (early stop).
	Converged bool
}

// Decoder holds per-instance decode scratch so replicated pipeline
// workers can decode concurrently. Create one per worker with
// l.NewDecoder.
type Decoder struct {
	l *LDPC
	// msg[c][j]: last check-to-variable message for the j-th connection
	// of check c. Layout: info connections, then [prev parity, parity].
	msg  [][]float64
	post []float64 // posterior LLRs
	hard []byte
}

// NewDecoder allocates decode scratch for this code.
func (l *LDPC) NewDecoder() *Decoder {
	d := &Decoder{l: l, msg: make([][]float64, l.m), post: make([]float64, l.n), hard: make([]byte, l.n)}
	for c := range d.msg {
		d.msg[c] = make([]float64, len(l.checkVars[c])+2)
	}
	return d
}

// Decode runs horizontal layered normalized min-sum on the channel LLRs
// (length N, positive = bit 0 more likely) and returns the hard-decision
// codeword bits plus decode statistics. The returned slice aliases the
// decoder's scratch; copy it before the next Decode call if needed.
func (d *Decoder) Decode(llr []float64) ([]byte, DecodeResult) {
	l := d.l
	if len(llr) != l.n {
		panic(fmt.Sprintf("dvbs2: LDPC decode: %d LLRs, want %d", len(llr), l.n))
	}
	copy(d.post, llr)
	for c := range d.msg {
		row := d.msg[c]
		for j := range row {
			row[j] = 0
		}
	}
	res := DecodeResult{}
	for it := 1; it <= l.iters; it++ {
		res.Iterations = it
		// Horizontal layered sweep: each check c updates its neighbors
		// using the freshest posteriors.
		for c := 0; c < l.m; c++ {
			vars := l.checkVars[c]
			row := d.msg[c]
			deg := len(vars) + 2
			if c == 0 {
				deg = len(vars) + 1 // first accumulator row has no p[c-1]
			}
			// Gather variable-to-check messages and find the two minima.
			min1, min2 := math.MaxFloat64, math.MaxFloat64
			min1Idx := -1
			sign := 1.0
			for j := 0; j < deg; j++ {
				v := d.rowVar(c, j)
				in := d.post[v] - row[j]
				row[j] = in // temporarily store v→c message
				a := math.Abs(in)
				if in < 0 {
					sign = -sign
				}
				if a < min1 {
					min2, min1 = min1, a
					min1Idx = j
				} else if a < min2 {
					min2 = a
				}
			}
			// Scatter normalized check-to-variable messages.
			for j := 0; j < deg; j++ {
				v := d.rowVar(c, j)
				in := row[j]
				mag := min1
				if j == min1Idx {
					mag = min2
				}
				out := l.norm * mag
				if (in < 0) != (sign < 0) {
					out = -out
				}
				row[j] = out
				d.post[v] = in + out
			}
		}
		// Early-stop criterion: hard decisions satisfy all checks.
		for v := 0; v < l.n; v++ {
			if d.post[v] < 0 {
				d.hard[v] = 1
			} else {
				d.hard[v] = 0
			}
		}
		if l.CheckSyndrome(d.hard) {
			res.Converged = true
			return d.hard, res
		}
	}
	return d.hard, res
}

// rowVar maps the j-th connection of check c to a codeword bit index:
// first the information bits of the check, then the accumulator bits
// p[c-1] (absent for c = 0) and p[c].
func (d *Decoder) rowVar(c, j int) int {
	vars := d.l.checkVars[c]
	if j < len(vars) {
		return int(vars[j])
	}
	j -= len(vars)
	if c == 0 {
		return d.l.k + c // only p[0]
	}
	if j == 0 {
		return d.l.k + c - 1
	}
	return d.l.k + c
}
