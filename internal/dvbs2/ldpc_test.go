package dvbs2

import (
	"math"
	"math/rand"
	"testing"
)

func testLDPC(t *testing.T) *LDPC {
	t.Helper()
	l, err := NewLDPC(Test())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLDPCConstruction(t *testing.T) {
	l := testLDPC(t)
	if l.N() != 1620 || l.K() != 1440 {
		t.Fatalf("dimensions (%d,%d)", l.N(), l.K())
	}
	// Every information bit has dv check connections; every check has at
	// least one information connection in expectation (not guaranteed per
	// check, but the total edge count must match).
	edges := 0
	for _, vs := range l.checkVars {
		edges += len(vs)
	}
	if want := l.K() * 3; edges != want {
		t.Errorf("info edges = %d, want %d", edges, want)
	}
	for v, cs := range l.varChecks {
		if len(cs) != 3 {
			t.Fatalf("info bit %d has %d checks, want 3", v, len(cs))
		}
	}
	if _, err := NewLDPC(Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestLDPCEncodeSatisfiesChecks(t *testing.T) {
	l := testLDPC(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		info := randomBits(rng, l.K())
		cw := l.Encode(info)
		if len(cw) != l.N() {
			t.Fatalf("codeword length %d", len(cw))
		}
		if !l.CheckSyndrome(cw) {
			t.Fatalf("trial %d: encoder output fails the parity checks", trial)
		}
		// Systematic: info bits preserved.
		if CountBitErrors(cw[:l.K()], info) != 0 {
			t.Fatal("encoder is not systematic")
		}
	}
	// A corrupted codeword must fail the syndrome check.
	info := randomBits(rng, l.K())
	cw := l.Encode(info)
	cw[7] ^= 1
	if l.CheckSyndrome(cw) {
		t.Error("syndrome check passed on a corrupted codeword")
	}
}

// bpskLLR converts codeword bits to noisy channel LLRs at the given noise
// standard deviation (BPSK mapping per bit: 0 → +1, 1 → −1).
func bpskLLR(rng *rand.Rand, cw []byte, sigma float64) []float64 {
	llr := make([]float64, len(cw))
	for i, b := range cw {
		x := 1.0
		if b&1 == 1 {
			x = -1
		}
		y := x + sigma*rng.NormFloat64()
		llr[i] = 2 * y / (sigma * sigma)
	}
	return llr
}

func TestLDPCDecodeClean(t *testing.T) {
	l := testLDPC(t)
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(6))
	info := randomBits(rng, l.K())
	cw := l.Encode(info)
	llr := bpskLLR(rng, cw, 0.05) // essentially noiseless
	hard, res := d.Decode(llr)
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("clean decode: %+v", res)
	}
	if CountBitErrors(hard, cw) != 0 {
		t.Error("clean decode corrupted the codeword")
	}
}

func TestLDPCDecodeCorrectsNoise(t *testing.T) {
	// Rate 8/9 QPSK needs a fairly clean channel; at sigma=0.42
	// (Eb/N0 ≈ 8 dB) the decoder should fix all flips in a few
	// iterations for most frames.
	l := testLDPC(t)
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(7))
	okFrames := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		info := randomBits(rng, l.K())
		cw := l.Encode(info)
		llr := bpskLLR(rng, cw, 0.42)
		// Confirm the channel actually introduced hard-decision errors.
		preErrs := 0
		for i, v := range llr {
			if (v < 0) != (cw[i] == 1) {
				preErrs++
			}
		}
		hard, res := d.Decode(llr)
		if res.Converged && CountBitErrors(hard, cw) == 0 {
			okFrames++
			if preErrs > 0 && res.Iterations < 1 {
				t.Fatal("impossible iteration count")
			}
		}
	}
	if okFrames < trials*3/4 {
		t.Errorf("decoder fixed only %d/%d noisy frames", okFrames, trials)
	}
}

func TestLDPCEarlyStopSavesIterations(t *testing.T) {
	l := testLDPC(t)
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(8))
	info := randomBits(rng, l.K())
	cw := l.Encode(info)
	clean := bpskLLR(rng, cw, 0.05)
	_, resClean := d.Decode(clean)
	noisy := bpskLLR(rng, cw, 0.5)
	_, resNoisy := d.Decode(noisy)
	if resClean.Iterations > resNoisy.Iterations && resNoisy.Converged {
		t.Errorf("clean frame used %d iterations, noisy only %d",
			resClean.Iterations, resNoisy.Iterations)
	}
	if resClean.Iterations != 1 {
		t.Errorf("clean frame should stop after 1 iteration, used %d", resClean.Iterations)
	}
}

func TestLDPCIterationCap(t *testing.T) {
	l := testLDPC(t)
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(9))
	// Garbage input: decoder must stop at the iteration cap, unconverged.
	llr := make([]float64, l.N())
	for i := range llr {
		llr[i] = rng.NormFloat64() * 0.1
	}
	_, res := d.Decode(llr)
	if res.Converged {
		t.Skip("random LLRs happened to converge (vanishingly unlikely)")
	}
	if res.Iterations != 10 {
		t.Errorf("iterations = %d, want the cap 10", res.Iterations)
	}
}

func TestLDPCFullSizeRoundTrip(t *testing.T) {
	l, err := NewLDPC(Default())
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 16200 || l.K() != 14400 {
		t.Fatalf("full-size dimensions (%d,%d)", l.N(), l.K())
	}
	d := l.NewDecoder()
	rng := rand.New(rand.NewSource(10))
	info := randomBits(rng, l.K())
	cw := l.Encode(info)
	if !l.CheckSyndrome(cw) {
		t.Fatal("full-size encoder fails parity")
	}
	hard, res := d.Decode(bpskLLR(rng, cw, 0.3))
	if !res.Converged || CountBitErrors(hard, cw) != 0 {
		t.Fatalf("full-size decode failed: %+v, %d errors", res, CountBitErrors(hard, cw))
	}
}

func TestDecoderScratchIsolation(t *testing.T) {
	// Two decoders over the same code must not share state.
	l := testLDPC(t)
	d1, d2 := l.NewDecoder(), l.NewDecoder()
	rng := rand.New(rand.NewSource(11))
	infoA := randomBits(rng, l.K())
	infoB := randomBits(rng, l.K())
	cwA, cwB := l.Encode(infoA), l.Encode(infoB)
	hardA, _ := d1.Decode(bpskLLR(rng, cwA, 0.1))
	hardB, _ := d2.Decode(bpskLLR(rng, cwB, 0.1))
	if CountBitErrors(hardA, cwA) != 0 || CountBitErrors(hardB, cwB) != 0 {
		t.Fatal("decodes failed")
	}
	if CountBitErrors(hardA, hardB) == 0 {
		t.Fatal("distinct frames decoded identically — scratch shared?")
	}
}

func TestLDPCDecodeRejectsWrongLength(t *testing.T) {
	l := testLDPC(t)
	d := l.NewDecoder()
	defer func() {
		if recover() == nil {
			t.Error("wrong-length LLR slice accepted")
		}
	}()
	d.Decode(make([]float64, 3))
}

func TestEncodePanicsOnWrongLength(t *testing.T) {
	l := testLDPC(t)
	defer func() {
		if recover() == nil {
			t.Error("wrong-length info accepted")
		}
	}()
	l.Encode(make([]byte, 3))
}

func TestNormalizationFactorApplied(t *testing.T) {
	// Indirect check: with norm = 0 the decoder can never flip a bit, so
	// a noisy frame stays unconverged; with the default 0.75 it converges.
	p := Test()
	p.LdpcNorm = 0
	l0, err := NewLDPC(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	info := randomBits(rng, l0.K())
	cw := l0.Encode(info)
	llr := bpskLLR(rng, cw, 0.5)
	// Force some hard errors.
	hardErrs := 0
	for i := range llr {
		if (llr[i] < 0) != (cw[i] == 1) {
			hardErrs++
		}
	}
	if hardErrs == 0 {
		t.Skip("no channel errors at this seed")
	}
	_, res0 := l0.NewDecoder().Decode(llr)
	if res0.Converged {
		t.Error("zero-normalization decoder converged on a noisy frame")
	}
	if math.Abs(Test().LdpcNorm-0.75) > 1e-12 {
		t.Error("default normalization changed")
	}
}
