// Package stats provides the small statistical toolbox used by the
// experiment drivers: means, medians, maxima, empirical CDFs and 2-D
// histograms (for the paper's Table I, Fig. 1 and Fig. 2).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or NaN for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// FractionAtMost returns the fraction of xs that are ≤ bound (with a small
// tolerance for floating-point ties), or NaN for an empty slice.
func FractionAtMost(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x <= bound+1e-9 {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical cumulative distribution of xs as a sorted
// list of (value, cumulative fraction) points, one per distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	var out []CDFPoint
	for i, x := range c {
		p := float64(i+1) / float64(len(c))
		if len(out) > 0 && out[len(out)-1].X == x {
			out[len(out)-1].P = p
			continue
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out
}

// CDFAt evaluates an empirical CDF (as produced by CDF) at x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range cdf {
		if pt.X <= x {
			p = pt.P
		} else {
			break
		}
	}
	return p
}

// Hist2D is a sparse two-dimensional histogram over integer coordinates,
// used for the Fig. 2 core-usage-delta heatmaps.
type Hist2D struct {
	counts map[[2]int]int
	total  int
}

// NewHist2D returns an empty histogram.
func NewHist2D() *Hist2D {
	return &Hist2D{counts: map[[2]int]int{}}
}

// Add increments the (x, y) bin.
func (h *Hist2D) Add(x, y int) {
	h.counts[[2]int{x, y}]++
	h.total++
}

// Total returns the number of samples added.
func (h *Hist2D) Total() int { return h.total }

// Count returns the raw count of bin (x, y).
func (h *Hist2D) Count(x, y int) int { return h.counts[[2]int{x, y}] }

// Fraction returns the fraction of samples in bin (x, y).
func (h *Hist2D) Fraction(x, y int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[[2]int{x, y}]) / float64(h.total)
}

// Bounds returns the inclusive coordinate ranges covered by the histogram.
// Empty histograms return zeros.
func (h *Hist2D) Bounds() (xmin, xmax, ymin, ymax int) {
	first := true
	for k := range h.counts {
		if first {
			xmin, xmax, ymin, ymax = k[0], k[0], k[1], k[1]
			first = false
			continue
		}
		if k[0] < xmin {
			xmin = k[0]
		}
		if k[0] > xmax {
			xmax = k[0]
		}
		if k[1] < ymin {
			ymin = k[1]
		}
		if k[1] > ymax {
			ymax = k[1]
		}
	}
	return
}

// FractionWhere returns the fraction of samples whose bin satisfies pred.
func (h *Hist2D) FractionWhere(pred func(x, y int) bool) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for k, c := range h.counts {
		if pred(k[0], k[1]) {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}
