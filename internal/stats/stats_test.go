package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMedianMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Max(xs) != 3 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	even := []float64{1, 2, 3, 4}
	if Median(even) != 2.5 {
		t.Errorf("even Median = %v", Median(even))
	}
	// Median must not mutate its input.
	orig := []float64{9, 1, 5}
	Median(orig)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Median mutated its input")
	}
	for _, f := range []func([]float64) float64{Mean, Median, Max, Min} {
		if !math.IsNaN(f(nil)) {
			t.Error("empty-slice statistic should be NaN")
		}
	}
}

func TestFractionAtMost(t *testing.T) {
	xs := []float64{1, 1, 1.5, 2}
	if got := FractionAtMost(xs, 1); got != 0.5 {
		t.Errorf("FractionAtMost(1) = %v", got)
	}
	if got := FractionAtMost(xs, 5); got != 1 {
		t.Errorf("FractionAtMost(5) = %v", got)
	}
	if !math.IsNaN(FractionAtMost(nil, 1)) {
		t.Error("empty slice should be NaN")
	}
}

func TestCDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10))
		}
		cdf := CDF(xs)
		// Monotone in X and P; last P == 1.
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X <= cdf[i-1].X || cdf[i].P < cdf[i-1].P {
				return false
			}
		}
		if math.Abs(cdf[len(cdf)-1].P-1) > 1e-12 {
			return false
		}
		// CDFAt agrees with a direct count at each distinct value.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, pt := range cdf {
			count := 0
			for _, x := range xs {
				if x <= pt.X {
					count++
				}
			}
			if math.Abs(CDFAt(cdf, pt.X)-float64(count)/float64(n)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
	if CDFAt(nil, 5) != 0 {
		t.Error("CDFAt on empty CDF should be 0")
	}
	if got := CDFAt(CDF([]float64{1, 2}), 0.5); got != 0 {
		t.Errorf("CDFAt below min = %v", got)
	}
}

func TestHist2D(t *testing.T) {
	h := NewHist2D()
	if h.Total() != 0 || h.Fraction(0, 0) != 0 {
		t.Error("empty histogram not empty")
	}
	h.Add(1, 2)
	h.Add(1, 2)
	h.Add(-1, 0)
	h.Add(3, -2)
	if h.Total() != 4 || h.Count(1, 2) != 2 {
		t.Errorf("counts wrong: total %d, (1,2)=%d", h.Total(), h.Count(1, 2))
	}
	if h.Fraction(1, 2) != 0.5 {
		t.Errorf("Fraction = %v", h.Fraction(1, 2))
	}
	xmin, xmax, ymin, ymax := h.Bounds()
	if xmin != -1 || xmax != 3 || ymin != -2 || ymax != 2 {
		t.Errorf("Bounds = %d %d %d %d", xmin, xmax, ymin, ymax)
	}
	if got := h.FractionWhere(func(x, y int) bool { return x > 0 }); got != 0.75 {
		t.Errorf("FractionWhere = %v", got)
	}
	var e Hist2D
	_ = e
	empty := NewHist2D()
	a, b, c, d := empty.Bounds()
	if a != 0 || b != 0 || c != 0 || d != 0 {
		t.Error("empty bounds not zero")
	}
	if empty.FractionWhere(func(x, y int) bool { return true }) != 0 {
		t.Error("empty FractionWhere not zero")
	}
}
