package twocatac

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/fertac"
	"ampsched/internal/herad"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func TestDegenerate(t *testing.T) {
	c := core.MustChain([]core.Task{task(5, 10, true)})
	if s := Schedule(nil, core.Res(1, 0)); !s.IsEmpty() {
		t.Error("nil chain should be empty")
	}
	if s := Schedule(c, core.Resources{}); !s.IsEmpty() {
		t.Error("no cores should be empty")
	}
}

func TestAlwaysProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(20)
		sr := []float64{0, 0.2, 0.5, 0.8, 1}[rng.Intn(5)]
		c := chaingen.Generate(chaingen.Default(n, sr), rng)
		r := core.Res(rng.Intn(6), rng.Intn(6))
		if r.Total() == 0 {
			r = r.With(core.Big, 1)
		}
		s := Schedule(c, r)
		if s.IsEmpty() {
			t.Fatalf("iter %d: 2CATAC found no schedule for n=%d R=%v", iter, n, r)
		}
		if err := s.Validate(c, r); err != nil {
			t.Fatalf("iter %d: invalid schedule: %v", iter, err)
		}
	}
}

func TestNeverBeatsOptimalAndUsuallyBeatsFertac(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	wins, losses := 0, 0
	for iter := 0; iter < 80; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(15), 0.5), rng)
		r := core.Res(1+rng.Intn(6), 1+rng.Intn(6))
		opt := herad.Period(c, r)
		p2 := Schedule(c, r).Period(c)
		pf := fertac.Schedule(c, r).Period(c)
		if p2 < opt-1e-9 {
			t.Fatalf("2CATAC period %v below optimal %v", p2, opt)
		}
		if p2 <= pf+1e-9 {
			wins++
		} else {
			losses++
		}
	}
	// 2CATAC explores strictly more placements than FERTAC; the paper
	// reports it at or above FERTAC's quality in the vast majority of
	// cases. Allow a small number of losses (different greedy paths).
	if losses > wins/4 {
		t.Errorf("2CATAC lost to FERTAC too often: %d wins, %d losses", wins, losses)
	}
}

func TestMemoVariantIdenticalSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 60; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(14), 0.5), rng)
		r := core.Res(1+rng.Intn(5), 1+rng.Intn(5))
		a := Schedule(c, r)
		b := ScheduleMemo(c, r)
		if a.String() != b.String() {
			t.Fatalf("iter %d: memoized variant diverged:\n  plain %v\n  memo  %v", iter, a, b)
		}
	}
}

func TestChooseBestSolutionRules(t *testing.T) {
	c := core.MustChain([]core.Task{
		task(10, 10, true), task(10, 10, true),
	})
	r := core.Res(4, 4)
	target := 20.0
	mk := func(stages ...core.Stage) core.Solution { return core.Solution{Stages: stages} }
	sB := mk(core.Stage{Start: 0, End: 1, Cores: 1, Type: core.Big})
	sL := mk(core.Stage{Start: 0, End: 1, Cores: 1, Type: core.Little})
	// Only-valid rules.
	if got := ChooseBestSolution(c, sB, core.Solution{}, r, target); got.String() != sB.String() {
		t.Errorf("only-valid B not chosen: %v", got)
	}
	if got := ChooseBestSolution(c, core.Solution{}, sL, r, target); got.String() != sL.String() {
		t.Errorf("only-valid L not chosen: %v", got)
	}
	if got := ChooseBestSolution(c, core.Solution{}, core.Solution{}, r, target); !got.IsEmpty() {
		t.Errorf("two invalids must stay empty: %v", got)
	}
	// Better-exchange rule: (0B,1L) beats (1B,0L).
	if got := ChooseBestSolution(c, sB, sL, r, target); got.String() != sL.String() {
		t.Errorf("little-exchanging solution not preferred: %v", got)
	}
	// Fewer-cores rule: both same type, 1 core beats 2.
	sB2 := mk(core.Stage{Start: 0, End: 1, Cores: 2, Type: core.Big})
	if got := ChooseBestSolution(c, sB2, sB, r, target); got.String() != sB.String() {
		// sB2 uses (2B,0L), sB uses (1B,0L): not an exchange; fewer total
		// cores wins, which is sB (the S_L slot here).
		t.Errorf("fewer-cores solution not preferred: %v", got)
	}
}

func TestMatchesHeradOnEasyCases(t *testing.T) {
	// SR=0.2 with few little cores: the paper reports 2CATAC optimal in
	// ~100% of cases for R=(16,4). Check a miniature version.
	rng := rand.New(rand.NewSource(101))
	opt := 0
	total := 40
	for iter := 0; iter < total; iter++ {
		c := chaingen.Generate(chaingen.Default(10, 0.2), rng)
		r := core.Res(8, 2)
		p2 := Schedule(c, r).Period(c)
		ph := herad.Period(c, r)
		if p2 <= ph*1.0+1e-9 {
			opt++
		}
		if p2 > ph*1.5 {
			t.Fatalf("2CATAC %v vs optimal %v: worse than 1.5×", p2, ph)
		}
	}
	if float64(opt) < 0.7*float64(total) {
		t.Errorf("2CATAC optimal only %d/%d times on the easy scenario", opt, total)
	}
}

func TestMostlyLittleWhenLittleSuffice(t *testing.T) {
	// All-replicable chain with little cores only marginally slower and
	// many little cores available: solutions should spend little cores.
	var tasks []core.Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, task(10, 12, true))
	}
	c := core.MustChain(tasks)
	s := Schedule(c, core.Res(2, 8))
	if s.IsEmpty() {
		t.Fatal("no schedule")
	}
	_, l := s.CoresUsed()
	if l == 0 {
		t.Errorf("no little cores used at all: %v", s)
	}
	if math.IsInf(s.Period(c), 1) {
		t.Error("infinite period")
	}
}
