// Package twocatac implements 2CATAC (Two-Choice Allocation for TAsk
// Chains, Algos 5–6 of the paper): a greedy heuristic that, for every
// stage, tries both core types and keeps the solution that best exchanges
// big cores for little ones (or, failing that, uses fewer cores). Its
// worst-case complexity is O(2^n · log(w_max·(b+l))); the paper limits it
// to chains of about 60 tasks.
//
// ScheduleMemo is an ablation variant that memoizes ComputeSolution on
// (start, resources) per binary-search probe, collapsing the exponential
// recursion tree; it returns the same schedules.
package twocatac

import (
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/sched"
)

// Metrics holds 2CATAC's instrumentation handles. The zero value is the
// disabled sink.
type Metrics struct {
	// Nodes counts recursion-tree nodes (ComputeSolution invocations,
	// Algo 5) — the quantity the memoized ablation collapses.
	Nodes *obs.Counter
	// MemoHits and MemoMisses count memo-table lookups of the memoized
	// variant (always 0 on the paper-verbatim recursion).
	MemoHits   *obs.Counter
	MemoMisses *obs.Counter
	// Sched carries the shared binary-search/stage-packing series and the
	// decision-journal scope (Sched.Trace): the recursion emits one
	// "node" event per branch point and "memo_hit" events for collapsed
	// subtrees, nested under the current binary-search probe span.
	Sched sched.Metrics
}

// MetricsFrom resolves 2CATAC's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		Nodes:      r.Counter("twocatac.recursion.nodes"),
		MemoHits:   r.Counter("twocatac.memo.hits"),
		MemoMisses: r.Counter("twocatac.memo.misses"),
		Sched:      sched.MetricsFrom(r),
	}
}

// Schedule computes a 2CATAC schedule of c on the resources r using the
// paper-verbatim exponential recursion.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return sched.Schedule(c, r, ComputeSolution)
}

// ScheduleMemo computes the same schedules as Schedule but memoizes the
// recursion on (start task, remaining resources) within each
// binary-search probe. This is an implementation ablation, not a paper
// algorithm.
func ScheduleMemo(c *core.Chain, r core.Resources) core.Solution {
	return sched.Schedule(c, r, Compute(true))
}

// Compute returns 2CATAC's ComputeSolution for use with
// sched.Schedule/ScheduleBounds: the paper-verbatim exponential recursion,
// or the memoized ablation when memo is true (a fresh memo table per
// binary-search probe, exactly as ScheduleMemo).
func Compute(memo bool) sched.ComputeSolutionFunc {
	if !memo {
		return ComputeSolution
	}
	return func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
		return computeSolutionMemo(ch, s, res, target, make(map[memoKey]core.Solution), Metrics{})
	}
}

// ComputeObs is Compute reporting into m, for use with
// sched.ScheduleM/ScheduleBoundsM.
func ComputeObs(memo bool, m Metrics) sched.ComputeSolutionFunc {
	if !memo {
		return func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
			return computeSolution(ch, s, res, target, nil, m)
		}
	}
	return func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
		return computeSolutionMemo(ch, s, res, target, make(map[memoKey]core.Solution), m)
	}
}

type memoKey struct {
	s int
	r core.Resources
}

// ComputeSolution implements Algo 5: it builds the stage starting at task
// s with both core types, recurses on the remainder for each, and picks
// the better of the two complete solutions with ChooseBestSolution.
func ComputeSolution(c *core.Chain, s int, r core.Resources, target float64) core.Solution {
	return computeSolution(c, s, r, target, nil, Metrics{})
}

func computeSolutionMemo(c *core.Chain, s int, r core.Resources, target float64, memo map[memoKey]core.Solution, m Metrics) core.Solution {
	if got, ok := memo[memoKey{s, r}]; ok {
		m.MemoHits.Inc()
		if m.Sched.Trace.Enabled() {
			m.Sched.Trace.Event("memo_hit").Int("first_task", s).
				Int("big", r.Count(core.Big)).Int("little", r.Count(core.Little))
		}
		return got
	}
	m.MemoMisses.Inc()
	sol := computeSolution(c, s, r, target, memo, m)
	memo[memoKey{s, r}] = sol
	return sol
}

func computeSolution(c *core.Chain, s int, r core.Resources, target float64, memo map[memoKey]core.Solution, m Metrics) core.Solution {
	m.Nodes.Inc()
	var sols [2]core.Solution
	for _, v := range []core.CoreType{core.Big, core.Little} {
		e, u := sched.ComputeStageM(c, s, r.Count(v), v, target, m.Sched)
		switch {
		case u < 1 || u > r.Count(v) || c.Weight(s, e, u, v) > target:
			// no valid stage with this type of cores
		case e == c.Len()-1:
			sols[v] = core.Solution{Stages: []core.Stage{{Start: s, End: e, Cores: u, Type: v}}}
		default:
			rest := core.Solution{}
			if memo != nil {
				rest = computeSolutionMemo(c, e+1, r.Consume(v, u), target, memo, m)
			} else {
				rest = computeSolution(c, e+1, r.Consume(v, u), target, nil, m)
			}
			if rest.IsValid(c, r.Consume(v, u), target) {
				sols[v] = rest.Prepend(core.Stage{Start: s, End: e, Cores: u, Type: v})
			}
		}
	}
	best := ChooseBestSolution(c, sols[core.Big], sols[core.Little], r, target)
	if m.Sched.Trace.Enabled() {
		ev := m.Sched.Trace.Event("node").Int("first_task", s).
			Int("big", r.Count(core.Big)).Int("little", r.Count(core.Little)).
			Bool("big_valid", sols[core.Big].IsValid(c, r, target)).
			Bool("little_valid", sols[core.Little].IsValid(c, r, target))
		if !best.IsEmpty() {
			ev.Str("chosen", best.Stages[0].Type.String())
		}
	}
	return best
}

// ChooseBestSolution implements Algo 6: between two candidate solutions it
// returns the only valid one, or — when both are valid — the one that
// better exchanges big cores for little ones, falling back to the one that
// uses fewer cores in total.
func ChooseBestSolution(c *core.Chain, sb, sl core.Solution, r core.Resources, target float64) core.Solution {
	validB := sb.IsValid(c, r, target)
	validL := sl.IsValid(c, r, target)
	switch {
	case validB && validL:
		bB, lB := sb.CoresUsed() // usage of the solution whose first stage is Big
		bL, lL := sl.CoresUsed()
		switch {
		case lB > lL && bB < bL:
			return sb // S_B makes better usage of little cores
		case lB < lL && bB > bL:
			return sl // S_L makes better usage of little cores
		case lB+bB < lL+bL:
			return sb // S_B uses fewer cores
		default:
			return sl // S_L uses fewer cores
		}
	case validB:
		return sb
	case validL:
		return sl
	default:
		return core.Solution{}
	}
}
