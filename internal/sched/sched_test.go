package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ampsched/internal/core"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func randChain(rng *rand.Rand, n int) *core.Chain {
	tasks := make([]core.Task, n)
	for i := range tasks {
		wb := 1 + float64(rng.Intn(100))
		wl := math.Ceil(wb * (1 + 4*rng.Float64()))
		tasks[i] = task(wb, wl, rng.Intn(2) == 0)
	}
	return core.MustChain(tasks)
}

func TestMaxPackingBasics(t *testing.T) {
	c := core.MustChain([]core.Task{
		task(5, 5, true), task(5, 5, true), task(5, 5, true), task(100, 100, true),
	})
	if got := MaxPacking(c, 0, 1, core.Big, 10); got != 1 {
		t.Errorf("MaxPacking 1 core target 10 = %d, want 1", got)
	}
	if got := MaxPacking(c, 0, 1, core.Big, 15); got != 2 {
		t.Errorf("MaxPacking target 15 = %d, want 2", got)
	}
	if got := MaxPacking(c, 0, 2, core.Big, 10); got != 2 {
		t.Errorf("MaxPacking 2 cores target 10 = %d, want 2 (15/2 ≤ 10)", got)
	}
	// Even an oversized first task returns s itself.
	if got := MaxPacking(c, 3, 1, core.Big, 1); got != 3 {
		t.Errorf("MaxPacking oversized = %d, want 3", got)
	}
	// Zero cores: nothing fits, still returns s.
	if got := MaxPacking(c, 0, 0, core.Big, 1000); got != 0 {
		t.Errorf("MaxPacking 0 cores = %d, want 0", got)
	}
}

func TestMaxPackingSequentialBoundary(t *testing.T) {
	// A sequential task inside the interval forces the full (undivided) sum.
	c := core.MustChain([]core.Task{
		task(4, 4, true), task(4, 4, true), task(4, 4, false), task(1, 1, true),
	})
	// With 2 cores and target 5: [0,1] weighs 8/2=4 ≤ 5; adding the
	// sequential task makes the stage weigh 12 > 5.
	if got := MaxPacking(c, 0, 2, core.Big, 5); got != 1 {
		t.Errorf("MaxPacking across seq boundary = %d, want 1", got)
	}
	// With target 13 the whole prefix fits sequentially (12 ≤ 13) and the
	// replicable tail keeps it at 13/1... (13 ≤ 13).
	if got := MaxPacking(c, 0, 1, core.Big, 13); got != 3 {
		t.Errorf("MaxPacking target 13 = %d, want 3", got)
	}
}

func TestMaxPackingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		c := randChain(rng, 1+rng.Intn(12))
		s := rng.Intn(c.Len())
		cores := rng.Intn(4)
		target := 1 + float64(rng.Intn(300))
		v := core.CoreType(rng.Intn(2))
		e := MaxPacking(c, s, cores, v, target)
		if e < s || e >= c.Len() {
			return false
		}
		// Result is maximal: either the stage fits, or it is the bare
		// minimum s; and extending by one task must not fit.
		fits := c.Weight(s, e, cores, v) <= target
		if !fits && e != s {
			return false
		}
		if e+1 < c.Len() && c.Weight(s, e+1, cores, v) <= target {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// maxPackingLinear is the pre-binary-search implementation of MaxPacking
// (the paper-literal scan), kept as the differential oracle for the
// O(log n) version. Its break path needs one success after s, so an
// oversized first task makes it walk the whole tail — the inefficiency the
// rewrite removed — but its results are definitionally correct.
func maxPackingLinear(c *core.Chain, s, cores int, v core.CoreType, target float64) int {
	e := s
	for i := s; i < c.Len(); i++ {
		if c.Weight(s, i, cores, v) <= target {
			e = i
		} else if i > s {
			break
		}
	}
	return e
}

// TestMaxPackingMatchesLinearOracle pins the binary search to the linear
// oracle on 10k random (chain, start, cores, type, target) tuples,
// including the oversized-first-task and zero-core edge cases and targets
// that land exactly on stage weights.
func TestMaxPackingMatchesLinearOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	for iter := 0; iter < 10000; iter++ {
		c := randChain(rng, 1+rng.Intn(24))
		s := rng.Intn(c.Len())
		cores := rng.Intn(5) // 0 exercises the +Inf weight path
		v := core.CoreType(rng.Intn(2))
		var target float64
		switch rng.Intn(4) {
		case 0: // tiny: even task s alone may not fit
			target = float64(rng.Intn(3))
		case 1: // exact stage weight: ties on the ≤ boundary
			e := s + rng.Intn(c.Len()-s)
			target = c.Weight(s, e, max(cores, 1), v)
		case 2: // huge: the whole tail fits
			target = c.TotalW(v) + 1
		default:
			target = 1 + float64(rng.Intn(400))
		}
		want := maxPackingLinear(c, s, cores, v, target)
		got := MaxPacking(c, s, cores, v, target)
		if got != want {
			t.Fatalf("iter %d: MaxPacking(s=%d cores=%d %v target=%v) = %d, oracle %d\nchain=%+v",
				iter, s, cores, v, target, got, want, c.Tasks())
		}
	}
}

func TestRequiredCores(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 20, true), task(10, 20, true)})
	if got := RequiredCores(c, 0, 1, core.Big, 10); got != 2 {
		t.Errorf("RequiredCores = %d, want 2", got)
	}
	if got := RequiredCores(c, 0, 1, core.Big, 7); got != 3 {
		t.Errorf("RequiredCores = %d, want 3 (⌈20/7⌉)", got)
	}
	if got := RequiredCores(c, 0, 1, core.Little, 10); got != 4 {
		t.Errorf("RequiredCores little = %d, want 4", got)
	}
	if got := RequiredCores(c, 0, 0, core.Big, 1000); got != 1 {
		t.Errorf("RequiredCores clamps to ≥ 1, got %d", got)
	}
}

func TestComputeStageSimple(t *testing.T) {
	// Replicable run [0..2] (30 total) followed by a sequential task.
	c := core.MustChain([]core.Task{
		task(10, 10, true), task(10, 10, true), task(10, 10, true), task(10, 10, false),
	})
	// Target 10, 3 cores: greedy packs task 0 alone, extends across the
	// replicable run to task 2, needs ⌈30/10⌉=3 cores; leaving one core
	// would need the moved tail + the next sequential task to fit in one
	// core: w([f+1, 3]) with f=MaxPacking(2 cores)=1 → w([2,3])=20 > 10,
	// so the stage keeps 3 cores.
	e, u := ComputeStage(c, 0, 3, core.Big, 10)
	if e != 2 || u != 3 {
		t.Errorf("ComputeStage = (%d,%d), want (2,3)", e, u)
	}
	// With only 2 cores available the stage shrinks to what 2 cores pack.
	e, u = ComputeStage(c, 0, 2, core.Big, 10)
	if e != 1 || u != 2 {
		t.Errorf("ComputeStage capped = (%d,%d), want (1,2)", e, u)
	}
}

func TestComputeStageLeavesCoreForNextStage(t *testing.T) {
	// Replicable run [10,10,5] followed by a sequential 5: with target 10
	// the full run needs ⌈25/10⌉=3 cores, but two cores pack [10,10]
	// (20/2=10) and the remainder [5 rep + 5 seq] fits a single core of
	// the next stage, so the stage is trimmed to save one core.
	c := core.MustChain([]core.Task{
		task(10, 10, true), task(10, 10, true), task(5, 5, true), task(5, 5, false),
	})
	e, u := ComputeStage(c, 0, 4, core.Big, 10)
	if e != 1 || u != 2 {
		t.Errorf("ComputeStage = (%d,%d), want (1,2): should save a core", e, u)
	}
	// Same chain but a heavier trailing sequential task: the remainder
	// would not fit one core, so the stage keeps all three cores.
	c2 := core.MustChain([]core.Task{
		task(10, 10, true), task(10, 10, true), task(5, 5, true), task(9, 9, false),
	})
	e, u = ComputeStage(c2, 0, 4, core.Big, 10)
	if e != 2 || u != 3 {
		t.Errorf("ComputeStage = (%d,%d), want (2,3): trim must not fire", e, u)
	}
}

func TestComputeStageFinalStage(t *testing.T) {
	c := core.MustChain([]core.Task{task(10, 10, true), task(10, 10, true)})
	e, u := ComputeStage(c, 0, 4, core.Big, 5)
	if e != 1 || u != 4 {
		t.Errorf("final replicable stage = (%d,%d), want (1,4)", e, u)
	}
	// MaxPacking with one core can already reach the end: e == n-1 short-circuits.
	e, u = ComputeStage(c, 0, 4, core.Big, 20)
	if e != 1 || u != 1 {
		t.Errorf("relaxed target = (%d,%d), want (1,1)", e, u)
	}
}

func TestComputeStageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		c := randChain(rng, 1+rng.Intn(15))
		s := rng.Intn(c.Len())
		avail := 1 + rng.Intn(6)
		target := 1 + float64(rng.Intn(400))
		v := core.CoreType(rng.Intn(2))
		e, u := ComputeStage(c, s, avail, v, target)
		if e < s || e >= c.Len() || u < 1 {
			return false
		}
		// If the stage meets the target with u ≤ avail, it must really fit.
		if u <= avail && c.Weight(s, e, u, v) <= target {
			// Maximality: the same u cores cannot also absorb task e+1,
			// unless the algorithm deliberately trimmed the stage to save
			// a core (in which case the next interval ends with a
			// 1-core-feasible remainder).
			if e+1 < c.Len() && c.Weight(s, e+1, u, v) <= target {
				rest := c.IsRep(s, e)
				if !rest {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDefaultBounds(t *testing.T) {
	c := core.MustChain([]core.Task{
		task(10, 20, false), task(30, 60, true), task(20, 45, false),
	})
	b := DefaultBounds(c, core.Res(2, 2))
	// Lower bound: max(60/4, 20) = 20 (largest sequential big weight).
	if b.Min != 20 {
		t.Errorf("Min = %v, want 20", b.Min)
	}
	// Upper bound adds the largest worst-type task weight (60).
	if b.Max != 80 {
		t.Errorf("Max = %v, want 80", b.Max)
	}
	if b.Eps != 0.25 {
		t.Errorf("Eps = %v, want 1/4", b.Eps)
	}
	// Little-only platform must use little weights.
	bl := DefaultBounds(c, core.Res(0, 5))
	if bl.Min != 45 {
		t.Errorf("little-only Min = %v, want 45", bl.Min)
	}
}

func TestScheduleDegenerate(t *testing.T) {
	c := core.MustChain([]core.Task{task(1, 2, true)})
	if s := Schedule(nil, core.Res(1, 0), nil); !s.IsEmpty() {
		t.Error("nil chain should yield empty solution")
	}
	if s := Schedule(c, core.Resources{}, nil); !s.IsEmpty() {
		t.Error("no resources should yield empty solution")
	}
	if s := Schedule(c, core.Res(-1, 2), nil); !s.IsEmpty() {
		t.Error("negative resources should yield empty solution")
	}
}

func TestScheduleBinarySearchConverges(t *testing.T) {
	// A trivial compute function: whole chain in one big-core stage.
	c := core.MustChain([]core.Task{task(10, 20, false), task(10, 20, false)})
	all := func(ch *core.Chain, s int, r core.Resources, target float64) core.Solution {
		return core.Solution{Stages: []core.Stage{{Start: 0, End: ch.Len() - 1, Cores: 1, Type: core.Big}}}
	}
	got := Schedule(c, core.Res(1, 0), all)
	if got.IsEmpty() {
		t.Fatal("expected a solution")
	}
	if p := got.Period(c); p != 20 {
		t.Errorf("period = %v, want 20", p)
	}
}

func TestScheduleFallbackUpperBound(t *testing.T) {
	// A compute function that only succeeds at a period far above the
	// paper's default upper bound, exercising the robustness fallback.
	c := core.MustChain([]core.Task{
		task(10, 10, false), task(10, 10, false), task(10, 10, false),
	})
	needed := c.TotalW(core.Big) // 30; default upper bound is 10+... < 30? Min=max(30/1,10)=30.
	// With a single big core, Min is already 30, so instead force failure
	// below 30 and success at ≥ 30 with two cores where Min = 15, Max = 25.
	r := core.Res(2, 0)
	fn := func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
		if target < needed {
			return core.Solution{}
		}
		return core.Solution{Stages: []core.Stage{{Start: 0, End: 2, Cores: 1, Type: core.Big}}}
	}
	got := Schedule(c, r, fn)
	if got.IsEmpty() {
		t.Fatal("fallback upper bound did not rescue the search")
	}
	if p := got.Period(c); p != 30 {
		t.Errorf("period = %v, want 30", p)
	}
}
