// Package sched implements the scheduling machinery shared by the greedy
// strategies of the paper: the binary-search Schedule procedure (Algo 1),
// the greedy ComputeStage (Algo 2), and the support methods MaxPacking,
// RequiredCores, IsRep and FinalRepTask (Algo 3). FERTAC, 2CATAC and OTAC
// plug their ComputeSolution variants into Schedule.
package sched

import (
	"math"

	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/trace"
)

// Metrics is the sched-layer instrumentation sink: nil-safe counter
// handles for the shared machinery's named series. The zero value is
// the disabled sink — every update is a single nil check and no
// allocation — so the instrumented code paths are unconditional.
type Metrics struct {
	// SearchIterations counts binary-search probes (compute invocations
	// by Schedule/ScheduleBounds, Algo 1's loop plus the final
	// upper-bound retry).
	SearchIterations *obs.Counter
	// SearchValid counts the probes that produced a valid schedule.
	SearchValid *obs.Counter
	// SearchFallbacks counts Schedule's robustness-fallback re-searches.
	SearchFallbacks *obs.Counter
	// ComputeStageCalls counts ComputeStage invocations (Algo 2).
	ComputeStageCalls *obs.Counter
	// MaxPackingCalls counts MaxPacking invocations (Algo 3), including
	// the ones ComputeStage issues internally.
	MaxPackingCalls *obs.Counter
	// Trace is the decision-journal scope. The binary search opens one
	// "probe" span per compute invocation, so the decision events a probe
	// triggers (compute_stage, max_packing, plus the strategy packages'
	// own events) nest under it. Nil disables journaling at one branch
	// per emit site.
	Trace *trace.Scope
}

// MetricsFrom resolves the sched series in r (nil r yields the disabled
// zero value). The names are shared by every binary-search strategy so
// scoped registries (strategy layer) produce comparable per-strategy
// series.
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		SearchIterations:  r.Counter("sched.search.iterations"),
		SearchValid:       r.Counter("sched.search.valid"),
		SearchFallbacks:   r.Counter("sched.search.fallbacks"),
		ComputeStageCalls: r.Counter("sched.compute_stage.calls"),
		MaxPackingCalls:   r.Counter("sched.max_packing.calls"),
	}
}

// ComputeSolutionFunc builds a (possibly partial) schedule for the tasks
// starting at index s (0-based) with the given available resources and a
// target period. It returns the empty solution when no valid schedule with
// period ≤ target exists under the strategy's greedy rules.
type ComputeSolutionFunc func(c *core.Chain, s int, r core.Resources, target float64) core.Solution

// Bounds holds the period interval searched by Schedule.
type Bounds struct {
	Min, Max float64
	// Eps is the termination threshold of the binary search; the paper
	// uses 1/(b+l) to account for the fractional periods of replicated
	// stages.
	Eps float64
}

// DefaultBounds computes the paper's period bounds (Algo 1 lines 1–3):
// the lower bound is the maximum of the fully-replicated-everywhere period
// and the largest sequential task weight; the upper bound adds the largest
// task weight. The paper assumes tasks run fastest on big cores; to stay
// correct when one resource type is absent (OTAC usage) the per-task
// weights are taken on the fastest *available* type.
func DefaultBounds(c *core.Chain, r core.Resources) Bounds {
	total := 0.0
	maxSeq := 0.0
	maxW := 0.0
	for i := 0; i < c.Len(); i++ {
		t := c.Task(i)
		w := bestWeight(t, r)
		total += w
		if !t.Replicable && w > maxSeq {
			maxSeq = w
		}
		// The paper's upper-bound increment uses the little-core weight
		// (the largest weight of a task on any available type).
		if ww := worstWeight(t, r); ww > maxW {
			maxW = ww
		}
	}
	min := total / float64(r.Total())
	if maxSeq > min {
		min = maxSeq
	}
	return Bounds{Min: min, Max: min + maxW, Eps: 1 / float64(r.Total())}
}

func bestWeight(t core.Task, r core.Resources) float64 {
	w, any := math.Inf(1), false
	for v := 0; v < r.NumTypes(); v++ {
		if r.Count(core.CoreType(v)) > 0 {
			w, any = math.Min(w, t.W(core.CoreType(v))), true
		}
	}
	if !any {
		// No type has cores; mirror the historical convention of reading
		// the last (slowest-by-assumption) type's weight.
		return t.W(core.CoreType(r.NumTypes() - 1))
	}
	return w
}

func worstWeight(t core.Task, r core.Resources) float64 {
	w, any := math.Inf(-1), false
	for v := 0; v < r.NumTypes(); v++ {
		if r.Count(core.CoreType(v)) > 0 {
			w, any = math.Max(w, t.W(core.CoreType(v))), true
		}
	}
	if !any {
		return t.W(core.CoreType(r.NumTypes() - 1))
	}
	return w
}

// Schedule implements Algo 1: a binary search over target periods that
// repeatedly invokes compute and keeps the best valid schedule found. It
// returns the empty solution when the chain cannot be scheduled at all
// (no resources).
func Schedule(c *core.Chain, r core.Resources, compute ComputeSolutionFunc) core.Solution {
	return ScheduleM(c, r, compute, Metrics{})
}

// ScheduleM is Schedule reporting into m.
func ScheduleM(c *core.Chain, r core.Resources, compute ComputeSolutionFunc, m Metrics) core.Solution {
	if c == nil || c.Len() == 0 || r.Total() <= 0 || !r.NonNegative() {
		return core.Solution{}
	}
	best := ScheduleBoundsM(c, r, DefaultBounds(c, r), compute, m)
	if !best.IsEmpty() {
		return best
	}
	// Robustness fallback: the paper's upper bound is safe for its greedy
	// strategies on its workloads, but a heuristic may fail below it on
	// adversarial inputs. The whole chain on a single core is always
	// feasible, so retry with that period as the upper bound.
	m.SearchFallbacks.Inc()
	fb := math.Inf(1)
	for v := 0; v < r.NumTypes(); v++ {
		if r.Count(core.CoreType(v)) > 0 {
			fb = math.Min(fb, c.TotalW(core.CoreType(v)))
		}
	}
	b := DefaultBounds(c, r)
	b.Max = fb * (1 + b.Eps)
	if m.Trace.Enabled() {
		m.Trace.Event("fallback").F64("max", b.Max)
	}
	return ScheduleBoundsM(c, r, b, compute, m)
}

// ScheduleBounds is Schedule with caller-provided period bounds.
func ScheduleBounds(c *core.Chain, r core.Resources, b Bounds, compute ComputeSolutionFunc) core.Solution {
	return ScheduleBoundsM(c, r, b, compute, Metrics{})
}

// ScheduleBoundsM is ScheduleBounds reporting into m.
func ScheduleBoundsM(c *core.Chain, r core.Resources, b Bounds, compute ComputeSolutionFunc, m Metrics) core.Solution {
	if m.Trace.Enabled() {
		m.Trace.Event("bounds").F64("min", b.Min).F64("max", b.Max).F64("eps", b.Eps)
	}
	var best core.Solution
	pmin, pmax := b.Min, b.Max
	for pmax-pmin >= b.Eps {
		pmid := (pmax + pmin) / 2
		m.SearchIterations.Inc()
		probe, exit := m.Trace.Enter("probe")
		probe.F64("target", pmid)
		s := compute(c, 0, r, pmid)
		if s.IsValid(c, r, pmid) {
			m.SearchValid.Inc()
			best = s
			pmax = s.Period(c) // can only decrease the target from here
			probe.Bool("valid", true).F64("period", pmax)
		} else {
			pmin = pmid // can only increase the target
			probe.Bool("valid", false)
		}
		exit()
	}
	if best.IsEmpty() {
		// The search may converge without probing the upper bound itself;
		// give the strategy one last chance exactly at Max.
		m.SearchIterations.Inc()
		probe, exit := m.Trace.Enter("probe")
		probe.F64("target", b.Max).Bool("last_chance", true)
		s := compute(c, 0, r, b.Max)
		if s.IsValid(c, r, b.Max) {
			m.SearchValid.Inc()
			best = s
			probe.Bool("valid", true).F64("period", best.Period(c))
		} else {
			probe.Bool("valid", false)
		}
		exit()
	}
	return best
}

// MaxPacking (Algo 3) returns the largest task index e ≥ s (0-based,
// inclusive) such that the stage [s, e] executed by cores cores of type v
// weighs at most target. Following the paper it returns at least s, even
// when the single task s alone exceeds the target.
func MaxPacking(c *core.Chain, s, cores int, v core.CoreType, target float64) int {
	return MaxPackingM(c, s, cores, v, target, Metrics{})
}

// MaxPackingM is MaxPacking reporting into m.
//
// Stage weights are non-decreasing in the interval end (prefix sums of
// non-negative weights; a replicable→sequential flip only removes the
// divisor), so the boundary is found by binary search over the chain's
// prefix sums in O(log n) probes. The former linear scan — which also
// walked the whole tail when task s alone exceeded the target, because its
// break path required one prior success — survives as the differential
// oracle in sched_test.go.
func MaxPackingM(c *core.Chain, s, cores int, v core.CoreType, target float64, m Metrics) int {
	m.MaxPackingCalls.Inc()
	e := s
	if c.Weight(s, s, cores, v) <= target {
		// Invariant: Weight(s, lo, …) ≤ target; answer in [lo, hi].
		lo, hi := s, c.Len()-1
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if c.Weight(s, mid, cores, v) <= target {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		e = lo
	}
	if m.Trace.Enabled() {
		m.Trace.Event("max_packing").Int("first_task", s).Int("cores", cores).
			Str("type", v.String()).F64("target", target).Int("end", e)
	}
	return e
}

// RequiredCores (Algo 3) returns ⌈w([s,e],1,v)/target⌉: the number of
// cores of type v needed for the stage [s, e] to meet the target period if
// it were fully replicable. The result is clamped to at least 1.
func RequiredCores(c *core.Chain, s, e int, v core.CoreType, target float64) int {
	u := int(math.Ceil(c.SumW(s, e, v) / target))
	if u < 1 {
		u = 1
	}
	return u
}

// ComputeStage implements Algo 2: starting at task s with at most avail
// cores of type v, it greedily chooses where the stage ends and how many
// cores it needs to respect the target period. Replicable stages are
// extended as far as possible, shrunk when the cores run out, and trimmed
// by one core when the leftover tasks (plus the following sequential task)
// fit in a single core of the next stage.
func ComputeStage(c *core.Chain, s, avail int, v core.CoreType, target float64) (end, used int) {
	return ComputeStageM(c, s, avail, v, target, Metrics{})
}

// ComputeStageM is ComputeStage reporting into m.
func ComputeStageM(c *core.Chain, s, avail int, v core.CoreType, target float64, m Metrics) (end, used int) {
	m.ComputeStageCalls.Inc()
	n := c.Len()
	e := MaxPackingM(c, s, 1, v, target, m)
	u := RequiredCores(c, s, e, v, target)
	if e != n-1 && c.IsRep(s, e) {
		e = c.FinalRepTask(s, e)
		u = RequiredCores(c, s, e, v, target)
		if u > avail {
			// Not enough cores for the whole replicable run: keep as many
			// tasks as avail cores can absorb.
			e = MaxPackingM(c, s, avail, v, target, m)
			u = avail
		} else if e != n-1 && u >= 2 {
			// The run is followed by a sequential task. Check whether
			// moving this stage's tail to the next stage saves one core.
			// The trimmed stage must itself still respect the target:
			// MaxPacking floors its result at s even when task s alone
			// exceeds the target with u-1 cores, in which case trimming
			// would silently produce an over-period stage.
			f := MaxPackingM(c, s, u-1, v, target, m)
			if c.Weight(s, f, u-1, v) <= target &&
				RequiredCores(c, f+1, e+1, v, target) == 1 {
				e, u = f, u-1
			}
		}
	}
	if m.Trace.Enabled() {
		m.Trace.Event("compute_stage").Int("first_task", s).Int("avail", avail).
			Str("type", v.String()).F64("target", target).Int("end", e).Int("cores", u)
	}
	return e, u
}
