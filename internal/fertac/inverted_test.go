package fertac

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/herad"
	"ampsched/internal/twocatac"
)

// Inverted/mixed-speed platforms (paper footnote 1): the greedy
// heuristics must stay valid and never beat the optimum even when tasks
// run faster on little cores.

func mixedChain(rng *rand.Rand, n int) *core.Chain {
	tasks := make([]core.Task, n)
	for i := range tasks {
		wb := 1 + float64(rng.Intn(60))
		wl := wb
		switch rng.Intn(3) {
		case 0:
			wl = math.Ceil(wb * (1 + 2*rng.Float64()))
		case 1:
			wl = math.Ceil(wb / (1 + 2*rng.Float64()))
		}
		tasks[i] = core.Task{
			Weight:     core.Weights(wb, wl),
			Replicable: rng.Intn(2) == 0,
		}
	}
	return core.MustChain(tasks)
}

func TestHeuristicsValidOnMixedSpeedPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for iter := 0; iter < 120; iter++ {
		c := mixedChain(rng, 1+rng.Intn(16))
		r := core.Res(1+rng.Intn(5), 1+rng.Intn(5))
		opt := herad.Period(c, r)
		for name, s := range map[string]core.Solution{
			"FERTAC": Schedule(c, r),
			"2CATAC": twocatac.Schedule(c, r),
		} {
			if s.IsEmpty() {
				t.Fatalf("iter %d: %s found no schedule", iter, name)
			}
			if err := s.Validate(c, r); err != nil {
				t.Fatalf("iter %d: %s invalid: %v", iter, name, err)
			}
			if p := s.Period(c); p < opt-1e-9 {
				t.Fatalf("iter %d: %s period %v beats optimum %v", iter, name, p, opt)
			}
		}
	}
}
