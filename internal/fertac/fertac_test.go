package fertac

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/herad"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func TestDegenerate(t *testing.T) {
	c := core.MustChain([]core.Task{task(5, 10, true)})
	if s := Schedule(nil, core.Res(1, 0)); !s.IsEmpty() {
		t.Error("nil chain should be empty")
	}
	if s := Schedule(c, core.Resources{}); !s.IsEmpty() {
		t.Error("no cores should be empty")
	}
}

func TestAlwaysProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(25)
		sr := []float64{0, 0.2, 0.5, 0.8, 1}[rng.Intn(5)]
		c := chaingen.Generate(chaingen.Default(n, sr), rng)
		r := core.Res(rng.Intn(8), rng.Intn(8))
		if r.Total() == 0 {
			r = r.With(core.Little, 1)
		}
		s := Schedule(c, r)
		if s.IsEmpty() {
			t.Fatalf("iter %d: FERTAC found no schedule for n=%d R=%v", iter, n, r)
		}
		if err := s.Validate(c, r); err != nil {
			t.Fatalf("iter %d: invalid schedule: %v", iter, err)
		}
	}
}

func TestNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 80; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(15), 0.5), rng)
		r := core.Res(1+rng.Intn(6), 1+rng.Intn(6))
		opt := herad.Period(c, r)
		got := Schedule(c, r).Period(c)
		if got < opt-1e-9 {
			t.Fatalf("FERTAC period %v below optimal %v", got, opt)
		}
	}
}

func TestLittleFirstPreference(t *testing.T) {
	// Two identical sequential tasks, plenty of both core types, little
	// cores fast enough: FERTAC must place the first stage on little.
	c := core.MustChain([]core.Task{task(10, 10, false), task(10, 10, false)})
	s := Schedule(c, core.Res(2, 2))
	if s.IsEmpty() {
		t.Fatal("no schedule")
	}
	if s.Stages[0].Type != core.Little {
		t.Errorf("first stage on %v, want Little: %v", s.Stages[0].Type, s)
	}
	if p := s.Period(c); p != 10 {
		t.Errorf("period %v, want 10", p)
	}
}

func TestBigUsedWhenLittleTooSlow(t *testing.T) {
	// One sequential task that is 10× slower on little: any target close
	// to the optimum forces a big core.
	c := core.MustChain([]core.Task{task(10, 100, false)})
	s := Schedule(c, core.Res(1, 1))
	if s.IsEmpty() {
		t.Fatal("no schedule")
	}
	if s.Stages[0].Type != core.Big {
		t.Errorf("stage on %v, want Big", s.Stages[0].Type)
	}
	if p := s.Period(c); p != 10 {
		t.Errorf("period %v, want 10", p)
	}
}

func TestComputeSolutionRespectsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 100; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(12), 0.5), rng)
		r := core.Res(1+rng.Intn(4), 1+rng.Intn(4))
		target := 50 + float64(rng.Intn(500))
		s := ComputeSolution(c, 0, r, target)
		if s.IsEmpty() {
			continue // the greedy may legitimately fail for tight targets
		}
		if !s.IsValid(c, r, target) {
			t.Fatalf("iter %d: ComputeSolution returned an invalid solution (P=%v): %v",
				iter, s.Period(c), s)
		}
		if err := s.Validate(c, r); err != nil {
			t.Fatalf("iter %d: structural: %v", iter, err)
		}
	}
}

func TestHomogeneousFallbackToBigOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 40; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(10), 0.5), rng)
		s := Schedule(c, core.Res(4, 0))
		if s.IsEmpty() {
			t.Fatal("big-only schedule missing")
		}
		for _, st := range s.Stages {
			if st.Type != core.Big {
				t.Fatalf("little stage on a big-only platform: %v", s)
			}
		}
	}
}

func TestOptimalWhenAbundantResources(t *testing.T) {
	// With a single dominant sequential task and many cores, every
	// strategy should reach the sequential lower bound.
	rng := rand.New(rand.NewSource(79))
	for iter := 0; iter < 30; iter++ {
		c := chaingen.Generate(chaingen.Default(10, 0.2), rng)
		r := core.Res(32, 32)
		got := Schedule(c, r).Period(c)
		opt := herad.Period(c, r)
		if math.Abs(got-opt) > opt*0.25+1e-9 {
			t.Errorf("iter %d: FERTAC %v vs optimal %v (>25%% off with abundant cores)",
				iter, got, opt)
		}
	}
}
