// Package fertac implements FERTAC (First Efficient Resources for TAsk
// Chains, Algo 4 of the paper): a greedy heuristic that builds every stage
// with little cores first and falls back to big cores only when the target
// period cannot be respected. Complexity O(n·log(w_max·(b+l)) + n²).
package fertac

import (
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/sched"
)

// Metrics holds FERTAC's instrumentation handles. The zero value is the
// disabled sink.
type Metrics struct {
	// ComputeCalls counts ComputeSolution invocations (one per stage
	// built, Algo 4's recursion depth).
	ComputeCalls *obs.Counter
	// BigFallbacks counts the stages where little cores failed and the
	// big-core fallback was taken.
	BigFallbacks *obs.Counter
	// Sched carries the shared binary-search/stage-packing series and the
	// decision-journal scope (Sched.Trace): every committed stage emits a
	// "stage_placed" event recording the little-first/big-fallback choice.
	Sched sched.Metrics
}

// MetricsFrom resolves FERTAC's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		ComputeCalls: r.Counter("fertac.compute.calls"),
		BigFallbacks: r.Counter("fertac.compute.big_fallbacks"),
		Sched:        sched.MetricsFrom(r),
	}
}

// Schedule computes a FERTAC schedule of c on the resources r.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return sched.Schedule(c, r, ComputeSolution)
}

// ComputeObs returns ComputeSolution reporting into m, for use with
// sched.ScheduleM/ScheduleBoundsM.
func ComputeObs(m Metrics) sched.ComputeSolutionFunc {
	return func(c *core.Chain, s int, r core.Resources, target float64) core.Solution {
		return computeSolution(c, s, r, target, m)
	}
}

// ComputeSolution implements Algo 4: for the stage starting at task s it
// first tries little cores, then big cores, then recurses on the remaining
// tasks with the remaining resources. It returns the empty solution when
// neither core type yields a valid stage or the recursion fails.
func ComputeSolution(c *core.Chain, s int, r core.Resources, target float64) core.Solution {
	return computeSolution(c, s, r, target, Metrics{})
}

func computeSolution(c *core.Chain, s int, r core.Resources, target float64, m Metrics) core.Solution {
	m.ComputeCalls.Inc()
	e, u := sched.ComputeStageM(c, s, r.Count(core.Little), core.Little, target, m.Sched)
	v := core.Little
	fallback := false
	if !stageValid(c, s, e, u, r, v, target) {
		m.BigFallbacks.Inc()
		fallback = true
		e, u = sched.ComputeStageM(c, s, r.Count(core.Big), core.Big, target, m.Sched)
		v = core.Big
		if !stageValid(c, s, e, u, r, v, target) {
			if m.Sched.Trace.Enabled() {
				m.Sched.Trace.Event("no_stage").Int("first_task", s).
					Int("big", r.Count(core.Big)).Int("little", r.Count(core.Little))
			}
			return core.Solution{} // no valid stage with either core type
		}
	}
	st := core.Stage{Start: s, End: e, Cores: u, Type: v}
	if m.Sched.Trace.Enabled() {
		m.Sched.Trace.Event("stage_placed").Int("first_task", s).Int("end", e).
			Int("cores", u).Str("type", v.String()).Bool("big_fallback", fallback)
	}
	if e == c.Len()-1 {
		return core.Solution{Stages: []core.Stage{st}} // valid final stage
	}
	rest := computeSolution(c, e+1, r.Consume(v, u), target, m)
	if rest.IsEmpty() {
		return core.Solution{}
	}
	return rest.Prepend(st)
}

// stageValid is the paper's IsValid applied to a single candidate stage:
// the stage must meet the target period and fit in the available cores of
// its type.
func stageValid(c *core.Chain, s, e, u int, r core.Resources, v core.CoreType, target float64) bool {
	return u >= 1 && u <= r.Count(v) && c.Weight(s, e, u, v) <= target
}
