// Package fertac implements FERTAC (First Efficient Resources for TAsk
// Chains, Algo 4 of the paper): a greedy heuristic that builds every stage
// with little cores first and falls back to big cores only when the target
// period cannot be respected. Complexity O(n·log(w_max·(b+l)) + n²).
package fertac

import (
	"ampsched/internal/core"
	"ampsched/internal/sched"
)

// Schedule computes a FERTAC schedule of c on the resources r.
func Schedule(c *core.Chain, r core.Resources) core.Solution {
	return sched.Schedule(c, r, ComputeSolution)
}

// ComputeSolution implements Algo 4: for the stage starting at task s it
// first tries little cores, then big cores, then recurses on the remaining
// tasks with the remaining resources. It returns the empty solution when
// neither core type yields a valid stage or the recursion fails.
func ComputeSolution(c *core.Chain, s int, r core.Resources, target float64) core.Solution {
	e, u := sched.ComputeStage(c, s, r.Little, core.Little, target)
	v := core.Little
	if !stageValid(c, s, e, u, r, v, target) {
		e, u = sched.ComputeStage(c, s, r.Big, core.Big, target)
		v = core.Big
		if !stageValid(c, s, e, u, r, v, target) {
			return core.Solution{} // no valid stage with either core type
		}
	}
	st := core.Stage{Start: s, End: e, Cores: u, Type: v}
	if e == c.Len()-1 {
		return core.Solution{Stages: []core.Stage{st}} // valid final stage
	}
	rest := ComputeSolution(c, e+1, r.Minus(v, u), target)
	if rest.IsEmpty() {
		return core.Solution{}
	}
	return rest.Prepend(st)
}

// stageValid is the paper's IsValid applied to a single candidate stage:
// the stage must meet the target period and fit in the available cores of
// its type.
func stageValid(c *core.Chain, s, e, u int, r core.Resources, v core.CoreType, target float64) bool {
	return u >= 1 && u <= r.Of(v) && c.Weight(s, e, u, v) <= target
}
