// Package platform describes the heterogeneous evaluation platforms of the
// paper's real-world SDR experiment (§VI-A2) and embeds the DVB-S2
// receiver's per-task latency profiles of Table III. The profiles are the
// exact input the paper's schedulers consume; the Go runtime realizes them
// on virtual big/little cores (see internal/streampu).
package platform

import (
	"fmt"

	"ampsched/internal/core"
)

// InfoBitsPerFrame is K, the number of information bits per DVB-S2 frame
// in the paper's configuration (short FECFRAME, rate 8/9).
const InfoBitsPerFrame = 14232

// Platform is one evaluation machine: its full resource complement, the
// interframe level used on it, and the profiled DVB-S2 receiver chain.
type Platform struct {
	// Name identifies the machine ("Mac Studio", "X7 Ti").
	Name string
	// Full is the complete resource set of the machine.
	Full core.Resources
	// Interframe is the number of frames processed per pipeline slot.
	Interframe int
	// tasks is the profiled receiver chain (Table III latencies in µs).
	tasks []core.Task
}

// Chain returns the platform's profiled DVB-S2 receiver chain.
func (p *Platform) Chain() *core.Chain { return core.MustChain(p.tasks) }

// Configs returns the paper's two scheduling configurations for the
// platform: half the cores and all the cores (Table II).
func (p *Platform) Configs() []core.Resources {
	half := p.Full
	for v := 0; v < p.Full.NumTypes(); v++ {
		half = half.With(core.CoreType(v), p.Full.Count(core.CoreType(v))/2)
	}
	return []core.Resources{half, p.Full}
}

// MbPerSecond converts a frame rate into the paper's information
// throughput metric (Mb/s at K information bits per frame).
func MbPerSecond(fps float64) float64 {
	return fps * InfoBitsPerFrame / 1e6
}

// taskSpec is one Table III row: latencies on both platforms.
type taskSpec struct {
	name       string
	replicable bool
	macB, macL float64
	x7B, x7L   float64
}

// TableIII lists the DVB-S2 receiver's tasks in chain order with their
// average latencies (µs) on the Mac Studio (interframe 4) and the X7 Ti
// (interframe 8), exactly as published.
var tableIII = []taskSpec{
	{"Radio – receive", false, 52.3, 248.3, 131.7, 133.2},
	{"Multiplier AGC – imultiply", false, 75.2, 149.9, 138.3, 318.1},
	{"Sync. Freq. Coarse – synchronize", false, 96.4, 496.6, 113.7, 429.0},
	{"Filter Matched – filter (part 1)", false, 318.9, 902.9, 334.8, 711.9},
	{"Filter Matched – filter (part 2)", false, 315.1, 883.2, 329.3, 712.6},
	{"Sync. Timing – synchronize", false, 950.6, 1468.9, 1341.9, 2387.1},
	{"Sync. Timing – extract", false, 55.5, 106.0, 58.7, 135.1},
	{"Multiplier AGC – imultiply (2)", false, 37.1, 75.4, 63.5, 157.4},
	{"Sync. Frame – synchronize (part 1)", false, 361.0, 1064.7, 365.9, 848.1},
	{"Sync. Frame – synchronize (part 2)", false, 52.9, 169.1, 81.1, 197.9},
	{"Scrambler Symbol – descramble", true, 16.0, 61.0, 25.1, 65.9},
	{"Sync. Freq. Fine L&R – synchronize", false, 50.5, 247.1, 54.3, 203.2},
	{"Sync. Freq. Fine P/F – synchronize", true, 99.2, 597.8, 253.8, 356.2},
	{"Framer PLH – remove", true, 23.4, 65.1, 47.4, 87.7},
	{"Noise Estimator – estimate", true, 40.5, 65.4, 32.4, 65.4},
	{"Modem QPSK – demodulate", true, 2257.5, 4838.6, 2123.1, 5742.4},
	{"Interleaver – deinterleave", true, 21.1, 58.4, 29.3, 47.6},
	{"Decoder LDPC – decode SIHO", true, 153.2, 506.7, 239.7, 1024.4},
	{"Decoder BCH – decode HIHO", true, 3339.9, 7303.5, 6209.0, 8166.2},
	{"Scrambler Binary – descramble", true, 191.7, 464.9, 559.0, 621.8},
	{"Sink Binary File – send", false, 9.5, 33.3, 34.6, 75.6},
	{"Source – generate", false, 4.0, 13.6, 16.9, 23.4},
	{"Monitor – check errors", true, 9.5, 21.0, 9.2, 20.5},
}

// MacStudio returns the Apple M1 Ultra platform model: 16 big (p) cores,
// 4 little (e) cores, interframe level 4.
func MacStudio() *Platform {
	return build("Mac Studio", core.Res(16, 4), 4,
		func(s taskSpec) (float64, float64) { return s.macB, s.macL })
}

// X7Ti returns the Minisforum AtomMan X7 Ti platform model: 6 big (p)
// cores, 8 little (e) cores, interframe level 8.
func X7Ti() *Platform {
	return build("X7 Ti", core.Res(6, 8), 8,
		func(s taskSpec) (float64, float64) { return s.x7B, s.x7L })
}

// All returns both evaluation platforms in the paper's order.
func All() []*Platform {
	return []*Platform{MacStudio(), X7Ti()}
}

func build(name string, full core.Resources, interframe int, pick func(taskSpec) (float64, float64)) *Platform {
	tasks := make([]core.Task, len(tableIII))
	for i, s := range tableIII {
		wb, wl := pick(s)
		tasks[i] = core.Task{
			Name:       fmt.Sprintf("τ%02d %s", i+1, s.name),
			Weight:     core.Weights(wb, wl),
			Replicable: s.replicable,
		}
	}
	return &Platform{Name: name, Full: full, Interframe: interframe, tasks: tasks}
}
