package platform

import (
	"math"
	"testing"

	"ampsched/internal/core"
)

func TestTableIIITotals(t *testing.T) {
	// Table III publishes the column totals; transcription must match.
	// Tolerance 0.25 µs: the paper's totals were computed from unrounded
	// latencies, so they differ from the sum of the published rows by up
	// to 0.2 µs (e.g. Mac B rows sum to 8531.0 vs the printed 8530.8).
	mac := MacStudio().Chain()
	x7 := X7Ti().Chain()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"Mac B", mac.TotalW(core.Big), 8530.8},
		{"Mac L", mac.TotalW(core.Little), 19841.3},
		{"X7 B", x7.TotalW(core.Big), 12592.5},
		{"X7 L", x7.TotalW(core.Little), 22530.7},
	}
	for _, tc := range cases {
		if math.Abs(tc.got-tc.want) > 0.25 {
			t.Errorf("%s total = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestChainShape(t *testing.T) {
	for _, p := range All() {
		c := p.Chain()
		if c.Len() != 23 {
			t.Fatalf("%s: %d tasks, want 23", p.Name, c.Len())
		}
		// 10 replicable tasks in Table III (τ11, τ13..τ20, τ23).
		if got := c.Len() - c.SeqCount(); got != 10 {
			t.Errorf("%s: %d replicable tasks, want 10", p.Name, got)
		}
		// Little latency is never below big latency on these platforms.
		for i := 0; i < c.Len(); i++ {
			tk := c.Task(i)
			if tk.W(core.Little) < tk.W(core.Big) {
				t.Errorf("%s task %d (%s): little %v < big %v",
					p.Name, i, tk.Name, tk.W(core.Little), tk.W(core.Big))
			}
		}
	}
}

func TestSlowestTasks(t *testing.T) {
	// The paper highlights τ6 (Sync Timing) as the slowest sequential task
	// and τ19 (BCH) as the slowest replicable task on both platforms.
	for _, p := range All() {
		c := p.Chain()
		if got := c.MaxSeqWeight(core.Big); got != c.Task(5).W(core.Big) {
			t.Errorf("%s: slowest sequential big task = %v, want τ6's %v",
				p.Name, got, c.Task(5).W(core.Big))
		}
		if got := c.MaxWeight(core.Big); got != c.Task(18).W(core.Big) {
			t.Errorf("%s: slowest big task = %v, want τ19's %v",
				p.Name, got, c.Task(18).W(core.Big))
		}
	}
}

func TestConfigs(t *testing.T) {
	mac := MacStudio()
	cfgs := mac.Configs()
	if len(cfgs) != 2 {
		t.Fatalf("%d configs", len(cfgs))
	}
	if cfgs[0] != (core.Res(8, 2)) {
		t.Errorf("half config = %v", cfgs[0])
	}
	if cfgs[1] != (core.Res(16, 4)) {
		t.Errorf("full config = %v", cfgs[1])
	}
	x7 := X7Ti()
	if got := x7.Configs()[0]; got != (core.Res(3, 4)) {
		t.Errorf("X7 half config = %v", got)
	}
	if x7.Interframe != 8 || mac.Interframe != 4 {
		t.Error("interframe levels wrong")
	}
}

func TestMbPerSecond(t *testing.T) {
	// Table II S1: 3544 FPS ↔ 50.4 Mb/s.
	if got := MbPerSecond(3544); math.Abs(got-50.4) > 0.05 {
		t.Errorf("MbPerSecond(3544) = %v, want ≈50.4", got)
	}
}
