// Package report renders experiment results as aligned text tables, CSV,
// and simple ASCII plots (log-scale series and CDF sketches) so the
// cmd/experiments driver can regenerate every table and figure of the
// paper in a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	r := []rune(s)
	if len(r) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(r))
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := make([]string, len(t.header))
	for i, h := range t.header {
		row[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(row, ","))
	for _, r := range t.rows {
		out := make([]string, len(r))
		for i, c := range r {
			out[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
}

// Series is one named line of an ASCII plot.
type Series struct {
	Name string
	X, Y []float64
}

// LogPlot renders series as an ASCII scatter with log-scaled Y (the shape
// of the paper's Figs. 3–4). Width and height are in characters.
func LogPlot(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.Y[i] <= 0 {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) || xmin == xmax {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if ymin == ymax {
		ymax = ymin * 10
	}
	lymin, lymax := math.Log10(ymin), math.Log10(ymax)
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range series {
		m := rune(marks[si%len(marks)])
		for i := range s.X {
			if s.Y[i] <= 0 {
				continue
			}
			cx := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			cy := int(math.Round((math.Log10(s.Y[i]) - lymin) / (lymax - lymin) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = m
			}
		}
	}
	fmt.Fprintln(w, title)
	for i, row := range grid {
		label := ""
		if i == 0 {
			label = fmt.Sprintf("%8.2g", ymax)
		} else if i == height-1 {
			label = fmt.Sprintf("%8.2g", ymin)
		} else {
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(w, "%s  %-8.4g%s%8.4g\n", strings.Repeat(" ", 8), xmin,
		strings.Repeat(" ", max(1, width-16)), xmax)
	for si, s := range series {
		fmt.Fprintf(w, "%10s %c = %s\n", "", marks[si%len(marks)], s.Name)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
