package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value", "note")
	tb.AddRow("alpha", 3.14159, "first")
	tb.AddRow("beta", 1000000.0, "big")
	tb.AddRow("gamma", 42.0, "int-like")
	tb.AddRow("delta", math.Inf(1), "inf")
	tb.AddRow("eps", math.NaN(), "nan")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"name", "alpha", "3.14", "42", "inf", "-", "1000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 {
		t.Errorf("%d lines, want header+sep+5 rows", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("plain", `with "quote", comma`)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"with ""quote"", comma"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestLogPlot(t *testing.T) {
	var sb strings.Builder
	series := []Series{
		{Name: "fast", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "slow", X: []float64{1, 2, 3}, Y: []float64{100, 1000, 10000}},
	}
	LogPlot(&sb, "timing", series, 40, 10)
	out := sb.String()
	if !strings.Contains(out, "timing") || !strings.Contains(out, "fast") {
		t.Errorf("plot missing labels:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Errorf("plot missing marks:\n%s", out)
	}
}

func TestLogPlotDegenerate(t *testing.T) {
	var sb strings.Builder
	LogPlot(&sb, "empty", nil, 40, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty plot: %s", sb.String())
	}
	sb.Reset()
	// All-zero Y values are skipped (log scale).
	LogPlot(&sb, "zeros", []Series{{Name: "z", X: []float64{1}, Y: []float64{0}}}, 40, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("zero plot: %s", sb.String())
	}
	sb.Reset()
	// Single point must not divide by zero.
	LogPlot(&sb, "one", []Series{{Name: "o", X: []float64{1, 2}, Y: []float64{5, 5}}}, 5, 3)
	if sb.Len() == 0 {
		t.Error("single-value plot produced nothing")
	}
}
