package experiments

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/dvbs2"
	"ampsched/internal/platform"
	"ampsched/internal/streampu"
)

// Table3Row is one task row of Table III.
type Table3Row struct {
	ID         int
	Name       string
	Replicable bool
	// Weights per platform: [platform][core type], µs.
	Weights map[string][]float64
}

// Table3 returns the embedded paper profile (the scheduling input of the
// real-world experiment).
func Table3() []Table3Row {
	plats := platform.All()
	chains := make([]*core.Chain, len(plats))
	for i, p := range plats {
		chains[i] = p.Chain()
	}
	n := chains[0].Len()
	rows := make([]Table3Row, n)
	for i := 0; i < n; i++ {
		t0 := chains[0].Task(i)
		rows[i] = Table3Row{
			ID:         i + 1,
			Name:       t0.Name,
			Replicable: t0.Replicable,
			Weights:    map[string][]float64{},
		}
		for pi, p := range plats {
			rows[i].Weights[p.Name] = chains[pi].Task(i).Weight
		}
	}
	return rows
}

// LiveProfile measures the actual latency of this repository's Go DVB-S2
// receiver tasks on the host machine (both virtual core types execute the
// same silicon, so the two columns coincide for computational tasks). It
// returns the measured chain ready for scheduling, together with the raw
// per-task microseconds.
func LiveProfile(p dvbs2.Params, frames int) (*core.Chain, []float64, error) {
	tx, err := dvbs2.NewTransmitter(p)
	if err != nil {
		return nil, nil, err
	}
	rx := dvbs2.NewReceiver(tx, dvbs2.NewTxStream(tx, dvbs2.DefaultChannel()))
	tasks := rx.Tasks()
	prof, err := streampu.Profile(tasks, frames, 1)
	if err != nil {
		return nil, nil, err
	}
	micros := prof[core.Big]
	weights := make([][]float64, len(tasks))
	for i := range weights {
		w := micros[i]
		if w <= 0 {
			w = 0.01 // profiling floor: never schedule a zero-weight task
		}
		// The host has one core type; model "little" with the paper's
		// average slowdown so heterogeneous scheduling stays meaningful.
		weights[i] = core.Weights(w, w*2.3)
	}
	chain, err := rx.ModelChain(weights)
	if err != nil {
		return nil, nil, err
	}
	return chain, micros, nil
}

// LiveRun profiles the Go receiver, schedules it with the named strategy
// on r virtual cores, executes the schedule on the streampu runtime with
// real DSP computation, and reports the measured frame rate and residual
// BER. This goes beyond the paper's latency-replay experiment: the
// pipeline does the actual signal processing.
type LiveRunResult struct {
	Chain     *core.Chain
	Solution  core.Solution
	Predicted float64 // frames/s from the schedule period
	Measured  float64 // frames/s from the wall clock
	BER       float64
	Frames    int64
}

// LiveRun executes the live experiment (see LiveRunResult).
func LiveRun(p dvbs2.Params, strategy string, r core.Resources, profileFrames, runFrames int) (LiveRunResult, error) {
	chain, _, err := LiveProfile(p, profileFrames)
	if err != nil {
		return LiveRunResult{}, err
	}
	sol := Run(strategy, chain, r)
	if sol.IsEmpty() {
		return LiveRunResult{}, fmt.Errorf("experiments: %s found no schedule", strategy)
	}
	tx, err := dvbs2.NewTransmitter(p)
	if err != nil {
		return LiveRunResult{}, err
	}
	rx := dvbs2.NewReceiver(tx, dvbs2.NewTxStream(tx, dvbs2.DefaultChannel()))
	pipe, err := streampu.New(rx.Tasks(), sol, streampu.Options{QueueCap: 2})
	if err != nil {
		return LiveRunResult{}, err
	}
	st, err := pipe.Run(runFrames, nil)
	if err != nil {
		return LiveRunResult{}, err
	}
	return LiveRunResult{
		Chain:     chain,
		Solution:  sol,
		Predicted: 1e6 / sol.Period(chain),
		Measured:  st.FPS,
		BER:       rx.Monitor.BER(),
		Frames:    rx.Monitor.Frames.Load(),
	}, nil
}
