package experiments

import (
	"time"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/stats"
	"ampsched/internal/strategy"
)

// Fig1Series is one cumulative-distribution line of Fig. 1: the CDF of a
// strategy's slowdown ratios (vs HeRAD) for one (R, SR) scenario.
type Fig1Series struct {
	R        core.Resources
	SR       float64
	Strategy string
	CDF      []stats.CDFPoint
}

// Fig1 derives the cumulative slowdown distributions from Table I's raw
// slowdowns (the paper's Fig. 1a spans all resource pairs and SRs; Fig. 1b
// is the R=(10,10) row over the full slowdown range).
func Fig1(cells []Table1Cell) []Fig1Series {
	var out []Fig1Series
	for _, c := range cells {
		if c.Strategy == StratHeRAD {
			continue // the reference line is identically 1
		}
		out = append(out, Fig1Series{R: c.R, SR: c.SR, Strategy: c.Strategy,
			CDF: stats.CDF(c.Slowdowns)})
	}
	return out
}

// Fig2Result holds the two heatmaps of Fig. 2: distributions of
// (Δbig, Δlittle) = FERTAC usage − HeRAD usage for R=(10,10), SR=0.5,
// over all chains and over the chains where FERTAC reached the optimal
// period.
type Fig2Result struct {
	R   core.Resources
	SR  float64
	All *stats.Hist2D // every chain
	Opt *stats.Hist2D // only chains where FERTAC achieved the minimal period
}

// Fig2 runs the FERTAC-vs-HeRAD core-usage study.
func Fig2(cfg Table1Config) Fig2Result {
	r := core.Res(10, 10)
	sr := 0.5
	res := Fig2Result{R: r, SR: sr, All: stats.NewHist2D(), Opt: stats.NewHist2D()}
	chains := chaingen.GenerateMany(chaingen.Default(cfg.Tasks, sr), cfg.Seed+int64(sr*1000), cfg.Chains)
	pair := []string{StratHeRAD, StratFERTAC}
	results := strategy.PlanBatch(crossRequests(chains, r, pair,
		strategy.Options{Metrics: cfg.Metrics, Cache: cfg.Cache}), cfg.Workers)
	for i := range chains {
		h, f := results[2*i], results[2*i+1]
		hb, hl := h.Solution.CoresUsed()
		fb, fl := f.Solution.CoresUsed()
		db, dl := fb-hb, fl-hl
		res.All.Add(db, dl)
		if f.Period <= h.Period*(1+1e-9) {
			res.Opt.Add(db, dl)
		}
	}
	return res
}

// ExtraCoresAtMost returns the fraction of samples in h where FERTAC used
// at most k extra cores in total (counting only positive deltas, as the
// paper's "at most 1 or 2 extra cores" statistic).
func ExtraCoresAtMost(h *stats.Hist2D, k int) float64 {
	return h.FractionWhere(func(db, dl int) bool {
		extra := 0
		if db > 0 {
			extra += db
		}
		if dl > 0 {
			extra += dl
		}
		return extra <= k
	})
}

// TimingPoint is one averaged strategy-execution-time measurement of
// Figs. 3 and 4.
type TimingPoint struct {
	Strategy string
	Tasks    int
	R        core.Resources
	SR       float64
	Micros   float64 // mean execution time in µs
	Runs     int
}

// TimingConfig parameterizes the execution-time profiling. The paper uses
// Chains=50 per point.
type TimingConfig struct {
	Chains int
	Seed   int64
	// MaxTasks2CATAC caps 2CATAC's chain length (the paper stops it at 60
	// tasks because of its exponential growth).
	MaxTasks2CATAC int
	// SkipHeRADAbove skips HeRAD for resource totals above this bound
	// (only used to keep test runs fast; 0 means no cap).
	SkipHeRADAbove int
	// Metrics, when non-nil, collects per-strategy series for the timed
	// runs. The reported timings include the (small) metric overhead, so
	// leave it nil when measuring for a figure.
	Metrics *obs.Registry
}

// DefaultTimingConfig returns the paper's profiling configuration.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{Chains: 50, Seed: 20250704, MaxTasks2CATAC: 60}
}

// Fig3 measures strategy execution times for varying numbers of tasks
// (the paper's 20·i, i ∈ [1,8]) at fixed resources.
func Fig3(cfg TimingConfig, r core.Resources, taskCounts []int, srs []float64) []TimingPoint {
	var out []TimingPoint
	for _, sr := range srs {
		for _, n := range taskCounts {
			for _, name := range Strategies {
				if name == StratTwoCAT && cfg.MaxTasks2CATAC > 0 && n > cfg.MaxTasks2CATAC {
					continue
				}
				if name == StratHeRAD && cfg.SkipHeRADAbove > 0 && r.Total() > cfg.SkipHeRADAbove {
					continue
				}
				out = append(out, timeStrategy(cfg, name, n, r, sr))
			}
		}
	}
	return out
}

// Fig4 measures strategy execution times for varying resource pairs
// (the paper's (20·i, 20·i), i ∈ [1,8]) at fixed task counts.
func Fig4(cfg TimingConfig, n int, resources []core.Resources, srs []float64) []TimingPoint {
	var out []TimingPoint
	for _, sr := range srs {
		for _, r := range resources {
			for _, name := range Strategies {
				if name == StratTwoCAT && cfg.MaxTasks2CATAC > 0 && n > cfg.MaxTasks2CATAC {
					continue
				}
				if name == StratHeRAD && cfg.SkipHeRADAbove > 0 && r.Total() > cfg.SkipHeRADAbove {
					continue
				}
				out = append(out, timeStrategy(cfg, name, n, r, sr))
			}
		}
	}
	return out
}

// timeStrategy measures one timing point. It runs serially on purpose:
// the figure reports per-call strategy execution time, which concurrent
// planning would contaminate with scheduler contention.
func timeStrategy(cfg TimingConfig, name string, n int, r core.Resources, sr float64) TimingPoint {
	chains := chaingen.GenerateMany(chaingen.Default(n, sr), cfg.Seed+int64(n)*7+int64(sr*1000), cfg.Chains)
	sched := mustScheduler(name)
	start := time.Now()
	for _, c := range chains {
		sched.Schedule(c, r, strategy.Options{Metrics: cfg.Metrics})
	}
	elapsed := time.Since(start)
	return TimingPoint{
		Strategy: name, Tasks: n, R: r, SR: sr,
		Micros: float64(elapsed.Microseconds()) / float64(len(chains)),
		Runs:   len(chains),
	}
}
