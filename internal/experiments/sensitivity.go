package experiments

import (
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/stats"
	"ampsched/internal/strategy"
)

// Sensitivity study — the paper reports (without data, "for the sake of
// space") that non-optimal strategies perform worse with more tasks to
// schedule and better with more resources. This extension quantifies
// both claims: heuristic quality vs chain length at fixed resources, and
// vs resource count at fixed length.

// SensitivityPoint is one (x, strategy) cell: the fraction of optimal
// periods and the average slowdown over a batch of chains.
type SensitivityPoint struct {
	Strategy    string
	X           int // tasks or total cores, depending on the sweep
	PctOptimal  float64
	AvgSlowdown float64
}

// SensitivityConfig sizes the study.
type SensitivityConfig struct {
	Chains int
	SR     float64
	Seed   int64
	// Workers bounds the strategy.PlanBatch pool; ≤ 0 uses GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, collects the sweep's strategy series.
	Metrics *obs.Registry
	// Cache, when non-nil, reuses solutions across identical requests
	// (strategy.Options.Cache). The points do not depend on it.
	Cache *strategy.Cache
}

// DefaultSensitivityConfig returns a laptop-sized configuration.
func DefaultSensitivityConfig() SensitivityConfig {
	return SensitivityConfig{Chains: 100, SR: 0.5, Seed: 20250704}
}

// SensitivityTasks sweeps the chain length at fixed resources.
func SensitivityTasks(cfg SensitivityConfig, r core.Resources, taskCounts []int) []SensitivityPoint {
	var out []SensitivityPoint
	for _, n := range taskCounts {
		out = append(out, sensitivityScenario(cfg, n, r, n)...)
	}
	return out
}

// SensitivityResources sweeps the platform size at fixed chain length.
func SensitivityResources(cfg SensitivityConfig, n int, resources []core.Resources) []SensitivityPoint {
	var out []SensitivityPoint
	for _, r := range resources {
		out = append(out, sensitivityScenario(cfg, n, r, r.Total())...)
	}
	return out
}

func sensitivityScenario(cfg SensitivityConfig, n int, r core.Resources, x int) []SensitivityPoint {
	chains := chaingen.GenerateMany(chaingen.Default(n, cfg.SR), cfg.Seed+int64(n)*13+int64(r.Total()), cfg.Chains)
	names := []string{StratHeRAD}
	for _, name := range HeuristicStrategies {
		if name == StratTwoCAT && n > 60 {
			continue // the paper's exponential-blow-up cutoff
		}
		names = append(names, name)
	}
	results := strategy.PlanBatch(crossRequests(chains, r, names,
		strategy.Options{Metrics: cfg.Metrics, Cache: cfg.Cache}), cfg.Workers)
	slow := map[string][]float64{}
	stride := len(names)
	for i := range chains {
		opt := results[i*stride].Period // HeRAD leads every chain's block
		for k, name := range names[1:] {
			slow[name] = append(slow[name], results[i*stride+1+k].Period/opt)
		}
	}
	var out []SensitivityPoint
	for _, name := range HeuristicStrategies {
		xs, ok := slow[name]
		if !ok {
			continue
		}
		out = append(out, SensitivityPoint{
			Strategy:    name,
			X:           x,
			PctOptimal:  100 * stats.FractionAtMost(xs, 1),
			AvgSlowdown: stats.Mean(xs),
		})
	}
	return out
}
