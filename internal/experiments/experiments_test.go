package experiments

import (
	"math"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/dvbs2"
	"ampsched/internal/platform"
)

// quickCfg keeps experiment tests fast while preserving the statistics'
// shape (the full campaign runs from cmd/experiments).
func quickCfg() Table1Config {
	return Table1Config{Chains: 60, Tasks: 20, Seed: 20250704}
}

func TestRunDispatch(t *testing.T) {
	c := core.MustChain([]core.Task{{
		Weight: core.Weights(5, 10), Replicable: true,
	}})
	r := core.Res(2, 2)
	for _, name := range Strategies {
		s := Run(name, c, r)
		if s.IsEmpty() {
			t.Errorf("%s returned empty solution", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown strategy should panic")
		}
	}()
	Run("nope", c, r)
}

func TestTable1ScenarioShape(t *testing.T) {
	cells := Table1Scenario(quickCfg(), core.Res(10, 10), 0.5)
	if len(cells) != len(Strategies) {
		t.Fatalf("%d cells", len(cells))
	}
	byName := map[string]Table1Cell{}
	for _, c := range cells {
		byName[c.Strategy] = c
		if len(c.Slowdowns) != 60 {
			t.Fatalf("%s has %d slowdowns", c.Strategy, len(c.Slowdowns))
		}
		if c.MaxSlowdown < c.MedSlowdown-1e-12 || c.AvgSlowdown < 1-1e-9 {
			t.Errorf("%s: inconsistent stats %+v", c.Strategy, c)
		}
	}
	// The paper's qualitative ordering (Table I): HeRAD always optimal;
	// 2CATAC ≥ FERTAC ≥ OTAC(B) ≥ OTAC(L) in % optimal for (10,10).
	if byName[StratHeRAD].PctOptimal != 100 {
		t.Errorf("HeRAD optimal %.1f%%", byName[StratHeRAD].PctOptimal)
	}
	if byName[StratTwoCAT].PctOptimal < byName[StratFERTAC].PctOptimal {
		t.Errorf("2CATAC (%.1f%%) below FERTAC (%.1f%%)",
			byName[StratTwoCAT].PctOptimal, byName[StratFERTAC].PctOptimal)
	}
	if byName[StratFERTAC].PctOptimal < byName[StratOTACB].PctOptimal {
		t.Errorf("FERTAC (%.1f%%) below OTAC(B) (%.1f%%)",
			byName[StratFERTAC].PctOptimal, byName[StratOTACB].PctOptimal)
	}
	if byName[StratOTACL].AvgSlowdown < 2 {
		t.Errorf("OTAC(L) suspiciously good: %.2f", byName[StratOTACL].AvgSlowdown)
	}
	// OTAC(B) must use zero little cores and vice versa.
	if byName[StratOTACB].AvgLitUsed != 0 || byName[StratOTACL].AvgBigUsed != 0 {
		t.Error("OTAC variants used the wrong core type")
	}
}

func TestFig1DerivesCDFs(t *testing.T) {
	cells := Table1Scenario(quickCfg(), core.Res(4, 16), 0.2)
	series := Fig1(cells)
	if len(series) != len(HeuristicStrategies) {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.CDF) == 0 {
			t.Fatalf("%s: empty CDF", s.Strategy)
		}
		last := s.CDF[len(s.CDF)-1]
		if math.Abs(last.P-1) > 1e-9 {
			t.Errorf("%s: CDF does not reach 1 (%v)", s.Strategy, last.P)
		}
		if s.CDF[0].X < 1-1e-9 {
			t.Errorf("%s: slowdown below 1 (%v)", s.Strategy, s.CDF[0].X)
		}
	}
}

func TestFig2Heatmaps(t *testing.T) {
	res := Fig2(quickCfg())
	if res.All.Total() != 60 {
		t.Fatalf("all histogram has %d samples", res.All.Total())
	}
	if res.Opt.Total() > res.All.Total() || res.Opt.Total() == 0 {
		t.Fatalf("optimal subset %d of %d", res.Opt.Total(), res.All.Total())
	}
	// The paper: FERTAC uses at most 1-2 extra cores in most cases.
	if frac := ExtraCoresAtMost(res.All, 2); frac < 0.5 {
		t.Errorf("≤2 extra cores only %.2f of the time", frac)
	}
	if ExtraCoresAtMost(res.All, 40) != 1 {
		t.Error("≤40 extra cores must cover everything")
	}
}

func TestTimingFigs(t *testing.T) {
	cfg := TimingConfig{Chains: 3, Seed: 1, MaxTasks2CATAC: 25}
	pts := Fig3(cfg, core.Res(8, 8), []int{10, 30}, []float64{0.5})
	// 2CATAC must be skipped at 30 tasks: 2 task counts × 5 strategies − 1.
	if len(pts) != 9 {
		t.Fatalf("%d timing points", len(pts))
	}
	for _, p := range pts {
		if p.Micros < 0 || p.Runs != 3 {
			t.Errorf("bad point %+v", p)
		}
		if p.Strategy == StratTwoCAT && p.Tasks > 25 {
			t.Errorf("2CATAC ran at %d tasks", p.Tasks)
		}
	}
	pts4 := Fig4(cfg, 10, []core.Resources{core.Res(4, 4), core.Res(12, 12)}, []float64{0.5})
	if len(pts4) != 10 {
		t.Fatalf("%d fig4 points", len(pts4))
	}
	// HeRAD must slow down with more resources (the paper's Fig. 4).
	var hSmall, hBig float64
	for _, p := range pts4 {
		if p.Strategy == StratHeRAD {
			if p.R.Count(core.Big) == 4 {
				hSmall = p.Micros
			} else {
				hBig = p.Micros
			}
		}
	}
	if hBig < hSmall {
		t.Errorf("HeRAD faster with more resources: %v vs %v µs", hBig, hSmall)
	}
}

func TestTimingSkipHeRAD(t *testing.T) {
	cfg := TimingConfig{Chains: 2, Seed: 1, MaxTasks2CATAC: 60, SkipHeRADAbove: 10}
	pts := Fig4(cfg, 8, []core.Resources{core.Res(20, 20)}, []float64{0.5})
	for _, p := range pts {
		if p.Strategy == StratHeRAD {
			t.Error("HeRAD not skipped above the cap")
		}
	}
}

func TestTable2SimOnly(t *testing.T) {
	cfg := Table2Config{RunReal: false}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20 (S1..S20)", len(rows))
	}
	// Check the published expected periods (µs) for the HeRAD rows.
	want := map[string]float64{
		"S1":  1128.7, // Mac (8,2)
		"S6":  950.6,  // Mac (16,4)
		"S11": 2722.1, // X7 (3,4)
		"S16": 1341.9, // X7 (6,8)
	}
	for _, r := range rows {
		if w, ok := want[r.ID]; ok && r.Strategy == StratHeRAD {
			if math.Abs(r.PeriodMicros-w) > 0.5 {
				t.Errorf("%s HeRAD period %.1f, paper %.1f", r.ID, r.PeriodMicros, w)
			}
		}
		if r.RealFPS != 0 {
			t.Errorf("%s: real run executed in sim-only mode", r.ID)
		}
		if r.SimFPS <= 0 || r.SimMbps <= 0 {
			t.Errorf("%s: no simulated throughput", r.ID)
		}
		// Simulated FPS must match the analytic period prediction.
		var plat *platform.Platform
		for _, p := range platform.All() {
			if p.Name == r.Platform {
				plat = p
			}
		}
		predicted := core.Throughput(r.PeriodMicros, plat.Interframe)
		if math.Abs(r.SimFPS-predicted) > predicted*0.01 {
			t.Errorf("%s: desim FPS %.0f vs analytic %.0f", r.ID, r.SimFPS, predicted)
		}
	}
	// Paper shape: OTAC(L) is far below HeRAD everywhere; OTAC(B) loses
	// badly on the X7 half configuration (S14 ≈ 53%... of HeRAD on full).
	byID := map[string]Table2Row{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	if byID["S5"].SimMbps > byID["S1"].SimMbps/5 {
		t.Errorf("OTAC(L) on Mac half: %.1f vs HeRAD %.1f", byID["S5"].SimMbps, byID["S1"].SimMbps)
	}
	if byID["S14"].SimMbps > byID["S11"].SimMbps*0.6 {
		t.Errorf("OTAC(B) on X7 half should lag HeRAD: %.1f vs %.1f",
			byID["S14"].SimMbps, byID["S11"].SimMbps)
	}
}

func TestTable2RealSingleConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	cfg := DefaultTable2Config()
	cfg.Platforms = []*platform.Platform{platform.X7Ti()}
	cfg.TargetWallSec = 0.4
	cfg.MinFrames = 25
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RealFPS <= 0 {
			t.Errorf("%s: no measured FPS", r.ID)
		}
		// The runtime should land within 25% of the prediction even on a
		// loaded CI machine.
		if math.Abs(r.RealFPS-r.SimFPS) > r.SimFPS*0.25 {
			t.Errorf("%s: measured %.0f FPS vs predicted %.0f", r.ID, r.RealFPS, r.SimFPS)
		}
	}
}

func TestFig5AndFig6(t *testing.T) {
	rows, err := Table2(Table2Config{RunReal: false})
	if err != nil {
		t.Fatal(err)
	}
	entries := Fig5(rows)
	if len(entries) != len(rows) {
		t.Fatalf("%d fig5 entries", len(entries))
	}
	for _, e := range entries {
		if e.Mbps <= 0 {
			t.Errorf("%s/%s: no throughput", e.Platform, e.Strategy)
		}
	}
	t1 := Table1Scenario(quickCfg(), core.Res(10, 10), 0.5)
	sums := Fig6(t1, rows)
	if len(sums) != len(Strategies) {
		t.Fatalf("%d summaries", len(sums))
	}
	for _, s := range sums {
		if s.Strategy == StratHeRAD {
			if !s.Optimal || math.Abs(s.AvgSlowdown-1) > 1e-9 {
				t.Errorf("HeRAD summary wrong: %+v", s)
			}
		} else if s.Optimal {
			t.Errorf("%s claims optimality", s.Strategy)
		}
		if s.TimeClass == "" {
			t.Errorf("%s: no time class", s.Strategy)
		}
	}
}

func TestTable3EmbeddedProfile(t *testing.T) {
	rows := Table3()
	if len(rows) != 23 {
		t.Fatalf("%d rows", len(rows))
	}
	// τ6 Sync Timing: 950.6 µs big / 1468.9 little on Mac Studio.
	r6 := rows[5]
	mac := r6.Weights["Mac Studio"]
	if mac[core.Big] != 950.6 || mac[core.Little] != 1468.9 {
		t.Errorf("τ6 Mac weights %v", mac)
	}
	if r6.Replicable {
		t.Error("τ6 must be sequential")
	}
	if !rows[18].Replicable { // τ19 BCH
		t.Error("τ19 must be replicable")
	}
}

func TestLiveProfileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	chain, micros, err := LiveProfile(dvbs2.Test(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 23 || len(micros) != 23 {
		t.Fatalf("profile shape %d/%d", chain.Len(), len(micros))
	}
	// The QPSK demodulator and LDPC decoder must dominate the cheap glue
	// tasks in measured time.
	if micros[15] <= micros[13] {
		t.Errorf("demod (%.1fµs) not slower than PLH removal (%.1fµs)", micros[15], micros[13])
	}
	res, err := LiveRun(dvbs2.Test(), StratHeRAD, core.Res(3, 2), 12, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.IsEmpty() || res.Measured <= 0 {
		t.Fatalf("live run result %+v", res)
	}
	if res.BER > 1e-3 {
		t.Errorf("live pipelined receiver BER %.2e", res.BER)
	}
}
