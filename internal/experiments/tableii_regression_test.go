package experiments

import (
	"math"
	"testing"

	"ampsched/internal/core"
	"ampsched/internal/platform"
)

// TestTableIIPublishedRows pins this implementation to the paper's
// published Table II: for every one of the 20 rows the expected period
// must match to 0.1 µs, and — wherever our tie-breaking coincides with
// the authors' — the pipeline decomposition must match stage for stage.
func TestTableIIPublishedRows(t *testing.T) {
	type row struct {
		platform string
		r        core.Resources
		strategy string
		period   float64
		decomp   string // "" where tie-breaking differs (see EXPERIMENTS.md)
	}
	rows := []row{
		// Mac Studio, R=(8,2) — S1..S5.
		{"mac", core.Res(8, 2), StratHeRAD, 1128.7,
			"(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)"},
		{"mac", core.Res(8, 2), StratTwoCAT, 1154.3,
			"(5,1B),(3,1B),(7,1B),(4,5B),(4,1L)"},
		{"mac", core.Res(8, 2), StratFERTAC, 1265.6,
			"(3,1L),(1,1L),(2,1B),(9,1B),(5,5B),(3,1B)"},
		{"mac", core.Res(8, 2), StratOTACB, 1442.9,
			"(5,1B),(4,1B),(6,1B),(4,4B),(4,1B)"},
		{"mac", core.Res(8, 2), StratOTACL, 11440.0,
			"(16,1L),(7,1L)"},
		// Mac Studio, R=(16,4) — S6..S10.
		{"mac", core.Res(16, 4), StratHeRAD, 950.6,
			"(3,1L),(1,1L),(1,1L),(1,1B),(6,1B),(7,7B),(4,1L)"},
		{"mac", core.Res(16, 4), StratTwoCAT, 950.6,
			"(3,1L),(1,1L),(1,1L),(1,1B),(9,1B),(5,7B),(3,1L)"},
		{"mac", core.Res(16, 4), StratFERTAC, 950.6,
			"(3,1L),(1,1L),(1,1L),(1,1B),(2,1L),(7,1B),(5,7B),(3,1B)"},
		{"mac", core.Res(16, 4), StratOTACB, 950.6,
			"(5,1B),(1,1B),(9,1B),(5,7B),(3,1B)"},
		{"mac", core.Res(16, 4), StratOTACL, 6470.9,
			"(13,1L),(6,2L),(4,1L)"},
		// X7 Ti, R=(3,4) — S11..S15.
		{"x7", core.Res(3, 4), StratHeRAD, 2722.1,
			"(5,1B),(10,1B),(3,1B),(1,3L),(4,1L)"},
		{"x7", core.Res(3, 4), StratTwoCAT, 2722.1, ""},
		{"x7", core.Res(3, 4), StratFERTAC, 2867.0,
			"(5,1L),(3,1L),(7,1L),(4,3B),(4,1L)"},
		{"x7", core.Res(3, 4), StratOTACB, 6209.0,
			"(18,1B),(1,1B),(4,1B)"},
		{"x7", core.Res(3, 4), StratOTACL, 7490.3,
			"(15,1L),(4,2L),(4,1L)"},
		// X7 Ti, R=(6,8) — S16..S20.
		{"x7", core.Res(6, 8), StratHeRAD, 1341.9,
			"(5,1B),(1,1B),(6,1B),(4,2B),(3,7L),(4,1L)"},
		{"x7", core.Res(6, 8), StratTwoCAT, 1341.9, ""},
		{"x7", core.Res(6, 8), StratFERTAC, 1552.3,
			"(3,1L),(2,1L),(3,1B),(4,1L),(6,5L),(1,4B),(4,1B)"},
		{"x7", core.Res(6, 8), StratOTACB, 2867.0,
			"(8,1B),(7,1B),(4,3B),(4,1B)"},
		{"x7", core.Res(6, 8), StratOTACL, 3745.1,
			"(5,1L),(5,1L),(5,1L),(4,4L),(4,1L)"},
	}
	chains := map[string]*core.Chain{
		"mac": platform.MacStudio().Chain(),
		"x7":  platform.X7Ti().Chain(),
	}
	for i, tc := range rows {
		c := chains[tc.platform]
		sol := Run(tc.strategy, c, tc.r)
		if sol.IsEmpty() {
			t.Fatalf("S%d: no schedule", i+1)
		}
		if got := sol.Period(c); math.Abs(got-tc.period) > 0.15 {
			t.Errorf("S%d (%s %s %v): period %.1f, paper %.1f",
				i+1, tc.platform, tc.strategy, tc.r, got, tc.period)
		}
		if tc.decomp != "" && sol.String() != tc.decomp {
			t.Errorf("S%d (%s %s %v): decomposition\n  got  %s\n  want %s",
				i+1, tc.platform, tc.strategy, tc.r, sol.String(), tc.decomp)
		}
		if err := sol.Validate(c, tc.r); err != nil {
			t.Errorf("S%d: invalid: %v", i+1, err)
		}
	}
}

// TestTableIITieBreakVariants verifies that where our 2CATAC diverges
// from the published decomposition it does so only as an equal-period,
// equal-or-better-usage tie-break variant.
func TestTableIITieBreakVariants(t *testing.T) {
	x7 := platform.X7Ti().Chain()
	for _, tc := range []struct {
		r          core.Resources
		paperB     int
		paperL     int
		paperStage int
	}{
		{core.Res(3, 4), 3, 4, 5}, // S12
		{core.Res(6, 8), 6, 8, 6}, // S17 (paper prints b=6)
	} {
		sol := Run(StratTwoCAT, x7, tc.r)
		b, l := sol.CoresUsed()
		if b > tc.paperB || l > tc.paperL {
			t.Errorf("2CATAC on %v uses (%d,%d), paper (%d,%d)", tc.r, b, l, tc.paperB, tc.paperL)
		}
		if len(sol.Stages) != tc.paperStage {
			t.Errorf("2CATAC on %v has %d stages, paper %d", tc.r, len(sol.Stages), tc.paperStage)
		}
	}
}
