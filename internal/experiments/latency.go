package experiments

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/platform"
)

// Latency extension — the paper's Fig. 6 credits 2CATAC with "shorter
// pipelines" and flags pipeline length as a future optimization target:
// every extra stage adds a period's worth of end-to-end latency. This
// experiment quantifies it: for each Table II configuration and strategy
// it reports the pipeline depth and the simulated end-to-end frame
// latency next to the period.

// LatencyRow is one (configuration, strategy) result.
type LatencyRow struct {
	Platform     string
	R            core.Resources
	Strategy     string
	Stages       int
	PeriodMicros float64
	// LatencyMicros is the steady-state end-to-end frame latency from
	// the discrete-event simulation (QueueCap 2, like the runtime).
	LatencyMicros float64
	// LatencyPeriods is the latency expressed in periods (≈ occupied
	// pipeline depth including buffering).
	LatencyPeriods float64
}

// Latency runs the study over the paper's four platform configurations.
func Latency() ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, p := range platform.All() {
		c := p.Chain()
		for _, r := range p.Configs() {
			for _, name := range Strategies {
				sol := Run(name, c, r)
				if sol.IsEmpty() {
					return nil, fmt.Errorf("experiments: %s empty on %s %v", name, p.Name, r)
				}
				res, err := desim.Simulate(c, sol, desim.Config{Frames: 2000, QueueCap: 2})
				if err != nil {
					return nil, err
				}
				rows = append(rows, LatencyRow{
					Platform: p.Name, R: r, Strategy: name,
					Stages:       len(sol.Stages),
					PeriodMicros: res.Period, LatencyMicros: res.Latency,
					LatencyPeriods: res.Latency / res.Period,
				})
			}
		}
	}
	return rows, nil
}
