package experiments

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/obs"
	"ampsched/internal/platform"
	"ampsched/internal/strategy"
)

// Latency extension — the paper's Fig. 6 credits 2CATAC with "shorter
// pipelines" and flags pipeline length as a future optimization target:
// every extra stage adds a period's worth of end-to-end latency. This
// experiment quantifies it: for each Table II configuration and strategy
// it reports the pipeline depth and the simulated end-to-end frame
// latency next to the period.

// LatencyRow is one (configuration, strategy) result.
type LatencyRow struct {
	Platform     string
	R            core.Resources
	Strategy     string
	Stages       int
	PeriodMicros float64
	// LatencyMicros is the steady-state end-to-end frame latency from
	// the discrete-event simulation (QueueCap 2, like the runtime).
	LatencyMicros float64
	// LatencyPeriods is the latency expressed in periods (≈ occupied
	// pipeline depth including buffering).
	LatencyPeriods float64
}

// Latency runs the study over the paper's four platform configurations.
// Scheduling fans out through strategy.PlanBatch; the discrete-event
// simulations stay serial (they are the dominant cost but deterministic
// either way). A non-nil m collects the scheduling metrics; a non-nil
// cache reuses schedules across identical requests (the rows do not
// depend on either).
func Latency(m *obs.Registry, cache *strategy.Cache) ([]LatencyRow, error) {
	type job struct {
		plat *platform.Platform
		r    core.Resources
		name string
	}
	var jobs []job
	var reqs []strategy.Request
	for _, p := range platform.All() {
		c := p.Chain()
		for _, r := range p.Configs() {
			for _, name := range Strategies {
				jobs = append(jobs, job{plat: p, r: r, name: name})
				reqs = append(reqs, strategy.Request{
					Chain: c, Resources: r, Scheduler: mustScheduler(name),
					Options: strategy.Options{Metrics: m, Cache: cache}, Label: name,
				})
			}
		}
	}
	results := strategy.PlanBatch(reqs, 0)
	var rows []LatencyRow
	for i, j := range jobs {
		sol := results[i].Solution
		if sol.IsEmpty() {
			return nil, fmt.Errorf("experiments: %s empty on %s %v", j.name, j.plat.Name, j.r)
		}
		res, err := desim.Simulate(reqs[i].Chain, sol, desim.Config{Frames: 2000, QueueCap: 2})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LatencyRow{
			Platform: j.plat.Name, R: j.r, Strategy: j.name,
			Stages:       len(sol.Stages),
			PeriodMicros: res.Period, LatencyMicros: res.Latency,
			LatencyPeriods: res.Latency / res.Period,
		})
	}
	return rows, nil
}
