package experiments

import (
	"testing"

	"ampsched/internal/core"
)

func TestSensitivityTasksTrend(t *testing.T) {
	cfg := SensitivityConfig{Chains: 40, SR: 0.5, Seed: 11}
	pts := SensitivityTasks(cfg, core.Res(10, 10), []int{10, 40, 80})
	byKey := map[string]map[int]SensitivityPoint{}
	for _, p := range pts {
		if byKey[p.Strategy] == nil {
			byKey[p.Strategy] = map[int]SensitivityPoint{}
		}
		byKey[p.Strategy][p.X] = p
	}
	// 2CATAC is capped at 60 tasks: no point at 80.
	if _, ok := byKey[StratTwoCAT][80]; ok {
		t.Error("2CATAC ran at 80 tasks")
	}
	// The paper's claim: heuristics find fewer optima as tasks grow.
	f := byKey[StratFERTAC]
	if f[10].PctOptimal < f[40].PctOptimal || f[40].PctOptimal < f[80].PctOptimal {
		t.Errorf("FERTAC %%opt not degrading with tasks: %v %v %v",
			f[10].PctOptimal, f[40].PctOptimal, f[80].PctOptimal)
	}
	for _, p := range pts {
		if p.AvgSlowdown < 1-1e-9 {
			t.Errorf("%s at %d: slowdown %v below 1", p.Strategy, p.X, p.AvgSlowdown)
		}
	}
}

func TestSensitivityResourcesTrend(t *testing.T) {
	cfg := SensitivityConfig{Chains: 40, SR: 0.5, Seed: 12}
	pts := SensitivityResources(cfg, 20, []core.Resources{
		core.Res(4, 4), core.Res(30, 30),
	})
	var small, large SensitivityPoint
	for _, p := range pts {
		if p.Strategy != StratFERTAC {
			continue
		}
		if p.X == 8 {
			small = p
		} else {
			large = p
		}
	}
	// The paper's claim: heuristics improve with more resources.
	if large.PctOptimal < small.PctOptimal {
		t.Errorf("FERTAC %%opt did not improve with resources: %v (8 cores) vs %v (60 cores)",
			small.PctOptimal, large.PctOptimal)
	}
}
