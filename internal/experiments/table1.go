package experiments

import (
	"math"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/stats"
	"ampsched/internal/strategy"
)

// Table1Resources are the three resource pairs of the simulation study.
var Table1Resources = []core.Resources{
	core.Res(16, 4),
	core.Res(10, 10),
	core.Res(4, 16),
}

// Table1SRs are the evaluated stateless ratios.
var Table1SRs = []float64{0.2, 0.5, 0.8}

// Table1Config parameterizes the simulation campaign. The paper uses
// Chains=1000, Tasks=20.
type Table1Config struct {
	Chains int
	Tasks  int
	Seed   int64
	// Workers bounds the strategy.PlanBatch pool used to schedule the
	// campaign's (chain, strategy) requests; ≤ 0 uses GOMAXPROCS. The
	// results do not depend on it.
	Workers int
	// Metrics, when non-nil, collects the campaign's per-strategy and
	// PlanBatch series (strategy.Options.Metrics). The table cells do
	// not depend on it.
	Metrics *obs.Registry
	// Cache, when non-nil, reuses solutions across identical (chain,
	// resources, strategy) requests — e.g. when Fig. 1/2 or the Fig. 6
	// roll-up revisit Table I scenarios. Results are identical with or
	// without it (strategy.Options.Cache).
	Cache *strategy.Cache
}

// DefaultTable1Config returns the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{Chains: 1000, Tasks: 20, Seed: 20250704}
}

// Table1Cell aggregates one (R, SR, strategy) cell of Table I: the
// percentage of optimal periods, the average/median/maximum slowdown
// ratios versus HeRAD, and the average core usage by type.
type Table1Cell struct {
	R        core.Resources
	SR       float64
	Strategy string

	PctOptimal  float64 // % of chains where the period equals HeRAD's
	AvgSlowdown float64
	MedSlowdown float64
	MaxSlowdown float64
	AvgBigUsed  float64
	AvgLitUsed  float64

	// Slowdowns holds the raw per-chain slowdown ratios (used by Fig. 1).
	Slowdowns []float64
}

// Table1 runs the full simulation campaign and returns one cell per
// (resource pair, SR, strategy) in presentation order.
func Table1(cfg Table1Config) []Table1Cell {
	var out []Table1Cell
	for _, r := range Table1Resources {
		for _, sr := range Table1SRs {
			out = append(out, table1Scenario(cfg, r, sr)...)
		}
	}
	return out
}

// Table1Scenario runs a single (R, SR) scenario.
func Table1Scenario(cfg Table1Config, r core.Resources, sr float64) []Table1Cell {
	return table1Scenario(cfg, r, sr)
}

func table1Scenario(cfg Table1Config, r core.Resources, sr float64) []Table1Cell {
	// Chains are deterministic per (seed, SR, tasks) so that every
	// resource pair sees the same workloads for a given SR, like the
	// paper's pre-generated chains.
	seed := cfg.Seed + int64(sr*1000)
	chains := chaingen.GenerateMany(chaingen.Default(cfg.Tasks, sr), seed, cfg.Chains)

	results := strategy.PlanBatch(crossRequests(chains, r, Strategies,
		strategy.Options{Metrics: cfg.Metrics, Cache: cfg.Cache}), cfg.Workers)
	periods := map[string][]float64{}
	usedB := map[string][]float64{}
	usedL := map[string][]float64{}
	for _, res := range results {
		name := res.Request.Label
		periods[name] = append(periods[name], res.Period)
		b, l := res.Solution.CoresUsed()
		usedB[name] = append(usedB[name], float64(b))
		usedL[name] = append(usedL[name], float64(l))
	}

	opt := periods[StratHeRAD]
	var out []Table1Cell
	for _, name := range Strategies {
		cell := Table1Cell{R: r, SR: sr, Strategy: name}
		nOpt := 0
		for i, p := range periods[name] {
			slow := p / opt[i]
			if math.IsNaN(slow) {
				slow = 1
			}
			cell.Slowdowns = append(cell.Slowdowns, slow)
			if slow <= 1+1e-9 {
				nOpt++
			}
		}
		cell.PctOptimal = 100 * float64(nOpt) / float64(len(opt))
		cell.AvgSlowdown = stats.Mean(cell.Slowdowns)
		cell.MedSlowdown = stats.Median(cell.Slowdowns)
		cell.MaxSlowdown = stats.Max(cell.Slowdowns)
		cell.AvgBigUsed = stats.Mean(usedB[name])
		cell.AvgLitUsed = stats.Mean(usedL[name])
		out = append(out, cell)
	}
	return out
}
