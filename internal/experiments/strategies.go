// Package experiments implements the paper's evaluation campaign (§VI):
// the synthetic simulation study (Table I, Figs. 1–4) and the real-world
// DVB-S2 experiment (Tables II–III, Fig. 5), plus the qualitative summary
// (Fig. 6). Each experiment is a pure function from parameters to
// structured results; cmd/experiments renders them and bench_test.go
// exposes one benchmark per table/figure.
//
// Strategy dispatch goes through the internal/strategy registry, and the
// schedule-heavy campaigns fan their (chain, strategy) requests across
// strategy.PlanBatch's worker pool — every strategy is deterministic, so
// the tables and figures are byte-identical to a serial run.
package experiments

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/strategy"
)

// Strategy names, in the paper's presentation order. These are the
// canonical registry names; strategy.Parse also accepts the documented
// aliases (2catac, otac-b, …) case-insensitively.
const (
	StratHeRAD  = "HeRAD"
	StratTwoCAT = "2CATAC"
	StratFERTAC = "FERTAC"
	StratOTACB  = "OTAC (B)"
	StratOTACL  = "OTAC (L)"
)

// Strategies lists every evaluated scheduling strategy in order.
var Strategies = []string{StratHeRAD, StratTwoCAT, StratFERTAC, StratOTACB, StratOTACL}

// HeuristicStrategies lists the strategies compared against HeRAD.
var HeuristicStrategies = []string{StratTwoCAT, StratFERTAC, StratOTACB, StratOTACL}

// Run dispatches to the named scheduling strategy through the registry.
// It panics on unknown names: the experiment drivers only pass the Strat*
// constants, so a miss is a programming error.
func Run(name string, c *core.Chain, r core.Resources) core.Solution {
	return mustScheduler(name).Schedule(c, r, strategy.Options{})
}

func mustScheduler(name string) strategy.Scheduler {
	s, err := strategy.Parse(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return s
}

// crossRequests builds the (chain × strategy) request matrix used by the
// batched campaigns: requests are ordered chain-major, matching the
// serial loops they replace. Every request carries opts (the campaign's
// metrics sink rides along here).
func crossRequests(chains []*core.Chain, r core.Resources, names []string, opts strategy.Options) []strategy.Request {
	scheds := make([]strategy.Scheduler, len(names))
	for i, name := range names {
		scheds[i] = mustScheduler(name)
	}
	reqs := make([]strategy.Request, 0, len(chains)*len(names))
	for _, c := range chains {
		for i, s := range scheds {
			reqs = append(reqs, strategy.Request{
				Chain: c, Resources: r, Scheduler: s, Options: opts, Label: names[i],
			})
		}
	}
	return reqs
}
