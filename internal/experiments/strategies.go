// Package experiments implements the paper's evaluation campaign (§VI):
// the synthetic simulation study (Table I, Figs. 1–4) and the real-world
// DVB-S2 experiment (Tables II–III, Fig. 5), plus the qualitative summary
// (Fig. 6). Each experiment is a pure function from parameters to
// structured results; cmd/experiments renders them and bench_test.go
// exposes one benchmark per table/figure.
package experiments

import (
	"fmt"

	"ampsched/internal/core"
	"ampsched/internal/fertac"
	"ampsched/internal/herad"
	"ampsched/internal/otac"
	"ampsched/internal/twocatac"
)

// Strategy names, in the paper's presentation order.
const (
	StratHeRAD  = "HeRAD"
	StratTwoCAT = "2CATAC"
	StratFERTAC = "FERTAC"
	StratOTACB  = "OTAC (B)"
	StratOTACL  = "OTAC (L)"
)

// Strategies lists every evaluated scheduling strategy in order.
var Strategies = []string{StratHeRAD, StratTwoCAT, StratFERTAC, StratOTACB, StratOTACL}

// HeuristicStrategies lists the strategies compared against HeRAD.
var HeuristicStrategies = []string{StratTwoCAT, StratFERTAC, StratOTACB, StratOTACL}

// Run dispatches to the named scheduling strategy. OTAC variants use only
// the corresponding component of r.
func Run(name string, c *core.Chain, r core.Resources) core.Solution {
	switch name {
	case StratHeRAD:
		return herad.Schedule(c, r)
	case StratTwoCAT:
		return twocatac.Schedule(c, r)
	case StratFERTAC:
		return fertac.Schedule(c, r)
	case StratOTACB:
		return otac.Schedule(c, r.Big, core.Big)
	case StratOTACL:
		return otac.Schedule(c, r.Little, core.Little)
	default:
		panic(fmt.Sprintf("experiments: unknown strategy %q", name))
	}
}
