package experiments

import "testing"

func TestLatencyExtension(t *testing.T) {
	rows, err := Latency(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20", len(rows))
	}
	byKey := map[string]LatencyRow{}
	for _, r := range rows {
		byKey[r.Platform+r.R.String()+r.Strategy] = r
		if r.LatencyMicros < r.PeriodMicros {
			t.Errorf("%s/%s/%v: latency %v below one period %v",
				r.Platform, r.Strategy, r.R, r.LatencyMicros, r.PeriodMicros)
		}
		// Latency must at least cover the stage count (every frame
		// traverses each stage once).
		if r.LatencyPeriods < float64(r.Stages)-1 {
			t.Errorf("%s/%s/%v: latency %.1f periods below %d stages",
				r.Platform, r.Strategy, r.R, r.LatencyPeriods, r.Stages)
		}
	}
	// Fig. 6's claim: 2CATAC builds shorter pipelines than HeRAD on the
	// Mac half configuration (5 vs 7 stages, Table II S1/S2).
	h := byKey["Mac Studio(8B,2L)"+StratHeRAD]
	c := byKey["Mac Studio(8B,2L)"+StratTwoCAT]
	if c.Stages >= h.Stages {
		t.Errorf("2CATAC stages %d not below HeRAD %d", c.Stages, h.Stages)
	}
}
