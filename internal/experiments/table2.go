package experiments

import (
	"fmt"
	"math"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/obs"
	"ampsched/internal/platform"
	"ampsched/internal/strategy"
	"ampsched/internal/streampu"
)

// Table2Config parameterizes the real-world DVB-S2 experiment.
type Table2Config struct {
	// RunReal executes each schedule on the streampu runtime (wall-clock
	// time!); when false only the discrete-event prediction is produced.
	RunReal bool
	// TimeScale stretches modeled latencies for the runtime runs
	// (defaults to 10; see streampu.Options.TimeScale).
	TimeScale float64
	// MinFrames and TargetWallSeconds size each runtime run: the frame
	// count targets TargetWallSeconds of wall time, floored at MinFrames.
	MinFrames     int
	TargetWallSec float64
	// Platforms restricts the experiment (defaults to both).
	Platforms []*platform.Platform
	// Workers bounds the strategy.PlanBatch pool that computes the
	// schedules; ≤ 0 uses GOMAXPROCS. Simulation and runtime rows stay
	// serial (the runtime measures wall-clock time).
	Workers int
	// Metrics, when non-nil, collects the scheduling series and — for
	// RunReal rows — per-run streampu stage-occupancy gauges under
	// "<row id>.streampu.*". The table itself does not depend on it.
	Metrics *obs.Registry
	// Cache, when non-nil, reuses schedules across identical requests —
	// the Fig. 5/6 roll-ups recompute Table II (strategy.Options.Cache).
	// The rows do not depend on it.
	Cache *strategy.Cache
}

// DefaultTable2Config mirrors the paper's campaign at a laptop-friendly
// duration (the paper runs each schedule 10×1 minute on real silicon).
func DefaultTable2Config() Table2Config {
	return Table2Config{RunReal: true, TimeScale: 10, MinFrames: 40, TargetWallSec: 1.5}
}

// Table2Row is one line of Table II: a strategy's schedule on one
// platform configuration, its predicted (simulated) throughput, and the
// throughput achieved by the streampu runtime.
type Table2Row struct {
	ID       string // S1..S20, following the paper's numbering
	Platform string
	R        core.Resources
	Strategy string

	Solution      core.Solution
	Decomposition string
	Stages        int
	BUsed, LUsed  int

	PeriodMicros float64 // expected period (µs) from the schedule
	SimFPS       float64 // discrete-event simulated frames per second
	SimMbps      float64
	RealFPS      float64 // streampu-runtime measured FPS (0 when !RunReal)
	RealMbps     float64
	DiffMbps     float64 // SimMbps − RealMbps
	RatioPct     float64 // 100·Diff/RealMbps, the paper's "Ratio" column
}

// Table2 computes every row of Table II (and the data behind Fig. 5).
func Table2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 10
	}
	if cfg.MinFrames <= 0 {
		cfg.MinFrames = 40
	}
	if cfg.TargetWallSec <= 0 {
		cfg.TargetWallSec = 1.5
	}
	plats := cfg.Platforms
	if plats == nil {
		plats = platform.All()
	}
	type job struct {
		p  *platform.Platform
		c  *core.Chain
		r  core.Resources
		st string
		id string
	}
	var jobs []job
	var reqs []strategy.Request
	id := 0
	for _, p := range plats {
		c := p.Chain()
		for _, r := range p.Configs() {
			for _, name := range Strategies {
				id++
				jobs = append(jobs, job{p: p, c: c, r: r, st: name, id: fmt.Sprintf("S%d", id)})
				reqs = append(reqs, strategy.Request{
					Chain: c, Resources: r, Scheduler: mustScheduler(name),
					Options: strategy.Options{Metrics: cfg.Metrics, Cache: cfg.Cache}, Label: name,
				})
			}
		}
	}
	scheds := strategy.PlanBatch(reqs, cfg.Workers)
	var rows []Table2Row
	for i, j := range jobs {
		row, err := table2Row(cfg, j.p, j.c, j.r, j.st, j.id, scheds[i].Solution)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Row(cfg Table2Config, p *platform.Platform, c *core.Chain, r core.Resources, strat, id string, sol core.Solution) (Table2Row, error) {
	if sol.IsEmpty() {
		return Table2Row{}, fmt.Errorf("experiments: %s produced no schedule for %s %v", strat, p.Name, r)
	}
	b, l := sol.CoresUsed()
	row := Table2Row{
		ID: id, Platform: p.Name, R: r, Strategy: strat,
		Solution: sol, Decomposition: sol.String(),
		Stages: len(sol.Stages), BUsed: b, LUsed: l,
		PeriodMicros: sol.Period(c),
	}

	sim, err := desim.Simulate(c, sol, desim.Config{Frames: 3000, QueueCap: 2})
	if err != nil {
		return Table2Row{}, fmt.Errorf("experiments: desim %s/%s: %w", p.Name, strat, err)
	}
	row.SimFPS = sim.Throughput(p.Interframe)
	row.SimMbps = platform.MbPerSecond(row.SimFPS)

	if cfg.RunReal {
		frames := int(cfg.TargetWallSec * 1e6 / (row.PeriodMicros * cfg.TimeScale))
		if frames < cfg.MinFrames {
			frames = cfg.MinFrames
		}
		popt := streampu.Options{
			TimeScale: cfg.TimeScale,
			QueueCap:  2,
		}
		var tracer *streampu.Tracer
		if cfg.Metrics != nil {
			tracer = &streampu.Tracer{}
			popt.Tracer = tracer
		}
		pipe, err := streampu.New(streampu.TimedChain(c), sol, popt)
		if err != nil {
			return Table2Row{}, fmt.Errorf("experiments: pipeline %s/%s: %w", p.Name, strat, err)
		}
		st, err := pipe.Run(frames, nil)
		if err != nil {
			return Table2Row{}, fmt.Errorf("experiments: run %s/%s: %w", p.Name, strat, err)
		}
		tracer.RecordMetrics(cfg.Metrics.Sub(obs.Slug(id)))
		row.RealFPS = st.Throughput(p.Interframe)
		row.RealMbps = platform.MbPerSecond(row.RealFPS)
		row.DiffMbps = row.SimMbps - row.RealMbps
		if row.RealMbps > 0 {
			row.RatioPct = 100 * row.DiffMbps / row.RealMbps
		}
	}
	return row, nil
}

// Fig5Entry is one bar of Fig. 5: a strategy's achieved information
// throughput on one platform configuration.
type Fig5Entry struct {
	Platform string
	R        core.Resources
	Strategy string
	Mbps     float64 // measured when available, else simulated
	SimMbps  float64
}

// Fig5 reshapes Table II rows into the achieved-throughput series of
// Fig. 5.
func Fig5(rows []Table2Row) []Fig5Entry {
	out := make([]Fig5Entry, len(rows))
	for i, r := range rows {
		mbps := r.RealMbps
		if mbps == 0 {
			mbps = r.SimMbps
		}
		out[i] = Fig5Entry{Platform: r.Platform, R: r.R, Strategy: r.Strategy,
			Mbps: mbps, SimMbps: r.SimMbps}
	}
	return out
}

// Fig6Summary is the qualitative roll-up of Fig. 6 for one strategy.
type Fig6Summary struct {
	Strategy string
	// AvgSlowdown is the mean slowdown vs HeRAD across all Table I cells.
	AvgSlowdown float64
	// AvgExtraCores is the mean number of extra cores vs HeRAD.
	AvgExtraCores float64
	// TimeClass characterizes the execution-time growth.
	TimeClass string
	// RealVsBestPct is the mean achieved throughput as a percentage of
	// the best theoretical throughput (HeRAD's expected period), from the
	// DVB-S2 experiment.
	RealVsBestPct float64
	// Optimal reports whether the strategy is provably optimal.
	Optimal bool
}

// Fig6 derives the summary table from the other experiments' outputs.
func Fig6(t1 []Table1Cell, t2 []Table2Row) []Fig6Summary {
	classes := map[string]string{
		StratHeRAD:  "O(n²·b·l·(b+l)) — ms to s",
		StratTwoCAT: "O(2ⁿ·log(w(b+l))) — µs to s, ≤60 tasks",
		StratFERTAC: "O(n·log(w(b+l))+n²) — tens of µs",
		StratOTACB:  "O(n·log(w·b)+n²) — tens of µs",
		StratOTACL:  "O(n·log(w·l)+n²) — tens of µs",
	}
	// Best theoretical Mb/s per (platform, R) = HeRAD's simulated Mb/s.
	best := map[string]float64{}
	for _, r := range t2 {
		if r.Strategy == StratHeRAD {
			best[r.Platform+r.R.String()] = r.SimMbps
		}
	}
	heradUse := map[string][2]float64{}
	for _, c := range t1 {
		if c.Strategy == StratHeRAD {
			heradUse[c.R.String()+fmt.Sprint(c.SR)] = [2]float64{c.AvgBigUsed, c.AvgLitUsed}
		}
	}
	var out []Fig6Summary
	for _, name := range Strategies {
		s := Fig6Summary{Strategy: name, Optimal: name == StratHeRAD, TimeClass: classes[name]}
		var slows, extras, ratios []float64
		for _, c := range t1 {
			if c.Strategy != name {
				continue
			}
			slows = append(slows, c.AvgSlowdown)
			h := heradUse[c.R.String()+fmt.Sprint(c.SR)]
			extras = append(extras, (c.AvgBigUsed-h[0])+(c.AvgLitUsed-h[1]))
		}
		for _, r := range t2 {
			if r.Strategy != name || r.RealMbps == 0 {
				continue
			}
			if b := best[r.Platform+r.R.String()]; b > 0 {
				ratios = append(ratios, 100*r.RealMbps/b)
			}
		}
		s.AvgSlowdown = mean(slows)
		s.AvgExtraCores = mean(extras)
		s.RealVsBestPct = mean(ratios)
		out = append(out, s)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
