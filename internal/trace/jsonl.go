package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// JSONL export: one record per line, canonical encoding (fixed field
// order, insertion-ordered attributes, one shared string escaper), so
// that encode → decode → re-encode is byte-identical and deterministic
// workloads export byte-identical journals. The first line is a header
// record carrying the schema version; span identifiers are assigned in
// depth-first creation order at export time.
//
// Record kinds:
//
//	{"schema":1,"kind":"journal"}                                  header
//	{"kind":"begin","id":I,"parent":P,"name":N,"attrs":{...}}      span open
//	{"kind":"event","span":I,"name":N,"attrs":{...}}               event
//	{"kind":"end","id":I}                                          span close
//
// Non-finite floats have no JSON representation and are encoded as null
// (decoded back as NaN).

// Record is one decoded JSONL line. Re-encoding a decoded record stream
// with WriteRecords reproduces the original bytes.
type Record struct {
	Schema int    // header records only
	Kind   string // "journal", "begin", "event", "end"
	ID     int    // begin/end: span id
	Parent int    // begin: parent span id (0 is the root)
	Span   int    // event: owning span id
	Name   string // begin/event
	Attrs  []Attr // begin/event; insertion order preserved
}

// WriteJSONL writes the journal as canonical JSONL. A nil journal writes
// nothing and returns nil.
func (j *Journal) WriteJSONL(w io.Writer) error {
	if j == nil {
		return nil
	}
	return WriteRecords(w, j.Records())
}

// Records flattens the journal into its canonical record stream: header,
// then a depth-first walk of the span tree. Nil journal → nil.
func (j *Journal) Records() []Record {
	if j == nil {
		return nil
	}
	recs := []Record{{Schema: Schema, Kind: "journal"}}
	nextID := 0
	var walk func(s *Span, parent int)
	walk = func(s *Span, parent int) {
		nextID++
		id := nextID
		recs = append(recs, Record{Kind: "begin", ID: id, Parent: parent, Name: s.name, Attrs: s.attrs})
		for _, it := range s.items {
			if it.sp != nil {
				walk(it.sp, id)
			} else {
				recs = append(recs, Record{Kind: "event", Span: id, Name: it.ev.name, Attrs: it.ev.attrs})
			}
		}
		recs = append(recs, Record{Kind: "end", ID: id})
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	walk(j.root, 0)
	return recs
}

// WriteRecords writes a record stream as canonical JSONL.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, rec := range recs {
		buf = appendRecord(buf[:0], rec)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendRecord appends rec's canonical JSON encoding (no newline).
func appendRecord(b []byte, rec Record) []byte {
	b = append(b, '{')
	switch rec.Kind {
	case "journal":
		b = append(b, `"schema":`...)
		b = strconv.AppendInt(b, int64(rec.Schema), 10)
		b = append(b, `,"kind":"journal"`...)
	case "begin":
		b = append(b, `"kind":"begin","id":`...)
		b = strconv.AppendInt(b, int64(rec.ID), 10)
		b = append(b, `,"parent":`...)
		b = strconv.AppendInt(b, int64(rec.Parent), 10)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, rec.Name)
		b = appendAttrs(b, rec.Attrs)
	case "event":
		b = append(b, `"kind":"event","span":`...)
		b = strconv.AppendInt(b, int64(rec.Span), 10)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, rec.Name)
		b = appendAttrs(b, rec.Attrs)
	case "end":
		b = append(b, `"kind":"end","id":`...)
		b = strconv.AppendInt(b, int64(rec.ID), 10)
	default:
		b = append(b, `"kind":`...)
		b = appendJSONString(b, rec.Kind)
	}
	return append(b, '}')
}

// appendAttrs appends `,"attrs":{...}` unless attrs is empty.
func appendAttrs(b []byte, attrs []Attr) []byte {
	if len(attrs) == 0 {
		return b
	}
	b = append(b, `,"attrs":{`...)
	for i, a := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, a.key)
		b = append(b, ':')
		b = appendAttrValue(b, a)
	}
	return append(b, '}')
}

func appendAttrValue(b []byte, a Attr) []byte {
	switch a.kind {
	case kindString:
		return appendJSONString(b, a.str)
	case kindInt:
		return strconv.AppendInt(b, a.i, 10)
	case kindFloat:
		if math.IsNaN(a.f) || math.IsInf(a.f, 0) {
			return append(b, `null`...)
		}
		return appendFloat(b, a.f)
	case kindBool:
		return strconv.AppendBool(b, a.b)
	}
	return append(b, `null`...)
}

// appendFloat writes the canonical float form: shortest 'g'
// representation, with a trailing ".0"-free integer form kept distinct
// from Int attrs by the decoder re-typing rule (see parseAttrValue).
func appendFloat(b []byte, f float64) []byte {
	s := strconv.AppendFloat(b, f, 'g', -1, 64)
	return s
}

const hexDigits = "0123456789abcdef"

// appendJSONString is the shared canonical JSON string escaper used by
// the JSONL and Chrome exporters: quote and backslash are escaped, \n \r
// \t use their short forms, other control characters use \u00XX, and
// invalid UTF-8 is replaced by U+FFFD (matching encoding/json, so decode
// → re-encode is stable).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				b = append(b, '\\', '"')
			case c == '\\':
				b = append(b, '\\', '\\')
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c == '\t':
				b = append(b, '\\', 't')
			case c < 0x20:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				b = append(b, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, "�"...)
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

// ReadJSONL decodes a canonical JSONL journal stream into its records,
// preserving attribute order and value types so WriteRecords reproduces
// the input byte-for-byte. It validates the header's schema version.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := decodeLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if lineNo == 1 {
			if rec.Kind != "journal" {
				return nil, fmt.Errorf("trace: line 1: missing journal header")
			}
			if rec.Schema != Schema {
				return nil, fmt.Errorf("trace: unsupported schema %d (want %d)", rec.Schema, Schema)
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// decodeLine parses one record, walking the top-level object with a
// token decoder so attribute order survives the round trip.
func decodeLine(line []byte) (Record, error) {
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return rec, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return rec, fmt.Errorf("record is not an object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return rec, err
		}
		key, _ := keyTok.(string)
		switch key {
		case "schema":
			n, err := decodeInt(dec)
			if err != nil {
				return rec, err
			}
			rec.Schema = n
		case "kind":
			tok, err := dec.Token()
			if err != nil {
				return rec, err
			}
			rec.Kind, _ = tok.(string)
		case "id":
			n, err := decodeInt(dec)
			if err != nil {
				return rec, err
			}
			rec.ID = n
		case "parent":
			n, err := decodeInt(dec)
			if err != nil {
				return rec, err
			}
			rec.Parent = n
		case "span":
			n, err := decodeInt(dec)
			if err != nil {
				return rec, err
			}
			rec.Span = n
		case "name":
			tok, err := dec.Token()
			if err != nil {
				return rec, err
			}
			rec.Name, _ = tok.(string)
		case "attrs":
			attrs, err := decodeAttrs(dec)
			if err != nil {
				return rec, err
			}
			rec.Attrs = attrs
		default:
			return rec, fmt.Errorf("unknown field %q", key)
		}
	}
	return rec, nil
}

func decodeInt(dec *json.Decoder) (int, error) {
	tok, err := dec.Token()
	if err != nil {
		return 0, err
	}
	num, ok := tok.(json.Number)
	if !ok {
		return 0, fmt.Errorf("expected number, got %v", tok)
	}
	n, err := strconv.Atoi(num.String())
	if err != nil {
		return 0, err
	}
	return n, nil
}

func decodeAttrs(dec *json.Decoder) ([]Attr, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("attrs is not an object")
	}
	var attrs []Attr
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, _ := keyTok.(string)
		valTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		a, err := parseAttrValue(key, valTok)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, err
	}
	return attrs, nil
}

// parseAttrValue re-types a decoded JSON value into an Attr. Numbers
// whose literal contains '.', 'e' or 'E' are floats, the rest are ints —
// the inverse of the canonical encoder, so the round trip is exact.
func parseAttrValue(key string, tok json.Token) (Attr, error) {
	switch v := tok.(type) {
	case string:
		return String(key, v), nil
	case bool:
		return Bool(key, v), nil
	case nil:
		return Float64(key, math.NaN()), nil
	case json.Number:
		lit := v.String()
		if strings.ContainsAny(lit, ".eE") {
			f, err := strconv.ParseFloat(lit, 64)
			if err != nil {
				return Attr{}, err
			}
			return Float64(key, f), nil
		}
		i, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return Attr{}, err
		}
		return Int(key, i), nil
	}
	return Attr{}, fmt.Errorf("attr %q has unsupported value %v", key, tok)
}
