package trace

import (
	"io"
	"testing"
)

// BenchmarkJournalDisabled pins the nil-journal (disabled) instrumentation
// path at 0 allocs/op — the acceptance bar shared with internal/obs: code
// paths are instrumented unconditionally and the disabled cost must be a
// handful of nil checks.
func BenchmarkJournalDisabled(b *testing.B) {
	var j *Journal
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := j.Begin("strategy")
		sc := NewScope(sp)
		p, done := sc.Enter("probe")
		p.F64("target", 412.5)
		sc.Event("compute_stage").Int("first_task", 0).Int("end", 2).Bool("ok", true)
		done()
	}
	if n := testing.AllocsPerRun(100, func() {
		sc := NewScope(j.Begin("s"))
		sc.Event("e").Int("k", 1)
	}); n != 0 {
		b.Fatalf("disabled journal path allocates %v/op", n)
	}
}

// BenchmarkJournalEnabled measures the recording cost with a live journal.
func BenchmarkJournalEnabled(b *testing.B) {
	j := New()
	sc := NewScope(j.Begin("strategy"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, done := sc.Enter("probe")
		p.F64("target", 412.5)
		sc.Event("compute_stage").Int("first_task", 0).Int("end", 2).Bool("ok", true)
		done()
	}
}

// BenchmarkJSONLExport measures the canonical JSONL encoder on a journal
// of ~3k events.
func BenchmarkJSONLExport(b *testing.B) {
	j := New()
	for s := 0; s < 5; s++ {
		sp := j.Begin("strategy").Str("name", "FERTAC")
		for p := 0; p < 20; p++ {
			ps := sp.Begin("probe").F64("target", float64(p)+0.5)
			for e := 0; e < 30; e++ {
				ps.Event("max_packing").Int("first_task", e).F64("target", 1.25).Int("end", e+1)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
