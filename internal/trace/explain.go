package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Explain rendering: a deterministic, human-readable narrative of the
// journal. Spans indent their bodies; events print as "name key=value
// ...". High-volume event streams (the per-call max_packing /
// compute_stage / dp_cell records) are capped per span: after
// explainEventCap occurrences of one event name within one span the
// remaining ones are elided and summarized at the end of the span, which
// keeps the narrative readable while staying byte-deterministic.

// explainEventCap is the number of same-named events shown per span
// before the remainder is collapsed into a "(+N more)" summary line.
const explainEventCap = 8

// WriteExplain renders the journal as an indented narrative. A nil
// journal writes nothing.
func (j *Journal) WriteExplain(w io.Writer) error {
	if j == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	j.mu.Lock()
	writeExplainSpan(bw, j.root, 0)
	j.mu.Unlock()
	return bw.Flush()
}

func writeExplainSpan(w *bufio.Writer, s *Span, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%s%s\n", indent, s.name, formatAttrs(s.attrs))
	body := indent + "  "
	shown := map[string]int{}
	elided := map[string]int{}
	for _, it := range s.items {
		if it.sp != nil {
			writeExplainSpan(w, it.sp, depth+1)
			continue
		}
		if shown[it.ev.name] >= explainEventCap {
			elided[it.ev.name]++
			continue
		}
		shown[it.ev.name]++
		fmt.Fprintf(w, "%s%s%s\n", body, it.ev.name, formatAttrs(it.ev.attrs))
	}
	if len(elided) > 0 {
		names := make([]string, 0, len(elided))
		for name := range elided {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s ×%d", name, elided[name])
		}
		fmt.Fprintf(w, "%s(+ %s elided)\n", body, strings.Join(parts, ", "))
	}
}

// formatAttrs renders attributes as " k=v k=v"; strings containing
// spaces, quotes or control characters are quoted.
func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.key)
		b.WriteByte('=')
		switch a.kind {
		case kindString:
			if strings.ContainsAny(a.str, " \t\n\r\"=") || a.str == "" {
				b.WriteString(strconv.Quote(a.str))
			} else {
				b.WriteString(a.str)
			}
		case kindInt:
			b.WriteString(strconv.FormatInt(a.i, 10))
		case kindFloat:
			if math.IsNaN(a.f) || math.IsInf(a.f, 0) {
				fmt.Fprintf(&b, "%v", a.f)
			} else {
				b.WriteString(strconv.FormatFloat(a.f, 'g', -1, 64))
			}
		case kindBool:
			b.WriteString(strconv.FormatBool(a.b))
		}
	}
	return b.String()
}
