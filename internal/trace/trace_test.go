package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// sample builds a small journal exercising every attr type and nesting.
func sample() *Journal {
	j := New()
	j.Root().Str("tool", "test").Int("resources", 4)
	st := j.Begin("strategy").Str("name", "HeRAD")
	p := st.Begin("probe").F64("target", 412.5)
	p.Event("compute_stage").Int("first_task", 0).Int("end", 2).Bool("replicable", true)
	p.Event("max_packing").Int("first_task", 0).Int("cores", 1).F64("target", 412.5).Int("end", 1)
	st.Event("solution").F64("period", 400).Int("stages", 3)
	st.Event("stage").Int("index", 0).Str("type", "B").Int("cores", 2)
	return j
}

func TestJSONLRoundTrip(t *testing.T) {
	j := sample()
	var first bytes.Buffer
	if err := j.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteRecords(&second, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encode differs:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}
	// Every line must also be valid JSON for generic tooling.
	for _, line := range strings.Split(strings.TrimSpace(first.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
	}
}

func TestJSONLRoundTripHostileStrings(t *testing.T) {
	j := New()
	sp := j.Begin("strategy").Str("name", "2CATAC (memo)")
	sp.Event("stage").Str("task", "日本語 \"quoted\" back\\slash").Str("ctrl", "a\x01b\nc\td\r")
	sp.Event("weird").Str("eq", "a=b").Str("empty", "")
	var first bytes.Buffer
	if err := j.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteRecords(&second, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("hostile-string re-encode differs:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestReadJSONLRejectsBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"begin","id":1,"parent":0,"name":"x"}`)); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"schema":99,"kind":"journal"}`)); err == nil {
		t.Error("future schema accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestChromeExportValidJSONWithHostileNames(t *testing.T) {
	j := New()
	sp := j.Begin("stage \x02\"na\\me\"\n日本")
	sp.Event("ev\x1f").Str("k\x03", "v\x04")
	var buf bytes.Buffer
	if err := j.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	// run + stage span + event.
	if len(out) != 3 {
		t.Fatalf("%d chrome events, want 3", len(out))
	}
	for _, e := range out {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("chrome event missing %q: %v", key, e)
			}
		}
	}
}

func TestWriteChromeEventsSharedWriter(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeEvents(&buf, []ChromeEvent{
		{Name: "frame 0", Ph: "X", Ts: 1.5, Dur: 2, Pid: 3, Tid: "stage0/B0",
			Args: []Attr{Int("frame", 0)}},
		{Name: "frame 1", Ph: "X", Ts: 3.5, Dur: 2, Pid: 3, Tid: "stage0/B1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 2 || out[0]["ts"] != 1.5 || out[0]["args"].(map[string]any)["frame"] != 0.0 {
		t.Fatalf("unexpected decode: %v", out)
	}
}

func TestNilSafety(t *testing.T) {
	var j *Journal
	if j.Root() != nil || j.Begin("x") != nil {
		t.Error("nil journal handed out a span")
	}
	var sp *Span
	sp = sp.Str("a", "b").Int("c", 1).F64("d", 2).Bool("e", true)
	if sp != nil || sp.Begin("x") != nil || sp.Event("y") != nil || sp.Name() != "" || sp.Attrs() != nil {
		t.Error("nil span not inert")
	}
	var ev *Event
	if ev.Str("a", "b").Int("c", 1).F64("d", 2).Bool("e", true) != nil || ev.Name() != "" {
		t.Error("nil event not inert")
	}
	sc := NewScope(nil)
	if sc.Enabled() || sc.Span() != nil || sc.Event("x") != nil {
		t.Error("nil scope not inert")
	}
	ssp, done := sc.Enter("probe")
	if ssp != nil {
		t.Error("nil scope Enter returned a span")
	}
	done()
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil journal JSONL: err=%v len=%d", err, buf.Len())
	}
	if err := j.WriteExplain(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil journal explain: err=%v len=%d", err, buf.Len())
	}
	if err := j.WriteChromeTrace(&buf); err != nil || !strings.Contains(buf.String(), "[") {
		t.Errorf("nil journal chrome: err=%v out=%q", err, buf.String())
	}
}

func TestDisabledPathAllocationFree(t *testing.T) {
	var j *Journal
	if n := testing.AllocsPerRun(200, func() {
		sp := j.Begin("strategy")
		sc := NewScope(sp)
		p, done := sc.Enter("probe")
		p.F64("target", 1.5)
		sc.Event("compute_stage").Int("first_task", 0).Bool("ok", true)
		done()
	}); n != 0 {
		t.Fatalf("disabled journal path allocates %v/op", n)
	}
}

func TestScopeEnterGroupsEvents(t *testing.T) {
	j := New()
	sc := NewScope(j.Begin("strategy"))
	if !sc.Enabled() {
		t.Fatal("scope with span disabled")
	}
	p, done := sc.Enter("probe")
	p.F64("target", 2)
	sc.Event("inner")
	done()
	sc.Event("outer")
	recs := j.Records()
	// header, run, strategy, probe(begin, event, end), outer event, ends.
	var names []string
	for _, r := range recs {
		if r.Kind == "begin" || r.Kind == "event" {
			names = append(names, r.Kind+":"+r.Name)
		}
	}
	want := []string{"begin:run", "begin:strategy", "begin:probe", "event:inner", "event:outer"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("record order %v, want %v", names, want)
	}
}

// TestConcurrentSubtreeDeterminism pins the PlanBatch contract: spans
// created serially, each appended from its own goroutine, export
// byte-identically regardless of interleaving.
func TestConcurrentSubtreeDeterminism(t *testing.T) {
	build := func() []byte {
		j := New()
		spans := make([]*Span, 8)
		for i := range spans {
			spans[i] = j.Begin("request").Int("index", i)
		}
		var wg sync.WaitGroup
		for i, sp := range spans {
			wg.Add(1)
			go func(i int, sp *Span) {
				defer wg.Done()
				for k := 0; k < 50; k++ {
					sp.Event("decision").Int("k", k)
				}
			}(i, sp)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := j.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := build()
	for i := 0; i < 4; i++ {
		if !bytes.Equal(first, build()) {
			t.Fatal("concurrent subtree export is not deterministic")
		}
	}
}

func TestExplainCapsNoisyEvents(t *testing.T) {
	j := New()
	sp := j.Begin("strategy").Str("name", "FERTAC")
	for i := 0; i < explainEventCap+5; i++ {
		sp.Event("max_packing").Int("i", i)
	}
	sp.Event("solution").F64("period", 10)
	var buf bytes.Buffer
	if err := j.WriteExplain(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "max_packing ×5"); got != 1 {
		t.Errorf("elision summary missing:\n%s", out)
	}
	if got := strings.Count(out, "max_packing i="); got != explainEventCap {
		t.Errorf("%d max_packing lines, want %d:\n%s", got, explainEventCap, out)
	}
	if !strings.Contains(out, "solution period=10") {
		t.Errorf("solution line missing:\n%s", out)
	}
}

func TestEventCount(t *testing.T) {
	j := sample()
	if n := j.EventCount("compute_stage"); n != 1 {
		t.Errorf("compute_stage count = %d, want 1", n)
	}
	if n := j.EventCount("max_packing"); n != 1 {
		t.Errorf("max_packing count = %d, want 1", n)
	}
	if n := j.EventCount("absent"); n != 0 {
		t.Errorf("absent count = %d, want 0", n)
	}
	// Nested repeats are all counted.
	deep := j.Begin("outer").Begin("inner")
	deep.Event("max_packing")
	deep.Event("max_packing")
	if n := j.EventCount("max_packing"); n != 3 {
		t.Errorf("after nested events count = %d, want 3", n)
	}
	var nilJ *Journal
	if n := nilJ.EventCount("x"); n != 0 {
		t.Errorf("nil journal count = %d", n)
	}
}
