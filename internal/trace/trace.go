// Package trace is the scheduling stack's decision journal: a structured
// event log with hierarchical spans (run → strategy → probe/DP-pass →
// decision events) that turns a scheduler run into an inspectable,
// replayable artifact. Where internal/obs answers "how much" (counters,
// timers), trace answers "why": which period targets the binary search
// probed, which stage intervals the greedy packers committed, which DP
// cells HeRAD recomputed and what each cell chose.
//
// The package follows the design discipline of internal/obs:
//
//   - Nil-safe handles. Every method on Journal, Span, Scope and Event is
//     a no-op on a nil receiver. Code is instrumented unconditionally;
//     whether anything is recorded is decided solely by whether a journal
//     was supplied.
//
//   - Allocation-free when disabled. The nil path allocates nothing: a
//     nil Journal hands out nil Spans, nil Spans hand out nil Events, and
//     every attribute setter is a single nil check. Hot loops additionally
//     gate emission on Scope.Enabled so the disabled cost is one branch.
//
//   - Deterministic output. Events carry no wall-clock data, spans are
//     exported in creation order and events in append order, so two runs
//     of a deterministic workload export byte-identical journals — the
//     property the -explain golden tests and the JSONL determinism tests
//     pin. Concurrent producers (strategy.PlanBatch workers) stay
//     deterministic as long as each goroutine appends to its own span
//     subtree and the subtree roots are created serially.
//
// JSONL export (jsonl.go) uses a versioned schema; WriteChromeTrace
// (chrome.go) renders the same tree on a virtual timeline for
// chrome://tracing, sharing one canonical trace-event writer with
// internal/streampu; WriteExplain (explain.go) renders it as a
// human-readable narrative.
package trace

import "sync"

// Schema is the journal's on-disk schema version, bumped on every
// incompatible change to the JSONL record shapes.
const Schema = 1

// attrKind discriminates the value types an Attr can carry.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one key/value attribute of a span or event. Attribute order is
// preserved (insertion order) so exports stay deterministic; build them
// with String/Int/Float64/Bool or the fluent Span/Event setters.
type Attr struct {
	key  string
	kind attrKind
	str  string
	i    int64
	f    float64
	b    bool
}

// String returns a string attribute.
func String(key, v string) Attr { return Attr{key: key, kind: kindString, str: v} }

// Int returns an integer attribute.
func Int(key string, v int64) Attr { return Attr{key: key, kind: kindInt, i: v} }

// Float64 returns a float attribute.
func Float64(key string, v float64) Attr { return Attr{key: key, kind: kindFloat, f: v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{key: key, kind: kindBool, b: v} }

// Key returns the attribute key.
func (a Attr) Key() string { return a.key }

// Journal is the root of one decision trace. The zero value is not
// usable; create journals with New. A nil *Journal is the disabled sink:
// it hands out nil spans and exports nothing.
type Journal struct {
	mu   sync.Mutex
	root *Span

	// Span/event/attribute arenas. Traced runs emit one Event per DP cell
	// with a handful of attributes each, so allocating every Event and
	// every attrs growth step individually dominated the traced profile
	// (~20k allocs/op on registry/schedule_traced). Spans and events are
	// instead carved out of fixed-size chunks, and each carries a
	// zero-length attribute window pre-reserved inside attrChunk, so the
	// common small-attribute case appends without ever touching the
	// allocator. Chunks are never resliced beyond their capacity once
	// handed out, so carved pointers stay valid when the journal swaps in
	// a fresh chunk. The canonical export is unaffected: arenas change
	// where records live, not what they say.
	spanChunk  []Span
	eventChunk []Event
	attrChunk  []Attr
}

const (
	spanChunkSize  = 64
	eventChunkSize = 256
	// attrPrealloc is each span's/event's pre-reserved attribute window.
	// The widest built-in emitter (herad's dp_cell) sets 7 attributes;
	// overflowing the window falls back to a plain heap append.
	attrPrealloc  = 8
	attrChunkSize = eventChunkSize * attrPrealloc
)

// attrWindow reserves an attrPrealloc-capacity window inside the attr
// arena. The three-index slice pins the window's capacity to its own
// region, so unlocked attribute appends by different goroutines can never
// spill into a neighbor's window. Callers hold j.mu.
func (j *Journal) attrWindow() []Attr {
	if cap(j.attrChunk)-len(j.attrChunk) < attrPrealloc {
		j.attrChunk = make([]Attr, 0, attrChunkSize)
	}
	off := len(j.attrChunk)
	j.attrChunk = j.attrChunk[:off+attrPrealloc]
	return j.attrChunk[off : off : off+attrPrealloc]
}

// newSpan carves a span (with attr window) from the arena. Callers hold
// j.mu (except New, which has exclusive access by construction).
func (j *Journal) newSpan(name string) *Span {
	if len(j.spanChunk) == cap(j.spanChunk) {
		j.spanChunk = make([]Span, 0, spanChunkSize)
	}
	j.spanChunk = append(j.spanChunk, Span{j: j, name: name, attrs: j.attrWindow()})
	return &j.spanChunk[len(j.spanChunk)-1]
}

// newEvent carves an event (with attr window) from the arena. Callers
// hold j.mu.
func (j *Journal) newEvent(name string) *Event {
	if len(j.eventChunk) == cap(j.eventChunk) {
		j.eventChunk = make([]Event, 0, eventChunkSize)
	}
	j.eventChunk = append(j.eventChunk, Event{name: name, attrs: j.attrWindow()})
	return &j.eventChunk[len(j.eventChunk)-1]
}

// New returns an empty journal whose root span is named "run".
func New() *Journal {
	j := &Journal{}
	j.root = j.newSpan("run")
	return j
}

// Root returns the journal's root span (nil on a nil journal).
func (j *Journal) Root() *Span {
	if j == nil {
		return nil
	}
	return j.root
}

// Begin opens a child span of the root. Nil journal → nil span.
func (j *Journal) Begin(name string) *Span {
	return j.Root().Begin(name)
}

// EventCount returns the number of events named name anywhere in the
// journal — the cheap way for tests and CLIs to ask "did drift_detected
// fire, and how often?" without exporting the whole journal. 0 on a nil
// journal.
func (j *Journal) EventCount(name string) int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return countEvents(j.root, name)
}

func countEvents(s *Span, name string) int {
	n := 0
	for _, it := range s.items {
		switch {
		case it.ev != nil && it.ev.name == name:
			n++
		case it.sp != nil:
			n += countEvents(it.sp, name)
		}
	}
	return n
}

// item is one entry of a span's ordered body: either an event or a child
// span, in append order.
type item struct {
	ev *Event
	sp *Span
}

// Span is one node of the journal tree. Spans are created with Begin and
// never explicitly closed: their extent is defined by the tree structure.
// A span's items may be appended concurrently with other spans' (the
// journal serializes appends), but a single span must only be appended to
// by one goroutine at a time for the export order to be deterministic.
type Span struct {
	j     *Journal
	name  string
	attrs []Attr
	items []item
}

// Name returns the span name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attrs returns the span's attributes (nil on a nil span).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Begin opens a child span. Nil receiver → nil span (no allocation).
func (s *Span) Begin(name string) *Span {
	if s == nil {
		return nil
	}
	s.j.mu.Lock()
	c := s.j.newSpan(name)
	s.items = append(s.items, item{sp: c})
	s.j.mu.Unlock()
	return c
}

// Event appends an event to the span and returns it for attribute
// chaining. Nil receiver → nil event (no allocation).
func (s *Span) Event(name string) *Event {
	if s == nil {
		return nil
	}
	s.j.mu.Lock()
	e := s.j.newEvent(name)
	s.items = append(s.items, item{ev: e})
	s.j.mu.Unlock()
	return e
}

// Str sets a string attribute on the span. No-op on nil.
func (s *Span) Str(key, v string) *Span {
	if s != nil {
		s.attrs = append(s.attrs, String(key, v))
	}
	return s
}

// Int sets an integer attribute on the span. No-op on nil.
func (s *Span) Int(key string, v int) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Int(key, int64(v)))
	}
	return s
}

// F64 sets a float attribute on the span. No-op on nil.
func (s *Span) F64(key string, v float64) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Float64(key, v))
	}
	return s
}

// Bool sets a boolean attribute on the span. No-op on nil.
func (s *Span) Bool(key string, v bool) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Bool(key, v))
	}
	return s
}

// Event is one decision record inside a span. Attribute setters mutate
// the already-appended event, so emission is a single append followed by
// in-place writes — no intermediate builder.
type Event struct {
	name  string
	attrs []Attr
}

// Name returns the event name ("" on a nil event).
func (e *Event) Name() string {
	if e == nil {
		return ""
	}
	return e.name
}

// Attrs returns the event's attributes (nil on a nil event).
func (e *Event) Attrs() []Attr {
	if e == nil {
		return nil
	}
	return e.attrs
}

// Str sets a string attribute. No-op on nil.
func (e *Event) Str(key, v string) *Event {
	if e != nil {
		e.attrs = append(e.attrs, String(key, v))
	}
	return e
}

// Int sets an integer attribute. No-op on nil.
func (e *Event) Int(key string, v int) *Event {
	if e != nil {
		e.attrs = append(e.attrs, Int(key, int64(v)))
	}
	return e
}

// F64 sets a float attribute. No-op on nil.
func (e *Event) F64(key string, v float64) *Event {
	if e != nil {
		e.attrs = append(e.attrs, Float64(key, v))
	}
	return e
}

// Bool sets a boolean attribute. No-op on nil.
func (e *Event) Bool(key string, v bool) *Event {
	if e != nil {
		e.attrs = append(e.attrs, Bool(key, v))
	}
	return e
}

// Scope is a mutable current-span holder threaded through instrumented
// call trees whose function signatures cannot carry a span (the
// sched.ComputeSolutionFunc plug-ins capture their Metrics once, but the
// binary search wants each probe's decisions grouped under a probe span).
// The owner Enters/exits spans; emit sites write to the current span via
// Event. A Scope must only be used from one goroutine at a time — the
// per-schedule contract the strategy layer already guarantees.
type Scope struct {
	cur *Span
}

// NewScope returns a scope rooted at sp, or nil when sp is nil — so the
// disabled path stays allocation-free.
func NewScope(sp *Span) *Scope {
	if sp == nil {
		return nil
	}
	return &Scope{cur: sp}
}

// Enabled reports whether the scope records anything; hot loops gate
// their event construction on it.
func (sc *Scope) Enabled() bool { return sc != nil }

// Span returns the current span (nil on a nil scope).
func (sc *Scope) Span() *Span {
	if sc == nil {
		return nil
	}
	return sc.cur
}

// Event appends an event to the current span. Nil scope → nil event.
func (sc *Scope) Event(name string) *Event {
	return sc.Span().Event(name)
}

var noopExit = func() {}

// Enter opens a child span of the current span, makes it current, and
// returns the span plus the function restoring the previous current span.
// On a nil scope it returns (nil, shared no-op).
func (sc *Scope) Enter(name string) (*Span, func()) {
	if sc == nil {
		return nil, noopExit
	}
	parent := sc.cur
	sc.cur = parent.Begin(name)
	return sc.cur, func() { sc.cur = parent }
}
