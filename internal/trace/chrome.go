package trace

import (
	"bufio"
	"io"
	"strconv"
)

// The one Chrome trace-event writer of the repository: both the journal's
// decision-tree view (below) and internal/streampu's execution timeline
// (Tracer.WriteChromeTrace) serialize through WriteChromeEvents, so the
// JSON escaping and number formatting live in exactly one place. Load the
// output at chrome://tracing or in Perfetto.

// ChromeEvent is one trace-event record ("X" complete events by
// convention). Args order is preserved in the output.
type ChromeEvent struct {
	Name string
	Ph   string
	Ts   float64 // µs
	Dur  float64 // µs
	Pid  int
	Tid  string
	Args []Attr
}

// WriteChromeEvents writes events as a Chrome trace-event JSON array,
// one event per line, using the package's canonical string escaper and
// float formatting (deterministic for deterministic inputs).
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	var buf []byte
	for i, e := range events {
		buf = buf[:0]
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, e.Name)
		buf = append(buf, `,"ph":`...)
		buf = appendJSONString(buf, e.Ph)
		buf = append(buf, `,"ts":`...)
		buf = appendFloat(buf, e.Ts)
		buf = append(buf, `,"dur":`...)
		buf = appendFloat(buf, e.Dur)
		buf = append(buf, `,"pid":`...)
		buf = strconv.AppendInt(buf, int64(e.Pid), 10)
		buf = append(buf, `,"tid":`...)
		buf = appendJSONString(buf, e.Tid)
		if len(e.Args) > 0 {
			buf = append(buf, `,"args":{`...)
			for j, a := range e.Args {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = appendJSONString(buf, a.key)
				buf = append(buf, ':')
				buf = appendAttrValue(buf, a)
			}
			buf = append(buf, '}')
		}
		buf = append(buf, '}')
		if i < len(events)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace renders the journal on a virtual timeline: every span
// is a complete event covering its subtree, every journal event an
// instant inside it, with one logical tick per item. Decision journals
// carry no wall-clock data (that is what keeps them deterministic), so
// the time axis shows decision order, not duration. Tracks (tid) group
// the tree by top-level span. A nil journal writes an empty array.
func (j *Journal) WriteChromeTrace(w io.Writer) error {
	var events []ChromeEvent
	if j != nil {
		j.mu.Lock()
		tick := 0
		var walk func(s *Span, tid string, depth int)
		walk = func(s *Span, tid string, depth int) {
			if depth == 1 {
				tid = s.name
			}
			start := tick
			tick++
			idx := len(events)
			events = append(events, ChromeEvent{
				Name: s.name, Ph: "X", Pid: 0, Tid: tid,
				Ts: float64(start), Args: s.attrs,
			})
			for _, it := range s.items {
				if it.sp != nil {
					walk(it.sp, tid, depth+1)
					continue
				}
				events = append(events, ChromeEvent{
					Name: it.ev.name, Ph: "X", Pid: 0, Tid: tid,
					Ts: float64(tick), Dur: 1, Args: it.ev.attrs,
				})
				tick++
			}
			tick++
			events[idx].Dur = float64(tick - start)
		}
		walk(j.root, j.root.name, 0)
		j.mu.Unlock()
	}
	return WriteChromeEvents(w, events)
}
