// Package core defines the task-chain scheduling model of the paper
// "Scheduling Strategies for Partially-Replicable Task Chains on Two Types
// of Resources" (Orhan et al., IPPS 2025), generalized to k core types.
//
// A workflow is a linear chain of n tasks τ_0 … τ_{n-1} (0-based here; the
// paper is 1-based). Each task is either replicable (stateless) or
// sequential (stateful), and has one computation weight (latency) per core
// type. The computing system has k types of unrelated resources with a
// platform-defined count of cores per type; the paper's instance is k=2
// (b big cores and l little cores), and that remains the model's default
// reading — type 0 is "B", type 1 is "L". A schedule partitions the chain
// into contiguous intervals (pipeline stages); each stage receives r cores
// of a single type v. The weight of a stage (Eq. 1 of the paper) is the sum
// of its tasks' weights on v, divided by r when every task in the stage is
// replicable. The period of a schedule (Eq. 2) is the maximum stage weight,
// and a schedule is valid (Eq. 3) when it respects the per-type core
// counts.
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CoreType indexes one resource type of the platform. The platform's type
// table (how many types exist, their counts and display names) lives in
// Resources; a CoreType is meaningful relative to the Resources it is used
// with.
type CoreType uint8

const (
	// Big is type 0, the paper's high-performance (p-core) resource type.
	Big CoreType = iota
	// Little is type 1, the paper's high-efficiency (e-core) resource type.
	Little
	// MaxCoreTypes bounds the number of resource types a platform may
	// declare. Eight is far beyond any platform in the literature and keeps
	// Resources a small comparable value (usable as a map key).
	MaxCoreTypes = 8
)

// String returns the conventional one-letter name used by the paper for
// the two canonical types ("B" for type 0, "L" for type 1) and "T2",
// "T3", … for the additional types of k>2 platforms. Platforms can
// override these defaults per type via the Resources type table (see
// Resources.TypeName).
func (t CoreType) String() string {
	switch t {
	case Big:
		return "B"
	case Little:
		return "L"
	default:
		return fmt.Sprintf("T%d", uint8(t))
	}
}

// Task is one element of a task chain.
type Task struct {
	// Name identifies the task in reports and traces.
	Name string
	// Weight holds the computation weight (latency) of the task on each
	// core type, indexed by CoreType. Every task of a chain must declare
	// the same number of weights (the chain's type count).
	Weight []float64
	// Replicable reports whether the task is stateless and may therefore
	// be replicated across several cores of the same stage.
	Replicable bool
}

// W returns the task's weight on core type v.
func (t Task) W(v CoreType) float64 { return t.Weight[v] }

// Weights builds a per-type weight vector; it exists so call sites read
// Weights(wb, wl) instead of a bare slice literal.
func Weights(w ...float64) []float64 { return w }

// Resources describes the platform's type table: the number of core types
// and, per type, the number of available cores and an optional one-letter
// display name. The zero value declares no types; build values with Res,
// ParseResources or Unlimited. Resources is a comparable value type —
// callers pass and copy it freely, and it serves directly as a map key
// (the strategy-layer solution cache relies on this).
type Resources struct {
	k      uint8
	counts [MaxCoreTypes]int32
	names  [MaxCoreTypes]byte // 0 = default name (B, L, T2, …)
}

// Res builds a Resources with one count per core type, in type order:
// Res(16, 4) is the paper's R=(16B,4L). It panics if more than
// MaxCoreTypes counts are given.
func Res(counts ...int) Resources {
	if len(counts) > MaxCoreTypes {
		panic(fmt.Sprintf("core: %d core types exceeds MaxCoreTypes=%d",
			len(counts), MaxCoreTypes))
	}
	var r Resources
	r.k = uint8(len(counts))
	for i, c := range counts {
		r.counts[i] = int32(c)
	}
	return r
}

// Unlimited returns a k-type Resources with an effectively infinite
// (1<<30) core count per type, for validity checks that ignore capacity.
func Unlimited(k int) Resources {
	var counts []int
	for i := 0; i < k; i++ {
		counts = append(counts, 1<<30)
	}
	return Res(counts...)
}

// ParseResources parses a platform spec of the form "16B,4L" or
// "4B,2M,8L": one comma-separated component per core type, each a core
// count with an optional one-letter display name. Bare counts ("16,4")
// use the default names (B, L, T2, …).
func ParseResources(spec string) (Resources, error) {
	parts := strings.Split(spec, ",")
	if len(parts) > MaxCoreTypes {
		return Resources{}, fmt.Errorf("core: resource spec %q declares %d types, max %d",
			spec, len(parts), MaxCoreTypes)
	}
	var r Resources
	r.k = uint8(len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		name := byte(0)
		// The positional default name ("B", "L", "T2", …) may always be
		// spelled out; otherwise a single trailing letter names the type.
		if def := CoreType(i).String(); len(p) > len(def) &&
			strings.EqualFold(p[len(p)-len(def):], def) {
			p = p[:len(p)-len(def)]
		} else if n := len(p); n > 0 {
			c := p[n-1]
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			if c >= 'A' && c <= 'Z' {
				name = c
				p = p[:n-1]
			}
		}
		count, err := strconv.Atoi(p)
		if err != nil || count < 0 {
			return Resources{}, fmt.Errorf("core: invalid resource spec component %q (want e.g. \"4B\")",
				strings.TrimSpace(parts[i]))
		}
		r.counts[i] = int32(count)
		// Normalize explicit default names away so "16B,4L" == Res(16, 4).
		if name != 0 && string(name) != CoreType(i).String() {
			r.names[i] = name
		}
	}
	return r, nil
}

// NumTypes returns the number of core types the platform declares.
func (r Resources) NumTypes() int { return int(r.k) }

// Count returns the number of cores of type v, or 0 for types beyond the
// platform's type table.
func (r Resources) Count(v CoreType) int {
	if int(v) >= int(r.k) {
		return 0
	}
	return int(r.counts[v])
}

// Total returns the total number of cores across all types.
func (r Resources) Total() int {
	t := 0
	for v := 0; v < int(r.k); v++ {
		t += int(r.counts[v])
	}
	return t
}

// Consume returns a copy of r with u cores of type v removed. The count
// may go negative; NonNegative detects exhausted budgets.
func (r Resources) Consume(v CoreType, u int) Resources {
	r.counts[v] -= int32(u)
	return r
}

// NonNegative reports whether every type's core count is ≥ 0.
func (r Resources) NonNegative() bool {
	for v := 0; v < int(r.k); v++ {
		if r.counts[v] < 0 {
			return false
		}
	}
	return true
}

// Only returns a copy of r with every core count zeroed except type v's;
// the type table (count of types, names) is preserved.
func (r Resources) Only(v CoreType) Resources {
	for i := 0; i < int(r.k); i++ {
		if CoreType(i) != v {
			r.counts[i] = 0
		}
	}
	return r
}

// With returns a copy of r with type v's core count set to n.
func (r Resources) With(v CoreType, n int) Resources {
	r.counts[v] = int32(n)
	return r
}

// TypeName returns the display name of core type v: the platform-declared
// one-letter name when set, the conventional default (B, L, T2, …)
// otherwise.
func (r Resources) TypeName(v CoreType) string {
	if int(v) < int(r.k) && r.names[v] != 0 {
		return string(r.names[v])
	}
	return v.String()
}

// String formats the platform in the paper's R=(b,l) notation, one
// component per type: "(16B,4L)", or "(4B,2M,8L)" for a named three-type
// platform.
func (r Resources) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for v := 0; v < int(r.k); v++ {
		if v > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d%s", r.counts[v], r.TypeName(CoreType(v)))
	}
	sb.WriteByte(')')
	return sb.String()
}

// withCounts returns a copy of r whose counts are replaced by used —
// a formatting helper so usage vectors print with the platform's names.
func (r Resources) withCounts(used []int) Resources {
	for v := 0; v < int(r.k) && v < len(used); v++ {
		r.counts[v] = int32(used[v])
	}
	return r
}

// Chain is an immutable task chain with precomputed prefix sums so that
// interval weights (Eq. 1) and replicability queries cost O(1).
type Chain struct {
	tasks     []Task
	prefix    [][]float64 // prefix[v][i] = Σ weight of tasks[0:i] on v
	seqPrefix []int       // seqPrefix[i] = #sequential tasks in tasks[0:i]
	fp        uint64      // stable content hash, see Fingerprint
}

// NewChain builds a chain from tasks. It returns an error if the chain is
// empty, if any task has a negative weight, or if the tasks do not agree
// on the number of core types (every task must carry one weight per type).
func NewChain(tasks []Task) (*Chain, error) {
	if len(tasks) == 0 {
		return nil, errors.New("core: empty task chain")
	}
	k := len(tasks[0].Weight)
	if k == 0 {
		return nil, fmt.Errorf("core: task 0 (%q) declares no weights", tasks[0].Name)
	}
	if k > MaxCoreTypes {
		return nil, fmt.Errorf("core: task 0 (%q) declares %d weights, max %d core types",
			tasks[0].Name, k, MaxCoreTypes)
	}
	c := &Chain{tasks: append([]Task(nil), tasks...)}
	c.prefix = make([][]float64, k)
	for v := 0; v < k; v++ {
		c.prefix[v] = make([]float64, len(tasks)+1)
	}
	c.seqPrefix = make([]int, len(tasks)+1)
	for i, t := range c.tasks {
		if len(t.Weight) != k {
			return nil, fmt.Errorf("core: task %d (%q) declares %d weights, chain has %d core types",
				i, t.Name, len(t.Weight), k)
		}
		// Deep-copy the weight vector so the chain stays immutable even if
		// the caller mutates its task slice afterwards.
		c.tasks[i].Weight = append([]float64(nil), t.Weight...)
		for v := 0; v < k; v++ {
			if t.Weight[v] < 0 || math.IsNaN(t.Weight[v]) {
				return nil, fmt.Errorf("core: task %d (%q) has invalid weight %v on %v",
					i, t.Name, t.Weight[v], CoreType(v))
			}
			c.prefix[v][i+1] = c.prefix[v][i] + t.Weight[v]
		}
		c.seqPrefix[i+1] = c.seqPrefix[i]
		if !t.Replicable {
			c.seqPrefix[i+1]++
		}
	}
	c.fp = fingerprintTasks(c.tasks)
	return c, nil
}

// MustChain is like NewChain but panics on error. It is intended for tests
// and examples with known-good inputs.
func MustChain(tasks []Task) *Chain {
	c, err := NewChain(tasks)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of tasks in the chain.
func (c *Chain) Len() int { return len(c.tasks) }

// NumTypes returns the number of core types the chain's tasks declare
// weights for.
func (c *Chain) NumTypes() int { return len(c.prefix) }

// Task returns task i (0-based).
func (c *Chain) Task(i int) Task { return c.tasks[i] }

// Tasks returns a copy of the task slice.
func (c *Chain) Tasks() []Task { return append([]Task(nil), c.tasks...) }

// SumW returns the sum of the weights of tasks s..e (inclusive, 0-based)
// on core type v.
func (c *Chain) SumW(s, e int, v CoreType) float64 {
	return c.prefix[v][e+1] - c.prefix[v][s]
}

// TotalW returns the sum of all task weights on core type v.
func (c *Chain) TotalW(v CoreType) float64 { return c.prefix[v][len(c.tasks)] }

// IsRep reports whether the interval [s, e] (inclusive, 0-based) contains
// only replicable tasks (paper's IsRep, Algo 3).
func (c *Chain) IsRep(s, e int) bool {
	return c.seqPrefix[e+1] == c.seqPrefix[s]
}

// FinalRepTask returns the largest index i ≥ e such that [s, i] is fully
// replicable (paper's FinalRepTask, Algo 3). It assumes IsRep(s, e).
// seqPrefix is non-decreasing, so the boundary is found by binary search
// in O(log n) instead of walking the replicable run.
func (c *Chain) FinalRepTask(s, e int) int {
	// [s, i] is fully replicable ⟺ no sequential task in (e, i], i.e.
	// seqPrefix[i+1] == seqPrefix[e+1] (IsRep(s, e) covers the prefix).
	want := c.seqPrefix[e+1]
	lo, hi := e, len(c.tasks)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if c.seqPrefix[mid+1] == want {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Weight implements Eq. 1: the weight of the stage holding tasks s..e
// (inclusive, 0-based) when executed by r cores of type v. A stage
// containing a sequential task cannot exploit more than one core; a fully
// replicable stage divides its work across the r replicas; r < 1 yields
// +Inf (no valid execution).
func (c *Chain) Weight(s, e, r int, v CoreType) float64 {
	if r < 1 {
		return math.Inf(1)
	}
	w := c.SumW(s, e, v)
	if c.IsRep(s, e) {
		return w / float64(r)
	}
	return w
}

// MaxWeight returns the largest single-task weight on core type v.
func (c *Chain) MaxWeight(v CoreType) float64 {
	m := 0.0
	for _, t := range c.tasks {
		if t.Weight[v] > m {
			m = t.Weight[v]
		}
	}
	return m
}

// MaxSeqWeight returns the largest weight among sequential tasks on core
// type v, or 0 if every task is replicable.
func (c *Chain) MaxSeqWeight(v CoreType) float64 {
	m := 0.0
	for _, t := range c.tasks {
		if !t.Replicable && t.Weight[v] > m {
			m = t.Weight[v]
		}
	}
	return m
}

// SeqCount returns the number of sequential (stateful) tasks.
func (c *Chain) SeqCount() int { return c.seqPrefix[len(c.tasks)] }

// Stage is one pipeline stage of a schedule: the contiguous interval of
// tasks [Start, End] (inclusive, 0-based) executed by Cores cores of type
// Type.
type Stage struct {
	Start, End int
	Cores      int
	Type       CoreType
}

// Tasks returns the number of tasks in the stage.
func (s Stage) Tasks() int { return s.End - s.Start + 1 }

// String formats the stage in the paper's (n_tasks, r_v) notation.
func (s Stage) String() string {
	return fmt.Sprintf("(%d,%d%s)", s.Tasks(), s.Cores, s.Type)
}

// Solution is a pipelined-and-replicated schedule: an ordered list of
// stages. The zero value is the empty (invalid) solution used by the
// heuristics to signal failure.
type Solution struct {
	Stages []Stage
}

// IsEmpty reports whether the solution holds no stages (the (∅,∅,∅)
// failure marker of the paper's algorithms).
func (s Solution) IsEmpty() bool { return len(s.Stages) == 0 }

// Period implements Eq. 2: the maximum stage weight of the solution.
// The period of an empty solution is +Inf.
func (s Solution) Period(c *Chain) float64 {
	if s.IsEmpty() {
		return math.Inf(1)
	}
	p := 0.0
	for _, st := range s.Stages {
		if w := c.Weight(st.Start, st.End, st.Cores, st.Type); w > p {
			p = w
		}
	}
	return p
}

// Usage returns the per-type core consumption of the solution as a vector
// of k counts; stages whose type falls outside [0, k) are ignored (IsValid
// and Validate reject them explicitly).
func (s Solution) Usage(k int) []int {
	used := make([]int, k)
	for _, st := range s.Stages {
		if int(st.Type) < k {
			used[st.Type] += st.Cores
		}
	}
	return used
}

// CoresUsed returns the number of big (type 0) and little (type 1) cores
// consumed by the solution — the two-type reading of Usage, kept for the
// paper's canonical k=2 platforms.
func (s Solution) CoresUsed() (big, little int) {
	for _, st := range s.Stages {
		switch st.Type {
		case Big:
			big += st.Cores
		case Little:
			little += st.Cores
		}
	}
	return big, little
}

// IsValid implements the paper's IsValid (Algo 3): the solution is
// non-empty, its period does not exceed target, and it respects the
// available per-type resources.
func (s Solution) IsValid(c *Chain, r Resources, target float64) bool {
	if s.IsEmpty() {
		return false
	}
	k := r.NumTypes()
	for _, st := range s.Stages {
		if int(st.Type) >= k {
			return false
		}
	}
	for v, u := range s.Usage(k) {
		if u > r.Count(CoreType(v)) {
			return false
		}
	}
	return s.Period(c) <= target
}

// Validate performs the structural checks that IsValid leaves implicit:
// stages must tile the whole chain contiguously, each stage must use at
// least one core, and every stage's type must exist in the platform's
// type table. It returns a descriptive error on the first violation.
func (s Solution) Validate(c *Chain, r Resources) error {
	if s.IsEmpty() {
		return errors.New("core: empty solution")
	}
	next := 0
	for i, st := range s.Stages {
		if st.Start != next {
			return fmt.Errorf("core: stage %d starts at task %d, want %d", i, st.Start, next)
		}
		if st.End < st.Start || st.End >= c.Len() {
			return fmt.Errorf("core: stage %d has invalid interval [%d,%d]", i, st.Start, st.End)
		}
		if st.Cores < 1 {
			return fmt.Errorf("core: stage %d uses %d cores", i, st.Cores)
		}
		if int(st.Type) >= r.NumTypes() {
			return fmt.Errorf("core: stage %d uses core type %v, platform has %d types",
				i, st.Type, r.NumTypes())
		}
		if st.Cores > 1 && !c.IsRep(st.Start, st.End) {
			return fmt.Errorf("core: stage %d replicates a sequential interval [%d,%d]",
				i, st.Start, st.End)
		}
		next = st.End + 1
	}
	if next != c.Len() {
		return fmt.Errorf("core: solution covers tasks [0,%d), chain has %d tasks", next, c.Len())
	}
	used := s.Usage(r.NumTypes())
	for v, u := range used {
		if u > r.Count(CoreType(v)) {
			return fmt.Errorf("core: solution uses %v cores, available %v",
				r.withCounts(used), r)
		}
	}
	return nil
}

// Prepend returns a new solution with st inserted before the stages of s
// (the paper's "·" concatenation used while unwinding recursions).
func (s Solution) Prepend(st Stage) Solution {
	out := make([]Stage, 0, len(s.Stages)+1)
	out = append(out, st)
	out = append(out, s.Stages...)
	return Solution{Stages: out}
}

// MergeReplicable returns a copy of s where consecutive stages that are
// both fully replicable and use the same core type are fused into a single
// stage holding the union of their tasks and cores. The paper applies this
// post-pass to HeRAD's schedules: it never changes the period but yields
// shorter pipelines.
func (s Solution) MergeReplicable(c *Chain) Solution {
	if s.IsEmpty() {
		return s
	}
	out := []Stage{s.Stages[0]}
	for _, st := range s.Stages[1:] {
		last := &out[len(out)-1]
		if last.Type == st.Type &&
			c.IsRep(last.Start, last.End) && c.IsRep(st.Start, st.End) {
			last.End = st.End
			last.Cores += st.Cores
			continue
		}
		out = append(out, st)
	}
	return Solution{Stages: out}
}

// Throughput converts a period expressed in microseconds into processed
// frames per second, given the number of frames handled per pipeline slot
// (the "interframe" level of the DVB-S2 experiments).
func Throughput(periodMicros float64, interframe int) float64 {
	if periodMicros <= 0 {
		return math.Inf(1)
	}
	return 1e6 / periodMicros * float64(interframe)
}

// String formats the solution as the paper's pipeline decompositions,
// e.g. "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L)".
func (s Solution) String() string {
	if s.IsEmpty() {
		return "(∅)"
	}
	parts := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		parts[i] = st.String()
	}
	return strings.Join(parts, ",")
}
