// Package core defines the task-chain scheduling model of the paper
// "Scheduling Strategies for Partially-Replicable Task Chains on Two Types
// of Resources" (Orhan et al., IPPS 2025).
//
// A workflow is a linear chain of n tasks τ_0 … τ_{n-1} (0-based here; the
// paper is 1-based). Each task is either replicable (stateless) or
// sequential (stateful), and has one computation weight (latency) per core
// type. The computing system has two types of unrelated resources: b big
// cores and l little cores. A schedule partitions the chain into contiguous
// intervals (pipeline stages); each stage receives r cores of a single type
// v. The weight of a stage (Eq. 1 of the paper) is the sum of its tasks'
// weights on v, divided by r when every task in the stage is replicable.
// The period of a schedule (Eq. 2) is the maximum stage weight, and a
// schedule is valid (Eq. 3) when it respects the per-type core counts.
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// CoreType identifies one of the two resource types of the platform.
type CoreType uint8

const (
	// Big is the high-performance (p-core) resource type.
	Big CoreType = iota
	// Little is the high-efficiency (e-core) resource type.
	Little
	// NumCoreTypes is the number of resource types in the model.
	NumCoreTypes = 2
)

// String returns the conventional one-letter name used by the paper
// ("B" for big cores, "L" for little cores).
func (t CoreType) String() string {
	switch t {
	case Big:
		return "B"
	case Little:
		return "L"
	default:
		return fmt.Sprintf("CoreType(%d)", uint8(t))
	}
}

// Other returns the opposite core type.
func (t CoreType) Other() CoreType {
	if t == Big {
		return Little
	}
	return Big
}

// Task is one element of a task chain.
type Task struct {
	// Name identifies the task in reports and traces.
	Name string
	// Weight holds the computation weight (latency) of the task on each
	// core type, indexed by CoreType.
	Weight [NumCoreTypes]float64
	// Replicable reports whether the task is stateless and may therefore
	// be replicated across several cores of the same stage.
	Replicable bool
}

// W returns the task's weight on core type v.
func (t Task) W(v CoreType) float64 { return t.Weight[v] }

// Resources describes the platform: the number of available big and
// little cores.
type Resources struct {
	Big    int
	Little int
}

// Total returns the total number of cores of both types.
func (r Resources) Total() int { return r.Big + r.Little }

// Of returns the number of cores of type v.
func (r Resources) Of(v CoreType) int {
	if v == Big {
		return r.Big
	}
	return r.Little
}

// Minus returns a copy of r with u cores of type v removed.
func (r Resources) Minus(v CoreType, u int) Resources {
	if v == Big {
		r.Big -= u
	} else {
		r.Little -= u
	}
	return r
}

// String formats the resource pair in the paper's R=(b,l) notation.
func (r Resources) String() string {
	return fmt.Sprintf("(%dB,%dL)", r.Big, r.Little)
}

// Chain is an immutable task chain with precomputed prefix sums so that
// interval weights (Eq. 1) and replicability queries cost O(1).
type Chain struct {
	tasks     []Task
	prefix    [NumCoreTypes][]float64 // prefix[v][i] = Σ weight of tasks[0:i] on v
	seqPrefix []int                   // seqPrefix[i] = #sequential tasks in tasks[0:i]
	fp        uint64                  // stable content hash, see Fingerprint
}

// NewChain builds a chain from tasks. It returns an error if the chain is
// empty or if any task has a negative weight.
func NewChain(tasks []Task) (*Chain, error) {
	if len(tasks) == 0 {
		return nil, errors.New("core: empty task chain")
	}
	c := &Chain{tasks: append([]Task(nil), tasks...)}
	for v := 0; v < NumCoreTypes; v++ {
		c.prefix[v] = make([]float64, len(tasks)+1)
	}
	c.seqPrefix = make([]int, len(tasks)+1)
	for i, t := range c.tasks {
		for v := 0; v < NumCoreTypes; v++ {
			if t.Weight[v] < 0 || math.IsNaN(t.Weight[v]) {
				return nil, fmt.Errorf("core: task %d (%q) has invalid weight %v on %v",
					i, t.Name, t.Weight[v], CoreType(v))
			}
			c.prefix[v][i+1] = c.prefix[v][i] + t.Weight[v]
		}
		c.seqPrefix[i+1] = c.seqPrefix[i]
		if !t.Replicable {
			c.seqPrefix[i+1]++
		}
	}
	c.fp = fingerprintTasks(c.tasks)
	return c, nil
}

// MustChain is like NewChain but panics on error. It is intended for tests
// and examples with known-good inputs.
func MustChain(tasks []Task) *Chain {
	c, err := NewChain(tasks)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of tasks in the chain.
func (c *Chain) Len() int { return len(c.tasks) }

// Task returns task i (0-based).
func (c *Chain) Task(i int) Task { return c.tasks[i] }

// Tasks returns a copy of the task slice.
func (c *Chain) Tasks() []Task { return append([]Task(nil), c.tasks...) }

// SumW returns the sum of the weights of tasks s..e (inclusive, 0-based)
// on core type v.
func (c *Chain) SumW(s, e int, v CoreType) float64 {
	return c.prefix[v][e+1] - c.prefix[v][s]
}

// TotalW returns the sum of all task weights on core type v.
func (c *Chain) TotalW(v CoreType) float64 { return c.prefix[v][len(c.tasks)] }

// IsRep reports whether the interval [s, e] (inclusive, 0-based) contains
// only replicable tasks (paper's IsRep, Algo 3).
func (c *Chain) IsRep(s, e int) bool {
	return c.seqPrefix[e+1] == c.seqPrefix[s]
}

// FinalRepTask returns the largest index i ≥ e such that [s, i] is fully
// replicable (paper's FinalRepTask, Algo 3). It assumes IsRep(s, e).
// seqPrefix is non-decreasing, so the boundary is found by binary search
// in O(log n) instead of walking the replicable run.
func (c *Chain) FinalRepTask(s, e int) int {
	// [s, i] is fully replicable ⟺ no sequential task in (e, i], i.e.
	// seqPrefix[i+1] == seqPrefix[e+1] (IsRep(s, e) covers the prefix).
	want := c.seqPrefix[e+1]
	lo, hi := e, len(c.tasks)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if c.seqPrefix[mid+1] == want {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Weight implements Eq. 1: the weight of the stage holding tasks s..e
// (inclusive, 0-based) when executed by r cores of type v. A stage
// containing a sequential task cannot exploit more than one core; a fully
// replicable stage divides its work across the r replicas; r < 1 yields
// +Inf (no valid execution).
func (c *Chain) Weight(s, e, r int, v CoreType) float64 {
	if r < 1 {
		return math.Inf(1)
	}
	w := c.SumW(s, e, v)
	if c.IsRep(s, e) {
		return w / float64(r)
	}
	return w
}

// MaxWeight returns the largest single-task weight on core type v.
func (c *Chain) MaxWeight(v CoreType) float64 {
	m := 0.0
	for _, t := range c.tasks {
		if t.Weight[v] > m {
			m = t.Weight[v]
		}
	}
	return m
}

// MaxSeqWeight returns the largest weight among sequential tasks on core
// type v, or 0 if every task is replicable.
func (c *Chain) MaxSeqWeight(v CoreType) float64 {
	m := 0.0
	for _, t := range c.tasks {
		if !t.Replicable && t.Weight[v] > m {
			m = t.Weight[v]
		}
	}
	return m
}

// SeqCount returns the number of sequential (stateful) tasks.
func (c *Chain) SeqCount() int { return c.seqPrefix[len(c.tasks)] }

// Stage is one pipeline stage of a schedule: the contiguous interval of
// tasks [Start, End] (inclusive, 0-based) executed by Cores cores of type
// Type.
type Stage struct {
	Start, End int
	Cores      int
	Type       CoreType
}

// Tasks returns the number of tasks in the stage.
func (s Stage) Tasks() int { return s.End - s.Start + 1 }

// String formats the stage in the paper's (n_tasks, r_v) notation.
func (s Stage) String() string {
	return fmt.Sprintf("(%d,%d%s)", s.Tasks(), s.Cores, s.Type)
}

// Solution is a pipelined-and-replicated schedule: an ordered list of
// stages. The zero value is the empty (invalid) solution used by the
// heuristics to signal failure.
type Solution struct {
	Stages []Stage
}

// IsEmpty reports whether the solution holds no stages (the (∅,∅,∅)
// failure marker of the paper's algorithms).
func (s Solution) IsEmpty() bool { return len(s.Stages) == 0 }

// Period implements Eq. 2: the maximum stage weight of the solution.
// The period of an empty solution is +Inf.
func (s Solution) Period(c *Chain) float64 {
	if s.IsEmpty() {
		return math.Inf(1)
	}
	p := 0.0
	for _, st := range s.Stages {
		if w := c.Weight(st.Start, st.End, st.Cores, st.Type); w > p {
			p = w
		}
	}
	return p
}

// CoresUsed returns the total number of big and little cores consumed by
// the solution.
func (s Solution) CoresUsed() (big, little int) {
	for _, st := range s.Stages {
		if st.Type == Big {
			big += st.Cores
		} else {
			little += st.Cores
		}
	}
	return big, little
}

// IsValid implements the paper's IsValid (Algo 3): the solution is
// non-empty, its period does not exceed target, and it respects the
// available resources.
func (s Solution) IsValid(c *Chain, r Resources, target float64) bool {
	if s.IsEmpty() {
		return false
	}
	b, l := s.CoresUsed()
	return b <= r.Big && l <= r.Little && s.Period(c) <= target
}

// Validate performs the structural checks that IsValid leaves implicit:
// stages must tile the whole chain contiguously and each stage must use at
// least one core. It returns a descriptive error on the first violation.
func (s Solution) Validate(c *Chain, r Resources) error {
	if s.IsEmpty() {
		return errors.New("core: empty solution")
	}
	next := 0
	for i, st := range s.Stages {
		if st.Start != next {
			return fmt.Errorf("core: stage %d starts at task %d, want %d", i, st.Start, next)
		}
		if st.End < st.Start || st.End >= c.Len() {
			return fmt.Errorf("core: stage %d has invalid interval [%d,%d]", i, st.Start, st.End)
		}
		if st.Cores < 1 {
			return fmt.Errorf("core: stage %d uses %d cores", i, st.Cores)
		}
		if st.Cores > 1 && !c.IsRep(st.Start, st.End) {
			return fmt.Errorf("core: stage %d replicates a sequential interval [%d,%d]",
				i, st.Start, st.End)
		}
		next = st.End + 1
	}
	if next != c.Len() {
		return fmt.Errorf("core: solution covers tasks [0,%d), chain has %d tasks", next, c.Len())
	}
	b, l := s.CoresUsed()
	if b > r.Big || l > r.Little {
		return fmt.Errorf("core: solution uses (%dB,%dL) cores, available %v", b, l, r)
	}
	return nil
}

// Prepend returns a new solution with st inserted before the stages of s
// (the paper's "·" concatenation used while unwinding recursions).
func (s Solution) Prepend(st Stage) Solution {
	out := make([]Stage, 0, len(s.Stages)+1)
	out = append(out, st)
	out = append(out, s.Stages...)
	return Solution{Stages: out}
}

// MergeReplicable returns a copy of s where consecutive stages that are
// both fully replicable and use the same core type are fused into a single
// stage holding the union of their tasks and cores. The paper applies this
// post-pass to HeRAD's schedules: it never changes the period but yields
// shorter pipelines.
func (s Solution) MergeReplicable(c *Chain) Solution {
	if s.IsEmpty() {
		return s
	}
	out := []Stage{s.Stages[0]}
	for _, st := range s.Stages[1:] {
		last := &out[len(out)-1]
		if last.Type == st.Type &&
			c.IsRep(last.Start, last.End) && c.IsRep(st.Start, st.End) {
			last.End = st.End
			last.Cores += st.Cores
			continue
		}
		out = append(out, st)
	}
	return Solution{Stages: out}
}

// Throughput converts a period expressed in microseconds into processed
// frames per second, given the number of frames handled per pipeline slot
// (the "interframe" level of the DVB-S2 experiments).
func Throughput(periodMicros float64, interframe int) float64 {
	if periodMicros <= 0 {
		return math.Inf(1)
	}
	return 1e6 / periodMicros * float64(interframe)
}

// String formats the solution as the paper's pipeline decompositions,
// e.g. "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L)".
func (s Solution) String() string {
	if s.IsEmpty() {
		return "(∅)"
	}
	parts := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		parts[i] = st.String()
	}
	return strings.Join(parts, ",")
}
