package core

import (
	"encoding/json"
	"slices"
	"strings"
	"testing"
)

func TestCoreTypeJSONRoundTrip(t *testing.T) {
	for _, v := range []CoreType{Big, Little} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back CoreType
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Errorf("%v round-tripped to %v", v, back)
		}
	}
	var ct CoreType
	for _, s := range []string{`"big"`, `"l"`, `"B"`} {
		if err := json.Unmarshal([]byte(s), &ct); err != nil {
			t.Errorf("%s rejected: %v", s, err)
		}
	}
	if err := json.Unmarshal([]byte(`"X"`), &ct); err == nil {
		t.Error("unknown core type accepted")
	}
	if err := json.Unmarshal([]byte(`7`), &ct); err == nil {
		t.Error("numeric core type accepted")
	}
}

func TestChainJSONRoundTrip(t *testing.T) {
	orig := MustChain([]Task{
		{Name: "a", Weight: Weights(10, 25), Replicable: false},
		{Name: "b", Weight: Weights(4, 9), Replicable: true},
	})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"big":10`) || !strings.Contains(string(data), `"little":25`) {
		t.Errorf("unexpected wire shape: %s", data)
	}
	var back Chain
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	bt, ot := back.Task(1), orig.Task(1)
	if back.Len() != 2 || bt.Name != ot.Name || bt.Replicable != ot.Replicable ||
		!slices.Equal(bt.Weight, ot.Weight) {
		t.Errorf("round trip lost data: %+v", back.Tasks())
	}
	// Prefix sums must be rebuilt, not zero.
	if back.TotalW(Little) != 34 {
		t.Errorf("prefix sums not rebuilt: %v", back.TotalW(Little))
	}
}

func TestChainJSONRejectsInvalid(t *testing.T) {
	var c Chain
	if err := json.Unmarshal([]byte(`{"tasks":[]}`), &c); err == nil {
		t.Error("empty chain accepted")
	}
	if err := json.Unmarshal([]byte(`{"tasks":[{"name":"x","big":-1,"little":1}]}`), &c); err == nil {
		t.Error("negative weight accepted")
	}
	if err := json.Unmarshal([]byte(`{"tasks":`), &c); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	s := Solution{Stages: []Stage{
		{Start: 0, End: 2, Cores: 1, Type: Big},
		{Start: 3, End: 5, Cores: 4, Type: Little},
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Type":"L"`) {
		t.Errorf("core type not symbolic: %s", data)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Errorf("round trip: %v vs %v", back, s)
	}
}
