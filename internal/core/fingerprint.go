package core

import "math"

// FNV-1a 64-bit parameters (FNV is the repository's standard content hash:
// stable across processes, allocation-free, and fast enough to compute at
// chain construction).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvUint64 folds the 8 little-endian bytes of v into h.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// fnvByte folds one byte into h.
func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// fingerprintTasks hashes the scheduling-relevant content of a task list:
// the chain length, then each task's per-type weight bits and its
// replicability flag, in order. Task names are deliberately excluded —
// two chains that differ only in naming produce identical schedules under
// every strategy, so they must share a fingerprint (the property the
// strategy-layer solution cache relies on). The type count is not hashed
// separately: it is implied by the weight stream (k float64 words per
// task), which also keeps two-type fingerprints identical to the
// pre-k-type encoding.
func fingerprintTasks(tasks []Task) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(len(tasks)))
	for _, t := range tasks {
		for v := range t.Weight {
			h = fnvUint64(h, math.Float64bits(t.Weight[v]))
		}
		if t.Replicable {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	return h
}

// Fingerprint returns a stable 64-bit FNV-1a hash of the chain's
// scheduling-relevant content: task count, per-type weights (exact float64
// bits) and replicability flags, in chain order. Names are excluded. The
// fingerprint is computed once at construction, so the call is O(1); equal
// fingerprints identify chains that are interchangeable inputs for every
// scheduling strategy (up to the 64-bit collision probability).
func (c *Chain) Fingerprint() uint64 { return c.fp }
