package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPowerModel(t *testing.T) {
	m := DefaultPowerModel()
	s := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 2, Type: Big},
		{Start: 1, End: 1, Cores: 3, Type: Little},
	}}
	if got := m.Power(s); got != 2*4+3*1 {
		t.Errorf("Power = %v", got)
	}
	// 11 W at a 1000 µs period → 11 mJ per frame.
	if got := m.EnergyPerFrame(s, 1000); got != 0.011 {
		t.Errorf("EnergyPerFrame = %v", got)
	}
	if got := m.Power(Solution{}); got != 0 {
		t.Errorf("empty power = %v", got)
	}
}

func TestFuseKnownCase(t *testing.T) {
	// Two light single-core stages of the same type fuse; the heavy one
	// does not.
	c := MustChain([]Task{
		task(10, 20, false), task(15, 30, false), task(40, 80, false),
	})
	s := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 1, Type: Big},
		{Start: 1, End: 1, Cores: 1, Type: Big},
		{Start: 2, End: 2, Cores: 1, Type: Big},
	}}
	f := s.Fuse(c, 40)
	if len(f.Stages) != 2 {
		t.Fatalf("fused to %d stages: %v", len(f.Stages), f)
	}
	if f.Stages[0] != (Stage{Start: 0, End: 1, Cores: 1, Type: Big}) {
		t.Errorf("first fused stage %+v", f.Stages[0])
	}
	if p := f.Period(c); p > 40 {
		t.Errorf("fusion raised period to %v", p)
	}
	b, _ := f.CoresUsed()
	if b != 2 {
		t.Errorf("fusion saved nothing: %d big cores", b)
	}
	// Different core types never fuse.
	s2 := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 1, Type: Big},
		{Start: 1, End: 2, Cores: 1, Type: Little},
	}}
	if f2 := s2.Fuse(c, 1e9); len(f2.Stages) != 2 {
		t.Errorf("cross-type fusion happened: %v", f2)
	}
	if e := (Solution{}).Fuse(c, 10); !e.IsEmpty() {
		t.Error("fusing empty solution")
	}
}

func TestFuseChainsAcrossMultipleStages(t *testing.T) {
	// Greedy fusion must cascade: four 10-weight stages fuse into one at
	// target 40.
	c := MustChain([]Task{
		task(10, 10, false), task(10, 10, false), task(10, 10, false), task(10, 10, false),
	})
	var stages []Stage
	for i := 0; i < 4; i++ {
		stages = append(stages, Stage{Start: i, End: i, Cores: 1, Type: Little})
	}
	f := Solution{Stages: stages}.Fuse(c, 40)
	if len(f.Stages) != 1 {
		t.Fatalf("cascaded fusion produced %d stages", len(f.Stages))
	}
	if f.Period(c) != 40 {
		t.Errorf("period %v", f.Period(c))
	}
}

func TestFuseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func() bool {
		n := 1 + rng.Intn(10)
		tasks := make([]Task, n)
		for i := range tasks {
			w := 1 + float64(rng.Intn(40))
			tasks[i] = task(w, 2*w, rng.Intn(2) == 0)
		}
		c := MustChain(tasks)
		var stages []Stage
		s0 := 0
		for s0 < n {
			e := s0 + rng.Intn(n-s0)
			cores := 1
			if c.IsRep(s0, e) && rng.Intn(2) == 0 {
				cores = 1 + rng.Intn(2)
			}
			stages = append(stages, Stage{Start: s0, End: e, Cores: cores, Type: CoreType(rng.Intn(2))})
			s0 = e + 1
		}
		sol := Solution{Stages: stages}
		target := sol.Period(c) * (1 + rng.Float64())
		fused := sol.Fuse(c, target)
		// Invariants: structurally valid, period within target, and the
		// core usage never grows for either type.
		if err := fused.Validate(c, Res(99, 99)); err != nil {
			t.Logf("structural: %v", err)
			return false
		}
		if fused.Period(c) > target+1e-9 {
			return false
		}
		b0, l0 := sol.CoresUsed()
		b1, l1 := fused.CoresUsed()
		return b1 <= b0 && l1 <= l0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
