package core

import (
	"math/rand"
	"slices"
	"testing"
)

func fpTask(wb, wl float64, rep bool) Task {
	return Task{Weight: Weights(wb, wl), Replicable: rep}
}

func TestFingerprintDeterministic(t *testing.T) {
	tasks := []Task{fpTask(10, 20, true), fpTask(5, 5, false), fpTask(3, 9, true)}
	a := MustChain(tasks)
	b := MustChain(tasks)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same tasks, different fingerprints: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == 0 {
		t.Error("fingerprint is zero")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := MustChain([]Task{{Name: "alpha", Weight: Weights(10, 20), Replicable: true}})
	b := MustChain([]Task{{Name: "beta", Weight: Weights(10, 20), Replicable: true}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("names changed the fingerprint; schedules cannot depend on names")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := []Task{fpTask(10, 20, true), fpTask(5, 5, false)}
	fp := MustChain(base).Fingerprint()
	variants := map[string][]Task{
		"big weight":    {fpTask(11, 20, true), fpTask(5, 5, false)},
		"little weight": {fpTask(10, 21, true), fpTask(5, 5, false)},
		"replicability": {fpTask(10, 20, false), fpTask(5, 5, false)},
		"order":         {fpTask(5, 5, false), fpTask(10, 20, true)},
		"shorter":       {fpTask(10, 20, true)},
		"longer":        {fpTask(10, 20, true), fpTask(5, 5, false), fpTask(5, 5, false)},
		"swapped types": {fpTask(20, 10, true), fpTask(5, 5, false)},
	}
	for name, tasks := range variants {
		if got := MustChain(tasks).Fingerprint(); got == fp {
			t.Errorf("%s variant collides with the base fingerprint", name)
		}
	}
}

// TestFingerprintZeroVsAbsent guards the classic concatenation ambiguity:
// a task with zero weights must not hash like a missing task.
func TestFingerprintZeroVsAbsent(t *testing.T) {
	a := MustChain([]Task{fpTask(10, 20, true), fpTask(0, 0, true)})
	b := MustChain([]Task{fpTask(10, 20, true)})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("trailing zero-weight task collides with the shorter chain")
	}
}

// TestFingerprintCollisions generates a large population of random chains
// and checks that distinct contents never collide. With 20k 64-bit
// fingerprints the accidental-collision probability is ~10⁻¹¹, so any
// collision observed here is a real hashing defect.
func TestFingerprintCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	type seenChain struct {
		tasks []Task
		fp    uint64
	}
	byFP := map[uint64][]seenChain{}
	sameContent := func(a, b []Task) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !slices.Equal(a[i].Weight, b[i].Weight) || a[i].Replicable != b[i].Replicable {
				return false
			}
		}
		return true
	}
	for iter := 0; iter < 20000; iter++ {
		n := 1 + rng.Intn(12)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = fpTask(float64(1+rng.Intn(40)), float64(1+rng.Intn(40)), rng.Intn(2) == 0)
		}
		fp := MustChain(tasks).Fingerprint()
		for _, prev := range byFP[fp] {
			if !sameContent(prev.tasks, tasks) {
				t.Fatalf("collision: %+v and %+v share fingerprint %x", prev.tasks, tasks, fp)
			}
		}
		byFP[fp] = append(byFP[fp], seenChain{tasks: tasks, fp: fp})
	}
}

func TestFinalRepTaskMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(20)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = fpTask(1, 1, rng.Intn(3) > 0)
		}
		c := MustChain(tasks)
		for s := 0; s < n; s++ {
			for e := s; e < n; e++ {
				if !c.IsRep(s, e) {
					continue
				}
				want := e
				for want+1 < n && tasks[want+1].Replicable {
					want++
				}
				if got := c.FinalRepTask(s, e); got != want {
					t.Fatalf("FinalRepTask(%d,%d) = %d, want %d (tasks %+v)", s, e, got, want, tasks)
				}
			}
		}
	}
}
