package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// JSON serialization: chains and solutions round-trip through stable,
// human-editable JSON so schedules can be computed offline and shipped
// to a runtime (the cmd/ampsched -json output uses the same shapes).

// MarshalJSON encodes the core type by its default name ("B", "L",
// "T2", …).
func (t CoreType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts "B"/"L" (and lowercase variants) plus the "T2",
// "T3", … names of the extra types of k>2 platforms.
func (t *CoreType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "B", "b", "big":
		*t = Big
	case "L", "l", "little":
		*t = Little
	default:
		if v, err := strconv.Atoi(strings.TrimPrefix(strings.ToUpper(s), "T")); err == nil &&
			strings.HasPrefix(strings.ToUpper(s), "T") && v >= 0 && v < MaxCoreTypes {
			*t = CoreType(v)
			return nil
		}
		return fmt.Errorf("core: unknown core type %q", s)
	}
	return nil
}

// taskJSON is the wire shape of a Task. Two-type tasks keep the original
// named-weight shape ({"big": …, "little": …}); tasks with any other type
// count carry an ordered "weights" array instead. Both shapes are accepted
// on input.
type taskJSON struct {
	Name       string    `json:"name"`
	Big        float64   `json:"big,omitempty"`
	Little     float64   `json:"little,omitempty"`
	Weights    []float64 `json:"weights,omitempty"`
	Replicable bool      `json:"replicable"`
}

// MarshalJSON encodes the task with named per-type weights (two-type
// tasks) or an ordered weight vector (any other type count).
func (t Task) MarshalJSON() ([]byte, error) {
	if len(t.Weight) == 2 {
		return json.Marshal(struct {
			Name       string  `json:"name"`
			Big        float64 `json:"big"`
			Little     float64 `json:"little"`
			Replicable bool    `json:"replicable"`
		}{t.Name, t.Weight[Big], t.Weight[Little], t.Replicable})
	}
	return json.Marshal(struct {
		Name       string    `json:"name"`
		Weights    []float64 `json:"weights"`
		Replicable bool      `json:"replicable"`
	}{t.Name, t.Weight, t.Replicable})
}

// UnmarshalJSON decodes either wire shape: an explicit "weights" array
// wins; otherwise the named big/little pair builds a two-type task.
func (t *Task) UnmarshalJSON(data []byte) error {
	var j taskJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	w := j.Weights
	if w == nil {
		w = []float64{j.Big, j.Little}
	} else if j.Big != 0 || j.Little != 0 {
		return fmt.Errorf("core: task %q mixes \"weights\" with named big/little weights", j.Name)
	}
	*t = Task{Name: j.Name, Replicable: j.Replicable, Weight: w}
	return nil
}

// chainJSON is the wire shape of a Chain.
type chainJSON struct {
	Tasks []Task `json:"tasks"`
}

// MarshalJSON encodes the chain as its task list.
func (c *Chain) MarshalJSON() ([]byte, error) {
	return json.Marshal(chainJSON{Tasks: c.Tasks()})
}

// UnmarshalJSON rebuilds the chain (including prefix sums) from a task
// list; invalid chains (empty, negative weights, disagreeing type counts)
// are rejected.
func (c *Chain) UnmarshalJSON(data []byte) error {
	var j chainJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	nc, err := NewChain(j.Tasks)
	if err != nil {
		return err
	}
	*c = *nc
	return nil
}
