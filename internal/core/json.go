package core

import (
	"encoding/json"
	"fmt"
)

// JSON serialization: chains and solutions round-trip through stable,
// human-editable JSON so schedules can be computed offline and shipped
// to a runtime (the cmd/ampsched -json output uses the same shapes).

// MarshalJSON encodes the core type as "B" or "L".
func (t CoreType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts "B"/"L" (and lowercase variants).
func (t *CoreType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "B", "b", "big":
		*t = Big
	case "L", "l", "little":
		*t = Little
	default:
		return fmt.Errorf("core: unknown core type %q", s)
	}
	return nil
}

// taskJSON is the wire shape of a Task.
type taskJSON struct {
	Name       string  `json:"name"`
	Big        float64 `json:"big"`
	Little     float64 `json:"little"`
	Replicable bool    `json:"replicable"`
}

// MarshalJSON encodes the task with named per-type weights.
func (t Task) MarshalJSON() ([]byte, error) {
	return json.Marshal(taskJSON{
		Name: t.Name, Big: t.Weight[Big], Little: t.Weight[Little],
		Replicable: t.Replicable,
	})
}

// UnmarshalJSON decodes the named-weight shape.
func (t *Task) UnmarshalJSON(data []byte) error {
	var j taskJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*t = Task{Name: j.Name, Replicable: j.Replicable,
		Weight: [NumCoreTypes]float64{Big: j.Big, Little: j.Little}}
	return nil
}

// chainJSON is the wire shape of a Chain.
type chainJSON struct {
	Tasks []Task `json:"tasks"`
}

// MarshalJSON encodes the chain as its task list.
func (c *Chain) MarshalJSON() ([]byte, error) {
	return json.Marshal(chainJSON{Tasks: c.Tasks()})
}

// UnmarshalJSON rebuilds the chain (including prefix sums) from a task
// list; invalid chains (empty, negative weights) are rejected.
func (c *Chain) UnmarshalJSON(data []byte) error {
	var j chainJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	nc, err := NewChain(j.Tasks)
	if err != nil {
		return err
	}
	*c = *nc
	return nil
}
