package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseResources(t *testing.T) {
	good := []struct {
		spec string
		want Resources
		str  string
	}{
		{"16B,4L", Res(16, 4), "(16B,4L)"},
		{"16,4", Res(16, 4), "(16B,4L)"},
		{"16b,4l", Res(16, 4), "(16B,4L)"},
		{" 16B , 4L ", Res(16, 4), "(16B,4L)"},
		{"4B,2M,8L", Res(4, 2, 8).With(Little, 8), "(4B,2M,8L)"},
		{"0B,0L", Res(0, 0), "(0B,0L)"},
		{"7", Res(7), "(7B)"},
		{"1,2,3,4,5,6,7,8", Res(1, 2, 3, 4, 5, 6, 7, 8), "(1B,2L,3T2,4T3,5T4,6T5,7T6,8T7)"},
	}
	for _, tc := range good {
		r, err := ParseResources(tc.spec)
		if err != nil {
			t.Errorf("ParseResources(%q): %v", tc.spec, err)
			continue
		}
		if r.String() != tc.str {
			t.Errorf("ParseResources(%q).String() = %q, want %q", tc.spec, r.String(), tc.str)
		}
		// Explicit default names normalize away: "16B,4L" must be the same
		// comparable value as Res(16, 4) (cache keys depend on this).
		if tc.spec == "16B,4L" || tc.spec == "16,4" || tc.spec == "16b,4l" {
			if r != Res(16, 4) {
				t.Errorf("ParseResources(%q) = %#v, not comparable-equal to Res(16,4)", tc.spec, r)
			}
		}
	}

	bad := []string{"", "x", "B", "-1B", "4B,", "1,2,3,4,5,6,7,8,9", "4.5B"}
	for _, spec := range bad {
		if r, err := ParseResources(spec); err == nil {
			t.Errorf("ParseResources(%q) accepted: %v", spec, r)
		}
	}
}

// TestParseResourcesRoundTrip: parsing a Resources' own String form (sans
// parentheses) reproduces the value.
func TestParseResourcesRoundTrip(t *testing.T) {
	for _, r := range []Resources{Res(16, 4), Res(1), Res(4, 2, 8), Res(0, 3, 0, 7)} {
		spec := strings.Trim(r.String(), "()")
		back, err := ParseResources(spec)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", spec, err)
		}
		if back != r {
			t.Errorf("round trip %v -> %q -> %v", r, spec, back)
		}
	}
}

// FuzzParseResources checks the parser never panics and that accepted
// specs survive a String round trip.
func FuzzParseResources(f *testing.F) {
	for _, seed := range []string{"16B,4L", "4B,2M,8L", "1,2,3", "", "x", "-1B", "0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		r, err := ParseResources(spec)
		if err != nil {
			return
		}
		back, err := ParseResources(strings.Trim(r.String(), "()"))
		if err != nil {
			t.Fatalf("String form %q of accepted spec %q does not re-parse: %v", r.String(), spec, err)
		}
		if back != r {
			t.Errorf("spec %q: round trip %v -> %v", spec, r, back)
		}
	})
}

// TestConsumeCountRoundTrip is the Consume/Count algebra property: after
// consuming u cores of type v, type v's count drops by exactly u, every
// other type is untouched, and Total drops by u.
func TestConsumeCountRoundTrip(t *testing.T) {
	prop := func(raw [MaxCoreTypes]uint8, kRaw, vRaw, uRaw uint8) bool {
		k := 1 + int(kRaw)%MaxCoreTypes
		counts := make([]int, k)
		for i := range counts {
			counts[i] = int(raw[i])
		}
		r := Res(counts...)
		v := CoreType(int(vRaw) % k)
		u := int(uRaw)
		got := r.Consume(v, u)
		if got.NumTypes() != k || got.Count(v) != r.Count(v)-u {
			return false
		}
		for i := 0; i < k; i++ {
			if CoreType(i) != v && got.Count(CoreType(i)) != r.Count(CoreType(i)) {
				return false
			}
		}
		return got.Total() == r.Total()-u &&
			got.NonNegative() == (r.Count(v) >= u) &&
			got.Consume(v, -u) == r // consuming a negative count restores r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnlimitedOnlyWith(t *testing.T) {
	u := Unlimited(3)
	if u.NumTypes() != 3 || u.Count(2) != 1<<30 {
		t.Errorf("Unlimited(3) = %v", u)
	}
	r := Res(4, 2, 8)
	only := r.Only(Little)
	if only.NumTypes() != 3 || only.Count(Big) != 0 || only.Count(Little) != 2 || only.Count(2) != 0 {
		t.Errorf("Only(Little) = %v", only)
	}
	if got := r.With(2, 5); got.Count(2) != 5 || got.Count(Big) != 4 {
		t.Errorf("With(2,5) = %v", got)
	}
	// Count beyond the type table reads as zero.
	if r.Count(7) != 0 {
		t.Errorf("Count(7) = %d on a 3-type platform", r.Count(7))
	}
}

func TestChainTypeValidation(t *testing.T) {
	// Tasks disagreeing on the number of weights are rejected.
	_, err := NewChain([]Task{
		{Name: "a", Weight: Weights(1, 2)},
		{Name: "b", Weight: Weights(1, 2, 3)},
	})
	if err == nil {
		t.Error("mixed-arity chain accepted")
	}
	_, err = NewChain([]Task{{Name: "a"}})
	if err == nil {
		t.Error("weightless task accepted")
	}
	c := MustChain([]Task{
		{Name: "a", Weight: Weights(4, 8, 6), Replicable: true},
		{Name: "b", Weight: Weights(2, 3, 2)},
	})
	if c.NumTypes() != 3 {
		t.Errorf("NumTypes = %d", c.NumTypes())
	}
	if c.TotalW(2) != 8 {
		t.Errorf("TotalW(T2) = %v", c.TotalW(2))
	}
}

func TestSolutionUsageKTypes(t *testing.T) {
	s := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 2, Type: Big},
		{Start: 1, End: 1, Cores: 3, Type: 2},
		{Start: 2, End: 2, Cores: 1, Type: Little},
	}}
	if got := s.Usage(3); got[0] != 2 || got[1] != 1 || got[2] != 3 {
		t.Errorf("Usage(3) = %v", got)
	}
	// Types beyond k are ignored, matching Count's out-of-table reads.
	if got := s.Usage(2); got[0] != 2 || got[1] != 1 {
		t.Errorf("Usage(2) = %v", got)
	}
	c := MustChain([]Task{
		{Name: "a", Weight: Weights(4, 8, 6), Replicable: true},
		{Name: "b", Weight: Weights(2, 3, 2), Replicable: true},
		{Name: "c", Weight: Weights(9, 9, 9), Replicable: true},
	})
	if err := s.Validate(c, Res(2, 1, 3)); err != nil {
		t.Errorf("valid 3-type schedule rejected: %v", err)
	}
	if err := s.Validate(c, Res(2, 1, 2)); err == nil {
		t.Error("over-budget 3-type schedule accepted")
	}
	if err := s.Validate(c, Res(2, 1)); err == nil {
		t.Error("3-type schedule accepted on 2-type platform")
	}
}
