package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func task(wb, wl float64, rep bool) Task {
	return Task{Weight: Weights(wb, wl), Replicable: rep}
}

func testChain(t *testing.T) *Chain {
	t.Helper()
	c, err := NewChain([]Task{
		task(10, 20, false),
		task(4, 8, true),
		task(6, 12, true),
		task(30, 90, false),
		task(2, 2, true),
	})
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	return c
}

func TestNewChainErrors(t *testing.T) {
	if _, err := NewChain(nil); err == nil {
		t.Error("NewChain(nil) should fail")
	}
	if _, err := NewChain([]Task{}); err == nil {
		t.Error("NewChain(empty) should fail")
	}
	if _, err := NewChain([]Task{task(-1, 1, true)}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewChain([]Task{task(1, math.NaN(), true)}); err == nil {
		t.Error("NaN weight should fail")
	}
	if _, err := NewChain([]Task{task(1, 1, true)}); err != nil {
		t.Errorf("valid single-task chain rejected: %v", err)
	}
}

func TestMustChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustChain(nil) should panic")
		}
	}()
	MustChain(nil)
}

func TestCoreTypeString(t *testing.T) {
	if Big.String() != "B" || Little.String() != "L" {
		t.Errorf("got %q %q", Big.String(), Little.String())
	}
	if got := CoreType(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown core type formats as %q", got)
	}
	if CoreType(2).String() != "T2" {
		t.Errorf("type 2 formats as %q", CoreType(2).String())
	}
}

func TestResources(t *testing.T) {
	r := Res(3, 5)
	if r.Total() != 8 || r.Count(Big) != 3 || r.Count(Little) != 5 {
		t.Errorf("accessors wrong: %+v", r)
	}
	if got := r.Consume(Big, 2); got.Count(Big) != 1 || got.Count(Little) != 5 {
		t.Errorf("Consume(Big,2) = %v", got)
	}
	if got := r.Consume(Little, 5); got.Count(Little) != 0 {
		t.Errorf("Consume(Little,5) = %v", got)
	}
	if r.String() != "(3B,5L)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestSumWAndPrefix(t *testing.T) {
	c := testChain(t)
	if got := c.SumW(0, 4, Big); got != 52 {
		t.Errorf("SumW all big = %v, want 52", got)
	}
	if got := c.SumW(1, 2, Little); got != 20 {
		t.Errorf("SumW(1,2,L) = %v, want 20", got)
	}
	if got := c.TotalW(Little); got != 132 {
		t.Errorf("TotalW little = %v, want 132", got)
	}
	if got := c.SumW(3, 3, Big); got != 30 {
		t.Errorf("SumW single = %v, want 30", got)
	}
}

func TestIsRepAndFinalRepTask(t *testing.T) {
	c := testChain(t)
	cases := []struct {
		s, e int
		want bool
	}{
		{0, 0, false}, {1, 1, true}, {1, 2, true}, {1, 3, false},
		{4, 4, true}, {0, 4, false}, {2, 2, true},
	}
	for _, tc := range cases {
		if got := c.IsRep(tc.s, tc.e); got != tc.want {
			t.Errorf("IsRep(%d,%d) = %v, want %v", tc.s, tc.e, got, tc.want)
		}
	}
	if got := c.FinalRepTask(1, 1); got != 2 {
		t.Errorf("FinalRepTask(1,1) = %d, want 2", got)
	}
	if got := c.FinalRepTask(4, 4); got != 4 {
		t.Errorf("FinalRepTask(4,4) = %d, want 4", got)
	}
}

func TestWeightEq1(t *testing.T) {
	c := testChain(t)
	// Replicable stage divides by r.
	if got := c.Weight(1, 2, 2, Big); got != 5 {
		t.Errorf("rep stage weight = %v, want 5", got)
	}
	// Sequential stage ignores extra cores.
	if got := c.Weight(0, 1, 3, Big); got != 14 {
		t.Errorf("seq stage weight = %v, want 14", got)
	}
	// r < 1 is invalid.
	if got := c.Weight(0, 1, 0, Big); !math.IsInf(got, 1) {
		t.Errorf("0-core weight = %v, want +Inf", got)
	}
	// Little-core weights are used for Little.
	if got := c.Weight(1, 2, 1, Little); got != 20 {
		t.Errorf("little weight = %v, want 20", got)
	}
}

func TestMaxWeights(t *testing.T) {
	c := testChain(t)
	if got := c.MaxWeight(Big); got != 30 {
		t.Errorf("MaxWeight(B) = %v", got)
	}
	if got := c.MaxSeqWeight(Little); got != 90 {
		t.Errorf("MaxSeqWeight(L) = %v", got)
	}
	if got := c.SeqCount(); got != 2 {
		t.Errorf("SeqCount = %d", got)
	}
	allRep := MustChain([]Task{task(1, 1, true)})
	if got := allRep.MaxSeqWeight(Big); got != 0 {
		t.Errorf("MaxSeqWeight with no seq tasks = %v, want 0", got)
	}
}

func TestSolutionPeriodAndUsage(t *testing.T) {
	c := testChain(t)
	s := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 1, Type: Big},
		{Start: 1, End: 2, Cores: 2, Type: Little},
		{Start: 3, End: 4, Cores: 1, Type: Big},
	}}
	// Stage weights: 10, 20/2=10, 32 → period 32.
	if got := s.Period(c); got != 32 {
		t.Errorf("Period = %v, want 32", got)
	}
	b, l := s.CoresUsed()
	if b != 2 || l != 2 {
		t.Errorf("CoresUsed = (%d,%d), want (2,2)", b, l)
	}
	if !s.IsValid(c, Res(2, 2), 32) {
		t.Error("solution should be valid at its own period")
	}
	if s.IsValid(c, Res(2, 2), 31.9) {
		t.Error("solution should be invalid below its period")
	}
	if s.IsValid(c, Res(1, 2), 32) {
		t.Error("solution should be invalid with fewer big cores")
	}
	if (Solution{}).IsValid(c, Res(9, 9), 1e18) {
		t.Error("empty solution must be invalid")
	}
	if p := (Solution{}).Period(c); !math.IsInf(p, 1) {
		t.Errorf("empty solution period = %v, want +Inf", p)
	}
}

func TestValidateStructural(t *testing.T) {
	c := testChain(t)
	r := Res(4, 4)
	good := Solution{Stages: []Stage{
		{Start: 0, End: 2, Cores: 1, Type: Big},
		{Start: 3, End: 4, Cores: 1, Type: Little},
	}}
	if err := good.Validate(c, r); err != nil {
		t.Errorf("good solution rejected: %v", err)
	}
	bad := []Solution{
		{},
		{Stages: []Stage{{Start: 1, End: 4, Cores: 1, Type: Big}}},                                             // gap at start
		{Stages: []Stage{{Start: 0, End: 2, Cores: 1, Type: Big}}},                                             // does not cover
		{Stages: []Stage{{Start: 0, End: 4, Cores: 0, Type: Big}}},                                             // zero cores
		{Stages: []Stage{{Start: 0, End: 4, Cores: 2, Type: Big}}},                                             // replicated seq
		{Stages: []Stage{{Start: 0, End: 5, Cores: 1, Type: Big}}},                                             // out of range
		{Stages: []Stage{{Start: 0, End: 4, Cores: 1, Type: Big}, {Start: 3, End: 4, Cores: 1, Type: Little}}}, // overlap
	}
	for i, s := range bad {
		if err := s.Validate(c, r); err == nil {
			t.Errorf("bad solution %d accepted: %v", i, s)
		}
	}
	over := Solution{Stages: []Stage{{Start: 0, End: 4, Cores: 1, Type: Big}}}
	if err := over.Validate(c, Res(0, 9)); err == nil {
		t.Error("over-budget solution accepted")
	}
}

func TestMergeReplicable(t *testing.T) {
	c := MustChain([]Task{
		task(10, 10, true), task(10, 10, true), task(10, 10, true), task(5, 5, false),
	})
	s := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 1, Type: Big},
		{Start: 1, End: 2, Cores: 2, Type: Big},
		{Start: 3, End: 3, Cores: 1, Type: Little},
	}}
	m := s.MergeReplicable(c)
	if len(m.Stages) != 2 {
		t.Fatalf("merged into %d stages, want 2: %v", len(m.Stages), m)
	}
	if m.Stages[0] != (Stage{Start: 0, End: 2, Cores: 3, Type: Big}) {
		t.Errorf("merged stage = %+v", m.Stages[0])
	}
	if p, q := s.Period(c), m.Period(c); p < q {
		t.Errorf("merge increased period: %v -> %v", p, q)
	}
	// Different core types must not merge.
	s2 := Solution{Stages: []Stage{
		{Start: 0, End: 0, Cores: 1, Type: Big},
		{Start: 1, End: 2, Cores: 2, Type: Little},
		{Start: 3, End: 3, Cores: 1, Type: Little},
	}}
	if m2 := s2.MergeReplicable(c); len(m2.Stages) != 3 {
		t.Errorf("cross-type merge happened: %v", m2)
	}
	if e := (Solution{}).MergeReplicable(c); !e.IsEmpty() {
		t.Error("merging empty solution should stay empty")
	}
}

func TestMergeNeverIncreasesPeriodProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + rng.Intn(8)
		tasks := make([]Task, n)
		for i := range tasks {
			w := 1 + float64(rng.Intn(50))
			tasks[i] = task(w, w*2, rng.Intn(2) == 0)
		}
		c := MustChain(tasks)
		// Random contiguous partition with random cores.
		var stages []Stage
		s := 0
		for s < n {
			e := s + rng.Intn(n-s)
			cores := 1
			if c.IsRep(s, e) {
				cores = 1 + rng.Intn(3)
			}
			v := Big
			if rng.Intn(2) == 0 {
				v = Little
			}
			stages = append(stages, Stage{Start: s, End: e, Cores: cores, Type: v})
			s = e + 1
		}
		sol := Solution{Stages: stages}
		merged := sol.MergeReplicable(c)
		if err := merged.Validate(c, Res(99, 99)); err != nil {
			t.Logf("merge broke structure: %v", err)
			return false
		}
		return merged.Period(c) <= sol.Period(c)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestThroughput(t *testing.T) {
	// 1128.7 µs period at interframe 4 ≈ 3544 FPS (Table II, S1).
	if got := Throughput(1128.7, 4); math.Abs(got-3544) > 1 {
		t.Errorf("Throughput(1128.7, 4) = %v, want ≈3544", got)
	}
	if got := Throughput(0, 4); !math.IsInf(got, 1) {
		t.Errorf("Throughput(0) = %v", got)
	}
}

func TestStringFormats(t *testing.T) {
	s := Solution{Stages: []Stage{
		{Start: 0, End: 4, Cores: 1, Type: Big},
		{Start: 5, End: 5, Cores: 2, Type: Little},
	}}
	if got := s.String(); got != "(5,1B),(1,2L)" {
		t.Errorf("Solution.String = %q", got)
	}
	if got := (Solution{}).String(); got != "(∅)" {
		t.Errorf("empty Solution.String = %q", got)
	}
}

func TestPrependDoesNotAliasBase(t *testing.T) {
	base := Solution{Stages: []Stage{{Start: 2, End: 3, Cores: 1, Type: Big}}}
	p1 := base.Prepend(Stage{Start: 0, End: 1, Cores: 1, Type: Little})
	p2 := base.Prepend(Stage{Start: 0, End: 1, Cores: 2, Type: Big})
	if len(base.Stages) != 1 {
		t.Error("Prepend mutated the base solution")
	}
	if p1.Stages[0].Cores != 1 || p2.Stages[0].Cores != 2 {
		t.Error("Prepend results alias each other")
	}
}
