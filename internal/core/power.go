package core

// Power modeling and stage co-location: the paper's secondary objective
// uses little-core count as a power proxy and lists "direct power
// measurements" and "placing multiple stages on the same core" as future
// work (§VII). This file implements both extensions: a per-core-type
// power model for comparing schedules in watts, and a fusion post-pass
// that packs adjacent lightly-loaded stages onto a single core without
// raising the period.

// PowerModel assigns an active power draw to each core type.
type PowerModel struct {
	// Watts holds the per-core active power by core type, one entry per
	// type of the platform.
	Watts []float64
}

// DefaultPowerModel returns a big.LITTLE-style assumption (documented,
// not measured): big cores draw 4 W, little cores 1 W.
func DefaultPowerModel() PowerModel {
	return PowerModel{Watts: []float64{4, 1}}
}

// Power returns the total active power of the solution's cores. Core
// types beyond the model's table draw no power.
func (m PowerModel) Power(s Solution) float64 {
	used := s.Usage(len(m.Watts))
	p := 0.0
	for v, u := range used {
		p += float64(u) * m.Watts[v]
	}
	return p
}

// EnergyPerFrame returns the energy (joules) spent per processed frame:
// active power times the pipeline period (periodMicros in µs).
func (m PowerModel) EnergyPerFrame(s Solution, periodMicros float64) float64 {
	return m.Power(s) * periodMicros * 1e-6
}

// Fuse implements the co-location post-pass: adjacent single-core stages
// of the same core type are merged onto one core whenever the fused
// stage still respects the target period, freeing one core per fusion
// with no throughput cost. (A fused stage containing a sequential task
// weighs the plain sum of its tasks — exactly the time-multiplexed
// execution of both stages on one core.) The pass runs greedily left to
// right until no fusion applies.
func (s Solution) Fuse(c *Chain, target float64) Solution {
	if s.IsEmpty() {
		return s
	}
	stages := append([]Stage(nil), s.Stages...)
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(stages); i++ {
			a, b := stages[i], stages[i+1]
			if a.Cores != 1 || b.Cores != 1 || a.Type != b.Type {
				continue
			}
			if c.Weight(a.Start, b.End, 1, a.Type) > target {
				continue
			}
			stages[i] = Stage{Start: a.Start, End: b.End, Cores: 1, Type: a.Type}
			stages = append(stages[:i+1], stages[i+2:]...)
			changed = true
		}
	}
	return Solution{Stages: stages}
}
