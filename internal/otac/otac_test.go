package otac

import (
	"math"
	"math/rand"
	"testing"

	"ampsched/internal/brute"
	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/herad"
)

func task(wb, wl float64, rep bool) core.Task {
	return core.Task{Weight: core.Weights(wb, wl), Replicable: rep}
}

func TestDegenerate(t *testing.T) {
	c := core.MustChain([]core.Task{task(5, 10, true)})
	if s := Schedule(c, 0, core.Big); !s.IsEmpty() {
		t.Error("0 cores should be empty")
	}
	if s := Schedule(c, -3, core.Little); !s.IsEmpty() {
		t.Error("negative cores should be empty")
	}
}

func TestValiditySingleType(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(25)
		sr := []float64{0, 0.2, 0.5, 0.8, 1}[rng.Intn(5)]
		c := chaingen.Generate(chaingen.Default(n, sr), rng)
		cores := 1 + rng.Intn(8)
		for _, v := range []core.CoreType{core.Big, core.Little} {
			s := Schedule(c, cores, v)
			if s.IsEmpty() {
				t.Fatalf("iter %d: OTAC(%v) found no schedule", iter, v)
			}
			r := core.Res(0, 0).With(v, cores)
			if err := s.Validate(c, r); err != nil {
				t.Fatalf("iter %d: OTAC(%v) invalid: %v", iter, v, err)
			}
			for _, st := range s.Stages {
				if st.Type != v {
					t.Fatalf("iter %d: OTAC(%v) used a %v stage", iter, v, st.Type)
				}
			}
		}
	}
}

func TestOptimalOnHomogeneousPlatforms(t *testing.T) {
	// OTAC is optimal for homogeneous resources: it must match HeRAD
	// restricted to the same single core type, and the brute force.
	rng := rand.New(rand.NewSource(107))
	for iter := 0; iter < 60; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(9), 0.5), rng)
		cores := 1 + rng.Intn(4)
		for _, v := range []core.CoreType{core.Big, core.Little} {
			r := core.Res(0, 0).With(v, cores)
			got := Schedule(c, cores, v).Period(c)
			wantH := herad.Period(c, r)
			wantB := brute.MinPeriod(c, r)
			if math.Abs(got-wantB) > 1e-9 || math.Abs(wantH-wantB) > 1e-9 {
				t.Fatalf("iter %d OTAC(%v,%d): otac=%v herad=%v brute=%v\nchain=%+v",
					iter, v, cores, got, wantH, wantB, c.Tasks())
			}
		}
	}
}

func TestNeverBelowHeterogeneousOptimum(t *testing.T) {
	// Using a single core type can never beat the two-type optimum with
	// the same pool partitioned as (b, l).
	rng := rand.New(rand.NewSource(109))
	for iter := 0; iter < 40; iter++ {
		c := chaingen.Generate(chaingen.Default(1+rng.Intn(12), 0.5), rng)
		b, l := 1+rng.Intn(4), 1+rng.Intn(4)
		opt := herad.Period(c, core.Res(b, l))
		if p := Schedule(c, b, core.Big).Period(c); p < opt-1e-9 {
			t.Fatalf("OTAC(B) %v beats heterogeneous optimum %v", p, opt)
		}
		if p := Schedule(c, l, core.Little).Period(c); p < opt-1e-9 {
			t.Fatalf("OTAC(L) %v beats heterogeneous optimum %v", p, opt)
		}
	}
}

func TestFullyReplicableSingleStage(t *testing.T) {
	// When all tasks are replicable, the homogeneous optimum is a single
	// stage replicated over all cores (Benoit & Robert); OTAC must reach
	// that period.
	var tasks []core.Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, task(10, 20, true))
	}
	c := core.MustChain(tasks)
	s := Schedule(c, 4, core.Big)
	if p, want := s.Period(c), 50.0/4; math.Abs(p-want) > 1e-9 {
		t.Errorf("period %v, want %v (%v)", p, want, s)
	}
}
