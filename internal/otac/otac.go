// Package otac implements OTAC (Optimal scheduling for pipelined and
// replicated TAsk Chains), the homogeneous-resource baseline of the paper
// (Orhan et al. 2023). OTAC runs the common binary search (sched.Schedule)
// with a greedy ComputeSolution that packs stages on a single core type.
// It is optimal for homogeneous platforms; the paper evaluates it as
// OTAC (B) (big cores only) and OTAC (L) (little cores only) to show the
// cost of ignoring heterogeneity.
package otac

import (
	"ampsched/internal/core"
	"ampsched/internal/sched"
)

// Schedule computes an OTAC schedule of c over cores homogeneous cores of
// type v. It returns the empty solution when cores ≤ 0.
func Schedule(c *core.Chain, cores int, v core.CoreType) core.Solution {
	if cores <= 0 {
		return core.Solution{}
	}
	r := core.Resources{}
	if v == core.Big {
		r.Big = cores
	} else {
		r.Little = cores
	}
	return sched.Schedule(c, r, Compute(v))
}

// Compute returns OTAC's ComputeSolution restricted to core type v, for use
// with sched.Schedule/ScheduleBounds. Only the v component of the resources
// is consumed.
func Compute(v core.CoreType) sched.ComputeSolutionFunc {
	return func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
		return computeSolution(ch, s, res.Of(v), v, target)
	}
}

// computeSolution greedily builds stages left to right with ComputeStage,
// consuming cores of the single type v. It returns the empty solution as
// soon as a stage cannot respect the target with the remaining cores.
func computeSolution(c *core.Chain, s, avail int, v core.CoreType, target float64) core.Solution {
	var stages []core.Stage
	for s < c.Len() {
		if avail <= 0 {
			return core.Solution{}
		}
		e, u := sched.ComputeStage(c, s, avail, v, target)
		st := core.Stage{Start: s, End: e, Cores: u, Type: v}
		if u > avail || c.Weight(s, e, u, v) > target {
			return core.Solution{}
		}
		stages = append(stages, st)
		avail -= u
		s = e + 1
	}
	return core.Solution{Stages: stages}
}
