// Package otac implements OTAC (Optimal scheduling for pipelined and
// replicated TAsk Chains), the homogeneous-resource baseline of the paper
// (Orhan et al. 2023). OTAC runs the common binary search (sched.Schedule)
// with a greedy ComputeSolution that packs stages on a single core type.
// It is optimal for homogeneous platforms; the paper evaluates it as
// OTAC (B) (big cores only) and OTAC (L) (little cores only) to show the
// cost of ignoring heterogeneity.
package otac

import (
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/sched"
)

// Metrics holds OTAC's instrumentation handles. The zero value is the
// disabled sink.
type Metrics struct {
	// ComputeCalls counts ComputeSolution invocations (binary-search
	// probes reaching OTAC's greedy packer).
	ComputeCalls *obs.Counter
	// Stages counts the stages the greedy packer built, including those
	// of probes that were later discarded.
	Stages *obs.Counter
	// Sched carries the shared binary-search/stage-packing series and the
	// decision-journal scope (Sched.Trace): every greedy placement emits
	// a "stage_placed" event, failed probes an "exhausted" event.
	Sched sched.Metrics
}

// MetricsFrom resolves OTAC's series in r (nil r disables).
func MetricsFrom(r *obs.Registry) Metrics {
	return Metrics{
		ComputeCalls: r.Counter("otac.compute.calls"),
		Stages:       r.Counter("otac.stages.built"),
		Sched:        sched.MetricsFrom(r),
	}
}

// Schedule computes an OTAC schedule of c over cores homogeneous cores of
// type v. It returns the empty solution when cores ≤ 0.
func Schedule(c *core.Chain, cores int, v core.CoreType) core.Solution {
	if cores <= 0 {
		return core.Solution{}
	}
	return sched.Schedule(c, core.Res(0, 0).With(v, cores), Compute(v))
}

// Compute returns OTAC's ComputeSolution restricted to core type v, for use
// with sched.Schedule/ScheduleBounds. Only the v component of the resources
// is consumed.
func Compute(v core.CoreType) sched.ComputeSolutionFunc {
	return func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
		return computeSolution(ch, s, res.Count(v), v, target, Metrics{})
	}
}

// ComputeObs is Compute reporting into m, for use with
// sched.ScheduleM/ScheduleBoundsM.
func ComputeObs(v core.CoreType, m Metrics) sched.ComputeSolutionFunc {
	return func(ch *core.Chain, s int, res core.Resources, target float64) core.Solution {
		return computeSolution(ch, s, res.Count(v), v, target, m)
	}
}

// computeSolution greedily builds stages left to right with ComputeStage,
// consuming cores of the single type v. It returns the empty solution as
// soon as a stage cannot respect the target with the remaining cores.
func computeSolution(c *core.Chain, s, avail int, v core.CoreType, target float64, m Metrics) core.Solution {
	m.ComputeCalls.Inc()
	var stages []core.Stage
	for s < c.Len() {
		if avail <= 0 {
			if m.Sched.Trace.Enabled() {
				m.Sched.Trace.Event("exhausted").Int("first_task", s).Str("type", v.String())
			}
			return core.Solution{}
		}
		e, u := sched.ComputeStageM(c, s, avail, v, target, m.Sched)
		st := core.Stage{Start: s, End: e, Cores: u, Type: v}
		if u > avail || c.Weight(s, e, u, v) > target {
			if m.Sched.Trace.Enabled() {
				m.Sched.Trace.Event("exhausted").Int("first_task", s).Str("type", v.String()).
					Int("cores_needed", u).Int("avail", avail)
			}
			return core.Solution{}
		}
		m.Stages.Inc()
		if m.Sched.Trace.Enabled() {
			m.Sched.Trace.Event("stage_placed").Int("first_task", s).Int("end", e).
				Int("cores", u).Str("type", v.String())
		}
		stages = append(stages, st)
		avail -= u
		s = e + 1
	}
	return core.Solution{Stages: stages}
}
