package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/experiments"
)

func TestLoadChainFromJSON(t *testing.T) {
	c, interframe, err := loadChain("testdata/chain.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 || interframe != 1 {
		t.Fatalf("len=%d interframe=%d", c.Len(), interframe)
	}
	if c.Task(1).Name != "filter" || !c.Task(1).Replicable {
		t.Errorf("task 1: %+v", c.Task(1))
	}
	if c.Task(2).W(core.Little) != 700 {
		t.Errorf("task 2 little weight %v", c.Task(2).W(core.Little))
	}
}

func TestLoadChainPlatforms(t *testing.T) {
	for _, name := range []string{"mac", "MacStudio", "x7", "X7Ti"} {
		c, interframe, err := loadChain("", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Len() != 23 || interframe < 4 {
			t.Errorf("%s: len=%d interframe=%d", name, c.Len(), interframe)
		}
	}
}

func TestLoadChainErrors(t *testing.T) {
	if _, _, err := loadChain("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, _, err := loadChain("testdata/chain.json", "mac"); err == nil {
		t.Error("both sources accepted")
	}
	if _, _, err := loadChain("", "commodore64"); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, _, err := loadChain("testdata/missing.json", ""); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, err := loadChain("main.go", ""); err == nil {
		t.Error("non-JSON file accepted")
	}
}

func TestStrategyList(t *testing.T) {
	all, err := strategyList("all")
	if err != nil || len(all) != 5 {
		t.Fatalf("all: %v %v", all, err)
	}
	for i, name := range experiments.Strategies {
		if all[i].Name() != name {
			t.Errorf("all[%d] = %q, want %q", i, all[i].Name(), name)
		}
	}
	for in, want := range map[string]string{
		"herad":       experiments.StratHeRAD,
		"2catac":      experiments.StratTwoCAT,
		"twocatac":    experiments.StratTwoCAT,
		"FERTAC":      experiments.StratFERTAC,
		"otac-b":      experiments.StratOTACB,
		"OTACL":       experiments.StratOTACL,
		"ALL":         "", // expands, checked above; here: no error
		"2catac-memo": "2CATAC (memo)",
		"brute":       "Brute",
	} {
		got, err := strategyList(in)
		if err != nil {
			t.Errorf("strategyList(%q): %v", in, err)
			continue
		}
		if want != "" && (len(got) != 1 || got[0].Name() != want) {
			t.Errorf("strategyList(%q) = %v", in, got)
		}
	}
	if _, err := strategyList("banana"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestMainErrEndToEnd(t *testing.T) {
	// Whole-pipeline smoke test through the CLI entry point (no -run).
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "all", simulate: true, frames: 10, scale: 1, interframe: 1,
		colocate: true, power: true}); err != nil {
		t.Fatal(err)
	}
	// JSON output path.
	if err := mainErr(config{platform: "mac", big: 8, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		json: true}); err != nil {
		t.Fatal(err)
	}
	// No resources.
	if err := mainErr(config{input: "testdata/chain.json",
		strategy: "herad", frames: 10, scale: 1, interframe: 1}); err == nil {
		t.Error("zero resources accepted")
	}
}

func TestMainErrTraceRequiresRun(t *testing.T) {
	err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		trace: filepath.Join(t.TempDir(), "trace.json")})
	if err == nil {
		t.Fatal("-trace without -run accepted")
	}
	if !strings.Contains(err.Error(), "-trace requires -run") {
		t.Errorf("error %q does not name the required flag combination", err)
	}
}

func TestMainErrWatch(t *testing.T) {
	// -watch without -run is rejected, like -trace.
	err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		watch: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("-watch without -run accepted")
	}
	if !strings.Contains(err.Error(), "-watch requires -run") {
		t.Errorf("error %q does not name the required flag combination", err)
	}
	// Live view during -run: at least the final window line must appear,
	// with per-stage occupancy and weight estimates.
	var buf bytes.Buffer
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", run: true, frames: 60, scale: 1, interframe: 1,
		watch: 20 * time.Millisecond, out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "watch +") || !strings.Contains(out, "occ") || !strings.Contains(out, "p95") {
		t.Errorf("no live telemetry line in output:\n%s", out)
	}
	// -watch composes with -stats: the sampler publishes series under the
	// strategy slug and the stats table includes them.
	buf.Reset()
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", run: true, frames: 40, scale: 1, interframe: 1,
		watch: 20 * time.Millisecond, stats: true, out: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "streampu.latency_us.stage0") {
		t.Errorf("stats output missing sampled latency series:\n%s", buf.String())
	}
}

func TestMainErrStats(t *testing.T) {
	// -stats with every strategy: the metric table renders after the
	// schedules and collection does not disturb the results.
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "all", frames: 10, scale: 1, interframe: 1,
		stats: true}); err != nil {
		t.Fatal(err)
	}
	// -stats -json emits the obs report after the schedule objects.
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "fertac", frames: 10, scale: 1, interframe: 1,
		json: true, stats: true}); err != nil {
		t.Fatal(err)
	}
}

func TestMainErrProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		cpuProfile: cpu, memProfile: mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestMainErrEpsilonAndReplan(t *testing.T) {
	// -epsilon and -replan together: the demo warm-starts the incumbent
	// planner through the tail edits and cross-checks every incremental
	// schedule against a from-scratch run, so a pass here is the planner's
	// bit-identity contract exercised end-to-end through the CLI.
	var out strings.Builder
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		epsilon: 0.05, replan: 3, out: &out}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"# replan: 3 tail reweighs", "warm starts",
		"all schedules match from-scratch"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Invalid slack and edit counts are rejected before any planning.
	for _, cfg := range []config{
		{input: "testdata/chain.json", big: 2, little: 2, strategy: "herad",
			frames: 10, scale: 1, interframe: 1, epsilon: -0.1},
		{input: "testdata/chain.json", big: 2, little: 2, strategy: "herad",
			frames: 10, scale: 1, interframe: 1, epsilon: math.NaN()},
		{input: "testdata/chain.json", big: 2, little: 2, strategy: "herad",
			frames: 10, scale: 1, interframe: 1, replan: -1},
	} {
		if err := mainErr(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
