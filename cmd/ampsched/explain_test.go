package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ampsched/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// explainConfig is the pinned invocation behind testdata/explain.golden:
// the 4-task example chain on 2 big + 2 little cores, all strategies.
func explainConfig(out *bytes.Buffer) config {
	return config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "all", frames: 10, scale: 1, interframe: 1,
		explain: true, out: out}
}

// TestExplainGolden pins the full -explain narrative for the example chain
// under every strategy. The output is deterministic by construction (no
// wall-clock data enters the journal); regenerate with go test -update
// after intentional format or event changes.
func TestExplainGolden(t *testing.T) {
	var out bytes.Buffer
	if err := mainErr(explainConfig(&out)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "explain.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./cmd/ampsched -run TestExplainGolden -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-explain output differs from %s (regenerate with -update if intended)\ngot:\n%s",
			golden, out.String())
	}
}

// TestExplainDeterministic runs the same -explain invocation twice and
// requires byte-identical output — the acceptance criterion backing the
// golden file.
func TestExplainDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := mainErr(explainConfig(&a)); err != nil {
		t.Fatal(err)
	}
	if err := mainErr(explainConfig(&b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("-explain output differs between two identical runs:\n%s\nvs:\n%s",
			a.String(), b.String())
	}
}

// TestTraceSchedDeterministic pins the other half of the criterion: the
// JSONL journal and its Chrome view are byte-identical across runs, and
// the JSONL round-trips through the canonical decoder.
func TestTraceSchedDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")}
	var files [2][]byte
	var chromes [2][]byte
	for i, p := range paths {
		var out bytes.Buffer
		cfg := explainConfig(&out)
		cfg.explain = false
		cfg.traceSched = p
		if err := mainErr(cfg); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("journal not written: %v", err)
		}
		files[i] = data
		cdata, err := os.ReadFile(chromeSiblingPath(p))
		if err != nil {
			t.Fatalf("chrome view not written: %v", err)
		}
		chromes[i] = cdata
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Error("-trace-sched JSONL differs between two identical runs")
	}
	if !bytes.Equal(chromes[0], chromes[1]) {
		t.Error("-trace-sched Chrome view differs between two identical runs")
	}
	recs, err := trace.ReadJSONL(bytes.NewReader(files[0]))
	if err != nil {
		t.Fatalf("journal does not round-trip: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("journal has no records")
	}
	var re bytes.Buffer
	if err := trace.WriteRecords(&re, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), files[0]) {
		t.Error("decode→re-encode of the journal is not byte-identical")
	}
}

// TestMainErrFlushesArtifactsOnFailure forces a failing strategy step
// (-strategy all with little=0 makes OTAC (L) fail after the other four
// strategies succeed) and requires that the decision journal, its Chrome
// view and the heap profile are still written by the deferred exit paths.
func TestMainErrFlushesArtifactsOnFailure(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sched.jsonl")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := mainErr(config{input: "testdata/chain.json", big: 2, little: 0,
		strategy: "all", frames: 10, scale: 1, interframe: 1,
		traceSched: journal, memProfile: mem, out: &out})
	if err == nil {
		t.Fatal("expected OTAC (L) to fail with little=0")
	}
	if !strings.Contains(err.Error(), "OTAC (L)") {
		t.Fatalf("unexpected error: %v", err)
	}
	data, rerr := os.ReadFile(journal)
	if rerr != nil {
		t.Fatalf("journal not flushed on failure: %v", rerr)
	}
	// The journal must contain the work done before the failure and the
	// failing strategy's own span.
	for _, want := range []string{`"name":"HeRAD"`, `"name":"OTAC (L)"`, `"name":"no_schedule"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("flushed journal missing %s", want)
		}
	}
	if _, err := trace.ReadJSONL(bytes.NewReader(data)); err != nil {
		t.Errorf("flushed journal is not valid JSONL: %v", err)
	}
	if st, err := os.Stat(chromeSiblingPath(journal)); err != nil || st.Size() == 0 {
		t.Errorf("chrome view not flushed on failure: %v", err)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Errorf("heap profile not flushed on failure: %v", err)
	}
}

// TestMainErrListen serves the exposition endpoints during a run; the
// printed line names the bound address.
func TestMainErrListen(t *testing.T) {
	var out bytes.Buffer
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		listen: "127.0.0.1:0", out: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# serving metrics and pprof on http://127.0.0.1:") {
		t.Errorf("missing listen banner in output:\n%s", out.String())
	}
	// A bad address must fail up front.
	if err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", frames: 10, scale: 1, interframe: 1,
		listen: "256.0.0.1:bad", out: &out}); err == nil {
		t.Error("bad -listen address accepted")
	}
}

func TestChromeSiblingPath(t *testing.T) {
	for in, want := range map[string]string{
		"sched.jsonl":    "sched.chrome.json",
		"/tmp/a/b.jsonl": "/tmp/a/b.chrome.json",
		"journal":        "journal.chrome.json",
		"trace.chrome":   "trace.chrome.chrome.json",
	} {
		if got := chromeSiblingPath(in); got != want {
			t.Errorf("chromeSiblingPath(%q) = %q, want %q", in, got, want)
		}
	}
}
