// Command ampsched schedules a partially-replicable task chain on k
// types of resources (big/little cores in the paper's two-type model,
// arbitrary type tables via -resources) and optionally validates the
// schedule by discrete-event simulation or by executing it on the
// streampu runtime with latency-modeled tasks.
//
// Usage:
//
//	ampsched -big 8 -little 2 [flags]
//	ampsched -resources 4B,2M,8L [flags]
//
// The chain comes from -input (JSON) or -platform (the embedded DVB-S2
// profiles "mac" / "x7"). JSON format (two-type chains may use the named
// big/little fields, k-type chains list one weight per core type):
//
//	{"tasks": [{"name": "t1", "big": 52.3, "little": 248.3, "replicable": false}, ...]}
//	{"tasks": [{"name": "t1", "weights": [52.3, 110.0, 248.3], "replicable": false}, ...]}
//
// Flags:
//
//	-resources R  per-type core counts as COUNT[NAME] components, e.g.
//	              "4B,2M,8L" (type order is precedence order; exclusive
//	              with -big/-little). Strategies that only support the
//	              paper's two-type model reject other type counts.
//	-strategy S   herad|2catac|fertac|otac-b|otac-l|all (default herad);
//	              also the hidden registry entries 2catac-memo and brute
//	              (exhaustive reference — chains of ~12 tasks at most)
//	-simulate     validate with the discrete-event simulator
//	-run          execute on the streampu runtime (wall clock)
//	-frames N     frames for -run (default 100)
//	-scale S      time scale for -run (default 10)
//	-interframe N frames per pipeline slot for throughput reporting
//	-json         print the schedule as JSON
//	-colocate     fuse adjacent light single-core stages (§VII extension)
//	-workers N    wavefront workers for HeRAD's DP fill (0 = one per CPU,
//	              1 = serial); the schedule is bit-identical for every
//	              value, only the wall clock changes
//	-epsilon E    ε-optimal beam pruning for HeRAD's DP fill: the period
//	              is guaranteed within (1+E)·optimal, large chains fill
//	              several times faster (DESIGN.md §4g). 0 (the default)
//	              is the exact fill; other strategies ignore the flag
//	-replan N     demo of the incremental re-planner: N deterministic
//	              tail reweighs of the chain resolved through
//	              strategy.ReplanBatch, each warm-started schedule
//	              cross-checked against a from-scratch run (hard error
//	              on any divergence), with the saved DP row work reported
//	-power        report watts and mJ/frame under the default power model
//	-trace FILE   with -run: dump a Chrome trace of the pipeline execution
//	-stats        report scheduler metrics (binary-search probes, DP
//	              cells, recursion nodes, …) after the schedules: a table
//	              in text mode, an internal/obs report in -json mode
//	-explain      print the decision-trace narrative after the schedules:
//	              why each strategy probed, pruned and placed what it did
//	-trace-sched FILE
//	              write the decision journal as canonical JSONL to FILE
//	              plus a Chrome-trace view (chrome://tracing) to
//	              FILE.chrome.json; written even when a later step fails
//	-listen ADDR  serve /metrics, /metrics.json, /healthz, /readyz,
//	              /debug/flightz, /debug/vars and /debug/pprof on ADDR
//	              for the duration of the run
//	-slo SPECS    comma-separated SLOs ("[name=]metric:pQQ<=threshold",
//	              e.g. "plan=strategy.plan_us:p95<=5000") evaluated on
//	              /metrics and /readyz; requires -listen
//	-log-json F   write the structured run log as JSONL to F; every
//	              record is also folded into the flight recorder
//	-flight-dump F
//	              write the flight recorder's deterministic dump to F at
//	              exit (plan/replan/drift/stall/drop/log events)
//	-cpuprofile F write a pprof CPU profile of the whole invocation
//	-memprofile F write a pprof heap profile taken at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
	obshttp "ampsched/internal/obs/http"
	"ampsched/internal/platform"
	"ampsched/internal/report"
	"ampsched/internal/strategy"
	"ampsched/internal/streampu"
	"ampsched/internal/trace"
)

type jsonChain struct {
	Tasks []core.Task `json:"tasks"`
}

type jsonStage struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Cores int    `json:"cores"`
	Type  string `json:"type"`
}

type jsonSolution struct {
	Strategy string      `json:"strategy"`
	Period   float64     `json:"period"`
	Stages   []jsonStage `json:"stages"`
	BigUsed  int         `json:"big_used"`
	LitUsed  int         `json:"little_used"`
	// Usage lists the per-type core usage when the platform declares a
	// type table other than the paper's two-type one.
	Usage []int `json:"usage,omitempty"`
}

// config carries every CLI flag; mainErr consumes it so tests can drive
// the whole pipeline without a flag.FlagSet.
type config struct {
	input      string // JSON task-chain file
	platform   string // embedded DVB-S2 profile name
	big        int
	little     int
	resources  string // k-type resource spec, e.g. "4B,2M,8L"
	strategy   string
	simulate   bool
	run        bool
	frames     int
	scale      float64
	interframe int
	json       bool
	colocate   bool
	power      bool
	workers    int           // wavefront workers for HeRAD's DP fill (0 = GOMAXPROCS)
	epsilon    float64       // ε-beam slack for HeRAD (0 = exact fill)
	replan     int           // tail reweighs for the incremental re-plan demo (0 = off)
	trace      string        // Chrome trace output path (requires run)
	watch      time.Duration // live telemetry interval for -run (0 = off)
	stats      bool          // report scheduler metrics after the schedules
	explain    bool          // print the decision-trace narrative
	traceSched string        // decision-journal JSONL output path
	listen     string        // live exposition address (metrics + pprof)
	slo        string        // SLO specs for /metrics and /readyz (requires listen)
	logJSON    string        // structured run-log JSONL output path
	flightDump string        // flight-recorder dump output path
	cpuProfile string        // pprof CPU profile output path
	memProfile string        // pprof heap profile output path

	// logNoTime drops the "time" attribute from -log-json lines so tests
	// can assert byte-deterministic logs. Not exposed as a flag.
	logNoTime bool

	// out receives everything the command prints to stdout. Tests inject
	// a buffer; nil means os.Stdout.
	out io.Writer
}

func main() {
	var cfg config
	flag.StringVar(&cfg.input, "input", "", "JSON task-chain file")
	flag.StringVar(&cfg.platform, "platform", "", `embedded DVB-S2 profile: "mac" or "x7"`)
	flag.IntVar(&cfg.big, "big", 0, "number of big cores")
	flag.IntVar(&cfg.little, "little", 0, "number of little cores")
	flag.StringVar(&cfg.resources, "resources", "", `per-type core counts, e.g. "4B,2M,8L" (exclusive with -big/-little)`)
	flag.StringVar(&cfg.strategy, "strategy", "herad", "herad|2catac|fertac|otac-b|otac-l|all (or 2catac-memo, brute)")
	flag.BoolVar(&cfg.simulate, "simulate", false, "validate with the discrete-event simulator")
	flag.BoolVar(&cfg.run, "run", false, "execute on the streampu runtime")
	flag.IntVar(&cfg.frames, "frames", 100, "frames for -run")
	flag.Float64Var(&cfg.scale, "scale", 10, "time scale for -run")
	flag.IntVar(&cfg.interframe, "interframe", 1, "frames per pipeline slot for FPS reporting")
	flag.BoolVar(&cfg.json, "json", false, "print the schedule as JSON")
	flag.BoolVar(&cfg.colocate, "colocate", false, "fuse adjacent light single-core stages (saves cores at equal period)")
	flag.BoolVar(&cfg.power, "power", false, "report power/energy under the default power model")
	flag.IntVar(&cfg.workers, "workers", 0, "wavefront workers for HeRAD's DP fill (0 = one per CPU, 1 = serial; schedules are identical)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0, "ε-beam slack for HeRAD: period within (1+ε)·optimal, faster fill (0 = exact)")
	flag.IntVar(&cfg.replan, "replan", 0, "run N deterministic tail reweighs through the incremental re-planner and report the saved row work")
	flag.StringVar(&cfg.trace, "trace", "", "with -run: write a Chrome trace (chrome://tracing) to this file")
	flag.DurationVar(&cfg.watch, "watch", 0, `with -run: print live per-stage occupancy/latency every interval (e.g. "500ms") and watch for weight drift`)
	flag.BoolVar(&cfg.stats, "stats", false, "report scheduler metrics (table, or obs report in -json mode)")
	flag.BoolVar(&cfg.explain, "explain", false, "print the decision-trace narrative after the schedules")
	flag.StringVar(&cfg.traceSched, "trace-sched", "", "write the decision journal (JSONL + .chrome.json view) to this file")
	flag.StringVar(&cfg.listen, "listen", "", `serve /metrics and /debug/pprof on this address (e.g. "127.0.0.1:8080")`)
	flag.StringVar(&cfg.slo, "slo", "", `comma-separated SLOs ("[name=]metric:pQQ<=threshold") for /metrics and /readyz; requires -listen`)
	flag.StringVar(&cfg.logJSON, "log-json", "", "write the structured run log as JSONL to this file")
	flag.StringVar(&cfg.flightDump, "flight-dump", "", "write the flight recorder's dump to this file at exit")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	if err := mainErr(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ampsched:", err)
		os.Exit(1)
	}
}

func mainErr(cfg config) error {
	out := cfg.out
	if out == nil {
		out = os.Stdout
	}
	if cfg.trace != "" && !cfg.run {
		return fmt.Errorf("-trace requires -run: the Chrome trace records the streampu pipeline execution (pass -run, or drop -trace)")
	}
	if cfg.watch != 0 && !cfg.run {
		return fmt.Errorf("-watch requires -run: the live view samples the streampu pipeline while it executes (pass -run, or drop -watch)")
	}
	if cfg.watch < 0 {
		return fmt.Errorf("-watch must be a positive interval, got %v", cfg.watch)
	}
	if cfg.epsilon < 0 || math.IsNaN(cfg.epsilon) {
		return fmt.Errorf("-epsilon must be a non-negative period slack, got %v", cfg.epsilon)
	}
	if cfg.replan < 0 {
		return fmt.Errorf("-replan must be a non-negative edit count, got %d", cfg.replan)
	}
	if cfg.slo != "" && cfg.listen == "" {
		return fmt.Errorf("-slo requires -listen: SLOs are evaluated on the live /metrics and /readyz endpoints (pass -listen, or drop -slo)")
	}
	slos, err := obs.ParseSLOs(cfg.slo)
	if err != nil {
		return err
	}
	r, err := resolveResources(cfg)
	if err != nil {
		return err
	}

	// The flight recorder and the structured run log are pure sinks,
	// created only when some observability surface asked for them so the
	// default run keeps its exact fast paths (in particular streampu's
	// plain channel handoff). A zero-value logger setup discards records.
	var rec *flight.Recorder
	if cfg.logJSON != "" || cfg.flightDump != "" || cfg.listen != "" {
		rec = flight.New(0)
	}
	var logSink io.Writer
	if cfg.logJSON != "" {
		f, err := os.Create(cfg.logJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		logSink = f
	}
	logger := slog.New(flight.NewHandler(rec, flight.HandlerOptions{Sink: logSink, DropTime: cfg.logNoTime}))
	// warn reports a non-fatal artifact failure on stderr and, structured,
	// through the run log — the one place the CLI writes ad-hoc errors.
	warn := func(msg string, err error) {
		logger.Error(msg, "err", err)
		fmt.Fprintln(os.Stderr, "ampsched:", err)
	}
	// Exit artifacts — profiles and the decision journal — are registered
	// as defers here, before any work that can fail, so a failing strategy
	// or runtime step still flushes everything gathered up to the error.
	// LIFO order: the CPU profile is stopped before its file is closed.
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memProfile != "" {
		defer func() {
			if err := writeHeapProfile(cfg.memProfile); err != nil {
				warn("heap profile", err)
			}
		}()
	}
	if cfg.flightDump != "" {
		defer func() {
			if err := writeFlightDump(rec, cfg.flightDump); err != nil {
				warn("flight dump", err)
			}
		}()
	}
	var journal *trace.Journal
	var runSpan *trace.Span
	if cfg.explain || cfg.traceSched != "" {
		journal = trace.New()
		runSpan = journal.Root().Str("tool", "ampsched").Str("strategy", cfg.strategy)
		if r.NumTypes() == 2 {
			runSpan.Int("big", r.Count(core.Big)).Int("little", r.Count(core.Little))
		} else {
			runSpan.Str("resources", r.String())
		}
		runSpan.Bool("colocate", cfg.colocate)
	}
	if cfg.traceSched != "" {
		defer func() {
			if err := writeJournal(journal, cfg.traceSched); err != nil {
				warn("decision journal", err)
			}
		}()
	}

	chain, defIF, err := loadChain(cfg.input, cfg.platform)
	if err != nil {
		return err
	}
	interframe := cfg.interframe
	if interframe == 1 && defIF > 1 {
		interframe = defIF
	}
	if r.Total() <= 0 {
		return fmt.Errorf("no resources: pass -resources, or -big and/or -little")
	}

	scheds, err := strategyList(cfg.strategy)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if cfg.stats || cfg.listen != "" {
		reg = obs.NewRegistry()
	}
	if cfg.listen != "" {
		srv, err := obshttp.ServeOpts(cfg.listen, "ampsched", reg,
			obshttp.HandlerOptions{Flight: rec, SLOs: slos})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "# serving metrics and pprof on http://%s\n", srv.Addr())
		logger.Info("serving", "addr", srv.Addr(), "slos", len(slos))
	}
	header := []string{"Strategy", "Period", "FPS", "Pipeline decomposition"}
	for v := 0; v < r.NumTypes(); v++ {
		header = append(header, strings.ToLower(r.TypeName(core.CoreType(v))))
	}
	if cfg.power {
		header = append(header, "W", "mJ/frame")
	}
	t := report.NewTable(header...)
	pm := core.DefaultPowerModel()
	opts := strategy.Options{Colocate: cfg.colocate, Metrics: reg, Trace: runSpan, Workers: cfg.workers, Epsilon: cfg.epsilon, Flight: rec}
	for _, sc := range scheds {
		name := sc.Name()
		if err := strategy.CheckTypes(sc, chain, r); err != nil {
			return err
		}
		sol := sc.Schedule(chain, r, opts)
		if sol.IsEmpty() {
			return fmt.Errorf("%s found no schedule for R=%v", name, r)
		}
		if err := sol.Validate(chain, r); err != nil {
			return fmt.Errorf("%s produced an invalid schedule: %v", name, err)
		}
		p := sol.Period(chain)
		usage := sol.Usage(r.NumTypes())
		logger.Info("schedule", "strategy", name, "period", p, "stages", len(sol.Stages))
		if cfg.json {
			js := jsonSolution{Strategy: name, Period: p, BigUsed: usage[0]}
			if len(usage) > 1 {
				js.LitUsed = usage[1]
			}
			if r.NumTypes() != 2 {
				js.Usage = usage
			}
			for _, st := range sol.Stages {
				js.Stages = append(js.Stages, jsonStage{
					Start: st.Start, End: st.End, Cores: st.Cores, Type: st.Type.String(),
				})
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(js); err != nil {
				return err
			}
		} else {
			row := []any{name, p, fmt.Sprintf("%.0f", core.Throughput(p, interframe)),
				sol.String()}
			for _, u := range usage {
				row = append(row, u)
			}
			if cfg.power {
				row = append(row, pm.Power(sol), 1000*pm.EnergyPerFrame(sol, p))
			}
			t.AddRow(row...)
		}
		if cfg.simulate {
			scfg := desim.Config{Frames: 2000, QueueCap: 2}
			if rec != nil {
				// The sim-clock sample pass feeds the flight recorder
				// deterministic per-window occupancy events — the black box
				// for a run that never touched the wall clock.
				scfg.Sample = &desim.SampleConfig{Flight: rec}
			}
			res, err := desim.Simulate(chain, sol, scfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# %s desim: period %.1f, FPS %.0f, latency %.1f\n",
				name, res.Period, res.Throughput(interframe), res.Latency)
			logger.Info("simulate", "strategy", name, "period", res.Period, "latency", res.Latency)
		}
		if cfg.run {
			popt := streampu.Options{TimeScale: cfg.scale, QueueCap: 2, Flight: rec}
			var tracer *streampu.Tracer
			if cfg.trace != "" || cfg.stats {
				tracer = &streampu.Tracer{}
				popt.Tracer = tracer
			}
			var sampler *streampu.Sampler
			var drift *obs.DriftDetector
			if cfg.watch > 0 || cfg.stats {
				// The live telemetry lands under the strategy's slug, next to
				// its planning series; the drift detector watches the
				// schedule's own per-stage weights.
				sreg := strategy.MetricsScope(sc, reg)
				planned := make([]float64, len(sol.Stages))
				for i, st := range sol.Stages {
					planned[i] = chain.SumW(st.Start, st.End, st.Type)
				}
				drift = obs.NewDriftDetector(planned, obs.DriftConfig{}, sreg, runSpan)
				drift.Flight = rec
				sampler = streampu.NewSampler(sreg)
				sampler.Drift = drift
				sampler.Flight = rec
				popt.Sampler = sampler
			}
			pipe, err := streampu.New(streampu.TimedChain(chain), sol, popt)
			if err != nil {
				return err
			}
			stopWatch := startWatch(out, name, cfg.watch, sampler, drift)
			st, err := pipe.Run(cfg.frames, nil)
			stopWatch()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# %s runtime: measured period %.1f, FPS %.0f (%d frames, %.2fs wall)\n",
				name, st.PeriodMicros, st.Throughput(interframe), st.Frames, st.Elapsed.Seconds())
			logger.Info("run", "strategy", name, "period", st.PeriodMicros,
				"frames", st.Frames, "errored", st.Errored)
			if n := drift.Detected(); n > 0 {
				fmt.Fprintf(out, "# %s drift: %d drift_detected event(s) — live stage weights departed the plan\n", name, n)
			}
			tracer.RecordMetrics(reg.Sub(obs.Slug(name)))
			if cfg.trace != "" {
				f, err := os.Create(cfg.trace)
				if err != nil {
					return err
				}
				if err := tracer.WriteChromeTrace(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(out, "# %s trace: %d events written to %s\n", name, tracer.Len(), cfg.trace)
			}
		}
	}
	if !cfg.json {
		t.Render(out)
	}
	if cfg.replan > 0 {
		if err := replanDemo(out, chain, r, opts, cfg.replan); err != nil {
			return err
		}
	}
	if cfg.explain {
		fmt.Fprintln(out, "# decision trace")
		if err := journal.WriteExplain(out); err != nil {
			return err
		}
	}
	if cfg.stats {
		if err := emitStats(out, reg, cfg.json); err != nil {
			return err
		}
	}
	return nil
}

// startWatch launches the -watch loop: every interval it closes a
// sampling window and prints one live telemetry line. The returned stop
// function halts the loop, prints the final window and blocks until the
// goroutine exits; it is a no-op func when watching is disabled.
func startWatch(out io.Writer, name string, every time.Duration, s *streampu.Sampler, d *obs.DriftDetector) func() {
	if every <= 0 || s == nil {
		return func() {}
	}
	start := time.Now()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				printWatch(out, name, now.Sub(start), s.Sample(now), d)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		now := time.Now()
		printWatch(out, name, now.Sub(start), s.Sample(now), d)
	}
}

// printWatch renders one live telemetry line: per-stage windowed
// occupancy and weight estimate plus the cumulative p95 latency, all in
// the modeled time base, with a trailing drift marker once any
// drift_detected event fired.
func printWatch(out io.Writer, name string, elapsed time.Duration, snap []streampu.StageSample, d *obs.DriftDetector) {
	if len(snap) == 0 {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s watch +%.1fs", name, elapsed.Seconds())
	for _, ss := range snap {
		fmt.Fprintf(&b, " | s%d×%d occ %3.0f%% w %.0fµs p95 %.0fµs",
			ss.Stage, ss.Workers, 100*ss.Occupancy, ss.WeightEstimate, ss.P95)
	}
	if n := d.Detected(); n > 0 {
		fmt.Fprintf(&b, " | drift ×%d", n)
	}
	fmt.Fprintln(out, b.String())
}

// replanDemo drives -replan: a deterministic stream of n tail reweighs
// (the last task's weights alternately scaled by 1.25 and 0.8) resolved
// through strategy.ReplanBatch, so the incremental planner's row reuse is
// observable from the CLI. Every warm-started schedule is cross-checked
// against a from-scratch run of the same request — the planner's
// bit-identity contract, enforced at runtime — and the demo hard-fails on
// any divergence. The demo always uses the HeRAD scheduler: it is the only
// strategy with an incremental mode.
func replanDemo(out io.Writer, chain *core.Chain, r core.Resources, opts strategy.Options, n int) error {
	sc, err := strategy.Parse("herad")
	if err != nil {
		return err
	}
	// The reference runs strip the sinks: re-tracing every from-scratch
	// cross-check would double the journal without adding information.
	ref := opts
	ref.Trace = nil
	ref.Metrics = nil
	cur := chain
	reqs := []strategy.Request{{Chain: cur, Resources: r, Scheduler: sc, Options: opts, Label: "base"}}
	scales := [2]float64{1.25, 0.8}
	edit := chain.Len() - 1
	for i := 0; i < n; i++ {
		ts := cur.Tasks()
		t := ts[edit]
		w := append([]float64(nil), t.Weight...)
		for v := range w {
			w[v] *= scales[i%2]
		}
		ts[edit] = core.Task{Name: t.Name, Weight: w, Replicable: t.Replicable}
		c2, err := core.NewChain(ts)
		if err != nil {
			return err
		}
		cur = c2
		reqs = append(reqs, strategy.Request{Chain: cur, Resources: r, Scheduler: sc, Options: opts,
			Label: fmt.Sprintf("edit%d", i+1)})
	}
	results, _, st := strategy.ReplanBatch(nil, reqs)
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("replan %s: %w", reqs[i].Label, res.Err)
		}
		check := sc.Schedule(reqs[i].Chain, r, ref)
		if !sameSolution(res.Solution, check) {
			return fmt.Errorf("replan %s: incremental schedule diverged from from-scratch (period %.3f vs %.3f)",
				reqs[i].Label, res.Period, check.Period(reqs[i].Chain))
		}
	}
	last := results[len(results)-1]
	fmt.Fprintf(out, "# replan: %d tail reweighs, %d warm starts, %d cold; rows refilled %d of %d (%.1f%% saved); final period %.1f; all schedules match from-scratch\n",
		n, st.WarmStarts, st.Cold, st.RowsRefilled, st.RowsTotal,
		100*(1-float64(st.RowsRefilled)/float64(st.RowsTotal)), last.Period)
	return nil
}

// sameSolution reports stage-for-stage equality of two schedules.
func sameSolution(a, b core.Solution) bool {
	if len(a.Stages) != len(b.Stages) {
		return false
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			return false
		}
	}
	return true
}

// writeJournal writes the decision journal as canonical JSONL to path plus
// the Chrome-trace view (virtual tick timeline for chrome://tracing) to the
// sibling path.chrome.json. It runs deferred so the journal survives a
// failing strategy or runtime step.
func writeJournal(j *trace.Journal, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("writing decision journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	cf, err := os.Create(chromeSiblingPath(path))
	if err != nil {
		return err
	}
	if err := j.WriteChromeTrace(cf); err != nil {
		cf.Close()
		return fmt.Errorf("writing decision-journal Chrome view: %w", err)
	}
	return cf.Close()
}

// writeFlightDump writes the recorder's deterministic text dump to path.
// Runs deferred, after every other artifact recorded its events, so the
// dump is the complete black box of the invocation.
func writeFlightDump(rec *flight.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteDump(f); err != nil {
		f.Close()
		return fmt.Errorf("writing flight dump: %w", err)
	}
	return f.Close()
}

// chromeSiblingPath maps the JSONL journal path to its Chrome-view sibling:
// sched.jsonl → sched.chrome.json, anything else gets .chrome.json appended.
func chromeSiblingPath(path string) string {
	return strings.TrimSuffix(path, ".jsonl") + ".chrome.json"
}

// emitStats renders the collected scheduler metrics: an aligned table in
// text mode, the internal/obs JSON report (schema shared with
// cmd/experiments' metrics.json) in -json mode.
func emitStats(out io.Writer, reg *obs.Registry, asJSON bool) error {
	if asJSON {
		return obs.NewReport("ampsched", reg).WriteJSON(out)
	}
	fmt.Fprintln(out, "# scheduler metrics")
	t := report.NewTable("Metric", "Kind", "Count", "Value")
	for _, s := range reg.Snapshot() {
		value := "-"
		switch s.Kind {
		case obs.KindGauge, obs.KindEWMA, obs.KindRate:
			value = fmt.Sprintf("%g", s.Value)
		case obs.KindTimer:
			value = fmt.Sprintf("%.3fms total", float64(s.TotalNs)/1e6)
		case obs.KindHistogram:
			value = fmt.Sprintf("%d above top bucket", s.Overflow)
		case obs.KindLogHistogram:
			if q := s.Quantiles; q != nil {
				value = fmt.Sprintf("p50 %.1f p95 %.1f p99 %.1f", q.P50, q.P95, q.P99)
			}
		case obs.KindSeries:
			value = fmt.Sprintf("%g (last of %d)", s.Value, s.Count)
		}
		t.AddRow(s.Name, string(s.Kind), s.Count, value)
	}
	t.Render(out)
	return nil
}

// writeHeapProfile snapshots the heap after a final GC (the profile
// should show live allocations, not garbage awaiting collection).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("writing heap profile: %w", err)
	}
	return f.Close()
}

func loadChain(input, plat string) (*core.Chain, int, error) {
	switch {
	case input != "" && plat != "":
		return nil, 0, fmt.Errorf("pass either -input or -platform, not both")
	case plat != "":
		switch strings.ToLower(plat) {
		case "mac", "macstudio", "mac-studio":
			p := platform.MacStudio()
			return p.Chain(), p.Interframe, nil
		case "x7", "x7ti", "x7-ti":
			p := platform.X7Ti()
			return p.Chain(), p.Interframe, nil
		default:
			return nil, 0, fmt.Errorf("unknown platform %q (want mac or x7)", plat)
		}
	case input != "":
		data, err := os.ReadFile(input)
		if err != nil {
			return nil, 0, err
		}
		var jc jsonChain
		if err := json.Unmarshal(data, &jc); err != nil {
			return nil, 0, fmt.Errorf("parsing %s: %w", input, err)
		}
		c, err := core.NewChain(jc.Tasks)
		return c, 1, err
	default:
		return nil, 0, fmt.Errorf("pass -input FILE or -platform mac|x7")
	}
}

// resolveResources builds the platform's type table from the flags: the
// -resources spec when given (exclusive with the two-type shorthands),
// the paper's big/little pair otherwise.
func resolveResources(cfg config) (core.Resources, error) {
	if cfg.resources == "" {
		return core.Res(cfg.big, cfg.little), nil
	}
	if cfg.big != 0 || cfg.little != 0 {
		return core.Resources{}, fmt.Errorf("pass either -resources or -big/-little, not both")
	}
	return core.ParseResources(cfg.resources)
}

// strategyList resolves the -strategy flag through the registry: "all"
// expands to every non-hidden strategy in the paper's order, anything else
// must parse as a registered name or alias.
func strategyList(s string) ([]strategy.Scheduler, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return strategy.All(), nil
	}
	sc, err := strategy.Parse(s)
	if err != nil {
		return nil, err
	}
	return []strategy.Scheduler{sc}, nil
}
