// Command ampsched schedules a partially-replicable task chain on two
// types of resources (big/little cores) and optionally validates the
// schedule by discrete-event simulation or by executing it on the
// streampu runtime with latency-modeled tasks.
//
// Usage:
//
//	ampsched -big 8 -little 2 [flags]
//
// The chain comes from -input (JSON) or -platform (the embedded DVB-S2
// profiles "mac" / "x7"). JSON format:
//
//	{"tasks": [{"name": "t1", "big": 52.3, "little": 248.3, "replicable": false}, ...]}
//
// Flags:
//
//	-strategy S   herad|2catac|fertac|otac-b|otac-l|all (default herad);
//	              also the hidden registry entries 2catac-memo and brute
//	              (exhaustive reference — chains of ~12 tasks at most)
//	-simulate     validate with the discrete-event simulator
//	-run          execute on the streampu runtime (wall clock)
//	-frames N     frames for -run (default 100)
//	-scale S      time scale for -run (default 10)
//	-interframe N frames per pipeline slot for throughput reporting
//	-json         print the schedule as JSON
//	-colocate     fuse adjacent light single-core stages (§VII extension)
//	-power        report watts and mJ/frame under the default power model
//	-trace FILE   with -run: dump a Chrome trace of the pipeline execution
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/platform"
	"ampsched/internal/report"
	"ampsched/internal/strategy"
	"ampsched/internal/streampu"
)

type jsonTask struct {
	Name       string  `json:"name"`
	Big        float64 `json:"big"`
	Little     float64 `json:"little"`
	Replicable bool    `json:"replicable"`
}

type jsonChain struct {
	Tasks []jsonTask `json:"tasks"`
}

type jsonStage struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Cores int    `json:"cores"`
	Type  string `json:"type"`
}

type jsonSolution struct {
	Strategy string      `json:"strategy"`
	Period   float64     `json:"period"`
	Stages   []jsonStage `json:"stages"`
	BigUsed  int         `json:"big_used"`
	LitUsed  int         `json:"little_used"`
}

func main() {
	input := flag.String("input", "", "JSON task-chain file")
	plat := flag.String("platform", "", `embedded DVB-S2 profile: "mac" or "x7"`)
	big := flag.Int("big", 0, "number of big cores")
	little := flag.Int("little", 0, "number of little cores")
	strat := flag.String("strategy", "herad", "herad|2catac|fertac|otac-b|otac-l|all (or 2catac-memo, brute)")
	simulate := flag.Bool("simulate", false, "validate with the discrete-event simulator")
	run := flag.Bool("run", false, "execute on the streampu runtime")
	frames := flag.Int("frames", 100, "frames for -run")
	scale := flag.Float64("scale", 10, "time scale for -run")
	interframe := flag.Int("interframe", 1, "frames per pipeline slot for FPS reporting")
	asJSON := flag.Bool("json", false, "print the schedule as JSON")
	colocate := flag.Bool("colocate", false, "fuse adjacent light single-core stages (saves cores at equal period)")
	power := flag.Bool("power", false, "report power/energy under the default power model")
	tracePath := flag.String("trace", "", "with -run: write a Chrome trace (chrome://tracing) to this file")
	flag.Parse()

	if err := mainErr(*input, *plat, *big, *little, *strat, *simulate, *run,
		*frames, *scale, *interframe, *asJSON, *colocate, *power, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "ampsched:", err)
		os.Exit(1)
	}
}

func mainErr(input, plat string, big, little int, strat string,
	simulate, run bool, frames int, scale float64, interframe int,
	asJSON, colocate, power bool, tracePath string) error {
	chain, defIF, err := loadChain(input, plat)
	if err != nil {
		return err
	}
	if interframe == 1 && defIF > 1 {
		interframe = defIF
	}
	r := core.Resources{Big: big, Little: little}
	if r.Total() <= 0 {
		return fmt.Errorf("no resources: pass -big and/or -little")
	}

	scheds, err := strategyList(strat)
	if err != nil {
		return err
	}
	header := []string{"Strategy", "Period", "FPS", "Pipeline decomposition", "b", "l"}
	if power {
		header = append(header, "W", "mJ/frame")
	}
	t := report.NewTable(header...)
	pm := core.DefaultPowerModel()
	opts := strategy.Options{Colocate: colocate}
	for _, sc := range scheds {
		name := sc.Name()
		sol := sc.Schedule(chain, r, opts)
		if sol.IsEmpty() {
			return fmt.Errorf("%s found no schedule for R=%v", name, r)
		}
		if err := sol.Validate(chain, r); err != nil {
			return fmt.Errorf("%s produced an invalid schedule: %v", name, err)
		}
		p := sol.Period(chain)
		b, l := sol.CoresUsed()
		if asJSON {
			out := jsonSolution{Strategy: name, Period: p, BigUsed: b, LitUsed: l}
			for _, st := range sol.Stages {
				out.Stages = append(out.Stages, jsonStage{
					Start: st.Start, End: st.End, Cores: st.Cores, Type: st.Type.String(),
				})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				return err
			}
		} else {
			row := []any{name, p, fmt.Sprintf("%.0f", core.Throughput(p, interframe)),
				sol.String(), b, l}
			if power {
				row = append(row, pm.Power(sol), 1000*pm.EnergyPerFrame(sol, p))
			}
			t.AddRow(row...)
		}
		if simulate {
			res, err := desim.Simulate(chain, sol, desim.Config{Frames: 2000, QueueCap: 2})
			if err != nil {
				return err
			}
			fmt.Printf("# %s desim: period %.1f, FPS %.0f, latency %.1f\n",
				name, res.Period, res.Throughput(interframe), res.Latency)
		}
		if run {
			opts := streampu.Options{TimeScale: scale, QueueCap: 2}
			var tracer *streampu.Tracer
			if tracePath != "" {
				tracer = &streampu.Tracer{}
				opts.Tracer = tracer
			}
			pipe, err := streampu.New(streampu.TimedChain(chain), sol, opts)
			if err != nil {
				return err
			}
			st, err := pipe.Run(frames, nil)
			if err != nil {
				return err
			}
			fmt.Printf("# %s runtime: measured period %.1f, FPS %.0f (%d frames, %.2fs wall)\n",
				name, st.PeriodMicros, st.Throughput(interframe), st.Frames, st.Elapsed.Seconds())
			if tracer != nil {
				f, err := os.Create(tracePath)
				if err != nil {
					return err
				}
				if err := tracer.WriteChromeTrace(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("# %s trace: %d events written to %s\n", name, tracer.Len(), tracePath)
			}
		}
	}
	if !asJSON {
		t.Render(os.Stdout)
	}
	return nil
}

func loadChain(input, plat string) (*core.Chain, int, error) {
	switch {
	case input != "" && plat != "":
		return nil, 0, fmt.Errorf("pass either -input or -platform, not both")
	case plat != "":
		switch strings.ToLower(plat) {
		case "mac", "macstudio", "mac-studio":
			p := platform.MacStudio()
			return p.Chain(), p.Interframe, nil
		case "x7", "x7ti", "x7-ti":
			p := platform.X7Ti()
			return p.Chain(), p.Interframe, nil
		default:
			return nil, 0, fmt.Errorf("unknown platform %q (want mac or x7)", plat)
		}
	case input != "":
		data, err := os.ReadFile(input)
		if err != nil {
			return nil, 0, err
		}
		var jc jsonChain
		if err := json.Unmarshal(data, &jc); err != nil {
			return nil, 0, fmt.Errorf("parsing %s: %w", input, err)
		}
		tasks := make([]core.Task, len(jc.Tasks))
		for i, t := range jc.Tasks {
			tasks[i] = core.Task{
				Name:       t.Name,
				Weight:     [core.NumCoreTypes]float64{core.Big: t.Big, core.Little: t.Little},
				Replicable: t.Replicable,
			}
		}
		c, err := core.NewChain(tasks)
		return c, 1, err
	default:
		return nil, 0, fmt.Errorf("pass -input FILE or -platform mac|x7")
	}
}

// strategyList resolves the -strategy flag through the registry: "all"
// expands to every non-hidden strategy in the paper's order, anything else
// must parse as a registered name or alias.
func strategyList(s string) ([]strategy.Scheduler, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return strategy.All(), nil
	}
	sc, err := strategy.Parse(s)
	if err != nil {
		return nil, err
	}
	return []strategy.Scheduler{sc}, nil
}
