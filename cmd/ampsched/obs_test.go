package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// obsConfig is the canonical observability invocation: a simulated run
// (no wall clock) writing both a flight dump and a time-less JSONL run
// log, so every artifact must be byte-deterministic.
func obsConfig(dir string, out *bytes.Buffer) config {
	return config{
		input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", simulate: true,
		frames: 10, scale: 1, interframe: 1,
		flightDump: filepath.Join(dir, "flight.txt"),
		logJSON:    filepath.Join(dir, "run.jsonl"),
		logNoTime:  true,
		out:        out,
	}
}

func TestMainErrFlightDumpAndRunLog(t *testing.T) {
	run := func(dir string) (dump, runlog string) {
		t.Helper()
		var out bytes.Buffer
		if err := mainErr(obsConfig(dir, &out)); err != nil {
			t.Fatal(err)
		}
		d, err := os.ReadFile(filepath.Join(dir, "flight.txt"))
		if err != nil {
			t.Fatal(err)
		}
		l, err := os.ReadFile(filepath.Join(dir, "run.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return string(d), string(l)
	}

	dump, runlog := run(t.TempDir())

	// The dump carries the sim-clock window events plus the lifecycle log
	// records routed through the slog handler.
	if !strings.Contains(dump, "# flight dump:") {
		t.Fatalf("missing dump header:\n%s", dump)
	}
	if !strings.Contains(dump, " window ") {
		t.Fatalf("no desim window events in dump:\n%s", dump)
	}
	if !strings.Contains(dump, `log stage=-1 a=0 b=0 aux="schedule"`) ||
		!strings.Contains(dump, `aux="simulate"`) {
		t.Fatalf("lifecycle log events missing from dump:\n%s", dump)
	}

	// The run log is JSONL: every line parses, and the lifecycle messages
	// carry their structured payloads.
	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(runlog), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("run log line %q: %v", line, err)
		}
		if _, ok := rec["time"]; ok {
			t.Fatalf("logNoTime left a time attribute: %q", line)
		}
		msgs = append(msgs, rec["msg"].(string))
	}
	joined := strings.Join(msgs, ",")
	if !strings.Contains(joined, "schedule") || !strings.Contains(joined, "simulate") {
		t.Fatalf("run log messages = %v", msgs)
	}

	// Same invocation, same bytes: log-event ticks come from the record
	// time, which the CodeLog events only surface via the sink (dropped
	// here), so both artifacts must reproduce exactly.
	dump2, runlog2 := run(t.TempDir())
	if runlog2 != runlog {
		t.Fatalf("run logs differ between identical runs:\n%s\n---\n%s", runlog, runlog2)
	}
	if stripLogTicks(dump2) != stripLogTicks(dump) {
		t.Fatalf("flight dumps differ between identical runs:\n%s\n---\n%s", dump, dump2)
	}
}

// stripLogTicks blanks the tick field of log events: CodeLog ticks are
// wall-clock nanoseconds (the one intentionally non-deterministic field),
// everything else in a simulated run must be byte-stable.
func stripLogTicks(dump string) string {
	lines := strings.Split(dump, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, " log ") {
			if f := strings.Fields(ln); len(f) > 1 {
				f[1] = "tick=*"
				lines[i] = strings.Join(f, " ")
			}
		}
	}
	return strings.Join(lines, "\n")
}

func TestMainErrSLORequiresListen(t *testing.T) {
	err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", slo: "desim.latency_us:p95<=100000", out: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), "-slo requires -listen") {
		t.Fatalf("err = %v", err)
	}
}

func TestMainErrRejectsBadSLO(t *testing.T) {
	err := mainErr(config{input: "testdata/chain.json", big: 2, little: 2,
		strategy: "herad", listen: "127.0.0.1:0", slo: "nonsense", out: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), `SLO "nonsense"`) {
		t.Fatalf("err = %v", err)
	}
}
