package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenCompare asserts got matches the named golden file, rewriting it
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./cmd/ampsched -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (regenerate with -update if intended)\ngot:\n%s",
			golden, got)
	}
}

// TestScheduleGolden is the k=2 equivalence gate of the k-type resource
// model: it schedules the seed DVB-S2 platform (Mac Studio, the paper's
// half configuration R=(8B,2L)) with every strategy and pins the complete
// text report — periods, FPS, pipeline decompositions, core usage — plus
// the canonical JSONL decision journal, byte for byte. The two-type code
// path must keep producing exactly these bytes through any refactor of the
// resource model; regenerate with -update only for intentional changes.
func TestScheduleGolden(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sched.jsonl")
	var out bytes.Buffer
	cfg := config{platform: "mac", big: 8, little: 2, strategy: "all",
		frames: 10, scale: 1, interframe: 1, traceSched: jpath, out: &out}
	if err := mainErr(cfg); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "schedule_mac.golden", out.Bytes())
	journal, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "journal_mac.golden", journal)
}
