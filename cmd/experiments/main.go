// Command experiments regenerates every table and figure of the paper's
// evaluation (§VI): Table I and Figs. 1–4 from the synthetic simulation
// campaign, Tables II–III and Fig. 5 from the DVB-S2 experiment, and the
// Fig. 6 summary. Results print as aligned text tables (or CSV) with the
// same rows/series the paper reports.
//
// Usage:
//
//	experiments [flags] <table1|fig1|fig2|fig3|fig4|table2|table3|fig5|fig6|live|sensitivity|latency|all>
//
// Flags:
//
//	-chains N    chains per scenario for table1/fig1/fig2 (default 1000)
//	-runs N      chains per timing point for fig3/fig4 (default 50)
//	-quick       shrink every campaign (CI-friendly)
//	-csv         emit CSV instead of text tables
//	-real        execute Table II schedules on the streampu runtime
//	-scale S     time scale for -real runs (default 10)
//	-workers N   concurrent planning workers (default 0 = one per CPU)
//	-cache       reuse schedules across identical planning requests
//	             (default true; results are identical either way, only
//	             repeated scenarios get cheaper — e.g. fig1/fig6 re-use
//	             table1's campaign). -cache=false re-solves everything.
//	-metrics F   write a machine-readable metrics report (default
//	             metrics.json; "" disables collection entirely)
//
// The metrics report aggregates every scheduler-side series the run
// produced (per-strategy counters/timers, PlanBatch batch series
// including planbatch.cache.hits/misses, streampu stage occupancy for
// -real runs) plus Go runtime statistics; see internal/obs.Report for
// the schema.
package main

import (
	"flag"
	"fmt"
	"os"

	"ampsched/internal/core"
	"ampsched/internal/dvbs2"
	"ampsched/internal/experiments"
	"ampsched/internal/obs"
	"ampsched/internal/report"
	"ampsched/internal/stats"
	"ampsched/internal/strategy"
)

func main() {
	chains := flag.Int("chains", 1000, "chains per scenario (Table I, Figs. 1-2)")
	runs := flag.Int("runs", 50, "chains per timing point (Figs. 3-4)")
	quick := flag.Bool("quick", false, "shrink all campaigns for quick runs")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	real := flag.Bool("real", false, "run Table II schedules on the streampu runtime (wall clock)")
	scale := flag.Float64("scale", 10, "time scale for -real runs")
	workers := flag.Int("workers", 0, "concurrent planning workers (0 = one per CPU, 1 = serial)")
	cache := flag.Bool("cache", true, "reuse schedules across identical planning requests")
	metrics := flag.String("metrics", "metrics.json", `metrics report path ("" disables collection)`)
	flag.Parse()

	if *quick {
		*chains = 100
		*runs = 10
	}
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}
	app := &app{
		chains: *chains, runs: *runs, quick: *quick,
		csv: *csv, real: *real, scale: *scale, workers: *workers,
		metricsPath: *metrics,
	}
	if app.metricsPath != "" {
		app.reg = obs.NewRegistry()
	}
	if *cache {
		app.cache = strategy.NewCache()
	}
	if err := app.run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := app.writeMetrics(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type app struct {
	chains, runs int
	quick        bool
	csv, real    bool
	scale        float64
	workers      int

	// reg collects every campaign's scheduler metrics; nil disables
	// collection (then the strategies run their uninstrumented paths).
	reg         *obs.Registry
	metricsPath string

	// cache is the app-wide schedule cache shared by every campaign of
	// the run, so e.g. fig6's Table I re-run hits table1's entries; nil
	// (-cache=false) re-solves every request.
	cache *strategy.Cache

	t1cache []experiments.Table1Cell
}

// writeMetrics exports the run's metric series as a machine-readable
// report. Series names are sorted and counters are deterministic, so two
// identical runs differ only in the timestamp, runtime statistics, and
// wall-clock-valued series.
func (a *app) writeMetrics() error {
	if a.reg == nil || a.metricsPath == "" {
		return nil
	}
	if err := obs.WriteFile(a.metricsPath, "experiments", a.reg); err != nil {
		return fmt.Errorf("writing metrics report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "experiments: metrics report written to %s\n", a.metricsPath)
	return nil
}

func (a *app) run(cmd string) error {
	switch cmd {
	case "table1":
		return a.table1()
	case "fig1":
		return a.fig1()
	case "fig2":
		return a.fig2()
	case "fig3":
		return a.fig3()
	case "fig4":
		return a.fig4()
	case "table2":
		_, err := a.table2()
		return err
	case "table3":
		return a.table3()
	case "fig5":
		return a.fig5()
	case "fig6":
		return a.fig6()
	case "live":
		return a.live()
	case "sensitivity":
		return a.sensitivity()
	case "latency":
		return a.latency()
	case "all":
		for _, c := range []string{"table1", "fig1", "fig2", "fig3", "fig4",
			"table3", "table2", "fig5", "fig6"} {
			fmt.Printf("\n================ %s ================\n", c)
			if err := a.run(c); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func (a *app) emit(t *report.Table) {
	if a.csv {
		t.CSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	fmt.Println()
}

func (a *app) table1Cells() []experiments.Table1Cell {
	if a.t1cache == nil {
		cfg := experiments.DefaultTable1Config()
		cfg.Chains = a.chains
		cfg.Workers = a.workers
		cfg.Metrics = a.reg
		cfg.Cache = a.cache
		a.t1cache = experiments.Table1(cfg)
	}
	return a.t1cache
}

func (a *app) table1() error {
	fmt.Printf("Table I — simulation statistics (%d chains × 20 tasks per scenario)\n\n", a.chains)
	t := report.NewTable("R", "SR", "Strategy", "%opt", "avg", "med", "max", "b_used", "l_used")
	for _, c := range a.table1Cells() {
		t.AddRow(c.R.String(), fmt.Sprintf("%.1f", c.SR), c.Strategy,
			fmt.Sprintf("%.1f", c.PctOptimal), c.AvgSlowdown, c.MedSlowdown,
			c.MaxSlowdown, c.AvgBigUsed, c.AvgLitUsed)
	}
	a.emit(t)
	return nil
}

func (a *app) fig1() error {
	fmt.Printf("Fig. 1 — cumulative distributions of slowdown ratios vs HeRAD\n\n")
	series := experiments.Fig1(a.table1Cells())
	// Fig. 1a: fraction of chains within the zoomed slowdown interval.
	t := report.NewTable("R", "SR", "Strategy", "P(≤1.0)", "P(≤1.1)", "P(≤1.25)", "P(≤1.5)", "max")
	for _, s := range series {
		last := s.CDF[len(s.CDF)-1].X
		t.AddRow(s.R.String(), fmt.Sprintf("%.1f", s.SR), s.Strategy,
			stats.CDFAt(s.CDF, 1.0), stats.CDFAt(s.CDF, 1.1),
			stats.CDFAt(s.CDF, 1.25), stats.CDFAt(s.CDF, 1.5), last)
	}
	a.emit(t)
	// Fig. 1b: the full-range plot for R = (10,10).
	var plot []report.Series
	for _, s := range series {
		if s.R != core.Res(10, 10) || s.SR != 0.5 {
			continue
		}
		var xs, ys []float64
		for _, p := range s.CDF {
			xs = append(xs, p.X)
			ys = append(ys, p.P)
		}
		plot = append(plot, report.Series{Name: s.Strategy, X: xs, Y: ys})
	}
	report.LogPlot(os.Stdout, "Fig. 1b (R=(10B,10L), SR=0.5): CDF(P, log) vs slowdown", plot, 60, 12)
	return nil
}

func (a *app) fig2() error {
	cfg := experiments.DefaultTable1Config()
	cfg.Chains = a.chains
	cfg.Workers = a.workers
	cfg.Metrics = a.reg
	cfg.Cache = a.cache
	res := experiments.Fig2(cfg)
	fmt.Printf("Fig. 2 — FERTAC−HeRAD core-usage deltas, R=%v SR=%.1f (%d chains)\n\n",
		res.R, res.SR, res.All.Total())
	for name, h := range map[string]*stats.Hist2D{"all results": res.All, "only optimal periods": res.Opt} {
		fmt.Printf("%s (%d samples): ≤1 extra core %.1f%%, ≤2 extra cores %.1f%%\n",
			name, h.Total(), 100*experiments.ExtraCoresAtMost(h, 1), 100*experiments.ExtraCoresAtMost(h, 2))
		xmin, xmax, ymin, ymax := h.Bounds()
		t := report.NewTable(append([]string{"Δbig\\Δlittle"}, colLabels(ymin, ymax)...)...)
		for x := xmin; x <= xmax; x++ {
			row := []any{fmt.Sprintf("%+d", x)}
			for y := ymin; y <= ymax; y++ {
				row = append(row, fmt.Sprintf("%.1f%%", 100*h.Fraction(x, y)))
			}
			t.AddRow(row...)
		}
		a.emit(t)
	}
	return nil
}

func colLabels(min, max int) []string {
	var out []string
	for y := min; y <= max; y++ {
		out = append(out, fmt.Sprintf("%+d", y))
	}
	return out
}

func (a *app) fig3() error {
	cfg := experiments.DefaultTimingConfig()
	cfg.Chains = a.runs
	taskCounts := []int{20, 40, 60, 80, 100, 120, 140, 160}
	if a.quick {
		taskCounts = []int{20, 40, 60}
	}
	srs := []float64{0.2, 0.5, 0.8}
	fmt.Printf("Fig. 3 — strategy execution times (µs) vs number of tasks (%d runs/point)\n\n", a.runs)
	for _, r := range []core.Resources{core.Res(20, 20), core.Res(100, 100)} {
		if a.quick && r.Count(core.Big) == 100 {
			cfg.SkipHeRADAbove = 60 // HeRAD at (100,100)×160 tasks takes minutes
		}
		pts := experiments.Fig3(cfg, r, taskCounts, srs)
		a.renderTiming(fmt.Sprintf("R=%v", r), pts, "tasks")
	}
	return nil
}

func (a *app) fig4() error {
	cfg := experiments.DefaultTimingConfig()
	cfg.Chains = a.runs
	resources := []core.Resources{}
	for i := 1; i <= 8; i++ {
		resources = append(resources, core.Res(20*i, 20*i))
	}
	if a.quick {
		resources = resources[:3]
	}
	srs := []float64{0.2, 0.5, 0.8}
	fmt.Printf("Fig. 4 — strategy execution times (µs) vs resources (%d runs/point)\n\n", a.runs)
	for _, n := range []int{20, 60} {
		pts := experiments.Fig4(cfg, n, resources, srs)
		a.renderTiming(fmt.Sprintf("%d tasks", n), pts, "cores")
	}
	return nil
}

func (a *app) renderTiming(title string, pts []experiments.TimingPoint, xAxis string) {
	fmt.Println("--", title)
	t := report.NewTable("Strategy", "SR", xAxis, "µs")
	bySeries := map[string]*report.Series{}
	var order []string
	for _, p := range pts {
		x := float64(p.Tasks)
		if xAxis == "cores" {
			x = float64(p.R.Total())
		}
		t.AddRow(p.Strategy, fmt.Sprintf("%.1f", p.SR), int(x), p.Micros)
		key := fmt.Sprintf("%s SR=%.1f", p.Strategy, p.SR)
		s, ok := bySeries[key]
		if !ok {
			s = &report.Series{Name: key}
			bySeries[key] = s
			order = append(order, key)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, p.Micros)
	}
	a.emit(t)
	var plot []report.Series
	for _, k := range order {
		plot = append(plot, *bySeries[k])
	}
	if !a.csv {
		report.LogPlot(os.Stdout, "execution time (µs, log) vs "+xAxis, plot, 60, 12)
	}
}

func (a *app) table2() ([]experiments.Table2Row, error) {
	cfg := experiments.DefaultTable2Config()
	cfg.RunReal = a.real
	cfg.TimeScale = a.scale
	cfg.Workers = a.workers
	cfg.Metrics = a.reg
	cfg.Cache = a.cache
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return nil, err
	}
	mode := "simulation only (pass -real for runtime measurements)"
	if a.real {
		mode = fmt.Sprintf("streampu runtime at time scale %.0f×", a.scale)
	}
	fmt.Printf("Table II — DVB-S2 receiver schedules; %s\n\n", mode)
	t := report.NewTable("Id", "Platform", "R", "Strategy", "Pipeline decomposition",
		"|s|", "b", "l", "Period µs", "Sim FPS", "Real FPS", "Sim Mb/s", "Real Mb/s", "Ratio")
	for _, r := range rows {
		ratio := "-"
		if r.RealMbps > 0 {
			ratio = fmt.Sprintf("%+.0f%%", r.RatioPct)
		}
		t.AddRow(r.ID, r.Platform, r.R.String(), r.Strategy, r.Decomposition,
			r.Stages, r.BUsed, r.LUsed, r.PeriodMicros,
			fmt.Sprintf("%.0f", r.SimFPS), fmt.Sprintf("%.0f", r.RealFPS),
			r.SimMbps, r.RealMbps, ratio)
	}
	a.emit(t)
	return rows, nil
}

func (a *app) table3() error {
	fmt.Println("Table III — DVB-S2 receiver task latency profiles (µs)")
	fmt.Println()
	rows := experiments.Table3()
	t := report.NewTable("Id", "Task", "Rep", "Mac B", "Mac L", "X7 B", "X7 L")
	for _, r := range rows {
		rep := "✗"
		if r.Replicable {
			rep = "✓"
		}
		mac := r.Weights["Mac Studio"]
		x7 := r.Weights["X7 Ti"]
		t.AddRow(fmt.Sprintf("τ%d", r.ID), r.Name, rep, mac[0], mac[1], x7[0], x7[1])
	}
	a.emit(t)
	return nil
}

func (a *app) fig5() error {
	rows, err := a.table2()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 5 — achieved information throughput (Mb/s)")
	fmt.Println()
	entries := experiments.Fig5(rows)
	t := report.NewTable("Platform", "R", "Strategy", "Mb/s", "bar")
	maxV := 0.0
	for _, e := range entries {
		if e.Mbps > maxV {
			maxV = e.Mbps
		}
	}
	for _, e := range entries {
		bar := ""
		for i := 0.0; i < e.Mbps/maxV*40; i++ {
			bar += "█"
		}
		t.AddRow(e.Platform, e.R.String(), e.Strategy, e.Mbps, bar)
	}
	a.emit(t)
	return nil
}

func (a *app) fig6() error {
	cfg := experiments.DefaultTable1Config()
	cfg.Chains = min(a.chains, 200)
	cfg.Workers = a.workers
	cfg.Metrics = a.reg
	cfg.Cache = a.cache
	t1 := experiments.Table1(cfg)
	t2cfg := experiments.DefaultTable2Config()
	t2cfg.RunReal = a.real
	t2cfg.Workers = a.workers
	t2cfg.Metrics = a.reg
	t2cfg.Cache = a.cache
	t2, err := experiments.Table2(t2cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 6 — strategy characteristics summary")
	fmt.Println()
	t := report.NewTable("Strategy", "Optimal", "Avg slowdown", "Avg extra cores",
		"Execution time", "Real/best %")
	for _, s := range experiments.Fig6(t1, t2) {
		real := "-"
		if s.RealVsBestPct > 0 {
			real = fmt.Sprintf("%.0f%%", s.RealVsBestPct)
		}
		t.AddRow(s.Strategy, s.Optimal, s.AvgSlowdown, s.AvgExtraCores, s.TimeClass, real)
	}
	a.emit(t)
	return nil
}

// sensitivity runs the extension study quantifying the paper's remark
// that heuristics degrade with more tasks and improve with more
// resources (§VI-B, "additional experiments").
func (a *app) sensitivity() error {
	cfg := experiments.DefaultSensitivityConfig()
	cfg.Chains = min(a.chains, 200)
	cfg.Workers = a.workers
	cfg.Metrics = a.reg
	cfg.Cache = a.cache
	fmt.Printf("Sensitivity extension (%d chains per point, SR=%.1f)\n\n", cfg.Chains, cfg.SR)

	fmt.Println("-- heuristic quality vs number of tasks, R=(10B,10L)")
	t := report.NewTable("Strategy", "tasks", "%opt", "avg slowdown")
	for _, p := range experiments.SensitivityTasks(cfg, core.Res(10, 10),
		[]int{10, 20, 40, 80}) {
		t.AddRow(p.Strategy, p.X, fmt.Sprintf("%.1f", p.PctOptimal), p.AvgSlowdown)
	}
	a.emit(t)

	fmt.Println("-- heuristic quality vs resources, 20 tasks")
	t2 := report.NewTable("Strategy", "cores", "%opt", "avg slowdown")
	for _, p := range experiments.SensitivityResources(cfg, 20, []core.Resources{
		core.Res(4, 4), core.Res(10, 10), core.Res(20, 20), core.Res(40, 40),
	}) {
		t2.AddRow(p.Strategy, p.X, fmt.Sprintf("%.1f", p.PctOptimal), p.AvgSlowdown)
	}
	a.emit(t2)
	return nil
}

// latency runs the pipeline-depth / end-to-end-latency extension.
func (a *app) latency() error {
	rows, err := experiments.Latency(a.reg, a.cache)
	if err != nil {
		return err
	}
	fmt.Println("Latency extension — pipeline depth and end-to-end latency per strategy")
	fmt.Println()
	t := report.NewTable("Platform", "R", "Strategy", "stages", "period µs", "latency µs", "latency (periods)")
	for _, r := range rows {
		t.AddRow(r.Platform, r.R.String(), r.Strategy, r.Stages,
			r.PeriodMicros, r.LatencyMicros, r.LatencyPeriods)
	}
	a.emit(t)
	return nil
}

func (a *app) live() error {
	fmt.Println("Live experiment — schedule and run this repository's Go DVB-S2 receiver")
	fmt.Println()
	p := dvbs2.Test()
	t := report.NewTable("Strategy", "R", "Schedule", "Predicted FPS", "Measured FPS", "BER")
	for _, strat := range []string{experiments.StratHeRAD, experiments.StratFERTAC} {
		for _, r := range []core.Resources{core.Res(2, 2), core.Res(4, 4)} {
			res, err := experiments.LiveRun(p, strat, r, 20, 150)
			if err != nil {
				return err
			}
			t.AddRow(strat, r.String(), res.Solution.String(),
				fmt.Sprintf("%.0f", res.Predicted), fmt.Sprintf("%.0f", res.Measured),
				fmt.Sprintf("%.2e", res.BER))
		}
	}
	a.emit(t)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
