package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ampsched/internal/obs"
	"ampsched/internal/strategy"
)

// runWithMetrics executes one campaign with metrics collection enabled
// and returns the raw metrics.json bytes. The app gets its own solution
// cache, as the binary does by default, so the report carries the
// planbatch.cache.* series.
func runWithMetrics(t *testing.T, cmd, path string) []byte {
	t.Helper()
	a := testApp()
	a.reg = obs.NewRegistry()
	a.cache = strategy.NewCache()
	a.metricsPath = path
	quietly(t, func() error { return a.run(cmd) })
	if err := a.writeMetrics(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// normalizeReport strips the host- and wall-clock-dependent parts of a
// metrics report: the timestamp, the Go runtime section, and every
// wall-clock-valued series (timers, and histogram/gauge series whose
// names mark them as duration-valued). What remains — the algorithmic
// counters — must be identical across runs.
func normalizeReport(t *testing.T, data []byte) []byte {
	t.Helper()
	var report map[string]json.RawMessage
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("metrics report is not valid JSON: %v", err)
	}
	delete(report, "timestamp_unix_ns")
	delete(report, "runtime")
	var series []map[string]any
	if err := json.Unmarshal(report["series"], &series); err != nil {
		t.Fatalf("series: %v", err)
	}
	var kept []map[string]any
	for _, s := range series {
		name, _ := s["name"].(string)
		kind, _ := s["kind"].(string)
		if kind == string(obs.KindTimer) ||
			strings.HasSuffix(name, "_ns") || strings.HasSuffix(name, "_us") {
			continue
		}
		kept = append(kept, s)
	}
	norm, err := json.Marshal(map[string]any{"series": kept})
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// TestMetricsReportDeterministic runs the same campaign twice and pins
// that the normalized metrics reports are byte-identical: series names
// are sorted and every algorithmic counter is deterministic, even though
// the scheduling fans out over a worker pool.
func TestMetricsReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a miniature campaign twice")
	}
	dir := t.TempDir()
	first := runWithMetrics(t, "sensitivity", filepath.Join(dir, "a.json"))
	second := runWithMetrics(t, "sensitivity", filepath.Join(dir, "b.json"))
	a, b := normalizeReport(t, first), normalizeReport(t, second)
	if !bytes.Equal(a, b) {
		t.Errorf("normalized metrics reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if len(a) <= len(`{"series":[]}`) {
		t.Fatalf("normalized report carries no series: %s", a)
	}
	// The cache counters are part of the deterministic set (the pre-pass
	// classifies requests serially), and the sensitivity campaign genuinely
	// exercises hits: its task sweep and resource sweep share the
	// (20 tasks, R=(10,10)) scenario, chains and all.
	counts := seriesCounts(t, first)
	hits, okH := counts["planbatch.cache.hits"]
	misses, okM := counts["planbatch.cache.misses"]
	if !okH || !okM {
		t.Fatalf("cache series missing from the report: hits=%v misses=%v", okH, okM)
	}
	if hits <= 0 || misses <= 0 {
		t.Errorf("cache counters degenerate: hits=%d misses=%d (the shared scenario should hit)",
			hits, misses)
	}
}

// seriesCounts extracts the counter values of a metrics report by name.
func seriesCounts(t *testing.T, data []byte) map[string]int64 {
	t.Helper()
	var report obs.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	out := map[string]int64{}
	for _, s := range report.Series {
		out[s.Name] = s.Count
	}
	return out
}

// TestMetricsReportShape pins the report schema cmd/experiments writes:
// schema version, tool name, runtime statistics, and the per-strategy
// series every campaign must emit.
func TestMetricsReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a miniature campaign")
	}
	data := runWithMetrics(t, "latency", filepath.Join(t.TempDir(), "m.json"))
	var report obs.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != obs.ReportSchema || report.Tool != "experiments" {
		t.Errorf("schema %d tool %q", report.Schema, report.Tool)
	}
	if report.Runtime.GoVersion == "" || report.Runtime.NumCPU <= 0 {
		t.Errorf("runtime section incomplete: %+v", report.Runtime)
	}
	names := map[string]bool{}
	for _, s := range report.Series {
		names[s.Name] = true
	}
	for _, want := range []string{
		"herad.schedule.calls", "herad.herad.dp.cells",
		"fertac.sched.search.iterations", "2catac.twocatac.recursion.nodes",
		"otac_b.otac.compute.calls", "planbatch.requests",
		"planbatch.cache.hits", "planbatch.cache.misses",
	} {
		if !names[want] {
			t.Errorf("series %q missing from the report (have %d series)", want, len(report.Series))
		}
	}
}
