package main

import (
	"os"
	"testing"
)

// quietly redirects stdout around fn (the drivers print to stdout).
func quietly(t *testing.T, fn func() error) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
}

func testApp() *app {
	return &app{chains: 20, runs: 2, quick: true, scale: 10}
}

func TestDriversRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drivers run miniature campaigns")
	}
	a := testApp()
	for _, cmd := range []string{"table1", "fig1", "fig2", "table3", "fig5", "fig6", "sensitivity", "latency"} {
		cmd := cmd
		t.Run(cmd, func(t *testing.T) {
			quietly(t, func() error { return a.run(cmd) })
		})
	}
}

func TestDriverUnknown(t *testing.T) {
	a := testApp()
	if err := a.run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDriverCSVMode(t *testing.T) {
	a := testApp()
	a.csv = true
	quietly(t, func() error { return a.run("table3") })
}

func TestTable1CellsCached(t *testing.T) {
	a := testApp()
	quietly(t, func() error { return a.table1() })
	first := a.t1cache
	quietly(t, func() error { return a.fig1() })
	if &a.t1cache[0] != &first[0] {
		t.Error("table1 cells recomputed instead of cached")
	}
}
