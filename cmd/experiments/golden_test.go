package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ampsched/internal/obs"
	"ampsched/internal/strategy"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare asserts got matches the named golden file, rewriting it
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./cmd/experiments -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (regenerate with -update if intended)\ngot:\n%s",
			golden, got)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed (the experiment drivers print to os.Stdout
// directly, so a bytes.Buffer cannot be injected).
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestTable1Golden is the k=2 equivalence gate of the k-type resource
// model at the campaign level: it runs the Table I simulation campaign
// (miniature but deterministic: fixed seed, 20 chains per scenario, all
// three resource pairs and stateless ratios, every strategy) and pins both
// the rendered table and the normalized metrics.json report byte for
// byte. Schedules, periods, core usage, table formatting and every
// algorithmic counter (DP cells, probes, recursion nodes, cache hits)
// must survive any refactor of the two-type code path unchanged;
// regenerate with -update only for intentional changes.
func TestTable1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a miniature campaign")
	}
	a := testApp()
	a.reg = obs.NewRegistry()
	a.cache = strategy.NewCache()
	a.metricsPath = filepath.Join(t.TempDir(), "metrics.json")
	out := captureStdout(t, func() error {
		if err := a.run("table1"); err != nil {
			return err
		}
		return a.writeMetrics()
	})
	goldenCompare(t, "table1.golden", out)
	raw, err := os.ReadFile(a.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table1_metrics.golden", normalizeReport(t, raw))
}
