// Command benchreport runs the repository's observability micro-benchmarks
// — the strategy registry dispatch, the obs metrics layer, and the decision-
// trace journal — and writes a machine-readable JSON report with ns/op,
// allocs/op and B/op per benchmark. CI publishes the report as an artifact
// next to the coverage profile so instrumentation-cost regressions show up
// in review instead of in production.
//
// The report also enforces the repository's hard observability guarantees:
// every benchmark of a disabled (nil-sink, nil-journal) path must measure
// exactly 0 allocs/op, and benchreport exits non-zero when one does not.
//
// Usage:
//
//	benchreport [-o BENCH_PR4.json] [-benchtime 100ms] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/obs"
	"ampsched/internal/strategy"
	"ampsched/internal/trace"
)

// Schema versions the report shape.
const Schema = 1

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// PinZeroAllocs marks the disabled-path benchmarks whose allocs/op
	// must be exactly zero (enforced, not just reported).
	PinZeroAllocs bool `json:"pin_zero_allocs,omitempty"`
}

// Report is the full benchmark export.
type Report struct {
	Schema     int      `json:"schema"`
	Tool       string   `json:"tool"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

// bench is one registered benchmark: fn must perform n iterations.
type bench struct {
	name    string
	pinZero bool
	fn      func(n int)
}

func main() {
	out := flag.String("o", "BENCH_PR4.json", "report output path")
	benchtime := flag.Duration("benchtime", 100*time.Millisecond, "target measuring time per benchmark")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()
	if err := mainErr(*out, *benchtime, *list, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func mainErr(out string, benchtime time.Duration, list bool, w io.Writer) error {
	benches := benchmarks()
	if list {
		for _, b := range benches {
			fmt.Fprintln(w, b.name)
		}
		return nil
	}
	rep := Report{
		Schema:    Schema,
		Tool:      "benchreport",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	var pinFailures []string
	for _, b := range benches {
		res := measure(b, benchtime)
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(w, "%-32s %12.1f ns/op %10.1f allocs/op %12.1f B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		if b.pinZero && res.AllocsPerOp != 0 {
			pinFailures = append(pinFailures,
				fmt.Sprintf("%s: %v allocs/op (want 0)", res.Name, res.AllocsPerOp))
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "# report written to %s\n", out)
	for _, fail := range pinFailures {
		fmt.Fprintln(w, "# PIN VIOLATION:", fail)
	}
	if len(pinFailures) > 0 {
		return fmt.Errorf("%d disabled-path benchmark(s) allocate", len(pinFailures))
	}
	return nil
}

// measure calibrates b.fn to roughly benchtime and reports per-op cost.
// Allocation counts come from runtime.MemStats deltas around the measured
// run (GC forced before, so the deltas are the benchmark's own).
func measure(b bench, benchtime time.Duration) Result {
	b.fn(1) // warm-up: lazy initialization outside the measurement
	n := int64(1)
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		b.fn(int(n))
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= benchtime || n >= 1e9 {
			return Result{
				Name:          b.name,
				Iters:         n,
				NsPerOp:       float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
				BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
				PinZeroAllocs: b.pinZero,
			}
		}
		// Grow like the testing package: aim for benchtime, capped growth.
		next := int64(float64(n) * float64(benchtime) / float64(elapsed+1) * 1.2)
		if next < n+1 {
			next = n + 1
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

// benchmarks builds the suite. Inputs are deterministic (fixed chain
// generator seed) so successive reports measure the same workload.
func benchmarks() []bench {
	chains := chaingen.GenerateMany(chaingen.Default(20, 0.5), 7, 8)
	r := core.Resources{Big: 10, Little: 10}
	herad := strategy.MustParse("herad")

	// A populated journal for the export benchmarks, matching the shape a
	// real -trace-sched run produces.
	exportJournal := trace.New()
	seedJournal(exportJournal, chains[0], r)

	return []bench{
		{name: "registry/schedule_disabled", pinZero: false, fn: func(n int) {
			for i := 0; i < n; i++ {
				if s := herad.Schedule(chains[i%len(chains)], r, strategy.Options{}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "registry/schedule_metrics", fn: func(n int) {
			reg := obs.NewRegistry()
			for i := 0; i < n; i++ {
				if s := herad.Schedule(chains[i%len(chains)], r, strategy.Options{Metrics: reg}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "registry/schedule_traced", fn: func(n int) {
			for i := 0; i < n; i++ {
				j := trace.New()
				if s := herad.Schedule(chains[i%len(chains)], r, strategy.Options{Trace: j.Root()}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "obs/ops_disabled", pinZero: true, fn: func(n int) {
			var reg *obs.Registry
			for i := 0; i < n; i++ {
				m := reg.Sub("herad")
				m.Counter("schedule.calls").Inc()
				m.Gauge("workers").Set(8)
				m.Timer("schedule.ns").Start()()
			}
		}},
		{name: "obs/ops_enabled", fn: func(n int) {
			reg := obs.NewRegistry().Sub("herad")
			for i := 0; i < n; i++ {
				reg.Counter("schedule.calls").Inc()
				reg.Gauge("workers").Set(8)
				reg.Timer("schedule.ns").Start()()
			}
		}},
		{name: "trace/journal_disabled", pinZero: true, fn: func(n int) {
			var sc *trace.Scope
			for i := 0; i < n; i++ {
				if sc.Enabled() {
					panic("nil scope enabled")
				}
				sc.Event("probe").F64("target", 412.5).Bool("valid", true)
				sp, exit := sc.Enter("probe")
				sp.Int("cores", 4)
				exit()
			}
		}},
		{name: "trace/journal_enabled", fn: func(n int) {
			j := trace.New()
			sc := trace.NewScope(j.Root())
			for i := 0; i < n; i++ {
				sp, exit := sc.Enter("probe")
				sp.F64("target", 412.5)
				sc.Event("compute_stage").Int("first_task", i).Int("cores", 2)
				exit()
			}
		}},
		{name: "trace/jsonl_export", fn: func(n int) {
			for i := 0; i < n; i++ {
				if err := exportJournal.WriteJSONL(io.Discard); err != nil {
					panic(err)
				}
			}
		}},
		{name: "trace/explain_export", fn: func(n int) {
			for i := 0; i < n; i++ {
				if err := exportJournal.WriteExplain(io.Discard); err != nil {
					panic(err)
				}
			}
		}},
		{name: "trace/chrome_export", fn: func(n int) {
			for i := 0; i < n; i++ {
				if err := exportJournal.WriteChromeTrace(io.Discard); err != nil {
					panic(err)
				}
			}
		}},
	}
}

// seedJournal fills j with a real scheduling trace: every registered
// strategy over (c, r), the same tree "-strategy all -trace-sched" builds.
func seedJournal(j *trace.Journal, c *core.Chain, r core.Resources) {
	for _, s := range strategy.All() {
		s.Schedule(c, r, strategy.Options{Trace: j.Root()})
	}
}
