// Command benchreport runs the repository's performance micro-benchmarks —
// the strategy registry dispatch, the obs metrics layer, the decision-trace
// journal, the HeRAD wavefront scaling sweep, the large-n exact-vs-ε-beam
// scaling rows and the incremental replan rows — and writes a machine-
// readable JSON report with ns/op, allocs/op and B/op per benchmark. CI
// publishes the report as an artifact next to the coverage profile so
// performance regressions show up in review instead of in production.
//
// The report also enforces the repository's hard guarantees:
//
//   - every benchmark of a disabled (nil-sink, nil-journal) path must
//     measure exactly 0 allocs/op;
//   - with -baseline, every guarded benchmark (the serial workers=1 HeRAD
//     fills) must stay within -maxregress percent of the committed report.
//     Machines differ, so the comparison is normalized by the calibrate/
//     benchmark measured in the same run: what is gated is the ratio of a
//     guarded fill to a small serial fill, not raw nanoseconds.
//
// benchreport exits non-zero when either check fails.
//
// Usage:
//
//	benchreport [-o BENCH_PR10.json] [-benchtime 100ms] [-match herad]
//	            [-baseline BENCH_PR10.json] [-maxregress 25] [-list]
//	            [-statusz statusz.json] [-statusz-zero-timers]
//	            [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -statusz-zero-timers zeroes the wall-clock timer totals in the statusz
// snapshot — the one nondeterministic family in the scenario — so the
// artifact is fully byte-deterministic and can be diffed across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ampsched/internal/chaingen"
	"ampsched/internal/core"
	"ampsched/internal/desim"
	"ampsched/internal/herad"
	"ampsched/internal/obs"
	"ampsched/internal/obs/flight"
	obshttp "ampsched/internal/obs/http"
	"ampsched/internal/strategy"
	"ampsched/internal/streampu"
	"ampsched/internal/streampu/ring"
	"ampsched/internal/trace"
)

// Schema versions the report shape.
const Schema = 1

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// PinZeroAllocs marks the disabled-path benchmarks whose allocs/op
	// must be exactly zero (enforced, not just reported).
	PinZeroAllocs bool `json:"pin_zero_allocs,omitempty"`
	// Guard marks the benchmarks gated against a -baseline report: the
	// serial HeRAD fills whose calibrated ns/op must not regress.
	Guard bool `json:"guard,omitempty"`
}

// Report is the full benchmark export.
type Report struct {
	Schema     int      `json:"schema"`
	Tool       string   `json:"tool"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

// bench is one registered benchmark: fn must perform n iterations.
type bench struct {
	name    string
	pinZero bool
	guard   bool
	fn      func(n int)
}

// gateOptions configures the -baseline regression gate.
type gateOptions struct {
	baseline   string  // committed report path; empty disables the gate
	maxRegress float64 // allowed calibrated slowdown, percent
}

// statuszOptions configures the -statusz artifact.
type statuszOptions struct {
	path       string // output path; empty disables the snapshot
	zeroTimers bool   // zero wall-clock timer totals for byte-determinism
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "report output path")
	benchtime := flag.Duration("benchtime", 100*time.Millisecond, "target measuring time per benchmark")
	match := flag.String("match", "", "run only benchmarks whose name contains this substring")
	baseline := flag.String("baseline", "", "committed report to gate guarded benchmarks against")
	maxRegress := flag.Float64("maxregress", 25, "allowed calibrated slowdown vs -baseline, percent")
	list := flag.Bool("list", false, "list benchmark names and exit")
	statusz := flag.String("statusz", "", "write a /statusz JSON snapshot of a representative instrumented run to this file")
	statuszZeroTimers := flag.Bool("statusz-zero-timers", false, "zero wall-clock timer totals in the -statusz snapshot (byte-deterministic artifact)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()
	g := gateOptions{baseline: *baseline, maxRegress: *maxRegress}
	sz := statuszOptions{path: *statusz, zeroTimers: *statuszZeroTimers}
	if err := run(*out, *benchtime, *match, g, *list, sz, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// run wraps mainErr with the pprof exit artifacts (mirroring cmd/ampsched:
// the CPU profile covers the whole benchmark run, the heap profile is
// taken at exit — so scaling-sweep hotspots can be profiled directly from
// the bench harness the numbers come from).
func run(out string, benchtime time.Duration, match string, g gateOptions, list bool, statusz statuszOptions, cpuProfile, memProfile string) (err error) {
	if cpuProfile != "" {
		f, cerr := os.Create(cpuProfile)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			return fmt.Errorf("starting CPU profile: %w", cerr)
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, merr := os.Create(memProfile)
			if merr == nil {
				runtime.GC()
				merr = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); merr == nil {
					merr = cerr
				}
			}
			if merr != nil && err == nil {
				err = fmt.Errorf("heap profile: %w", merr)
			}
		}()
	}
	return mainErr(out, benchtime, match, g, list, statusz, os.Stdout)
}

func mainErr(out string, benchtime time.Duration, match string, g gateOptions, list bool, statusz statuszOptions, w io.Writer) error {
	benches := benchmarks()
	if match != "" {
		kept := benches[:0]
		for _, b := range benches {
			if strings.Contains(b.name, match) || b.name == calibrateName {
				kept = append(kept, b)
			}
		}
		benches = kept
	}
	if list {
		for _, b := range benches {
			fmt.Fprintln(w, b.name)
		}
		return nil
	}
	rep := Report{
		Schema:    Schema,
		Tool:      "benchreport",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	var pinFailures []string
	for _, b := range benches {
		res := measure(b, benchtime)
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Fprintf(w, "%-32s %12.1f ns/op %10.1f allocs/op %12.1f B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		if b.pinZero && res.AllocsPerOp != 0 {
			pinFailures = append(pinFailures,
				fmt.Sprintf("%s: %v allocs/op (want 0)", res.Name, res.AllocsPerOp))
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "# report written to %s\n", out)
	for _, fail := range pinFailures {
		fmt.Fprintln(w, "# PIN VIOLATION:", fail)
	}
	if len(pinFailures) > 0 {
		return fmt.Errorf("%d disabled-path benchmark(s) allocate", len(pinFailures))
	}
	if g.baseline != "" {
		if err := gate(rep, g, w); err != nil {
			return err
		}
	}
	if statusz.path != "" {
		if err := writeStatusz(statusz); err != nil {
			return fmt.Errorf("statusz: %w", err)
		}
		fmt.Fprintf(w, "# statusz snapshot written to %s\n", statusz.path)
	}
	return nil
}

// writeStatusz produces the /statusz artifact CI publishes next to the
// bench report: a deterministic instrumented run — one HeRAD schedule
// with metrics, then a sampled desim execution feeding the drift
// detector — snapshotted through the same WriteStatusz path the live
// endpoint serves.
func writeStatusz(opts statuszOptions) error {
	reg := obs.NewRegistry()
	c := chaingen.GenerateMany(chaingen.Default(20, 0.5), 7, 1)[0]
	r := core.Res(4, 4)
	sc := strategy.MustParse("herad")
	sol := sc.Schedule(c, r, strategy.Options{Metrics: reg})
	if sol.IsEmpty() {
		return fmt.Errorf("no schedule for the statusz scenario")
	}
	sreg := strategy.MetricsScope(sc, reg)
	planned := make([]float64, len(sol.Stages))
	for i, st := range sol.Stages {
		planned[i] = c.SumW(st.Start, st.End, st.Type)
	}
	d := obs.NewDriftDetector(planned, obs.DriftConfig{}, sreg, nil)
	if _, err := desim.Simulate(c, sol, desim.Config{
		Frames: 1000,
		Steps:  []desim.WeightStep{{AfterFrame: 500, Stage: len(sol.Stages) - 1, Factor: 2}},
		Sample: &desim.SampleConfig{Metrics: sreg, Drift: d},
	}); err != nil {
		return err
	}
	f, err := os.Create(opts.path)
	if err != nil {
		return err
	}
	if err := obshttp.WriteStatuszOpts(f, "benchreport", reg,
		obshttp.StatuszOptions{ZeroTimers: opts.zeroTimers}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// calibrateName is the normalization benchmark of the -baseline gate: a
// small serial HeRAD fill whose current/baseline ratio captures how much
// faster or slower this machine is than the one that produced the
// committed report. Gating the calibrated ratio instead of raw ns/op
// makes the check portable across CI runner generations.
const calibrateName = "calibrate/herad_serial"

// gate fails when a guarded benchmark regressed more than g.maxRegress
// percent against the baseline report, after calibration. Guarded
// benchmarks missing from the baseline are reported and skipped — a new
// benchmark has no history to regress against.
func gate(cur Report, g gateOptions, w io.Writer) error {
	raw, err := os.ReadFile(g.baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", g.baseline, err)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}
	curNs := make(map[string]float64, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curNs[b.Name] = b.NsPerOp
	}
	if baseNs[calibrateName] <= 0 || curNs[calibrateName] <= 0 {
		return fmt.Errorf("gate needs %q in both reports (baseline %v ns/op, current %v ns/op)",
			calibrateName, baseNs[calibrateName], curNs[calibrateName])
	}
	scale := curNs[calibrateName] / baseNs[calibrateName]
	var failures []string
	for _, b := range cur.Benchmarks {
		if !b.Guard || b.Name == calibrateName {
			continue
		}
		bn, ok := baseNs[b.Name]
		if !ok {
			fmt.Fprintf(w, "# gate: %s has no baseline entry, skipped\n", b.Name)
			continue
		}
		allowed := bn * scale * (1 + g.maxRegress/100)
		delta := (b.NsPerOp/(bn*scale) - 1) * 100
		fmt.Fprintf(w, "# gate: %-40s %+7.1f%% calibrated (limit %+.0f%%)\n", b.Name, delta, g.maxRegress)
		if b.NsPerOp > allowed {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ns/op exceeds calibrated limit %.0f ns/op (%+.1f%%)",
					b.Name, b.NsPerOp, allowed, delta))
		}
	}
	for _, fail := range failures {
		fmt.Fprintln(w, "# GATE VIOLATION:", fail)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d guarded benchmark(s) regressed beyond %.0f%%", len(failures), g.maxRegress)
	}
	return nil
}

// measure calibrates b.fn to roughly benchtime and reports per-op cost.
// Allocation counts come from runtime.MemStats deltas around the measured
// run (GC forced before, so the deltas are the benchmark's own).
//
// Rows the -baseline gate inspects — the guarded benchmarks and the
// calibrate row that anchors their normalization — are re-measured up to
// three more times, keeping the fastest run and stopping early once a
// sample lands within 5% of the running min. Machine contention is
// one-sided (it only ever slows), so a reproduced min is the benchmark's
// real cost while an unreproduced one may still be inflated and is worth
// another sample. This matters most for ops that exceed benchtime (the
// large-n herad/scale and herad/replan rows, measured one-shot, where a
// transient load spike lands entirely on the single sample), but guarded
// multi-iteration rows average over the whole window and flake the same
// way under sustained load, so they get the same treatment. Unguarded
// rows keep the single cheap measurement: nothing gates on them.
func measure(b bench, benchtime time.Duration) Result {
	res := measureOnce(b, benchtime)
	if !b.guard && b.name != calibrateName {
		return res
	}
	for i := 0; i < 3; i++ {
		again := measureOnce(b, benchtime)
		reproduced := again.NsPerOp < res.NsPerOp*1.05
		if again.NsPerOp < res.NsPerOp {
			res = again
		}
		if reproduced {
			break
		}
	}
	return res
}

func measureOnce(b bench, benchtime time.Duration) Result {
	b.fn(1) // warm-up: lazy initialization outside the measurement
	n := int64(1)
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		b.fn(int(n))
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= benchtime || n >= 1e9 {
			return Result{
				Name:          b.name,
				Iters:         n,
				NsPerOp:       float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
				BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
				PinZeroAllocs: b.pinZero,
				Guard:         b.guard,
			}
		}
		// Grow like the testing package: aim for benchtime, capped growth.
		next := int64(float64(n) * float64(benchtime) / float64(elapsed+1) * 1.2)
		if next < n+1 {
			next = n + 1
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

// benchmarks builds the suite. Inputs are deterministic (fixed chain
// generator seed) so successive reports measure the same workload.
func benchmarks() []bench {
	chains := chaingen.GenerateMany(chaingen.Default(20, 0.5), 7, 8)
	r := core.Res(10, 10)
	herad := strategy.MustParse("herad")

	// A populated journal for the export benchmarks, matching the shape a
	// real -trace-sched run produces.
	exportJournal := trace.New()
	seedJournal(exportJournal, chains[0], r)

	// The live ring for flight/record_enabled, allocated outside the
	// measured loop: the pin asserts Record itself never allocates.
	flightRec := flight.New(0)

	// Shared state for the streampu/ring and frames_steady rows,
	// likewise allocated outside the measured loops.
	benchSPSC := ring.NewSPSC[*streampu.Frame](8)
	benchMPMC := ring.NewMPMC[*streampu.Frame](8)
	benchPool := streampu.NewFramePool(8)
	benchFrame := &streampu.Frame{}
	benchFrameCh := make(chan *streampu.Frame, 8)

	benches := []bench{
		{name: "registry/schedule_disabled", pinZero: false, fn: func(n int) {
			for i := 0; i < n; i++ {
				if s := herad.Schedule(chains[i%len(chains)], r, strategy.Options{}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "registry/schedule_metrics", fn: func(n int) {
			reg := obs.NewRegistry()
			for i := 0; i < n; i++ {
				if s := herad.Schedule(chains[i%len(chains)], r, strategy.Options{Metrics: reg}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "registry/schedule_traced", fn: func(n int) {
			for i := 0; i < n; i++ {
				j := trace.New()
				if s := herad.Schedule(chains[i%len(chains)], r, strategy.Options{Trace: j.Root()}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "obs/ops_disabled", pinZero: true, fn: func(n int) {
			var reg *obs.Registry
			for i := 0; i < n; i++ {
				m := reg.Sub("herad")
				m.Counter("schedule.calls").Inc()
				m.Gauge("workers").Set(8)
				m.Timer("schedule.ns").Start()()
			}
		}},
		{name: "obs/ops_enabled", fn: func(n int) {
			reg := obs.NewRegistry().Sub("herad")
			for i := 0; i < n; i++ {
				reg.Counter("schedule.calls").Inc()
				reg.Gauge("workers").Set(8)
				reg.Timer("schedule.ns").Start()()
			}
		}},
		{name: "obs/series/disabled", pinZero: true, fn: func(n int) {
			var s *obs.Series
			for i := 0; i < n; i++ {
				s.Append(int64(i), 1.5)
			}
		}},
		{name: "obs/series/enabled", fn: func(n int) {
			s := obs.NewSeries(obs.DefaultSeriesCap)
			for i := 0; i < n; i++ {
				s.Append(int64(i), 1.5)
			}
		}},
		{name: "obs/histogram/disabled", pinZero: true, fn: func(n int) {
			var h *obs.LogHistogram
			for i := 0; i < n; i++ {
				h.Observe(float64(i%1000) + 0.5)
			}
		}},
		{name: "obs/histogram/enabled", fn: func(n int) {
			h := obs.NewLogHistogram()
			for i := 0; i < n; i++ {
				h.Observe(float64(i%1000) + 0.5)
			}
		}},
		{name: "streampu/sampled/disabled", pinZero: true, fn: func(n int) {
			var s *streampu.Sampler
			for i := 0; i < n; i++ {
				s.Record(0, time.Microsecond)
			}
		}},
		{name: "streampu/sampled/enabled", fn: func(n int) {
			s := streampu.NewSampler(nil)
			s.BindStages([]int{1, 2}, 1, time.Now())
			for i := 0; i < n; i++ {
				s.Record(i%2, time.Microsecond)
			}
		}},
		// The ring boundary primitives behind the pipeline's inter-stage
		// hand-off, pinned at 0 allocs/op: a push+pop round trip through
		// the SPSC matrix queue and the MPMC frame free list.
		{name: "streampu/ring/spsc", pinZero: true, fn: func(n int) {
			f := benchFrame
			for i := 0; i < n; i++ {
				benchSPSC.TryPush(f)
				benchSPSC.TryPop()
			}
		}},
		{name: "streampu/ring/mpmc", pinZero: true, fn: func(n int) {
			f := benchFrame
			for i := 0; i < n; i++ {
				benchMPMC.TryPush(f)
				benchMPMC.TryPop()
			}
		}},
		// The full steady-state frame hop — acquire from the pool, stamp,
		// hand through a boundary queue, release — in the ring shape
		// (pinned 0 allocs/op; the warm-up lap fills the free list) and
		// the pre-rework channel shape (per-frame &Frame{} plus a channel
		// round trip), kept as the comparison row the ring must beat.
		{name: "streampu/frames_steady/ring", pinZero: true, fn: func(n int) {
			for i := 0; i < n; i++ {
				f := benchPool.Get()
				f.Seq = uint64(i)
				benchSPSC.TryPush(f)
				if g, ok := benchSPSC.TryPop(); ok {
					benchPool.Put(g)
				}
			}
		}},
		{name: "streampu/frames_steady/channel", fn: func(n int) {
			for i := 0; i < n; i++ {
				f := &streampu.Frame{Seq: uint64(i)}
				benchFrameCh <- f
				<-benchFrameCh
			}
		}},
		// The flight recorder pins zero allocations on BOTH paths: the nil
		// recorder (every subsystem's default) and the live ring, whose
		// Record is a ticket fetch-add plus atomic field stores — the
		// black box must never perturb the run it observes.
		{name: "flight/record_disabled", pinZero: true, fn: func(n int) {
			var rec *flight.Recorder
			for i := 0; i < n; i++ {
				rec.Record(flight.Event{Code: flight.CodeWindow, Tick: int64(i), A: 0.5, B: 120})
			}
		}},
		{name: "flight/record_enabled", pinZero: true, fn: func(n int) {
			for i := 0; i < n; i++ {
				flightRec.Record(flight.Event{Code: flight.CodeWindow, Tick: int64(i), Stage: 1, A: 0.5, B: 120})
			}
		}},
		{name: "trace/journal_disabled", pinZero: true, fn: func(n int) {
			var sc *trace.Scope
			for i := 0; i < n; i++ {
				if sc.Enabled() {
					panic("nil scope enabled")
				}
				sc.Event("probe").F64("target", 412.5).Bool("valid", true)
				sp, exit := sc.Enter("probe")
				sp.Int("cores", 4)
				exit()
			}
		}},
		{name: "trace/journal_enabled", fn: func(n int) {
			j := trace.New()
			sc := trace.NewScope(j.Root())
			for i := 0; i < n; i++ {
				sp, exit := sc.Enter("probe")
				sp.F64("target", 412.5)
				sc.Event("compute_stage").Int("first_task", i).Int("cores", 2)
				exit()
			}
		}},
		{name: "trace/jsonl_export", fn: func(n int) {
			for i := 0; i < n; i++ {
				if err := exportJournal.WriteJSONL(io.Discard); err != nil {
					panic(err)
				}
			}
		}},
		{name: "trace/explain_export", fn: func(n int) {
			for i := 0; i < n; i++ {
				if err := exportJournal.WriteExplain(io.Discard); err != nil {
					panic(err)
				}
			}
		}},
		{name: "trace/chrome_export", fn: func(n int) {
			for i := 0; i < n; i++ {
				if err := exportJournal.WriteChromeTrace(io.Discard); err != nil {
					panic(err)
				}
			}
		}},
	}
	benches = append(benches, heradScaling()...)
	benches = append(benches, heradGeneral()...)
	benches = append(benches, heradScale()...)
	return append(benches, heradReplan()...)
}

// heradScale is the large-n sweep behind DESIGN.md §4g: exact HeRAD
// against the ε-beam fill on chains one to two orders of magnitude past
// the wavefront sizes, where the O(n²) split-point scan dominates. The
// exact rows pin the serial baseline; the ε rows are guarded too, so a
// change that silently erodes the beam pruning (and with it the headline
// speedup) fails the gate just like a slowdown of the exact fill. Every
// row is serial: the sweep isolates the pruning win from the wavefront
// parallelism measured above.
func heradScale() []bench {
	c2k := chaingen.GenerateMany(chaingen.Default(2048, 0.5), 11, 1)[0]
	c4k := chaingen.GenerateMany(chaingen.Default(4096, 0.5), 11, 1)[0]
	r := core.Res(4, 4)
	run := func(c *core.Chain, eps float64) func(int) {
		return func(n int) {
			for i := 0; i < n; i++ {
				if s := herad.ScheduleOpts(c, r, herad.Options{Workers: 1, Epsilon: eps}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}
	}
	return []bench{
		{name: "herad/scale/n2048_b4_l4/exact", guard: true, fn: run(c2k, 0)},
		{name: "herad/scale/n2048_b4_l4/eps=0.01", guard: true, fn: run(c2k, 0.01)},
		{name: "herad/scale/n2048_b4_l4/eps=0.05", guard: true, fn: run(c2k, 0.05)},
		{name: "herad/scale/n4096_b4_l4/exact", guard: true, fn: run(c4k, 0)},
		{name: "herad/scale/n4096_b4_l4/eps=0.05", guard: true, fn: run(c4k, 0.05)},
	}
}

// heradReplan measures the chain-edit warm start: one op is "react to a
// tail reweigh", either by scheduling the edited chain from scratch or by
// applying the same edit to an incumbent herad.Planner (refilling the 8
// invalidated tail rows out of 2048) and extracting the solution. The two
// paths produce bit-identical schedules (planner_test.go), so the row pair
// is a pure wall-clock comparison. The edit alternates scale 1.25/0.8 so
// the workload is stationary across iterations.
var replanIncumbent *herad.Planner

func heradReplan() []bench {
	const tasks = 2048
	base := chaingen.GenerateMany(chaingen.Default(tasks, 0.5), 17, 1)[0]
	r := core.Res(4, 4)
	edit := tasks - 8
	retask := func(t core.Task, scale float64) core.Task {
		w := append([]float64(nil), t.Weight...)
		for v := range w {
			w[v] *= scale
		}
		return core.Task{Name: t.Name, Weight: w, Replicable: t.Replicable}
	}
	scales := [2]float64{1.25, 0.8}
	return []bench{
		{name: "herad/replan/n2048_b4_l4/scratch", guard: true, fn: func(n int) {
			cur := base
			for i := 0; i < n; i++ {
				ts := cur.Tasks()
				ts[edit] = retask(ts[edit], scales[i%2])
				c, err := core.NewChain(ts)
				if err != nil {
					panic(err)
				}
				cur = c
				if s := herad.ScheduleOpts(cur, r, herad.Options{Workers: 1}); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
		{name: "herad/replan/n2048_b4_l4/edit_tail", guard: true, fn: func(n int) {
			// Built once, during measure's warm-up call: the incumbent's
			// initial full fill is the cost the warm starts amortize away.
			if replanIncumbent == nil {
				p, err := herad.NewPlanner(base, r, herad.Options{Workers: 1})
				if err != nil {
					panic(err)
				}
				replanIncumbent = p
			}
			p := replanIncumbent
			for i := 0; i < n; i++ {
				t := p.Chain().Task(edit)
				if err := p.Reweigh(edit, retask(t, scales[i%2])); err != nil {
					panic(err)
				}
				if s := p.Solution(); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}},
	}
}

// heradScaling builds the wavefront sweep: HeRAD's DP fill across growing
// (tasks, big, little) problem sizes, each at 1, 2 and 4 workers. Every
// size clears parGrain on its widest diagonals, so the pool genuinely
// engages; whether it helps is what the report measures (num_cpu records
// how many cores the run actually had). The workers=1 rows are guarded —
// the serial fill is the path every machine depends on — and the small
// calibrate fill anchors the cross-machine normalization of the gate.
func heradScaling() []bench {
	sizes := []struct {
		n, b, l int
	}{{24, 8, 8}, {48, 16, 16}, {64, 24, 24}}
	out := []bench{{name: calibrateName, guard: false, fn: func(n int) {
		c := chaingen.GenerateMany(chaingen.Default(20, 0.5), 7, 1)[0]
		r := core.Res(8, 8)
		for i := 0; i < n; i++ {
			if s := herad.ScheduleOpts(c, r, herad.Options{Workers: 1}); s.IsEmpty() {
				panic("no schedule")
			}
		}
	}}}
	for _, sz := range sizes {
		c := chaingen.GenerateMany(chaingen.Default(sz.n, 0.5), 11, 1)[0]
		r := core.Res(sz.b, sz.l)
		for _, workers := range []int{1, 2, 4} {
			workers := workers
			out = append(out, bench{
				name:  fmt.Sprintf("herad/wavefront/n%d_b%d_l%d/workers=%d", sz.n, sz.b, sz.l, workers),
				guard: workers == 1,
				fn: func(n int) {
					for i := 0; i < n; i++ {
						if s := herad.ScheduleOpts(c, r, herad.Options{Workers: workers}); s.IsEmpty() {
							panic("no schedule")
						}
					}
				},
			})
		}
	}
	return out
}

// heradGeneral benchmarks the k-type general DP fill against the
// specialized two-type fast path on the same instance (the cost of
// genericity the fast path avoids), plus a three-type instance only the
// general fill can solve. Unguarded: the rows document the ratio, the
// fast path itself is gated through the wavefront rows.
func heradGeneral() []bench {
	c2 := chaingen.GenerateMany(chaingen.Default(24, 0.5), 13, 1)[0]
	r2 := core.Res(8, 8)
	c3 := chaingen.GenerateMany(chaingen.Default3(24, 0.5), 13, 1)[0]
	r3 := core.Res(8, 4, 4)
	run := func(c *core.Chain, r core.Resources, o herad.Options) func(int) {
		return func(n int) {
			for i := 0; i < n; i++ {
				if s := herad.ScheduleOpts(c, r, o); s.IsEmpty() {
					panic("no schedule")
				}
			}
		}
	}
	return []bench{
		{name: "herad/general/n24_k2/fast", fn: run(c2, r2, herad.Options{Workers: 1})},
		{name: "herad/general/n24_k2/general", fn: run(c2, r2, herad.Options{Workers: 1, ForceGeneral: true})},
		{name: "herad/general/n24_k3/general", fn: run(c3, r3, herad.Options{Workers: 1})},
	}
}

// seedJournal fills j with a real scheduling trace: every registered
// strategy over (c, r), the same tree "-strategy all -trace-sched" builds.
func seedJournal(j *trace.Journal, c *core.Chain, r core.Resources) {
	for _, s := range strategy.All() {
		s.Schedule(c, r, strategy.Options{Trace: j.Root()})
	}
}
