package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ampsched/internal/obs"
	obshttp "ampsched/internal/obs/http"
)

func TestMainErrWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	// Tiny benchtime: the calibration loop still runs every benchmark at
	// least twice (warm-up + measurement) so the report is complete.
	if err := mainErr(out, time.Microsecond, "", gateOptions{}, false, statuszOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != Schema || rep.Tool != "benchreport" || rep.GoVersion == "" {
		t.Errorf("bad header: %+v", rep)
	}
	want := map[string]bool{}
	for _, b := range benchmarks() {
		want[b.name] = false
	}
	for _, r := range rep.Benchmarks {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected benchmark %q", r.Name)
			continue
		}
		want[r.Name] = true
		if r.Iters <= 0 || r.NsPerOp < 0 {
			t.Errorf("%s: iters=%d ns/op=%v", r.Name, r.Iters, r.NsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %q missing from report", name)
		}
	}
	// The disabled paths must measure zero allocations even at a tiny
	// budget — this is the acceptance pin, enforced by mainErr itself
	// (a pin violation would have returned an error above).
	for _, r := range rep.Benchmarks {
		if r.PinZeroAllocs && r.AllocsPerOp != 0 {
			t.Errorf("%s: %v allocs/op, want 0", r.Name, r.AllocsPerOp)
		}
	}
}

func TestMainErrList(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr("", 0, "", gateOptions{}, true, statuszOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) != len(benchmarks()) {
		t.Fatalf("-list printed %d names, want %d:\n%s", len(lines), len(benchmarks()), buf.String())
	}
	for _, want := range []string{"trace/journal_disabled", "obs/ops_disabled", "registry/schedule_traced"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-list missing %s", want)
		}
	}
}

func TestMainErrBadOutputPath(t *testing.T) {
	var buf bytes.Buffer
	err := mainErr(filepath.Join(t.TempDir(), "missing-dir", "bench.json"),
		time.Microsecond, "", gateOptions{}, false, statuszOptions{}, &buf)
	if err == nil {
		t.Fatal("unwritable output path accepted")
	}
}

func TestMainErrMatchFilters(t *testing.T) {
	var buf bytes.Buffer
	if err := mainErr("", 0, "herad/wavefront", gateOptions{}, true, statuszOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) == 0 || len(lines) >= len(benchmarks()) {
		t.Fatalf("-match kept %d of %d benchmarks:\n%s", len(lines), len(benchmarks()), buf.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "herad/wavefront") && l != calibrateName {
			t.Errorf("-match leaked %q", l)
		}
	}
	// The calibration anchor survives every filter — the gate needs it.
	if !strings.Contains(buf.String(), calibrateName) {
		t.Errorf("-match dropped %s", calibrateName)
	}
}

// gateReport builds a minimal report for gate unit tests.
func gateReport(ns map[string]float64, guarded ...string) Report {
	g := map[string]bool{}
	for _, n := range guarded {
		g[n] = true
	}
	rep := Report{Schema: Schema, Tool: "benchreport"}
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Result{Name: name, NsPerOp: v, Guard: g[name]})
	}
	return rep
}

func TestGateCalibratedComparison(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeReport := func(path string, rep Report) {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeReport(base, gateReport(map[string]float64{
		calibrateName: 100,
		"herad/w1":    1000,
	}))
	opts := gateOptions{baseline: base, maxRegress: 25}
	var buf bytes.Buffer
	// Same machine, +20%: within the 25% budget.
	cur := gateReport(map[string]float64{calibrateName: 100, "herad/w1": 1200}, "herad/w1")
	if err := gate(cur, opts, &buf); err != nil {
		t.Errorf("20%% regression rejected under a 25%% budget: %v", err)
	}
	// Same machine, +30%: over budget.
	cur = gateReport(map[string]float64{calibrateName: 100, "herad/w1": 1300}, "herad/w1")
	if err := gate(cur, opts, &buf); err == nil {
		t.Error("30% regression accepted under a 25% budget")
	}
	// A machine 2x slower across the board: calibration cancels it out.
	cur = gateReport(map[string]float64{calibrateName: 200, "herad/w1": 2200}, "herad/w1")
	if err := gate(cur, opts, &buf); err != nil {
		t.Errorf("uniformly slower machine rejected despite calibration: %v", err)
	}
	// Guarded benchmark new in this run: skipped, not failed.
	cur = gateReport(map[string]float64{calibrateName: 100, "herad/new": 999999}, "herad/new")
	buf.Reset()
	if err := gate(cur, opts, &buf); err != nil {
		t.Errorf("benchmark without baseline entry failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "no baseline entry") {
		t.Errorf("missing-baseline skip not reported:\n%s", buf.String())
	}
	// Baseline without the calibration anchor: explicit error.
	writeReport(base, gateReport(map[string]float64{"herad/w1": 1000}))
	cur = gateReport(map[string]float64{calibrateName: 100, "herad/w1": 1000}, "herad/w1")
	if err := gate(cur, opts, &buf); err == nil {
		t.Error("gate ran without a calibration benchmark in the baseline")
	}
}

func TestMainErrGateAgainstOwnReport(t *testing.T) {
	// End to end: a run gated against its own freshly written report must
	// pass — zero regression by construction.
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := mainErr(out, time.Microsecond, "herad", gateOptions{}, false, statuszOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	out2 := filepath.Join(t.TempDir(), "bench2.json")
	err := mainErr(out2, time.Microsecond, "herad", gateOptions{baseline: out, maxRegress: 400}, false, statuszOptions{}, &buf)
	if err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "# gate:") {
		t.Errorf("gate produced no comparison lines:\n%s", buf.String())
	}
}

func TestMainErrStatuszArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	statusz := filepath.Join(dir, "statusz.json")
	var buf bytes.Buffer
	if err := mainErr(out, time.Microsecond, "obs/", gateOptions{}, false,
		statuszOptions{path: statusz, zeroTimers: true}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(statusz)
	if err != nil {
		t.Fatal(err)
	}
	var doc obshttp.Statusz
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("statusz is not valid JSON: %v", err)
	}
	if doc.Tool != "benchreport" || len(doc.Metrics) == 0 {
		t.Fatalf("statusz doc = %+v", doc)
	}
	// The scenario's sampled series and drift counters are present under
	// the strategy slug.
	var names []string
	for _, m := range doc.Metrics {
		names = append(names, m.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"herad.desim.latency_us", "herad.desim.weight.stage0", "herad.drift.detected"} {
		if !strings.Contains(joined, want) {
			t.Errorf("statusz missing %q in:\n%s", want, joined)
		}
	}
	// With -statusz-zero-timers the snapshot is fully byte-deterministic:
	// the scenario is a simulated run, and the wall-clock timer totals —
	// the one nondeterministic family — are zeroed. Byte-equality, not a
	// filtered subset, is the artifact's contract.
	statusz2 := filepath.Join(dir, "statusz2.json")
	if err := writeStatusz(statuszOptions{path: statusz2, zeroTimers: true}); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(statusz2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("zero-timer statusz snapshots differ between identical scenarios:\n%s\n---\n%s", data, again)
	}
	// The timers are zeroed but still listed, so the snapshot keeps the
	// full metric inventory.
	for _, m := range doc.Metrics {
		if m.Kind == obs.KindTimer && m.TotalNs != 0 {
			t.Errorf("timer %s kept wall-clock total %d", m.Name, m.TotalNs)
		}
	}
}
